# Development entry points. `make check` is the tier-1 gate (ROADMAP.md)
# plus vet and a race pass over the concurrency-bearing packages; run it
# before every commit.

GO ?= go

.PHONY: build test vet race verify verify-cluster fuzz-smoke harness-checks telemetry-check cluster-check tune-check check bench bench-sim bench-gxhc bench-cluster bench-overlap bench-obs bench-tune quick-report

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

# The simulator itself is single-threaded per world, but gxhc (the real
# goroutine-backed library), env (cross-world harness plumbing) and verify
# (the schedule-exploration checker, which drives gxhc) exercise real
# concurrency, and exper fans independent experiment cells out across
# worker goroutines — so those run under the race detector.
race:
	$(GO) test -race ./internal/gxhc/ ./internal/env/ ./internal/verify/
	$(GO) test -race -run 'Online' ./internal/tune/

# Schedule-exploration checker: randomized configurations x seeded
# schedules with fault injection, invariant checks on every run, plus the
# mutation self-test proving seeded protocol bugs are detected. See
# DESIGN.md section 10; failures print an xhcverify -replay seed pair.
verify:
	$(GO) run ./cmd/xhcverify -quick

# Multi-node sweep: randomized cluster shapes on the sharded engine, every
# run executed at workers=1 and workers=GOMAXPROCS with fingerprints
# compared (DESIGN.md section 14).
verify-cluster:
	$(GO) run ./cmd/xhcverify -cluster -quick

# Seed corpora plus a few seconds of coverage-guided mutation.
fuzz-smoke:
	$(GO) test -fuzz FuzzGoCommAllreduce -fuzztime 5s -run '^$$' ./internal/gxhc/
	$(GO) test -fuzz FuzzGoCommReduce -fuzztime 5s -run '^$$' ./internal/gxhc/
	$(GO) test -fuzz FuzzGoCommAllgather -fuzztime 5s -run '^$$' ./internal/gxhc/
	$(GO) test -fuzz FuzzGoCommIallreduceOverlap -fuzztime 5s -run '^$$' ./internal/gxhc/
	$(GO) test -fuzz FuzzHierarchyBuild -fuzztime 5s -run '^$$' ./internal/hier/
	$(GO) test -fuzz FuzzPlanFile -fuzztime 5s -run '^$$' ./internal/tune/

# Oversubscription regression (waiter starvation, both park and spin
# modes — plus a race pass over the parking handshake under the same
# thread starvation), the gxhc_unsafe kernel variant, and the pin that
# reports stay byte-identical with observability compiled in but disabled;
# scripts/check.sh carries the same steps for environments without make.
harness-checks:
	GOMAXPROCS=2 $(GO) test -timeout 120s -run TestOversubscribedProgress ./internal/gxhc/
	GOMAXPROCS=2 $(GO) test -race -timeout 300s -run TestOversubscribedProgress ./internal/gxhc/
	$(GO) test -tags gxhc_unsafe ./internal/gxhc/
	$(GO) run ./cmd/xhcrepro -quick -parallel 1 -o /tmp/xhc_check_seq.md
	$(GO) run ./cmd/xhcrepro -quick -parallel 4 -o /tmp/xhc_check_par.md
	cmp /tmp/xhc_check_seq.md /tmp/xhc_check_par.md

# Telemetry invariance + regression-gate sanity: serving live telemetry
# must not change benchmark stdout by a byte (checked on bcast and on one
# of the newer collectives), and xhcstat must pass a self-diff of freshly
# measured cells (see DESIGN.md section 11).
telemetry-check:
	$(GO) run ./cmd/xhcbench -platform ARM-N1 -coll bcast -comp xhc-tree,tuned \
	    -sizes 4,1024,65536 -json /tmp/xhc_check_cells.json > /tmp/xhc_check_tel_off.txt
	$(GO) run ./cmd/xhcbench -platform ARM-N1 -coll bcast -comp xhc-tree,tuned \
	    -sizes 4,1024,65536 -telemetry 127.0.0.1:0 > /tmp/xhc_check_tel_on.txt 2>/dev/null
	cmp /tmp/xhc_check_tel_off.txt /tmp/xhc_check_tel_on.txt
	$(GO) run ./cmd/xhcbench -platform ARM-N1 -coll scatter -comp xhc-tree,tuned,sm \
	    -sizes 4,1024,65536 -json /tmp/xhc_check_cells_sc.json > /tmp/xhc_check_sc_off.txt
	$(GO) run ./cmd/xhcbench -platform ARM-N1 -coll scatter -comp xhc-tree,tuned,sm \
	    -sizes 4,1024,65536 -telemetry 127.0.0.1:0 > /tmp/xhc_check_sc_on.txt 2>/dev/null
	cmp /tmp/xhc_check_sc_off.txt /tmp/xhc_check_sc_on.txt
	$(GO) run ./cmd/xhcstat -baseline /tmp/xhc_check_cells.json \
	    -current /tmp/xhc_check_cells.json > /dev/null
	$(GO) run ./cmd/xhcstat -baseline /tmp/xhc_check_cells_sc.json \
	    -current /tmp/xhc_check_cells_sc.json > /dev/null
	$(GO) run ./cmd/xhcbench -backend gxhc -coll allreduce -np 4 -procs 2 \
	    -sizes 4096 -warmup 5 -iters 20 -allocgate \
	    -json /tmp/xhc_check_gx.json > /tmp/xhc_check_gx_off.txt
	$(GO) run ./cmd/xhcbench -backend gxhc -coll allreduce -np 4 -procs 2 \
	    -sizes 4096 -warmup 5 -iters 20 -allocgate \
	    -telemetry 127.0.0.1:0 > /tmp/xhc_check_gx_on.txt 2>/dev/null
	sed 's/[0-9][0-9.]*/N/g; s/  */ /g; s/--*/-/g' /tmp/xhc_check_gx_off.txt > /tmp/xhc_check_gx_off_shape.txt
	sed 's/[0-9][0-9.]*/N/g; s/  */ /g; s/--*/-/g' /tmp/xhc_check_gx_on.txt > /tmp/xhc_check_gx_on_shape.txt
	cmp /tmp/xhc_check_gx_off_shape.txt /tmp/xhc_check_gx_on_shape.txt
	$(GO) run ./cmd/xhcbench -backend gxhc -coll bcast -np 4 -procs 2 \
	    -sizes 4096 -warmup 5 -iters 20 -allocgate -spin > /dev/null
	$(GO) run ./cmd/xhcstat -baseline BENCH_gxhc.json \
	    -current BENCH_gxhc.json > /dev/null
	$(GO) run ./cmd/xhcbench -backend gxhc -coll ibcast-overlap,ibcast-fused \
	    -np 4 -procs 2 -sizes 256,1024 -warmup 5 -iters 20 -allocgate \
	    -json /tmp/xhc_check_ov.json > /dev/null
	$(GO) run ./cmd/xhcstat -baseline /tmp/xhc_check_ov.json \
	    -current /tmp/xhc_check_ov.json > /dev/null
	$(GO) run ./cmd/xhcstat -baseline BENCH_overlap.json \
	    -current BENCH_overlap.json > /dev/null

# Tuner repro gate (DESIGN.md section 17): replay the committed plan
# file's pinned cells fresh — default plan vs persisted winner, simulated
# latencies, so verdicts are exact — and fail xhcstat-style if any tuned
# cell is more than 5% and 1us slower than the default. The committed
# BENCH_tune.json trajectory must also self-diff cleanly (both-key-sets
# rule, like BENCH_gxhc.json; regenerate with `make bench-tune`).
tune-check:
	$(GO) run ./cmd/xhctune -check -quick -plan tuned/ARM-N1.json > /dev/null
	$(GO) run ./cmd/xhcstat -baseline BENCH_tune.json -current BENCH_tune.json > /dev/null

# Cluster determinism + baseline gate: the sharded run's report must be
# byte-identical to the sequential reference — and so must a run with live
# telemetry serving (the cluster path records NIC/fabric overlay blame and
# runs the cross-node straggler scan, none of which may perturb simulated
# latencies) — and the committed BENCH_cluster.json (simulated latencies,
# so bit-reproducible) must diff cleanly against a fresh sweep in both
# directions.
cluster-check:
	$(GO) run ./cmd/xhcbench -platform 4xEpyc-1P -coll bcast,allreduce,reduce,barrier \
	    -np 32 -sizes 8,1024,65536,1048576 -workers 1 \
	    -json /tmp/xhc_check_cl.json > /tmp/xhc_check_cl_seq.txt
	$(GO) run ./cmd/xhcbench -platform 4xEpyc-1P -coll bcast,allreduce,reduce,barrier \
	    -np 32 -sizes 8,1024,65536,1048576 -workers 4 > /tmp/xhc_check_cl_par.txt
	cmp /tmp/xhc_check_cl_seq.txt /tmp/xhc_check_cl_par.txt
	$(GO) run ./cmd/xhcbench -platform 4xEpyc-1P -coll bcast,allreduce,reduce,barrier \
	    -np 32 -sizes 8,1024,65536,1048576 -workers 1 \
	    -telemetry 127.0.0.1:0 > /tmp/xhc_check_cl_tel.txt 2>/dev/null
	cmp /tmp/xhc_check_cl_seq.txt /tmp/xhc_check_cl_tel.txt
	$(GO) run ./cmd/xhcstat -baseline BENCH_cluster.json \
	    -current /tmp/xhc_check_cl.json > /dev/null
	$(GO) run ./cmd/xhcstat -baseline /tmp/xhc_check_cl.json \
	    -current BENCH_cluster.json > /dev/null

check: build vet test race verify verify-cluster fuzz-smoke harness-checks telemetry-check tune-check cluster-check

# Simulator performance benchmarks (see DESIGN.md section 8 and
# BENCH_flowsolver.json for the recorded before/after numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkFlowSolver|BenchmarkReschedule' -benchmem ./internal/mem/
	$(GO) test -run '^$$' -bench 'BenchmarkFig08Bcast/ARM-N1/xhc-tree$$|BenchmarkFig11Allreduce/ARM-N1/(xhc-tree|xbrc)$$' -benchtime 10x -benchmem .

# Real-backend wall-clock tables for all six collectives across a
# GOMAXPROCS sweep, with the zero-alloc gate on every cell — the sweep
# that produced BENCH_gxhc.json (gate fresh runs against it with
# `xhcstat -baseline BENCH_gxhc.json -current <cells.json>`).
bench-gxhc:
	for c in bcast allreduce barrier reduce allgather scatter; do \
	    $(GO) run ./cmd/xhcbench -backend gxhc -coll $$c -np 8 -procs 2,8 \
	        -sizes 64,4096,65536,1048576 -warmup 10 -iters 50 -allocgate \
	        -json /tmp/xhc_bench_gx_$$c.json || exit 1; \
	done

# Regenerate the multi-node cluster sweep and gate it against the
# committed BENCH_cluster.json. Latencies are simulated, so any difference
# at all is a real model/protocol/determinism change, not noise.
bench-cluster:
	$(GO) run ./cmd/xhcbench -platform 4xEpyc-1P -coll bcast,allreduce,reduce,barrier \
	    -np 32 -sizes 8,1024,65536,1048576 -workers 0 \
	    -json /tmp/xhc_bench_cluster.json
	$(GO) run ./cmd/xhcstat -baseline BENCH_cluster.json \
	    -current /tmp/xhc_bench_cluster.json
	$(GO) run ./cmd/xhcstat -baseline /tmp/xhc_bench_cluster.json \
	    -current BENCH_cluster.json > /dev/null

# Regenerate the non-blocking overlap trajectory: the overlapDepth-deep
# Ibcast window with fusion off (ibcast-overlap) vs on (ibcast-fused),
# zero-alloc gate held on every cell. Latencies are wall clock, so the
# committed BENCH_overlap.json gates cell coverage via self-diff (like
# BENCH_gxhc.json), not exact numbers.
bench-overlap:
	$(GO) run ./cmd/xhcbench -backend gxhc -coll ibcast-overlap,ibcast-fused \
	    -np 8 -procs 2,8 -sizes 64,256,1024 -warmup 10 -iters 50 -allocgate \
	    -json BENCH_overlap.json
	$(GO) run ./cmd/xhcstat -baseline BENCH_overlap.json \
	    -current BENCH_overlap.json > /dev/null

# Refresh BENCH_obs.json: the observability hot-path microbenchmarks plus
# "obs-on" overhead cells — the cluster and overlap sweeps measured with
# live telemetry serving — self-diffed by xhcstat. Cluster cells are
# virtual time and must match BENCH_cluster.json exactly; overlap cells
# are wall clock and gate key coverage.
bench-obs:
	sh scripts/bench_obs.sh

# Regenerate the autotuner artifacts: a full offline sweep-and-select on
# ARM-N1 (all 160 ranks, full iteration counts — the same fidelity the
# tune-check gate replays against) persisting the winning plan per pinned
# cell to tuned/ARM-N1.json and the default-vs-tuned cells to
# BENCH_tune.json, then the repro gate over what was just written.
bench-tune:
	mkdir -p tuned
	$(GO) run ./cmd/xhctune -sweep -platform ARM-N1 \
	    -plan tuned/ARM-N1.json -benchout BENCH_tune.json
	$(GO) run ./cmd/xhctune -check -quick -plan tuned/ARM-N1.json > /dev/null
	$(GO) run ./cmd/xhcstat -baseline BENCH_tune.json -current BENCH_tune.json > /dev/null

quick-report:
	$(GO) run ./cmd/xhcrepro -quick -o EXPERIMENTS_quick.txt
