#!/bin/sh
# Tier-1 gate (ROADMAP.md) plus vet and a race pass over the packages that
# exercise real concurrency: gxhc (goroutine-backed library), env (harness
# plumbing) — exper's parallel experiment cells are covered transitively.
# Equivalent to `make check`; kept as a script for environments without make.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/gxhc/ ./internal/env/
