#!/bin/sh
# Tier-1 gate (ROADMAP.md) plus vet and a race pass over the packages that
# exercise real concurrency: gxhc (goroutine-backed library), env (harness
# plumbing), verify (schedule-exploration checker, which drives gxhc) —
# exper's parallel experiment cells are covered transitively.
# Equivalent to `make check`; kept as a script for environments without make.
set -eux

go build ./...
go vet ./...
go test -shuffle=on ./...
go test -race ./internal/gxhc/ ./internal/env/ ./internal/verify/

# Schedule-exploration gate: sweep randomized configurations under seeded
# random/PCT schedules with fault injection, cross-checking XHC against a
# baseline and gxhc on every run, then prove the checker catches seeded
# protocol bugs (mutation self-test). Prints a replay seed pair on failure.
go run ./cmd/xhcverify -quick

# Short fuzz smoke: the seed corpora plus a few seconds of mutation on the
# goroutine-backed allreduce, rooted reduce, allgather and the hierarchy
# builder.
go test -fuzz FuzzGoCommAllreduce -fuzztime 5s -run '^$' ./internal/gxhc/
go test -fuzz FuzzGoCommReduce -fuzztime 5s -run '^$' ./internal/gxhc/
go test -fuzz FuzzGoCommAllgather -fuzztime 5s -run '^$' ./internal/gxhc/
go test -fuzz FuzzHierarchyBuild -fuzztime 5s -run '^$' ./internal/hier/

# The oversubscription regression (spinUntil starvation) under a thread
# budget far below the rank count; the test sets GOMAXPROCS itself, but the
# env var makes the whole process thread-starved as in the original report.
GOMAXPROCS=2 go test -timeout 120s -run TestOversubscribedProgress ./internal/gxhc/

# With observability compiled in but disabled (no -trace/-metrics), reports
# must stay byte-identical: no Observer is installed, so world construction
# takes the exact pre-observability path at any worker count.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/xhcrepro -quick -parallel 1 -o "$tmpdir/seq.md"
go run ./cmd/xhcrepro -quick -parallel 4 -o "$tmpdir/par.md"
cmp "$tmpdir/seq.md" "$tmpdir/par.md"

# Live telemetry must be report-invariant: stdout with -telemetry serving
# (histograms, flight recorder and straggler detection all active) is
# byte-identical to stdout with telemetry off. The endpoint reports its
# address on stderr only. Checked on bcast and on one of the newer
# collectives (scatter).
go run ./cmd/xhcbench -platform ARM-N1 -coll bcast -comp xhc-tree,tuned \
    -sizes 4,1024,65536 -json "$tmpdir/cells.json" > "$tmpdir/bench_off.txt"
go run ./cmd/xhcbench -platform ARM-N1 -coll bcast -comp xhc-tree,tuned \
    -sizes 4,1024,65536 -telemetry 127.0.0.1:0 > "$tmpdir/bench_on.txt" 2>/dev/null
cmp "$tmpdir/bench_off.txt" "$tmpdir/bench_on.txt"
go run ./cmd/xhcbench -platform ARM-N1 -coll scatter -comp xhc-tree,tuned,sm \
    -sizes 4,1024,65536 -json "$tmpdir/cells_sc.json" > "$tmpdir/sc_off.txt"
go run ./cmd/xhcbench -platform ARM-N1 -coll scatter -comp xhc-tree,tuned,sm \
    -sizes 4,1024,65536 -telemetry 127.0.0.1:0 > "$tmpdir/sc_on.txt" 2>/dev/null
cmp "$tmpdir/sc_off.txt" "$tmpdir/sc_on.txt"

# Regression gate sanity: xhcstat must pass a self-diff of the cells it
# just measured (zero regressions against itself, exit 0).
go run ./cmd/xhcstat -baseline "$tmpdir/cells.json" -current "$tmpdir/cells.json" > /dev/null
go run ./cmd/xhcstat -baseline "$tmpdir/cells_sc.json" -current "$tmpdir/cells_sc.json" > /dev/null
