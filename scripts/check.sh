#!/bin/sh
# Tier-1 gate (ROADMAP.md) plus vet and a race pass over the packages that
# exercise real concurrency: gxhc (goroutine-backed library), env (harness
# plumbing), verify (schedule-exploration checker, which drives gxhc) —
# exper's parallel experiment cells are covered transitively.
# Equivalent to `make check`; kept as a script for environments without make.
set -eux

go build ./...
go vet ./...
go test -shuffle=on ./...
go test -race ./internal/gxhc/ ./internal/env/ ./internal/verify/
# tune's online bandit drives live gxhc communicators (plan switches at
# quiesced boundaries with goroutines parked around them); the race pass
# is scoped to those tests — the sweep/select tests are single-threaded
# simulation and already covered unraced above.
go test -race -run 'Online' ./internal/tune/

# Schedule-exploration gate: sweep randomized configurations under seeded
# random/PCT schedules with fault injection, cross-checking XHC against a
# baseline and gxhc on every run, then prove the checker catches seeded
# protocol bugs (mutation self-test). Prints a replay seed pair on failure.
go run ./cmd/xhcverify -quick

# Multi-node sweep: randomized cluster shapes on the sharded engine, every
# run executed at workers=1 and workers=GOMAXPROCS with schedule
# fingerprints compared (any divergence is an engine-sharding determinism
# bug, reported with a -cluster -replay seed pair).
go run ./cmd/xhcverify -cluster -quick

# Short fuzz smoke: the seed corpora plus a few seconds of mutation on the
# goroutine-backed allreduce, rooted reduce, allgather, the non-blocking
# request layer (random Test/Wait interleavings over 2-4 overlapped
# Iallreduces per rank) and the hierarchy builder. The race pass above
# already covers the gxhc non-blocking tests.
go test -fuzz FuzzGoCommAllreduce -fuzztime 5s -run '^$' ./internal/gxhc/
go test -fuzz FuzzGoCommReduce -fuzztime 5s -run '^$' ./internal/gxhc/
go test -fuzz FuzzGoCommAllgather -fuzztime 5s -run '^$' ./internal/gxhc/
go test -fuzz FuzzGoCommIallreduceOverlap -fuzztime 5s -run '^$' ./internal/gxhc/
go test -fuzz FuzzHierarchyBuild -fuzztime 5s -run '^$' ./internal/hier/
go test -fuzz FuzzPlanFile -fuzztime 5s -run '^$' ./internal/tune/

# The oversubscription regression (waiter starvation) under a thread
# budget far below the rank count, in both waiter modes (park + the Spin
# escape hatch); the test sets GOMAXPROCS itself, but the env var makes
# the whole process thread-starved as in the original report. The race
# pass re-runs the parking handshake (Dekker store/load + intrusive wait
# queue) under the same starvation, and the gxhc_unsafe pass covers the
# 8-wide pointer-walk kernel variant.
GOMAXPROCS=2 go test -timeout 120s -run TestOversubscribedProgress ./internal/gxhc/
GOMAXPROCS=2 go test -race -timeout 300s -run TestOversubscribedProgress ./internal/gxhc/
go test -tags gxhc_unsafe ./internal/gxhc/

# With observability compiled in but disabled (no -trace/-metrics), reports
# must stay byte-identical: no Observer is installed, so world construction
# takes the exact pre-observability path at any worker count.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/xhcrepro -quick -parallel 1 -o "$tmpdir/seq.md"
go run ./cmd/xhcrepro -quick -parallel 4 -o "$tmpdir/par.md"
cmp "$tmpdir/seq.md" "$tmpdir/par.md"

# Live telemetry must be report-invariant: stdout with -telemetry serving
# (histograms, flight recorder and straggler detection all active) is
# byte-identical to stdout with telemetry off. The endpoint reports its
# address on stderr only. Checked on bcast and on one of the newer
# collectives (scatter).
go run ./cmd/xhcbench -platform ARM-N1 -coll bcast -comp xhc-tree,tuned \
    -sizes 4,1024,65536 -json "$tmpdir/cells.json" > "$tmpdir/bench_off.txt"
go run ./cmd/xhcbench -platform ARM-N1 -coll bcast -comp xhc-tree,tuned \
    -sizes 4,1024,65536 -telemetry 127.0.0.1:0 > "$tmpdir/bench_on.txt" 2>/dev/null
cmp "$tmpdir/bench_off.txt" "$tmpdir/bench_on.txt"
go run ./cmd/xhcbench -platform ARM-N1 -coll scatter -comp xhc-tree,tuned,sm \
    -sizes 4,1024,65536 -json "$tmpdir/cells_sc.json" > "$tmpdir/sc_off.txt"
go run ./cmd/xhcbench -platform ARM-N1 -coll scatter -comp xhc-tree,tuned,sm \
    -sizes 4,1024,65536 -telemetry 127.0.0.1:0 > "$tmpdir/sc_on.txt" 2>/dev/null
cmp "$tmpdir/sc_off.txt" "$tmpdir/sc_on.txt"

# Tuned-vs-default telemetry invariance: the xhc-tuned component resolves
# its plan per size from the committed tuned/ARM-N1.json (a missing plan
# file or uncovered cell is a hard error, never a silent fallback), and
# serving live telemetry while the tuner's plans are active must not move
# a simulated latency by a byte, exactly as for the stock components.
go run ./cmd/xhcbench -platform ARM-N1 -coll bcast -comp xhc-tree,xhc-tuned \
    -tuned tuned/ARM-N1.json -sizes 4,1024,65536 \
    -json "$tmpdir/cells_tu.json" > "$tmpdir/tu_off.txt"
go run ./cmd/xhcbench -platform ARM-N1 -coll bcast -comp xhc-tree,xhc-tuned \
    -tuned tuned/ARM-N1.json -sizes 4,1024,65536 \
    -telemetry 127.0.0.1:0 > "$tmpdir/tu_on.txt" 2>/dev/null
cmp "$tmpdir/tu_off.txt" "$tmpdir/tu_on.txt"

# Tuner repro gate (DESIGN.md section 17): replay the committed plan
# file's pinned cells fresh and fail on any 5%/1us regression. It shares
# nothing with the gates below, so it runs in the background — and is
# reaped at the end of the script with an explicit `wait "$pid"`: `set -e`
# never sees a background job's status, and a bare `wait` with no operand
# always returns 0, so the per-pid wait is the only form that propagates a
# tuner regression into this script's exit code.
go run ./cmd/xhctune -check -quick -plan tuned/ARM-N1.json > /dev/null &
tune_pid=$!

# The same telemetry invariance on the real backend, with the zero-alloc
# gate held in both runs: serving live telemetry (flight recorder +
# histograms + straggler detection on every op) must not change the
# report's shape nor put an allocation on the steady-state op path. The
# real backend's cells are measured wall-clock latencies, so the numbers
# legitimately vary run to run — the cmp is over the report with digits
# masked (structure, labels, sizes), while -allocgate holds both runs to
# an allocation-free op path. The -spin run smokes the escape-hatch
# waiter through the same gate.
go run ./cmd/xhcbench -backend gxhc -coll allreduce -np 4 -procs 2 \
    -sizes 4096 -warmup 5 -iters 20 -allocgate \
    -json "$tmpdir/cells_gx.json" > "$tmpdir/gx_off.txt"
go run ./cmd/xhcbench -backend gxhc -coll allreduce -np 4 -procs 2 \
    -sizes 4096 -warmup 5 -iters 20 -allocgate \
    -telemetry 127.0.0.1:0 > "$tmpdir/gx_on.txt" 2>/dev/null
sed 's/[0-9][0-9.]*/N/g; s/  */ /g; s/--*/-/g' "$tmpdir/gx_off.txt" > "$tmpdir/gx_off_shape.txt"
sed 's/[0-9][0-9.]*/N/g; s/  */ /g; s/--*/-/g' "$tmpdir/gx_on.txt" > "$tmpdir/gx_on_shape.txt"
cmp "$tmpdir/gx_off_shape.txt" "$tmpdir/gx_on_shape.txt"
go run ./cmd/xhcbench -backend gxhc -coll bcast -np 4 -procs 2 \
    -sizes 4096 -warmup 5 -iters 20 -allocgate -spin > /dev/null

# Regression gate sanity: xhcstat must pass a self-diff of the cells it
# just measured (zero regressions against itself, exit 0), and of the
# committed real-backend baseline (BENCH_gxhc.json, whose benchmark names
# are xhcbench -backend gxhc -json cell keys — a fresh cells file diffs
# directly against it).
go run ./cmd/xhcstat -baseline "$tmpdir/cells.json" -current "$tmpdir/cells.json" > /dev/null
go run ./cmd/xhcstat -baseline "$tmpdir/cells_sc.json" -current "$tmpdir/cells_sc.json" > /dev/null
go run ./cmd/xhcstat -baseline BENCH_gxhc.json -current BENCH_gxhc.json > /dev/null
go run ./cmd/xhcstat -baseline "$tmpdir/cells_tu.json" -current "$tmpdir/cells_tu.json" > /dev/null
go run ./cmd/xhcstat -baseline BENCH_tune.json -current BENCH_tune.json > /dev/null

# Non-blocking overlap cells (ibcast-overlap: overlapDepth broadcasts in
# flight with fusion off; ibcast-fused: the same window fused into one
# traversal), with the zero-alloc gate held on every cell. xhcstat diffs
# only cells present in both key sets, so the new cells must self-diff
# cleanly — both the freshly measured file and the committed
# BENCH_overlap.json trajectory (wall-clock numbers vary run to run, so
# the committed file gates key coverage, like BENCH_gxhc.json; regenerate
# with `make bench-overlap`).
go run ./cmd/xhcbench -backend gxhc -coll ibcast-overlap,ibcast-fused -np 4 -procs 2 \
    -sizes 256,1024 -warmup 5 -iters 20 -allocgate \
    -json "$tmpdir/cells_ov.json" > /dev/null
go run ./cmd/xhcstat -baseline "$tmpdir/cells_ov.json" -current "$tmpdir/cells_ov.json" > /dev/null
go run ./cmd/xhcstat -baseline BENCH_overlap.json -current BENCH_overlap.json > /dev/null

# Cluster determinism + baseline gate: the sharded (workers=4) report must
# be byte-identical to the sequential (workers=1) reference, and the
# committed BENCH_cluster.json must diff cleanly against a fresh sweep in
# both directions — cluster latencies are simulated virtual time, so any
# difference at all is a real model/protocol/determinism change, not
# measurement noise.
go run ./cmd/xhcbench -platform 4xEpyc-1P -coll bcast,allreduce,reduce,barrier \
    -np 32 -sizes 8,1024,65536,1048576 -workers 1 \
    -json "$tmpdir/cells_cl.json" > "$tmpdir/cl_seq.txt"
go run ./cmd/xhcbench -platform 4xEpyc-1P -coll bcast,allreduce,reduce,barrier \
    -np 32 -sizes 8,1024,65536,1048576 -workers 4 > "$tmpdir/cl_par.txt"
cmp "$tmpdir/cl_seq.txt" "$tmpdir/cl_par.txt"

# Telemetry invariance on the cluster platform: live serving turns on the
# NIC/fabric overlay blame, the critical-path accumulator and the
# cross-node straggler scan, and none of it may shift a simulated latency
# — the report stays byte-identical to the unobserved sequential
# reference.
go run ./cmd/xhcbench -platform 4xEpyc-1P -coll bcast,allreduce,reduce,barrier \
    -np 32 -sizes 8,1024,65536,1048576 -workers 1 \
    -telemetry 127.0.0.1:0 > "$tmpdir/cl_tel.txt" 2>/dev/null
cmp "$tmpdir/cl_seq.txt" "$tmpdir/cl_tel.txt"
go run ./cmd/xhcstat -baseline BENCH_cluster.json -current "$tmpdir/cells_cl.json" > /dev/null
go run ./cmd/xhcstat -baseline "$tmpdir/cells_cl.json" -current BENCH_cluster.json > /dev/null

# Reap the backgrounded tuner gate (see above): only an explicit per-pid
# wait makes its failure fail the whole script.
wait "$tune_pid"
