#!/bin/sh
# Refresh BENCH_obs.json (make bench-obs): the observability hot-path
# microbenchmarks (flight-ring insert + histogram + straggler detector +
# critical-path accumulator, all allocation-free), plus "obs-on" overhead
# cells — the cluster sweep and the non-blocking overlap sweep measured
# with live telemetry serving, so every layer of the observability stack
# (flight ring, histograms, straggler scan, NIC/fabric overlay blame,
# critical-path extraction) is active while the cell is timed. Cluster
# cells are simulated virtual time, so they double as an invariance pin:
# they must match BENCH_cluster.json's unobserved numbers exactly.
# Overlap cells are wall clock and gate key coverage (self-diff), like
# BENCH_overlap.json. The refreshed file must pass an xhcstat self-diff.
set -eu
cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkRecordFlight$|BenchmarkObserveOp$|BenchmarkHistogramObserve$' \
    -benchmem -count 3 ./internal/obs/ > "$tmp/micro.txt"

go run ./cmd/xhcbench -platform 4xEpyc-1P -coll bcast,allreduce,reduce,barrier \
    -np 32 -sizes 8,1024,65536,1048576 -workers 1 \
    -telemetry 127.0.0.1:0 -json "$tmp/cluster.json" > /dev/null 2>&1

go run ./cmd/xhcbench -backend gxhc -coll ibcast-overlap,ibcast-fused \
    -np 8 -procs 2 -sizes 64,256,1024 -warmup 10 -iters 50 -allocgate \
    -telemetry 127.0.0.1:0 -json "$tmp/overlap.json" > /dev/null 2>&1

# Microbench cells: best-of-3 ns/op per benchmark, alloc columns kept so a
# future allocation on the hot path shows up in the committed file too.
awk '/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    if (!(name in best) || ns < best[name]) { best[name] = ns; bpo[name] = $5 + 0; apo[name] = $7 + 0 }
    if (!(name in ord)) { ord[name] = ++n; names[n] = name }
}
END {
    for (i = 1; i <= n; i++) {
        m = names[i]
        printf "  {\n   \"name\": \"%s\",\n   \"ns_per_op\": %g,\n   \"bytes_per_op\": %d,\n   \"allocs_per_op\": %d\n  },\n", m, best[m], bpo[m], apo[m]
    }
}' "$tmp/micro.txt" > "$tmp/cells.txt"

# Sweep cells: xhcbench -json records -> "obs-on/<plat>/<coll>/<comp>/<size>"
# trajectory entries (avg latency, us -> ns).
for f in "$tmp/cluster.json" "$tmp/overlap.json"; do
    awk '/"platform":/   { gsub(/[",]/, ""); plat = $2 }
         /"collective":/ { gsub(/[",]/, ""); coll = $2 }
         /"component":/  { gsub(/[",]/, ""); comp = $2 }
         /"size":/       { gsub(/,/, "");    size = $2 }
         /"avg_lat_us":/ { gsub(/,/, "")
             printf "  {\n   \"name\": \"obs-on/%s/%s/%s/%s\",\n   \"ns_per_op\": %.1f\n  },\n", plat, coll, comp, size, ($2 + 0) * 1000
         }' "$f" >> "$tmp/cells.txt"
done
sed '$ s/},$/}/' "$tmp/cells.txt" > "$tmp/cells_final.txt"

{
    printf '{\n'
    printf ' "description": "Observability overhead (DESIGN.md sections 11 and 16). The Benchmark* cells are the always-on per-op hot path: flight-ring insert + latency histogram + straggler-detector step accounting + critical-path blame accumulation, allocation-free in steady state (TestFlightRecordZeroAllocs, TestRecordRequestZeroAllocs, TestRecordNetZeroAllocs). The obs-on/* cells are the cluster and non-blocking overlap sweeps measured with live telemetry serving: cluster cells are simulated virtual time and must equal the unobserved BENCH_cluster.json numbers exactly (observation may not perturb the simulation); overlap cells are wall clock and gate key coverage by xhcstat self-diff, like BENCH_overlap.json. Regenerate with make bench-obs.",\n'
    printf ' "date": "%s",\n' "$(date +%F)"
    printf ' "command": "scripts/bench_obs.sh (make bench-obs)",\n'
    printf ' "benchmarks": [\n'
    cat "$tmp/cells_final.txt"
    printf ' ]\n}\n'
} > BENCH_obs.json

go run ./cmd/xhcstat -baseline BENCH_obs.json -current BENCH_obs.json > /dev/null
echo "bench-obs: refreshed BENCH_obs.json ($(grep -c '"name"' BENCH_obs.json) cells), xhcstat self-diff clean"
