module xhc

go 1.22
