// Quickstart: real goroutine-level collectives with the XHC design.
//
// Sixteen goroutines form a hierarchical communicator (groups of four, the
// way XHC groups cores sharing an LLC), broadcast a configuration blob
// from participant 0, and then sum a distributed vector with Allreduce —
// all with single-writer synchronization, no locks, no channels on the
// data path.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"xhc"
)

const (
	participants = 16
	vectorLen    = 1 << 16
)

func main() {
	comm := xhc.MustNewGoComm(participants, xhc.GoConfig{GroupSize: 4, ChunkBytes: 32 << 10})

	// Per-participant state.
	config := make([][]byte, participants)
	grad := make([][]float64, participants)
	sum := make([][]float64, participants)
	for r := 0; r < participants; r++ {
		config[r] = make([]byte, 4096)
		grad[r] = make([]float64, vectorLen)
		sum[r] = make([]float64, vectorLen)
		for i := range grad[r] {
			grad[r][i] = float64(r) // every element contributes its rank
		}
	}
	copy(config[0], []byte("model=alexnet lr=0.01 momentum=0.9"))

	var wg sync.WaitGroup
	for r := 0; r < participants; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// 1. Broadcast the configuration from participant 0.
			comm.Bcast(rank, config[rank], 0)

			// 2. Do some "training" and sum the gradients across everyone.
			comm.AllreduceFloat64(rank, sum[rank], grad[rank])

			// 3. Synchronize before reporting.
			comm.Barrier(rank)
		}(r)
	}
	wg.Wait()

	want := float64(participants*(participants-1)) / 2
	fmt.Printf("participant 7 received config: %q\n", string(config[7][:34]))
	fmt.Printf("allreduce sum per element: got %.0f, want %.0f\n", sum[7][0], want)
	ok := true
	for r := 0; r < participants; r++ {
		for i := 0; i < vectorLen; i += 1000 {
			if sum[r][i] != want {
				ok = false
			}
		}
	}
	fmt.Printf("all %d participants hold the correct result: %v\n", participants, ok)
}
