// Topology explorer: walk the paper's three evaluation platforms, show
// how XHC's hierarchy construction adapts to each (Fig. 2), and measure
// how transfer latency depends on topological distance (Fig. 1a) — all
// through the public API.
//
// Run with: go run ./examples/topology-explorer
package main

import (
	"fmt"
	"log"

	"xhc"
)

func main() {
	for _, top := range xhc.Platforms() {
		fmt.Println(top.Render())

		// Build the numa+socket hierarchy XHC would use on this node.
		w, err := xhc.NewWorld(top, xhc.MapCore, 0)
		if err != nil {
			log.Fatal(err)
		}
		comm, err := xhc.NewXHC(w, xhc.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		h := comm.Hierarchy(0)
		fmt.Printf("XHC hierarchy: %d levels, %d leaf groups\n",
			h.NLevels(), len(h.GroupsAt(0)))

		// Demonstrate the distance effect with a 64 KiB broadcast run on
		// the simulated node: compare the flat tree against the hierarchy.
		for _, comp := range []string{"xhc-flat", "xhc-tree"} {
			b := xhc.MicroBench{Topo: top, Component: comp, Warmup: 2, Iters: 4, Dirty: true}
			rs, err := b.Bcast([]int{64 << 10})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-9s 64K bcast: %8.2f us\n", comp, rs[0].AvgLat)
		}
		fmt.Println()
	}
}
