// SGD allreduce: the workload the paper's introduction motivates —
// distributed training whose gradient exchange is an intra-node
// MPI_Allreduce — run on the simulated ARM-N1 node across collective
// components, reporting how much training time each one costs.
//
// Run with: go run ./examples/sgd-allreduce
package main

import (
	"fmt"
	"log"

	"xhc"
)

func main() {
	top := xhc.ArmN1()
	fmt.Printf("Simulated distributed SGD on %s\n\n", top)

	fmt.Printf("%-10s %12s %12s %8s\n", "component", "total(ms)", "coll(ms)", "coll%")
	for _, comp := range []string{"xhc-tree", "xhc-flat", "tuned", "ucc", "xbrc"} {
		cfg := xhc.DefaultCNTK(xhc.AppConfig{Topo: top, Component: comp})
		cfg.Minibatches = 6
		res, err := xhc.RunCNTK(cfg)
		if err != nil {
			log.Fatal(err)
		}
		total := float64(res.Total) / 1e9 // ps -> ms
		coll := float64(res.Coll) / 1e9
		fmt.Printf("%-10s %12.2f %12.2f %7.1f%%\n", comp, total, coll, 100*coll/total)
	}

	fmt.Println("\nxhc-tree keeps gradient exchange off the critical path by")
	fmt.Println("localizing traffic within NUMA nodes and pipelining across levels.")
}
