// Pipeline tuning: the paper makes XHC's per-level chunk size run-time
// configurable (Section III-B). This example sweeps the chunk size for a
// 1 MiB broadcast on the simulated Epyc-2P node and shows the tradeoff:
// tiny chunks pay synchronization per chunk, huge chunks lose the overlap
// between hierarchy levels.
//
// Run with: go run ./examples/pipeline-tuning
package main

import (
	"fmt"
	"log"

	"xhc"
)

func main() {
	top := xhc.Epyc2P()
	const msg = 1 << 20
	fmt.Printf("1 MiB hierarchical broadcast on %s, chunk-size sweep:\n\n", top.Name)
	fmt.Printf("%10s %12s\n", "chunk", "latency(us)")

	best, bestLat := 0, 0.0
	for chunk := 4 << 10; chunk <= 1<<20; chunk *= 4 {
		chunk := chunk
		b := xhc.MicroBench{
			Topo:   top,
			Warmup: 2, Iters: 5, Dirty: true,
			Custom: func(w *xhc.World) (xhc.Component, error) {
				cfg := xhc.DefaultConfig()
				cfg.ChunkBytes = []int{chunk}
				return xhc.NewXHC(w, cfg)
			},
		}
		rs, err := b.Bcast([]int{msg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9dK %12.2f\n", chunk>>10, rs[0].AvgLat)
		if best == 0 || rs[0].AvgLat < bestLat {
			best, bestLat = chunk, rs[0].AvgLat
		}
	}
	fmt.Printf("\nbest chunk size: %dK (%.2f us)\n", best>>10, bestLat)

	// Per-level tuning: a larger chunk on the cross-socket level.
	b := xhc.MicroBench{
		Topo:   top,
		Warmup: 2, Iters: 5, Dirty: true,
		Custom: func(w *xhc.World) (xhc.Component, error) {
			cfg := xhc.DefaultConfig()
			cfg.ChunkBytes = []int{32 << 10, 64 << 10, 128 << 10} // leaf..top
			return xhc.NewXHC(w, cfg)
		},
	}
	rs, err := b.Bcast([]int{msg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-level chunks 32K/64K/128K: %.2f us\n", rs[0].AvgLat)
}
