// Package obs is the observability layer of the repository: a span-based
// phase tracer (exported as Chrome-trace JSON for chrome://tracing /
// Perfetto) and a unified metrics registry that gathers the counters
// previously scattered across mem.Stats, xpmem.CacheStats, sim.EngineStats
// and trace.Collector behind a single Snapshot call.
//
// The design constraint that shapes every hook in this package: with
// observability disabled the simulator's hot loop must stay allocation-free
// and every report byte-identical. All instrumentation points are therefore
// nil-checked pointers (a *Tracer field, a function-pointer hook on
// mem.System, a nil phase-clock receiver) rather than always-on closures or
// interfaces — a nil check is the entire disabled-path cost.
package obs

import (
	"fmt"
	"sort"
	"time"
)

// Phase identifies what a rank was doing during a span. The phases mirror
// the paper's description of one collective operation: buffer exposure and
// attachment, waiting on progress flags, copying pipelined chunks, reducing
// an index-partitioned slice, and the hierarchical acknowledgment.
type Phase uint8

const (
	// PhaseCollective is the umbrella span of one whole operation on one
	// rank; the other phases partition it.
	PhaseCollective Phase = iota
	// PhaseExpose covers publishing a buffer handle and attaching to a
	// peer's exposed buffer (registration-cache lookup or attach+fault).
	PhaseExpose
	// PhaseFlagWait covers time blocked on (or polling) a progress flag.
	PhaseFlagWait
	// PhaseChunkCopy covers copying pipelined broadcast chunks, including
	// forwarding the availability counter to led groups.
	PhaseChunkCopy
	// PhaseReduceSlice covers a rank's share of the intra-group reduction.
	PhaseReduceSlice
	// PhaseAck covers the hierarchical acknowledgment closing an operation.
	PhaseAck
	// PhaseFlow is memory-system attribution: one bulk transfer (flow)
	// through the bandwidth model, recorded on the initiating core's lane.
	PhaseFlow
	// PhaseNICStage covers staging a payload into (or out of) a node's NIC
	// buffer — the CICO-style copy the cluster level pays at the wire.
	PhaseNICStage
	// PhaseFabric covers time blocked on the inter-node fabric: a leader's
	// eager send draining its link, or a receive waiting for arrival.
	PhaseFabric
	// PhaseQueueWait covers a non-blocking request's time queued behind
	// earlier requests on its rank's lane, before its body starts running.
	PhaseQueueWait

	// NPhases is the number of phase kinds; flight records carry a
	// per-phase duration array of this length.
	NPhases
)

var phaseNames = [NPhases]string{
	"collective", "expose", "flag-wait", "chunk-copy", "reduce-slice", "ack", "flow",
	"nic-stage", "fabric", "queue-wait",
}

// String names the phase the way the Chrome-trace output does.
func (ph Phase) String() string {
	if int(ph) < len(phaseNames) {
		return phaseNames[ph]
	}
	return fmt.Sprintf("Phase(%d)", int(ph))
}

// Span is one recorded phase interval on one lane. Times are in the
// tracer's clock ticks: virtual picoseconds for simulated worlds, wall
// nanoseconds for gxhc.
type Span struct {
	Lane  int // rank, or core for PhaseFlow
	Level int // hierarchy level, -1 when not applicable
	Phase Phase
	Op    string // "bcast", "allreduce", "barrier", ...
	Seq   uint64 // the lane's operation sequence number
	Start int64
	End   int64
	Bytes int64
	// From is the causal parent lane of a wait span: the lane whose flag
	// write released this one (-1 when unknown or not a wait). It is the
	// cross-lane edge the span graph walks when extracting critical paths.
	From int
}

// Dur returns the span length in clock ticks.
func (s Span) Dur() int64 { return s.End - s.Start }

// Tick rates for converting span times to the microseconds Chrome-trace
// expects: simulated worlds record in picoseconds, gxhc in nanoseconds.
const (
	SimTicksPerUS  = 1e6
	WallTicksPerUS = 1e3
)

// Tracer records phase spans for the lanes (ranks/cores) of one world or
// one gxhc communicator. Each lane has its own buffer and must only be
// written by that lane's goroutine, so recording takes no lock — which is
// what lets gxhc trace real concurrent participants.
type Tracer struct {
	Label      string
	PID        int     // process id in the merged Chrome trace
	TicksPerUS float64 // clock ticks per microsecond
	// Now reads the tracer's clock: virtual time for simulated worlds
	// (sim.Engine.Clock), wall time for gxhc (WallClock).
	Now func() int64

	lanes [][]Span
}

// NewTracer creates a tracer with the given number of lanes.
func NewTracer(label string, pid, lanes int, ticksPerUS float64, now func() int64) *Tracer {
	return &Tracer{
		Label:      label,
		PID:        pid,
		TicksPerUS: ticksPerUS,
		Now:        now,
		lanes:      make([][]Span, lanes),
	}
}

// WallClock returns a wall-time clock (nanoseconds since the call) for
// tracers over real goroutines.
func WallClock() func() int64 {
	start := time.Now()
	return func() int64 { return time.Since(start).Nanoseconds() }
}

// Record appends one complete span to lane's buffer. Safe for concurrent
// use as long as each lane is written by a single goroutine.
func (t *Tracer) Record(lane, level int, ph Phase, op string, seq uint64, start, end, bytes int64) {
	t.RecordLinked(lane, level, ph, op, seq, start, end, bytes, -1)
}

// RecordLinked is Record with an explicit causal parent lane: wait spans
// pass the lane whose flag write releases them (the group leader for a
// member's expose wait), giving the span graph its cross-lane edges.
func (t *Tracer) RecordLinked(lane, level int, ph Phase, op string, seq uint64, start, end, bytes int64, from int) {
	if lane < 0 || lane >= len(t.lanes) {
		return
	}
	t.lanes[lane] = append(t.lanes[lane], Span{
		Lane: lane, Level: level, Phase: ph, Op: op, Seq: seq,
		Start: start, End: end, Bytes: bytes, From: from,
	})
}

// Lanes returns the number of lanes.
func (t *Tracer) Lanes() int { return len(t.lanes) }

// LaneSpans returns the spans recorded on one lane, in record order.
func (t *Tracer) LaneSpans(lane int) []Span { return t.lanes[lane] }

// Spans returns all spans merged across lanes, ordered by start time, then
// lane, then record order — the order the Chrome-trace export uses.
func (t *Tracer) Spans() []Span {
	var out []Span
	for _, l := range t.lanes {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Lane < out[j].Lane
	})
	return out
}

// PhaseTotal sums the durations of a lane's spans of the given phase,
// optionally restricted to one operation sequence number (seq < 0 matches
// all).
func (t *Tracer) PhaseTotal(lane int, ph Phase, seq int64) int64 {
	var sum int64
	for _, s := range t.lanes[lane] {
		if s.Phase == ph && (seq < 0 || s.Seq == uint64(seq)) {
			sum += s.Dur()
		}
	}
	return sum
}

// CoveredTotal sums the durations of every attribution span on a lane for
// one operation — all phases except the umbrella PhaseCollective, the
// memory-level PhaseFlow (which overlaps the core phases) and the request
// lifecycle's PhaseQueueWait (which overlaps whatever op the helper was
// still serving). For the simulated collectives the attribution spans
// partition the operation, so this equals the operation's latency.
func (t *Tracer) CoveredTotal(lane int, seq int64) int64 {
	var sum int64
	for _, s := range t.lanes[lane] {
		if s.Phase == PhaseCollective || s.Phase == PhaseFlow || s.Phase == PhaseQueueWait {
			continue
		}
		if seq < 0 || s.Seq == uint64(seq) {
			sum += s.Dur()
		}
	}
	return sum
}
