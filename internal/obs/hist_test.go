package obs

import (
	"math/rand"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v * 1000) // 1us .. 1ms in ns
	}
	if h.Count != 1000 {
		t.Fatalf("Count = %d", h.Count)
	}
	if h.MaxNS != 1_000_000 {
		t.Fatalf("MaxNS = %d", h.MaxNS)
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99 && p99 <= float64(h.MaxNS)) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v max=%d", p50, p90, p99, h.MaxNS)
	}
	// Log-bucketed estimates: the true p50 is 500us; the estimate must land
	// within the surrounding power-of-two bucket span.
	if p50 < 250_000 || p50 > 1_000_000 {
		t.Errorf("p50 = %vns, want within [250us, 1ms]", p50)
	}
	if q := h.Quantile(1); q != float64(h.MaxNS) {
		t.Errorf("Quantile(1) = %v, want MaxNS %d", q, h.MaxNS)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %v", q)
	}
}

// TestHistogramMergeProperty: for randomized observation sets split across
// two histograms, Merge preserves the total count, the per-bucket sums,
// the value sum and the max — i.e. merging is exactly equivalent to
// observing the union in one histogram.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var a, b, whole Histogram
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			v := rng.Int63n(1 << uint(10+rng.Intn(40)))
			whole.Observe(v)
			if rng.Intn(2) == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
		}
		var m Histogram
		m.Merge(&a)
		m.Merge(&b)
		if m != whole {
			t.Fatalf("trial %d: merge(a,b) != observe(union)\n merged: %+v\n whole:  %+v", trial, m, whole)
		}
		if m.Count != a.Count+b.Count || m.SumNS != a.SumNS+b.SumNS {
			t.Fatalf("trial %d: count/sum not additive", trial)
		}
		for i := range m.Buckets {
			if m.Buckets[i] != a.Buckets[i]+b.Buckets[i] {
				t.Fatalf("trial %d: bucket %d not additive", trial, i)
			}
		}
	}
}

func TestSizeClassLabels(t *testing.T) {
	cases := []struct {
		bytes int
		label string
	}{
		{0, "0B"}, {1, "1B"}, {4, "4B"}, {5, "4B"}, {9, "8B"},
		{1024, "1KiB"}, {4096, "4KiB"}, {1 << 21, "2MiB"},
	}
	for _, c := range cases {
		if got := SizeClassLabel(SizeClass(c.bytes)); got != c.label {
			t.Errorf("SizeClassLabel(SizeClass(%d)) = %q, want %q", c.bytes, got, c.label)
		}
	}
	// Classes are monotone in size.
	prev := uint8(0)
	for b := 1; b <= 1<<24; b <<= 1 {
		c := SizeClass(b)
		if c < prev {
			t.Fatalf("SizeClass not monotone at %d", b)
		}
		prev = c
	}
}

func TestHistKeyString(t *testing.T) {
	k := HistKey{Op: OpAllreduce, SizeClass: SizeClass(1024), Backend: "gxhc"}
	if got := k.String(); got != "allreduce.1KiB.gxhc" {
		t.Errorf("HistKey.String() = %q", got)
	}
}
