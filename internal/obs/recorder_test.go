package obs

import (
	"strings"
	"testing"

	"xhc/internal/mem"
	"xhc/internal/sim"
)

// feedStep records one operation step (same seq) across lanes with the
// given per-lane start/duration ticks.
func feedStep(r *OpRecorder, seq uint64, starts, durs []int64) {
	for lane := range starts {
		r.RecordFlight(FlightRecord{
			Seq: seq, Start: starts[lane], End: starts[lane] + durs[lane],
			Bytes: 4096, Lane: int32(lane), Chunks: 1, Levels: 1, Op: OpBcast,
		})
	}
}

func newTestRecorder(lanes int) (*Registry, *OpRecorder) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	r := newOpRecorder(reg, "w0", lanes, DefaultFlightCap, SimTicksPerUS, clk.now)
	return reg, r
}

func TestStragglerArrivedLate(t *testing.T) {
	reg, r := newTestRecorder(4)
	r.SetReplayToken("0x0000000000000001:0x0000000000000002")

	us := int64(SimTicksPerUS)
	// Step 1: lane 2 enters the collective 300us after everyone else while
	// the step median latency is ~10us — far past k*median and the floor.
	feedStep(r, 1, []int64{0, us, 300 * us, 2 * us}, []int64{301 * us, 10 * us, 2 * us, 10 * us})
	// Step 2 closes step 1 and must itself stay clean.
	feedStep(r, 2, []int64{400 * us, 401 * us, 400 * us, 402 * us}, []int64{10 * us, 10 * us, 11 * us, 10 * us})
	r.FlushDetector()

	if got := reg.FaultCount(FaultStraggler); got != 0 {
		t.Errorf("detector must not count injected faults: %d", got)
	}
	dumps := reg.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1 (step 2 must not trip)", len(dumps))
	}
	d := dumps[0]
	if d.Kind != "straggler" || d.OffLane != 2 || d.OffSeq != 1 {
		t.Fatalf("dump = kind %q lane %d seq %d", d.Kind, d.OffLane, d.OffSeq)
	}
	if !strings.Contains(d.Reason, "arrived late") {
		t.Errorf("reason = %q, want arrival-skew verdict", d.Reason)
	}
	if d.ReplayToken != "0x0000000000000001:0x0000000000000002" {
		t.Errorf("replay token not attached: %q", d.ReplayToken)
	}
	var off int
	for _, rec := range d.Records {
		if rec.Offending {
			off++
			if rec.Lane != 2 || rec.Seq != 1 {
				t.Errorf("offending record = lane %d seq %d", rec.Lane, rec.Seq)
			}
		}
	}
	if off != 1 {
		t.Errorf("offending records = %d, want 1", off)
	}

	snap := reg.Snapshot()
	if got := snap.Value("anomaly.stragglers"); got != 1 {
		t.Errorf("anomaly.stragglers = %v", got)
	}
	if got := snap.Value("anomaly.flight_dumps"); got != 1 {
		t.Errorf("anomaly.flight_dumps = %v", got)
	}
}

func TestStragglerRanSlow(t *testing.T) {
	reg, r := newTestRecorder(4)
	us := int64(SimTicksPerUS)
	// All lanes enter together; lane 3 takes 400us against a 10us median.
	feedStep(r, 1, []int64{0, 0, 0, 0}, []int64{10 * us, 11 * us, 10 * us, 400 * us})
	r.FlushDetector()

	dumps := reg.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	if dumps[0].OffLane != 3 || !strings.Contains(dumps[0].Reason, "ran slow") {
		t.Errorf("dump = lane %d reason %q", dumps[0].OffLane, dumps[0].Reason)
	}
}

func TestStragglerNoFalsePositive(t *testing.T) {
	reg, r := newTestRecorder(8)
	us := int64(SimTicksPerUS)
	starts := make([]int64, 8)
	durs := make([]int64, 8)
	for seq := uint64(1); seq <= 50; seq++ {
		base := int64(seq) * 100 * us
		for l := range starts {
			starts[l] = base + int64(l)*us/4 // sub-us natural skew
			durs[l] = 10*us + int64(l)*us/2
		}
		feedStep(r, seq, starts, durs)
	}
	r.FlushDetector()
	if n := len(reg.Dumps()); n != 0 {
		t.Fatalf("clean run produced %d straggler dumps: %q", n, reg.Dumps()[0].Reason)
	}
}

func TestStragglerFloorSuppressesTinyOps(t *testing.T) {
	reg, r := newTestRecorder(2)
	us := int64(SimTicksPerUS)
	// 10x relative skew but only 10us absolute — under the 20us floor.
	feedStep(r, 1, []int64{0, 10 * us}, []int64{us, us})
	feedStep(r, 2, []int64{20 * us, 20 * us}, []int64{us, us})
	r.FlushDetector()
	if n := len(reg.Dumps()); n != 0 {
		t.Fatalf("floor did not suppress tiny-op skew: %d dumps", n)
	}
}

func TestDumpNow(t *testing.T) {
	reg, r := newTestRecorder(2)
	feedStep(r, 1, []int64{0, 0}, []int64{1000, 1000})
	d := r.DumpNow("failure", "invariant broken")
	if d.Kind != "failure" || d.Reason != "invariant broken" {
		t.Fatalf("dump = %q/%q", d.Kind, d.Reason)
	}
	if len(d.Records) != 2 {
		t.Errorf("records = %d, want 2", len(d.Records))
	}
	if n := len(reg.Dumps()); n != 1 {
		t.Errorf("registry dumps = %d", n)
	}
}

func TestRegistryKeepsBoundedDumps(t *testing.T) {
	reg, r := newTestRecorder(1)
	for i := 0; i < maxKeptDumps+5; i++ {
		r.DumpNow("failure", "x")
	}
	if n := len(reg.Dumps()); n != maxKeptDumps {
		t.Errorf("kept dumps = %d, want %d", n, maxKeptDumps)
	}
}

func TestDumpSink(t *testing.T) {
	reg, r := newTestRecorder(1)
	var got []*FlightDump
	reg.SetDumpSink(func(d *FlightDump) { got = append(got, d) })
	r.DumpNow("chaos", "triggered")
	if len(got) != 1 || got[0].Kind != "chaos" {
		t.Fatalf("sink saw %d dumps", len(got))
	}
}

// TestHistogramsFoldIntoSnapshot: RecordFlight and ObserveOp land in
// distinct (backend-labelled) histogram keys, and World.Finish folds both
// into the registry snapshot with quantile columns.
func TestHistogramsFoldIntoSnapshot(t *testing.T) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	w := reg.NewWorld("test", 2, SimTicksPerUS, clk.now)
	us := int64(SimTicksPerUS)
	for seq := uint64(1); seq <= 10; seq++ {
		w.Rec.RecordFlight(FlightRecord{
			Seq: seq, Start: int64(seq) * 100 * us, End: int64(seq)*100*us + 5*us,
			Bytes: 1024, Lane: 0, Op: OpBcast,
		})
		w.Rec.ObserveOp(0, seq, OpBcast, "xhc-tree", 1024, 0, 7*us)
	}
	w.Finish(mem.Stats{}, sim.EngineStats{})

	hs := reg.HistSnapshot()
	if len(hs) != 2 {
		t.Fatalf("HistSnapshot keys = %d, want 2 (communicator + harness)", len(hs))
	}
	snap := reg.Snapshot()
	for _, key := range []string{"lat.bcast.1KiB.xhc", "lat.bcast.1KiB.xhc-tree"} {
		if got := snap.Value(key + ".count"); got != 10 {
			t.Errorf("%s.count = %v, want 10", key, got)
		}
		if p50 := snap.Value(key + ".p50_us"); p50 <= 0 {
			t.Errorf("%s.p50_us = %v", key, p50)
		}
	}
}
