package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"xhc/internal/mem"
	"xhc/internal/sim"
)

func telemetryFixture() *Registry {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	w := reg.NewWorld("test", 2, SimTicksPerUS, clk.now)
	us := int64(SimTicksPerUS)
	for seq := uint64(1); seq <= 20; seq++ {
		w.Rec.RecordFlight(FlightRecord{
			Seq: seq, Start: int64(seq) * 50 * us, End: int64(seq)*50*us + 3*us,
			Bytes: 4096, Lane: int32(seq % 2), Op: OpBcast,
		})
	}
	w.Rec.DumpNow("failure", "fixture dump")
	reg.CountFault(FaultStraggler, 3)
	w.Finish(mem.Stats{}, sim.EngineStats{})
	return reg
}

// promLine matches one Prometheus text-exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?[0-9.eE+-]+|[-+]Inf)$`)

func TestTelemetryMetricsIsValidPrometheusText(t *testing.T) {
	h := NewTelemetryHandler(telemetryFixture())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	body := rr.Body.String()
	var samples int
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples exported")
	}
	for _, want := range []string{
		"xhc_faults_injected_straggler 3",
		`xhc_op_latency_us{collective="bcast",size="4KiB",backend="xhc",quantile="0.5"}`,
		`xhc_op_latency_ns_bucket{collective="bcast",size="4KiB",backend="xhc",le="+Inf"} 20`,
		`xhc_op_latency_ns_count{collective="bcast",size="4KiB",backend="xhc"} 20`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
}

func TestTelemetryFlightEndpoint(t *testing.T) {
	h := NewTelemetryHandler(telemetryFixture())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/flight", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var dumps []FlightDump
	if err := json.Unmarshal(rr.Body.Bytes(), &dumps); err != nil {
		t.Fatalf("/flight is not a JSON dump array: %v", err)
	}
	if len(dumps) != 1 || dumps[0].Kind != "failure" {
		t.Fatalf("dumps = %+v", dumps)
	}
}

func TestStartTelemetryServes(t *testing.T) {
	reg := telemetryFixture()
	addr, err := StartTelemetry(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "xhc_ops") {
		t.Fatalf("live /metrics: status %d body %.120s", resp.StatusCode, body)
	}
}
