package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// OpCode is the compact collective-kind tag flight records carry. The code
// space is fixed so a record stays pointer-free; String returns the same
// names the tracer and the coll registry use.
type OpCode uint8

// Known collective kinds.
const (
	OpOther OpCode = iota
	OpBcast
	OpAllreduce
	OpReduce
	OpBarrier
	OpAllgather
	OpScatter
	OpGather
	OpP2P
	// OpRequest spans a non-blocking request from issue to completion
	// (queueing included), keeping request histograms off the per-collective
	// body keys.
	OpRequest

	nOpCodes
)

var opCodeNames = [nOpCodes]string{
	"other", "bcast", "allreduce", "reduce", "barrier", "allgather",
	"scatter", "gather", "p2p", "request",
}

// String names the op code.
func (o OpCode) String() string {
	if int(o) < len(opCodeNames) {
		return opCodeNames[o]
	}
	return fmt.Sprintf("OpCode(%d)", int(o))
}

// OpCodeOf maps a collective name to its code (OpOther when unknown). Not
// for hot paths; instrumented code passes the constants directly.
func OpCodeOf(name string) OpCode {
	for c, n := range opCodeNames {
		if n == name {
			return OpCode(c)
		}
	}
	return OpOther
}

// RecKind distinguishes the three record streams a flight ring carries:
// intra-node collective bodies (the straggler detector's and critical-path
// accumulator's input), non-blocking request lifecycles, and cluster-level
// network ops (a leader's NIC staging + fabric exchange) — each with its
// own seq stream, so consumers must filter by kind before grouping.
type RecKind uint8

// Flight-record kinds.
const (
	RecOp RecKind = iota
	RecRequest
	RecNet
)

// FlightRecord is the compact per-operation record the flight recorder
// keeps: one per (rank, collective op), fixed size, no pointers. Times are
// in the recorder's clock ticks (virtual picoseconds in simulated worlds,
// wall nanoseconds in gxhc); Phase holds the per-phase duration breakdown
// from the segment clock.
type FlightRecord struct {
	Seq   uint64
	Start int64
	End   int64
	Bytes int64
	// Phase[p] is the ticks this rank spent in Phase p during the op.
	Phase  [NPhases]int64
	Lane   int32 // rank
	Node   int16 // cluster node/shard id (0 on single-node worlds)
	Chunks uint16
	Levels uint8
	Op     OpCode
	Kind   RecKind
}

// Dur returns the record's total duration in ticks.
func (r FlightRecord) Dur() int64 { return r.End - r.Start }

// DefaultFlightCap is the per-rank ring capacity worlds record with.
const DefaultFlightCap = 64

// Flight is a fixed-capacity per-rank ring buffer of FlightRecords: the
// always-on forensic memory of one world. Recording is allocation-free —
// each lane's backing array is allocated once, and a record is a struct
// copy into the ring slot. A per-lane mutex (no allocation, a few ns
// uncontended) makes recording safe from real goroutines (gxhc) and lets a
// dump read a consistent snapshot while lanes are still being written.
type Flight struct {
	ticksPerUS float64
	lanes      []flightLane
}

type flightLane struct {
	mu   sync.Mutex
	n    uint64 // total records ever written to this lane
	ring []FlightRecord
}

// NewFlight creates a recorder with one ring of capPerLane records per
// lane. ticksPerUS converts record times for dumps.
func NewFlight(lanes, capPerLane int, ticksPerUS float64) *Flight {
	if capPerLane <= 0 {
		capPerLane = DefaultFlightCap
	}
	f := &Flight{ticksPerUS: ticksPerUS, lanes: make([]flightLane, lanes)}
	for i := range f.lanes {
		f.lanes[i].ring = make([]FlightRecord, capPerLane)
	}
	return f
}

// Lanes returns the number of lanes.
func (f *Flight) Lanes() int { return len(f.lanes) }

// Cap returns the per-lane ring capacity.
func (f *Flight) Cap() int {
	if len(f.lanes) == 0 {
		return 0
	}
	return len(f.lanes[0].ring)
}

// Record appends rec to its lane's ring, overwriting the oldest record
// once the ring is full. Out-of-range lanes are dropped. The path is
// allocation-free (pinned by TestFlightRecordZeroAllocs).
func (f *Flight) Record(rec FlightRecord) {
	if rec.Lane < 0 || int(rec.Lane) >= len(f.lanes) {
		return
	}
	l := &f.lanes[rec.Lane]
	l.mu.Lock()
	l.ring[l.n%uint64(len(l.ring))] = rec
	l.n++
	l.mu.Unlock()
}

// LaneCount returns how many records were ever written to lane (may exceed
// the ring capacity).
func (f *Flight) LaneCount(lane int) uint64 {
	l := &f.lanes[lane]
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// LaneRecords returns a copy of lane's retained records, oldest first.
func (f *Flight) LaneRecords(lane int) []FlightRecord {
	l := &f.lanes[lane]
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	cap64 := uint64(len(l.ring))
	keep := n
	if keep > cap64 {
		keep = cap64
	}
	out := make([]FlightRecord, 0, keep)
	for i := n - keep; i < n; i++ {
		out = append(out, l.ring[i%cap64])
	}
	return out
}

// FlightDump is the JSON-ready forensic dump of a Flight: every retained
// record across all lanes, decoded into names and microseconds, plus the
// reason the dump was taken and (in verify runs) the xhcverify replay
// token that reproduces the run bit-exactly.
type FlightDump struct {
	World       string `json:"world"`
	Kind        string `json:"kind"` // "straggler" | "failure" | "explicit"
	Reason      string `json:"reason"`
	ReplayToken string `json:"replay_token,omitempty"`
	// OffLane/OffSeq identify the offending operation for anomaly dumps
	// (matching records carry "offending": true).
	OffLane int               `json:"offending_lane,omitempty"`
	OffSeq  uint64            `json:"offending_seq,omitempty"`
	Records []FlightDumpEntry `json:"records"`
}

// FlightDumpEntry is one decoded flight record in a dump.
type FlightDumpEntry struct {
	Lane      int                `json:"lane"`
	Node      int                `json:"node,omitempty"`
	Op        string             `json:"op"`
	Seq       uint64             `json:"seq"`
	Bytes     int64              `json:"bytes"`
	Levels    int                `json:"levels"`
	Chunks    int                `json:"chunks"`
	StartUS   float64            `json:"start_us"`
	DurUS     float64            `json:"dur_us"`
	Net       bool               `json:"net,omitempty"`     // cluster-level network op
	Request   bool               `json:"request,omitempty"` // non-blocking request lifecycle
	Offending bool               `json:"offending,omitempty"`
	PhasesUS  map[string]float64 `json:"phases_us,omitempty"`
}

// Dump snapshots every lane's retained records into a FlightDump, oldest
// first, ordered by start time then lane. offLane/offSeq mark the
// offending op for anomaly dumps (pass offLane < 0 for none). The dump
// path may allocate; only Record is allocation-free.
func (f *Flight) Dump(kind, reason string, offLane int, offSeq uint64) *FlightDump {
	d := &FlightDump{Kind: kind, Reason: reason, Records: []FlightDumpEntry{}}
	if offLane >= 0 {
		d.OffLane, d.OffSeq = offLane, offSeq
	}
	var recs []FlightRecord
	for lane := range f.lanes {
		recs = append(recs, f.LaneRecords(lane)...)
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].Lane < recs[j].Lane
	})
	for _, r := range recs {
		e := FlightDumpEntry{
			Lane: int(r.Lane), Node: int(r.Node), Op: r.Op.String(), Seq: r.Seq,
			Bytes: r.Bytes, Levels: int(r.Levels), Chunks: int(r.Chunks),
			StartUS: float64(r.Start) / f.ticksPerUS,
			DurUS:   float64(r.Dur()) / f.ticksPerUS,
			Net:     r.Kind == RecNet, Request: r.Kind == RecRequest,
		}
		if offLane >= 0 && int(r.Lane) == offLane && r.Seq == offSeq {
			e.Offending = true
		}
		for ph, t := range r.Phase {
			if t > 0 {
				if e.PhasesUS == nil {
					e.PhasesUS = make(map[string]float64, NPhases)
				}
				e.PhasesUS[Phase(ph).String()] = float64(t) / f.ticksPerUS
			}
		}
		d.Records = append(d.Records, e)
	}
	return d
}

// WriteJSON writes the dump as an indented JSON document.
func (d *FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
