package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON that
// chrome://tracing and Perfetto load directly).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the tracers' spans as one Chrome-trace JSON
// document: each tracer becomes a process (pid), each lane a thread (tid),
// each span a complete ("X") event with ts/dur in microseconds.
func WriteChromeTrace(w io.Writer, tracers ...*Tracer) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, t := range tracers {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: t.PID,
			Args: map[string]any{"name": t.Label},
		})
		for lane := range t.lanes {
			if len(t.lanes[lane]) == 0 {
				continue
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: t.PID, TID: lane,
				Args: map[string]any{"name": laneName(t, lane)},
			})
		}
		for _, s := range t.Spans() {
			dur := float64(s.Dur()) / t.TicksPerUS
			args := map[string]any{"seq": s.Seq}
			if s.Level >= 0 {
				args["level"] = s.Level
			}
			if s.Bytes > 0 {
				args["bytes"] = s.Bytes
			}
			if s.From >= 0 {
				args["from"] = s.From
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Phase.String(), Cat: s.Op, Ph: "X",
				PID: t.PID, TID: s.Lane,
				TS: float64(s.Start) / t.TicksPerUS, Dur: &dur,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// laneName labels a lane in trace viewers. Flow spans live on core lanes;
// everything else is a rank. With the default map-core policy the two
// coincide, so a single label serves.
func laneName(t *Tracer, lane int) string {
	return fmt.Sprintf("rank/core %d", lane)
}
