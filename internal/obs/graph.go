package obs

import (
	"fmt"
	"sort"
)

// Causal span graph and critical-path extraction. Phase spans already
// partition each lane's operation (the segment-clock invariant); the graph
// adds the cross-lane structure: program-order edges within a lane, plus
// the causal parent edge wait spans carry (Span.From — the lane whose flag
// write released the waiter). The critical path of one operation is the
// longest causal chain ending at the op's last-finishing lane: walk
// backward from the op end, attributing each covered segment to its
// phase's edge kind, and jump to the producer lane whenever the chain
// enters a wait span — the time a rank spent waiting is then explained by
// what its producer was doing, level by level, down through NIC staging
// and fabric exchanges on cluster runs.

// EdgeKind classifies one hop of a causal chain — the attribution
// vocabulary of critical-path blame. Edge kinds map 1:1 onto attribution
// phases (the umbrella PhaseCollective and overlay PhaseFlow have no edge).
type EdgeKind uint8

// Edge kinds, in blame-report order.
const (
	EdgeExpose EdgeKind = iota
	EdgeFlagWait
	EdgeChunkCopy
	EdgeReduce
	EdgeAck
	EdgeNICStage
	EdgeFabric
	EdgeQueueWait

	// NEdges is the number of edge kinds; blame counters are arrays of
	// this length.
	NEdges
)

var edgeNames = [NEdges]string{
	"expose", "flag_wait", "chunk_copy", "reduce", "ack",
	"nic_stage", "fabric", "queue_wait",
}

// String names the edge kind the way snapshot metrics embed it.
func (e EdgeKind) String() string {
	if int(e) < len(edgeNames) {
		return edgeNames[e]
	}
	return fmt.Sprintf("EdgeKind(%d)", int(e))
}

// phaseEdges maps each phase to its edge kind; NEdges marks phases with no
// edge (umbrella and overlay phases).
var phaseEdges = [NPhases]EdgeKind{
	PhaseCollective:  NEdges,
	PhaseExpose:      EdgeExpose,
	PhaseFlagWait:    EdgeFlagWait,
	PhaseChunkCopy:   EdgeChunkCopy,
	PhaseReduceSlice: EdgeReduce,
	PhaseAck:         EdgeAck,
	PhaseFlow:        NEdges,
	PhaseNICStage:    EdgeNICStage,
	PhaseFabric:      EdgeFabric,
	PhaseQueueWait:   EdgeQueueWait,
}

// EdgeOf maps a phase to its edge kind; ok is false for phases with no
// edge (the umbrella PhaseCollective and the overlay PhaseFlow).
func EdgeOf(ph Phase) (EdgeKind, bool) {
	if int(ph) >= len(phaseEdges) || phaseEdges[ph] == NEdges {
		return 0, false
	}
	return phaseEdges[ph], true
}

// SpanGraph indexes one tracer's (or one dump's) spans for causal walks:
// per-lane attribution spans in time order, plus the umbrella spans that
// delimit operations.
type SpanGraph struct {
	lanes     [][]Span // attribution spans per lane, sorted by Start
	umbrellas []Span   // PhaseCollective spans, sorted by (Op, Seq, Lane)
}

// NewSpanGraph builds the graph from a flat span list (Tracer.Spans or a
// parsed trace file). Spans of any lane set are accepted; lanes are
// re-derived from the spans themselves.
func NewSpanGraph(spans []Span) *SpanGraph {
	maxLane := -1
	for _, s := range spans {
		if s.Lane > maxLane {
			maxLane = s.Lane
		}
	}
	g := &SpanGraph{lanes: make([][]Span, maxLane+1)}
	for _, s := range spans {
		if s.Lane < 0 {
			continue
		}
		switch s.Phase {
		case PhaseCollective:
			g.umbrellas = append(g.umbrellas, s)
		case PhaseFlow:
			// Overlay attribution; not part of the causal chain.
		default:
			g.lanes[s.Lane] = append(g.lanes[s.Lane], s)
		}
	}
	for l := range g.lanes {
		sort.SliceStable(g.lanes[l], func(i, j int) bool {
			return g.lanes[l][i].Start < g.lanes[l][j].Start
		})
	}
	sort.SliceStable(g.umbrellas, func(i, j int) bool {
		a, b := g.umbrellas[i], g.umbrellas[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Lane < b.Lane
	})
	return g
}

// CritStep is one hop of a critical path: a contiguous segment of one
// lane's time attributed to one edge kind.
type CritStep struct {
	Lane  int
	Phase Phase
	Edge  EdgeKind
	Start int64
	End   int64
}

// CritPath is the longest causal chain through one operation: the walk
// from the op's last-finishing lane back to the op start, with per-edge
// latency attribution.
type CritPath struct {
	Op    string
	Seq   uint64
	Bytes int64
	// Start/End delimit the operation (earliest entry, latest exit across
	// lanes); CritLane is the last-finishing lane the walk starts from.
	Start    int64
	End      int64
	CritLane int
	// Steps is the chain in time order (earliest first); ByEdge the summed
	// attribution per edge kind. Covered is the chain's total attributed
	// time — equal to End minus the chain's earliest point, and equal to
	// End-Start exactly when the walk reaches the op start (virtual-time
	// worlds; wall-clock worlds may leave sub-mark gaps).
	Steps   []CritStep
	ByEdge  [NEdges]int64
	Covered int64
}

// CriticalPaths extracts the critical path of every operation in the
// graph, in (op, seq) order.
func (g *SpanGraph) CriticalPaths() []CritPath {
	var out []CritPath
	for i := 0; i < len(g.umbrellas); {
		j := i
		for j < len(g.umbrellas) && g.umbrellas[j].Op == g.umbrellas[i].Op && g.umbrellas[j].Seq == g.umbrellas[i].Seq {
			j++
		}
		out = append(out, g.extract(g.umbrellas[i:j]))
		i = j
	}
	return out
}

// CriticalPath extracts one operation's critical path (ok is false when
// the graph holds no umbrella span for it).
func (g *SpanGraph) CriticalPath(op string, seq uint64) (CritPath, bool) {
	i := sort.Search(len(g.umbrellas), func(i int) bool {
		u := g.umbrellas[i]
		return u.Op > op || (u.Op == op && u.Seq >= seq)
	})
	j := i
	for j < len(g.umbrellas) && g.umbrellas[j].Op == op && g.umbrellas[j].Seq == seq {
		j++
	}
	if i == j {
		return CritPath{}, false
	}
	return g.extract(g.umbrellas[i:j]), true
}

// extract walks one op's critical chain from the group of umbrella spans
// sharing (op, seq). Ties on the finishing time break toward the lower
// lane, so the extraction is deterministic for any span order.
func (g *SpanGraph) extract(group []Span) CritPath {
	cp := CritPath{Op: group[0].Op, Seq: group[0].Seq, Start: group[0].Start, End: group[0].End, CritLane: group[0].Lane}
	for _, u := range group {
		if u.Start < cp.Start {
			cp.Start = u.Start
		}
		if u.End > cp.End || (u.End == cp.End && u.Lane < cp.CritLane) {
			if u.End > cp.End {
				cp.End = u.End
				cp.CritLane = u.Lane
			} else {
				cp.CritLane = u.Lane
			}
		}
		if u.Bytes > cp.Bytes {
			cp.Bytes = u.Bytes
		}
	}
	lane, t := cp.CritLane, cp.End
	for t > cp.Start {
		s, ok := g.covering(lane, cp.Op, cp.Seq, t)
		if !ok {
			break
		}
		edge, ok := EdgeOf(s.Phase)
		if !ok {
			break
		}
		lo := s.Start
		if lo < cp.Start {
			lo = cp.Start
		}
		cp.Steps = append(cp.Steps, CritStep{Lane: lane, Phase: s.Phase, Edge: edge, Start: lo, End: t})
		cp.ByEdge[edge] += t - lo
		cp.Covered += t - lo
		t = lo
		// A wait span hands the chain to its producer: from here back, the
		// waiter's time is explained by what the releasing lane was doing.
		if s.From >= 0 && s.From != lane && s.From < len(g.lanes) {
			lane = s.From
		}
	}
	// Reverse into time order.
	for i, j := 0, len(cp.Steps)-1; i < j; i, j = i+1, j-1 {
		cp.Steps[i], cp.Steps[j] = cp.Steps[j], cp.Steps[i]
	}
	return cp
}

// covering finds the latest span on lane for (op, seq) that covers the
// instant just before t (Start < t <= End). Spans of one lane and op
// partition its time, so at most one qualifies.
func (g *SpanGraph) covering(lane int, op string, seq uint64, t int64) (Span, bool) {
	if lane < 0 || lane >= len(g.lanes) {
		return Span{}, false
	}
	spans := g.lanes[lane]
	// Scan backward from the first span at or after t. Spans of other
	// operations may interleave (request queue-wait overlays a helper's
	// earlier bodies), so only same-(op, seq) spans bound the scan: they
	// are non-overlapping, and one ending before t ends the search.
	i := sort.Search(len(spans), func(i int) bool { return spans[i].Start >= t })
	for i--; i >= 0; i-- {
		s := spans[i]
		if s.Op != op || s.Seq != seq {
			continue
		}
		if s.Start < t && s.End >= t {
			return s, true
		}
		if s.End < t {
			return Span{}, false
		}
	}
	return Span{}, false
}
