package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func mkRec(lane int32, seq uint64, start, dur int64) FlightRecord {
	return FlightRecord{
		Seq: seq, Start: start, End: start + dur, Bytes: 4096,
		Lane: lane, Chunks: 1, Levels: 2, Op: OpBcast,
	}
}

func TestFlightRingWrapAround(t *testing.T) {
	f := NewFlight(2, 4, SimTicksPerUS)
	if f.Lanes() != 2 || f.Cap() != 4 {
		t.Fatalf("Lanes/Cap = %d/%d", f.Lanes(), f.Cap())
	}
	for seq := uint64(1); seq <= 6; seq++ {
		f.Record(mkRec(0, seq, int64(seq)*100, 10))
	}
	f.Record(mkRec(1, 1, 50, 10))

	got := f.LaneRecords(0)
	if len(got) != 4 {
		t.Fatalf("lane 0 after wrap: %d records, want 4", len(got))
	}
	// Oldest-first, the last cap=4 of the 6 recorded.
	for i, r := range got {
		if want := uint64(3 + i); r.Seq != want {
			t.Errorf("lane 0 record %d: seq %d, want %d", i, r.Seq, want)
		}
	}
	if n := len(f.LaneRecords(1)); n != 1 {
		t.Errorf("lane 1: %d records, want 1", n)
	}
}

func TestFlightDropsOutOfRangeLanes(t *testing.T) {
	f := NewFlight(2, 4, SimTicksPerUS)
	f.Record(mkRec(-1, 1, 0, 10))
	f.Record(mkRec(2, 1, 0, 10))
	if n := len(f.LaneRecords(0)) + len(f.LaneRecords(1)); n != 0 {
		t.Errorf("out-of-range records kept: %d", n)
	}
}

func TestFlightDumpJSON(t *testing.T) {
	f := NewFlight(2, 8, SimTicksPerUS)
	f.Record(mkRec(1, 7, 3_000_000, 1_000_000)) // starts at 3us
	r0 := mkRec(0, 7, 1_000_000, 2_000_000)     // starts at 1us
	r0.Phase[PhaseFlagWait] = 1_500_000
	f.Record(r0)

	d := f.Dump("straggler", "lane 1 late", 1, 7)
	d.World = "w0"
	d.ReplayToken = "0x01:0x02"

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back FlightDump
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Kind != "straggler" || back.OffLane != 1 || back.OffSeq != 7 {
		t.Errorf("dump header = %q/%d/%d", back.Kind, back.OffLane, back.OffSeq)
	}
	if len(back.Records) != 2 {
		t.Fatalf("dump records = %d, want 2", len(back.Records))
	}
	// Sorted by start time, the offending record marked.
	if back.Records[0].Lane != 0 || back.Records[1].Lane != 1 {
		t.Errorf("records not start-sorted: lanes %d,%d", back.Records[0].Lane, back.Records[1].Lane)
	}
	if back.Records[0].Offending || !back.Records[1].Offending {
		t.Errorf("offending marks wrong: %v,%v", back.Records[0].Offending, back.Records[1].Offending)
	}
	if back.Records[0].PhasesUS["flag-wait"] != 1.5 {
		t.Errorf("flag-wait phase = %v us, want 1.5", back.Records[0].PhasesUS["flag-wait"])
	}
}

// TestFlightRecordZeroAllocs pins the always-on record path to zero
// allocations in steady state: the ring slot is overwritten in place, the
// histogram key already exists, and the detector's step buffers have
// reached their lane-count capacity. Same two-window technique as
// mem.TestRescheduleZeroAllocs: growth past a capacity boundary cannot hit
// both windows, so the smaller measurement is the steady-state count.
func TestFlightRecordZeroAllocs(t *testing.T) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	r := newOpRecorder(reg, "w0", 4, DefaultFlightCap, SimTicksPerUS, clk.now)

	seq := uint64(1)
	record := func() {
		for lane := int32(0); lane < 4; lane++ {
			r.RecordFlight(mkRec(lane, seq, int64(seq), 1000))
		}
		seq++
	}
	for i := 0; i < 100; i++ { // warm histogram keys and detector buffers
		record()
	}
	a1 := testing.AllocsPerRun(100, record)
	a2 := testing.AllocsPerRun(100, record)
	if m := minF(a1, a2); m != 0 {
		t.Fatalf("RecordFlight allocates in steady state: %.2f allocs/op (runs: %.2f, %.2f)", m, a1, a2)
	}
}

// TestObserveOpZeroAllocs pins the harness-level observation path too.
func TestObserveOpZeroAllocs(t *testing.T) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	r := newOpRecorder(reg, "w0", 2, DefaultFlightCap, SimTicksPerUS, clk.now)

	it := int64(0)
	observe := func() {
		r.ObserveOp(0, uint64(it), OpBcast, "xhc-tree", 4096, it, it+1000)
		it++
	}
	for i := 0; i < 100; i++ {
		observe()
	}
	a1 := testing.AllocsPerRun(100, observe)
	a2 := testing.AllocsPerRun(100, observe)
	if m := minF(a1, a2); m != 0 {
		t.Fatalf("ObserveOp allocates in steady state: %.2f allocs/op (runs: %.2f, %.2f)", m, a1, a2)
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func BenchmarkRecordFlight(b *testing.B) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	r := newOpRecorder(reg, "w0", 1, DefaultFlightCap, SimTicksPerUS, clk.now)
	for i := 0; i < 64; i++ {
		r.RecordFlight(mkRec(0, uint64(i), int64(i), 1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordFlight(mkRec(0, uint64(64+i), int64(64+i), 1000))
	}
}

func BenchmarkObserveOp(b *testing.B) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	r := newOpRecorder(reg, "w0", 1, DefaultFlightCap, SimTicksPerUS, clk.now)
	for i := 0; i < 64; i++ {
		r.ObserveOp(0, uint64(i), OpBcast, "xhc-tree", 4096, int64(i), int64(i)+1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ObserveOp(0, uint64(64+i), OpBcast, "xhc-tree", 4096, int64(i), int64(i)+1000)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)&0xfffff + 1)
	}
}
