package obs

import (
	"fmt"
	"strings"
	"sync"

	"xhc/internal/mem"
	"xhc/internal/sim"
	"xhc/internal/topo"
	"xhc/internal/trace"
	"xhc/internal/xpmem"
)

// Metric is one named counter or ratio in a snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Snapshot is a point-in-time view of every counter a Registry has
// gathered, obtained from a single Snapshot() call.
type Snapshot struct {
	Metrics []Metric
}

// Get returns the named metric and whether it exists.
func (s Snapshot) Get(name string) (float64, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Value returns the named metric (0 if absent).
func (s Snapshot) Value(name string) float64 {
	v, _ := s.Get(name)
	return v
}

// String renders the snapshot as an aligned two-column report.
func (s Snapshot) String() string {
	var b strings.Builder
	b.WriteString("# observability snapshot\n")
	w := 0
	for _, m := range s.Metrics {
		if len(m.Name) > w {
			w = len(m.Name)
		}
	}
	for _, m := range s.Metrics {
		if m.Value == float64(int64(m.Value)) {
			fmt.Fprintf(&b, "%-*s %d\n", w+2, m.Name, int64(m.Value))
		} else {
			fmt.Fprintf(&b, "%-*s %.4f\n", w+2, m.Name, m.Value)
		}
	}
	return b.String()
}

// Registry is the unified metrics (and tracer) collection point of one
// process: every observed world folds its counters in when its run
// finishes, and Snapshot exposes the totals. All methods are safe for
// concurrent use — xhcrepro's parallel experiment cells create and finish
// worlds from many goroutines at once.
type Registry struct {
	mu      sync.Mutex
	trace   bool
	nextPID int
	tracers []*Tracer
	agg     aggregate
}

// aggregate is the folded counter state across all finished worlds.
type aggregate struct {
	worlds int64
	ops    int64

	mem              mem.Stats
	cache            xpmem.CacheStats
	eventsScheduled  int64
	eventsRun        int64
	maxHeapLen       int
	distCounts [5]int64
	distBytes  [5]int64
	flowCount  int64
	flowTimePS int64
}

// NewRegistry creates an empty registry. With traceEnabled, every world
// observed through NewWorld also gets a span tracer; otherwise Tracer
// fields stay nil and the instrumented code paths cost one nil check.
func NewRegistry(traceEnabled bool) *Registry {
	return &Registry{trace: traceEnabled}
}

// TraceEnabled reports whether per-world tracers are being created.
func (r *Registry) TraceEnabled() bool { return r.trace }

// NewWorld registers one observed world (or gxhc communicator) and returns
// its observation handle. lanes is the number of trace lanes (cores for
// simulated worlds, participants for gxhc); clock is the time source spans
// are recorded against.
func (r *Registry) NewWorld(label string, lanes int, ticksPerUS float64, clock func() int64) *World {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := &World{reg: r}
	if r.trace {
		w.Tracer = NewTracer(fmt.Sprintf("%s #%d", label, r.nextPID), r.nextPID, lanes, ticksPerUS, clock)
		r.tracers = append(r.tracers, w.Tracer)
	}
	r.nextPID++
	return w
}

// Tracers returns every tracer created so far (empty when tracing is off).
func (r *Registry) Tracers() []*Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Tracer(nil), r.tracers...)
}

// WriteChromeTrace exports all tracers as one Chrome-trace JSON document.
func (r *Registry) WriteChromeTrace(w interface{ Write([]byte) (int, error) }) error {
	return WriteChromeTrace(w, r.Tracers()...)
}

// Snapshot returns every gathered counter from a single call: flow-solver
// stats, registration-cache hit ratios, coherence fan-in queue depths,
// per-distance message counts, engine and flow attribution totals.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	a := r.agg
	r.mu.Unlock()

	var ms []Metric
	add := func(name string, v float64) { ms = append(ms, Metric{Name: name, Value: v}) }
	add("worlds", float64(a.worlds))
	add("ops", float64(a.ops))
	add("engine.events_scheduled", float64(a.eventsScheduled))
	add("engine.events_run", float64(a.eventsRun))
	add("engine.max_heap_len", float64(a.maxHeapLen))
	add("mem.flows_started", float64(a.mem.FlowsStarted))
	add("mem.bytes_moved", float64(a.mem.BytesMoved))
	add("mem.max_concurrent_flows", float64(a.mem.MaxConcurrent))
	add("mem.flow_spans", float64(a.flowCount))
	add("mem.flow_time_us", float64(a.flowTimePS)/SimTicksPerUS)
	add("mem.solver_fastpath", float64(a.mem.SolverFastPath))
	add("mem.solver_fallbacks", float64(a.mem.SolverFallbacks))
	add("mem.line_fetches", float64(a.mem.LineFetches))
	add("mem.line_hits", float64(a.mem.LineHits))
	add("mem.line_rmws", float64(a.mem.LineRMWs))
	add("mem.line_queue_wait_us", float64(a.mem.QueueWaitPS)/SimTicksPerUS)
	add("mem.line_waits", float64(a.mem.LineWaits))
	add("mem.max_line_waiters", float64(a.mem.MaxLineWaiters))
	add("regcache.hits", float64(a.cache.Hits))
	add("regcache.misses", float64(a.cache.Misses))
	add("regcache.evictions", float64(a.cache.Evictions))
	add("regcache.hit_ratio", a.cache.HitRatio())
	for d := topo.SelfCore; d <= topo.CrossSocket; d++ {
		add("msgs."+d.String()+".count", float64(a.distCounts[d]))
		add("msgs."+d.String()+".bytes", float64(a.distBytes[d]))
	}
	return Snapshot{Metrics: ms}
}

// World is the observation handle of one simulated world (or gxhc
// communicator): a tracer (nil when tracing is disabled) plus world-local
// accumulation that Finish folds into the registry. The world-local state
// is only touched from the world's engine goroutine, so no lock is needed
// until Finish.
type World struct {
	reg *Registry

	// Tracer records phase spans; nil when the registry was created with
	// tracing disabled. Instrumented code must nil-check it.
	Tracer *Tracer

	dist       *trace.Collector
	cache      xpmem.CacheStats
	ops        int64
	flowCount  int64
	flowTimePS int64
	finished   bool
}

// InitDistance arms Table II-style per-distance message accounting for the
// world's topology and rank mapping.
func (w *World) InitDistance(top *topo.Topology, m topo.Mapping) {
	w.dist = trace.New(top, m)
}

// RecordPull tallies one member<-leader data edge (core.Comm obsPull hook).
func (w *World) RecordPull(from, to, n int) {
	if w.dist != nil {
		w.dist.Record(from, to, n)
	}
}

// FlowHook returns the mem.System.OnFlow callback: it accumulates flow
// attribution and, when tracing, records a PhaseFlow span on the
// initiating core's lane.
func (w *World) FlowHook() func(core, bytes int, start, end sim.Time) {
	return func(core, bytes int, start, end sim.Time) {
		w.flowCount++
		w.flowTimePS += end - start
		if w.Tracer != nil {
			w.Tracer.Record(core, -1, PhaseFlow, "flow", 0, start, end, int64(bytes))
		}
	}
}

// AddCacheStats folds one registration cache's counters in (called by a
// component's flush hook after the run).
func (w *World) AddCacheStats(st xpmem.CacheStats) {
	w.cache.Hits += st.Hits
	w.cache.Misses += st.Misses
	w.cache.Evictions += st.Evictions
}

// AddOps folds a component's completed-operation count in.
func (w *World) AddOps(n int64) { w.ops += n }

// Finish folds the world's counters into the registry. It is idempotent
// per world and safe to call from any goroutine.
func (w *World) Finish(ms mem.Stats, es sim.EngineStats) {
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	if w.finished {
		return
	}
	w.finished = true
	a := &w.reg.agg
	a.worlds++
	a.ops += w.ops
	a.mem.FlowsStarted += ms.FlowsStarted
	a.mem.BytesMoved += ms.BytesMoved
	a.mem.MaxConcurrent = max(a.mem.MaxConcurrent, ms.MaxConcurrent)
	a.mem.LineFetches += ms.LineFetches
	a.mem.LineHits += ms.LineHits
	a.mem.LineRMWs += ms.LineRMWs
	a.mem.QueueWaitPS += ms.QueueWaitPS
	a.mem.LineWaits += ms.LineWaits
	a.mem.MaxLineWaiters = max(a.mem.MaxLineWaiters, ms.MaxLineWaiters)
	a.mem.SolverFastPath += ms.SolverFastPath
	a.mem.SolverFallbacks += ms.SolverFallbacks
	a.cache.Hits += w.cache.Hits
	a.cache.Misses += w.cache.Misses
	a.cache.Evictions += w.cache.Evictions
	a.eventsScheduled += es.EventsScheduled
	a.eventsRun += es.EventsRun
	a.maxHeapLen = max(a.maxHeapLen, es.MaxHeapLen)
	a.flowCount += w.flowCount
	a.flowTimePS += w.flowTimePS
	if w.dist != nil {
		for d := topo.SelfCore; d <= topo.CrossSocket; d++ {
			a.distCounts[d] += w.dist.Count(d)
			a.distBytes[d] += w.dist.Bytes(d)
		}
	}
}
