package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"xhc/internal/mem"
	"xhc/internal/sim"
	"xhc/internal/topo"
	"xhc/internal/trace"
	"xhc/internal/xpmem"
)

// Fault identifies one kind of injected fault (the verify harness's chaos
// hooks from PR 3). Injection sites count through World.Rec.CountFault so
// injected counts are visible in Snapshot and on the telemetry endpoint.
type Fault uint8

// Known injected-fault kinds.
const (
	// FaultStraggler is an injected per-op rank delay >= 10us (sim worlds).
	FaultStraggler Fault = iota
	// FaultPerturb is an injected sub-2us scheduling jitter (sim worlds).
	FaultPerturb
	// FaultEviction is a forced registration-cache eviction event.
	FaultEviction
	// FaultGxhcStraggler is the root-rank wall-clock delay in gxhc runs.
	FaultGxhcStraggler
	// FaultChaos is a chaos-config mutation applied to a run.
	FaultChaos

	nFaults
)

var faultNames = [nFaults]string{
	"straggler", "perturbation", "eviction", "gxhc_straggler", "chaos_mutation",
}

// String names the fault the way snapshot metrics embed it.
func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// HistStat is one latency histogram's summary in a snapshot: the key plus
// quantiles in microseconds.
type HistStat struct {
	Key    HistKey
	Count  int64
	MeanUS float64
	P50US  float64
	P90US  float64
	P99US  float64
	MaxUS  float64
}

// Metric is one named counter or ratio in a snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Snapshot is a point-in-time view of every counter a Registry has
// gathered, obtained from a single Snapshot() call.
type Snapshot struct {
	Metrics []Metric
	// Hists summarizes every (collective, size-class, backend) latency
	// histogram folded in so far, sorted by key. The same quantiles also
	// appear as flat "lat.<op>.<size>.<backend>.*" metrics.
	Hists []HistStat
}

// Get returns the named metric and whether it exists.
func (s Snapshot) Get(name string) (float64, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Value returns the named metric (0 if absent).
func (s Snapshot) Value(name string) float64 {
	v, _ := s.Get(name)
	return v
}

// String renders the snapshot as an aligned two-column report.
func (s Snapshot) String() string {
	var b strings.Builder
	b.WriteString("# observability snapshot\n")
	w := 0
	for _, m := range s.Metrics {
		if len(m.Name) > w {
			w = len(m.Name)
		}
	}
	for _, m := range s.Metrics {
		if m.Value == float64(int64(m.Value)) {
			fmt.Fprintf(&b, "%-*s %d\n", w+2, m.Name, int64(m.Value))
		} else {
			fmt.Fprintf(&b, "%-*s %.4f\n", w+2, m.Name, m.Value)
		}
	}
	return b.String()
}

// Registry is the unified metrics (and tracer) collection point of one
// process: every observed world folds its counters in when its run
// finishes, and Snapshot exposes the totals. All methods are safe for
// concurrent use — xhcrepro's parallel experiment cells create and finish
// worlds from many goroutines at once.
type Registry struct {
	mu      sync.Mutex
	trace   bool
	nextPID int
	tracers []*Tracer
	agg     aggregate
	hists   map[HistKey]*Histogram
	dumps   []*FlightDump
	sink    func(*FlightDump)
}

// maxKeptDumps bounds how many flight dumps the registry retains (oldest
// evicted first). Runs with many worlds would otherwise let late empty
// dumps crowd out the interesting one.
const maxKeptDumps = 8

// aggregate is the folded counter state across all finished worlds.
type aggregate struct {
	worlds int64
	ops    int64

	faults      [nFaults]int64
	stragglers  int64
	flightDumps int64
	maxInflight int64

	// Critical-path blame: per-edge attributed time (ns), the per-edge
	// latency histograms, and the number / summed latency of analyzed
	// operation steps (see critAccum).
	critBlameNS [NEdges]int64
	critHists   [NEdges]Histogram
	critOps     int64
	critPathNS  int64

	// Request-fusion counters (fused batches formed, sub-ops fused into
	// them, fused payload bytes, ragged-shape fuse aborts).
	fusionBatches int64
	fusionOps     int64
	fusionBytes   int64
	fuseAborts    int64

	mem              mem.Stats
	cache            xpmem.CacheStats
	eventsScheduled  int64
	eventsRun        int64
	maxHeapLen       int
	distCounts [5]int64
	distBytes  [5]int64
	flowCount  int64
	flowTimePS int64
}

// NewRegistry creates an empty registry. With traceEnabled, every world
// observed through NewWorld also gets a span tracer; otherwise Tracer
// fields stay nil and the instrumented code paths cost one nil check.
func NewRegistry(traceEnabled bool) *Registry {
	return &Registry{trace: traceEnabled}
}

// TraceEnabled reports whether per-world tracers are being created.
func (r *Registry) TraceEnabled() bool { return r.trace }

// NewWorld registers one observed world (or gxhc communicator) and returns
// its observation handle. lanes is the number of trace lanes (cores for
// simulated worlds, participants for gxhc); clock is the time source spans
// are recorded against.
func (r *Registry) NewWorld(label string, lanes int, ticksPerUS float64, clock func() int64) *World {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := &World{reg: r}
	if r.trace {
		w.Tracer = NewTracer(fmt.Sprintf("%s #%d", label, r.nextPID), r.nextPID, lanes, ticksPerUS, clock)
		r.tracers = append(r.tracers, w.Tracer)
	}
	w.Rec = newOpRecorder(r, fmt.Sprintf("%s #%d", label, r.nextPID), lanes, DefaultFlightCap, ticksPerUS, clock)
	r.nextPID++
	return w
}

// SetDumpSink installs a callback invoked (outside the registry lock) for
// every flight dump taken — the binaries use it to write dump files.
func (r *Registry) SetDumpSink(fn func(*FlightDump)) {
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// CountFault adds n to an injected-fault counter.
func (r *Registry) CountFault(f Fault, n int64) {
	if f >= nFaults {
		return
	}
	r.mu.Lock()
	r.agg.faults[f] += n
	r.mu.Unlock()
}

// FaultCount returns one injected-fault counter.
func (r *Registry) FaultCount(f Fault) int64 {
	if f >= nFaults {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.agg.faults[f]
}

func (r *Registry) countStraggler() {
	r.mu.Lock()
	r.agg.stragglers++
	r.mu.Unlock()
}

// addDump retains d (bounded) and hands it to the dump sink.
func (r *Registry) addDump(d *FlightDump) {
	r.mu.Lock()
	r.agg.flightDumps++
	r.dumps = append(r.dumps, d)
	if len(r.dumps) > maxKeptDumps {
		r.dumps = r.dumps[len(r.dumps)-maxKeptDumps:]
	}
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink(d)
	}
}

// Dumps returns the retained flight dumps, oldest first.
func (r *Registry) Dumps() []*FlightDump {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*FlightDump(nil), r.dumps...)
}

// HistSnapshot returns a copy of every folded latency histogram (the
// telemetry endpoint renders the raw buckets from it).
func (r *Registry) HistSnapshot() map[HistKey]Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[HistKey]Histogram, len(r.hists))
	for k, h := range r.hists {
		out[k] = *h
	}
	return out
}

// Tracers returns every tracer created so far (empty when tracing is off).
func (r *Registry) Tracers() []*Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Tracer(nil), r.tracers...)
}

// WriteChromeTrace exports all tracers as one Chrome-trace JSON document.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Tracers()...)
}

// Snapshot returns every gathered counter from a single call: flow-solver
// stats, registration-cache hit ratios, coherence fan-in queue depths,
// per-distance message counts, engine and flow attribution totals.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	a := r.agg
	hs := make([]HistStat, 0, len(r.hists))
	for k, h := range r.hists {
		hs = append(hs, HistStat{
			Key:    k,
			Count:  h.Count,
			MeanUS: h.MeanNS() / 1e3,
			P50US:  h.Quantile(0.50) / 1e3,
			P90US:  h.Quantile(0.90) / 1e3,
			P99US:  h.Quantile(0.99) / 1e3,
			MaxUS:  float64(h.MaxNS) / 1e3,
		})
	}
	r.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool {
		a, b := hs[i].Key, hs[j].Key
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.SizeClass != b.SizeClass {
			return a.SizeClass < b.SizeClass
		}
		return a.Backend < b.Backend
	})

	var ms []Metric
	add := func(name string, v float64) { ms = append(ms, Metric{Name: name, Value: v}) }
	add("worlds", float64(a.worlds))
	add("ops", float64(a.ops))
	add("engine.events_scheduled", float64(a.eventsScheduled))
	add("engine.events_run", float64(a.eventsRun))
	add("engine.max_heap_len", float64(a.maxHeapLen))
	add("mem.flows_started", float64(a.mem.FlowsStarted))
	add("mem.bytes_moved", float64(a.mem.BytesMoved))
	add("mem.max_concurrent_flows", float64(a.mem.MaxConcurrent))
	add("mem.flow_spans", float64(a.flowCount))
	add("mem.flow_time_us", float64(a.flowTimePS)/SimTicksPerUS)
	add("mem.solver_fastpath", float64(a.mem.SolverFastPath))
	add("mem.solver_fallbacks", float64(a.mem.SolverFallbacks))
	add("mem.line_fetches", float64(a.mem.LineFetches))
	add("mem.line_hits", float64(a.mem.LineHits))
	add("mem.line_rmws", float64(a.mem.LineRMWs))
	add("mem.line_queue_wait_us", float64(a.mem.QueueWaitPS)/SimTicksPerUS)
	add("mem.line_waits", float64(a.mem.LineWaits))
	add("mem.max_line_waiters", float64(a.mem.MaxLineWaiters))
	add("regcache.hits", float64(a.cache.Hits))
	add("regcache.misses", float64(a.cache.Misses))
	add("regcache.evictions", float64(a.cache.Evictions))
	add("regcache.hit_ratio", a.cache.HitRatio())
	for d := topo.SelfCore; d <= topo.CrossSocket; d++ {
		add("msgs."+d.String()+".count", float64(a.distCounts[d]))
		add("msgs."+d.String()+".bytes", float64(a.distBytes[d]))
	}
	for f := Fault(0); f < nFaults; f++ {
		add("faults.injected_"+f.String(), float64(a.faults[f]))
	}
	add("anomaly.stragglers", float64(a.stragglers))
	add("anomaly.flight_dumps", float64(a.flightDumps))
	add("requests.max_inflight", float64(a.maxInflight))
	add("crit.ops", float64(a.critOps))
	add("crit.path_us", float64(a.critPathNS)/1e3)
	for e := EdgeKind(0); e < NEdges; e++ {
		prefix := "crit." + e.String() + "."
		h := &a.critHists[e]
		add(prefix+"blame_us", float64(a.critBlameNS[e])/1e3)
		add(prefix+"count", float64(h.Count))
		add(prefix+"p50_us", h.Quantile(0.50)/1e3)
		add(prefix+"p99_us", h.Quantile(0.99)/1e3)
		add(prefix+"max_us", float64(h.MaxNS)/1e3)
	}
	add("fusion.batches", float64(a.fusionBatches))
	add("fusion.ops_fused", float64(a.fusionOps))
	add("fusion.fused_bytes", float64(a.fusionBytes))
	add("fusion.aborted_ragged", float64(a.fuseAborts))
	for _, h := range hs {
		prefix := "lat." + h.Key.String() + "."
		add(prefix+"count", float64(h.Count))
		add(prefix+"p50_us", h.P50US)
		add(prefix+"p90_us", h.P90US)
		add(prefix+"p99_us", h.P99US)
		add(prefix+"max_us", h.MaxUS)
	}
	return Snapshot{Metrics: ms, Hists: hs}
}

// World is the observation handle of one simulated world (or gxhc
// communicator): a tracer (nil when tracing is disabled) plus world-local
// accumulation that Finish folds into the registry. The world-local state
// is only touched from the world's engine goroutine, so no lock is needed
// until Finish.
type World struct {
	reg *Registry

	// Tracer records phase spans; nil when the registry was created with
	// tracing disabled. Instrumented code must nil-check it.
	Tracer *Tracer

	// Rec is the world's always-on op recorder: flight ring, latency
	// histograms and straggler detector. Never nil for an observed world.
	Rec *OpRecorder

	dist       *trace.Collector
	cache      xpmem.CacheStats
	ops        int64
	flowCount  int64
	flowTimePS int64
	finished   bool
}

// InitDistance arms Table II-style per-distance message accounting for the
// world's topology and rank mapping.
func (w *World) InitDistance(top *topo.Topology, m topo.Mapping) {
	w.dist = trace.New(top, m)
}

// RecordPull tallies one member<-leader data edge (core.Comm obsPull hook).
func (w *World) RecordPull(from, to, n int) {
	if w.dist != nil {
		w.dist.Record(from, to, n)
	}
}

// FlowHook returns the mem.System.OnFlow callback: it accumulates flow
// attribution and, when tracing, records a PhaseFlow span on the
// initiating core's lane.
func (w *World) FlowHook() func(core, bytes int, start, end sim.Time) {
	return func(core, bytes int, start, end sim.Time) {
		w.flowCount++
		w.flowTimePS += end - start
		if w.Tracer != nil {
			w.Tracer.Record(core, -1, PhaseFlow, "flow", 0, start, end, int64(bytes))
		}
	}
}

// AddCacheStats folds one registration cache's counters in (called by a
// component's flush hook after the run).
func (w *World) AddCacheStats(st xpmem.CacheStats) {
	w.cache.Hits += st.Hits
	w.cache.Misses += st.Misses
	w.cache.Evictions += st.Evictions
}

// AddOps folds a component's completed-operation count in.
func (w *World) AddOps(n int64) { w.ops += n }

// Sync folds the world's latency histograms, critical-path blame and
// fusion counters into the registry mid-run, without finishing the world:
// a subsequent Sync or Finish folds only what accumulated afterwards, so
// nothing is ever counted twice. This is the telemetry feed of the online
// tuner (internal/tune): Registry.Snapshot after a Sync reflects every
// operation completed so far, not just finished worlds.
//
// Call it only at a quiesced operation boundary — the per-lane histogram
// maps are single-writer and unlocked. Simulated worlds may Sync any time
// from the engine goroutine; gxhc communicators must Sync from rank 0
// inside a Retune window (every rank parked in the rendezvous, request
// workers drained), which is exactly where the bandit runs.
//
// The world-local engine/memory/cache counters are NOT folded here — they
// arrive with Finish, whose signature carries them. A Sync'd registry
// therefore shows live histograms and blame alongside finished-world-only
// counter totals.
func (w *World) Sync() {
	if w.Rec == nil {
		return
	}
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	if w.finished {
		return
	}
	if w.reg.hists == nil {
		w.reg.hists = make(map[HistKey]*Histogram)
	}
	w.Rec.foldInto(w.reg.hists)
	w.Rec.foldCritInto(&w.reg.agg)
	w.reg.agg.maxInflight = max(w.reg.agg.maxInflight, w.Rec.MaxInflight())
}

// Finish folds the world's counters and latency histograms into the
// registry. It is idempotent per world and safe to call from any
// goroutine. The detector flush happens before the registry lock is
// taken: a straggler found in the final step dumps the flight recorder,
// and the dump path takes the registry lock itself.
func (w *World) Finish(ms mem.Stats, es sim.EngineStats) {
	w.reg.mu.Lock()
	done := w.finished
	w.reg.mu.Unlock()
	if done {
		return
	}
	if w.Rec != nil {
		w.Rec.FlushDetector()
	}
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	if w.finished {
		return
	}
	w.finished = true
	a := &w.reg.agg
	a.worlds++
	a.ops += w.ops
	a.mem.FlowsStarted += ms.FlowsStarted
	a.mem.BytesMoved += ms.BytesMoved
	a.mem.MaxConcurrent = max(a.mem.MaxConcurrent, ms.MaxConcurrent)
	a.mem.LineFetches += ms.LineFetches
	a.mem.LineHits += ms.LineHits
	a.mem.LineRMWs += ms.LineRMWs
	a.mem.QueueWaitPS += ms.QueueWaitPS
	a.mem.LineWaits += ms.LineWaits
	a.mem.MaxLineWaiters = max(a.mem.MaxLineWaiters, ms.MaxLineWaiters)
	a.mem.SolverFastPath += ms.SolverFastPath
	a.mem.SolverFallbacks += ms.SolverFallbacks
	a.cache.Hits += w.cache.Hits
	a.cache.Misses += w.cache.Misses
	a.cache.Evictions += w.cache.Evictions
	a.eventsScheduled += es.EventsScheduled
	a.eventsRun += es.EventsRun
	a.maxHeapLen = max(a.maxHeapLen, es.MaxHeapLen)
	a.flowCount += w.flowCount
	a.flowTimePS += w.flowTimePS
	if w.dist != nil {
		for d := topo.SelfCore; d <= topo.CrossSocket; d++ {
			a.distCounts[d] += w.dist.Count(d)
			a.distBytes[d] += w.dist.Bytes(d)
		}
	}
	if w.Rec != nil {
		if w.reg.hists == nil {
			w.reg.hists = make(map[HistKey]*Histogram)
		}
		w.Rec.foldInto(w.reg.hists)
		w.Rec.foldCritInto(a)
		a.maxInflight = max(a.maxInflight, w.Rec.MaxInflight())
	}
}
