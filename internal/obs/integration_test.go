// Integration tests for the observability layer against real simulated
// worlds: phase spans partitioning a collective's latency, Chrome-trace
// export of a real run, and agreement between the standalone Table II
// collector and the registry's per-distance accounting.
package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/sim"
	"xhc/internal/topo"
	"xhc/internal/trace"
)

// observe installs a fresh registry as the process-wide world observer for
// the duration of one test.
func observe(t *testing.T, traceEnabled bool) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry(traceEnabled)
	old := env.Observer
	env.ObserveWorlds(reg)
	t.Cleanup(func() { env.Observer = old })
	return reg
}

// runBcast builds an observed 64-rank world on Epyc-2P, runs one broadcast
// of n bytes, and returns the world, communicator and per-rank latencies
// in virtual picoseconds.
func runBcast(t *testing.T, n int, setup func(*env.World, *core.Comm)) (*env.World, []sim.Time) {
	t.Helper()
	const nranks = 64
	top := topo.Epyc2P()
	w := env.NewWorld(top, top.MustMap(topo.MapCore, nranks))
	c := core.MustNew(w, core.DefaultConfig())
	if setup != nil {
		setup(w, c)
	}
	bufs := make([]*mem.Buffer, nranks)
	for r := range bufs {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, n)
	}
	lats := make([]sim.Time, nranks)
	if err := w.Run(func(p *env.Proc) {
		t0 := p.Now()
		c.Bcast(p, bufs[p.Rank], 0, n, 0)
		lats[p.Rank] = p.Now() - t0
	}); err != nil {
		t.Fatal(err)
	}
	return w, lats
}

// TestPhaseSpansSumToLatency pins the acceptance criterion: with tracing
// on, the per-phase attribution spans of one collective on one rank sum to
// that rank's reported latency within 1%. The segment-clock design makes
// the partition exact, so the test demands equality and reports the
// relative error on failure.
func TestPhaseSpansSumToLatency(t *testing.T) {
	reg := observe(t, true)
	w, lats := runBcast(t, 64<<10, nil)
	if w.Obs == nil || w.Obs.Tracer == nil {
		t.Fatal("observed world has no tracer")
	}
	tr := w.Obs.Tracer
	checked := 0
	for lane := 0; lane < tr.Lanes(); lane++ {
		for _, s := range tr.LaneSpans(lane) {
			if s.Phase != obs.PhaseCollective {
				continue
			}
			checked++
			covered := tr.CoveredTotal(lane, int64(s.Seq))
			dur := s.Dur()
			if dur <= 0 {
				t.Fatalf("lane %d: empty collective span %+v", lane, s)
			}
			if diff := covered - dur; diff != 0 {
				t.Errorf("lane %d %s seq %d: phases sum to %d ps, collective %d ps (%.3f%% off)",
					lane, s.Op, s.Seq, covered, dur, 100*float64(diff)/float64(dur))
			}
			// The collective span must also match the latency the harness
			// measured around the call.
			if got, want := dur, int64(lats[lane]); got != want {
				t.Errorf("lane %d: collective span %d ps, measured latency %d ps", lane, got, want)
			}
		}
	}
	if checked != 64 {
		t.Fatalf("found %d collective spans, want one per rank (64)", checked)
	}
	// All five core phases should appear somewhere in a 64 KiB broadcast
	// over a three-level hierarchy.
	for _, ph := range []obs.Phase{obs.PhaseExpose, obs.PhaseFlagWait, obs.PhaseChunkCopy, obs.PhaseAck} {
		found := false
		for lane := 0; lane < tr.Lanes() && !found; lane++ {
			found = tr.PhaseTotal(lane, ph, -1) > 0
		}
		if !found {
			t.Errorf("phase %v never recorded", ph)
		}
	}
	_ = reg
}

// TestChromeTraceFromRealRun writes the registry's trace of a real
// broadcast and checks it parses as Chrome-trace JSON with events.
func TestChromeTraceFromRealRun(t *testing.T) {
	reg := observe(t, true)
	runBcast(t, 16<<10, nil)
	var buf bytes.Buffer
	if err := reg.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var complete int
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			complete++
		}
	}
	if complete < 64 {
		t.Errorf("trace has %d complete events, want at least one per rank", complete)
	}
}

// TestCollectorAndRegistryAgree pins the dual pull-hook design: an
// experiment's trace.Collector installed on Comm.OnPull and the registry's
// per-distance accounting observe the same edges, so their Table II tallies
// must be identical for the same run.
func TestCollectorAndRegistryAgree(t *testing.T) {
	reg := observe(t, false)
	var col *trace.Collector
	w, _ := runBcast(t, 64<<10, func(w *env.World, c *core.Comm) {
		col = trace.New(w.Topo, w.Map)
		c.OnPull = col.Hook()
	})
	_ = w
	if col.Total() == 0 {
		t.Fatal("collector saw no messages")
	}
	snap := reg.Snapshot()
	for d := topo.SelfCore; d <= topo.CrossSocket; d++ {
		name := "msgs." + d.String()
		if got, want := snap.Value(name+".count"), float64(col.Count(d)); got != want {
			t.Errorf("%s.count: registry %v, collector %v", name, got, want)
		}
		if got, want := snap.Value(name+".bytes"), float64(col.Bytes(d)); got != want {
			t.Errorf("%s.bytes: registry %v, collector %v", name, got, want)
		}
	}
}

// TestSnapshotSingleCall pins the acceptance criterion that one Snapshot
// call exposes the previously scattered counters: registration-cache hit
// ratio, flow-solver fast-path/fallback counts, and per-distance message
// counts.
func TestSnapshotSingleCall(t *testing.T) {
	reg := observe(t, false)
	runBcast(t, 64<<10, nil)
	snap := reg.Snapshot()
	for _, name := range []string{
		"regcache.hits", "regcache.misses", "regcache.hit_ratio",
		"mem.solver_fastpath", "mem.solver_fallbacks",
		"mem.flows_started", "mem.bytes_moved",
		"engine.events_run",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("metric %q missing from snapshot", name)
		}
	}
	if snap.Value("worlds") != 1 {
		t.Errorf("worlds = %v, want 1", snap.Value("worlds"))
	}
	if snap.Value("ops") < 1 {
		t.Errorf("ops = %v, want >= 1", snap.Value("ops"))
	}
	if snap.Value("mem.flows_started") <= 0 {
		t.Error("flows_started not gathered")
	}
	if snap.Value("regcache.hits")+snap.Value("regcache.misses") <= 0 {
		t.Error("regcache counters not gathered")
	}
	var total float64
	for d := topo.SelfCore; d <= topo.CrossSocket; d++ {
		total += snap.Value("msgs." + d.String() + ".count")
	}
	if total <= 0 {
		t.Error("per-distance message counts not gathered")
	}
}
