package obs

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Straggler-detector defaults: an operation step is anomalous when the
// spread of rank start times (or a single rank's latency) exceeds
// DefaultStragglerK times the step's median latency, with an absolute
// floor so microsecond-scale noise on tiny operations never trips it.
const (
	DefaultStragglerK       = 4.0
	DefaultStragglerFloorUS = 20.0
)

// OpRecorder is one world's live telemetry sink: the always-on flight
// recorder, per-lane latency histograms, and the straggler detector. It is
// created for every observed world (simulated or gxhc); with no registry
// installed the instrumented code paths cost one nil check, exactly like
// the tracer.
//
// Lane discipline mirrors the Tracer: each lane (rank) is written by a
// single goroutine, so histogram observation takes no lock; the flight
// ring and the detector carry their own cheap mutexes so gxhc's real
// goroutines and anomaly dumps stay race-free.
type OpRecorder struct {
	reg   *Registry
	label string
	// Backend labels histograms fed by the instrumented communicator
	// itself via RecordFlight ("xhc" for simulated worlds, "gxhc" for the
	// goroutine-backed library). Harness-level observations pass their own
	// backend label to ObserveOp.
	Backend    string
	TicksPerUS float64
	// Now reads the recorder's clock (the engine's virtual clock for
	// simulated worlds, a wall clock for gxhc).
	Now func() int64

	flight *Flight
	lanes  []recLane
	det    stragglerDetector
	// maxInflight is the high-water mark of concurrently in-flight
	// non-blocking requests observed via NoteInflight.
	maxInflight atomic.Int64
	// quiesceDumps suppresses the straggler detector's flight dumps (the
	// straggler counter still advances). Allocation gates set it around
	// their measured window: the gate itself provokes a GC pause that can
	// manufacture a straggler, and the resulting dump is a deliberately
	// heavyweight diagnostic, not a steady-state op-path allocation.
	quiesceDumps atomic.Bool

	mu    sync.Mutex
	token string
}

type recLane struct {
	hists map[HistKey]*Histogram
}

func newOpRecorder(reg *Registry, label string, lanes, flightCap int, ticksPerUS float64, now func() int64) *OpRecorder {
	r := &OpRecorder{
		reg:        reg,
		label:      label,
		Backend:    "xhc",
		TicksPerUS: ticksPerUS,
		Now:        now,
		flight:     NewFlight(lanes, flightCap, ticksPerUS),
		lanes:      make([]recLane, lanes),
	}
	r.det.k = DefaultStragglerK
	r.det.floor = int64(DefaultStragglerFloorUS * ticksPerUS)
	return r
}

// Flight returns the world's flight recorder.
func (r *OpRecorder) Flight() *Flight { return r.flight }

// SetReplayToken attaches the xhcverify cfgseed:schedseed pair to every
// dump this recorder produces, so a forensic dump always names the run
// that can replay it bit-exactly.
func (r *OpRecorder) SetReplayToken(tok string) {
	r.mu.Lock()
	r.token = tok
	r.mu.Unlock()
}

// SetStragglerThreshold overrides the detector's k multiplier and
// absolute floor (in microseconds). Call before the run starts.
func (r *OpRecorder) SetStragglerThreshold(k, floorUS float64) {
	r.det.mu.Lock()
	r.det.k = k
	r.det.floor = int64(floorUS * r.TicksPerUS)
	r.det.mu.Unlock()
}

// ticksToNS converts recorder ticks to nanoseconds (the histogram unit).
func (r *OpRecorder) ticksToNS(t int64) int64 {
	if t <= 0 {
		return 0
	}
	return int64(float64(t) * 1e3 / r.TicksPerUS)
}

// observeLane folds one duration into the lane's (op, size, backend)
// histogram. Allocation-free once the key exists.
func (r *OpRecorder) observeLane(lane int, key HistKey, ns int64) {
	if lane < 0 || lane >= len(r.lanes) {
		return
	}
	l := &r.lanes[lane]
	h := l.hists[key]
	if h == nil {
		if l.hists == nil {
			l.hists = make(map[HistKey]*Histogram)
		}
		h = &Histogram{}
		l.hists[key] = h
	}
	h.Observe(ns)
}

// RecordFlight is the always-on per-op record path of the instrumented
// communicators: it appends the record to the flight ring, folds the op
// latency into the recorder-backend histogram and feeds the straggler
// detector, which on a verdict bumps the registry's anomaly counter and
// dumps the flight recorder. 0 allocs/op in steady state (pinned by
// TestFlightRecordZeroAllocs and BenchmarkRecordFlight).
func (r *OpRecorder) RecordFlight(rec FlightRecord) {
	r.flight.Record(rec)
	r.observeLane(int(rec.Lane), HistKey{Op: rec.Op, SizeClass: SizeClass(int(rec.Bytes)), Backend: r.Backend}, r.ticksToNS(rec.Dur()))
	if v, ok := r.det.observe(int(rec.Lane), rec.Seq, rec.Op, rec.Start, rec.End); ok {
		r.anomalyDump("straggler", v)
	}
}

// RecordRequestSpan records one non-blocking request's issue-to-completion
// span: flight ring + (OpRequest, size, backend) histogram, but NOT the
// straggler detector — a request span includes queueing time behind earlier
// requests, and its seq stream is disjoint from the collective bodies', so
// feeding it to the detector would corrupt the step grouping.
func (r *OpRecorder) RecordRequestSpan(rec FlightRecord) {
	r.flight.Record(rec)
	r.observeLane(int(rec.Lane), HistKey{Op: rec.Op, SizeClass: SizeClass(int(rec.Bytes)), Backend: r.Backend}, r.ticksToNS(rec.Dur()))
}

// NoteInflight folds one in-flight-request gauge sample into the
// recorder's high-water mark (surfaced as requests.max_inflight in
// Registry.Snapshot). Lock-free CAS max, allocation-free.
func (r *OpRecorder) NoteInflight(cur int64) {
	for {
		old := r.maxInflight.Load()
		if cur <= old || r.maxInflight.CompareAndSwap(old, cur) {
			return
		}
	}
}

// MaxInflight returns the recorder's in-flight high-water mark.
func (r *OpRecorder) MaxInflight() int64 { return r.maxInflight.Load() }

// ObserveOp is the harness-level observation point: one call per (rank,
// operation) with the measured start/end ticks. It feeds the (op, size,
// backend) histogram under the harness's own backend label; straggler
// detection stays with the communicator-level RecordFlight path, which
// sees every rank's per-op timing regardless of harness.
func (r *OpRecorder) ObserveOp(lane int, seq uint64, op OpCode, backend string, bytes int, start, end int64) {
	r.observeLane(lane, HistKey{Op: op, SizeClass: SizeClass(bytes), Backend: backend}, r.ticksToNS(end-start))
}

// FlushDetector closes the last open detector step (called by Finish; the
// final operation of a run has no successor to close it).
func (r *OpRecorder) FlushDetector() {
	if v, ok := r.det.flush(); ok {
		r.anomalyDump("straggler", v)
	}
}

// DumpNow takes an explicit flight dump (invariant failure, chaos
// trigger, operator signal), registers it with the registry and returns
// it.
func (r *OpRecorder) DumpNow(kind, reason string) *FlightDump {
	d := r.flight.Dump(kind, reason, -1, 0)
	r.finishDump(d)
	return d
}

// SetQuiesceDumps toggles suppression of anomaly flight dumps (detection
// counters keep advancing). See the quiesceDumps field.
func (r *OpRecorder) SetQuiesceDumps(on bool) { r.quiesceDumps.Store(on) }

func (r *OpRecorder) anomalyDump(kind string, v stragglerVerdict) {
	r.reg.countStraggler()
	if r.quiesceDumps.Load() {
		return
	}
	d := r.flight.Dump(kind, fmt.Sprintf(
		"straggler: lane %d %s seq %d (%s), step skew %.1fus vs median latency %.1fus",
		v.lane, v.op, v.seq, v.why,
		float64(v.skew)/r.TicksPerUS, float64(v.median)/r.TicksPerUS),
		v.lane, v.seq)
	r.finishDump(d)
}

func (r *OpRecorder) finishDump(d *FlightDump) {
	d.World = r.label
	r.mu.Lock()
	d.ReplayToken = r.token
	r.mu.Unlock()
	r.reg.addDump(d)
}

// CountFault forwards an injected-fault count to the registry (used by
// the verify harness's injection sites so injected faults are visible in
// Snapshot and on the telemetry endpoint).
func (r *OpRecorder) CountFault(f Fault) { r.reg.CountFault(f, 1) }

// foldInto merges every lane's histograms into the registry aggregate.
// Called by World.Finish under the registry lock.
func (r *OpRecorder) foldInto(hists map[HistKey]*Histogram) {
	for i := range r.lanes {
		for k, h := range r.lanes[i].hists {
			dst := hists[k]
			if dst == nil {
				dst = &Histogram{}
				hists[k] = dst
			}
			dst.Merge(h)
		}
	}
}

// stragglerVerdict describes one detected straggler step.
type stragglerVerdict struct {
	lane   int
	seq    uint64
	op     OpCode
	why    string
	skew   int64 // ticks the offender exceeded the rest by
	median int64 // step median latency in ticks
}

// stragglerDetector groups harness observations into operation steps (one
// seq per step) and, when a step closes, flags it if the spread of start
// times — or the slowest rank's latency — exceeds k x the step's median
// latency (plus an absolute floor). Start-time spread is what an injected
// straggler looks like from the harness: the delayed rank enters the
// collective late while everyone else blocks waiting for it.
type stragglerDetector struct {
	mu    sync.Mutex
	k     float64
	floor int64

	seq    uint64
	op     OpCode
	open   bool
	lanes  []int64
	starts []int64
	durs   []int64
	sorted []int64
}

func (d *stragglerDetector) observe(lane int, seq uint64, op OpCode, start, end int64) (stragglerVerdict, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var v stragglerVerdict
	fired := false
	switch {
	case !d.open:
		d.reset(seq, op)
	case seq > d.seq:
		v, fired = d.evaluate()
		d.reset(seq, op)
	case seq < d.seq:
		// A late observation from an already-closed step (possible under
		// real goroutine scheduling in gxhc): drop it.
		return stragglerVerdict{}, false
	}
	d.lanes = append(d.lanes, int64(lane))
	d.starts = append(d.starts, start)
	d.durs = append(d.durs, end-start)
	return v, fired
}

func (d *stragglerDetector) flush() (stragglerVerdict, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, fired := d.evaluate()
	d.open = false
	d.lanes, d.starts, d.durs = d.lanes[:0], d.starts[:0], d.durs[:0]
	return v, fired
}

func (d *stragglerDetector) reset(seq uint64, op OpCode) {
	d.open = true
	d.seq = seq
	d.op = op
	d.lanes = d.lanes[:0]
	d.starts = d.starts[:0]
	d.durs = d.durs[:0]
}

// evaluate judges the currently buffered step. Caller holds d.mu.
func (d *stragglerDetector) evaluate() (stragglerVerdict, bool) {
	n := len(d.durs)
	if !d.open || n < 2 {
		return stragglerVerdict{}, false
	}
	d.sorted = append(d.sorted[:0], d.durs...)
	slices.Sort(d.sorted)
	med := d.sorted[n/2]
	thresh := int64(d.k * float64(med))
	if thresh < d.floor {
		thresh = d.floor
	}
	minStart, maxStart, maxStartI := d.starts[0], d.starts[0], 0
	maxDur, maxDurI := d.durs[0], 0
	for i := 1; i < n; i++ {
		if d.starts[i] < minStart {
			minStart = d.starts[i]
		}
		if d.starts[i] > maxStart {
			maxStart, maxStartI = d.starts[i], i
		}
		if d.durs[i] > maxDur {
			maxDur, maxDurI = d.durs[i], i
		}
	}
	if skew := maxStart - minStart; skew > thresh {
		return stragglerVerdict{
			lane: int(d.lanes[maxStartI]), seq: d.seq, op: d.op,
			why: "arrived late", skew: skew, median: med,
		}, true
	}
	if maxDur > thresh && maxDur-med > d.floor {
		return stragglerVerdict{
			lane: int(d.lanes[maxDurI]), seq: d.seq, op: d.op,
			why: "ran slow", skew: maxDur - med, median: med,
		}, true
	}
	return stragglerVerdict{}, false
}
