package obs

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Straggler-detector defaults: an operation step is anomalous when the
// spread of rank start times (or a single rank's latency) exceeds
// DefaultStragglerK times the step's median latency, with an absolute
// floor so microsecond-scale noise on tiny operations never trips it.
const (
	DefaultStragglerK       = 4.0
	DefaultStragglerFloorUS = 20.0
)

// OpRecorder is one world's live telemetry sink: the always-on flight
// recorder, per-lane latency histograms, and the straggler detector. It is
// created for every observed world (simulated or gxhc); with no registry
// installed the instrumented code paths cost one nil check, exactly like
// the tracer.
//
// Lane discipline mirrors the Tracer: each lane (rank) is written by a
// single goroutine, so histogram observation takes no lock; the flight
// ring and the detector carry their own cheap mutexes so gxhc's real
// goroutines and anomaly dumps stay race-free.
type OpRecorder struct {
	reg   *Registry
	label string
	// Backend labels histograms fed by the instrumented communicator
	// itself via RecordFlight ("xhc" for simulated worlds, "gxhc" for the
	// goroutine-backed library). Harness-level observations pass their own
	// backend label to ObserveOp.
	Backend    string
	TicksPerUS float64
	// Now reads the recorder's clock (the engine's virtual clock for
	// simulated worlds, a wall clock for gxhc).
	Now func() int64

	flight *Flight
	lanes  []recLane
	det    stragglerDetector
	// crit is the always-on critical-path accumulator: it regroups the
	// flight records of each operation step and, when the step closes,
	// attributes the critical (last-finishing) lane's phase breakdown to
	// per-edge blame counters and histograms. Same step discipline as the
	// straggler detector, same zero-alloc reused buffers.
	crit critAccum
	// node is the cluster node/shard id stamped into every record (0 for
	// single-node worlds); set once via SetNode before the run.
	node int16
	// backendNet labels the histograms of cluster-level network records
	// (RecordNet), derived lazily from Backend ("xhc" -> "xhc-net").
	backendNet string
	// Fusion counters (request-layer fusion path; counted on rank 0 like
	// Comm.Ops, so one count per collective op, not per rank).
	fusionBatches atomic.Int64
	fusionOps     atomic.Int64
	fusionBytes   atomic.Int64
	fuseAborts    atomic.Int64
	// maxInflight is the high-water mark of concurrently in-flight
	// non-blocking requests observed via NoteInflight.
	maxInflight atomic.Int64
	// quiesceDumps suppresses the straggler detector's flight dumps (the
	// straggler counter still advances). Allocation gates set it around
	// their measured window: the gate itself provokes a GC pause that can
	// manufacture a straggler, and the resulting dump is a deliberately
	// heavyweight diagnostic, not a steady-state op-path allocation.
	quiesceDumps atomic.Bool

	mu    sync.Mutex
	token string

	// folded tracks what previous folds already contributed to the
	// registry, so a mid-run World.Sync and the eventual World.Finish each
	// fold only the increment since the last fold (foldInto/foldCritInto).
	folded foldedState
}

type recLane struct {
	hists map[HistKey]*Histogram
}

// foldedState is the cumulative state as of the recorder's last fold into
// the registry. Histograms are value snapshots (Buckets is a fixed array);
// tick-derived totals are kept in the nanosecond unit they were folded in,
// so repeated folds sum to exactly what a single final fold would have
// contributed (ticksToNS truncates — subtracting already-folded NS instead
// of converting tick deltas keeps Sync+Finish byte-identical to
// Finish-only).
type foldedState struct {
	hists     map[HistKey]Histogram
	blameNS   [NEdges]int64
	critHists [NEdges]Histogram
	critOps   int64
	pathNS    int64

	fusionBatches int64
	fusionOps     int64
	fusionBytes   int64
	fuseAborts    int64
}

// histDelta returns the increment cur has accumulated since prev. Count,
// SumNS and Buckets subtract exactly; MaxNS stays cur's running maximum —
// Histogram.Merge takes the larger side, so re-merging a maximum already
// folded is idempotent.
func histDelta(cur, prev Histogram) Histogram {
	d := cur
	d.Count -= prev.Count
	d.SumNS -= prev.SumNS
	for i := range d.Buckets {
		d.Buckets[i] -= prev.Buckets[i]
	}
	return d
}

func newOpRecorder(reg *Registry, label string, lanes, flightCap int, ticksPerUS float64, now func() int64) *OpRecorder {
	r := &OpRecorder{
		reg:        reg,
		label:      label,
		Backend:    "xhc",
		TicksPerUS: ticksPerUS,
		Now:        now,
		flight:     NewFlight(lanes, flightCap, ticksPerUS),
		lanes:      make([]recLane, lanes),
	}
	r.det.k = DefaultStragglerK
	r.det.floor = int64(DefaultStragglerFloorUS * ticksPerUS)
	return r
}

// Flight returns the world's flight recorder.
func (r *OpRecorder) Flight() *Flight { return r.flight }

// SetReplayToken attaches the xhcverify cfgseed:schedseed pair to every
// dump this recorder produces, so a forensic dump always names the run
// that can replay it bit-exactly.
func (r *OpRecorder) SetReplayToken(tok string) {
	r.mu.Lock()
	r.token = tok
	r.mu.Unlock()
}

// SetStragglerThreshold overrides the detector's k multiplier and
// absolute floor (in microseconds). Call before the run starts.
func (r *OpRecorder) SetStragglerThreshold(k, floorUS float64) {
	r.det.mu.Lock()
	r.det.k = k
	r.det.floor = int64(floorUS * r.TicksPerUS)
	r.det.mu.Unlock()
}

// ticksToNS converts recorder ticks to nanoseconds (the histogram unit).
func (r *OpRecorder) ticksToNS(t int64) int64 {
	if t <= 0 {
		return 0
	}
	return int64(float64(t) * 1e3 / r.TicksPerUS)
}

// observeLane folds one duration into the lane's (op, size, backend)
// histogram. Allocation-free once the key exists.
func (r *OpRecorder) observeLane(lane int, key HistKey, ns int64) {
	if lane < 0 || lane >= len(r.lanes) {
		return
	}
	l := &r.lanes[lane]
	h := l.hists[key]
	if h == nil {
		if l.hists == nil {
			l.hists = make(map[HistKey]*Histogram)
		}
		h = &Histogram{}
		l.hists[key] = h
	}
	h.Observe(ns)
}

// SetNode stamps the cluster node/shard id into every record this
// recorder takes, making cross-shard forensics (and the cluster-aware
// straggler scan) attributable. Call before the run starts.
func (r *OpRecorder) SetNode(node int) { r.node = int16(node) }

// Node returns the recorder's cluster node id (0 outside clusters).
func (r *OpRecorder) Node() int { return int(r.node) }

// RecordFlight is the always-on per-op record path of the instrumented
// communicators: it appends the record to the flight ring, folds the op
// latency into the recorder-backend histogram and feeds the straggler
// detector (which on a verdict bumps the registry's anomaly counter and
// dumps the flight recorder) and the critical-path accumulator. 0
// allocs/op in steady state (pinned by TestFlightRecordZeroAllocs and
// BenchmarkRecordFlight).
func (r *OpRecorder) RecordFlight(rec FlightRecord) {
	rec.Node = r.node
	rec.Kind = RecOp
	r.flight.Record(rec)
	r.observeLane(int(rec.Lane), HistKey{Op: rec.Op, SizeClass: SizeClass(int(rec.Bytes)), Backend: r.Backend}, r.ticksToNS(rec.Dur()))
	r.crit.observe(r, &rec)
	if v, ok := r.det.observe(int(rec.Lane), rec.Seq, rec.Op, rec.Start, rec.End); ok {
		r.anomalyDump("straggler", v)
	}
}

// RecordRequest records one non-blocking request's lifecycle: the record
// spans issue to completion, with Phase[PhaseQueueWait] carrying the
// queued-behind-earlier-requests share (service time is the remainder).
// It feeds the flight ring, the (OpRequest, size, backend) histogram and
// the queue-wait blame counter — but NOT the straggler detector or the
// step accumulator: a request's seq stream is disjoint from the collective
// bodies', so feeding it to the step grouping would corrupt both.
// 0 allocs/op in steady state (pinned by TestRecordRequestZeroAllocs).
func (r *OpRecorder) RecordRequest(rec FlightRecord) {
	rec.Node = r.node
	rec.Kind = RecRequest
	r.flight.Record(rec)
	r.observeLane(int(rec.Lane), HistKey{Op: rec.Op, SizeClass: SizeClass(int(rec.Bytes)), Backend: r.Backend}, r.ticksToNS(rec.Dur()))
	if q := rec.Phase[PhaseQueueWait]; q > 0 {
		r.crit.addDirect(r, EdgeQueueWait, q)
	}
}

// RecordNet records one cluster-level network operation (a node leader's
// NIC staging plus fabric exchange around an intra-node op). The record
// goes to the flight ring under its own kind and seq stream, to a
// "<backend>-net"-labelled histogram, and its nic-stage/fabric/reduce
// phase durations straight into the blame counters — a leader's fabric
// exchange is on the cluster op's critical chain by construction, so no
// step grouping is needed. Allocation-free in steady state.
func (r *OpRecorder) RecordNet(rec FlightRecord) {
	rec.Node = r.node
	rec.Kind = RecNet
	r.flight.Record(rec)
	if r.backendNet == "" {
		r.backendNet = r.Backend + "-net"
	}
	r.observeLane(int(rec.Lane), HistKey{Op: rec.Op, SizeClass: SizeClass(int(rec.Bytes)), Backend: r.backendNet}, r.ticksToNS(rec.Dur()))
	for ph, t := range rec.Phase {
		if t <= 0 {
			continue
		}
		if e, ok := EdgeOf(Phase(ph)); ok {
			r.crit.addDirect(r, e, t)
		}
	}
}

// CountFusedBatch counts one fused-broadcast traversal carrying k sub-ops
// of bytes total payload. Instrumented fusion paths call it on rank 0
// only (the Comm.Ops convention), so counts are per collective op.
func (r *OpRecorder) CountFusedBatch(k int, bytes int64) {
	r.fusionBatches.Add(1)
	r.fusionOps.Add(int64(k))
	r.fusionBytes.Add(bytes)
}

// CountFuseAbort counts one fusable request that could not join the
// current batch because its shape (root or payload size) differed — the
// ragged-batch break the fusion window tolerates but cannot fuse across.
func (r *OpRecorder) CountFuseAbort() { r.fuseAborts.Add(1) }

// FusionCounts returns (batches, fused ops, fused bytes, ragged aborts).
func (r *OpRecorder) FusionCounts() (batches, ops, bytes, aborts int64) {
	return r.fusionBatches.Load(), r.fusionOps.Load(), r.fusionBytes.Load(), r.fuseAborts.Load()
}

// NoteInflight folds one in-flight-request gauge sample into the
// recorder's high-water mark (surfaced as requests.max_inflight in
// Registry.Snapshot). Lock-free CAS max, allocation-free.
func (r *OpRecorder) NoteInflight(cur int64) {
	for {
		old := r.maxInflight.Load()
		if cur <= old || r.maxInflight.CompareAndSwap(old, cur) {
			return
		}
	}
}

// MaxInflight returns the recorder's in-flight high-water mark.
func (r *OpRecorder) MaxInflight() int64 { return r.maxInflight.Load() }

// ObserveOp is the harness-level observation point: one call per (rank,
// operation) with the measured start/end ticks. It feeds the (op, size,
// backend) histogram under the harness's own backend label; straggler
// detection stays with the communicator-level RecordFlight path, which
// sees every rank's per-op timing regardless of harness.
func (r *OpRecorder) ObserveOp(lane int, seq uint64, op OpCode, backend string, bytes int, start, end int64) {
	r.observeLane(lane, HistKey{Op: op, SizeClass: SizeClass(bytes), Backend: backend}, r.ticksToNS(end-start))
}

// FlushDetector closes the last open detector and critical-path steps
// (called by Finish; the final operation of a run has no successor to
// close it).
func (r *OpRecorder) FlushDetector() {
	if v, ok := r.det.flush(); ok {
		r.anomalyDump("straggler", v)
	}
	r.crit.flush(r)
}

// CritTicks returns the recorder's critical-path state in clock ticks:
// per-edge blame, the summed critical-lane latency of every closed step,
// and the number of steps. The intra-node edges' blame sums exactly to
// total in virtual-time worlds (the segment clock partitions each op);
// queue-wait and net edges are overlay attributions on top of it.
func (r *OpRecorder) CritTicks() (blame [NEdges]int64, total int64, ops int64) {
	r.crit.mu.Lock()
	defer r.crit.mu.Unlock()
	return r.crit.blame, r.crit.total, r.crit.ops
}

// DumpNow takes an explicit flight dump (invariant failure, chaos
// trigger, operator signal), registers it with the registry and returns
// it.
func (r *OpRecorder) DumpNow(kind, reason string) *FlightDump {
	d := r.flight.Dump(kind, reason, -1, 0)
	r.finishDump(d)
	return d
}

// SetQuiesceDumps toggles suppression of anomaly flight dumps (detection
// counters keep advancing). See the quiesceDumps field.
func (r *OpRecorder) SetQuiesceDumps(on bool) { r.quiesceDumps.Store(on) }

func (r *OpRecorder) anomalyDump(kind string, v stragglerVerdict) {
	r.reg.countStraggler()
	if r.quiesceDumps.Load() {
		return
	}
	d := r.flight.Dump(kind, fmt.Sprintf(
		"straggler: lane %d %s seq %d (%s), step skew %.1fus vs median latency %.1fus",
		v.lane, v.op, v.seq, v.why,
		float64(v.skew)/r.TicksPerUS, float64(v.median)/r.TicksPerUS),
		v.lane, v.seq)
	r.finishDump(d)
}

func (r *OpRecorder) finishDump(d *FlightDump) {
	d.World = r.label
	r.mu.Lock()
	d.ReplayToken = r.token
	r.mu.Unlock()
	r.reg.addDump(d)
}

// CountFault forwards an injected-fault count to the registry (used by
// the verify harness's injection sites so injected faults are visible in
// Snapshot and on the telemetry endpoint).
func (r *OpRecorder) CountFault(f Fault) { r.reg.CountFault(f, 1) }

// foldInto merges every lane's histograms into the registry aggregate —
// incrementally: only what accumulated since the previous fold is merged,
// so World.Sync mid-run followed by World.Finish double-counts nothing.
// Called under the registry lock, at a quiesced boundary (lane histograms
// are single-writer; the caller guarantees their writers are parked).
func (r *OpRecorder) foldInto(hists map[HistKey]*Histogram) {
	cur := make(map[HistKey]Histogram)
	for i := range r.lanes {
		for k, h := range r.lanes[i].hists {
			c := cur[k]
			c.Merge(h)
			cur[k] = c
		}
	}
	for k, c := range cur {
		d := histDelta(c, r.folded.hists[k])
		if d.Count == 0 && d.SumNS == 0 {
			continue
		}
		dst := hists[k]
		if dst == nil {
			dst = &Histogram{}
			hists[k] = dst
		}
		dst.Merge(&d)
	}
	r.folded.hists = cur
}

// critAccum is the always-on critical-path accumulator. It regroups
// RecordFlight's per-rank records into operation steps exactly like the
// straggler detector (one seq per step, reused buffers, close on seq
// advance), and when a step closes it picks the critical lane — the
// last-finishing rank, ties toward the lower lane, matching
// SpanGraph.extract — and charges that lane's phase breakdown to
// per-edge blame counters and histograms. Queue-wait (RecordRequest) and
// NIC/fabric time (RecordNet) arrive via addDirect as overlay blame on
// top of the step-derived intra-node edges.
type critAccum struct {
	mu sync.Mutex

	open   bool
	seq    uint64
	op     OpCode
	lanes  []int32
	starts []int64
	ends   []int64
	phases [][NPhases]int64

	// blame is per-edge attributed ticks; hists the per-edge latency
	// histograms (nanoseconds, like every other histogram). ops counts
	// closed steps, total their summed critical-lane latency in ticks.
	blame [NEdges]int64
	hists [NEdges]Histogram
	ops   int64
	total int64
}

// observe feeds one collective-body record. Caller is RecordFlight; the
// path is allocation-free once the step buffers have grown to the rank
// count.
func (c *critAccum) observe(r *OpRecorder, rec *FlightRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case !c.open:
		c.reset(rec.Seq, rec.Op)
	case rec.Seq > c.seq:
		c.close(r)
		c.reset(rec.Seq, rec.Op)
	case rec.Seq < c.seq:
		// Late record from an already-closed step (gxhc scheduling): drop.
		return
	}
	c.lanes = append(c.lanes, rec.Lane)
	c.starts = append(c.starts, rec.Start)
	c.ends = append(c.ends, rec.End)
	c.phases = append(c.phases, rec.Phase)
}

// addDirect charges ticks straight to one edge's blame and histogram,
// bypassing step grouping (request queue-wait, leader net ops).
func (c *critAccum) addDirect(r *OpRecorder, e EdgeKind, ticks int64) {
	ns := r.ticksToNS(ticks)
	c.mu.Lock()
	c.blame[e] += ticks
	c.hists[e].Observe(ns)
	c.mu.Unlock()
}

// flush closes the last open step (no successor op will close it).
func (c *critAccum) flush(r *OpRecorder) {
	c.mu.Lock()
	c.close(r)
	c.open = false
	c.lanes = c.lanes[:0]
	c.starts = c.starts[:0]
	c.ends = c.ends[:0]
	c.phases = c.phases[:0]
	c.mu.Unlock()
}

// close attributes the buffered step's critical lane. Caller holds c.mu.
// In virtual-time worlds the segment clock partitions the critical
// record's duration across its phases, so the step's blame increments
// sum exactly to its critical-lane latency — the invariant the pinned
// blame-sum test asserts.
func (c *critAccum) close(r *OpRecorder) {
	n := len(c.ends)
	if !c.open || n == 0 {
		return
	}
	ci := 0
	for i := 1; i < n; i++ {
		if c.ends[i] > c.ends[ci] || (c.ends[i] == c.ends[ci] && c.lanes[i] < c.lanes[ci]) {
			ci = i
		}
	}
	for ph, t := range c.phases[ci] {
		if t <= 0 {
			continue
		}
		if e, ok := EdgeOf(Phase(ph)); ok {
			c.blame[e] += t
			c.hists[e].Observe(r.ticksToNS(t))
		}
	}
	c.total += c.ends[ci] - c.starts[ci]
	c.ops++
}

func (c *critAccum) reset(seq uint64, op OpCode) {
	c.open = true
	c.seq = seq
	c.op = op
	c.lanes = c.lanes[:0]
	c.starts = c.starts[:0]
	c.ends = c.ends[:0]
	c.phases = c.phases[:0]
}

// foldCritInto merges the recorder's critical-path blame (converted to
// nanoseconds), per-edge histograms and fusion counters into the registry
// aggregate — incrementally, like foldInto: each call contributes only the
// increment since the previous fold. Blame and path totals subtract in the
// already-converted nanosecond unit (not tick deltas), so the sum over
// repeated folds equals a single final fold exactly despite ticksToNS
// truncation. Called under the registry lock.
func (r *OpRecorder) foldCritInto(a *aggregate) {
	f := &r.folded
	r.crit.mu.Lock()
	for e := 0; e < int(NEdges); e++ {
		ns := r.ticksToNS(r.crit.blame[e])
		a.critBlameNS[e] += ns - f.blameNS[e]
		f.blameNS[e] = ns
		d := histDelta(r.crit.hists[e], f.critHists[e])
		a.critHists[e].Merge(&d)
		f.critHists[e] = r.crit.hists[e]
	}
	a.critOps += r.crit.ops - f.critOps
	f.critOps = r.crit.ops
	pathNS := r.ticksToNS(r.crit.total)
	a.critPathNS += pathNS - f.pathNS
	f.pathNS = pathNS
	r.crit.mu.Unlock()
	b, o, by, ab := r.FusionCounts()
	a.fusionBatches += b - f.fusionBatches
	a.fusionOps += o - f.fusionOps
	a.fusionBytes += by - f.fusionBytes
	a.fuseAborts += ab - f.fuseAborts
	f.fusionBatches, f.fusionOps, f.fusionBytes, f.fuseAborts = b, o, by, ab
}

// stragglerVerdict describes one detected straggler step.
type stragglerVerdict struct {
	lane   int
	seq    uint64
	op     OpCode
	why    string
	skew   int64 // ticks the offender exceeded the rest by
	median int64 // step median latency in ticks
}

// stragglerDetector groups harness observations into operation steps (one
// seq per step) and, when a step closes, flags it if the spread of start
// times — or the slowest rank's latency — exceeds k x the step's median
// latency (plus an absolute floor). Start-time spread is what an injected
// straggler looks like from the harness: the delayed rank enters the
// collective late while everyone else blocks waiting for it.
type stragglerDetector struct {
	mu    sync.Mutex
	k     float64
	floor int64

	seq    uint64
	op     OpCode
	open   bool
	lanes  []int64
	starts []int64
	durs   []int64
	sorted []int64
}

func (d *stragglerDetector) observe(lane int, seq uint64, op OpCode, start, end int64) (stragglerVerdict, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var v stragglerVerdict
	fired := false
	switch {
	case !d.open:
		d.reset(seq, op)
	case seq > d.seq:
		v, fired = d.evaluate()
		d.reset(seq, op)
	case seq < d.seq:
		// A late observation from an already-closed step (possible under
		// real goroutine scheduling in gxhc): drop it.
		return stragglerVerdict{}, false
	}
	d.lanes = append(d.lanes, int64(lane))
	d.starts = append(d.starts, start)
	d.durs = append(d.durs, end-start)
	return v, fired
}

func (d *stragglerDetector) flush() (stragglerVerdict, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, fired := d.evaluate()
	d.open = false
	d.lanes, d.starts, d.durs = d.lanes[:0], d.starts[:0], d.durs[:0]
	return v, fired
}

func (d *stragglerDetector) reset(seq uint64, op OpCode) {
	d.open = true
	d.seq = seq
	d.op = op
	d.lanes = d.lanes[:0]
	d.starts = d.starts[:0]
	d.durs = d.durs[:0]
}

// evaluate judges the currently buffered step. Caller holds d.mu.
func (d *stragglerDetector) evaluate() (stragglerVerdict, bool) {
	n := len(d.durs)
	if !d.open || n < 2 {
		return stragglerVerdict{}, false
	}
	d.sorted = append(d.sorted[:0], d.durs...)
	slices.Sort(d.sorted)
	med := d.sorted[n/2]
	thresh := int64(d.k * float64(med))
	if thresh < d.floor {
		thresh = d.floor
	}
	minStart, maxStart, maxStartI := d.starts[0], d.starts[0], 0
	maxDur, maxDurI := d.durs[0], 0
	for i := 1; i < n; i++ {
		if d.starts[i] < minStart {
			minStart = d.starts[i]
		}
		if d.starts[i] > maxStart {
			maxStart, maxStartI = d.starts[i], i
		}
		if d.durs[i] > maxDur {
			maxDur, maxDurI = d.durs[i], i
		}
	}
	if skew := maxStart - minStart; skew > thresh {
		return stragglerVerdict{
			lane: int(d.lanes[maxStartI]), seq: d.seq, op: d.op,
			why: "arrived late", skew: skew, median: med,
		}, true
	}
	if maxDur > thresh && maxDur-med > d.floor {
		return stragglerVerdict{
			lane: int(d.lanes[maxDurI]), seq: d.seq, op: d.op,
			why: "ran slow", skew: maxDur - med, median: med,
		}, true
	}
	return stragglerVerdict{}, false
}
