package obs

import (
	"fmt"
	"sort"
)

// ScanCluster runs the straggler detector across the flight records of a
// whole cluster: each node's OpRecorder only ever sees its own ranks, so
// a node-wide delay (one shard scheduled late, one NIC draining slowly)
// is invisible to the per-node detectors — every local rank starts late
// together, and the local step shows no spread. The cross-node scan
// merges every node's retained collective-body records, regroups them by
// operation step over global lanes (node*stride+rank) and re-evaluates
// each step with the same thresholds, so skew *between* nodes trips the
// detector too. Verdicts are counted on the shared registry and dumped
// as a merged, node-qualified "cluster-straggler" flight dump.
//
// The scan is deterministic: it runs after the cluster run completes
// (ClusterWorld.Run calls it once the per-node Finish loop is done),
// over sorted record copies, regardless of how many engine workers the
// run used. It returns the number of cluster-level verdicts.
func ScanCluster(recs []*OpRecorder) int {
	if len(recs) == 0 {
		return 0
	}
	stride := 0
	for _, r := range recs {
		if n := r.flight.Lanes(); n > stride {
			stride = n
		}
	}
	if stride == 0 {
		return 0
	}
	type nodeRec struct {
		node int
		rec  FlightRecord
	}
	var all []nodeRec
	for ni, r := range recs {
		for lane := 0; lane < r.flight.Lanes(); lane++ {
			for _, rec := range r.flight.LaneRecords(lane) {
				if rec.Kind != RecOp {
					continue
				}
				all = append(all, nodeRec{node: ni, rec: rec})
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.rec.Seq != b.rec.Seq {
			return a.rec.Seq < b.rec.Seq
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.rec.Lane < b.rec.Lane
	})
	var det stragglerDetector
	recs[0].det.mu.Lock()
	det.k, det.floor = recs[0].det.k, recs[0].det.floor
	recs[0].det.mu.Unlock()
	found := 0
	report := func(v stragglerVerdict) {
		found++
		clusterStragglerDump(recs, stride, v)
	}
	for _, nr := range all {
		g := nr.node*stride + int(nr.rec.Lane)
		if v, ok := det.observe(g, nr.rec.Seq, nr.rec.Op, nr.rec.Start, nr.rec.End); ok {
			report(v)
		}
	}
	if v, ok := det.flush(); ok {
		report(v)
	}
	return found
}

// clusterStragglerDump counts one cluster-level verdict and takes a
// merged flight dump across every node's recorder, with the offending
// (node, rank, seq) record marked.
func clusterStragglerDump(recs []*OpRecorder, stride int, v stragglerVerdict) {
	r0 := recs[0]
	r0.reg.countStraggler()
	if r0.quiesceDumps.Load() {
		return
	}
	node, lane := v.lane/stride, v.lane%stride
	d := &FlightDump{
		Kind: "cluster-straggler",
		Reason: fmt.Sprintf(
			"cluster straggler: node %d lane %d %s seq %d (%s), step skew %.1fus vs median latency %.1fus",
			node, lane, v.op, v.seq, v.why,
			float64(v.skew)/r0.TicksPerUS, float64(v.median)/r0.TicksPerUS),
		OffLane: v.lane, OffSeq: v.seq,
		Records: []FlightDumpEntry{},
	}
	for ni, r := range recs {
		nd := r.flight.Dump("", "", -1, 0)
		for _, e := range nd.Records {
			if ni == node && e.Lane == lane && e.Seq == v.seq && !e.Net && !e.Request {
				e.Offending = true
			}
			d.Records = append(d.Records, e)
		}
	}
	sort.SliceStable(d.Records, func(i, j int) bool {
		a, b := d.Records[i], d.Records[j]
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Lane < b.Lane
	})
	r0.finishDump(d)
}
