package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// Telemetry is the live export surface of a Registry: a private HTTP mux
// serving Prometheus text exposition on /metrics, the retained flight
// dumps on /flight, the human snapshot on /snapshot, and the standard
// net/http/pprof handlers under /debug/pprof/. It reads the registry on
// every request, so a scrape mid-run sees the counters and histograms
// folded in so far.
type Telemetry struct {
	reg *Registry
}

// NewTelemetryHandler returns the telemetry mux for reg.
func NewTelemetryHandler(reg *Registry) http.Handler {
	t := &Telemetry{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/", t.serveIndex)
	mux.HandleFunc("/metrics", t.serveMetrics)
	mux.HandleFunc("/flight", t.serveFlight)
	mux.HandleFunc("/snapshot", t.serveSnapshot)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartTelemetry binds addr and serves the telemetry mux on it in a
// background goroutine, returning the bound address (useful with ":0").
// The listener lives for the rest of the process; benchmark binaries are
// short-lived, so there is no stop handle.
func StartTelemetry(reg *Registry, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: NewTelemetryHandler(reg)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

func (t *Telemetry) serveIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "xhc telemetry")
	fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
	fmt.Fprintln(w, "  /snapshot      human-readable counter snapshot")
	fmt.Fprintln(w, "  /flight        retained flight-recorder dumps (JSON)")
	fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
}

// promName rewrites a dotted snapshot metric name into a valid Prometheus
// metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("xhc_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (t *Telemetry) serveMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := t.reg.Snapshot()
	for _, m := range snap.Metrics {
		// Histogram-derived metrics are exported with labels below; flat
		// duplicates would collide with them under relabeling.
		if strings.HasPrefix(m.Name, "lat.") {
			continue
		}
		n := promName(m.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, m.Value)
	}

	// Quantile gauges per (collective, size-class, backend).
	if len(snap.Hists) > 0 {
		fmt.Fprintln(w, "# TYPE xhc_op_latency_us gauge")
		for _, h := range snap.Hists {
			labels := func(q string) string {
				return fmt.Sprintf(`collective=%q,size=%q,backend=%q,quantile=%q`,
					h.Key.Op.String(), SizeClassLabel(h.Key.SizeClass), h.Key.Backend, q)
			}
			fmt.Fprintf(w, "xhc_op_latency_us{%s} %g\n", labels("0.5"), h.P50US)
			fmt.Fprintf(w, "xhc_op_latency_us{%s} %g\n", labels("0.9"), h.P90US)
			fmt.Fprintf(w, "xhc_op_latency_us{%s} %g\n", labels("0.99"), h.P99US)
			fmt.Fprintf(w, "xhc_op_latency_us{%s} %g\n", labels("1"), h.MaxUS)
		}
	}

	// Full cumulative histograms in Prometheus histogram exposition.
	hists := t.reg.HistSnapshot()
	if len(hists) > 0 {
		keys := make([]HistKey, 0, len(hists))
		for k := range hists {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.Op != b.Op {
				return a.Op < b.Op
			}
			if a.SizeClass != b.SizeClass {
				return a.SizeClass < b.SizeClass
			}
			return a.Backend < b.Backend
		})
		fmt.Fprintln(w, "# TYPE xhc_op_latency_ns histogram")
		for _, k := range keys {
			h := hists[k]
			base := fmt.Sprintf(`collective=%q,size=%q,backend=%q`,
				k.Op.String(), SizeClassLabel(k.SizeClass), k.Backend)
			var cum int64
			for i, c := range h.Buckets {
				if c == 0 {
					continue
				}
				cum += c
				fmt.Fprintf(w, "xhc_op_latency_ns_bucket{%s,le=\"%d\"} %d\n", base, BucketUpperNS(i), cum)
			}
			fmt.Fprintf(w, "xhc_op_latency_ns_bucket{%s,le=\"+Inf\"} %d\n", base, h.Count)
			fmt.Fprintf(w, "xhc_op_latency_ns_sum{%s} %d\n", base, h.SumNS)
			fmt.Fprintf(w, "xhc_op_latency_ns_count{%s} %d\n", base, h.Count)
		}
	}
}

func (t *Telemetry) serveFlight(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	dumps := t.reg.Dumps()
	fmt.Fprintln(w, "[")
	for i, d := range dumps {
		if err := d.WriteJSON(w); err != nil {
			return
		}
		if i < len(dumps)-1 {
			fmt.Fprintln(w, ",")
		}
	}
	fmt.Fprintln(w, "]")
}

func (t *Telemetry) serveSnapshot(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, t.reg.Snapshot().String())
}
