package obs

import (
	"testing"
)

func TestEdgeOfMapping(t *testing.T) {
	for _, ph := range []Phase{PhaseCollective, PhaseFlow} {
		if _, ok := EdgeOf(ph); ok {
			t.Errorf("EdgeOf(%s) returned an edge; umbrella/overlay phases have none", ph)
		}
	}
	want := map[Phase]EdgeKind{
		PhaseExpose:      EdgeExpose,
		PhaseFlagWait:    EdgeFlagWait,
		PhaseChunkCopy:   EdgeChunkCopy,
		PhaseReduceSlice: EdgeReduce,
		PhaseAck:         EdgeAck,
		PhaseNICStage:    EdgeNICStage,
		PhaseFabric:      EdgeFabric,
		PhaseQueueWait:   EdgeQueueWait,
	}
	for ph, e := range want {
		got, ok := EdgeOf(ph)
		if !ok || got != e {
			t.Errorf("EdgeOf(%s) = %v/%v, want %v", ph, got, ok, e)
		}
	}
	names := []string{"expose", "flag_wait", "chunk_copy", "reduce", "ack", "nic_stage", "fabric", "queue_wait"}
	for e := EdgeKind(0); e < NEdges; e++ {
		if e.String() != names[e] {
			t.Errorf("EdgeKind(%d).String() = %q, want %q", e, e.String(), names[e])
		}
	}
}

// span is a test shorthand for building graph inputs.
func span(lane int, ph Phase, op string, seq uint64, start, end int64, from int) Span {
	return Span{Lane: lane, Level: 0, Phase: ph, Op: op, Seq: seq, Start: start, End: end, From: from}
}

// TestCriticalPathLaneJump pins the causal walk: the chain starts at the
// last-finishing lane, attributes each covered segment to its phase's
// edge, and jumps to the producer lane when it crosses a wait span — so
// the time before a member's wait is explained by what the leader was
// doing. Coverage is exact: the walk partitions [Start, End].
func TestCriticalPathLaneJump(t *testing.T) {
	// Leader (lane 0): expose [0,30], copy [30,60], ack [60,70].
	// Member (lane 1): expose [0,10], wait [10,60] released by lane 0,
	// copy [60,90], ack [90,100].
	spans := []Span{
		span(0, PhaseCollective, "bcast", 1, 0, 70, -1),
		span(0, PhaseExpose, "bcast", 1, 0, 30, -1),
		span(0, PhaseChunkCopy, "bcast", 1, 30, 60, -1),
		span(0, PhaseAck, "bcast", 1, 60, 70, -1),
		span(1, PhaseCollective, "bcast", 1, 0, 100, -1),
		span(1, PhaseExpose, "bcast", 1, 0, 10, -1),
		span(1, PhaseFlagWait, "bcast", 1, 10, 60, 0),
		span(1, PhaseChunkCopy, "bcast", 1, 60, 90, -1),
		span(1, PhaseAck, "bcast", 1, 90, 100, -1),
		// An unrelated op's span interleaved on lane 0 must not divert the
		// walk (covering filters to same-(op, seq) spans).
		span(0, PhaseChunkCopy, "other", 9, 0, 100, -1),
	}
	g := NewSpanGraph(spans)
	cp, ok := g.CriticalPath("bcast", 1)
	if !ok {
		t.Fatal("CriticalPath(bcast, 1) not found")
	}
	if cp.CritLane != 1 || cp.Start != 0 || cp.End != 100 {
		t.Fatalf("crit lane/span = %d [%d,%d], want 1 [0,100]", cp.CritLane, cp.Start, cp.End)
	}
	if cp.Covered != cp.End-cp.Start {
		t.Errorf("Covered = %d, want full span %d", cp.Covered, cp.End-cp.Start)
	}
	wantEdge := map[EdgeKind]int64{
		EdgeExpose: 10, EdgeFlagWait: 50, EdgeChunkCopy: 30, EdgeAck: 10,
	}
	for e := EdgeKind(0); e < NEdges; e++ {
		if cp.ByEdge[e] != wantEdge[e] {
			t.Errorf("ByEdge[%s] = %d, want %d", e, cp.ByEdge[e], wantEdge[e])
		}
	}
	// Time order, with the chain's head on the leader lane (the jump).
	if len(cp.Steps) != 4 {
		t.Fatalf("steps = %d, want 4: %+v", len(cp.Steps), cp.Steps)
	}
	if cp.Steps[0].Lane != 0 || cp.Steps[0].Edge != EdgeExpose || cp.Steps[0].End != 10 {
		t.Errorf("head step = %+v, want leader expose [0,10]", cp.Steps[0])
	}
	for i := 1; i < len(cp.Steps); i++ {
		if cp.Steps[i].Start != cp.Steps[i-1].End {
			t.Errorf("step %d starts at %d, previous ended at %d (chain must be contiguous)",
				i, cp.Steps[i].Start, cp.Steps[i-1].End)
		}
		if cp.Steps[i].Lane != 1 {
			t.Errorf("step %d on lane %d, want member lane 1", i, cp.Steps[i].Lane)
		}
	}
}

// TestCriticalPathsTieAndOrder pins determinism: ties on the finishing
// time break toward the lower lane, and CriticalPaths lists ops in (op,
// seq) order.
func TestCriticalPathsTieAndOrder(t *testing.T) {
	spans := []Span{
		span(2, PhaseCollective, "bcast", 2, 100, 200, -1),
		span(2, PhaseChunkCopy, "bcast", 2, 100, 200, -1),
		span(1, PhaseCollective, "bcast", 2, 100, 200, -1),
		span(1, PhaseAck, "bcast", 2, 100, 200, -1),
		span(0, PhaseCollective, "bcast", 1, 0, 90, -1),
		span(0, PhaseExpose, "bcast", 1, 0, 90, -1),
	}
	g := NewSpanGraph(spans)
	cps := g.CriticalPaths()
	if len(cps) != 2 {
		t.Fatalf("CriticalPaths = %d ops, want 2", len(cps))
	}
	if cps[0].Seq != 1 || cps[1].Seq != 2 {
		t.Errorf("op order = seq %d, %d, want 1, 2", cps[0].Seq, cps[1].Seq)
	}
	if cps[1].CritLane != 1 {
		t.Errorf("tie at End=200 resolved to lane %d, want lower lane 1", cps[1].CritLane)
	}
	if cps[1].ByEdge[EdgeAck] != 100 || cps[1].ByEdge[EdgeChunkCopy] != 0 {
		t.Errorf("tie walked the wrong lane: ack=%d copy=%d", cps[1].ByEdge[EdgeAck], cps[1].ByEdge[EdgeChunkCopy])
	}
	if _, ok := g.CriticalPath("bcast", 7); ok {
		t.Error("CriticalPath found an op that was never recorded")
	}
}

// stepRec builds one rank's flight record with a phase breakdown that
// partitions [start, start+dur] (the segment-clock invariant).
func stepRec(lane int32, seq uint64, start, dur int64, expose, wait, cp, ack int64) FlightRecord {
	r := FlightRecord{
		Seq: seq, Start: start, End: start + dur, Bytes: 4096,
		Lane: lane, Chunks: 1, Levels: 1, Op: OpBcast,
	}
	r.Phase[PhaseExpose] = expose
	r.Phase[PhaseFlagWait] = wait
	r.Phase[PhaseChunkCopy] = cp
	r.Phase[PhaseAck] = ack
	return r
}

// TestCritAccumBlameSumsToTotal pins the accumulator's exactness
// invariant in ticks: with segment-clock records (phases partition each
// record), the per-edge blame of every closed step sums exactly to the
// step's critical-lane latency, so the run totals match too.
func TestCritAccumBlameSumsToTotal(t *testing.T) {
	_, r := newTestRecorder(4)
	us := int64(SimTicksPerUS)
	wantTotal := int64(0)
	for seq := uint64(1); seq <= 3; seq++ {
		for lane := int32(0); lane < 4; lane++ {
			// Lane 3 finishes last in every step: its record is critical.
			dur := (10 + int64(lane)) * us
			rec := stepRec(lane, seq, int64(seq)*100*us, dur, 2*us, dur-6*us, 3*us, us)
			r.RecordFlight(rec)
			if lane == 3 {
				wantTotal += dur
			}
		}
	}
	r.FlushDetector()
	blame, total, ops := r.CritTicks()
	if ops != 3 {
		t.Fatalf("crit ops = %d, want 3", ops)
	}
	if total != wantTotal {
		t.Fatalf("crit total = %d ticks, want %d", total, wantTotal)
	}
	var sum int64
	for e := EdgeKind(0); e < NEdges; e++ {
		sum += blame[e]
	}
	if sum != total {
		t.Fatalf("per-edge blame sums to %d ticks, critical-lane total is %d (must be exact)", sum, total)
	}
	if blame[EdgeFlagWait] != 3*(13-6)*us {
		t.Errorf("flag_wait blame = %d, want %d (critical lane only)", blame[EdgeFlagWait], 3*7*us)
	}
}

// TestRecordRequestQueueWait pins the request path: queue-wait ticks land
// as direct queue_wait blame, the record rides the ring with the request
// kind, and the step accumulator (disjoint seq stream) is untouched.
func TestRecordRequestQueueWait(t *testing.T) {
	_, r := newTestRecorder(2)
	us := int64(SimTicksPerUS)
	rec := FlightRecord{Seq: 1, Start: 0, End: 40 * us, Bytes: 256, Lane: 0, Op: OpRequest}
	rec.Phase[PhaseQueueWait] = 5 * us
	r.RecordRequest(rec)

	blame, total, ops := r.CritTicks()
	if ops != 0 || total != 0 {
		t.Errorf("request record opened a step: ops=%d total=%d", ops, total)
	}
	if blame[EdgeQueueWait] != 5*us {
		t.Errorf("queue_wait blame = %d ticks, want %d", blame[EdgeQueueWait], 5*us)
	}
	d := r.Flight().Dump("probe", "", -1, 0)
	if len(d.Records) != 1 || !d.Records[0].Request || d.Records[0].Net {
		t.Fatalf("ring entry = %+v, want a request-kind record", d.Records)
	}
	if d.Records[0].PhasesUS[PhaseQueueWait.String()] != 5 {
		t.Errorf("queue-wait phase = %v us, want 5", d.Records[0].PhasesUS[PhaseQueueWait.String()])
	}
}

// TestRecordNetBlame pins the cluster-network path: a leader's NIC/fabric
// record attributes its phases directly (no step grouping), rides the
// ring with the net kind, and lands in the "<backend>-net" histogram.
func TestRecordNetBlame(t *testing.T) {
	reg, r := newTestRecorder(2)
	us := int64(SimTicksPerUS)
	rec := FlightRecord{Seq: 1, Start: 0, End: 12 * us, Bytes: 8192, Lane: 0, Op: OpAllreduce}
	rec.Phase[PhaseNICStage] = 3 * us
	rec.Phase[PhaseFabric] = 7 * us
	rec.Phase[PhaseReduceSlice] = 2 * us
	r.RecordNet(rec)

	blame, total, ops := r.CritTicks()
	if ops != 0 || total != 0 {
		t.Errorf("net record opened a step: ops=%d total=%d", ops, total)
	}
	if blame[EdgeNICStage] != 3*us || blame[EdgeFabric] != 7*us || blame[EdgeReduce] != 2*us {
		t.Errorf("net blame = nic %d fabric %d reduce %d", blame[EdgeNICStage], blame[EdgeFabric], blame[EdgeReduce])
	}
	d := r.Flight().Dump("probe", "", -1, 0)
	if len(d.Records) != 1 || !d.Records[0].Net || d.Records[0].Request {
		t.Fatalf("ring entry = %+v, want a net-kind record", d.Records)
	}
	fold := make(map[HistKey]*Histogram)
	r.foldInto(fold)
	key := HistKey{Op: OpAllreduce, SizeClass: SizeClass(8192), Backend: "xhc-net"}
	if h := fold[key]; h == nil || h.Count != 1 {
		t.Errorf("net histogram %v missing or empty: %+v", key, fold[key])
	}
	_ = reg
}

// TestRecordRequestZeroAllocs pins the split queue/service request path
// to zero allocations in steady state, like the flight-record gate.
func TestRecordRequestZeroAllocs(t *testing.T) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	r := newOpRecorder(reg, "w0", 4, DefaultFlightCap, SimTicksPerUS, clk.now)

	us := int64(SimTicksPerUS)
	seq := uint64(1)
	record := func() {
		for lane := int32(0); lane < 4; lane++ {
			rec := FlightRecord{
				Seq: seq, Start: int64(seq) * us, End: int64(seq)*us + 30*us,
				Bytes: 256, Lane: lane, Op: OpRequest,
			}
			rec.Phase[PhaseQueueWait] = 4 * us
			r.RecordRequest(rec)
		}
		seq++
	}
	for i := 0; i < 100; i++ {
		record()
	}
	a1 := testing.AllocsPerRun(100, record)
	a2 := testing.AllocsPerRun(100, record)
	if m := minF(a1, a2); m != 0 {
		t.Fatalf("RecordRequest allocates in steady state: %.2f allocs/op (runs: %.2f, %.2f)", m, a1, a2)
	}
}

// TestRecordNetZeroAllocs pins the cluster-network record path too.
func TestRecordNetZeroAllocs(t *testing.T) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	r := newOpRecorder(reg, "w0", 2, DefaultFlightCap, SimTicksPerUS, clk.now)

	us := int64(SimTicksPerUS)
	seq := uint64(1)
	record := func() {
		rec := FlightRecord{
			Seq: seq, Start: int64(seq) * us, End: int64(seq)*us + 12*us,
			Bytes: 8192, Lane: 0, Op: OpBcast,
		}
		rec.Phase[PhaseNICStage] = 3 * us
		rec.Phase[PhaseFabric] = 9 * us
		r.RecordNet(rec)
		seq++
	}
	for i := 0; i < 100; i++ {
		record()
	}
	a1 := testing.AllocsPerRun(100, record)
	a2 := testing.AllocsPerRun(100, record)
	if m := minF(a1, a2); m != 0 {
		t.Fatalf("RecordNet allocates in steady state: %.2f allocs/op (runs: %.2f, %.2f)", m, a1, a2)
	}
}
