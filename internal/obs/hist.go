package obs

import (
	"fmt"
	"math"
	"math/bits"
)

// HistBuckets is the number of log2 latency buckets: bucket 0 holds zero,
// bucket i holds durations in [2^(i-1), 2^i) ns, and the top bucket
// absorbs everything from ~39 hours up.
const HistBuckets = 48

// Histogram is a log2-bucketed latency histogram over nanoseconds.
// Observing is allocation-free and lock-free; every histogram has a single
// writer (one recorder lane) until it is merged into the registry under
// the registry lock.
type Histogram struct {
	Count   int64
	SumNS   int64
	MaxNS   int64
	Buckets [HistBuckets]int64
}

// histBucket returns the bucket index for a duration in ns.
func histBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// BucketUpperNS returns the exclusive upper bound of bucket i in ns (the
// top bucket reports MaxInt64).
func BucketUpperNS(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= HistBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Observe records one duration.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.Count++
	h.SumNS += ns
	if ns > h.MaxNS {
		h.MaxNS = ns
	}
	h.Buckets[histBucket(ns)]++
}

// Merge folds o into h. Count, sum and every bucket add; max takes the
// larger — so merging preserves totals exactly (pinned by the hist
// property test).
func (h *Histogram) Merge(o *Histogram) {
	h.Count += o.Count
	h.SumNS += o.SumNS
	if o.MaxNS > h.MaxNS {
		h.MaxNS = o.MaxNS
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) in ns by walking the
// cumulative bucket counts and interpolating linearly inside the matched
// bucket. The estimate is clamped to the observed maximum, so Quantile(1)
// is exact.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo := float64(0)
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := float64(BucketUpperNS(i))
			if hi > float64(h.MaxNS) {
				hi = float64(h.MaxNS)
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return float64(h.MaxNS)
}

// MeanNS returns the mean duration in ns.
func (h *Histogram) MeanNS() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumNS) / float64(h.Count)
}

// SizeClass maps a payload size to its log2 size bucket: class 0 is zero
// bytes, class i covers [2^(i-1), 2^i) bytes.
func SizeClass(bytes int) uint8 {
	if bytes <= 0 {
		return 0
	}
	i := bits.Len64(uint64(bytes))
	if i > 63 {
		i = 63
	}
	return uint8(i)
}

// SizeClassLabel renders a size class as the human label of its lower
// bound ("0B", "4B", "1KiB", "2MiB", ...).
func SizeClassLabel(class uint8) string {
	if class == 0 {
		return "0B"
	}
	n := int64(1) << uint(class-1)
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// HistKey identifies one latency histogram: the collective kind, the
// payload size class, and the backend that produced the latency (a coll
// registry component name for harness-level observations, "xhc"/"gxhc"
// for the instrumented communicators).
type HistKey struct {
	Op        OpCode
	SizeClass uint8
	Backend   string
}

// String renders the key the way snapshot metric names embed it.
func (k HistKey) String() string {
	return k.Op.String() + "." + SizeClassLabel(k.SizeClass) + "." + k.Backend
}
