package obs

import (
	"fmt"
	"strings"
	"testing"
)

// feedNodeStep records one node's two ranks entering an op step together
// (internally uniform — no local skew).
func feedNodeStep(r *OpRecorder, seq uint64, start, dur int64) {
	for lane := int32(0); lane < 2; lane++ {
		r.RecordFlight(FlightRecord{
			Seq: seq, Start: start, End: start + dur, Bytes: 4096,
			Lane: lane, Chunks: 1, Levels: 2, Op: OpBcast,
		})
	}
}

// TestScanClusterDetectsNodeSkew pins the cross-node scan: a whole node
// entering every step late is invisible to the per-node detectors (its
// local ranks are mutually uniform) but must trip the cluster-level
// regrouping, producing a merged "cluster-straggler" dump that names the
// offending node.
func TestScanClusterDetectsNodeSkew(t *testing.T) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	recs := make([]*OpRecorder, 4)
	for i := range recs {
		recs[i] = newOpRecorder(reg, fmt.Sprintf("node%d", i), 2, DefaultFlightCap, SimTicksPerUS, clk.now)
		recs[i].SetNode(i)
	}
	us := int64(SimTicksPerUS)
	for seq := uint64(1); seq <= 2; seq++ {
		base := int64(seq) * 1000 * us
		for ni, r := range recs {
			start := base
			if ni == 3 {
				start += 500 * us // node 3 is scheduled late every step
			}
			feedNodeStep(r, seq, start, 10*us)
		}
		// Per-node detectors see no skew within their own ranks.
		if n := len(reg.Dumps()); n != 0 {
			t.Fatalf("seq %d: local detector dumped (%d dumps) — node-level skew must be local-invisible", seq, n)
		}
	}
	for _, r := range recs {
		r.FlushDetector()
	}
	if n := len(reg.Dumps()); n != 0 {
		t.Fatalf("local flush dumped %d dumps on node-uniform steps", n)
	}

	found := ScanCluster(recs)
	if found < 1 {
		t.Fatalf("ScanCluster found %d verdicts, want >= 1", found)
	}
	dumps := reg.Dumps()
	if len(dumps) == 0 {
		t.Fatal("no cluster dumps registered")
	}
	d := dumps[len(dumps)-1]
	if d.Kind != "cluster-straggler" {
		t.Fatalf("dump kind = %q, want cluster-straggler", d.Kind)
	}
	if !strings.Contains(d.Reason, "node 3") {
		t.Errorf("reason %q does not name the offending node", d.Reason)
	}
	var offending int
	nodesSeen := map[int]bool{}
	for _, e := range d.Records {
		nodesSeen[e.Node] = true
		if e.Offending {
			offending++
			if e.Node != 3 {
				t.Errorf("offending record on node %d, want 3", e.Node)
			}
		}
	}
	if offending == 0 {
		t.Error("merged dump marks no offending record")
	}
	if len(nodesSeen) != 4 {
		t.Errorf("merged dump covers %d nodes, want all 4", len(nodesSeen))
	}
	if got := reg.Snapshot().Value("anomaly.stragglers"); got < 1 {
		t.Errorf("anomaly.stragglers = %v, want >= 1", got)
	}
}

// TestScanClusterCleanRun pins the negative: with every node aligned the
// scan finds nothing.
func TestScanClusterCleanRun(t *testing.T) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	recs := make([]*OpRecorder, 3)
	for i := range recs {
		recs[i] = newOpRecorder(reg, fmt.Sprintf("node%d", i), 2, DefaultFlightCap, SimTicksPerUS, clk.now)
		recs[i].SetNode(i)
	}
	us := int64(SimTicksPerUS)
	for seq := uint64(1); seq <= 3; seq++ {
		for _, r := range recs {
			feedNodeStep(r, seq, int64(seq)*1000*us, 10*us)
		}
	}
	if found := ScanCluster(recs); found != 0 {
		t.Fatalf("ScanCluster found %d verdicts on an aligned run", found)
	}
	if n := len(reg.Dumps()); n != 0 {
		t.Fatalf("clean scan registered %d dumps", n)
	}
}
