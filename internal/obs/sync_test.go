package obs

import (
	"reflect"
	"testing"

	"xhc/internal/mem"
	"xhc/internal/sim"
)

// feedPhasedStep records one operation step whose records carry a phase
// breakdown, so the critical-path accumulator attributes blame.
func feedPhasedStep(r *OpRecorder, seq uint64, lanes int) {
	us := int64(SimTicksPerUS)
	base := int64(seq) * 100 * us
	for lane := 0; lane < lanes; lane++ {
		dur := (10 + int64(lane)) * us
		rec := FlightRecord{
			Seq: seq, Start: base, End: base + dur,
			Bytes: 4096, Lane: int32(lane), Chunks: 1, Levels: 1, Op: OpBcast,
		}
		rec.Phase[PhaseFlagWait] = 3 * us
		rec.Phase[PhaseChunkCopy] = dur - 3*us
		r.RecordFlight(rec)
	}
}

// runSyncWorld replays a fixed telemetry trace against a fresh registry,
// calling World.Sync after every syncEvery ops (0: never — Finish-only).
func runSyncWorld(syncEvery int) (*Registry, Snapshot) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	w := reg.NewWorld("w", 4, SimTicksPerUS, clk.now)
	for seq := uint64(1); seq <= 6; seq++ {
		feedPhasedStep(w.Rec, seq, 4)
		w.Rec.CountFusedBatch(2, 4096)
		w.Rec.NoteInflight(int64(seq))
		if syncEvery > 0 && int(seq)%syncEvery == 0 {
			w.Sync()
		}
	}
	w.AddOps(6)
	w.Finish(mem.Stats{}, sim.EngineStats{})
	return reg, reg.Snapshot()
}

// TestSyncNeverDoubleCounts pins the delta-fold contract: a run that Syncs
// mid-flight (at several cadences, including back-to-back Syncs with no
// new data in between) must finish with a registry byte-identical to the
// Finish-only run.
func TestSyncNeverDoubleCounts(t *testing.T) {
	regWant, want := runSyncWorld(0)
	for _, every := range []int{1, 2, 3} {
		regGot, got := runSyncWorld(every)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("syncEvery=%d: snapshot diverged from Finish-only run\nwant %+v\ngot  %+v", every, want, got)
		}
		if w, g := regWant.HistSnapshot(), regGot.HistSnapshot(); !reflect.DeepEqual(w, g) {
			t.Errorf("syncEvery=%d: folded histograms diverged", every)
		}
	}
}

// TestSyncExposesLiveTelemetry asserts Sync is what makes mid-run
// histograms and critical-path blame visible to Snapshot — the feed the
// online tuner reads — and that a redundant Sync with no new data changes
// nothing.
func TestSyncExposesLiveTelemetry(t *testing.T) {
	reg := NewRegistry(false)
	clk := &fakeClock{}
	w := reg.NewWorld("w", 4, SimTicksPerUS, clk.now)
	feedPhasedStep(w.Rec, 1, 4)
	feedPhasedStep(w.Rec, 2, 4) // closes step 1

	if n := len(reg.HistSnapshot()); n != 0 {
		t.Fatalf("histograms visible before any Sync/Finish: %d keys", n)
	}
	w.Sync()
	snap := reg.Snapshot()
	if len(snap.Hists) == 0 {
		t.Fatal("Sync did not expose op histograms")
	}
	if got := snap.Value("crit.ops"); got != 1 {
		t.Errorf("crit.ops after Sync = %v, want 1 (only the closed step)", got)
	}
	if got := snap.Value("crit.flag_wait.blame_us"); got != 3 {
		t.Errorf("crit.flag_wait.blame_us after Sync = %v, want 3", got)
	}

	w.Sync() // no new data: must be a no-op
	again := reg.Snapshot()
	if !reflect.DeepEqual(snap, again) {
		t.Errorf("redundant Sync changed the snapshot\nbefore %+v\nafter  %+v", snap, again)
	}

	w.Finish(mem.Stats{}, sim.EngineStats{})
	final := reg.Snapshot()
	if got := final.Value("crit.ops"); got != 2 {
		t.Errorf("crit.ops after Finish = %v, want 2 (flush closes step 2)", got)
	}
	w.Sync() // after Finish: ignored
	if post := reg.Snapshot(); !reflect.DeepEqual(final, post) {
		t.Error("Sync after Finish changed the snapshot")
	}
}
