package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock is a manually advanced tick source for tracer tests.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64 { return c.t }

func TestTracerRecordAndTotals(t *testing.T) {
	c := &fakeClock{}
	tr := NewTracer("test", 0, 4, SimTicksPerUS, c.now)
	if tr.Lanes() != 4 {
		t.Fatalf("Lanes = %d", tr.Lanes())
	}
	tr.Record(1, -1, PhaseCollective, "bcast", 1, 0, 100, 0)
	tr.Record(1, 0, PhaseExpose, "bcast", 1, 0, 10, 0)
	tr.Record(1, 0, PhaseFlagWait, "bcast", 1, 10, 40, 0)
	tr.Record(1, 0, PhaseChunkCopy, "bcast", 1, 40, 100, 4096)
	tr.Record(1, -1, PhaseFlow, "flow", 0, 40, 90, 4096)
	tr.Record(1, 0, PhaseFlagWait, "bcast", 2, 100, 130, 0)

	if got := tr.PhaseTotal(1, PhaseFlagWait, 1); got != 30 {
		t.Errorf("PhaseTotal(flag-wait, seq 1) = %d, want 30", got)
	}
	if got := tr.PhaseTotal(1, PhaseFlagWait, -1); got != 60 {
		t.Errorf("PhaseTotal(flag-wait, all) = %d, want 60", got)
	}
	// Covered = expose + flag-wait + chunk-copy; collective and flow are
	// excluded, so the attribution spans sum exactly to the op latency.
	if got := tr.CoveredTotal(1, 1); got != 100 {
		t.Errorf("CoveredTotal(seq 1) = %d, want 100", got)
	}
	if got := len(tr.LaneSpans(1)); got != 6 {
		t.Errorf("LaneSpans = %d spans, want 6", got)
	}
}

func TestTracerIgnoresOutOfRangeLanes(t *testing.T) {
	tr := NewTracer("test", 0, 2, SimTicksPerUS, (&fakeClock{}).now)
	tr.Record(-1, 0, PhaseExpose, "bcast", 1, 0, 1, 0)
	tr.Record(2, 0, PhaseExpose, "bcast", 1, 0, 1, 0)
	if n := len(tr.Spans()); n != 0 {
		t.Errorf("out-of-range records kept: %d spans", n)
	}
}

func TestTracerSpansSortedByStart(t *testing.T) {
	tr := NewTracer("test", 0, 3, SimTicksPerUS, (&fakeClock{}).now)
	tr.Record(2, 0, PhaseExpose, "bcast", 1, 50, 60, 0)
	tr.Record(0, 0, PhaseExpose, "bcast", 1, 20, 30, 0)
	tr.Record(1, 0, PhaseExpose, "bcast", 1, 20, 25, 0)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("Spans = %d", len(spans))
	}
	if spans[0].Lane != 0 || spans[1].Lane != 1 || spans[2].Lane != 2 {
		t.Errorf("span order wrong: %+v", spans)
	}
}

func TestPhaseString(t *testing.T) {
	for ph, want := range map[Phase]string{
		PhaseCollective:  "collective",
		PhaseExpose:      "expose",
		PhaseFlagWait:    "flag-wait",
		PhaseChunkCopy:   "chunk-copy",
		PhaseReduceSlice: "reduce-slice",
		PhaseAck:         "ack",
		PhaseFlow:        "flow",
	} {
		if got := ph.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", ph, got, want)
		}
	}
	if got := Phase(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown phase = %q", got)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	clk := WallClock()
	a := clk()
	b := clk()
	if a < 0 || b < a {
		t.Errorf("wall clock not monotone: %d then %d", a, b)
	}
}

func TestSnapshotGetValueString(t *testing.T) {
	s := Snapshot{Metrics: []Metric{
		{Name: "ops", Value: 42},
		{Name: "regcache.hit_ratio", Value: 0.75},
	}}
	if v, ok := s.Get("ops"); !ok || v != 42 {
		t.Errorf("Get(ops) = %v, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get(missing) found")
	}
	if s.Value("regcache.hit_ratio") != 0.75 {
		t.Error("Value wrong")
	}
	out := s.String()
	for _, want := range []string{"# observability snapshot", "ops", "42", "0.7500"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshotEmpty(t *testing.T) {
	reg := NewRegistry(false)
	snap := reg.Snapshot()
	if v := snap.Value("worlds"); v != 0 {
		t.Errorf("empty registry worlds = %v", v)
	}
	// Every advertised metric family must be present even with no worlds.
	for _, name := range []string{
		"ops", "engine.events_run", "mem.solver_fastpath", "mem.solver_fallbacks",
		"regcache.hit_ratio", "msgs.self.count",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("metric %q absent from empty snapshot", name)
		}
	}
	if reg.TraceEnabled() {
		t.Error("TraceEnabled on metrics-only registry")
	}
	if w := reg.NewWorld("x", 4, SimTicksPerUS, (&fakeClock{}).now); w.Tracer != nil {
		t.Error("tracer created with tracing disabled")
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	c := &fakeClock{}
	tr := NewTracer("Epyc-2P #0", 0, 2, SimTicksPerUS, c.now)
	tr.Record(0, -1, PhaseCollective, "bcast", 1, 0, 2e6, 0)
	tr.Record(0, 0, PhaseChunkCopy, "bcast", 1, 0, 2e6, 4096)
	tr.Record(1, 0, PhaseFlagWait, "bcast", 1, 1e6, 2e6, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Dur < 0 {
				t.Errorf("negative duration: %+v", e)
			}
		}
	}
	if meta < 3 { // process_name + 2 thread_names
		t.Errorf("metadata events = %d, want >= 3", meta)
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	// Span times are picoseconds; the export must be microseconds.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "chunk-copy" && e.Dur != 2.0 {
			t.Errorf("chunk-copy dur = %v us, want 2", e.Dur)
		}
	}
}
