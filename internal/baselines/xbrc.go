package baselines

import (
	"fmt"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/shm"
	"xhc/internal/xpmem"
)

// XBRC reimplements the XPMEM-Based Reduction Collectives of Hashmi et al.
// (IPDPS'18), the paper's second research comparison point: shared-address
// space Reduce/Allreduce in which every rank maps its peers' buffers via
// XPMEM and reduces a flat, rank-partitioned slice directly from them —
// truly single-copy, but with no topology awareness, so every rank streams
// from every other rank regardless of NUMA or socket distance.
type XBRC struct {
	W   *env.World
	cfg XBRCConfig

	caches []*xpmem.Cache
	// ready[r]: rank r's contribution counter (ops completed).
	ready []*shm.Flag
	// done[r]: rank r's slice-reduced counter.
	done []*shm.Flag
	// fetched[r]: rank r's allgather-complete counter.
	fetched []*shm.Flag
	// exposure slots per rank: send buffer and result buffer handles.
	sExp []xpmem.Handle
	rExp []xpmem.Handle
	rOff []int

	views []xbrcView
}

type xbrcView struct{ opSeq uint64 }

// XBRCConfig tunes the component.
type XBRCConfig struct {
	// MinSlice is the minimum per-rank slice; smaller messages are reduced
	// by rank 0 alone.
	MinSlice int
	// RegCache enables the registration cache (the original design pairs
	// XPMEM with one).
	RegCache bool
}

// DefaultXBRCConfig returns the original design's defaults.
func DefaultXBRCConfig() XBRCConfig {
	return XBRCConfig{MinSlice: 1 << 10, RegCache: true}
}

// NewXBRC builds the component.
func NewXBRC(w *env.World, cfg XBRCConfig) *XBRC {
	x := &XBRC{
		W:       w,
		cfg:     cfg,
		caches:  make([]*xpmem.Cache, w.N),
		ready:   make([]*shm.Flag, w.N),
		done:    make([]*shm.Flag, w.N),
		fetched: make([]*shm.Flag, w.N),
		sExp:    make([]xpmem.Handle, w.N),
		rExp:    make([]xpmem.Handle, w.N),
		rOff:    make([]int, w.N),
		views:   make([]xbrcView, w.N),
	}
	for r := 0; r < w.N; r++ {
		x.caches[r] = xpmem.NewCache(w.Sys, 0, cfg.RegCache)
		core := w.Core(r)
		x.ready[r] = shm.NewFlag(w.Sys, fmt.Sprintf("xbrc.ready.%d", r), core)
		x.done[r] = shm.NewFlag(w.Sys, fmt.Sprintf("xbrc.done.%d", r), core)
		x.fetched[r] = shm.NewFlag(w.Sys, fmt.Sprintf("xbrc.fetched.%d", r), core)
	}
	return x
}

// slices computes the flat partition: reducer i owns [lo, hi) bytes.
func (x *XBRC) slices(n, es int) [][2]int {
	N := x.W.N
	active := n / x.cfg.MinSlice
	if active < 1 {
		active = 1
	}
	if active > N {
		active = N
	}
	elems := n / es
	out := make([][2]int, N)
	per, rem := elems/active, elems%active
	start := 0
	for i := 0; i < N; i++ {
		if i >= active {
			out[i] = [2]int{start, start}
			continue
		}
		e := per
		if i < rem {
			e++
		}
		out[i] = [2]int{start, start + e*es}
		start += e * es
	}
	return out
}

// Allreduce: every rank exposes sbuf and rbuf; rank i reduces slice i from
// all peers' send buffers directly into its own rbuf slice; then each rank
// copies every other slice out of its owner's rbuf (single-copy
// allgather).
func (x *XBRC) Allreduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	v := &x.views[p.Rank]
	v.opSeq++
	if n == 0 {
		return
	}
	N := x.W.N
	sl := x.slices(n, dt.Size())

	// Exposure.
	x.sExp[p.Rank] = xpmem.Expose(sbuf)
	x.rExp[p.Rank] = xpmem.Expose(rbuf)
	x.ready[p.Rank].Set(p.S, p.Core, v.opSeq)

	// Reduce own slice directly from every peer's send buffer.
	lo, hi := sl[p.Rank][0], sl[p.Rank][1]
	if hi > lo {
		p.Copy(rbuf, lo, sbuf, lo, hi-lo)
		for r := 0; r < N; r++ {
			if r == p.Rank {
				continue
			}
			x.ready[r].WaitGE(p.S, p.Core, v.opSeq)
			src := x.caches[p.Rank].Attach(p.S, x.sExp[r])
			p.ChargeRead(src, lo, hi-lo)
			mpi.ReduceBytes(op, dt, rbuf.Data[lo:hi], src.Data[lo:hi])
			p.ChargeCompute(hi - lo)
			x.caches[p.Rank].Release(p.S, x.sExp[r])
		}
		p.Dirty(rbuf)
	}
	x.done[p.Rank].Set(p.S, p.Core, v.opSeq)

	// Allgather: pull every other slice from its owner's result buffer.
	for r := 0; r < N; r++ {
		if r == p.Rank {
			continue
		}
		rlo, rhi := sl[r][0], sl[r][1]
		if rhi == rlo {
			continue
		}
		x.done[r].WaitGE(p.S, p.Core, v.opSeq)
		src := x.caches[p.Rank].Attach(p.S, x.rExp[r])
		p.Copy(rbuf, rlo, src, rlo, rhi-rlo)
		x.caches[p.Rank].Release(p.S, x.rExp[r])
	}

	// Exit: everyone must be done fetching before buffers can be reused.
	x.fetched[p.Rank].Set(p.S, p.Core, v.opSeq)
	var flags []*shm.Flag
	for r := 0; r < N; r++ {
		if r != p.Rank {
			flags = append(flags, x.fetched[r])
		}
	}
	shm.WaitAllGE(p.S, p.Core, flags, v.opSeq)
}

// Reduce: the rank-partitioned reduction lands directly in the root's
// result buffer (all reducers write disjoint slices of it).
func (x *XBRC) Reduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, root int) {
	v := &x.views[p.Rank]
	v.opSeq++
	if n == 0 {
		return
	}
	N := x.W.N
	sl := x.slices(n, dt.Size())

	x.sExp[p.Rank] = xpmem.Expose(sbuf)
	if p.Rank == root {
		x.rExp[p.Rank] = xpmem.Expose(rbuf)
	}
	x.ready[p.Rank].Set(p.S, p.Core, v.opSeq)

	lo, hi := sl[p.Rank][0], sl[p.Rank][1]
	if hi > lo {
		x.ready[root].WaitGE(p.S, p.Core, v.opSeq)
		dst := x.caches[p.Rank].Attach(p.S, x.rExp[root])
		p.Copy(dst, lo, sbuf, lo, hi-lo)
		for r := 0; r < N; r++ {
			if r == p.Rank {
				continue
			}
			x.ready[r].WaitGE(p.S, p.Core, v.opSeq)
			src := x.caches[p.Rank].Attach(p.S, x.sExp[r])
			p.ChargeRead(src, lo, hi-lo)
			mpi.ReduceBytes(op, dt, dst.Data[lo:hi], src.Data[lo:hi])
			p.ChargeCompute(hi - lo)
			x.caches[p.Rank].Release(p.S, x.sExp[r])
		}
		p.Dirty(dst)
		x.caches[p.Rank].Release(p.S, x.rExp[root])
	}
	x.done[p.Rank].Set(p.S, p.Core, v.opSeq)
	// Everyone waits for all reducers (buffer reuse safety).
	var flags []*shm.Flag
	for r := 0; r < N; r++ {
		if r != p.Rank {
			flags = append(flags, x.done[r])
		}
	}
	shm.WaitAllGE(p.S, p.Core, flags, v.opSeq)
}

// Bcast is not part of XBRC's design (reduction collectives only); it is
// provided for interface completeness as a flat pull from the root's
// exposed buffer.
func (x *XBRC) Bcast(p *env.Proc, buf *mem.Buffer, off, n, root int) {
	v := &x.views[p.Rank]
	v.opSeq++
	if n == 0 {
		return
	}
	if p.Rank == root {
		x.rExp[root] = xpmem.Expose(buf)
		x.rOff[root] = off
		x.ready[root].Set(p.S, p.Core, v.opSeq)
		for r := 0; r < x.W.N; r++ {
			if r != root {
				x.fetched[r].WaitGE(p.S, p.Core, v.opSeq)
			}
		}
		return
	}
	x.ready[root].WaitGE(p.S, p.Core, v.opSeq)
	src := x.caches[p.Rank].Attach(p.S, x.rExp[root])
	p.Copy(buf, off, src, x.rOff[root], n)
	x.caches[p.Rank].Release(p.S, x.rExp[root])
	x.fetched[p.Rank].Set(p.S, p.Core, v.opSeq)
}
