package baselines

import (
	"fmt"

	"xhc/internal/env"
	"xhc/internal/hier"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/shm"
)

// SMHC reimplements the Shared-Memory-based Hierarchical Collectives of
// Jain et al. (SC'18), as the paper does for its comparison: collectives
// directly over shared memory (copy-in-copy-out for every byte, no
// single-copy mechanism), single-writer release/gather flags, and either a
// flat tree or a socket-aware two-level tree.
type SMHC struct {
	W    *env.World
	cfg  SMHCConfig
	h    *hier.Hierarchy
	segs []*mem.Buffer // per-rank shared staging segments

	// ready[level][group]: leader-owned staged-bytes counter.
	ready [][]*shm.Flag
	// acks[level][group][member]: member-owned completion counters.
	acks [][]map[int]*shm.Flag
	// redReady/redDone: contribution and reduction progress (allreduce).
	redReady [][]map[int]*shm.Flag
	redDone  [][]map[int]*shm.Flag

	views []smhcView
}

type smhcView struct {
	opSeq    uint64
	cumBytes []uint64
	redCum   []uint64
}

// SMHCConfig tunes the component.
type SMHCConfig struct {
	// Tree enables the socket-aware hierarchy (the paper's smhc-tree);
	// false gives the flat variant. On single-socket nodes only the flat
	// variant exists.
	Tree bool
	// SegBytes is each rank's staging segment size; larger messages are
	// chunked through it.
	SegBytes int
	// ChunkBytes is the pipelining granule.
	ChunkBytes int
}

// DefaultSMHCConfig returns the tree variant defaults.
func DefaultSMHCConfig() SMHCConfig {
	return SMHCConfig{Tree: true, SegBytes: 64 << 10, ChunkBytes: 32 << 10}
}

// NewSMHC builds the component.
func NewSMHC(w *env.World, cfg SMHCConfig) (*SMHC, error) {
	if cfg.ChunkBytes > cfg.SegBytes {
		cfg.ChunkBytes = cfg.SegBytes
	}
	var sens hier.Sensitivity
	if cfg.Tree && w.Topo.NSockets > 1 {
		sens = hier.Sensitivity{hier.DomainSocket}
	}
	h, err := hier.Build(w.Topo, w.Map, sens, 0)
	if err != nil {
		return nil, err
	}
	s := &SMHC{W: w, cfg: cfg, h: h}
	s.segs = make([]*mem.Buffer, w.N)
	for r := 0; r < w.N; r++ {
		s.segs[r] = w.NewBufferAt(fmt.Sprintf("smhc.seg.%d", r), r, cfg.SegBytes)
	}
	for l := 0; l < h.NLevels(); l++ {
		var rl []*shm.Flag
		var al, rr, rd []map[int]*shm.Flag
		for gi := range h.GroupsAt(l) {
			g := &h.GroupsAt(l)[gi]
			lc := w.Core(g.Leader)
			rl = append(rl, shm.NewFlag(w.Sys, fmt.Sprintf("smhc.l%d.g%d.ready", l, gi), lc))
			am := map[int]*shm.Flag{}
			rrm := map[int]*shm.Flag{}
			rdm := map[int]*shm.Flag{}
			for _, m := range g.Members {
				mc := w.Core(m)
				am[m] = shm.NewFlag(w.Sys, fmt.Sprintf("smhc.l%d.g%d.ack.%d", l, gi, m), mc)
				rrm[m] = shm.NewFlag(w.Sys, fmt.Sprintf("smhc.l%d.g%d.rr.%d", l, gi, m), mc)
				rdm[m] = shm.NewFlag(w.Sys, fmt.Sprintf("smhc.l%d.g%d.rd.%d", l, gi, m), mc)
			}
			al = append(al, am)
			rr = append(rr, rrm)
			rd = append(rd, rdm)
		}
		s.ready = append(s.ready, rl)
		s.acks = append(s.acks, al)
		s.redReady = append(s.redReady, rr)
		s.redDone = append(s.redDone, rd)
	}
	s.views = make([]smhcView, w.N)
	for r := range s.views {
		s.views[r] = smhcView{
			cumBytes: make([]uint64, h.NLevels()),
			redCum:   make([]uint64, h.NLevels()),
		}
	}
	return s, nil
}

// MustNewSMHC panics on error.
func MustNewSMHC(w *env.World, cfg SMHCConfig) *SMHC {
	s, err := NewSMHC(w, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *SMHC) groupOf(l, rank int) (*hier.Group, int) {
	g, ok := s.h.GroupOf(l, rank)
	if !ok {
		return nil, -1
	}
	return g, g.Index
}

func (s *SMHC) pullLevel(rank int) int {
	pl := -1
	for l := 0; l < s.h.NLevels(); l++ {
		if _, ok := s.h.GroupOf(l, rank); !ok {
			break
		}
		if !s.h.IsLeader(l, rank) {
			pl = l
		}
	}
	return pl
}

func (s *SMHC) leadLevels(rank int) []int {
	var out []int
	for l := 0; l < s.h.NLevels(); l++ {
		if s.h.IsLeader(l, rank) {
			out = append(out, l)
		} else {
			break
		}
	}
	return out
}

// Bcast: chunks flow root -> leaders -> members entirely through shared
// staging segments (two copies per hop — the copy-in-copy-out cost the
// paper contrasts with XHC's single-copy path). The hierarchy is fixed
// with rank 0 as the tree source; a different root first feeds rank 0
// through its own segment, chunk-synchronously.
func (s *SMHC) Bcast(p *env.Proc, buf *mem.Buffer, off, n, root int) {
	v := &s.views[p.Rank]
	v.opSeq++
	if n == 0 {
		s.ackPhase(p, v, 0)
		s.advance(v, 0)
		return
	}

	lead := s.leadLevels(p.Rank)
	pl := s.pullLevel(p.Rank)
	chunk := s.cfg.ChunkBytes
	half := s.cfg.SegBytes / 2
	if chunk > half {
		chunk = half
	}
	slotOf := func(copied int) int { return copied / chunk % 2 * half }

	// Pre-hop: an out-of-tree root feeds rank 0 (the fixed tree source).
	if root != 0 {
		g0, gi0 := s.groupOf(0, 0)
		_ = g0
		rootG, rootGi := s.groupOf(0, root)
		_ = rootG
		feedReady := s.redReady[0][rootGi][root] // owner: root
		feedDone := s.redDone[0][gi0][0]         // owner: rank 0
		base := v.redCum[0]
		if p.Rank == root {
			// The root already holds the data: it does not pull through the
			// tree, but must satisfy its leader's recycling acks upfront.
			if pl >= 0 {
				_, gi := s.groupOf(pl, p.Rank)
				s.acks[pl][gi][p.Rank].Set(p.S, p.Core, v.cumBytes[0]+uint64(n))
			}
			for copied := 0; copied < n; {
				sz := min(chunk, n-copied)
				// An out-of-tree root that leads groups serves its own
				// members from the same staged chunks, so their recycling
				// acks gate slot reuse alongside rank 0's drain.
				s.waitSlotFree(p, v, copied, chunk)
				p.Copy(s.segs[root], slotOf(copied), buf, off+copied, sz)
				copied += sz
				feedReady.Set(p.S, p.Core, base+uint64(copied))
				// The members of the root's own groups never hear from the
				// rank-0 tree (their leader is the root itself): announce
				// the staged bytes to them directly.
				for _, l := range lead {
					_, lgi := s.groupOf(l, p.Rank)
					s.ready[l][lgi].Set(p.S, p.Core, v.cumBytes[l]+uint64(copied))
				}
				// Chunk-synchronous: wait for rank 0 to drain before the
				// slot could be reused.
				if copied < n {
					over := copied - half
					if over > 0 {
						feedDone.WaitGE(p.S, p.Core, base+uint64(over))
					}
				}
			}
		}
		if p.Rank == 0 {
			for copied := 0; copied < n; {
				sz := min(chunk, n-copied)
				feedReady.WaitGE(p.S, p.Core, base+uint64(copied+sz))
				p.Copy(buf, off+copied, s.segs[root], slotOf(copied), sz)
				copied += sz
				feedDone.Set(p.S, p.Core, base+uint64(copied))
				// Forward immediately: stage into own segment for the tree.
				s.stageAndAnnounce(p, v, buf, off, copied, sz, lead)
			}
		}
	}

	switch {
	case p.Rank == 0 && root == 0:
		// Tree source: pipeline chunks through its own segment.
		for copied := 0; copied < n; {
			sz := min(chunk, n-copied)
			s.waitSlotFree(p, v, copied, chunk)
			p.Copy(s.segs[p.Rank], slotOf(copied), buf, off+copied, sz)
			copied += sz
			for _, l := range lead {
				_, gi := s.groupOf(l, p.Rank)
				s.ready[l][gi].Set(p.S, p.Core, v.cumBytes[l]+uint64(copied))
			}
		}
	case p.Rank != 0 && p.Rank != root:
		// Member/leader: pull from the leader's segment.
		g, gi := s.groupOf(pl, p.Rank)
		parentSeg := s.segs[g.Leader]
		parentReady := s.ready[pl][gi]
		base := v.cumBytes[pl]
		for copied := 0; copied < n; {
			sz := min(chunk, n-copied)
			parentReady.WaitGE(p.S, p.Core, base+uint64(copied+sz))
			p.Copy(buf, off+copied, parentSeg, slotOf(copied), sz)
			if len(lead) > 0 {
				s.waitSlotFree(p, v, copied, chunk)
				p.Copy(s.segs[p.Rank], slotOf(copied), parentSeg, slotOf(copied), sz)
			}
			copied += sz
			for _, l := range lead {
				_, lgi := s.groupOf(l, p.Rank)
				s.ready[l][lgi].Set(p.S, p.Core, v.cumBytes[l]+uint64(copied))
			}
			// Consumption ack for the leader's slot recycling.
			s.acks[pl][gi][p.Rank].Set(p.S, p.Core, v.cumBytes[0]+uint64(copied))
		}
	}

	s.ackPhase(p, v, n)
	s.advance(v, n)
}

// stageAndAnnounce copies the freshly received chunk ending at `copied`
// into this rank's segment and bumps its groups' counters.
func (s *SMHC) stageAndAnnounce(p *env.Proc, v *smhcView, buf *mem.Buffer, off, copied, sz int, lead []int) {
	chunk := s.cfg.ChunkBytes
	half := s.cfg.SegBytes / 2
	if chunk > half {
		chunk = half
	}
	start := copied - sz
	s.waitSlotFree(p, v, start, chunk)
	p.Copy(s.segs[p.Rank], start/chunk%2*half, buf, off+start, sz)
	for _, l := range lead {
		_, gi := s.groupOf(l, p.Rank)
		s.ready[l][gi].Set(p.S, p.Core, v.cumBytes[l]+uint64(copied))
	}
}

// advance moves every per-level mirror past an op of n bytes.
func (s *SMHC) advance(v *smhcView, n int) {
	for l := range v.cumBytes {
		v.cumBytes[l] += uint64(n)
		v.redCum[l] += uint64(n)
	}
}

// waitSlotFree blocks a stager about to write the chunk starting at
// `start` until every consumer has drained the chunk that previously
// occupied the same double-buffered slot.
func (s *SMHC) waitSlotFree(p *env.Proc, v *smhcView, start, chunk int) {
	reuseEnd := start - 2*chunk + chunk // end byte of the chunk 2 slots ago
	if reuseEnd <= 0 {
		return
	}
	need := v.cumBytes[0] + uint64(reuseEnd)
	for _, l := range s.leadLevels(p.Rank) {
		_, gi := s.groupOf(l, p.Rank)
		var flags []*shm.Flag
		for _, m := range s.h.GroupsAt(l)[gi].Members {
			if m != p.Rank {
				flags = append(flags, s.acks[l][gi][m])
			}
		}
		shm.WaitAllGE(p.S, p.Core, flags, need)
	}
}

// ackPhase: op-completion handshake (members signal, leaders collect), on
// the dedicated op-granular values above the byte-granular ones.
func (s *SMHC) ackPhase(p *env.Proc, v *smhcView, n int) {
	// Called before advance(): the op's final ack value is base + n; bcast
	// consumers have already arrived there byte by byte, other ops jump
	// straight to it.
	target := v.cumBytes[0] + uint64(n)
	if pl := s.pullLevel(p.Rank); pl >= 0 {
		_, gi := s.groupOf(pl, p.Rank)
		s.acks[pl][gi][p.Rank].Set(p.S, p.Core, target)
	}
	for _, l := range s.leadLevels(p.Rank) {
		_, gi := s.groupOf(l, p.Rank)
		var flags []*shm.Flag
		for _, m := range s.h.GroupsAt(l)[gi].Members {
			if m != p.Rank {
				flags = append(flags, s.acks[l][gi][m])
			}
		}
		shm.WaitAllGE(p.S, p.Core, flags, target)
	}
}

// Allreduce: members stage contributions through their segments; one
// designated reducer per group folds them into the leader's segment
// chunk-wise; the result is broadcast back — all copy-in-copy-out.
func (s *SMHC) Allreduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	v := &s.views[p.Rank]
	if n == 0 {
		v.opSeq++
		s.ackPhase(p, v, 0)
		return
	}
	// Process in segment-half-sized pieces: contributions must fit the
	// staging segments.
	piece := s.cfg.SegBytes / 2
	for o := 0; o < n; o += piece {
		sz := min(piece, n-o)
		s.allreducePiece(p, v, sbuf, rbuf, o, sz, dt, op)
	}
}

func (s *SMHC) allreducePiece(p *env.Proc, v *smhcView, sbuf, rbuf *mem.Buffer, off, n int, dt mpi.Datatype, op mpi.Op) {
	v.opSeq++
	lead := s.leadLevels(p.Rank)
	pl := s.pullLevel(p.Rank)
	slot := int(v.opSeq%2) * (s.cfg.SegBytes / 2)

	// Copy-in own contribution.
	p.Copy(s.segs[p.Rank], slot, sbuf, off, n)
	g0, gi0 := s.groupOf(0, p.Rank)
	_ = g0
	s.redReady[0][gi0][p.Rank].Set(p.S, p.Core, v.redCum[0]+uint64(n))

	// Bottom-up reduction, one reducer per group (first non-leader).
	for _, l := range lead {
		g, gi := s.groupOf(l, p.Rank)
		red := firstNonLeader(g)
		if red >= 0 {
			s.redDone[l][gi][red].WaitGE(p.S, p.Core, v.redCum[l]+uint64(n))
		}
		if l+1 < s.h.NLevels() {
			_, ugi := s.groupOf(l+1, p.Rank)
			s.redReady[l+1][ugi][p.Rank].Set(p.S, p.Core, v.redCum[l+1]+uint64(n))
		}
	}
	if pl >= 0 {
		g, gi := s.groupOf(pl, p.Rank)
		if firstNonLeader(g) == p.Rank {
			for _, m := range g.Members {
				s.redReady[pl][gi][m].WaitGE(p.S, p.Core, v.redCum[pl]+uint64(n))
			}
			dst := s.segs[g.Leader]
			for _, m := range g.Members {
				if m == g.Leader {
					continue
				}
				src := s.segs[m]
				p.ChargeRead(src, slot, n)
				mpi.ReduceBytes(op, dt, dst.Data[slot:slot+n], src.Data[slot:slot+n])
				p.ChargeCompute(n)
			}
			p.Dirty(dst)
			s.redDone[pl][gi][p.Rank].Set(p.S, p.Core, v.redCum[pl]+uint64(n))
		}
	}

	// Fan the result back out through the segments.
	if p.Rank == s.h.TopLeader() {
		p.Copy(rbuf, off, s.segs[p.Rank], slot, n)
		for _, l := range lead {
			_, gi := s.groupOf(l, p.Rank)
			s.ready[l][gi].Set(p.S, p.Core, v.cumBytes[l]+uint64(n))
		}
	} else {
		g, gi := s.groupOf(pl, p.Rank)
		s.ready[pl][gi].WaitGE(p.S, p.Core, v.cumBytes[pl]+uint64(n))
		p.Copy(rbuf, off, s.segs[g.Leader], slot, n)
		if len(lead) > 0 {
			p.Copy(s.segs[p.Rank], slot, s.segs[g.Leader], slot, n)
			for _, l := range lead {
				_, lgi := s.groupOf(l, p.Rank)
				s.ready[l][lgi].Set(p.S, p.Core, v.cumBytes[l]+uint64(n))
			}
		}
	}

	s.ackPhase(p, v, n)
	s.advance(v, n)
}

func firstNonLeader(g *hier.Group) int {
	r := -1
	for _, m := range g.Members {
		if m != g.Leader && (r < 0 || m < r) {
			r = m
		}
	}
	return r
}
