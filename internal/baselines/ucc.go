package baselines

import (
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
)

// UCC mimics the Unified Collective Communication library's intra-node
// behaviour: k-nomial trees over single-copy (XPMEM) point-to-point for
// broadcasts, and a ring reduce-scatter + allgather for large allreduce —
// bandwidth-optimal, which is why the paper observes ucc matching XHC in
// the 128K–1M band — with k-nomial reduce+bcast below that.
type UCC struct {
	W   *env.World
	P   *mpi.P2P
	cfg UCCConfig
	tmp []*mem.Buffer
}

// UCCConfig tunes the component.
type UCCConfig struct {
	Radix             int // k-nomial radix
	RingThreshold     int // allreduce: above this, use the ring
	BcastSegBytes     int // segment size for large k-nomial broadcasts
	BcastSegThreshold int
	P2P               mpi.Config
}

// DefaultUCCConfig returns typical UCC settings.
func DefaultUCCConfig() UCCConfig {
	return UCCConfig{
		Radix:             4,
		RingThreshold:     64 << 10,
		BcastSegBytes:     64 << 10,
		BcastSegThreshold: 128 << 10,
		P2P:               mpi.DefaultConfig(), // XPMEM single-copy
	}
}

// NewUCC builds the component.
func NewUCC(w *env.World, cfg UCCConfig) *UCC {
	if cfg.Radix < 2 {
		cfg.Radix = 2
	}
	return &UCC{W: w, P: mpi.NewP2P(w, cfg.P2P), cfg: cfg, tmp: make([]*mem.Buffer, w.N)}
}

func (u *UCC) scratch(rank, n int) *mem.Buffer {
	if u.tmp[rank] == nil || u.tmp[rank].Len() < n {
		u.tmp[rank] = u.W.NewBufferAt("ucc.tmp", rank, n)
	}
	return u.tmp[rank]
}

// knomialChildren returns the parent of vr in a k-nomial tree over N
// virtual ranks (-1 for the root) and its children. The parent clears the
// lowest non-zero base-k digit of vr; children add d*k^j at every digit
// position j strictly below that digit (all positions for the root).
func knomialChildren(vr, N, k int) (parent int, children []int) {
	parent = -1
	maxPw := N // the root spawns children at every digit position
	if vr != 0 {
		pow := 1
		for vr/pow%k == 0 {
			pow *= k
		}
		parent = vr - (vr / pow % k * pow)
		maxPw = pow
	}
	for pw := 1; pw < maxPw && pw < N; pw *= k {
		for d := 1; d < k; d++ {
			ch := vr + d*pw
			if ch >= N {
				break
			}
			children = append(children, ch)
		}
	}
	return parent, children
}

// Bcast: k-nomial tree, segmented above the threshold.
func (u *UCC) Bcast(p *env.Proc, buf *mem.Buffer, off, n, root int) {
	N := u.W.N
	if N == 1 || n <= 0 {
		return
	}
	vr := (p.Rank - root + N) % N
	parent, children := knomialChildren(vr, N, u.cfg.Radix)
	toReal := func(v int) int { return (v + root) % N }

	seg := n
	if n > u.cfg.BcastSegThreshold {
		seg = u.cfg.BcastSegBytes
	}
	nseg := (n + seg - 1) / seg
	for s := 0; s < nseg; s++ {
		o := s * seg
		sz := min(seg, n-o)
		if parent >= 0 {
			u.P.Recv(p, toReal(parent), s, buf, off+o, sz)
		}
		for _, ch := range children {
			u.P.Send(p, toReal(ch), s, buf, off+o, sz)
		}
	}
}

// Allreduce: k-nomial reduce + k-nomial bcast for small messages, ring
// reduce-scatter + ring allgather for large ones.
func (u *UCC) Allreduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	p.Copy(rbuf, 0, sbuf, 0, n)
	es := dt.Size()
	if n <= u.cfg.RingThreshold || n/u.W.N < es {
		u.knomialAllreduce(p, rbuf, n, dt, op)
		return
	}
	u.ringAllreduce(p, rbuf, n, dt, op)
}

// knomialAllreduce: reduce up the k-nomial tree to rank 0, broadcast back.
func (u *UCC) knomialAllreduce(p *env.Proc, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	N := u.W.N
	if N == 1 {
		return
	}
	parent, children := knomialChildren(p.Rank, N, u.cfg.Radix)
	tmp := u.scratch(p.Rank, n)
	// Reduce phase: children push up (deepest first arrives naturally).
	for _, ch := range children {
		u.P.Recv(p, ch, 1000, tmp, 0, n)
		mpi.ReduceBytes(op, dt, rbuf.Data[:n], tmp.Data[:n])
		p.ChargeCompute(n)
		p.Dirty(rbuf)
	}
	if parent >= 0 {
		u.P.Send(p, parent, 1000, rbuf, 0, n)
	}
	// Broadcast phase.
	if parent >= 0 {
		u.P.Recv(p, parent, 1001, rbuf, 0, n)
	}
	for _, ch := range children {
		u.P.Send(p, ch, 1001, rbuf, 0, n)
	}
}

// ringAllreduce: the classic bandwidth-optimal ring. Each rank owns slice
// i; N-1 reduce-scatter steps then N-1 allgather steps, each moving one
// slice to the right neighbour.
func (u *UCC) ringAllreduce(p *env.Proc, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	N := u.W.N
	if N == 1 {
		return
	}
	es := dt.Size()
	elems := n / es
	sliceOf := func(i int) (int, int) { // byte offset, byte size of slice i
		i = (i%N + N) % N
		lo := elems * i / N
		hi := elems * (i + 1) / N
		return lo * es, (hi - lo) * es
	}
	right := (p.Rank + 1) % N
	left := (p.Rank - 1 + N) % N
	tmp := u.scratch(p.Rank, n/N+es)

	// Reduce-scatter: at step s, send slice (rank-s), receive and reduce
	// slice (rank-s-1).
	for s := 0; s < N-1; s++ {
		sOff, sSz := sliceOf(p.Rank - s)
		rOff, rSz := sliceOf(p.Rank - s - 1)
		if p.Rank%2 == 0 {
			u.P.Send(p, right, 2000+s, rbuf, sOff, sSz)
			u.P.Recv(p, left, 2000+s, tmp, 0, rSz)
		} else {
			u.P.Recv(p, left, 2000+s, tmp, 0, rSz)
			u.P.Send(p, right, 2000+s, rbuf, sOff, sSz)
		}
		mpi.ReduceBytes(op, dt, rbuf.Data[rOff:rOff+rSz], tmp.Data[:rSz])
		p.ChargeCompute(rSz)
		p.Dirty(rbuf)
	}
	// Allgather: rotate the completed slices around the ring.
	for s := 0; s < N-1; s++ {
		sOff, sSz := sliceOf(p.Rank + 1 - s)
		rOff, rSz := sliceOf(p.Rank - s)
		if p.Rank%2 == 0 {
			u.P.Send(p, right, 3000+s, rbuf, sOff, sSz)
			u.P.Recv(p, left, 3000+s, rbuf, rOff, rSz)
		} else {
			u.P.Recv(p, left, 3000+s, rbuf, rOff, rSz)
			u.P.Send(p, right, 3000+s, rbuf, sOff, sSz)
		}
	}
}
