// Package baselines implements the collective frameworks the paper
// compares XHC against: OpenMPI's tuned (point-to-point algorithms over
// UCX-like transports) and sm (shared memory with atomic flags)
// components, a UCC-like library, and reimplementations of two research
// frameworks — SMHC (shared-memory hierarchical collectives, Jain et al.)
// and XBRC (XPMEM-based reduction collectives, Hashmi et al.).
package baselines

import (
	"fmt"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
)

// Component is the interface all collective implementations share
// (package core's Comm satisfies it too).
type Component interface {
	Bcast(p *env.Proc, buf *mem.Buffer, off, n, root int)
	Allreduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op)
}

// Tuned mimics OpenMPI's tuned component: collectives composed from
// point-to-point messages, with size-based algorithm selection — binomial
// trees for small broadcasts, a segmented pipeline chain for large ones;
// recursive doubling for small allreduce, Rabenseifner
// (reduce-scatter + allgather) for large. The communication schedule is
// static and topology-unaware, which is exactly the weakness the paper's
// Fig. 9 exposes.
type Tuned struct {
	W   *env.World
	P   *mpi.P2P
	cfg TunedConfig

	// tmp holds per-rank scratch for reductions. Tags may repeat across
	// operations: per-(src,dst,tag) FIFO matching plus identical program
	// order on all ranks keeps matching unambiguous.
	tmp []*mem.Buffer
}

// TunedConfig tunes algorithm switchover points.
type TunedConfig struct {
	// BcastChainThreshold: above this, Bcast switches from the binomial
	// tree to the segmented binary tree.
	BcastChainThreshold int
	// BcastPipelineThreshold: above this, Bcast uses the pipeline (chain),
	// whose stride-1 schedule is fast under sequential rank placement and
	// collapses under round-robin placement (the Fig. 9a sensitivity).
	BcastPipelineThreshold int
	// BcastSegBytes is the chain segment size.
	BcastSegBytes int
	// AllreduceRabThreshold: above this, Allreduce uses Rabenseifner.
	AllreduceRabThreshold int
	// P2P is the transport configuration.
	P2P mpi.Config
}

// DefaultTunedConfig mirrors OpenMPI defaults (UCX + XPMEM under SMSC).
func DefaultTunedConfig() TunedConfig {
	return TunedConfig{
		BcastChainThreshold:    128 << 10,
		BcastPipelineThreshold: 512 << 10,
		BcastSegBytes:          64 << 10,
		AllreduceRabThreshold:  16 << 10,
		P2P:                    mpi.DefaultConfig(),
	}
}

// NewTuned builds the component for a world.
func NewTuned(w *env.World, cfg TunedConfig) *Tuned {
	return &Tuned{
		W:   w,
		P:   mpi.NewP2P(w, cfg.P2P),
		cfg: cfg,
		tmp: make([]*mem.Buffer, w.N),
	}
}

// scratch returns rank's reduction scratch of at least n bytes.
func (t *Tuned) scratch(rank, n int) *mem.Buffer {
	if t.tmp[rank] == nil || t.tmp[rank].Len() < n {
		t.tmp[rank] = t.W.NewBufferAt(fmt.Sprintf("tuned.tmp.%d", rank), rank, n)
	}
	return t.tmp[rank]
}

// Bcast broadcasts via binomial tree (small) or a segmented binary tree
// (large) — OpenMPI's static schedules. In the segmented binary tree every
// inner node forwards each segment to two children, halving its effective
// output bandwidth; this is a key inefficiency the paper's XHC avoids.
func (t *Tuned) Bcast(p *env.Proc, buf *mem.Buffer, off, n, root int) {
	switch {
	case n > t.cfg.BcastPipelineThreshold:
		t.chainBcast(p, buf, off, n, root)
	case n > t.cfg.BcastChainThreshold:
		t.binarySegBcast(p, buf, off, n, root)
	default:
		t.binomialBcast(p, buf, off, n, root, 0)
	}
}

// binomialBcast: classic virtual-root binomial tree over p2p.
func (t *Tuned) binomialBcast(p *env.Proc, buf *mem.Buffer, off, n, root, tag int) {
	N := t.W.N
	if N == 1 {
		return
	}
	vr := (p.Rank - root + N) % N
	// Receive from parent (highest set bit of vr cleared).
	if vr != 0 {
		mask := 1
		for mask <= vr {
			mask <<= 1
		}
		mask >>= 1
		parent := ((vr - mask) + root) % N
		t.P.Recv(p, parent, tag, buf, off, n)
	}
	// Send to children vr + 2^k for 2^k > vr.
	mask := 1
	for mask <= vr {
		mask <<= 1
	}
	for ; mask < N; mask <<= 1 {
		child := vr + mask
		if child >= N {
			break
		}
		t.P.Send(p, (child+root)%N, tag, buf, off, n)
	}
}

// chainBcast: the segmented pipeline — virtual rank vr receives each
// segment from its predecessor and forwards it to its successor.
func (t *Tuned) chainBcast(p *env.Proc, buf *mem.Buffer, off, n, root int) {
	N := t.W.N
	if N == 1 {
		return
	}
	vr := (p.Rank - root + N) % N
	prev := (p.Rank - 1 + N) % N
	next := (p.Rank + 1) % N
	seg := t.cfg.BcastSegBytes
	nseg := (n + seg - 1) / seg
	for s := 0; s < nseg; s++ {
		o := s * seg
		sz := min(seg, n-o)
		if vr != 0 {
			t.P.Recv(p, prev, s, buf, off+o, sz)
		}
		if vr != N-1 {
			t.P.Send(p, next, s, buf, off+o, sz)
		}
	}
}

// binarySegBcast: segmented binary tree. Node vr receives each segment
// from (vr-1)/2 and forwards it to 2vr+1 and 2vr+2.
func (t *Tuned) binarySegBcast(p *env.Proc, buf *mem.Buffer, off, n, root int) {
	N := t.W.N
	if N == 1 {
		return
	}
	vr := (p.Rank - root + N) % N
	toReal := func(v int) int { return (v + root) % N }
	parent := (vr - 1) / 2
	c1, c2 := 2*vr+1, 2*vr+2
	seg := t.cfg.BcastSegBytes
	nseg := (n + seg - 1) / seg
	for s := 0; s < nseg; s++ {
		o := s * seg
		sz := min(seg, n-o)
		if vr != 0 {
			t.P.Recv(p, toReal(parent), s, buf, off+o, sz)
		}
		if c1 < N {
			t.P.Send(p, toReal(c1), s, buf, off+o, sz)
		}
		if c2 < N {
			t.P.Send(p, toReal(c2), s, buf, off+o, sz)
		}
	}
}

// Allreduce: recursive doubling (small) or Rabenseifner (large), with the
// standard non-power-of-two fold.
func (t *Tuned) Allreduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	// Result accumulates in rbuf; start from own contribution.
	p.Copy(rbuf, 0, sbuf, 0, n)
	if n <= t.cfg.AllreduceRabThreshold || n/t.W.N < dt.Size() {
		t.recursiveDoubling(p, rbuf, n, dt, op)
		return
	}
	t.rabenseifner(p, rbuf, n, dt, op)
}

// pow2Below returns the largest power of two <= n.
func pow2Below(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// fold handles the pre-step for non-power-of-two rank counts: the first
// 2*rem ranks pair up; odd ranks of each pair send their data to the even
// ones and sit out. Returns this rank's id within the power-of-two group,
// or -1 if it sits out.
func (t *Tuned) foldIn(p *env.Proc, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, tag int) int {
	N := t.W.N
	P := pow2Below(N)
	rem := N - P
	r := p.Rank
	switch {
	case r < 2*rem && r%2 == 1:
		// Sends its contribution to the left neighbour and waits for the
		// final result afterwards.
		t.P.Send(p, r-1, tag, rbuf, 0, n)
		return -1
	case r < 2*rem:
		tmp := t.scratch(r, n)
		t.P.Recv(p, r+1, tag, tmp, 0, n)
		mpi.ReduceBytes(op, dt, rbuf.Data[:n], tmp.Data[:n])
		p.ChargeCompute(n)
		p.Dirty(rbuf)
		return r / 2
	default:
		return r - rem
	}
}

// foldOut sends the final result back to the ranks that sat out.
func (t *Tuned) foldOut(p *env.Proc, rbuf *mem.Buffer, n int, tag int) {
	N := t.W.N
	P := pow2Below(N)
	rem := N - P
	r := p.Rank
	if r < 2*rem && r%2 == 1 {
		t.P.Recv(p, r-1, tag, rbuf, 0, n)
	} else if r < 2*rem && r%2 == 0 {
		t.P.Send(p, r+1, tag, rbuf, 0, n)
	}
}

// recursiveDoubling: log2(P) exchange-and-reduce rounds.
func (t *Tuned) recursiveDoubling(p *env.Proc, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	const tagA, tagB = 1 << 20, 1<<20 + 1
	vr := t.foldIn(p, rbuf, n, dt, op, tagA)
	if vr >= 0 {
		N := t.W.N
		P := pow2Below(N)
		rem := N - P
		toReal := func(v int) int {
			if v < rem {
				return v * 2
			}
			return v + rem
		}
		tmp := t.scratch(p.Rank, n)
		for mask := 1; mask < P; mask <<= 1 {
			peer := toReal(vr ^ mask)
			// Symmetric exchange: lower rank sends first to avoid the
			// rendezvous deadlock of two simultaneous blocking sends.
			if p.Rank < peer {
				t.P.SendSync(p, peer, mask, rbuf, 0, n)
				t.P.Recv(p, peer, mask, tmp, 0, n)
			} else {
				t.P.Recv(p, peer, mask, tmp, 0, n)
				t.P.SendSync(p, peer, mask, rbuf, 0, n)
			}
			mpi.ReduceBytes(op, dt, rbuf.Data[:n], tmp.Data[:n])
			p.ChargeCompute(n)
			p.Dirty(rbuf)
		}
	}
	t.foldOut(p, rbuf, n, tagB)
}

// rabenseifner: recursive-halving reduce-scatter followed by recursive
// doubling allgather, bandwidth-optimal for large messages.
func (t *Tuned) rabenseifner(p *env.Proc, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	const tagA, tagB = 1 << 21, 1<<21 + 1
	vr := t.foldIn(p, rbuf, n, dt, op, tagA)
	if vr >= 0 {
		N := t.W.N
		P := pow2Below(N)
		rem := N - P
		toReal := func(v int) int {
			if v < rem {
				return v * 2
			}
			return v + rem
		}
		es := dt.Size()
		elems := n / es
		tmp := t.scratch(p.Rank, n)

		// Reduce-scatter by recursive halving: after each round this rank
		// owns a halved span [lo, hi) of elements.
		lo, hi := 0, elems
		for mask := 1; mask < P; mask <<= 1 {
			peer := toReal(vr ^ mask)
			mid := (lo + hi) / 2
			var sendLo, sendHi, keepLo, keepHi int
			if vr&mask == 0 {
				keepLo, keepHi = lo, mid
				sendLo, sendHi = mid, hi
			} else {
				keepLo, keepHi = mid, hi
				sendLo, sendHi = lo, mid
			}
			sOff, sN := sendLo*es, (sendHi-sendLo)*es
			kOff, kN := keepLo*es, (keepHi-keepLo)*es
			if p.Rank < peer {
				t.P.SendSync(p, peer, mask, rbuf, sOff, sN)
				t.P.Recv(p, peer, mask, tmp, kOff, kN)
			} else {
				t.P.Recv(p, peer, mask, tmp, kOff, kN)
				t.P.SendSync(p, peer, mask, rbuf, sOff, sN)
			}
			mpi.ReduceBytes(op, dt, rbuf.Data[kOff:kOff+kN], tmp.Data[kOff:kOff+kN])
			p.ChargeCompute(kN)
			p.Dirty(rbuf)
			lo, hi = keepLo, keepHi
		}

		// Allgather by recursive doubling: spans double back up.
		for mask := P >> 1; mask >= 1; mask >>= 1 {
			peer := toReal(vr ^ mask)
			// Reconstruct the peer's span: it is the mirror of ours at
			// this halving depth.
			span := hi - lo
			var peerLo int
			if vr&mask == 0 {
				peerLo = lo + span
			} else {
				peerLo = lo - span
			}
			sOff, sN := lo*es, span*es
			rOff, rN := peerLo*es, span*es
			if p.Rank < peer {
				t.P.Send(p, peer, 4096+mask, rbuf, sOff, sN)
				t.P.Recv(p, peer, 4096+mask, rbuf, rOff, rN)
			} else {
				t.P.Recv(p, peer, 4096+mask, rbuf, rOff, rN)
				t.P.Send(p, peer, 4096+mask, rbuf, sOff, sN)
			}
			if peerLo < lo {
				lo = peerLo
			} else {
				hi = peerLo + span
			}
		}
	}
	t.foldOut(p, rbuf, n, tagB)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SetOnMessage installs a message observer on the underlying p2p layer
// (used by the Table II message-distance accounting).
func (t *Tuned) SetOnMessage(f func(src, dst, n int)) { t.P.OnMessage = f }
