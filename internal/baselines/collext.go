package baselines

import (
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
)

// Capability interfaces for the collectives beyond the base Component
// surface. Components implement the ones their real-world counterparts
// ship (core.Comm implements all of them); callers type-assert, the way
// OpenMPI's coll framework falls back when a module leaves a pointer nil.
type (
	// Barrierer synchronizes all ranks.
	Barrierer interface {
		Barrier(p *env.Proc)
	}
	// Reducer reduces into root's rbuf only.
	Reducer interface {
		Reduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, root int)
	}
	// Allgatherer concatenates every rank's blockLen-byte in block into
	// each rank's out buffer in rank order.
	Allgatherer interface {
		Allgather(p *env.Proc, in *mem.Buffer, out *mem.Buffer, blockLen int)
	}
	// Scatterer distributes blockLen-byte blocks from root's buf (N
	// blocks in rank order) to each rank's out.
	Scatterer interface {
		Scatter(p *env.Proc, buf *mem.Buffer, out *mem.Buffer, blockLen, root int)
	}
)

var (
	_ Barrierer   = (*Tuned)(nil)
	_ Reducer     = (*Tuned)(nil)
	_ Allgatherer = (*Tuned)(nil)
	_ Scatterer   = (*Tuned)(nil)
	_ Barrierer   = (*SM)(nil)
	_ Reducer     = (*SM)(nil)
	_ Allgatherer = (*SM)(nil)
	_ Scatterer   = (*SM)(nil)
	_ Reducer     = (*XBRC)(nil)
)

// Tag spaces for the flat p2p collectives (distinct from the bcast/
// allreduce spaces in this file's siblings).
const (
	tagBarrier   = 1 << 22
	tagReduce    = 1 << 23
	tagAllgather = 1 << 24
	tagScatter   = 1 << 25
)

// Barrier: dissemination barrier — log2(N) rounds of one-byte tokens, each
// rank signaling (rank+2^k) mod N and waiting on (rank-2^k) mod N. Token
// messages are far below the eager threshold, so the all-send rounds
// cannot deadlock.
func (t *Tuned) Barrier(p *env.Proc) {
	N := t.W.N
	if N == 1 {
		return
	}
	tok := t.scratch(p.Rank, 1)
	for k, mask := 0, 1; mask < N; k, mask = k+1, mask<<1 {
		t.P.Send(p, (p.Rank+mask)%N, tagBarrier+k, tok, 0, 1)
		t.P.Recv(p, (p.Rank-mask+N)%N, tagBarrier+k, tok, 0, 1)
	}
}

// Reduce: binomial tree toward the root — leaves send their contribution,
// inner nodes fold received subtree sums into an accumulator (rbuf at the
// root, internal scratch elsewhere) before forwarding it up.
func (t *Tuned) Reduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, root int) {
	if n == 0 {
		return
	}
	N := t.W.N
	vr := (p.Rank - root + N) % N
	acc, accOff, tmp, tmpOff := rbuf, 0, t.scratch(p.Rank, n), 0
	if p.Rank != root {
		sc := t.scratch(p.Rank, 2*n)
		acc, accOff, tmp, tmpOff = sc, 0, sc, n
	}
	p.Copy(acc, accOff, sbuf, 0, n)
	for mask := 1; mask < N; mask <<= 1 {
		if vr&mask != 0 {
			t.P.Send(p, ((vr-mask)+root)%N, tagReduce, acc, accOff, n)
			return
		}
		child := vr + mask
		if child >= N {
			continue
		}
		t.P.Recv(p, (child+root)%N, tagReduce, tmp, tmpOff, n)
		mpi.ReduceBytes(op, dt, acc.Data[accOff:accOff+n], tmp.Data[tmpOff:tmpOff+n])
		p.ChargeCompute(n)
		p.Dirty(acc)
	}
}

// Allgather: ring — N-1 steps, each rank forwarding the block it received
// in the previous step to its successor. Even ranks send first and odd
// ranks receive first, so the cycle of rendezvous sends cannot close.
func (t *Tuned) Allgather(p *env.Proc, in *mem.Buffer, out *mem.Buffer, blockLen int) {
	N := t.W.N
	p.Copy(out, p.Rank*blockLen, in, 0, blockLen)
	if N == 1 || blockLen == 0 {
		return
	}
	next, prev := (p.Rank+1)%N, (p.Rank-1+N)%N
	for s := 0; s < N-1; s++ {
		sendBlk := (p.Rank - s + N*N) % N
		recvBlk := (p.Rank - s - 1 + N*N) % N
		if p.Rank%2 == 0 {
			t.P.Send(p, next, tagAllgather+s, out, sendBlk*blockLen, blockLen)
			t.P.Recv(p, prev, tagAllgather+s, out, recvBlk*blockLen, blockLen)
		} else {
			t.P.Recv(p, prev, tagAllgather+s, out, recvBlk*blockLen, blockLen)
			t.P.Send(p, next, tagAllgather+s, out, sendBlk*blockLen, blockLen)
		}
	}
}

// Scatter: binomial — the root stages the blocks in virtual-rank order,
// then each holder of a span repeatedly sends away its upper half. Inner
// ranks receive their span into scratch and keep only their own block.
func (t *Tuned) Scatter(p *env.Proc, buf *mem.Buffer, out *mem.Buffer, blockLen, root int) {
	if blockLen == 0 {
		return
	}
	N := t.W.N
	vr := (p.Rank - root + N) % N
	var stage *mem.Buffer
	mask := 1
	if vr == 0 {
		// Rotate into virtual order so every binomial span is contiguous
		// (OpenMPI's tmpbuf for non-zero roots).
		stage = t.scratch(p.Rank, blockLen*N)
		for v := 0; v < N; v++ {
			p.Copy(stage, v*blockLen, buf, ((v+root)%N)*blockLen, blockLen)
		}
		for mask < N {
			mask <<= 1
		}
	} else {
		mask = vr & -vr // lowest set bit: the span this rank receives
		span := min(mask, N-vr)
		stage = t.scratch(p.Rank, span*blockLen)
		t.P.Recv(p, ((vr-mask)+root)%N, tagScatter, stage, 0, span*blockLen)
	}
	for mask >>= 1; mask >= 1; mask >>= 1 {
		child := vr + mask
		if child >= N {
			continue
		}
		span := min(mask, N-child)
		t.P.Send(p, (child+root)%N, tagScatter, stage, mask*blockLen, span*blockLen)
	}
	p.Copy(out, 0, stage, 0, blockLen)
}
