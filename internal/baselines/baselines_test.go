package baselines

import (
	"bytes"
	"fmt"
	"testing"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/topo"
)

// components under test, constructed fresh per world.
func components(w *env.World) map[string]Component {
	smhcFlat := DefaultSMHCConfig()
	smhcFlat.Tree = false
	return map[string]Component{
		"tuned":     NewTuned(w, DefaultTunedConfig()),
		"ucc":       NewUCC(w, DefaultUCCConfig()),
		"sm":        NewSM(w, DefaultSMConfig()),
		"smhc-flat": MustNewSMHC(w, smhcFlat),
		"smhc-tree": MustNewSMHC(w, DefaultSMHCConfig()),
		"xbrc":      NewXBRC(w, DefaultXBRCConfig()),
	}
}

func newWorld(t *testing.T, top *topo.Topology, nranks int) *env.World {
	t.Helper()
	return env.NewWorld(top, top.MustMap(topo.MapCore, nranks))
}

func checkBcast(t *testing.T, top *topo.Topology, nranks, n, root int, name string, build func(w *env.World) Component) {
	t.Helper()
	w := newWorld(t, top, nranks)
	c := build(w)
	bufs := make([]*mem.Buffer, nranks)
	for r := range bufs {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, n)
	}
	for i := range bufs[root].Data {
		bufs[root].Data[i] = byte(i*11 + 3)
	}
	if err := w.Run(func(p *env.Proc) {
		c.Bcast(p, bufs[p.Rank], 0, n, root)
	}); err != nil {
		t.Fatalf("%s n=%d root=%d: %v", name, n, root, err)
	}
	for r := range bufs {
		if !bytes.Equal(bufs[r].Data, bufs[root].Data) {
			t.Fatalf("%s n=%d root=%d: rank %d wrong data", name, n, root, r)
		}
	}
}

func TestBcastCorrectnessAllComponents(t *testing.T) {
	top := topo.Epyc2P()
	builders := map[string]func(w *env.World) Component{
		"tuned": func(w *env.World) Component { return NewTuned(w, DefaultTunedConfig()) },
		"ucc":   func(w *env.World) Component { return NewUCC(w, DefaultUCCConfig()) },
		"sm":    func(w *env.World) Component { return NewSM(w, DefaultSMConfig()) },
		"smhc-flat": func(w *env.World) Component {
			cfg := DefaultSMHCConfig()
			cfg.Tree = false
			return MustNewSMHC(w, cfg)
		},
		"smhc-tree": func(w *env.World) Component { return MustNewSMHC(w, DefaultSMHCConfig()) },
		"xbrc":      func(w *env.World) Component { return NewXBRC(w, DefaultXBRCConfig()) },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{4, 1024, 64 << 10, 1 << 20} {
				checkBcast(t, top, 64, n, 0, name, build)
			}
			checkBcast(t, top, 64, 8<<10, 10, name, build)
			// Odd rank counts.
			checkBcast(t, top, 33, 4<<10, 0, name, build)
		})
	}
}

func checkAllreduce(t *testing.T, top *topo.Topology, nranks, elems int, name string, c Component, w *env.World) {
	t.Helper()
	n := elems * 8
	sbufs := make([]*mem.Buffer, nranks)
	rbufs := make([]*mem.Buffer, nranks)
	want := make([]int64, elems)
	for r := 0; r < nranks; r++ {
		sbufs[r] = w.NewBufferAt(fmt.Sprintf("s%d", r), r, n)
		rbufs[r] = w.NewBufferAt(fmt.Sprintf("r%d", r), r, n)
		vals := make([]int64, elems)
		for i := range vals {
			vals[i] = int64(r*17 + i)
			want[i] += vals[i]
		}
		mpi.EncodeInt64s(sbufs[r].Data, vals)
	}
	if err := w.Run(func(p *env.Proc) {
		c.Allreduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Int64, mpi.Sum)
	}); err != nil {
		t.Fatalf("%s elems=%d: %v", name, elems, err)
	}
	for r := 0; r < nranks; r++ {
		got := make([]int64, elems)
		mpi.DecodeInt64s(rbufs[r].Data, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s elems=%d rank=%d elem=%d: got %d want %d", name, elems, r, i, got[i], want[i])
			}
		}
	}
}

func TestAllreduceCorrectnessAllComponents(t *testing.T) {
	top := topo.Epyc2P()
	names := []string{"tuned", "ucc", "sm", "smhc-flat", "smhc-tree", "xbrc"}
	for _, elems := range []int{1, 64, 2048, 65536} {
		for _, name := range names {
			// Fresh world per (component, size) to isolate state.
			w := newWorld(t, top, 64)
			c := componentsByName(w, name)
			checkAllreduce(t, top, 64, elems, name, c, w)
		}
	}
}

func componentsByName(w *env.World, name string) Component {
	return components(w)[name]
}

func TestAllreduceOddRanks(t *testing.T) {
	top := topo.Epyc1P()
	for _, nranks := range []int{3, 7, 31} {
		for _, name := range []string{"tuned", "ucc", "xbrc", "sm", "smhc-tree"} {
			w := newWorld(t, top, nranks)
			c := componentsByName(w, name)
			checkAllreduce(t, top, nranks, 300, name, c, w)
		}
	}
}

func TestRepeatedMixedOps(t *testing.T) {
	top := topo.Epyc1P()
	const nranks = 32
	for _, name := range []string{"tuned", "ucc", "sm", "smhc-tree", "xbrc"} {
		w := newWorld(t, top, nranks)
		c := componentsByName(w, name)
		n := 4096
		bufs := make([]*mem.Buffer, nranks)
		sb := make([]*mem.Buffer, nranks)
		rb := make([]*mem.Buffer, nranks)
		for r := 0; r < nranks; r++ {
			bufs[r] = w.NewBufferAt("b", r, n)
			sb[r] = w.NewBufferAt("s", r, n)
			rb[r] = w.NewBufferAt("r", r, n)
			vals := make([]int64, n/8)
			for i := range vals {
				vals[i] = int64(r + i)
			}
			mpi.EncodeInt64s(sb[r].Data, vals)
		}
		for i := range bufs[0].Data {
			bufs[0].Data[i] = byte(i)
		}
		if err := w.Run(func(p *env.Proc) {
			for it := 0; it < 3; it++ {
				c.Bcast(p, bufs[p.Rank], 0, n, 0)
				c.Allreduce(p, sb[p.Rank], rb[p.Rank], n, mpi.Int64, mpi.Sum)
			}
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := make([]int64, 1)
		mpi.DecodeInt64s(rb[nranks-1].Data, got)
		want := int64(nranks * (nranks - 1) / 2)
		if got[0] != want {
			t.Errorf("%s: allreduce elem0 = %d, want %d", name, got[0], want)
		}
	}
}

func TestXBRCReduce(t *testing.T) {
	top := topo.Epyc1P()
	const nranks = 32
	const elems = 512
	n := elems * 8
	w := newWorld(t, top, nranks)
	x := NewXBRC(w, DefaultXBRCConfig())
	sbufs := make([]*mem.Buffer, nranks)
	rbufs := make([]*mem.Buffer, nranks)
	want := make([]int64, elems)
	for r := 0; r < nranks; r++ {
		sbufs[r] = w.NewBufferAt("s", r, n)
		rbufs[r] = w.NewBufferAt("r", r, n)
		vals := make([]int64, elems)
		for i := range vals {
			vals[i] = int64(r - i)
			want[i] += vals[i]
		}
		mpi.EncodeInt64s(sbufs[r].Data, vals)
	}
	if err := w.Run(func(p *env.Proc) {
		x.Reduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Int64, mpi.Sum, 5)
	}); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, elems)
	mpi.DecodeInt64s(rbufs[5].Data, got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("elem %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestBarrierComponents(t *testing.T) {
	top := topo.Epyc1P()
	for _, nranks := range []int{1, 2, 13, 32} {
		for _, name := range []string{"tuned", "sm"} {
			w := newWorld(t, top, nranks)
			b, ok := componentsByName(w, name).(Barrierer)
			if !ok {
				t.Fatalf("%s does not implement Barrierer", name)
			}
			if err := w.Run(func(p *env.Proc) {
				for it := 0; it < 3; it++ {
					b.Barrier(p)
				}
			}); err != nil {
				t.Fatalf("%s nranks=%d: %v", name, nranks, err)
			}
		}
	}
}

func TestReduceComponents(t *testing.T) {
	top := topo.Epyc1P()
	for _, nranks := range []int{1, 7, 32} {
		for _, root := range []int{0, nranks - 1} {
			for _, elems := range []int{1, 300, 9000} {
				for _, name := range []string{"tuned", "sm", "xbrc"} {
					n := elems * 8
					w := newWorld(t, top, nranks)
					red, ok := componentsByName(w, name).(Reducer)
					if !ok {
						t.Fatalf("%s does not implement Reducer", name)
					}
					sbufs := make([]*mem.Buffer, nranks)
					rbufs := make([]*mem.Buffer, nranks)
					want := make([]int64, elems)
					for r := 0; r < nranks; r++ {
						sbufs[r] = w.NewBufferAt("s", r, n)
						rbufs[r] = w.NewBufferAt("r", r, n)
						vals := make([]int64, elems)
						for i := range vals {
							vals[i] = int64(r*13 - i)
							want[i] += vals[i]
						}
						mpi.EncodeInt64s(sbufs[r].Data, vals)
					}
					if err := w.Run(func(p *env.Proc) {
						red.Reduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Int64, mpi.Sum, root)
					}); err != nil {
						t.Fatalf("%s nranks=%d root=%d elems=%d: %v", name, nranks, root, elems, err)
					}
					got := make([]int64, elems)
					mpi.DecodeInt64s(rbufs[root].Data, got)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s nranks=%d root=%d elems=%d elem=%d: got %d want %d",
								name, nranks, root, elems, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestAllgatherComponents(t *testing.T) {
	top := topo.Epyc1P()
	for _, nranks := range []int{1, 2, 13, 32} {
		for _, blockLen := range []int{0, 1, 700, 100 << 10} {
			for _, name := range []string{"tuned", "sm"} {
				w := newWorld(t, top, nranks)
				ag, ok := componentsByName(w, name).(Allgatherer)
				if !ok {
					t.Fatalf("%s does not implement Allgatherer", name)
				}
				ins := make([]*mem.Buffer, nranks)
				outs := make([]*mem.Buffer, nranks)
				for r := 0; r < nranks; r++ {
					ins[r] = w.NewBufferAt("in", r, blockLen)
					outs[r] = w.NewBufferAt("out", r, blockLen*nranks)
					for i := range ins[r].Data {
						ins[r].Data[i] = byte(r*29 + i)
					}
				}
				if err := w.Run(func(p *env.Proc) {
					ag.Allgather(p, ins[p.Rank], outs[p.Rank], blockLen)
				}); err != nil {
					t.Fatalf("%s nranks=%d block=%d: %v", name, nranks, blockLen, err)
				}
				for r := 0; r < nranks; r++ {
					for b := 0; b < nranks; b++ {
						if !bytes.Equal(outs[r].Data[b*blockLen:(b+1)*blockLen], ins[b].Data) {
							t.Fatalf("%s nranks=%d block=%d: rank %d block %d wrong", name, nranks, blockLen, r, b)
						}
					}
				}
			}
		}
	}
}

func TestScatterComponents(t *testing.T) {
	top := topo.Epyc1P()
	for _, nranks := range []int{1, 2, 13, 32} {
		for _, root := range []int{0, nranks / 2} {
			for _, blockLen := range []int{0, 1, 700, 40 << 10} {
				for _, name := range []string{"tuned", "sm"} {
					w := newWorld(t, top, nranks)
					sc, ok := componentsByName(w, name).(Scatterer)
					if !ok {
						t.Fatalf("%s does not implement Scatterer", name)
					}
					in := w.NewBufferAt("in", root, blockLen*nranks)
					for i := range in.Data {
						in.Data[i] = byte(i*7 + 1)
					}
					outs := make([]*mem.Buffer, nranks)
					for r := 0; r < nranks; r++ {
						outs[r] = w.NewBufferAt("out", r, blockLen)
					}
					if err := w.Run(func(p *env.Proc) {
						sc.Scatter(p, in, outs[p.Rank], blockLen, root)
					}); err != nil {
						t.Fatalf("%s nranks=%d root=%d block=%d: %v", name, nranks, root, blockLen, err)
					}
					for r := 0; r < nranks; r++ {
						if !bytes.Equal(outs[r].Data, in.Data[r*blockLen:(r+1)*blockLen]) {
							t.Fatalf("%s nranks=%d root=%d block=%d: rank %d wrong block", name, nranks, root, blockLen, r)
						}
					}
				}
			}
		}
	}
}

func TestKnomialTreeShape(t *testing.T) {
	// Radix 4, 16 ranks: verify parents/children form a consistent tree.
	N, k := 16, 4
	childCount := 0
	for v := 0; v < N; v++ {
		parent, children := knomialChildren(v, N, k)
		if v == 0 && parent != -1 {
			t.Errorf("root has parent %d", parent)
		}
		if v != 0 {
			if parent < 0 || parent >= N {
				t.Errorf("node %d: bad parent %d", v, parent)
			}
			// Check reciprocity: v is in parent's children.
			_, pc := knomialChildren(parent, N, k)
			found := false
			for _, c := range pc {
				if c == v {
					found = true
				}
			}
			if !found {
				t.Errorf("node %d not among parent %d's children %v", v, parent, pc)
			}
		}
		childCount += len(children)
	}
	if childCount != N-1 {
		t.Errorf("total children = %d, want %d", childCount, N-1)
	}
	// Node 4 (radix 4) has children 5,6,7.
	_, c4 := knomialChildren(4, N, k)
	if len(c4) != 3 || c4[0] != 5 || c4[2] != 7 {
		t.Errorf("children of 4 = %v, want [5 6 7]", c4)
	}
}

func TestPow2Below(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 63: 32, 64: 64, 160: 128}
	for in, want := range cases {
		if got := pow2Below(in); got != want {
			t.Errorf("pow2Below(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestXBRCSlices(t *testing.T) {
	top := topo.Epyc1P()
	w := newWorld(t, top, 8)
	x := NewXBRC(w, XBRCConfig{MinSlice: 64, RegCache: true})
	sl := x.slices(1024, 8)
	// Coverage: slices tile [0,1024) without gaps or overlaps.
	covered := 0
	for i, s := range sl {
		if s[1] < s[0] {
			t.Errorf("slice %d inverted: %v", i, s)
		}
		covered += s[1] - s[0]
	}
	if covered != 1024 {
		t.Errorf("covered %d bytes, want 1024", covered)
	}
	// Tiny message: single reducer.
	sl2 := x.slices(8, 8)
	if sl2[0][1]-sl2[0][0] != 8 {
		t.Errorf("tiny message slice0 = %v", sl2[0])
	}
	for i := 1; i < len(sl2); i++ {
		if sl2[i][1] != sl2[i][0] {
			t.Errorf("tiny message slice %d nonempty", i)
		}
	}
}
