package baselines

import (
	"fmt"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/shm"
)

// SM mimics OpenMPI's sm coll component: flat copy-in-copy-out collectives
// over a shared segment, synchronized with **atomic fetch-add** control
// flags. The paper identifies this atomics-based synchronization as the
// reason sm collapses on dense nodes (Fig. 4 and the ARM-N1 panels of
// Figs. 8 and 11).
type SM struct {
	W   *env.World
	cfg SMConfig

	seg     *mem.Buffer     // staging segment (fan-out), homed at rank 0
	slots   []*mem.Buffer   // per-rank contribution slots (fan-in)
	gate    *shm.AtomicFlag // op entry tickets
	copied  *shm.AtomicFlag // cumulative (round, reader) completions
	arrived *shm.AtomicFlag // cumulative fan-in arrivals
	ready   *shm.AtomicFlag // cumulative staged rounds

	views []smView
}

// smView is one rank's mirror of the cumulative counters (all ranks run
// the same op sequence, so mirrors stay consistent).
type smView struct {
	opSeq  uint64
	rounds uint64 // staged fan-out rounds
	ar     uint64 // fan-in arrivals
}

// SMConfig tunes the component.
type SMConfig struct {
	SegBytes   int // staging segment capacity
	ChunkBytes int // pipelining granule through the segment
}

// DefaultSMConfig mirrors the OpenMPI defaults.
func DefaultSMConfig() SMConfig {
	return SMConfig{SegBytes: 64 << 10, ChunkBytes: 32 << 10}
}

// NewSM builds the component. The shared control flags all live on rank
// 0's core — a single contention point, by design: this is the component
// under study.
func NewSM(w *env.World, cfg SMConfig) *SM {
	if cfg.ChunkBytes > cfg.SegBytes {
		cfg.ChunkBytes = cfg.SegBytes
	}
	home := w.Core(0)
	s := &SM{
		W:       w,
		cfg:     cfg,
		seg:     w.Sys.NewBuffer("sm.seg", home, cfg.SegBytes),
		gate:    shm.NewAtomicFlag(w.Sys, "sm.gate", home),
		copied:  shm.NewAtomicFlag(w.Sys, "sm.copied", home),
		arrived: shm.NewAtomicFlag(w.Sys, "sm.arrived", home),
		ready:   shm.NewAtomicFlag(w.Sys, "sm.ready", home),
		views:   make([]smView, w.N),
	}
	s.slots = make([]*mem.Buffer, w.N)
	for r := 0; r < w.N; r++ {
		s.slots[r] = w.NewBufferAt(fmt.Sprintf("sm.slot.%d", r), r, cfg.SegBytes)
	}
	return s
}

// enter synchronizes op entry: every rank atomically takes a ticket — the
// per-op atomic storm the paper measures in Fig. 4.
func (s *SM) enter(p *env.Proc, v *smView) {
	v.opSeq++
	s.gate.FetchAdd(p.S, p.Core, 1)
	s.gate.WaitGE(p.S, p.Core, v.opSeq*uint64(s.W.N))
}

// Bcast: the root stages chunks into the shared segment; every other rank
// copies them out and atomically bumps the completion counter; the root
// recycles the segment once all readers of a round are done.
func (s *SM) Bcast(p *env.Proc, buf *mem.Buffer, off, n, root int) {
	v := &s.views[p.Rank]
	s.enter(p, v)
	if n == 0 {
		return
	}
	N := uint64(s.W.N)
	readers := N - 1
	chunk := s.cfg.ChunkBytes
	rounds := (n + chunk - 1) / chunk
	for r := 0; r < rounds; r++ {
		o := r * chunk
		sz := min(chunk, n-o)
		round := v.rounds + uint64(r)
		if p.Rank == root {
			// Recycle: all readers of the previous round must be done.
			if round > 0 {
				s.copied.WaitGE(p.S, p.Core, round*readers)
			}
			p.Copy(s.seg, 0, buf, off+o, sz)
			s.ready.FetchAdd(p.S, p.Core, 1)
		} else {
			s.ready.WaitGE(p.S, p.Core, round+1)
			p.Copy(buf, off+o, s.seg, 0, sz)
			s.copied.FetchAdd(p.S, p.Core, 1)
		}
	}
	if p.Rank == root {
		s.copied.WaitGE(p.S, p.Core, (v.rounds+uint64(rounds))*readers)
	}
	v.rounds += uint64(rounds)
}

// Allreduce: every rank stages its contribution into its slot, rank 0
// reduces all slots sequentially, then the result is fanned out through
// the staging segment. All synchronization is atomic fetch-add.
func (s *SM) Allreduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	if n == 0 {
		s.allreduceChunk(p, sbuf, rbuf, 0, 0, dt, op)
		return
	}
	for o := 0; o < n; o += s.cfg.SegBytes {
		sz := min(s.cfg.SegBytes, n-o)
		s.allreduceChunk(p, sbuf, rbuf, o, sz, dt, op)
	}
}

// Barrier: the op-entry ticket gate is already a full barrier — every rank
// atomically takes a ticket and waits for all N of the op's tickets, one
// more instance of the per-op atomic storm of Fig. 4.
func (s *SM) Barrier(p *env.Proc) {
	s.enter(p, &s.views[p.Rank])
}

// Reduce: the fan-in half of Allreduce — every rank stages its contribution
// into its slot, the root reduces all slots sequentially into rbuf. Chunked
// by the slot capacity; the ticket gate of the next chunk keeps a slot from
// being restaged before the root has drained it.
func (s *SM) Reduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, root int) {
	if n == 0 {
		s.reduceChunk(p, sbuf, rbuf, 0, 0, dt, op, root)
		return
	}
	for o := 0; o < n; o += s.cfg.SegBytes {
		sz := min(s.cfg.SegBytes, n-o)
		s.reduceChunk(p, sbuf, rbuf, o, sz, dt, op, root)
	}
}

func (s *SM) reduceChunk(p *env.Proc, sbuf, rbuf *mem.Buffer, off, n int, dt mpi.Datatype, op mpi.Op, root int) {
	v := &s.views[p.Rank]
	s.enter(p, v)
	if n == 0 {
		return
	}
	N := uint64(s.W.N)
	p.Copy(s.slots[p.Rank], 0, sbuf, off, n)
	s.arrived.FetchAdd(p.S, p.Core, 1)
	if p.Rank == root {
		s.arrived.WaitGE(p.S, p.Core, v.ar+N)
		p.Copy(rbuf, off, s.slots[0], 0, n)
		for r := 1; r < s.W.N; r++ {
			p.ChargeRead(s.slots[r], 0, n)
			mpi.ReduceBytes(op, dt, rbuf.Data[off:off+n], s.slots[r].Data[:n])
			p.ChargeCompute(n)
		}
		p.Dirty(rbuf)
	}
	v.ar += N
}

// Allgather: every rank stages its block into its slot; once all arrivals
// are in, every rank copies every slot out — the flat all-to-all read the
// segment slots make possible. Chunked by the slot capacity.
func (s *SM) Allgather(p *env.Proc, in *mem.Buffer, out *mem.Buffer, blockLen int) {
	if blockLen == 0 {
		s.allgatherChunk(p, in, out, 0, 0, blockLen)
		return
	}
	for o := 0; o < blockLen; o += s.cfg.SegBytes {
		sz := min(s.cfg.SegBytes, blockLen-o)
		s.allgatherChunk(p, in, out, o, sz, blockLen)
	}
}

func (s *SM) allgatherChunk(p *env.Proc, in *mem.Buffer, out *mem.Buffer, off, n, blockLen int) {
	v := &s.views[p.Rank]
	s.enter(p, v)
	if n == 0 {
		return
	}
	N := uint64(s.W.N)
	p.Copy(s.slots[p.Rank], 0, in, off, n)
	s.arrived.FetchAdd(p.S, p.Core, 1)
	s.arrived.WaitGE(p.S, p.Core, v.ar+N)
	for r := 0; r < s.W.N; r++ {
		p.Copy(out, r*blockLen+off, s.slots[r], 0, n)
	}
	v.ar += N
}

// Scatter: the root streams the concatenated blocks through the staging
// segment in rounds (as in Bcast); each reader copies out only the
// intersection of the staged window with its own block, but still
// acknowledges every round so the segment can recycle.
func (s *SM) Scatter(p *env.Proc, buf *mem.Buffer, out *mem.Buffer, blockLen, root int) {
	v := &s.views[p.Rank]
	s.enter(p, v)
	if blockLen == 0 {
		return
	}
	n := blockLen * s.W.N
	readers := uint64(s.W.N - 1)
	chunk := s.cfg.ChunkBytes
	rounds := (n + chunk - 1) / chunk
	myLo, myHi := p.Rank*blockLen, (p.Rank+1)*blockLen
	for r := 0; r < rounds; r++ {
		o := r * chunk
		sz := min(chunk, n-o)
		round := v.rounds + uint64(r)
		if p.Rank == root {
			if round > 0 {
				s.copied.WaitGE(p.S, p.Core, round*readers)
			}
			p.Copy(s.seg, 0, buf, o, sz)
			s.ready.FetchAdd(p.S, p.Core, 1)
		} else {
			s.ready.WaitGE(p.S, p.Core, round+1)
			lo, hi := o, o+sz
			if lo < myLo {
				lo = myLo
			}
			if hi > myHi {
				hi = myHi
			}
			if lo < hi {
				p.Copy(out, lo-myLo, s.seg, lo-o, hi-lo)
			}
			s.copied.FetchAdd(p.S, p.Core, 1)
		}
	}
	if p.Rank == root {
		p.Copy(out, 0, buf, myLo, blockLen)
		s.copied.WaitGE(p.S, p.Core, (v.rounds+uint64(rounds))*readers)
	}
	v.rounds += uint64(rounds)
}

func (s *SM) allreduceChunk(p *env.Proc, sbuf, rbuf *mem.Buffer, off, n int, dt mpi.Datatype, op mpi.Op) {
	v := &s.views[p.Rank]
	s.enter(p, v)
	if n == 0 {
		return
	}
	N := uint64(s.W.N)
	// Fan-in.
	p.Copy(s.slots[p.Rank], 0, sbuf, off, n)
	s.arrived.FetchAdd(p.S, p.Core, 1)
	if p.Rank == 0 {
		s.arrived.WaitGE(p.S, p.Core, v.ar+N)
		p.Copy(rbuf, off, s.slots[0], 0, n)
		for r := 1; r < s.W.N; r++ {
			p.ChargeRead(s.slots[r], 0, n)
			mpi.ReduceBytes(op, dt, rbuf.Data[off:off+n], s.slots[r].Data[:n])
			p.ChargeCompute(n)
		}
		p.Dirty(rbuf)
	}
	v.ar += N
	// Fan-out through the segment.
	round := v.rounds
	if p.Rank == 0 {
		p.Copy(s.seg, 0, rbuf, off, n)
		s.ready.FetchAdd(p.S, p.Core, 1)
		s.copied.WaitGE(p.S, p.Core, (round+1)*(N-1))
	} else {
		s.ready.WaitGE(p.S, p.Core, round+1)
		p.Copy(rbuf, off, s.seg, 0, n)
		s.copied.FetchAdd(p.S, p.Core, 1)
	}
	v.rounds++
}
