// Package osu reimplements the microbenchmark methodology of the OSU
// suite (v5.8) as used in the paper: warmup runs plus measured iterations
// reporting mean latency — together with the authors' "_mb" modification
// that alters the transmitted buffer before every iteration so that cache
// effects of repeated identical broadcasts do not flatter cache-unaware
// implementations (paper Section V-A, Fig. 7).
package osu

import (
	"fmt"

	"xhc/internal/baselines"
	"xhc/internal/coll"
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/obs"
	"xhc/internal/sim"
	"xhc/internal/stats"
	"xhc/internal/topo"
)

// Bench describes one microbenchmark configuration.
type Bench struct {
	// Topo and Policy/NRanks place the job (defaults: map-core, all cores).
	Topo   *topo.Topology
	Policy topo.MapPolicy
	NRanks int

	// Component is a coll registry name; Custom (if set) overrides it.
	Component string
	Custom    coll.Builder

	// Warmup and Iters control the measurement loop.
	Warmup, Iters int

	// Dirty enables the paper's _mb variant: the source buffers are
	// rewritten before every iteration.
	Dirty bool

	// Root is the broadcast root.
	Root int

	// Params overrides the memory model (nil: platform defaults).
	Params *mem.Params
}

// Result is one row of an OSU-style report.
type Result struct {
	Size   int
	AvgLat float64 // microseconds, mean over ranks and iterations
	MinLat float64
	MaxLat float64
}

// String renders the row like osu_bcast output.
func (r Result) String() string {
	return fmt.Sprintf("%8s %12.2f %12.2f %12.2f",
		stats.SizeLabel(r.Size), r.AvgLat, r.MinLat, r.MaxLat)
}

// DefaultSizes is the paper's 4 B – 4 MiB sweep.
func DefaultSizes() []int {
	var out []int
	for n := 4; n <= 4<<20; n *= 4 {
		out = append(out, n)
	}
	return out
}

// label names the measured component for histogram keys.
func (b Bench) label() string {
	if b.Component != "" {
		return b.Component
	}
	return "custom"
}

func (b Bench) defaults() Bench {
	if b.Policy == "" {
		b.Policy = topo.MapCore
	}
	if b.NRanks == 0 {
		b.NRanks = b.Topo.NCores
	}
	if b.Warmup == 0 {
		b.Warmup = 4
	}
	if b.Iters == 0 {
		b.Iters = 10
	}
	return b
}

// world builds a fresh world (and component) for one measurement.
func (b Bench) world() (*env.World, coll.Component, error) {
	m, err := b.Topo.Map(b.Policy, b.NRanks)
	if err != nil {
		return nil, nil, err
	}
	var w *env.World
	if b.Params != nil {
		w = env.NewWorldParams(b.Topo, m, *b.Params)
	} else {
		w = env.NewWorld(b.Topo, m)
	}
	builder := b.Custom
	if builder == nil {
		c, err := coll.New(b.Component, w)
		return w, c, err
	}
	c, err := builder(w)
	return w, c, err
}

// normalizeAllreduceSizes maps a requested size sweep to the sizes an
// allreduce actually measures: sizes >= 8 are rounded down to a multiple of
// 8 (whole float64 elements), smaller sizes are kept as byte reductions,
// and duplicates produced by the rounding are dropped (first occurrence
// wins, order preserved). Normalizing up front keeps the report's rows in
// one-to-one correspondence with the measurements — the previous in-loop
// `n -= n % 8` mutated the loop variable, so e.g. sizes 12 and 9 both
// measured n=8 and produced duplicate, mislabeled rows.
func normalizeAllreduceSizes(sizes []int) []int {
	out := make([]int, 0, len(sizes))
	seen := make(map[int]bool, len(sizes))
	for _, n := range sizes {
		if n >= 8 {
			n -= n % 8
		}
		if n < 0 || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// errNoSamples reports a measurement loop that produced zero measured
// samples (e.g. Iters <= 0 after defaults): stats.Mean/Min/Max would
// silently render such a row as 0.00 latency.
func errNoSamples(what string, n, warmup, iters int) error {
	return fmt.Errorf("osu %s n=%d: no measured samples (warmup=%d iters=%d)", what, n, warmup, iters)
}

// Bcast measures broadcast latency for each size (osu_bcast / osu_bcast_mb).
func (b Bench) Bcast(sizes []int) ([]Result, error) {
	b = b.defaults()
	var out []Result
	for _, n := range sizes {
		w, c, err := b.world()
		if err != nil {
			return nil, err
		}
		bufs := make([]*mem.Buffer, b.NRanks)
		for r := range bufs {
			bufs[r] = w.NewBufferAt(fmt.Sprintf("osu.b%d", r), r, n)
		}
		var lats []float64
		if err := w.Run(func(p *env.Proc) {
			for it := 0; it < b.Warmup+b.Iters; it++ {
				if b.Dirty && p.Rank == b.Root {
					p.Dirty(bufs[p.Rank])
				}
				p.HarnessBarrier()
				t0 := p.Now()
				c.Bcast(p, bufs[p.Rank], 0, n, b.Root)
				d := p.Now() - t0
				if w.Obs != nil {
					w.Obs.Rec.ObserveOp(p.Rank, uint64(it), obs.OpBcast, b.label(), n, int64(t0), int64(t0+d))
				}
				if it >= b.Warmup {
					lats = append(lats, sim.Micros(d))
				}
				p.HarnessBarrier()
			}
		}); err != nil {
			return nil, fmt.Errorf("osu bcast %s n=%d: %w", b.Component, n, err)
		}
		if len(lats) == 0 {
			return nil, errNoSamples("bcast "+b.Component, n, b.Warmup, b.Iters)
		}
		out = append(out, Result{Size: n, AvgLat: stats.Mean(lats), MinLat: stats.Min(lats), MaxLat: stats.Max(lats)})
	}
	return out, nil
}

// Allreduce measures allreduce latency per size (osu_allreduce[_mb]).
// Sizes are normalized to whole-element multiples up front (see
// normalizeAllreduceSizes); the returned rows carry the measured sizes.
func (b Bench) Allreduce(sizes []int) ([]Result, error) {
	b = b.defaults()
	var out []Result
	for _, n := range normalizeAllreduceSizes(sizes) {
		dt := mpi.Float64
		if n < 8 {
			dt = mpi.Byte
		}
		w, c, err := b.world()
		if err != nil {
			return nil, err
		}
		sb := make([]*mem.Buffer, b.NRanks)
		rb := make([]*mem.Buffer, b.NRanks)
		for r := range sb {
			sb[r] = w.NewBufferAt(fmt.Sprintf("osu.s%d", r), r, n)
			rb[r] = w.NewBufferAt(fmt.Sprintf("osu.r%d", r), r, n)
		}
		var lats []float64
		if err := w.Run(func(p *env.Proc) {
			for it := 0; it < b.Warmup+b.Iters; it++ {
				if b.Dirty {
					p.Dirty(sb[p.Rank])
				}
				p.HarnessBarrier()
				t0 := p.Now()
				c.Allreduce(p, sb[p.Rank], rb[p.Rank], n, dt, mpi.Sum)
				d := p.Now() - t0
				if w.Obs != nil {
					w.Obs.Rec.ObserveOp(p.Rank, uint64(it), obs.OpAllreduce, b.label(), n, int64(t0), int64(t0+d))
				}
				if it >= b.Warmup {
					lats = append(lats, sim.Micros(d))
				}
				p.HarnessBarrier()
			}
		}); err != nil {
			return nil, fmt.Errorf("osu allreduce %s n=%d: %w", b.Component, n, err)
		}
		if len(lats) == 0 {
			return nil, errNoSamples("allreduce "+b.Component, n, b.Warmup, b.Iters)
		}
		out = append(out, Result{Size: n, AvgLat: stats.Mean(lats), MinLat: stats.Min(lats), MaxLat: stats.Max(lats)})
	}
	return out, nil
}

// capability resolves the optional collective interface a bench needs from
// the built component (the registry's Component surface only mandates
// Bcast/Allreduce; the newer collectives are capabilities, as in OpenMPI's
// coll framework).
func capability[T any](c coll.Component, name, comp string) (T, error) {
	v, ok := c.(T)
	if !ok {
		return v, fmt.Errorf("osu %s: component %q does not implement %s", name, comp, name)
	}
	return v, nil
}

// Barrier measures barrier latency (osu_barrier): a single zero-byte row.
func (b Bench) Barrier() ([]Result, error) {
	b = b.defaults()
	w, c, err := b.world()
	if err != nil {
		return nil, err
	}
	bar, err := capability[baselines.Barrierer](c, "barrier", b.label())
	if err != nil {
		return nil, err
	}
	var lats []float64
	if err := w.Run(func(p *env.Proc) {
		for it := 0; it < b.Warmup+b.Iters; it++ {
			p.HarnessBarrier()
			t0 := p.Now()
			bar.Barrier(p)
			d := p.Now() - t0
			if w.Obs != nil {
				w.Obs.Rec.ObserveOp(p.Rank, uint64(it), obs.OpBarrier, b.label(), 0, int64(t0), int64(t0+d))
			}
			if it >= b.Warmup {
				lats = append(lats, sim.Micros(d))
			}
			p.HarnessBarrier()
		}
	}); err != nil {
		return nil, fmt.Errorf("osu barrier %s: %w", b.Component, err)
	}
	if len(lats) == 0 {
		return nil, errNoSamples("barrier "+b.Component, 0, b.Warmup, b.Iters)
	}
	return []Result{{Size: 0, AvgLat: stats.Mean(lats), MinLat: stats.Min(lats), MaxLat: stats.Max(lats)}}, nil
}

// Reduce measures rooted-reduce latency per size (osu_reduce[_mb]). Sizes
// are element-normalized exactly like Allreduce's.
func (b Bench) Reduce(sizes []int) ([]Result, error) {
	b = b.defaults()
	var out []Result
	for _, n := range normalizeAllreduceSizes(sizes) {
		dt := mpi.Float64
		if n < 8 {
			dt = mpi.Byte
		}
		w, c, err := b.world()
		if err != nil {
			return nil, err
		}
		red, err := capability[baselines.Reducer](c, "reduce", b.label())
		if err != nil {
			return nil, err
		}
		sb := make([]*mem.Buffer, b.NRanks)
		rb := make([]*mem.Buffer, b.NRanks)
		for r := range sb {
			sb[r] = w.NewBufferAt(fmt.Sprintf("osu.s%d", r), r, n)
			rb[r] = w.NewBufferAt(fmt.Sprintf("osu.r%d", r), r, n)
		}
		var lats []float64
		if err := w.Run(func(p *env.Proc) {
			for it := 0; it < b.Warmup+b.Iters; it++ {
				if b.Dirty {
					p.Dirty(sb[p.Rank])
				}
				p.HarnessBarrier()
				t0 := p.Now()
				red.Reduce(p, sb[p.Rank], rb[p.Rank], n, dt, mpi.Sum, b.Root)
				d := p.Now() - t0
				if w.Obs != nil {
					w.Obs.Rec.ObserveOp(p.Rank, uint64(it), obs.OpReduce, b.label(), n, int64(t0), int64(t0+d))
				}
				if it >= b.Warmup {
					lats = append(lats, sim.Micros(d))
				}
				p.HarnessBarrier()
			}
		}); err != nil {
			return nil, fmt.Errorf("osu reduce %s n=%d: %w", b.Component, n, err)
		}
		if len(lats) == 0 {
			return nil, errNoSamples("reduce "+b.Component, n, b.Warmup, b.Iters)
		}
		out = append(out, Result{Size: n, AvgLat: stats.Mean(lats), MinLat: stats.Min(lats), MaxLat: stats.Max(lats)})
	}
	return out, nil
}

// Allgather measures allgather latency per per-rank block size
// (osu_allgather[_mb]); each rank contributes Size bytes and receives
// Size*NRanks.
func (b Bench) Allgather(sizes []int) ([]Result, error) {
	b = b.defaults()
	var out []Result
	for _, n := range sizes {
		w, c, err := b.world()
		if err != nil {
			return nil, err
		}
		ag, err := capability[baselines.Allgatherer](c, "allgather", b.label())
		if err != nil {
			return nil, err
		}
		in := make([]*mem.Buffer, b.NRanks)
		ob := make([]*mem.Buffer, b.NRanks)
		for r := range in {
			in[r] = w.NewBufferAt(fmt.Sprintf("osu.i%d", r), r, n)
			ob[r] = w.NewBufferAt(fmt.Sprintf("osu.o%d", r), r, n*b.NRanks)
		}
		var lats []float64
		if err := w.Run(func(p *env.Proc) {
			for it := 0; it < b.Warmup+b.Iters; it++ {
				if b.Dirty {
					p.Dirty(in[p.Rank])
				}
				p.HarnessBarrier()
				t0 := p.Now()
				ag.Allgather(p, in[p.Rank], ob[p.Rank], n)
				d := p.Now() - t0
				if w.Obs != nil {
					w.Obs.Rec.ObserveOp(p.Rank, uint64(it), obs.OpAllgather, b.label(), n, int64(t0), int64(t0+d))
				}
				if it >= b.Warmup {
					lats = append(lats, sim.Micros(d))
				}
				p.HarnessBarrier()
			}
		}); err != nil {
			return nil, fmt.Errorf("osu allgather %s n=%d: %w", b.Component, n, err)
		}
		if len(lats) == 0 {
			return nil, errNoSamples("allgather "+b.Component, n, b.Warmup, b.Iters)
		}
		out = append(out, Result{Size: n, AvgLat: stats.Mean(lats), MinLat: stats.Min(lats), MaxLat: stats.Max(lats)})
	}
	return out, nil
}

// Scatter measures scatter latency per per-rank block size
// (osu_scatter[_mb]); the root sends Size*NRanks, each rank receives Size.
func (b Bench) Scatter(sizes []int) ([]Result, error) {
	b = b.defaults()
	var out []Result
	for _, n := range sizes {
		w, c, err := b.world()
		if err != nil {
			return nil, err
		}
		sc, err := capability[baselines.Scatterer](c, "scatter", b.label())
		if err != nil {
			return nil, err
		}
		root := w.NewBufferAt("osu.root", b.Root, n*b.NRanks)
		ob := make([]*mem.Buffer, b.NRanks)
		for r := range ob {
			ob[r] = w.NewBufferAt(fmt.Sprintf("osu.o%d", r), r, n)
		}
		var lats []float64
		if err := w.Run(func(p *env.Proc) {
			for it := 0; it < b.Warmup+b.Iters; it++ {
				if b.Dirty && p.Rank == b.Root {
					p.Dirty(root)
				}
				p.HarnessBarrier()
				t0 := p.Now()
				sc.Scatter(p, root, ob[p.Rank], n, b.Root)
				d := p.Now() - t0
				if w.Obs != nil {
					w.Obs.Rec.ObserveOp(p.Rank, uint64(it), obs.OpScatter, b.label(), n, int64(t0), int64(t0+d))
				}
				if it >= b.Warmup {
					lats = append(lats, sim.Micros(d))
				}
				p.HarnessBarrier()
			}
		}); err != nil {
			return nil, fmt.Errorf("osu scatter %s n=%d: %w", b.Component, n, err)
		}
		if len(lats) == 0 {
			return nil, errNoSamples("scatter "+b.Component, n, b.Warmup, b.Iters)
		}
		out = append(out, Result{Size: n, AvgLat: stats.Mean(lats), MinLat: stats.Min(lats), MaxLat: stats.Max(lats)})
	}
	return out, nil
}

// Latency measures one-way point-to-point latency between two specific
// ranks (osu_latency: half the ping-pong round trip), with the transport
// configured by cfg.
func Latency(top *topo.Topology, coreA, coreB int, cfg mpi.Config, sizes []int, warmup, iters int, params *mem.Params) ([]Result, error) {
	if warmup == 0 {
		warmup = 4
	}
	if iters == 0 {
		iters = 10
	}
	var out []Result
	for _, n := range sizes {
		m := topo.Mapping{coreA, coreB}
		if err := m.Validate(top); err != nil {
			return nil, err
		}
		var w *env.World
		if params != nil {
			w = env.NewWorldParams(top, m, *params)
		} else {
			w = env.NewWorld(top, m)
		}
		p2p := mpi.NewP2P(w, cfg)
		b0 := w.NewBufferAt("lat.b0", 0, n)
		b1 := w.NewBufferAt("lat.b1", 1, n)
		var rtts []float64
		if err := w.Run(func(p *env.Proc) {
			for it := 0; it < warmup+iters; it++ {
				if p.Rank == 0 {
					p.Dirty(b0)
					t0 := p.Now()
					p2p.Send(p, 1, it, b0, 0, n)
					p2p.Recv(p, 1, it, b0, 0, n)
					if w.Obs != nil {
						w.Obs.Rec.ObserveOp(p.Rank, uint64(it), obs.OpP2P, "p2p", n, int64(t0), int64(p.Now()))
					}
					if it >= warmup {
						rtts = append(rtts, sim.Micros(p.Now()-t0)/2)
					}
				} else {
					p2p.Recv(p, 0, it, b1, 0, n)
					p.Dirty(b1)
					p2p.Send(p, 0, it, b1, 0, n)
				}
			}
		}); err != nil {
			return nil, fmt.Errorf("osu latency n=%d: %w", n, err)
		}
		if len(rtts) == 0 {
			return nil, errNoSamples("latency", n, warmup, iters)
		}
		out = append(out, Result{Size: n, AvgLat: stats.Mean(rtts), MinLat: stats.Min(rtts), MaxLat: stats.Max(rtts)})
	}
	return out, nil
}

// Report renders results as an OSU-style table.
func Report(title string, rs []Result) string {
	t := &stats.Table{Header: []string{"Size", "Avg(us)", "Min(us)", "Max(us)"}}
	for _, r := range rs {
		t.Add(stats.SizeLabel(r.Size),
			fmt.Sprintf("%.2f", r.AvgLat),
			fmt.Sprintf("%.2f", r.MinLat),
			fmt.Sprintf("%.2f", r.MaxLat))
	}
	return "# " + title + "\n" + t.String()
}
