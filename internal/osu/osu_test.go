package osu

import (
	"strings"
	"testing"

	"xhc/internal/mpi"
	"xhc/internal/topo"
)

func TestBcastBenchRuns(t *testing.T) {
	b := Bench{Topo: topo.Epyc1P(), NRanks: 32, Component: "xhc-tree", Warmup: 2, Iters: 3, Dirty: true}
	rs, err := b.Bcast([]int{4, 4096, 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.AvgLat <= 0 || r.MinLat > r.AvgLat || r.AvgLat > r.MaxLat {
			t.Errorf("inconsistent result %+v", r)
		}
	}
	if rs[2].AvgLat <= rs[0].AvgLat {
		t.Errorf("64K (%v us) should cost more than 4B (%v us)", rs[2].AvgLat, rs[0].AvgLat)
	}
}

func TestAllreduceBenchRuns(t *testing.T) {
	b := Bench{Topo: topo.Epyc1P(), NRanks: 32, Component: "xhc-tree", Warmup: 1, Iters: 2, Dirty: true}
	rs, err := b.Allreduce([]int{8, 8192})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].AvgLat <= 0 {
		t.Fatalf("results: %+v", rs)
	}
}

func TestDirtyMattersForFlatBcast(t *testing.T) {
	// The Fig. 7 effect: without dirtying, the flat tree's medium-size
	// latency is flattered by cache hits.
	base := Bench{Topo: topo.Epyc2P(), NRanks: 64, Component: "xhc-flat", Warmup: 3, Iters: 5}
	sizes := []int{64 << 10}
	clean, err := base.Bcast(sizes)
	if err != nil {
		t.Fatal(err)
	}
	dirty := base
	dirty.Dirty = true
	dirtied, err := dirty.Bcast(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if dirtied[0].AvgLat <= clean[0].AvgLat {
		t.Errorf("dirty (%v) should be slower than cached (%v)", dirtied[0].AvgLat, clean[0].AvgLat)
	}
}

func TestLatencyPairs(t *testing.T) {
	top := topo.Epyc2P()
	cfg := mpi.DefaultConfig()
	near, err := Latency(top, 0, 1, cfg, []int{4096}, 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	far, err := Latency(top, 0, 32, cfg, []int{4096}, 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if far[0].AvgLat <= near[0].AvgLat {
		t.Errorf("cross-socket latency (%v) should exceed cache-local (%v)", far[0].AvgLat, near[0].AvgLat)
	}
}

func TestUnknownComponent(t *testing.T) {
	b := Bench{Topo: topo.Epyc1P(), NRanks: 8, Component: "bogus"}
	if _, err := b.Bcast([]int{4}); err == nil {
		t.Error("unknown component accepted")
	}
}

func TestReportFormat(t *testing.T) {
	s := Report("osu_bcast", []Result{{Size: 4, AvgLat: 1.5, MinLat: 1.2, MaxLat: 1.9}})
	for _, want := range []string{"osu_bcast", "Size", "1.50"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestDefaultSizes(t *testing.T) {
	sizes := DefaultSizes()
	if sizes[0] != 4 || sizes[len(sizes)-1] != 4<<20 {
		t.Errorf("DefaultSizes = %v", sizes)
	}
}

func TestNormalizeAllreduceSizes(t *testing.T) {
	// 9, 12, 15 all round down to 8; the explicit 8 is a duplicate too.
	// Sub-element sizes (4, 0) stay byte reductions; negatives are dropped.
	got := normalizeAllreduceSizes([]int{4, 9, 12, 8, 15, 1024, -3, 0, 1027})
	want := []int{4, 8, 1024, 0}
	if len(got) != len(want) {
		t.Fatalf("normalize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalize = %v, want %v", got, want)
		}
	}
	if out := normalizeAllreduceSizes(nil); len(out) != 0 {
		t.Errorf("normalize(nil) = %v", out)
	}
}

func TestAllreduceNormalizesAndDedupesRows(t *testing.T) {
	// Before the fix the in-loop `n -= n % 8` mutated the loop variable:
	// sizes 12 and 9 each measured n=8 but reported their requested size,
	// yielding duplicate mislabeled rows.
	b := Bench{Topo: topo.Epyc1P(), NRanks: 8, Component: "xhc-tree", Warmup: 1, Iters: 2}
	rs, err := b.Allreduce([]int{12, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Size != 8 {
		t.Fatalf("rows = %+v, want a single size-8 row", rs)
	}
}

func TestNoSamplesIsAnError(t *testing.T) {
	// Iters < 0 survives defaults() (only 0 is replaced), so the measure
	// loop runs warmup-only and records nothing; stats.Mean would silently
	// report 0.00 us. All three measurement loops must refuse instead.
	b := Bench{Topo: topo.Epyc1P(), NRanks: 8, Component: "xhc-tree", Warmup: 4, Iters: -1}
	if _, err := b.Bcast([]int{64}); err == nil || !strings.Contains(err.Error(), "no measured samples") {
		t.Errorf("bcast with no samples: err = %v", err)
	}
	if _, err := b.Allreduce([]int{64}); err == nil || !strings.Contains(err.Error(), "no measured samples") {
		t.Errorf("allreduce with no samples: err = %v", err)
	}
	if _, err := Latency(topo.Epyc1P(), 0, 1, mpi.DefaultConfig(), []int{64}, 4, -1, nil); err == nil ||
		!strings.Contains(err.Error(), "no measured samples") {
		t.Errorf("latency with no samples: err = %v", err)
	}
}
