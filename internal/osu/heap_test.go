package osu

import (
	"fmt"
	"testing"

	"xhc/internal/coll"
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/topo"
)

// TestEventHeapStaysBounded is a regression test for the stale-event leak:
// the flow scheduler used to push one completion event per active flow on
// every reschedule, leaving the superseded ones to rot in the event heap
// until their timestamps passed. During a chunked 160-rank broadcast that
// made the heap grow with flows x reschedules instead of staying
// proportional to the live population (one step event per process, one
// wake per suspended flow, one completion event per reschedule whose armed
// time has not yet passed).
//
// The bound below is deliberately generous — about 4 entries per process —
// but the leaking scheduler blows far past it (thousands of stale events
// at 160 ranks), so a reintroduction fails loudly.
func TestEventHeapStaysBounded(t *testing.T) {
	top := topo.ArmN1()
	nranks := top.NCores // 160
	m, err := top.Map(topo.MapCore, nranks)
	if err != nil {
		t.Fatal(err)
	}
	w := env.NewWorld(top, m)
	c, err := coll.New("xhc-tree", w)
	if err != nil {
		t.Fatal(err)
	}
	const n = 256 << 10 // large enough to be chunked and pipelined
	bufs := make([]*mem.Buffer, nranks)
	for r := range bufs {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("hp%d", r), r, n)
	}
	if err := w.Run(func(p *env.Proc) {
		for it := 0; it < 3; it++ {
			if p.Rank == 0 {
				p.Dirty(bufs[p.Rank])
			}
			p.HarnessBarrier()
			c.Bcast(p, bufs[p.Rank], 0, n, 0)
			p.HarnessBarrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := w.Sys.Eng.Stats()
	limit := 4 * nranks
	if st.MaxHeapLen > limit {
		t.Fatalf("event heap high-water mark %d exceeds %d (4x%d ranks): stale completion events are leaking",
			st.MaxHeapLen, limit, nranks)
	}
	if st.MaxHeapLen == 0 || st.EventsScheduled == 0 {
		t.Fatalf("engine stats not populated: %+v", st)
	}
	t.Logf("MaxHeapLen=%d scheduled=%d run=%d", st.MaxHeapLen, st.EventsScheduled, st.EventsRun)
}
