package osu

import (
	"testing"

	"xhc/internal/topo"
)

// TestBenchDeterminism: the whole stack (engine, memory model, XHC) is
// deterministic — identical benchmark configurations produce bit-identical
// latencies.
func TestBenchDeterminism(t *testing.T) {
	run := func() []Result {
		b := Bench{Topo: topo.Epyc1P(), NRanks: 32, Component: "xhc-tree",
			Warmup: 2, Iters: 4, Dirty: true}
		rs, err := b.Bcast([]int{4, 16 << 10, 256 << 10})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("size %d: %+v != %+v", a[i].Size, a[i], b[i])
		}
	}
}

// TestAllreduceDeterminism covers the leader progress loop (polling) too.
func TestAllreduceDeterminism(t *testing.T) {
	run := func() []Result {
		b := Bench{Topo: topo.Epyc1P(), NRanks: 32, Component: "xhc-tree",
			Warmup: 1, Iters: 3, Dirty: true}
		rs, err := b.Allreduce([]int{64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(), run()
	if a[0] != b[0] {
		t.Errorf("%+v != %+v", a[0], b[0])
	}
}
