// Package stats provides the small statistical and report-formatting
// helpers the benchmark harness uses.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest value (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the middle value (mean of the two middles for even n).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Stddev returns the sample standard deviation (0 for n < 2).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Speedup returns base/new (how many times faster new is than base).
func Speedup(base, new float64) float64 {
	if new == 0 {
		return 0
	}
	return base / new
}

// SizeLabel renders a byte size the way the paper's x-axes do.
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Table renders rows of columns with right-aligned numeric formatting.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
