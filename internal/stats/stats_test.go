package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Errorf("odd Median = %v", Median([]float64{5, 1, 3}))
	}
	sd := Stddev(xs)
	if math.Abs(sd-1.2909944487) > 1e-9 {
		t.Errorf("Stddev = %v", sd)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	if Stddev([]float64{1}) != 0 {
		t.Error("single-element stddev should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 5) != 2 {
		t.Errorf("Speedup(10,5) = %v", Speedup(10, 5))
	}
	if Speedup(10, 0) != 0 {
		t.Errorf("Speedup(10,0) = %v", Speedup(10, 0))
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{4: "4", 1024: "1K", 4096: "4K", 1 << 20: "1M", 4 << 20: "4M", 1500: "1500"}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestMinMaxBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Map inputs into a bounded range: the invariant is about ordinary
		// measurements, not float-overflow edge cases.
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = math.Mod(x, 1e6)
		}
		mn, mx, mean := Min(xs), Max(xs), Mean(xs)
		return mn <= mean && mean <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"Size", "Lat"}}
	tb.Add("4", "1.25")
	tb.Add("1M", "310.00")
	s := tb.String()
	if !strings.Contains(s, "Size") || !strings.Contains(s, "310.00") {
		t.Errorf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}
