package exper

import (
	"fmt"
	"strings"

	"xhc/internal/coll"
	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/osu"
	"xhc/internal/stats"
	"xhc/internal/topo"
	"xhc/internal/trace"
)

func init() {
	register("fig7", "osu_bcast vs osu_bcast_mb: cache effects (Epyc-2P)", runFig7)
	register("fig8", "MPI Broadcast comparison across components and platforms", runFig8)
	register("fig9a", "Broadcast under different rank-to-core layouts (Epyc-2P)", runFig9a)
	register("fig9b", "Broadcast with different root ranks (Epyc-2P)", runFig9b)
	register("tab2", "Number and distance of exchanged messages (Epyc-2P)", runTab2)
	register("fig10", "Flag cache-line placement schemes (Epyc-1P)", runFig10)
	register("fig11", "MPI Allreduce comparison across components and platforms", runFig11)
}

// sweep runs one collective benchmark for several components and renders
// a size-by-component latency table. Each (component, size) pair is an
// independent simulation — the benchmark builds a fresh world per size —
// so the cells run concurrently under Options.Parallel and the results
// are reassembled in loop order.
func sweep(o Options, top *topo.Topology, nranks int, comps []string,
	kind string, sizes []int, pol topo.MapPolicy, root int) (string, map[string]map[int]float64, error) {
	warm, it := iters(o)
	cells := make([]osu.Result, len(comps)*len(sizes))
	err := runCells(o, len(cells), func(i int) error {
		name, size := comps[i/len(sizes)], sizes[i%len(sizes)]
		b := osu.Bench{Topo: top, NRanks: nranks, Component: name, Policy: pol,
			Warmup: warm, Iters: it, Dirty: true, Root: root}
		var rs []osu.Result
		var err error
		switch kind {
		case "bcast":
			rs, err = b.Bcast([]int{size})
		case "allreduce":
			rs, err = b.Allreduce([]int{size})
		case "reduce":
			rs, err = b.Reduce([]int{size})
		case "allgather":
			rs, err = b.Allgather([]int{size})
		case "scatter":
			rs, err = b.Scatter([]int{size})
		default:
			return fmt.Errorf("unknown kind %q", kind)
		}
		if err != nil {
			return fmt.Errorf("%s on %s: %w", name, top.Name, err)
		}
		cells[i] = rs[0]
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	lat := map[string]map[int]float64{}
	for ci, name := range comps {
		lat[name] = map[int]float64{}
		for si := range sizes {
			x := cells[ci*len(sizes)+si]
			lat[name][x.Size] = x.AvgLat
		}
	}
	t := &stats.Table{Header: append([]string{"size"}, comps...)}
	for _, n := range sizes {
		row := []string{stats.SizeLabel(n)}
		for _, c := range comps {
			row = append(row, fmt.Sprintf("%.2f", lat[c][n]))
		}
		t.Add(row...)
	}
	return t.String(), lat, nil
}

// runFig7 contrasts the stock osu_bcast (same buffer every iteration) with
// the authors' _mb variant, for XHC-flat and XHC-tree on Epyc-2P.
func runFig7(o Options) (*Report, error) {
	top := topo.Epyc2P()
	warm, it := iters(o)
	sizes := sweepSizes(o)
	r := &Report{ID: "fig7", Title: "osu_bcast vs osu_bcast_mb (Epyc-2P)"}
	variants := []struct {
		key   string
		comp  string
		dirty bool
	}{
		{"xhc-flat", "xhc-flat", false},
		{"xhc-flat+mb", "xhc-flat", true},
		{"xhc-tree", "xhc-tree", false},
		{"xhc-tree+mb", "xhc-tree", true},
	}
	cells := make([]osu.Result, len(variants)*len(sizes))
	err := runCells(o, len(cells), func(i int) error {
		v, size := variants[i/len(sizes)], sizes[i%len(sizes)]
		b := osu.Bench{Topo: top, NRanks: 64, Component: v.comp, Warmup: warm, Iters: it, Dirty: v.dirty}
		rs, err := b.Bcast([]int{size})
		if err != nil {
			return err
		}
		cells[i] = rs[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	lat := map[string]map[int]float64{}
	for vi, v := range variants {
		lat[v.key] = map[int]float64{}
		for si := range sizes {
			x := cells[vi*len(sizes)+si]
			lat[v.key][x.Size] = x.AvgLat
		}
	}
	cols := []string{"xhc-flat", "xhc-flat+mb", "xhc-tree", "xhc-tree+mb"}
	t := &stats.Table{Header: append([]string{"size"}, cols...)}
	for _, n := range sizes {
		row := []string{stats.SizeLabel(n)}
		for _, c := range cols {
			row = append(row, fmt.Sprintf("%.2f", lat[c][n]))
		}
		t.Add(row...)
	}
	r.Text = t.String()
	// At a medium size, the stock benchmark flatters the flat tree...
	mid := 64 << 10
	r.Metric("flat_mb_over_stock_64K", lat["xhc-flat+mb"][mid]/lat["xhc-flat"][mid])
	// ... and the hierarchical tree barely changes.
	r.Metric("tree_mb_over_stock_64K", lat["xhc-tree+mb"][mid]/lat["xhc-tree"][mid])
	// With the honest benchmark, the tree wins at medium/large sizes.
	r.Metric("flat_over_tree_mb_64K", lat["xhc-flat+mb"][mid]/lat["xhc-tree+mb"][mid])
	return r, nil
}

// figComponents returns the component list of Figs. 8/11 per platform
// (smhc uses its flat variant on the single-socket machine, as the paper
// notes; xbrc is included only in the Allreduce comparison).
func figComponents(top *topo.Topology, allreduce bool) []string {
	smhc := "smhc-tree"
	if top.NSockets == 1 {
		smhc = "smhc-flat"
	}
	comps := []string{"xhc-tree", "xhc-flat", smhc, "tuned", "ucc", "sm"}
	if allreduce {
		comps = append(comps, "xbrc")
	}
	return comps
}

func runFig8(o Options) (*Report, error) {
	r := &Report{ID: "fig8", Title: "MPI Broadcast comparison"}
	var b strings.Builder
	sizes := sweepSizes(o)
	for _, top := range topo.Platforms() {
		comps := figComponents(top, false)
		text, lat, err := sweep(o, top, top.NCores, comps, "bcast", sizes, topo.MapCore, 0)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s (%d ranks), latency us:\n%s\n", top.Name, top.NCores, text)
		big := 1 << 20
		r.Metric(top.Name+"_tree_speedup_vs_tuned_1M", lat["tuned"][big]/lat["xhc-tree"][big])
		r.Metric(top.Name+"_tree_speedup_vs_ucc_1M", lat["ucc"][big]/lat["xhc-tree"][big])
		smhc := "smhc-tree"
		if top.NSockets == 1 {
			smhc = "smhc-flat"
		}
		r.Metric(top.Name+"_tree_speedup_vs_smhc_1M", lat[smhc][big]/lat["xhc-tree"][big])
		r.Metric(top.Name+"_tree_speedup_vs_flat_1M", lat["xhc-flat"][big]/lat["xhc-tree"][big])
		r.Metric(top.Name+"_flat_over_tree_4B", lat["xhc-flat"][4]/lat["xhc-tree"][4])
	}
	r.Text = b.String()
	return r, nil
}

func runFig9a(o Options) (*Report, error) {
	top := topo.Epyc2P()
	sizes := sweepSizes(o)
	r := &Report{ID: "fig9a", Title: "Rank-to-core layouts: map-core vs map-numa"}
	var b strings.Builder
	lat := map[string]map[int]float64{}
	for _, pol := range []topo.MapPolicy{topo.MapCore, topo.MapNUMA} {
		text, l, err := sweep(o, top, 64, []string{"tuned", "xhc-tree"}, "bcast", sizes, pol, 0)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s:\n%s\n", pol, text)
		for k, v := range l {
			lat[string(pol)+"/"+k] = v
		}
	}
	// The layout claim is about the mismatch between the schedule and the
	// topology; the pipeline regime (1M, stride-1 chain) exposes it most
	// directly, exactly as in the paper's Fig. 9a.
	big := 1 << 20
	r.Metric("tuned_mapnuma_over_mapcore_1M", lat["map-numa/tuned"][big]/lat["map-core/tuned"][big])
	r.Metric("xhc_mapnuma_over_mapcore_1M", lat["map-numa/xhc-tree"][big]/lat["map-core/xhc-tree"][big])
	r.Text = b.String()
	return r, nil
}

func runFig9b(o Options) (*Report, error) {
	top := topo.Epyc2P()
	sizes := sweepSizes(o)
	r := &Report{ID: "fig9b", Title: "Broadcast with root 0 vs root 10"}
	var b strings.Builder
	lat := map[string]map[int]float64{}
	for _, root := range []int{0, 10} {
		text, l, err := sweep(o, top, 64, []string{"tuned", "xhc-tree"}, "bcast", sizes, topo.MapCore, root)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "root=%d:\n%s\n", root, text)
		for k, v := range l {
			lat[fmt.Sprintf("root%d/%s", root, k)] = v
		}
	}
	mid := 64 << 10
	r.Metric("tuned_root10_over_root0_64K", lat["root10/tuned"][mid]/lat["root0/tuned"][mid])
	r.Metric("xhc_root10_over_root0_64K", lat["root10/xhc-tree"][mid]/lat["root0/xhc-tree"][mid])
	r.Text = b.String()
	return r, nil
}

// runTab2 counts messages by topological distance for one 8 KiB broadcast
// under the scenarios of Fig. 9, for both tuned and XHC-tree. The paper's
// claim is that tuned's distance profile swings with mapping and root
// while XHC-tree's stays identical ("any" scenario).
func runTab2(o Options) (*Report, error) {
	top := topo.Epyc2P()
	const n = 8 << 10

	type scenario struct {
		label  string
		policy topo.MapPolicy
		root   int
	}
	scenarios := []scenario{
		{"map-core", topo.MapCore, 0},
		{"map-numa", topo.MapNUMA, 0},
		{"root=10", topo.MapCore, 10},
	}

	t := &stats.Table{Header: []string{"Component", "Scenario", "Inter-Socket", "Inter-NUMA", "Intra-NUMA"}}
	r := &Report{ID: "tab2", Title: "Number and distance of exchanged messages"}
	for _, compName := range []string{"tuned", "xhc-tree"} {
		for _, sc := range scenarios {
			m, err := top.Map(sc.policy, 64)
			if err != nil {
				return nil, err
			}
			w := env.NewWorld(top, m)
			col := trace.New(top, m)
			var comp coll.Component
			if compName == "xhc-tree" {
				c := core.MustNew(w, core.DefaultConfig())
				c.OnPull = col.Hook()
				comp = c
			} else {
				tc, err := coll.New(compName, w)
				if err != nil {
					return nil, err
				}
				type hookable interface{ SetOnMessage(func(int, int, int)) }
				if h, ok := tc.(hookable); ok {
					h.SetOnMessage(col.Hook())
				}
				comp = tc
			}
			bufs := make([]*mem.Buffer, 64)
			for i := range bufs {
				bufs[i] = w.NewBufferAt("t2", i, n)
			}
			if err := w.Run(func(p *env.Proc) {
				comp.Bcast(p, bufs[p.Rank], 0, n, sc.root)
			}); err != nil {
				return nil, err
			}
			is, in, ia := col.Table2Row()
			t.Add(compName, sc.label, fmt.Sprint(is), fmt.Sprint(in), fmt.Sprint(ia))
			key := compName + "_" + strings.ReplaceAll(sc.label, " ", "_")
			r.Metric(key+"_inter_socket", float64(is))
			r.Metric(key+"_inter_numa", float64(in))
			r.Metric(key+"_intra_numa", float64(ia))
		}
	}
	r.Text = t.String()
	return r, nil
}

// runFig10 compares flag cache-line placement schemes for small broadcasts
// on Epyc-1P: per-member flags packed in a shared line vs on separate
// lines, for both the flat and hierarchical variants.
func runFig10(o Options) (*Report, error) {
	top := topo.Epyc1P()
	warm, it := iters(o)
	sizes := smallSizes(o)
	r := &Report{ID: "fig10", Title: "Flag cache-line placement (Epyc-1P)"}

	build := func(flat bool, scheme core.FlagScheme) coll.Builder {
		return func(w *env.World) (coll.Component, error) {
			cfg := core.DefaultConfig()
			if flat {
				cfg = core.FlatConfig()
			}
			cfg.Flags = scheme
			return core.New(w, cfg)
		}
	}
	cases := []struct {
		name   string
		flat   bool
		scheme core.FlagScheme
	}{
		{"flat/shared", true, core.MultiSharedLine},
		{"flat/separated", true, core.MultiSeparateLines},
		{"tree/shared", false, core.MultiSharedLine},
		{"tree/separated", false, core.MultiSeparateLines},
	}
	cells := make([]osu.Result, len(cases)*len(sizes))
	err := runCells(o, len(cells), func(i int) error {
		c, size := cases[i/len(sizes)], sizes[i%len(sizes)]
		b := osu.Bench{Topo: top, NRanks: 32, Custom: build(c.flat, c.scheme), Warmup: warm, Iters: it, Dirty: true}
		rs, err := b.Bcast([]int{size})
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		cells[i] = rs[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	lat := map[string]map[int]float64{}
	for ci, c := range cases {
		lat[c.name] = map[int]float64{}
		for si := range sizes {
			x := cells[ci*len(sizes)+si]
			lat[c.name][x.Size] = x.AvgLat
		}
	}
	t := &stats.Table{Header: []string{"size", "flat/shared", "flat/separated", "tree/shared", "tree/separated"}}
	for _, n := range sizes {
		t.Add(stats.SizeLabel(n),
			fmt.Sprintf("%.2f", lat["flat/shared"][n]),
			fmt.Sprintf("%.2f", lat["flat/separated"][n]),
			fmt.Sprintf("%.2f", lat["tree/shared"][n]),
			fmt.Sprintf("%.2f", lat["tree/separated"][n]))
	}
	r.Text = t.String()
	r.Metric("flat_shared_over_tree_shared_4B", lat["flat/shared"][4]/lat["tree/shared"][4])
	r.Metric("flat_separated_over_tree_separated_4B", lat["flat/separated"][4]/lat["tree/separated"][4])
	r.Metric("flat_separated_over_flat_shared_4B", lat["flat/separated"][4]/lat["flat/shared"][4])
	return r, nil
}

func runFig11(o Options) (*Report, error) {
	r := &Report{ID: "fig11", Title: "MPI Allreduce comparison"}
	var b strings.Builder
	sizes := sweepSizes(o)
	for _, top := range topo.Platforms() {
		comps := figComponents(top, true)
		text, lat, err := sweep(o, top, top.NCores, comps, "allreduce", sizes, topo.MapCore, 0)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s (%d ranks), latency us:\n%s\n", top.Name, top.NCores, text)
		big := 1 << 20
		r.Metric(top.Name+"_tree_speedup_vs_tuned_1M", lat["tuned"][big]/lat["xhc-tree"][big])
		r.Metric(top.Name+"_tree_speedup_vs_ucc_1M", lat["ucc"][big]/lat["xhc-tree"][big])
		r.Metric(top.Name+"_tree_speedup_vs_xbrc_1M", lat["xbrc"][big]/lat["xhc-tree"][big])
		r.Metric(top.Name+"_flat_over_tree_4B", lat["xhc-flat"][4]/lat["xhc-tree"][4])
	}
	r.Text = b.String()
	return r, nil
}
