package exper

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode and checks
// the paper's qualitative claims against the produced metrics. This is the
// repository's end-to-end reproduction gate.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take tens of seconds")
	}
	doc, reports, err := RenderAll(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(All()) {
		t.Fatalf("reports = %d, want %d", len(reports), len(All()))
	}
	byID := map[string]*Report{}
	for _, r := range reports {
		byID[r.ID] = r
		if r.Text == "" {
			t.Errorf("%s: empty text", r.ID)
		}
	}

	m := func(id, key string) float64 {
		r, ok := byID[id]
		if !ok {
			t.Fatalf("missing report %s", id)
		}
		v, ok := r.Metrics[key]
		if !ok {
			t.Fatalf("%s: missing metric %s (have %v)", id, key, r.Metrics)
		}
		return v
	}

	ge := func(id, key string, bound float64) {
		if v := m(id, key); v < bound {
			t.Errorf("%s: %s = %.3f, want >= %.3f", id, key, v, bound)
		}
	}
	le := func(id, key string, bound float64) {
		if v := m(id, key); v > bound {
			t.Errorf("%s: %s = %.3f, want <= %.3f", id, key, v, bound)
		}
	}

	// Fig 1a: distance classes are ordered (cross-socket slowest).
	for _, plat := range []string{"Epyc-2P", "ARM-N1"} {
		in := m("fig1a", plat+"_intra-numa_us")
		xs := m("fig1a", plat+"_cross-socket_us")
		if xs <= in {
			t.Errorf("fig1a %s: cross-socket (%.2f) should exceed intra-numa (%.2f)", plat, xs, in)
		}
	}

	// Fig 1b: flat degrades with rank count; hierarchy relieves congestion.
	ge("fig1b", "flat_degradation", 1.5)
	ge("fig1b", "hier_over_flat_at_full", 1.5)

	// Fig 3: XPMEM beats KNEM beats ... CICO worst; no-regcache is awful.
	ge("fig3", "bcast_knem_over_xpmem", 1.0)
	ge("fig3", "bcast_cma_over_xpmem", 1.5)
	ge("fig3", "bcast_cico_over_xpmem", 1.02)
	ge("fig3", "p2p_nocache_over_cached", 1.3)

	// Fig 4: atomics collapse under fan-in (paper: 23x at 160 ranks; we
	// require a large multiple).
	ge("fig4", "atomics_over_single_writer_at_160", 4)

	// Fig 7: the stock benchmark flatters the flat tree at medium sizes;
	// the tree barely changes; with dirtying the tree wins.
	ge("fig7", "flat_mb_over_stock_64K", 1.3)
	if m("fig7", "tree_mb_over_stock_64K") >= m("fig7", "flat_mb_over_stock_64K") {
		t.Error("fig7: caching should flatter the flat tree more than the hierarchical one")
	}
	ge("fig7", "flat_over_tree_mb_64K", 1.0)

	// Fig 8: headline broadcast results.
	for _, plat := range []string{"Epyc-1P", "Epyc-2P", "ARM-N1"} {
		ge("fig8", plat+"_tree_speedup_vs_tuned_1M", 1.2)
		ge("fig8", plat+"_tree_speedup_vs_smhc_1M", 1.5)
		ge("fig8", plat+"_tree_speedup_vs_flat_1M", 1.05)
	}
	// Small messages: flat wins on the shared-LLC machines, loses on ARM.
	le("fig8", "Epyc-1P_flat_over_tree_4B", 1.05)
	ge("fig8", "ARM-N1_flat_over_tree_4B", 1.3)

	// Tree-over-flat benefit grows with machine size.
	s1 := m("fig8", "Epyc-1P_tree_speedup_vs_flat_1M")
	s2 := m("fig8", "Epyc-2P_tree_speedup_vs_flat_1M")
	s3 := m("fig8", "ARM-N1_tree_speedup_vs_flat_1M")
	if !(s1 < s2 && s2 < s3) {
		t.Errorf("fig8: tree/flat speedups should grow with machine size: %.2f, %.2f, %.2f", s1, s2, s3)
	}

	// Fig 9: tuned swings with layout and root; XHC stays robust.
	ge("fig9a", "tuned_mapnuma_over_mapcore_1M", 1.3)
	le("fig9a", "xhc_mapnuma_over_mapcore_1M", 1.15)
	ge("fig9b", "tuned_root10_over_root0_64K", 1.03)
	le("fig9b", "xhc_root10_over_root0_64K", 1.1)

	// Table II: XHC's distance profile is exactly 1/6/56 in EVERY
	// scenario (the paper's "any" row), while tuned's profile swings with
	// the mapping policy and the root.
	for _, sc := range []string{"map-core", "map-numa", "root=10"} {
		if m("tab2", "xhc-tree_"+sc+"_inter_socket") != 1 ||
			m("tab2", "xhc-tree_"+sc+"_inter_numa") != 6 ||
			m("tab2", "xhc-tree_"+sc+"_intra_numa") != 56 {
			t.Errorf("tab2 xhc-tree %s: got %v/%v/%v, want 1/6/56", sc,
				m("tab2", "xhc-tree_"+sc+"_inter_socket"),
				m("tab2", "xhc-tree_"+sc+"_inter_numa"),
				m("tab2", "xhc-tree_"+sc+"_intra_numa"))
		}
	}
	tunedSwings := m("tab2", "tuned_map-numa_intra_numa") != m("tab2", "tuned_map-core_intra_numa") ||
		m("tab2", "tuned_map-numa_inter_numa") != m("tab2", "tuned_map-core_inter_numa")
	if !tunedSwings {
		t.Error("tab2: tuned profile should change between map-core and map-numa")
	}
	if m("tab2", "tuned_root=10_intra_numa") == m("tab2", "tuned_map-core_intra_numa") &&
		m("tab2", "tuned_root=10_inter_numa") == m("tab2", "tuned_map-core_inter_numa") {
		t.Error("tab2: tuned profile should change with the root")
	}

	// Fig 10: with flags on separate lines the flat variant collapses;
	// with a shared line it stays competitive (Epyc LLC assistance).
	ge("fig10", "flat_separated_over_flat_shared_4B", 1.3)
	ge("fig10", "flat_separated_over_tree_separated_4B", 1.03)
	le("fig10", "flat_shared_over_tree_shared_4B", 1.2)

	// Fig 11: Allreduce headlines.
	for _, plat := range []string{"Epyc-1P", "Epyc-2P", "ARM-N1"} {
		ge("fig11", plat+"_tree_speedup_vs_tuned_1M", 1.03)
		ge("fig11", plat+"_tree_speedup_vs_xbrc_1M", 1.1)
		// Unlike broadcast, flat never wins small allreduce.
		ge("fig11", plat+"_flat_over_tree_4B", 1.0)
	}

	// Figs 12-14: XHC at least matches the next-best component.
	ge("fig12", "ARM-N1_speedup_over_next_best", 0.95)
	ge("fig13", "ARM-N1_speedup_over_next_best_b", 1.0)
	ge("fig14", "ARM-N1_speedup_over_next_best", 0.97)

	// The combined document contains every section.
	for _, id := range IDs() {
		if !strings.Contains(doc, "## "+id) {
			t.Errorf("document missing section %s", id)
		}
	}
}

func TestRegistryShape(t *testing.T) {
	ids := IDs()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments registered: %v", len(ids), ids)
	}
	if ids[0] != "tab1" {
		t.Errorf("first experiment = %s, want tab1", ids[0])
	}
	if _, ok := ByID("fig8"); !ok {
		t.Error("fig8 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
}
