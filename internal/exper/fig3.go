package exper

import (
	"fmt"
	"strings"

	"xhc/internal/baselines"
	"xhc/internal/coll"
	"xhc/internal/env"
	"xhc/internal/hier"
	"xhc/internal/mpi"
	"xhc/internal/osu"
	"xhc/internal/stats"
	"xhc/internal/topo"
)

func init() {
	register("fig3", "Data copy mechanisms: XPMEM vs KNEM vs CMA vs CICO (Epyc-2P)", runFig3)
	register("fig4", "Atomics vs single-writer flag synchronization (ARM-N1, 4 B Bcast)", runFig4)
}

// buildHier renders a hierarchy for fig2 (kept here to avoid an import
// cycle in fig1.go).
func buildHier(top *topo.Topology, m topo.Mapping) (string, error) {
	sens, err := hier.ParseSensitivity("numa+socket")
	if err != nil {
		return "", err
	}
	h, err := hier.Build(top, m, sens, 0)
	if err != nil {
		return "", err
	}
	return h.Render(), nil
}

// tunedWith builds the tuned component over a specific SMSC mechanism.
func tunedWith(mech mpi.Mechanism, regCache bool) coll.Builder {
	return func(w *env.World) (coll.Component, error) {
		cfg := baselines.DefaultTunedConfig()
		cfg.P2P.Mechanism = mech
		cfg.P2P.RegCache = regCache
		return baselines.NewTuned(w, cfg), nil
	}
}

// runFig3 measures (a) p2p latency between two processes in different NUMA
// nodes of the same socket and (b) 64-rank broadcast latency through
// tuned, under each copy mechanism, plus XPMEM without its registration
// cache (the paper's dashed bars).
func runFig3(o Options) (*Report, error) {
	top := topo.Epyc2P()
	warm, it := iters(o)
	sizes := []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	if o.Quick {
		sizes = []int{64 << 10, 1 << 20}
	}

	type mechCase struct {
		name     string
		mech     mpi.Mechanism
		regCache bool
	}
	cases := []mechCase{
		{"xpmem", mpi.XPMEM, true},
		{"knem", mpi.KNEM, true},
		{"cma", mpi.CMA, true},
		{"cico", mpi.CICO, true},
		{"xpmem-nocache", mpi.XPMEM, false},
	}

	var b strings.Builder
	r := &Report{ID: "fig3", Title: "Data copy mechanisms (Epyc-2P)"}
	var colNames []string
	for _, c := range cases {
		colNames = append(colNames, c.name)
	}

	// Both halves of the figure — (a) p2p latency between cores 0 and 8
	// (different NUMA, same socket) and (b) 64-rank broadcast through tuned
	// — share one cell pool: cell i < half is p2p, the rest broadcast.
	half := len(cases) * len(sizes)
	cells := make([]osu.Result, 2*half)
	err := runCells(o, len(cells), func(i int) error {
		c, size := cases[(i%half)/len(sizes)], sizes[(i%half)%len(sizes)]
		if i < half {
			cfg := mpi.DefaultConfig()
			cfg.Mechanism = c.mech
			cfg.RegCache = c.regCache
			rs, err := osu.Latency(top, 0, 8, cfg, []int{size}, warm, it, nil)
			if err != nil {
				return err
			}
			cells[i] = rs[0]
			return nil
		}
		bench := osu.Bench{Topo: top, NRanks: 64, Custom: tunedWith(c.mech, c.regCache),
			Warmup: warm, Iters: it, Dirty: true}
		rs, err := bench.Bcast([]int{size})
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		cells[i] = rs[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	lat := map[string]map[int]float64{}
	blat := map[string]map[int]float64{}
	for ci, c := range cases {
		lat[c.name] = map[int]float64{}
		blat[c.name] = map[int]float64{}
		for si := range sizes {
			x := cells[ci*len(sizes)+si]
			lat[c.name][x.Size] = x.AvgLat
			x = cells[half+ci*len(sizes)+si]
			blat[c.name][x.Size] = x.AvgLat
		}
	}

	t := &stats.Table{Header: append([]string{"size"}, colNames...)}
	for _, n := range sizes {
		row := []string{stats.SizeLabel(n)}
		for _, c := range cases {
			row = append(row, fmt.Sprintf("%.2f", lat[c.name][n]))
		}
		t.Add(row...)
	}
	fmt.Fprintf(&b, "(a) osu_latency, 2 ranks cross-NUMA same-socket (us):\n%s\n", t.String())

	tb := &stats.Table{Header: append([]string{"size"}, colNames...)}
	for _, n := range sizes {
		row := []string{stats.SizeLabel(n)}
		for _, c := range cases {
			row = append(row, fmt.Sprintf("%.2f", blat[c.name][n]))
		}
		tb.Add(row...)
	}
	fmt.Fprintf(&b, "(b) osu_bcast, 64 ranks via tuned (us):\n%s\n", tb.String())

	big := sizes[len(sizes)-1]
	r.Metric("bcast_knem_over_xpmem", blat["knem"][big]/blat["xpmem"][big])
	r.Metric("bcast_cma_over_xpmem", blat["cma"][big]/blat["xpmem"][big])
	r.Metric("bcast_cico_over_xpmem", blat["cico"][big]/blat["xpmem"][big])
	r.Metric("p2p_nocache_over_cached", lat["xpmem-nocache"][big]/lat["xpmem"][big])
	r.Text = b.String()
	return r, nil
}

// runFig4 compares a flat shared-memory broadcast of 4 bytes with
// single-writer flags (smhc-flat) against the same with atomic fetch-add
// flags (sm), as the node fills up.
func runFig4(o Options) (*Report, error) {
	top := topo.ArmN1()
	warm, it := iters(o)
	counts := []int{20, 40, 80, 120, 160}
	if o.Quick {
		counts = []int{40, 160}
	}
	t := &stats.Table{Header: []string{"ranks", "single-writer(us)", "atomics(us)", "ratio"}}
	r := &Report{ID: "fig4", Title: "Atomics vs single-writer synchronization"}
	cells := make([]float64, 2*len(counts))
	err := runCells(o, len(cells), func(i int) error {
		comp := "smhc-flat"
		if i%2 == 1 {
			comp = "sm"
		}
		rs, err := (osu.Bench{Topo: top, NRanks: counts[i/2], Component: comp, Warmup: warm, Iters: it, Dirty: true}).Bcast([]int{4})
		if err != nil {
			return err
		}
		cells[i] = rs[0].AvgLat
		return nil
	})
	if err != nil {
		return nil, err
	}
	var lastRatio float64
	for i, k := range counts {
		sw, at := cells[2*i], cells[2*i+1]
		ratio := at / sw
		lastRatio = ratio
		t.Add(fmt.Sprint(k), fmt.Sprintf("%.2f", sw), fmt.Sprintf("%.2f", at),
			fmt.Sprintf("%.1fx", ratio))
	}
	r.Text = t.String()
	r.Metric("atomics_over_single_writer_at_160", lastRatio)
	return r, nil
}
