// Package exper regenerates every table and figure of the paper's
// motivation and evaluation sections. Each experiment produces a textual
// report (the same rows/series the paper plots) plus named metrics that
// the test suite checks against the paper's qualitative claims.
package exper

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Options controls experiment fidelity.
type Options struct {
	// Quick trims iteration counts and size sweeps so the full suite runs
	// in seconds (used by tests); the default (false) uses the full
	// paper-style sweeps.
	Quick bool

	// Parallel is the number of worker goroutines used to run independent
	// experiment cells (0: GOMAXPROCS, 1: fully sequential). Each cell is
	// one self-contained simulation — its own engine, memory system and
	// processes — so cells never share mutable state and the rendered
	// reports are byte-identical at any worker count: results land in
	// pre-sized slots and are assembled in the original loop order.
	Parallel int

	// PlanFile, when set, points the tune experiment at a persisted
	// xhctune plan file (tuned/<platform>.json) instead of running its
	// own in-memory sweep. Other experiments ignore it.
	PlanFile string
}

// workers resolves the worker count for n independent cells.
func (o Options) workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runCells executes cell(0..n-1) across o.workers(n) goroutines. Every cell
// runs regardless of other cells' failures; the reported error is the one
// with the lowest cell index, which keeps failure output deterministic.
func runCells(o Options, n int, cell func(int) error) error {
	w := o.workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = cell(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	Text  string
	// Metrics carries headline numbers (speedups, ratios) keyed by name,
	// for programmatic checks against the paper's claims.
	Metrics map[string]float64
}

// Metric records a named headline number.
func (r *Report) Metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// Experiment is a regenerable table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

var registry []Experiment

func register(id, title string, run func(Options) (*Report, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the experiments in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderOf(out[i].ID) < orderOf(out[j].ID) })
	return out
}

func orderOf(id string) int {
	order := []string{"tab1", "fig1a", "fig1b", "fig2", "fig3", "fig4", "fig7",
		"fig8", "fig9a", "fig9b", "tab2", "fig10", "fig11", "ext", "fig12", "fig13", "fig14", "tune"}
	for i, o := range order {
		if o == id {
			return i
		}
	}
	return len(order)
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists registered experiment ids in paper order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// section renders a report header.
func section(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	b.WriteString(r.Text)
	if len(r.Metrics) > 0 {
		b.WriteString("\nHeadline metrics:\n")
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-46s %8.3f\n", k, r.Metrics[k])
		}
	}
	return b.String()
}

// RenderAll runs every experiment and renders a combined document.
func RenderAll(o Options) (string, []*Report, error) {
	var b strings.Builder
	var reports []*Report
	for _, e := range All() {
		r, err := e.Run(o)
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		reports = append(reports, r)
		b.WriteString(section(r))
		b.WriteString("\n")
	}
	return b.String(), reports, nil
}

// sweepSizes returns the message-size sweep (trimmed under Quick).
func sweepSizes(o Options) []int {
	if o.Quick {
		return []int{4, 1 << 10, 64 << 10, 1 << 20}
	}
	return []int{4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
}

// smallSizes is the small-message range of Figs. 4 and 10.
func smallSizes(o Options) []int {
	if o.Quick {
		return []int{4, 256}
	}
	return []int{4, 16, 64, 256, 1 << 10}
}

func iters(o Options) (warmup, measured int) {
	if o.Quick {
		return 2, 3
	}
	return 4, 10
}
