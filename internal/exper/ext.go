package exper

import (
	"fmt"
	"strings"

	"xhc/internal/osu"
	"xhc/internal/stats"
	"xhc/internal/topo"
)

func init() {
	register("ext", "Extended collectives: Barrier, Reduce, Allgather, Scatter (Epyc-2P)", runExt)
}

// extSizes keeps the per-rank blocks of allgather/scatter modest (the out
// buffers are Size*NRanks).
func extSizes(o Options) []int {
	if o.Quick {
		return []int{4, 1 << 10, 64 << 10}
	}
	return []int{4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}
}

// runExt evaluates the collectives the paper's conclusions list as ongoing
// work — Barrier, rooted Reduce, Allgather and Scatter — with the same
// methodology as the Bcast/Allreduce comparisons: XHC against a tuned-style
// flat p2p baseline and an sm-style shared segment (plus the XBRC-style
// direct reduction for Reduce), osu_mb buffer dirtying throughout.
func runExt(o Options) (*Report, error) {
	top := topo.Epyc2P()
	r := &Report{ID: "ext", Title: "Extended collectives (Epyc-2P)"}
	var b strings.Builder
	sizes := extSizes(o)
	warm, it := iters(o)

	// Barrier: no payload, a single row per component.
	barComps := []string{"xhc-tree", "tuned", "sm"}
	barCells := make([]osu.Result, len(barComps))
	if err := runCells(o, len(barComps), func(i int) error {
		bench := osu.Bench{Topo: top, NRanks: top.NCores, Component: barComps[i],
			Warmup: warm, Iters: it}
		rs, err := bench.Barrier()
		if err != nil {
			return fmt.Errorf("%s on %s: %w", barComps[i], top.Name, err)
		}
		barCells[i] = rs[0]
		return nil
	}); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: append([]string{""}, barComps...)}
	row := []string{"latency"}
	for _, c := range barCells {
		row = append(row, fmt.Sprintf("%.2f", c.AvgLat))
	}
	t.Add(row...)
	fmt.Fprintf(&b, "barrier (%d ranks), latency us:\n%s\n", top.NCores, t.String())
	r.Metric("barrier_tuned_over_tree", barCells[1].AvgLat/barCells[0].AvgLat)

	// The rooted/vector collectives: size-by-component sweeps.
	kinds := []struct {
		kind  string
		comps []string
	}{
		{"reduce", []string{"xhc-tree", "tuned", "sm", "xbrc"}},
		{"allgather", []string{"xhc-tree", "tuned", "sm"}},
		{"scatter", []string{"xhc-tree", "tuned", "sm"}},
	}
	ref := 64 << 10
	for _, k := range kinds {
		text, lat, err := sweep(o, top, top.NCores, k.comps, k.kind, sizes, topo.MapCore, 0)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s (%d ranks), latency us:\n%s\n", k.kind, top.NCores, text)
		r.Metric(k.kind+"_tuned_over_tree_64K", lat["tuned"][ref]/lat["xhc-tree"][ref])
	}
	r.Text = b.String()
	return r, nil
}
