package exper

import (
	"fmt"
	"strings"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/osu"
	"xhc/internal/sim"
	"xhc/internal/stats"
	"xhc/internal/topo"
)

func init() {
	register("tab1", "Evaluation systems (Table I)", runTab1)
	register("fig1a", "One-way latency across topological domains", runFig1a)
	register("fig1b", "Memory-copy congestion: flat vs hierarchical (Epyc-1P)", runFig1b)
	register("fig2", "Example 3-level hierarchy with numa+socket sensitivity", runFig2)
}

func runTab1(o Options) (*Report, error) {
	t := &stats.Table{Header: []string{"Codename", "Arch", "Cores", "NUMA", "Sockets", "SharedLLC"}}
	for _, top := range topo.Platforms() {
		llc := "no"
		if top.HasSharedLLC() {
			llc = fmt.Sprintf("%dx%d", top.NLLC, top.CoresPerLLC)
		}
		t.Add(top.Name, top.Arch, fmt.Sprint(top.NCores), fmt.Sprint(top.NNUMA),
			fmt.Sprint(top.NSockets), llc)
	}
	return &Report{ID: "tab1", Title: "Evaluation systems", Text: t.String()}, nil
}

// runFig1a measures point-to-point transfer time for core pairs in each
// distance class, on every platform, for 1 MB (and 4 B) messages.
func runFig1a(o Options) (*Report, error) {
	warm, it := iters(o)
	r := &Report{ID: "fig1a", Title: "One-way latency across topological domains"}
	sizes := []int{1 << 20, 4}
	classes := []topo.DistanceClass{topo.CacheLocal, topo.IntraNUMA, topo.CrossNUMA, topo.CrossSocket}

	// Flatten the (size, platform, class) cells that have a representative
	// pair, measure them concurrently, then render in the original order.
	type job struct {
		size  int
		top   *topo.Topology
		class topo.DistanceClass
		pair  [2]int
	}
	var jobs []job
	for _, size := range sizes {
		for _, top := range topo.Platforms() {
			pairs := classPairs(top)
			for _, class := range classes {
				if pair, ok := pairs[class]; ok {
					jobs = append(jobs, job{size, top, class, pair})
				}
			}
		}
	}
	lats := make([]float64, len(jobs))
	err := runCells(o, len(jobs), func(i int) error {
		j := jobs[i]
		res, err := osu.Latency(j.top, j.pair[0], j.pair[1], mpi.DefaultConfig(), []int{j.size}, warm, it, nil)
		if err != nil {
			return err
		}
		lats[i] = res[0].AvgLat
		return nil
	})
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	next := 0
	for _, size := range sizes {
		t := &stats.Table{Header: []string{"Platform", "cache-local", "intra-numa", "cross-numa", "cross-socket"}}
		for _, top := range topo.Platforms() {
			pairs := classPairs(top)
			row := []string{top.Name}
			for _, class := range classes {
				if _, ok := pairs[class]; !ok {
					row = append(row, "n/a")
					continue
				}
				lat := lats[next]
				next++
				row = append(row, fmt.Sprintf("%.2f", lat))
				if size == 1<<20 {
					r.Metric(fmt.Sprintf("%s_%s_us", top.Name, class), lat)
				}
			}
			t.Add(row...)
		}
		fmt.Fprintf(&b, "message size %s (us):\n%s\n", stats.SizeLabel(size), t.String())
	}
	r.Text = b.String()
	return r, nil
}

// classPairs picks a representative core pair per distance class.
func classPairs(top *topo.Topology) map[topo.DistanceClass][2]int {
	out := map[topo.DistanceClass][2]int{}
	for b := 1; b < top.NCores; b++ {
		d := top.Distance(0, b)
		if _, ok := out[d]; !ok {
			out[d] = [2]int{0, b}
		}
	}
	if !top.HasSharedLLC() {
		delete(out, topo.CacheLocal)
	}
	return out
}

// runFig1b reproduces the congestion experiment: N ranks concurrently copy
// 1 MB from the root (flat) or from per-NUMA leaders (hierarchical); the
// reported value is the copy time of one singled-out rank whose NUMA node
// is always fully occupied.
func runFig1b(o Options) (*Report, error) {
	top := topo.Epyc1P()
	const n = 1 << 20
	counts := []int{8, 16, 24, 32}
	if o.Quick {
		counts = []int{8, 32}
	}

	measure := func(nprocs int, hierarchical bool) (float64, error) {
		m := top.MustMap(topo.MapCore, nprocs)
		w := env.NewWorld(top, m)
		root := w.NewBufferAt("root", 0, n)
		leaders := make([]*mem.Buffer, top.NNUMA)
		for i := range leaders {
			leaders[i] = w.Sys.NewBuffer(fmt.Sprintf("leader%d", i), top.NUMACores(i)[0], n)
		}
		var singled sim.Duration
		err := w.Run(func(p *env.Proc) {
			dst := p.NewBuffer("dst", n)
			src := root
			if hierarchical && top.NUMA(p.Core) != 0 {
				src = leaders[top.NUMA(p.Core)]
			}
			if p.Rank == 0 {
				return // the root does not copy
			}
			start := p.Now()
			p.Copy(dst, 0, src, 0, n)
			if p.Rank == 1 {
				singled = p.Now() - start
			}
		})
		return sim.Micros(singled), err
	}

	t := &stats.Table{Header: []string{"ranks", "flat(us)", "hier(us)"}}
	r := &Report{ID: "fig1b", Title: "Memory-copy congestion: flat vs hierarchical"}
	cells := make([]float64, 2*len(counts))
	err := runCells(o, len(cells), func(i int) error {
		v, err := measure(counts[i/2], i%2 == 1)
		cells[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	var flatLast, hierLast, flatFirst float64
	for i, k := range counts {
		f, h := cells[2*i], cells[2*i+1]
		t.Add(fmt.Sprint(k), fmt.Sprintf("%.2f", f), fmt.Sprintf("%.2f", h))
		if i == 0 {
			flatFirst = f
		}
		flatLast, hierLast = f, h
	}
	r.Text = t.String()
	r.Metric("flat_degradation", flatLast/flatFirst)
	r.Metric("hier_over_flat_at_full", flatLast/hierLast)
	return r, nil
}

func runFig2(o Options) (*Report, error) {
	top := topo.Fig2Demo()
	m := top.MustMap(topo.MapCore, 16)
	w := env.NewWorld(top, m)
	_ = w
	h, err := buildHier(top, m)
	if err != nil {
		return nil, err
	}
	return &Report{ID: "fig2", Title: "Example hierarchy (numa+socket, 16 cores)",
		Text: top.Render() + "\n" + h}, nil
}
