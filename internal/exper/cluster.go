package exper

import (
	"encoding/binary"
	"fmt"
	"math"

	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/mpi"
	"xhc/internal/sim"
	"xhc/internal/stats"
	"xhc/internal/topo"
)

func init() {
	register("cluster", "Cluster scaling: the network level over multi-node fabrics", runCluster)
}

// clusterNodeCounts is the node sweep: latency as the same per-node job is
// replicated across more fabric-joined nodes.
func clusterNodeCounts(o Options) []int {
	if o.Quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8, 16}
}

// clusterCell measures one (nodes, collective, size) point: a fresh
// ClusterWorld per cell, an OSU-style loop on every rank, mean simulated
// latency over ranks and measured iterations. Cells are fully independent
// simulations (own engines, own fabric), so they parallelize under
// Options.Parallel with byte-identical results; within each cell the
// shards run sequentially (Workers=1) to avoid nested parallelism.
func clusterCell(nodes, perNode int, kind string, size, warm, it int) (float64, error) {
	node := topo.Epyc1P()
	cl, err := topo.NewCluster(nodes, node)
	if err != nil {
		return 0, err
	}
	m, err := node.Map(topo.MapCore, perNode)
	if err != nil {
		return 0, err
	}
	cw := env.NewClusterWorldDefault(cl, m)
	cw.Workers = 1
	cc, err := core.NewCluster(cw, core.DefaultConfig())
	if err != nil {
		return 0, err
	}
	lats := make([][]float64, cw.N)
	err = cw.Run(func(p *env.Proc, nd int) {
		g := cw.GlobalRank(nd, p.Rank)
		sbuf := p.NewBuffer(fmt.Sprintf("exp.s%d", g), size)
		rbuf := p.NewBuffer(fmt.Sprintf("exp.r%d", g), size)
		for i := 0; i+8 <= size; i += 8 {
			binary.LittleEndian.PutUint64(sbuf.Data[i:], math.Float64bits(float64(g+i)))
		}
		for itn := 0; itn < warm+it; itn++ {
			if kind != "bcast" || g == 0 {
				p.Dirty(sbuf)
			}
			cw.HarnessBarrier(p, nd)
			t0 := p.Now()
			switch kind {
			case "bcast":
				cc.Bcast(p, nd, sbuf, 0, size, 0)
			case "allreduce":
				cc.Allreduce(p, nd, sbuf, rbuf, size, mpi.Float64, mpi.Sum)
			case "barrier":
				cc.Barrier(p, nd)
			}
			d := p.Now() - t0
			if itn >= warm {
				lats[g] = append(lats[g], sim.Micros(d))
			}
			cw.HarnessBarrier(p, nd)
		}
	})
	if err != nil {
		return 0, err
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, fmt.Errorf("cluster cell %dx%d %s n=%d: no samples", nodes, perNode, kind, size)
	}
	return stats.Mean(all), nil
}

// runCluster sweeps node counts for broadcast and allreduce through the
// network level: node leaders bridge the fabric while the per-node XHC
// hierarchy handles everything on-node, so latency should grow with the
// leader-level fan-in, not with the total rank count.
func runCluster(o Options) (*Report, error) {
	nodeCounts := clusterNodeCounts(o)
	perNode := topo.Epyc1P().NCores
	warm, it := iters(o)
	size := 64 << 10
	kinds := []string{"bcast", "allreduce", "barrier"}

	lat := make([]float64, len(nodeCounts)*len(kinds))
	err := runCells(o, len(lat), func(i int) error {
		nodes, kind := nodeCounts[i/len(kinds)], kinds[i%len(kinds)]
		n := size
		if kind == "barrier" {
			n = 0
		}
		v, err := clusterCell(nodes, perNode, kind, n, warm, it)
		if err != nil {
			return err
		}
		lat[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}

	r := &Report{ID: "cluster", Title: "Cluster scaling: the network level over multi-node fabrics"}
	t := &stats.Table{Header: append([]string{"nodes", "ranks"}, kinds...)}
	for ni, nodes := range nodeCounts {
		row := []string{fmt.Sprintf("%d", nodes), fmt.Sprintf("%d", nodes*perNode)}
		for ki := range kinds {
			row = append(row, fmt.Sprintf("%.2f", lat[ni*len(kinds)+ki]))
		}
		t.Add(row...)
	}
	r.Text = fmt.Sprintf(
		"Epyc-1P nodes, %d ranks each, %s payloads (barrier: none), latency us.\n"+
			"Only node leaders touch the fabric; everything below the network\n"+
			"level is the unchanged single-node XHC hierarchy.\n\n%s",
		perNode, stats.SizeLabel(size), t.String())

	last := len(nodeCounts) - 1
	for ki, kind := range kinds {
		one, many := lat[ki], lat[last*len(kinds)+ki]
		if one > 0 {
			r.Metric(fmt.Sprintf("%s-%dnode-vs-1node-latency-ratio", kind, nodeCounts[last]), many/one)
		}
	}
	r.Metric("max-ranks", float64(nodeCounts[last]*perNode))
	return r, nil
}
