package exper

import (
	"fmt"
	"strings"

	"xhc/internal/stats"
	"xhc/internal/tune"
)

func init() {
	register("tune", "Online autotuner: sweep-and-select and bandit convergence (ARM-N1)", runTune)
}

// runTune demonstrates the closed telemetry→tuning loop of DESIGN.md §17
// on a node slice of ARM-N1: an offline sweep-and-select over the
// candidate plans (or, with Options.PlanFile, the persisted winners from
// xhctune -sweep), followed by the online bandit converging on the same
// kind of winner against a live communicator. Every (cell, plan)
// measurement is an independent simulation, so the sweep fans out across
// Options.Parallel workers and the rendered report stays byte-identical
// at any worker count.
func runTune(o Options) (*Report, error) {
	const platform = "ARM-N1"
	np := 40
	if o.Quick {
		np = 16
	}
	r := &Report{ID: "tune", Title: "Online autotuner (ARM-N1, " + fmt.Sprint(np) + " ranks)"}
	var b strings.Builder

	var cps []tune.CellPlan
	if o.PlanFile != "" {
		f, err := tune.Load(o.PlanFile)
		if err != nil {
			return nil, err
		}
		cps = f.Cells
		fmt.Fprintf(&b, "Persisted plan file %s (platform %s):\n", o.PlanFile, f.Platform)
	} else {
		cells := tune.PinnedCells(platform)
		plans := tune.CandidatePlans()
		warm, it := iters(o)
		samples := make([]tune.Sample, len(cells)*len(plans))
		err := runCells(o, len(samples), func(i int) error {
			c, p := cells[i/len(plans)], plans[i%len(plans)]
			res, err := tune.Measure(c, p, np, warm, it)
			if err != nil {
				return fmt.Errorf("%s under %s: %w", c.Key(), p.Name, err)
			}
			samples[i] = tune.Sample{Cell: c.Cell, Size: c.Size, Plan: p,
				MeanUS: res.AvgLat, MinUS: res.MinLat, MaxUS: res.MaxLat}
			return nil
		})
		if err != nil {
			return nil, err
		}
		cps = tune.Select(samples)
		fmt.Fprintf(&b, "Sweep-and-select over %d plans x %d pinned cells:\n", len(plans), len(cells))
	}

	t := &stats.Table{Header: []string{"cell", "plan", "default us", "tuned us", "delta"}}
	improved := 0
	for _, cp := range cps {
		delta := 0.0
		if cp.BaselineUS > 0 {
			delta = (cp.BaselineUS - cp.TunedUS) / cp.BaselineUS * 100
			key := strings.ReplaceAll(cp.Key(), "/", "_")
			r.Metric(key+"_default_over_tuned", cp.BaselineUS/cp.TunedUS)
		}
		if cp.Plan.Name != "default" && delta >= 5 {
			improved++
		}
		t.Add(cp.Key(), cp.Plan.Name,
			fmt.Sprintf("%.2f", cp.BaselineUS), fmt.Sprintf("%.2f", cp.TunedUS),
			fmt.Sprintf("%+.1f%%", -delta))
	}
	b.WriteString(t.String())
	r.Metric("cells_improved_5pct", float64(improved))

	rounds := 0 // package default: 3 rounds per arm
	if o.Quick {
		rounds = 8
	}
	on, err := tune.RunOnlineSim(platform, np, tune.OnlineOpts{Rounds: rounds, OpsPerRound: 4})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nOnline bandit (8 KiB bcast, live plan switches at op boundaries):\n")
	fmt.Fprintf(&b, "  best plan %s after %d switches, trace %v\n", on.Best.Name, on.Switches, on.Trace)
	r.Metric("online_switches", float64(on.Switches))

	r.Text = b.String()
	return r, nil
}
