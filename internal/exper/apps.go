package exper

import (
	"fmt"
	"strings"

	"xhc/internal/apps"
	"xhc/internal/sim"
	"xhc/internal/stats"
	"xhc/internal/topo"
)

func init() {
	register("fig12", "PiSvM performance across components and platforms", runFig12)
	register("fig13", "miniAMR performance (expanding sphere, two configurations)", runFig13)
	register("fig14", "CNTK performance (AlexNet-like SGD)", runFig14)
}

// appComponents mirrors the paper's application comparisons: tuned, ucc,
// smhc (flat on the 1-socket machine) and xbrc next to XHC.
func appComponents(top *topo.Topology) []string {
	smhc := "smhc-tree"
	if top.NSockets == 1 {
		smhc = "smhc-flat"
	}
	return []string{"xhc-tree", "tuned", "ucc", smhc, "xbrc"}
}

// appSweep runs one app model across components and platforms, reporting
// totals and collective-time breakdowns, plus next-best speedup metrics.
// Every (platform, component) pair is a self-contained app simulation, so
// the pairs run concurrently under Options.Parallel.
func appSweep(o Options, r *Report, runOne func(base apps.Config, quick bool) (apps.Result, error)) error {
	type job struct {
		top  *topo.Topology
		name string
	}
	var jobs []job
	for _, top := range topo.Platforms() {
		for _, name := range appComponents(top) {
			jobs = append(jobs, job{top, name})
		}
	}
	cells := make([]apps.Result, len(jobs))
	err := runCells(o, len(jobs), func(i int) error {
		j := jobs[i]
		nranks := j.top.NCores
		if o.Quick {
			nranks = nranks / 2 // halve occupancy to keep the suite quick
		}
		res, err := runOne(apps.Config{Topo: j.top, NRanks: nranks, Component: j.name}, o.Quick)
		if err != nil {
			return fmt.Errorf("%s on %s: %w", j.name, j.top.Name, err)
		}
		cells[i] = res
		return nil
	})
	if err != nil {
		return err
	}

	var b strings.Builder
	next := 0
	for _, top := range topo.Platforms() {
		nranks := top.NCores
		if o.Quick {
			nranks = nranks / 2
		}
		comps := appComponents(top)
		t := &stats.Table{Header: []string{"Component", "Total(ms)", "Coll(ms)"}}
		totals := map[string]float64{}
		for _, name := range comps {
			res := cells[next]
			next++
			totals[name] = float64(res.Total) / float64(sim.Millisecond)
			t.Add(name,
				fmt.Sprintf("%.2f", float64(res.Total)/float64(sim.Millisecond)),
				fmt.Sprintf("%.2f", float64(res.Coll)/float64(sim.Millisecond)))
		}
		fmt.Fprintf(&b, "%s (%d ranks):\n%s\n", top.Name, nranks, t.String())
		// Speedup of xhc-tree over the next-best other component.
		best := 0.0
		for name, tot := range totals {
			if name == "xhc-tree" {
				continue
			}
			if best == 0 || tot < best {
				best = tot
			}
		}
		if totals["xhc-tree"] > 0 {
			r.Metric(top.Name+"_speedup_over_next_best", best/totals["xhc-tree"])
		}
	}
	r.Text = b.String()
	return nil
}

func runFig12(o Options) (*Report, error) {
	r := &Report{ID: "fig12", Title: "PiSvM"}
	err := appSweep(o, r, func(base apps.Config, quick bool) (apps.Result, error) {
		cfg := apps.DefaultPiSvM(base)
		if quick {
			cfg.Iterations = 10
		}
		return apps.PiSvM(cfg)
	})
	return r, err
}

func runFig13(o Options) (*Report, error) {
	r := &Report{ID: "fig13", Title: "miniAMR (expanding sphere)"}
	var b strings.Builder
	for i, mk := range []func(apps.Config) apps.MiniAMRConfig{apps.DefaultMiniAMR, apps.ChallengingMiniAMR} {
		sub := &Report{}
		label := "(a) default, 4 refinement levels"
		if i == 1 {
			label = "(b) 1K refinement levels, refine every step"
		}
		err := appSweep(o, sub, func(base apps.Config, quick bool) (apps.Result, error) {
			cfg := mk(base)
			if quick {
				cfg.Steps = min(cfg.Steps, 30)
			}
			return apps.MiniAMR(cfg)
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s\n%s", label, sub.Text)
		for k, v := range sub.Metrics {
			suffix := "_a"
			if i == 1 {
				suffix = "_b"
			}
			r.Metric(k+suffix, v)
		}
	}
	r.Text = b.String()
	return r, nil
}

func runFig14(o Options) (*Report, error) {
	r := &Report{ID: "fig14", Title: "CNTK (AlexNet-like SGD)"}
	err := appSweep(o, r, func(base apps.Config, quick bool) (apps.Result, error) {
		cfg := apps.DefaultCNTK(base)
		if quick {
			cfg.Minibatches = 3
		}
		return apps.CNTK(cfg)
	})
	return r, err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
