// Package apps models the three MPI applications of the paper's
// evaluation (Section V-D3) at the level that matters for its experiments:
// the mix, sizes and frequency of collective calls, interleaved with
// compute phases of realistic magnitude and slight per-rank imbalance.
//
//   - PiSvM: parallel SVM training whose MPI time is dominated by
//     MPI_Bcast of working-set data (Fig. 12).
//   - miniAMR: adaptive mesh refinement; the recurring refine step issues
//     bursts of small MPI_Allreduce calls (Fig. 13, two configurations).
//   - CNTK: distributed SGD (AlexNet); per-minibatch gradient
//     MPI_Allreduce over large float buffers (Fig. 14). Buffer sizes are
//     scaled down from AlexNet's 244 MB of gradients to keep host memory
//     bounded; the compute:communication ratio is preserved.
package apps

import (
	"fmt"

	"xhc/internal/coll"
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/sim"
	"xhc/internal/stats"
	"xhc/internal/topo"
)

// Config places an application run.
type Config struct {
	Topo      *topo.Topology
	NRanks    int // 0: all cores
	Component string
	Custom    coll.Builder
	Params    *mem.Params
}

// Result summarizes one application run.
type Result struct {
	Component string
	// Total is the wall time of the slowest rank.
	Total sim.Duration
	// Coll is the mean per-rank time spent inside collectives (what an
	// MPI profiler would report).
	Coll sim.Duration
	// Ops counts collective calls per rank.
	Ops int
}

// String renders a report line.
func (r Result) String() string {
	return fmt.Sprintf("%-10s total=%-12s coll=%-12s ops=%d",
		r.Component, sim.FmtTime(r.Total), sim.FmtTime(r.Coll), r.Ops)
}

func (c Config) defaults() Config {
	if c.NRanks == 0 {
		c.NRanks = c.Topo.NCores
	}
	return c
}

// jitter derives a deterministic pseudo-random compute imbalance in
// [0, spread) for a (rank, step) pair.
func jitter(rank, step int, spread sim.Duration) sim.Duration {
	if spread <= 0 {
		return 0
	}
	h := uint64(rank)*2654435761 + uint64(step)*40503 + 12345
	h ^= h >> 13
	h *= 1099511628211
	h ^= h >> 29
	return sim.Duration(h % uint64(spread))
}

// runner owns the common world/component/measurement plumbing.
type runner struct {
	cfg  Config
	w    *env.World
	comp coll.Component

	collTime []sim.Duration
	total    []sim.Duration
	ops      []int
}

func newRunner(cfg Config) (*runner, error) {
	cfg = cfg.defaults()
	m, err := cfg.Topo.Map(topo.MapCore, cfg.NRanks)
	if err != nil {
		return nil, err
	}
	var w *env.World
	if cfg.Params != nil {
		w = env.NewWorldParams(cfg.Topo, m, *cfg.Params)
	} else {
		w = env.NewWorld(cfg.Topo, m)
	}
	builder := cfg.Custom
	var comp coll.Component
	if builder != nil {
		comp, err = builder(w)
	} else {
		comp, err = coll.New(cfg.Component, w)
	}
	if err != nil {
		return nil, err
	}
	return &runner{
		cfg:      cfg,
		w:        w,
		comp:     comp,
		collTime: make([]sim.Duration, cfg.NRanks),
		total:    make([]sim.Duration, cfg.NRanks),
		ops:      make([]int, cfg.NRanks),
	}, nil
}

// timeColl wraps one collective call with per-rank accounting.
func (r *runner) timeColl(p *env.Proc, f func()) {
	t0 := p.Now()
	f()
	r.collTime[p.Rank] += p.Now() - t0
	r.ops[p.Rank]++
}

func (r *runner) result() Result {
	var worst sim.Duration
	var collSum float64
	for i := range r.total {
		if r.total[i] > worst {
			worst = r.total[i]
		}
		collSum += float64(r.collTime[i])
	}
	return Result{
		Component: r.cfg.Component,
		Total:     worst,
		Coll:      sim.Duration(collSum / float64(len(r.collTime))),
		Ops:       r.ops[0],
	}
}

// PiSvMConfig describes the SVM training model: iterations of gradient
// selection compute followed by broadcasts of the updated working set
// (index vector + alpha values), matching PiSvM's profile where almost all
// MPI time is inside MPI_Bcast.
type PiSvMConfig struct {
	Config
	Iterations int
	// WorkingSetBytes is the per-iteration broadcast payload (kernel rows
	// of the mnist-like dataset).
	WorkingSetBytes int
	// AlphaBytes is the small second broadcast.
	AlphaBytes int
	// ComputeNS is the per-iteration local compute, with up to 25%
	// deterministic per-rank jitter.
	ComputeNS sim.Duration
}

// DefaultPiSvM returns the mnist_train-like configuration.
func DefaultPiSvM(base Config) PiSvMConfig {
	return PiSvMConfig{
		Config:          base,
		Iterations:      120,
		WorkingSetBytes: 48 << 10,
		AlphaBytes:      2 << 10,
		ComputeNS:       35 * sim.Microsecond,
	}
}

// PiSvM runs the SVM model and reports timings.
func PiSvM(cfg PiSvMConfig) (Result, error) {
	r, err := newRunner(cfg.Config)
	if err != nil {
		return Result{}, err
	}
	n := cfg.WorkingSetBytes
	ws := make([]*mem.Buffer, r.cfg.NRanks)
	al := make([]*mem.Buffer, r.cfg.NRanks)
	for i := range ws {
		ws[i] = r.w.NewBufferAt("pisvm.ws", i, n)
		al[i] = r.w.NewBufferAt("pisvm.al", i, cfg.AlphaBytes)
	}
	err = r.w.Run(func(p *env.Proc) {
		start := p.Now()
		for it := 0; it < cfg.Iterations; it++ {
			p.Compute(cfg.ComputeNS + jitter(p.Rank, it, cfg.ComputeNS/4))
			if p.Rank == 0 {
				p.Dirty(ws[0])
				p.Dirty(al[0])
			}
			r.timeColl(p, func() { r.comp.Bcast(p, ws[p.Rank], 0, n, 0) })
			r.timeColl(p, func() { r.comp.Bcast(p, al[p.Rank], 0, cfg.AlphaBytes, 0) })
		}
		r.total[p.Rank] = p.Now() - start
	})
	if err != nil {
		return Result{}, err
	}
	return r.result(), nil
}

// MiniAMRConfig describes the AMR model: timesteps of stencil compute;
// every RefineEvery steps a refine phase issues a burst of small
// allreduce calls (load-balance decisions, grid consistency checks).
type MiniAMRConfig struct {
	Config
	Steps       int
	RefineEvery int
	// CallsPerRefine small allreduce calls of AllreduceBytes each.
	CallsPerRefine int
	AllreduceBytes int
	ComputeNS      sim.Duration
}

// DefaultMiniAMR is the paper's Fig. 13a configuration: the "expanding
// sphere" example, default parameters, 400 timesteps; allreduce payloads
// average a couple tens of bytes per call.
func DefaultMiniAMR(base Config) MiniAMRConfig {
	return MiniAMRConfig{
		Config:         base,
		Steps:          400,
		RefineEvery:    4,
		CallsPerRefine: 6,
		AllreduceBytes: 24,
		ComputeNS:      18 * sim.Microsecond,
	}
}

// ChallengingMiniAMR is the Fig. 13b configuration: 1K refinement levels,
// refine frequency of one timestep, 1000 steps, ~1 KB allreduce payloads.
func ChallengingMiniAMR(base Config) MiniAMRConfig {
	return MiniAMRConfig{
		Config:         base,
		Steps:          1000,
		RefineEvery:    1,
		CallsPerRefine: 4,
		AllreduceBytes: 1 << 10,
		ComputeNS:      10 * sim.Microsecond,
	}
}

// MiniAMR runs the AMR model.
func MiniAMR(cfg MiniAMRConfig) (Result, error) {
	r, err := newRunner(cfg.Config)
	if err != nil {
		return Result{}, err
	}
	n := cfg.AllreduceBytes
	if n%8 != 0 {
		n += 8 - n%8
	}
	sb := make([]*mem.Buffer, r.cfg.NRanks)
	rb := make([]*mem.Buffer, r.cfg.NRanks)
	for i := range sb {
		sb[i] = r.w.NewBufferAt("amr.s", i, n)
		rb[i] = r.w.NewBufferAt("amr.r", i, n)
	}
	err = r.w.Run(func(p *env.Proc) {
		start := p.Now()
		for ts := 0; ts < cfg.Steps; ts++ {
			p.Compute(cfg.ComputeNS + jitter(p.Rank, ts, cfg.ComputeNS/5))
			if ts%cfg.RefineEvery == 0 {
				for k := 0; k < cfg.CallsPerRefine; k++ {
					p.Dirty(sb[p.Rank])
					r.timeColl(p, func() {
						r.comp.Allreduce(p, sb[p.Rank], rb[p.Rank], n, mpi.Int64, mpi.Max)
					})
				}
			}
		}
		r.total[p.Rank] = p.Now() - start
	})
	if err != nil {
		return Result{}, err
	}
	return r.result(), nil
}

// CNTKConfig describes the SGD model: minibatches of forward/backward
// compute followed by per-layer gradient allreduce. (The paper replaces
// CNTK's Iallreduce with blocking Allreduce after confirming parity.)
type CNTKConfig struct {
	Config
	Minibatches int
	// LayerBytes are the gradient buffer sizes reduced per minibatch
	// (AlexNet-shaped, scaled — see the package comment).
	LayerBytes []int
	ComputeNS  sim.Duration
}

// DefaultCNTK returns the AlexNet/ILSVRC12-like configuration.
func DefaultCNTK(base Config) CNTKConfig {
	return CNTKConfig{
		Config:      base,
		Minibatches: 10,
		LayerBytes:  []int{64 << 10, 256 << 10, 1 << 20},
		ComputeNS:   1500 * sim.Microsecond,
	}
}

// CNTK runs the SGD model.
func CNTK(cfg CNTKConfig) (Result, error) {
	r, err := newRunner(cfg.Config)
	if err != nil {
		return Result{}, err
	}
	maxN := 0
	for _, n := range cfg.LayerBytes {
		if n > maxN {
			maxN = n
		}
	}
	sb := make([]*mem.Buffer, r.cfg.NRanks)
	rb := make([]*mem.Buffer, r.cfg.NRanks)
	for i := range sb {
		sb[i] = r.w.NewBufferAt("cntk.g", i, maxN)
		rb[i] = r.w.NewBufferAt("cntk.o", i, maxN)
	}
	err = r.w.Run(func(p *env.Proc) {
		start := p.Now()
		for mb := 0; mb < cfg.Minibatches; mb++ {
			p.Compute(cfg.ComputeNS + jitter(p.Rank, mb, cfg.ComputeNS/10))
			for _, n := range cfg.LayerBytes {
				p.Dirty(sb[p.Rank])
				r.timeColl(p, func() {
					r.comp.Allreduce(p, sb[p.Rank], rb[p.Rank], n, mpi.Float32, mpi.Sum)
				})
			}
		}
		r.total[p.Rank] = p.Now() - start
	})
	if err != nil {
		return Result{}, err
	}
	return r.result(), nil
}

// CompareComponents runs one app constructor across a component list and
// renders a Fig. 12/13/14-style report.
func CompareComponents(run func(component string) (Result, error), comps []string) (string, []Result, error) {
	t := &stats.Table{Header: []string{"Component", "Total(ms)", "Coll(ms)", "Coll%"}}
	var out []Result
	for _, name := range comps {
		res, err := run(name)
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, res)
		totalMS := float64(res.Total) / float64(sim.Millisecond)
		collMS := float64(res.Coll) / float64(sim.Millisecond)
		pct := 0.0
		if res.Total > 0 {
			pct = 100 * collMS / totalMS
		}
		t.Add(name, fmt.Sprintf("%.2f", totalMS), fmt.Sprintf("%.2f", collMS), fmt.Sprintf("%.1f", pct))
	}
	return t.String(), out, nil
}
