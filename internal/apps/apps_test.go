package apps

import (
	"strings"
	"testing"

	"xhc/internal/topo"
)

func quickBase(nranks int) Config {
	return Config{Topo: topo.Epyc1P(), NRanks: nranks, Component: "xhc-tree"}
}

func TestPiSvMRuns(t *testing.T) {
	cfg := DefaultPiSvM(quickBase(16))
	cfg.Iterations = 5
	res, err := PiSvM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 || res.Coll <= 0 || res.Coll > res.Total {
		t.Errorf("implausible result %+v", res)
	}
	if res.Ops != 2*cfg.Iterations {
		t.Errorf("ops = %d, want %d", res.Ops, 2*cfg.Iterations)
	}
}

func TestMiniAMRBothConfigs(t *testing.T) {
	a := DefaultMiniAMR(quickBase(16))
	a.Steps = 20
	ra, err := MiniAMR(a)
	if err != nil {
		t.Fatal(err)
	}
	b := ChallengingMiniAMR(quickBase(16))
	b.Steps = 20
	rb, err := MiniAMR(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Total <= 0 || rb.Total <= 0 {
		t.Error("zero totals")
	}
	// The challenging config does far more collective work per step.
	if rb.Ops <= ra.Ops/2 {
		t.Errorf("challenging ops %d vs default %d", rb.Ops, ra.Ops)
	}
}

func TestCNTKRuns(t *testing.T) {
	cfg := DefaultCNTK(quickBase(16))
	cfg.Minibatches = 2
	res, err := CNTK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != cfg.Minibatches*len(cfg.LayerBytes) {
		t.Errorf("ops = %d", res.Ops)
	}
}

func TestAppsAcrossComponents(t *testing.T) {
	// Every registered component must run the app models correctly.
	comps := []string{"xhc-tree", "xhc-flat", "tuned", "ucc", "xbrc", "smhc-tree", "sm"}
	report, results, err := CompareComponents(func(name string) (Result, error) {
		cfg := DefaultMiniAMR(quickBase(16))
		cfg.Component = name
		cfg.Steps = 8
		return MiniAMR(cfg)
	}, comps)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(comps) {
		t.Fatalf("results = %d", len(results))
	}
	if !strings.Contains(report, "xhc-tree") || !strings.Contains(report, "Coll%") {
		t.Errorf("report:\n%s", report)
	}
}

func TestComputeDominatedTotalOrdering(t *testing.T) {
	// With heavy compute and few collectives, total time is similar across
	// components; collective time still differs.
	cfg := DefaultCNTK(quickBase(16))
	cfg.Minibatches = 2
	rx, err := CNTK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Component = "sm"
	rs, err := CNTK(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Coll <= rx.Coll {
		t.Errorf("sm coll (%v) should exceed xhc-tree coll (%v)", rs.Coll, rx.Coll)
	}
}

func TestJitterDeterministicBounded(t *testing.T) {
	for r := 0; r < 10; r++ {
		for s := 0; s < 10; s++ {
			j1 := jitter(r, s, 1000)
			j2 := jitter(r, s, 1000)
			if j1 != j2 {
				t.Fatal("jitter not deterministic")
			}
			if j1 < 0 || j1 >= 1000 {
				t.Fatalf("jitter out of range: %d", j1)
			}
		}
	}
	if jitter(1, 1, 0) != 0 {
		t.Error("zero spread should give zero jitter")
	}
}

func TestBadComponentErrors(t *testing.T) {
	cfg := DefaultPiSvM(quickBase(8))
	cfg.Component = "nope"
	if _, err := PiSvM(cfg); err == nil {
		t.Error("unknown component accepted")
	}
}
