package verify

import (
	"fmt"

	"xhc/internal/coll"
	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/gxhc"
	"xhc/internal/sim"
)

// MutationOutcome reports one self-test entry: whether the run behaved as
// expected (clean variants pass, every seeded bug is caught).
type MutationOutcome struct {
	Name   string
	Mutant bool // false for the clean control runs
	OK     bool
	Detail string
}

// mutationCase is the base configuration the seeded bugs run on: a
// two-NUMA node with a two-level hierarchy, so there are pure members,
// intermediate (forwarding) leaders, and multi-member leaf groups — every
// role a mutant needs.
func mutationCase() Case {
	return Case{
		CfgSeed:       1,
		Plat:          platforms[1], // 1 socket x 2 NUMA x 4 cores
		Ranks:         8,
		Root:          0,
		Sens:          "numa",
		Kind:          KindBcast,
		Bytes:         32 << 10,
		Dt:            0,
		Op:            0,
		Chunk:         4 << 10,
		CICOThreshold: 1 << 10,
		Flags:         core.SingleFlag,
		RegCache:      true,
		Baseline:      "tuned",
		Ops:           4,
	}
}

// concMutationCase extends the mutation base case with a concurrency
// phase: the parent plus an overlapping split, every member keeping three
// small fusable broadcasts in flight.
func concMutationCase() Case {
	c := mutationCase()
	c.Conc = &ConcCase{
		InFlight: 3,
		Rounds:   2,
		Comms: []ConcComm{
			{Kind: KindBcast, Bytes: 256, Root: 1},
			{Ranks: []int{0, 2, 4, 6}, Kind: KindBcast, Bytes: 512, Root: 0},
		},
	}
	return c
}

// runConcMutant runs the concurrency phase with the given seeded bug under
// the plain FIFO schedule (deterministic batching, so the fused path the
// mutants target is guaranteed to form).
func runConcMutant(c Case, chaos *core.ChaosConfig) error {
	c.Chaos = chaos
	return runConcSim(c, Schedule{}, nil)
}

// faultSchedule is the perturbed schedule the clean control runs under:
// random tie-breaking, wake jitter and the full fault set. The unmutated
// protocol must survive it.
func faultSchedule() Schedule {
	return Schedule{SchedSeed: 0x5eed, Tie: 1, WakeJitterPS: int64(200 * sim.Nanosecond), Faults: true}
}

// runMutant runs the base case with the given seeded bug under the plain
// FIFO schedule (the mutants are constructed to be caught without needing
// schedule luck).
func runMutant(c Case, chaos *core.ChaosConfig) error {
	return runMutantSched(c, chaos, Schedule{})
}

// runMutantSched is runMutant under an explicit schedule, for the mutants
// whose detection needs a straggler or jitter to open the window.
func runMutantSched(c Case, chaos *core.ChaosConfig, s Schedule) error {
	c.Chaos = chaos
	cfg, err := c.coreConfig()
	if err != nil {
		return err
	}
	_, err = runSim(c, s, "xhc", nil, func(w *env.World) (coll.Component, *core.Comm, error) {
		cc, err := core.New(w, cfg)
		return cc, cc, err
	})
	return err
}

// RunMutationSelfTest exercises the checker against its seeded protocol
// bugs (DESIGN.md Section 10): the unmutated tree must pass — including
// under fault injection — and every mutant must be caught. includeGoComm
// adds the gxhc StaleReady mutant, which injects a genuine data race and
// therefore must be skipped under the race detector.
func RunMutationSelfTest(includeGoComm bool) []MutationOutcome {
	var out []MutationOutcome
	record := func(name string, mutant bool, err error) {
		o := MutationOutcome{Name: name, Mutant: mutant}
		if mutant {
			o.OK = err != nil
			if err != nil {
				o.Detail = err.Error()
			} else {
				o.Detail = "NOT CAUGHT"
			}
		} else {
			o.OK = err == nil
			if err != nil {
				o.Detail = err.Error()
			}
		}
		out = append(out, o)
	}

	base := mutationCase()

	// Clean controls: FIFO and the full fault schedule.
	record("clean/fifo", false, runMutant(base, nil))
	c := base
	c.Chaos = nil
	cfg, _ := c.coreConfig()
	_, err := runSim(c, faultSchedule(), "xhc", nil, func(w *env.World) (coll.Component, *core.Comm, error) {
		cc, err := core.New(w, cfg)
		return cc, cc, err
	})
	record("clean/faults", false, err)

	// Termination: pure members never ack, leaders deadlock.
	record("skip-ack", true, runMutant(base, &core.ChaosConfig{SkipAck: true}))

	// Data: a forwarding leader announces its staged CICO copy before
	// performing it; its children pull the previous slot contents. The
	// CICO sizing makes the stale read certain (the child's copy lands
	// before the leader's two back-to-back copies can).
	early := base
	early.Bytes = 2 << 10
	early.CICOThreshold = 4 << 10
	record("early-ready", true, runMutant(early, &core.ChaosConfig{EarlyReady: true}))

	// Single-writer line discipline: member acks packed onto one line.
	record("shared-ack-line", true, runMutant(base, &core.ChaosConfig{SharedAckLine: true}))

	// Monotonicity: a rewound ack counter; shm's own defense fires.
	record("ack-regression", true, runMutant(base, &core.ChaosConfig{AckRegression: true}))

	// The newer collectives, each with a clean control plus seeded bugs.
	barrier := base
	barrier.Kind = KindBarrier
	barrier.Bytes = 0
	record("barrier/clean", false, runMutantSched(barrier, nil, faultSchedule()))
	// Termination: a pure member never signals arrival; its leader's gather
	// hangs.
	record("barrier/skip-ack", true, runMutant(barrier, &core.ChaosConfig{SkipAck: true}))
	// Ordering: the release fires before the arrivals are gathered; under
	// the straggler schedule some rank exits while another's stamp is stale.
	record("barrier/early-ready", true, runMutantSched(barrier, &core.ChaosConfig{EarlyReady: true}, faultSchedule()))

	scatter := base
	scatter.Kind = KindScatter
	record("scatter/clean", false, runMutant(scatter, nil))
	// Termination: the subtree-ordered ack chain toward the root breaks.
	record("scatter/skip-ack", true, runMutant(scatter, &core.ChaosConfig{SkipAck: true}))
	// Data: the CICO root announces its staged blocks before the copy-in
	// lands; children drain the previous slot. Sized onto the CICO path
	// (blockLen <= threshold and N blocks fit in half the CICO buffer).
	scatterCICO := scatter
	scatterCICO.Bytes = 512
	scatterCICO.CICOThreshold = 8 << 10
	record("scatter/early-ready", true, runMutant(scatterCICO, &core.ChaosConfig{EarlyReady: true}))

	// Data: a reducer publishes its whole reduce_done slice before folding
	// anything; the root drains unreduced bytes.
	reduce := base
	reduce.Kind = KindReduce
	reduce.Root = 3
	record("reduce/clean", false, runMutant(reduce, nil))
	record("reduce/early-ready", true, runMutant(reduce, &core.ChaosConfig{EarlyReady: true}))

	// Data: a rank publishes its CICO push before staging its block; peers
	// assemble the previous op's slot contents. Under FIFO every rank's own
	// copy-in finishes before any peer reaches its slot, so the straggler
	// schedule is what opens the stale-read window (peers wake on the
	// straggler's early flag while its copy-in is still in flight).
	allgather := base
	allgather.Kind = KindAllgather
	allgather.Bytes = 512
	record("allgather/clean", false, runMutantSched(allgather, nil, faultSchedule()))
	record("allgather/early-ready", true, runMutantSched(allgather, &core.ChaosConfig{EarlyReady: true}, faultSchedule()))

	// The tuner mutant (DESIGN.md §17): a plan applied in the middle of an
	// operation instead of at the quiesced boundary ApplyTuning enforces.
	// Sized onto the CICO path (Bytes <= threshold): the root moves the
	// CICO/XPMEM boundary after it has dispatched; peers that dispatch the
	// same op afterwards take the XPMEM path and wait on an exposure the
	// root's CICO path never publishes — the deadlock detector converts the
	// hang. A clean control runs a legitimate boundary switch on the same
	// shape and must pass.
	tune := base
	tune.Bytes = 512
	tuneSwitch := tune
	tuneSwitch.Switch = &SwitchCase{AfterOp: 1, Chunk: 1 << 10, CICOThreshold: 0, FuseBytes: -1}
	record("tune/clean-switch", false, runMutant(tuneSwitch, nil))
	record("tune/mid-op-switch", true, runMutant(tune, &core.ChaosConfig{MidOpTune: true}))

	// The non-blocking concurrency runner (DESIGN.md §15): a clean control,
	// then the three request-layer mutants on the simulated backend. The
	// payloads sit inside the fusion size class, so the fused traversal is
	// on the path the mutants corrupt.
	conc := concMutationCase()
	// Termination: the worker runs the op but drops its completion; Wait
	// suspends forever and the deadlock detector converts it.
	record("iconc/clean", false, runConcMutant(conc, nil))
	record("iconc/lost-progress", true, runConcMutant(conc, &core.ChaosConfig{LostProgress: true}))
	// Data: completion published without running the body; the per-request
	// byte check sees the junk pre-fill.
	record("iconc/early-complete", true, runConcMutant(conc, &core.ChaosConfig{EarlyComplete: true}))
	// Data: the fused root stages sub-ops into swapped batch slots.
	record("iconc/fuse-corrupt", true, runConcMutant(conc, &core.ChaosConfig{FuseCorrupt: true}))

	// The same three on the real-concurrency backend. None of them injects
	// a data race (unlike StaleReady), so they run under the race detector
	// too; lost progress is caught by the wall-clock Test deadline.
	record("goconc/clean", false, runConcGxhc(conc, nil, nil, concCleanDeadline))
	record("goconc/lost-progress", true, runConcGxhc(conc, &gxhc.ChaosConfig{LostProgress: true}, nil, concMutantDeadline))
	record("goconc/early-complete", true, runConcGxhc(conc, &gxhc.ChaosConfig{EarlyComplete: true}, nil, concCleanDeadline))
	record("goconc/fuse-corrupt", true, runConcGxhc(conc, &gxhc.ChaosConfig{FuseCorrupt: true}, nil, concCleanDeadline))

	if includeGoComm {
		gc := base
		gc.Ranks = 9
		gc.Chunk = 4 << 10
		gc.Bytes = 64 << 10
		fs := faultSchedule() // the straggling root is what exposes the mutant
		record("gocomm/clean", false, runGoComm(gc, fs, nil, nil))
		record("gocomm/stale-ready", true, runGoComm(gc, fs, &gxhc.ChaosConfig{StaleReady: true}, nil))
	}
	return out
}

// SelfTestError folds outcomes into a single error (nil when all OK).
func SelfTestError(outs []MutationOutcome) error {
	for _, o := range outs {
		if !o.OK {
			return fmt.Errorf("mutation self-test: %s: %s", o.Name, o.Detail)
		}
	}
	return nil
}
