package verify

import "testing"

// TestMutationsCaught is the checker's self-test: the unmutated protocol
// passes (including under fault injection) and every seeded bug is
// detected. The gxhc mutant is excluded under the race detector because it
// injects a genuine data race (see race_on.go).
func TestMutationsCaught(t *testing.T) {
	for _, o := range RunMutationSelfTest(!raceEnabled) {
		if o.OK {
			if o.Mutant {
				t.Logf("%s: caught: %s", o.Name, o.Detail)
			}
			continue
		}
		if o.Mutant {
			t.Errorf("seeded bug %s was NOT caught", o.Name)
		} else {
			t.Errorf("clean control %s failed: %s", o.Name, o.Detail)
		}
	}
}
