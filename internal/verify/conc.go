package verify

import (
	"fmt"
	"time"

	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/gxhc"
	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// The concurrency phase (Case.Conc) runs several communicators with
// overlapping rank sets on one node at once, every member keeping
// InFlight non-blocking requests outstanding per communicator, for
// Rounds cycles. It checks, on the simulated backend:
//
//   - termination: a lost completion suspends a waiter forever and the
//     engine's deadlock detector converts it into a failure;
//   - per-communicator FIFO completion order, observed through
//     non-consuming Done peeks over each issue window;
//   - per-request byte-exactness against deterministic per-slot fills;
//   - control-line isolation: the writeTracker's single-writer and
//     cross-communicator aliasing checks over every flag write, plus a
//     demand that at least two distinct communicator namespaces actually
//     wrote flags (the splits really ran).
//
// The real-concurrency gxhc backend runs the same shape under real
// goroutine scheduling with a wall-clock Test deadline standing in for
// the deadlock detector.

// concCleanDeadline bounds a clean gxhc concurrency run; generous because
// CI machines stall. concMutantDeadline is the lost-progress detection
// window for the mutation self-test (any timeout is the catch there).
const (
	concCleanDeadline  = 30 * time.Second
	concMutantDeadline = 2 * time.Second
)

// concFill writes the deterministic payload of one (communicator, round,
// slot, member) input buffer.
func concFill(c Case, comm, round, slot, sub int, dst []byte) {
	r := rng{state: mix(c.CfgSeed^0x636f6e63, uint64(comm)<<24|uint64(round)<<16|uint64(slot)<<8|uint64(sub))}
	for i := range dst {
		dst[i] = byte(r.next())
	}
}

// concJunk is the recognizable pre-fill of every output buffer: a backend
// that publishes completion without moving data leaves it in place.
func concJunk(comm, round, slot int, dst []byte) {
	fillJunk(dst, uint64(comm)<<16|uint64(round)<<8|uint64(slot))
}

// concRanks resolves a ConcComm's parent-rank list (nil means all).
func concRanks(c Case, cm ConcComm) []int {
	if cm.Ranks != nil {
		return cm.Ranks
	}
	all := make([]int, c.Ranks)
	for i := range all {
		all[i] = i
	}
	return all
}

// concWant computes the expected result bytes of one (comm, round, slot)
// op: the root's fill for bcast, the member concatenation for allgather,
// nil for barrier.
func concWant(c Case, cm ConcComm, comm, round, slot int) []byte {
	switch cm.Kind {
	case KindBcast:
		w := make([]byte, cm.Bytes)
		concFill(c, comm, round, slot, cm.Root, w)
		return w
	case KindAllgather:
		members := concRanks(c, cm)
		w := make([]byte, 0, cm.Bytes*len(members))
		blk := make([]byte, cm.Bytes)
		for sub := range members {
			concFill(c, comm, round, slot, sub, blk)
			w = append(w, blk...)
		}
		return w
	}
	return nil
}

// runConcSim executes the case's concurrency phase on the simulated node.
func runConcSim(c Case, s Schedule, reg *obs.Registry) error {
	cc := c.Conc
	what := "xhc-conc"
	t, err := topo.New(c.Plat)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	m, err := t.Map(topo.MapCore, c.Ranks)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	w := env.NewWorld(t, m)
	eng := w.Sys.Eng
	applyEngine(eng, s)
	tracker := installTracker(w.Sys)
	if reg != nil && w.Obs == nil {
		wo := reg.NewWorld(what, t.NCores, obs.SimTicksPerUS, eng.Clock())
		wo.InitDistance(t, m)
		w.Obs = wo
		w.Sys.OnFlow = wo.FlowHook()
	}
	if w.Obs != nil {
		w.Obs.Rec.SetReplayToken(ReplayToken(c.CfgSeed, s.SchedSeed))
	}

	cfg, err := c.coreConfig()
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	parent, err := core.New(w, cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	comms := []*core.Comm{parent}
	for i := 1; i < len(cc.Comms); i++ {
		ch, err := parent.Split(cc.Comms[i].Ranks, fmt.Sprintf("%d", i))
		if err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
		comms = append(comms, ch)
	}

	// membership[i] maps parent rank -> communicator i's sub-rank.
	membership := make([]map[int]int, len(cc.Comms))
	for i, cm := range cc.Comms {
		membership[i] = make(map[int]int)
		for sub, rk := range concRanks(c, cm) {
			membership[i][rk] = sub
		}
	}

	// One input buffer per (comm, member, slot), reused across rounds; a
	// separate output per (comm, member, slot) where the kind needs one.
	ins := make([][][]*mem.Buffer, len(cc.Comms))
	outs := make([][][]*mem.Buffer, len(cc.Comms))
	for i, cm := range cc.Comms {
		members := concRanks(c, cm)
		ins[i] = make([][]*mem.Buffer, len(members))
		outs[i] = make([][]*mem.Buffer, len(members))
		for sub, rk := range members {
			ins[i][sub] = make([]*mem.Buffer, cc.InFlight)
			outs[i][sub] = make([]*mem.Buffer, cc.InFlight)
			for slot := 0; slot < cc.InFlight; slot++ {
				switch cm.Kind {
				case KindBcast:
					ins[i][sub][slot] = w.NewBufferAt(fmt.Sprintf("conc.%d.%d.%d", i, sub, slot), rk, cm.Bytes)
				case KindAllgather:
					ins[i][sub][slot] = w.NewBufferAt(fmt.Sprintf("conc.%d.%d.%d", i, sub, slot), rk, cm.Bytes)
					outs[i][sub][slot] = w.NewBufferAt(fmt.Sprintf("conc.o.%d.%d.%d", i, sub, slot), rk, cm.Bytes*len(members))
				}
			}
		}
	}

	var checkErr error
	noteErr := func(err error) {
		if checkErr == nil {
			checkErr = err
		}
	}
	runErr := w.Run(func(p *env.Proc) {
		// Per-communicator proc views of this rank (nil: not a member).
		procs := make([]*env.Proc, len(comms))
		for i := range comms {
			if sub, in := membership[i][p.Rank]; in {
				if i == 0 {
					procs[i] = p
				} else {
					procs[i] = comms[i].W.ProcOn(p.S, sub)
				}
			}
		}
		for round := 0; round < cc.Rounds; round++ {
			p.HarnessBarrier()
			for i, cm := range cc.Comms {
				if procs[i] == nil {
					continue
				}
				sub := membership[i][p.Rank]
				for slot := 0; slot < cc.InFlight; slot++ {
					switch cm.Kind {
					case KindBcast:
						if sub == cm.Root {
							concFill(c, i, round, slot, sub, ins[i][sub][slot].Data)
						} else {
							concJunk(i, round, slot, ins[i][sub][slot].Data)
						}
						p.Dirty(ins[i][sub][slot])
					case KindAllgather:
						concFill(c, i, round, slot, sub, ins[i][sub][slot].Data)
						p.Dirty(ins[i][sub][slot])
						concJunk(i, round, slot, outs[i][sub][slot].Data)
						p.Dirty(outs[i][sub][slot])
					}
				}
			}
			p.HarnessBarrier()
			if d := s.opDelay(p.Rank, round); d > 0 {
				if w.Obs != nil {
					if d >= 10*sim.Microsecond {
						w.Obs.Rec.CountFault(obs.FaultStraggler)
					} else {
						w.Obs.Rec.CountFault(obs.FaultPerturb)
					}
				}
				p.Compute(d)
			}
			// Issue slot-major so the communicators' streams interleave
			// request by request on every rank.
			reqs := make([][]*core.Request, len(comms))
			for slot := 0; slot < cc.InFlight; slot++ {
				for i, cm := range cc.Comms {
					if procs[i] == nil {
						continue
					}
					sub := membership[i][p.Rank]
					pi := procs[i]
					var r *core.Request
					switch cm.Kind {
					case KindBcast:
						r = comms[i].Ibcast(pi, ins[i][sub][slot], 0, cm.Bytes, cm.Root)
					case KindAllgather:
						r = comms[i].Iallgather(pi, ins[i][sub][slot], outs[i][sub][slot], cm.Bytes)
					case KindBarrier:
						r = comms[i].Ibarrier(pi)
					}
					reqs[i] = append(reqs[i], r)
				}
			}
			// FIFO completion order per communicator, observed without
			// consuming: whenever a later request is done, every earlier
			// one must be too.
			for i := range reqs {
				rs := reqs[i]
				for j := len(rs) - 1; j > 0; j-- {
					if rs[j].Done() && !rs[j-1].Done() {
						noteErr(fmt.Errorf("%s: round %d rank %d comm %d: request %d completed before request %d",
							what, round, p.Rank, i, j, j-1))
					}
				}
			}
			// Bounded Test polls (never unbounded: a lost completion must
			// fall through to Wait so the deadlock detector can fire), then
			// Wait out the rest in issue order.
			consumed := make([]int, len(comms))
			for poll := 0; poll < 2*cc.InFlight; poll++ {
				for i := range reqs {
					if consumed[i] < len(reqs[i]) && reqs[i][consumed[i]].Test(procs[i]) {
						consumed[i]++
					}
				}
			}
			for i := range reqs {
				for _, r := range reqs[i][consumed[i]:] {
					r.Wait(procs[i])
				}
			}
			p.HarnessBarrier()
			if p.Rank == 0 && checkErr == nil {
				noteErr(checkConcData(c, what, round, ins, outs))
			}
		}
	})
	fail := func(err error) error {
		if w.Obs != nil {
			w.Obs.Rec.DumpNow("failure", err.Error())
		}
		return err
	}
	if runErr != nil {
		return fail(fmt.Errorf("%s: %w", what, runErr))
	}
	if checkErr != nil {
		return fail(checkErr)
	}
	if err := tracker.err(); err != nil {
		return fail(fmt.Errorf("%s: %w", what, err))
	}
	if len(comms) > 1 && tracker.commTags() < 2 {
		return fail(fmt.Errorf("%s: %d communicators ran but only %d flag namespace(s) wrote flags",
			what, len(comms), tracker.commTags()))
	}
	return nil
}

// checkConcData compares every communicator's round results against the
// deterministic reference.
func checkConcData(c Case, what string, round int, ins, outs [][][]*mem.Buffer) error {
	cc := c.Conc
	for i, cm := range cc.Comms {
		members := concRanks(c, cm)
		for slot := 0; slot < cc.InFlight; slot++ {
			want := concWant(c, cm, i, round, slot)
			for sub := range members {
				switch cm.Kind {
				case KindBcast:
					if diffBytes(ins[i][sub][slot].Data, want) >= 0 {
						return dataError(fmt.Sprintf("%s: round %d comm %d slot %d", what, round, i, slot),
							round, sub, ins[i][sub][slot].Data, want)
					}
				case KindAllgather:
					if diffBytes(outs[i][sub][slot].Data, want) >= 0 {
						return dataError(fmt.Sprintf("%s: round %d comm %d slot %d", what, round, i, slot),
							round, sub, outs[i][sub][slot].Data, want)
					}
				}
			}
		}
	}
	return nil
}

// runConcGxhc executes the case's concurrency phase on the
// real-concurrency backend: one goroutine per parent rank, every split a
// self-contained gxhc communicator, completions consumed through Test
// loops bounded by a wall-clock deadline (the real-time stand-in for the
// simulator's deadlock detector — a lost completion times every rank
// out).
func runConcGxhc(c Case, chaos *gxhc.ChaosConfig, reg *obs.Registry, deadline time.Duration) error {
	cc := c.Conc
	what := "gxhc-conc"
	gcfg := gxhc.Config{
		GroupSize:  2 + int(c.CfgSeed%3),
		ChunkBytes: c.Chunk,
		Chaos:      chaos,
	}
	parent, err := gxhc.New(c.Ranks, gcfg)
	if err != nil {
		return err
	}
	comms := []*gxhc.Comm{parent}
	for i := 1; i < len(cc.Comms); i++ {
		ch, err := parent.Split(cc.Comms[i].Ranks)
		if err != nil {
			return err
		}
		comms = append(comms, ch)
	}
	var wo *obs.World
	if reg != nil {
		wo = reg.NewWorld(what, c.Ranks, obs.WallTicksPerUS, obs.WallClock())
		wo.Rec.Backend = what
		wo.Rec.SetReplayToken(ReplayToken(c.CfgSeed, 0))
		parent.AttachRecorder(wo.Rec)
	}

	membership := make([]map[int]int, len(cc.Comms))
	for i, cm := range cc.Comms {
		membership[i] = make(map[int]int)
		for sub, rk := range concRanks(c, cm) {
			membership[i][rk] = sub
		}
	}

	// All payloads are pre-filled and checked outside the goroutines, one
	// distinct buffer per (comm, member, round, slot): in-flight windows
	// never share bytes, so the post-run check is single-threaded.
	ins := make([][][][][]byte, len(cc.Comms))  // [comm][sub][round][slot]
	outs := make([][][][][]byte, len(cc.Comms)) // allgather outputs
	for i, cm := range cc.Comms {
		members := concRanks(c, cm)
		ins[i] = make([][][][]byte, len(members))
		outs[i] = make([][][][]byte, len(members))
		for sub := range members {
			ins[i][sub] = make([][][]byte, cc.Rounds)
			outs[i][sub] = make([][][]byte, cc.Rounds)
			for round := 0; round < cc.Rounds; round++ {
				ins[i][sub][round] = make([][]byte, cc.InFlight)
				outs[i][sub][round] = make([][]byte, cc.InFlight)
				for slot := 0; slot < cc.InFlight; slot++ {
					switch cm.Kind {
					case KindBcast:
						b := make([]byte, cm.Bytes)
						if sub == cm.Root {
							concFill(c, i, round, slot, sub, b)
						} else {
							concJunk(i, round, slot, b)
						}
						ins[i][sub][round][slot] = b
					case KindAllgather:
						b := make([]byte, cm.Bytes)
						concFill(c, i, round, slot, sub, b)
						ins[i][sub][round][slot] = b
						o := make([]byte, cm.Bytes*len(members))
						concJunk(i, round, slot, o)
						outs[i][sub][round][slot] = o
					}
				}
			}
		}
	}

	errs := make([]error, c.Ranks)
	done := make(chan int, c.Ranks)
	for r := 0; r < c.Ranks; r++ {
		go func(rank int) {
			defer func() { done <- rank }()
			limit := time.Now().Add(deadline)
			noteErr := func(err error) {
				if errs[rank] == nil {
					errs[rank] = err
				}
			}
			for round := 0; round < cc.Rounds; round++ {
				reqs := make([][]*gxhc.Request, len(comms))
				for slot := 0; slot < cc.InFlight; slot++ {
					for i, cm := range cc.Comms {
						sub, in := membership[i][rank]
						if !in {
							continue
						}
						var r *gxhc.Request
						switch cm.Kind {
						case KindBcast:
							r = comms[i].Ibcast(sub, ins[i][sub][round][slot], cm.Root)
						case KindAllgather:
							r = comms[i].Iallgather(sub, ins[i][sub][round][slot], outs[i][sub][round][slot])
						case KindBarrier:
							r = comms[i].Ibarrier(sub)
						}
						reqs[i] = append(reqs[i], r)
					}
				}
				for i := range reqs {
					rs := reqs[i]
					for j := len(rs) - 1; j > 0; j-- {
						if rs[j].Done() && !rs[j-1].Done() {
							noteErr(fmt.Errorf("%s: round %d rank %d comm %d: request %d completed before request %d",
								what, round, rank, i, j, j-1))
						}
					}
				}
				for i := range reqs {
					for j, r := range reqs[i] {
						for !r.Test() {
							if time.Now().After(limit) {
								noteErr(fmt.Errorf("%s: round %d rank %d comm %d: request %d never completed within %v (lost progress)",
									what, round, rank, i, j, deadline))
								return
							}
						}
					}
				}
			}
		}(r)
	}
	timedOut := false
	for n := 0; n < c.Ranks; n++ {
		<-done
	}
	for _, e := range errs {
		if e != nil {
			timedOut = true
		}
	}
	// Workers of a timed-out run still hold queued requests; skip Close
	// (the communicators are garbage after this either way) but report.
	if !timedOut {
		for _, cm := range comms {
			cm.Close()
		}
	}
	if wo != nil {
		wo.Finish(mem.Stats{}, sim.EngineStats{})
	}
	for _, e := range errs {
		if e != nil {
			if wo != nil {
				wo.Rec.DumpNow("failure", e.Error())
			}
			return e
		}
	}
	// Byte-exactness, single-threaded after every goroutine joined.
	for i, cm := range cc.Comms {
		members := concRanks(c, cm)
		for round := 0; round < cc.Rounds; round++ {
			for slot := 0; slot < cc.InFlight; slot++ {
				want := concWant(c, cm, i, round, slot)
				for sub := range members {
					var got []byte
					switch cm.Kind {
					case KindBcast:
						got = ins[i][sub][round][slot]
					case KindAllgather:
						got = outs[i][sub][round][slot]
					default:
						continue
					}
					if diffBytes(got, want) >= 0 {
						err := dataError(fmt.Sprintf("%s: round %d comm %d slot %d", what, round, i, slot),
							round, sub, got, want)
						if wo != nil {
							wo.Rec.DumpNow("failure", err.Error())
						}
						return err
					}
				}
			}
		}
	}
	return nil
}
