package verify

import (
	"encoding/binary"
	"fmt"

	"xhc/internal/baselines"
	"xhc/internal/coll"
	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// ReplayToken renders the (config, schedule) seed pair the way
// `xhcverify -replay` accepts it, so flight dumps name the exact run that
// reproduces them.
func ReplayToken(cfgSeed, schedSeed uint64) string {
	return fmt.Sprintf("%#016x:%#016x", cfgSeed, schedSeed)
}

// applyEngine installs the schedule's tie-breaker and wake jitter on a
// fresh engine. Everything derives from SchedSeed, so a replay installs
// bit-identical streams.
func applyEngine(eng *sim.Engine, s Schedule) {
	switch s.Tie {
	case 1:
		eng.SetTieBreaker(sim.NewRandomTieBreaker(mix(s.SchedSeed, 1)))
	case 2:
		eng.SetTieBreaker(sim.NewPCTTieBreaker(mix(s.SchedSeed, 2), 0))
	}
	if s.WakeJitterPS > 0 {
		jr := rng{state: mix(s.SchedSeed, 3)}
		span := uint64(s.WakeJitterPS)
		eng.SetWakeJitter(func() sim.Duration { return sim.Duration(jr.next() % span) })
	}
}

// opDelay is the fault-injected compute perturbation of one rank before
// one op: roughly a quarter of the ranks become stragglers (tens to
// hundreds of microseconds late); everyone else gets nanosecond-scale
// jitter. Zero without faults.
func (s Schedule) opDelay(rank, op int) sim.Duration {
	if !s.Faults {
		return 0
	}
	h := mix(s.SchedSeed, uint64(rank)<<16|uint64(op))
	if h%4 == 0 {
		us := 10 + (h>>8)%490
		return sim.Duration(us) * sim.Microsecond
	}
	ns := (h >> 8) % 2000
	return sim.Duration(ns) * sim.Nanosecond
}

// memSnap is the bounded-control-memory measurement after one op.
type memSnap struct {
	lines int64
	bufs  int
}

// runSim executes one case on the simulated node and checks every
// invariant: the engine terminates (no deadlock, no panicking process),
// every rank ends every op with the reference bytes, no coherence line
// holding control flags is written by two cores, and control-structure
// allocation stops growing after the first operation. It returns the
// schedule fingerprint alongside the verdict.
func runSim(c Case, s Schedule, what string, reg *obs.Registry,
	build func(w *env.World) (coll.Component, *core.Comm, error)) (uint64, error) {

	t, err := topo.New(c.Plat)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	m, err := t.Map(topo.MapCore, c.Ranks)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	w := env.NewWorld(t, m)
	eng := w.Sys.Eng
	applyEngine(eng, s)
	eng.EnableScheduleHash()
	tracker := installTracker(w.Sys)
	// Observe the world through the sweep's registry (unless a process-wide
	// env.Observer already did) and stamp the recorder with the replay
	// token, so an anomaly or failure dump names the run that reproduces it.
	if reg != nil && w.Obs == nil {
		wo := reg.NewWorld(what, t.NCores, obs.SimTicksPerUS, eng.Clock())
		wo.InitDistance(t, m)
		w.Obs = wo
		w.Sys.OnFlow = wo.FlowHook()
	}
	if w.Obs != nil {
		w.Obs.Rec.SetReplayToken(ReplayToken(c.CfgSeed, s.SchedSeed))
	}

	comp, xc, err := build(w)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	// The base Component interface carries bcast and allreduce; the other
	// collectives are capabilities only some components implement (the case
	// derivation and the pinned grids pair them accordingly).
	var (
		barrier   baselines.Barrierer
		reducer   baselines.Reducer
		gatherer  baselines.Allgatherer
		scatterer baselines.Scatterer
		ok        bool
	)
	switch c.Kind {
	case KindBarrier:
		if barrier, ok = comp.(baselines.Barrierer); !ok {
			return 0, fmt.Errorf("%s: component lacks Barrier", what)
		}
	case KindReduce:
		if reducer, ok = comp.(baselines.Reducer); !ok {
			return 0, fmt.Errorf("%s: component lacks Reduce", what)
		}
	case KindAllgather:
		if gatherer, ok = comp.(baselines.Allgatherer); !ok {
			return 0, fmt.Errorf("%s: component lacks Allgather", what)
		}
	case KindScatter:
		if scatterer, ok = comp.(baselines.Scatterer); !ok {
			return 0, fmt.Errorf("%s: component lacks Scatter", what)
		}
	}
	ref := buildRef(c)

	// Result buffers: per-rank blocks for most kinds, the full Ranks*Bytes
	// concatenation for allgather, an 8-byte arrival stamp for barrier.
	rlen := c.Bytes
	switch c.Kind {
	case KindBarrier:
		rlen = 8
	case KindAllgather:
		rlen = c.Bytes * c.Ranks
	}
	rbufs := make([]*mem.Buffer, c.Ranks)
	var sbufs []*mem.Buffer
	for r := 0; r < c.Ranks; r++ {
		rbufs[r] = w.NewBufferAt(fmt.Sprintf("vrf.r.%d", r), r, rlen)
	}
	switch c.Kind {
	case KindAllreduce, KindReduce, KindAllgather:
		sbufs = make([]*mem.Buffer, c.Ranks)
		for r := 0; r < c.Ranks; r++ {
			sbufs[r] = w.NewBufferAt(fmt.Sprintf("vrf.s.%d", r), r, c.Bytes)
		}
	case KindScatter:
		sbufs = make([]*mem.Buffer, c.Ranks)
		sbufs[c.Root] = w.NewBufferAt(fmt.Sprintf("vrf.s.%d", c.Root), c.Root, c.Bytes*c.Ranks)
	}

	// Registration-cache eviction faults: drop random ranks' caches at
	// fixed virtual times mid-run, as an adversarial stand-in for capacity
	// evictions. Only the XHC communicator exposes its caches.
	if s.Faults && xc != nil {
		dr := rng{state: mix(s.SchedSeed, 7)}
		for i := 0; i < 3; i++ {
			at := sim.Time(10+dr.next()%990) * sim.Time(sim.Microsecond)
			rank := int(dr.next() % uint64(c.Ranks))
			eng.At(at, func() {
				xc.Cache(rank).Drop()
				if w.Obs != nil {
					w.Obs.Rec.CountFault(obs.FaultEviction)
				}
			})
		}
	}

	var checkErr error
	snaps := make([]memSnap, c.Ops)
	runErr := w.Run(func(p *env.Proc) {
		for op := 0; op < c.Ops; op++ {
			if c.Switch != nil && xc != nil && op == c.Switch.AfterOp+1 {
				// Mid-run tuning switch: every rank applies the new plan at
				// this op boundary (the barrier sandwich inside ApplyTuning
				// quiesces the communicator). Only the XHC communicator is
				// retuned — baselines have no tunable knobs — and the data
				// oracle below must stay byte-exact regardless.
				xc.ApplyTuning(p, c.Switch.coreTuning())
			}
			p.HarnessBarrier()
			// Refill this rank's buffers (harness scaffolding: direct
			// writes plus a residency mark, no model time).
			switch c.Kind {
			case KindBcast:
				copy(rbufs[p.Rank].Data, ref.fill[op][p.Rank])
				p.Dirty(rbufs[p.Rank])
			case KindBarrier:
				// Stamps are written op-synchronously below.
			case KindScatter:
				if p.Rank == c.Root {
					copy(sbufs[p.Rank].Data, ref.fill[op][p.Rank])
					p.Dirty(sbufs[p.Rank])
				}
				fillJunk(rbufs[p.Rank].Data, uint64(op))
				p.Dirty(rbufs[p.Rank])
			default: // allreduce, reduce, allgather
				copy(sbufs[p.Rank].Data, ref.fill[op][p.Rank])
				p.Dirty(sbufs[p.Rank])
				fillJunk(rbufs[p.Rank].Data, uint64(op))
				p.Dirty(rbufs[p.Rank])
			}
			p.HarnessBarrier()
			if d := s.opDelay(p.Rank, op); d > 0 {
				if w.Obs != nil {
					if d >= 10*sim.Microsecond {
						w.Obs.Rec.CountFault(obs.FaultStraggler)
					} else {
						w.Obs.Rec.CountFault(obs.FaultPerturb)
					}
				}
				p.Compute(d)
			}
			switch c.Kind {
			case KindBcast:
				comp.Bcast(p, rbufs[p.Rank], 0, c.Bytes, c.Root)
			case KindAllreduce:
				comp.Allreduce(p, sbufs[p.Rank], rbufs[p.Rank], c.Bytes, c.Dt, c.Op)
			case KindReduce:
				reducer.Reduce(p, sbufs[p.Rank], rbufs[p.Rank], c.Bytes, c.Dt, c.Op, c.Root)
			case KindAllgather:
				gatherer.Allgather(p, sbufs[p.Rank], rbufs[p.Rank], c.Bytes)
			case KindScatter:
				scatterer.Scatter(p, sbufs[c.Root], rbufs[p.Rank], c.Bytes, c.Root)
			case KindBarrier:
				// Publish this op's arrival stamp (after any straggler
				// delay), enter the barrier, and on exit demand every peer's
				// stamp is current: no rank may leave a barrier a peer has
				// not yet entered.
				binary.LittleEndian.PutUint64(rbufs[p.Rank].Data, uint64(op+1))
				p.Dirty(rbufs[p.Rank])
				barrier.Barrier(p)
				if checkErr == nil {
					for rk := 0; rk < c.Ranks; rk++ {
						if got := binary.LittleEndian.Uint64(rbufs[rk].Data); got < uint64(op+1) {
							checkErr = fmt.Errorf("%s: op %d: rank %d left the barrier while rank %d's stamp is %d (want %d)",
								what, op, p.Rank, rk, got, op+1)
							break
						}
					}
				}
			}
			p.HarnessBarrier()
			if p.Rank == 0 {
				if checkErr == nil {
					checkErr = checkData(c, ref, rbufs, what, op)
				}
				snaps[op] = memSnap{lines: w.Sys.Stats.LinesAllocated, bufs: w.Sys.BuffersAllocated()}
			}
		}
	})
	hash := eng.ScheduleHash()
	// Any invariant failure dumps the flight recorder: the last N ops of
	// every rank, with the replay token, are the forensic record.
	fail := func(err error) (uint64, error) {
		if w.Obs != nil {
			w.Obs.Rec.DumpNow("failure", err.Error())
		}
		return hash, err
	}
	if runErr != nil {
		return fail(fmt.Errorf("%s: %w", what, runErr))
	}
	if checkErr != nil {
		return fail(checkErr)
	}
	if err := tracker.err(); err != nil {
		return fail(fmt.Errorf("%s: %w", what, err))
	}
	// Control structures are per-communicator: lazily built state may be
	// allocated during the first op, but from then on the counts must not
	// move. A mid-run tuning switch re-baselines once: the first op under
	// the new plan may lazily build the other data path's state (a moved
	// CICO boundary sends ops through exposure structures the old plan
	// never touched), after which the counts must again stay flat.
	base := 1
	for op := 2; op < c.Ops; op++ {
		if c.Switch != nil && xc != nil && op == c.Switch.AfterOp+1 {
			base = op
			continue
		}
		if snaps[op] != snaps[base] {
			return fail(fmt.Errorf("%s: control memory grows per operation: %d lines/%d buffers after op %d, %d/%d after op %d",
				what, snaps[base].lines, snaps[base].bufs, base+1, snaps[op].lines, snaps[op].bufs, op+1))
		}
	}
	return hash, nil
}

// checkData is the post-op oracle: every rank's result bytes against the
// reference, per the kind's contract. For the rooted collectives it also
// demands non-participating result buffers kept their junk — a backend must
// never use another rank's user buffer as scratch.
func checkData(c Case, ref *refData, rbufs []*mem.Buffer, what string, op int) error {
	switch c.Kind {
	case KindBcast, KindAllreduce:
		for rk := 0; rk < c.Ranks; rk++ {
			if diffBytes(rbufs[rk].Data[:c.Bytes], ref.want[op]) >= 0 {
				return dataError(what, op, rk, rbufs[rk].Data[:c.Bytes], ref.want[op])
			}
		}
	case KindReduce:
		if diffBytes(rbufs[c.Root].Data[:c.Bytes], ref.want[op]) >= 0 {
			return dataError(what, op, c.Root, rbufs[c.Root].Data[:c.Bytes], ref.want[op])
		}
		junk := make([]byte, c.Bytes)
		fillJunk(junk, uint64(op))
		for rk := 0; rk < c.Ranks; rk++ {
			if rk == c.Root {
				continue
			}
			if i := diffBytes(rbufs[rk].Data[:c.Bytes], junk); i >= 0 {
				return fmt.Errorf("%s: op %d: non-root rank %d result buffer written at byte %d", what, op, rk, i)
			}
		}
	case KindAllgather:
		n := c.Bytes * c.Ranks
		for rk := 0; rk < c.Ranks; rk++ {
			if diffBytes(rbufs[rk].Data[:n], ref.want[op]) >= 0 {
				return dataError(what, op, rk, rbufs[rk].Data[:n], ref.want[op])
			}
		}
	case KindScatter:
		for rk := 0; rk < c.Ranks; rk++ {
			want := ref.want[op][rk*c.Bytes : (rk+1)*c.Bytes]
			if diffBytes(rbufs[rk].Data[:c.Bytes], want) >= 0 {
				return dataError(what, op, rk, rbufs[rk].Data[:c.Bytes], want)
			}
		}
	}
	return nil
}

// RunCase checks one (case, schedule) pair across backends: the XHC
// communicator under the full invariant set, the case's baseline
// component, and the real-concurrency gxhc backend, all against the same
// reference bytes. The returned fingerprint identifies the XHC run's
// schedule.
func RunCase(c Case, s Schedule) (uint64, error) {
	return RunCaseObs(c, s, nil)
}

// RunCaseObs is RunCase with every backend's run observed through reg
// (nil for unobserved runs): latencies feed the registry's histograms,
// injected faults its counters, and failures dump the flight recorder
// with this run's replay token attached.
func RunCaseObs(c Case, s Schedule, reg *obs.Registry) (uint64, error) {
	cfg, err := c.coreConfig()
	if err != nil {
		return 0, err
	}
	hash, err := runSim(c, s, "xhc", reg, func(w *env.World) (coll.Component, *core.Comm, error) {
		cc, err := core.New(w, cfg)
		return cc, cc, err
	})
	if err != nil {
		return hash, err
	}
	if _, err := runSim(c, s, c.Baseline, reg, func(w *env.World) (coll.Component, *core.Comm, error) {
		comp, err := coll.New(c.Baseline, w)
		return comp, nil, err
	}); err != nil {
		return hash, err
	}
	if err := runGoComm(c, s, nil, reg); err != nil {
		return hash, err
	}
	// The concurrency phase runs last, in fresh worlds, so the runs above
	// (and the schedule fingerprint already computed) are untouched by it.
	if c.Conc != nil {
		if err := runConcSim(c, s, reg); err != nil {
			return hash, err
		}
		if err := runConcGxhc(c, nil, reg, concCleanDeadline); err != nil {
			return hash, err
		}
	}
	return hash, nil
}
