package verify

import (
	"runtime"
	"testing"
)

// TestClusterSweep is the cluster analogue of the single-node exploration
// sweep: randomized multi-node cases under several schedules, each run
// doubling as a sequential-vs-sharded fingerprint comparison.
func TestClusterSweep(t *testing.T) {
	o := Options{Configs: 6, Schedules: 3}
	if testing.Short() {
		o = Options{Configs: 3, Schedules: 2}
	}
	sum := ExploreCluster(o)
	for _, f := range sum.Failures {
		t.Errorf("replay %s: %s / %s: %s", ReplayToken(f.CfgSeed, f.SchedSeed), f.Case, f.Sched, f.Err)
	}
	if sum.DistinctSchedules < 2 {
		t.Errorf("sweep explored only %d distinct schedules", sum.DistinctSchedules)
	}
}

// Pinned cluster replays: (cluster seed, schedule seed) pairs with their
// recorded combined fingerprints. Unlike regressionPairs these did not come
// from bug reports — they pin the cluster derivation and the sharded-engine
// schedule bit-exactly, so any drift in DeriveClusterCase, the fabric
// model, or the coordinator's wake order shows up here.
var clusterPins = []struct {
	name        string
	cfgSeed     uint64
	schedSeed   uint64 // mixed below; 1 means mix(cfgSeed, 1)
	fingerprint uint64
}{
	{name: "cluster-bcast-jittered", cfgSeed: 1, schedSeed: 1, fingerprint: 0x6b687a66169a38af},
	{name: "cluster-reduce-nonzero-root", cfgSeed: 3, schedSeed: 1, fingerprint: 0x1423389771f9492b},
}

func clusterPinSched(p struct {
	name        string
	cfgSeed     uint64
	schedSeed   uint64
	fingerprint uint64
}) uint64 {
	if p.schedSeed == 0 {
		return 0
	}
	return mix(p.cfgSeed, p.schedSeed)
}

func TestClusterPinnedReplays(t *testing.T) {
	for _, p := range clusterPins {
		p := p
		t.Run(p.name, func(t *testing.T) {
			h, err := ReplayCluster(p.cfgSeed, clusterPinSched(p))
			if err != nil {
				t.Fatalf("cluster replay %s failed: %v", ReplayToken(p.cfgSeed, clusterPinSched(p)), err)
			}
			if h != p.fingerprint {
				t.Errorf("cluster replay %s fingerprint %#016x, want %#016x (schedule drifted; if the model change is intentional, re-pin)",
					ReplayToken(p.cfgSeed, clusterPinSched(p)), h, p.fingerprint)
			}
		})
	}
}

// TestReplayPortableAcrossGOMAXPROCS pins replay-token portability: the
// same (config, schedule) pair must reproduce the same fingerprint at
// GOMAXPROCS 1, 2 and 8 — for the classic single-node replays (one engine,
// trivially serial) AND for cluster replays, whose shards genuinely run on
// however many processors the runtime grants. A failure here means
// fingerprints leaked a dependence on shard interleaving and every
// `xhcverify -replay` token in old failure reports is suspect.
func TestReplayPortableAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, gmp := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(gmp)
		for _, rp := range regressionPairs {
			h, err := Replay(rp.cfgSeed, rp.schedSeed)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d: replay %s failed: %v", gmp, ReplayToken(rp.cfgSeed, rp.schedSeed), err)
			}
			if h != rp.fingerprint {
				t.Errorf("GOMAXPROCS=%d: replay %s fingerprint %#016x, want %#016x",
					gmp, ReplayToken(rp.cfgSeed, rp.schedSeed), h, rp.fingerprint)
			}
		}
		for _, p := range clusterPins {
			h, err := ReplayCluster(p.cfgSeed, clusterPinSched(p))
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d: cluster replay %s failed: %v", gmp, ReplayToken(p.cfgSeed, clusterPinSched(p)), err)
			}
			if h != p.fingerprint {
				t.Errorf("GOMAXPROCS=%d: cluster replay %s fingerprint %#016x, want %#016x",
					gmp, ReplayToken(p.cfgSeed, clusterPinSched(p)), h, p.fingerprint)
			}
		}
	}
}
