//go:build race

package verify

// raceEnabled reports whether the race detector is compiled in. The gxhc
// StaleReady mutant injects a genuine data race; under the detector it
// would abort the process instead of failing a comparison, so the
// self-test skips it (the abort itself would be a detection, just not one
// a test can assert on).
const raceEnabled = true
