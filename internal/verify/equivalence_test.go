package verify

import (
	"testing"

	"xhc/internal/core"
	"xhc/internal/mpi"
)

// TestCrossBackendEquivalence pins a grid of configurations and byte-
// compares the XHC communicator, a registry baseline and the gxhc backend
// against the exact reference on each — the differential check as a plain
// go-test, independent of the randomized sweep.
func TestCrossBackendEquivalence(t *testing.T) {
	type row struct {
		plat     int // index into platforms
		ranks    int
		root     int
		sens     string
		kind     OpKind
		bytes    int
		dt       mpi.Datatype
		op       mpi.Op
		baseline string
	}
	grid := []row{
		{0, 8, 0, "", KindBcast, 0, mpi.Byte, mpi.Sum, "tuned"},
		{0, 8, 0, "numa", KindBcast, 1 << 10, mpi.Byte, mpi.Sum, "ucc"},
		{1, 8, 0, "numa", KindBcast, 100, mpi.Byte, mpi.Sum, "sm"},
		{1, 7, 0, "numa", KindBcast, 64 << 10, mpi.Byte, mpi.Sum, "smhc-tree"},
		{2, 16, 0, "numa+socket", KindBcast, 40000, mpi.Byte, mpi.Sum, "xbrc"},
		{4, 12, 0, "numa", KindBcast, 16 << 10, mpi.Byte, mpi.Sum, "tuned"},
		{0, 8, 0, "numa", KindAllreduce, 1 << 10, mpi.Float64, mpi.Sum, "tuned"},
		{1, 8, 0, "numa", KindAllreduce, 4 << 10, mpi.Float32, mpi.Prod, "ucc"},
		{2, 16, 0, "numa+socket", KindAllreduce, 64 << 10, mpi.Float64, mpi.Sum, "smhc-flat"},
		{2, 13, 0, "socket", KindAllreduce, 1000, mpi.Int32, mpi.Max, "sm"},
		{4, 16, 0, "numa", KindAllreduce, 16 << 10, mpi.Int64, mpi.Min, "xbrc"},
		{4, 9, 0, "", KindAllreduce, 8, mpi.Float64, mpi.Sum, "ucc"},
		// Barrier has no payload; the arrival-stamp protocol is the oracle.
		{0, 8, 0, "", KindBarrier, 0, mpi.Byte, mpi.Sum, "tuned"},
		{2, 16, 0, "numa+socket", KindBarrier, 0, mpi.Byte, mpi.Sum, "sm"},
		{4, 13, 0, "numa", KindBarrier, 0, mpi.Byte, mpi.Sum, "tuned"},
		// Rooted reduce: single-element and odd-size edges, non-zero roots.
		{0, 8, 3, "numa", KindReduce, 8, mpi.Float64, mpi.Sum, "tuned"},
		{1, 8, 7, "numa", KindReduce, 64 << 10, mpi.Float64, mpi.Sum, "xbrc"},
		{2, 16, 5, "numa+socket", KindReduce, 1000, mpi.Int32, mpi.Max, "sm"},
		{2, 13, 0, "socket", KindReduce, 4, mpi.Float32, mpi.Prod, "tuned"},
		{4, 16, 11, "numa", KindReduce, 16 << 10, mpi.Int64, mpi.Min, "xbrc"},
		// Allgather: zero-byte and single-byte blocks next to the round sizes.
		{0, 8, 0, "", KindAllgather, 0, mpi.Byte, mpi.Sum, "tuned"},
		{1, 8, 0, "numa", KindAllgather, 1, mpi.Byte, mpi.Sum, "sm"},
		{2, 16, 0, "numa+socket", KindAllgather, 40000, mpi.Byte, mpi.Sum, "tuned"},
		{4, 12, 0, "numa", KindAllgather, 1 << 10, mpi.Byte, mpi.Sum, "sm"},
		// Scatter: same edges, with non-zero roots crossing group boundaries.
		{0, 8, 5, "numa", KindScatter, 0, mpi.Byte, mpi.Sum, "tuned"},
		{1, 8, 7, "numa", KindScatter, 1, mpi.Byte, mpi.Sum, "sm"},
		{2, 16, 9, "numa+socket", KindScatter, 16 << 10, mpi.Byte, mpi.Sum, "tuned"},
		{4, 13, 0, "", KindScatter, 100, mpi.Byte, mpi.Sum, "sm"},
	}
	for _, g := range grid {
		c := Case{
			CfgSeed:       uint64(g.plat)<<8 | uint64(g.ranks),
			Plat:          platforms[g.plat],
			Ranks:         g.ranks,
			Root:          g.root,
			Sens:          g.sens,
			Kind:          g.kind,
			Bytes:         g.bytes,
			Dt:            g.dt,
			Op:            g.op,
			Chunk:         4 << 10,
			CICOThreshold: 1 << 10,
			Flags:         core.SingleFlag,
			RegCache:      true,
			Baseline:      g.baseline,
			Ops:           3,
		}
		if _, err := RunCase(c, Schedule{}); err != nil {
			t.Errorf("%s: %v", c, err)
		}
	}
}
