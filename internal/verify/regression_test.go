package verify

import "testing"

// Replay pairs that once exposed real protocol bugs, pinned bit-exactly.
// Each entry re-runs the exact (config seed, schedule seed) pair from the
// original failure report and asserts the run passes AND reproduces the
// recorded schedule fingerprint — so a regression shows up either as the
// old failure or as an unexplained schedule drift.
var regressionPairs = []struct {
	name        string
	cfgSeed     uint64
	schedSeed   uint64
	fingerprint uint64
	bug         string
}{
	{
		name:        "smhc-tree-deadlock",
		cfgSeed:     0xaeac1cb7711db91f,
		schedSeed:   0x767198908785124a,
		fingerprint: 0xc928eed37ebe5d4d,
		bug:         "smhc-tree hung when root != 0: the root never announced its staged bytes to its led groups",
	},
	{
		name:        "gxhc-reduce-buffer-reuse",
		cfgSeed:     0x48a59766459b7047,
		schedSeed:   0,
		fingerprint: 0x671033d1e26db721,
		bug:         "rooted reduce let a member return (and its caller refill src) while a sibling reducer was still reading it",
	},
}

func TestRegressionReplays(t *testing.T) {
	for _, rp := range regressionPairs {
		rp := rp
		t.Run(rp.name, func(t *testing.T) {
			t.Logf("bug: %s", rp.bug)
			h, err := Replay(rp.cfgSeed, rp.schedSeed)
			if err != nil {
				t.Fatalf("replay %s failed: %v", ReplayToken(rp.cfgSeed, rp.schedSeed), err)
			}
			if h != rp.fingerprint {
				t.Errorf("replay %s fingerprint %#016x, want %#016x (schedule drifted; if the protocol change is intentional, re-pin)",
					ReplayToken(rp.cfgSeed, rp.schedSeed), h, rp.fingerprint)
			}
		})
	}
}
