package verify

import (
	"reflect"
	"testing"
)

// TestDerivationDeterministic pins that case and schedule derivation are
// pure functions of their seeds (replay depends on it). Structural
// comparison, because the concurrency phase hangs off a freshly allocated
// pointer per derivation.
func TestDerivationDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 50; seed++ {
		a, b := DeriveCase(seed), DeriveCase(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("DeriveCase(%d) not deterministic: %+v vs %+v", seed, a, b)
		}
		sa, sb := DeriveSchedule(seed), DeriveSchedule(seed)
		if sa != sb {
			t.Fatalf("DeriveSchedule(%d) not deterministic: %+v vs %+v", seed, sa, sb)
		}
	}
}

// TestExploreSmallSweep runs a reduced sweep: it must pass clean and must
// visit genuinely distinct schedules.
func TestExploreSmallSweep(t *testing.T) {
	sum := Explore(Options{Configs: 4, Schedules: 4, Seed: 7})
	for _, f := range sum.Failures {
		t.Errorf("case %s / %s failed: %s (replay %#x:%#x)", f.Case, f.Sched, f.Err, f.CfgSeed, f.SchedSeed)
	}
	if sum.Runs != 16 {
		t.Errorf("Runs = %d, want 16", sum.Runs)
	}
	if sum.DistinctSchedules < 10 {
		t.Errorf("DistinctSchedules = %d, want >= 10", sum.DistinctSchedules)
	}
}

// TestReplayReproducesFingerprint asserts a (config, schedule) pair replays
// to the same schedule fingerprint, run to run.
func TestReplayReproducesFingerprint(t *testing.T) {
	for _, pair := range [][2]uint64{{3, 0}, {3, 0x9a1f}, {11, 0x77}} {
		h1, err1 := Replay(pair[0], pair[1])
		h2, err2 := Replay(pair[0], pair[1])
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("replay %#x:%#x verdict flapped: %v vs %v", pair[0], pair[1], err1, err2)
		}
		if err1 != nil {
			t.Fatalf("replay %#x:%#x failed: %v", pair[0], pair[1], err1)
		}
		if h1 != h2 {
			t.Errorf("replay %#x:%#x fingerprint flapped: %#x vs %#x", pair[0], pair[1], h1, h2)
		}
	}
}
