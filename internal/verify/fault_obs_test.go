package verify

import (
	"strconv"
	"strings"
	"testing"

	"xhc/internal/obs"
	"xhc/internal/sim"
)

// Fixture seeds: a case/schedule pair with faults enabled that passes all
// invariants while injecting stragglers large enough to trip the detector
// (found by sweep; any faulted passing pair works).
const (
	fixtureCfgSeed   = 0x11f4e542e96f3321
	fixtureSchedSeed = 0x56684096c44a5742
)

// TestInjectedFaultCountsObserved pins the fault-injection satellite:
// every injected sim-level fault is visible in the registry, and the
// observed counts equal an independent recount of the injection plan.
// opDelay is a pure function of (schedule seed, rank, op), and RunCaseObs
// executes two observed sim runs (xhc and the baseline) over the same
// schedule, so the expected totals are exactly twice the per-run plan.
func TestInjectedFaultCountsObserved(t *testing.T) {
	c, s := DeriveCase(fixtureCfgSeed), DeriveSchedule(fixtureSchedSeed)
	if !s.Faults {
		t.Fatal("fixture schedule has faults disabled")
	}
	reg := obs.NewRegistry(false)
	if _, err := RunCaseObs(c, s, reg); err != nil {
		t.Fatalf("fixture run failed: %v", err)
	}

	var wantStrag, wantPerturb int64
	for rank := 0; rank < c.Ranks; rank++ {
		for op := 0; op < c.Ops; op++ {
			d := s.opDelay(rank, op)
			switch {
			case d >= 10*sim.Microsecond:
				wantStrag++
			case d > 0:
				wantPerturb++
			}
		}
	}
	wantStrag *= 2
	wantPerturb *= 2
	if wantStrag == 0 {
		t.Fatal("fixture injects no stragglers; pick different seeds")
	}

	if got := reg.FaultCount(obs.FaultStraggler); got != wantStrag {
		t.Errorf("straggler count: injected %d, observed %d", wantStrag, got)
	}
	if got := reg.FaultCount(obs.FaultPerturb); got != wantPerturb {
		t.Errorf("perturbation count: injected %d, observed %d", wantPerturb, got)
	}
	if got := reg.FaultCount(obs.FaultGxhcStraggler); got == 0 {
		t.Error("gxhc straggler injections not observed")
	}
}

// TestStragglerAnomalyDumpsFlightRecorder pins the anomaly loop: an
// injected straggler trips the detector, bumps the anomaly counters and
// dumps the flight recorder with the offending op marked and a replay
// token that parses back to this exact run.
func TestStragglerAnomalyDumpsFlightRecorder(t *testing.T) {
	c, s := DeriveCase(fixtureCfgSeed), DeriveSchedule(fixtureSchedSeed)
	reg := obs.NewRegistry(false)
	if _, err := RunCaseObs(c, s, reg); err != nil {
		t.Fatalf("fixture run failed: %v", err)
	}

	snap := reg.Snapshot()
	if n := snap.Value("anomaly.stragglers"); n < 1 {
		t.Fatalf("anomaly.stragglers = %v, want >= 1", n)
	}
	dumps := reg.Dumps()
	if len(dumps) == 0 {
		t.Fatal("no flight dumps registered")
	}
	wantTok := ReplayToken(c.CfgSeed, s.SchedSeed)
	for _, d := range dumps {
		if d.Kind != "straggler" {
			t.Errorf("dump kind = %q", d.Kind)
		}
		if d.ReplayToken != wantTok {
			t.Errorf("dump token = %q, want %q", d.ReplayToken, wantTok)
		}
		var offending int
		for _, rec := range d.Records {
			if rec.Offending {
				offending++
				if int(rec.Lane) != d.OffLane || rec.Seq != d.OffSeq {
					t.Errorf("offending record lane/seq %d/%d, dump header %d/%d",
						rec.Lane, rec.Seq, d.OffLane, d.OffSeq)
				}
			}
		}
		if offending != 1 {
			t.Errorf("dump has %d offending records, want exactly 1", offending)
		}
		// The token round-trips through the format xhcverify -replay parses.
		parts := strings.SplitN(d.ReplayToken, ":", 2)
		if len(parts) != 2 {
			t.Fatalf("token %q not cfgseed:schedseed", d.ReplayToken)
		}
		for i, p := range parts {
			v, err := strconv.ParseUint(strings.TrimPrefix(p, "0x"), 16, 64)
			if err != nil {
				t.Fatalf("token part %q: %v", p, err)
			}
			if want := []uint64{c.CfgSeed, s.SchedSeed}[i]; v != want {
				t.Errorf("token part %d = %#x, want %#x", i, v, want)
			}
		}
	}
}

// TestUnobservedRunMatchesObserved: attaching the registry must not change
// the run's schedule fingerprint or verdict (the observer is passive).
func TestUnobservedRunMatchesObserved(t *testing.T) {
	c, s := DeriveCase(fixtureCfgSeed), DeriveSchedule(fixtureSchedSeed)
	plain, err := RunCase(c, s)
	if err != nil {
		t.Fatal(err)
	}
	obsd, err := RunCaseObs(c, s, obs.NewRegistry(false))
	if err != nil {
		t.Fatal(err)
	}
	if plain != obsd {
		t.Fatalf("schedule fingerprint changed under observation: %#x vs %#x", plain, obsd)
	}
}

// TestUCCBcastZeroBytes pins the n=0 guard: a zero-byte broadcast against
// the ucc baseline must not divide by zero in its segment math (latent
// crash surfaced by the observed wide sweep).
func TestUCCBcastZeroBytes(t *testing.T) {
	c, s := DeriveCase(fixtureCfgSeed), DeriveSchedule(0)
	c.Kind = KindBcast
	c.Bytes = 0
	c.Baseline = "ucc"
	if _, err := RunCase(c, s); err != nil {
		t.Fatalf("zero-byte ucc bcast: %v", err)
	}
}
