package verify

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"xhc/internal/mpi"
)

// Reference data for one case. All backends reduce in different orders, so
// element values are chosen to make every reduction order produce the same
// bytes: small integers (sums, mins and maxes of a few thousand of them
// are exact in float32), and {1, 2} factors for products (powers of two
// stay exact, and integer products wrap deterministically). That makes an
// element-wise byte comparison a sound oracle across backends.
type refData struct {
	// fill[op][rank] is rank's input buffer for the op (for broadcast only
	// fill[op][root] matters; the rest is the junk receivers start with; for
	// scatter only the root has input, sized Ranks*Bytes).
	fill [][][]byte
	// want[op] is the expected result of the op: every rank's result buffer
	// for bcast/allreduce, the root's for reduce, the Ranks*Bytes
	// concatenation for allgather and scatter (of which rank rk owns the
	// rk'th Bytes-long slice after a scatter). Empty for barrier.
	want [][]byte
}

// buildRef precomputes fills and expected results for every op of a case.
func buildRef(c Case) *refData {
	rd := &refData{
		fill: make([][][]byte, c.Ops),
		want: make([][]byte, c.Ops),
	}
	for op := 0; op < c.Ops; op++ {
		rd.fill[op] = make([][]byte, c.Ranks)
		pat := func(rk, n int) []byte {
			b := make([]byte, n)
			fillPattern(b, c.Dt, c.Op, mix(c.CfgSeed, uint64(op)<<8|uint64(rk)))
			return b
		}
		switch c.Kind {
		case KindBarrier:
			// No payload; the stamp protocol in runSim is the oracle.
		case KindScatter:
			// Only the root has input: Ranks blocks of Bytes each.
			rd.fill[op][c.Root] = pat(c.Root, c.Bytes*c.Ranks)
			rd.want[op] = rd.fill[op][c.Root]
		default:
			for rk := 0; rk < c.Ranks; rk++ {
				if c.Kind == KindBcast && rk != c.Root {
					// Receivers start with junk the checker must see replaced.
					b := make([]byte, c.Bytes)
					fillJunk(b, uint64(op))
					rd.fill[op][rk] = b
				} else {
					rd.fill[op][rk] = pat(rk, c.Bytes)
				}
			}
		}
		switch c.Kind {
		case KindBcast:
			rd.want[op] = rd.fill[op][c.Root]
		case KindAllreduce, KindReduce:
			acc := bytes.Clone(rd.fill[op][0])
			for rk := 1; rk < c.Ranks; rk++ {
				mpi.ReduceBytes(c.Op, c.Dt, acc, rd.fill[op][rk])
			}
			rd.want[op] = acc
		case KindAllgather:
			acc := make([]byte, 0, c.Bytes*c.Ranks)
			for rk := 0; rk < c.Ranks; rk++ {
				acc = append(acc, rd.fill[op][rk]...)
			}
			rd.want[op] = acc
		}
	}
	return rd
}

// fillJunk writes a recognizable non-zero pattern (receivers must not pass
// the data check by luck of starting zeroed).
func fillJunk(dst []byte, salt uint64) {
	for i := range dst {
		dst[i] = byte(0xE0 ^ salt ^ uint64(i))
	}
}

// fillPattern writes order-independent-reducible element values.
func fillPattern(dst []byte, dt mpi.Datatype, op mpi.Op, seed uint64) {
	r := rng{state: seed}
	es := dt.Size()
	n := len(dst) / es
	for i := 0; i < n; i++ {
		var v int64
		if op == mpi.Prod {
			v = 1 + int64(r.next()%2) // {1,2}: products stay exact
		} else {
			v = int64(r.next()%201) - 100
		}
		switch dt {
		case mpi.Byte:
			dst[i] = byte(v)
		case mpi.Int32:
			binary.LittleEndian.PutUint32(dst[i*4:], uint32(int32(v)))
		case mpi.Int64:
			binary.LittleEndian.PutUint64(dst[i*8:], uint64(v))
		case mpi.Float32:
			binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(float32(v)))
		case mpi.Float64:
			binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(float64(v)))
		}
	}
	// Tail bytes beyond the last whole element (byte datatype never has
	// any) are zero; broadcast moves them verbatim either way.
}

// diffBytes reports the first mismatching index, or -1.
func diffBytes(got, want []byte) int {
	for i := range want {
		if got[i] != want[i] {
			return i
		}
	}
	return -1
}

// dataError formats a mismatch.
func dataError(what string, op, rank int, got, want []byte) error {
	i := diffBytes(got, want)
	return fmt.Errorf("%s: op %d rank %d: byte %d = %#02x, want %#02x",
		what, op, rank, i, got[i], want[i])
}
