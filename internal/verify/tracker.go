package verify

import (
	"fmt"

	"xhc/internal/mem"
)

// writeTracker enforces the single-writer-per-line discipline of paper
// Section III-E at the coherence-line level. shm.Flag already rejects a
// wrong-core store to a single flag; what it cannot see is two flags with
// different owners packed onto one line — the "dropped cache-line pad"
// bug. The tracker hangs off mem.System.OnFlagWrite and records, per line,
// the first core that stored to it; any second writing core is a
// violation.
type writeTracker struct {
	owner map[*mem.Line]int    // line -> first writing core
	name  map[*mem.Line]string // line -> first flag name (for the report)
	bad   map[*mem.Line]bool   // already reported
	viol  []string
}

// installTracker hooks a fresh tracker into the system's flag-write path.
func installTracker(sys *mem.System) *writeTracker {
	t := &writeTracker{
		owner: map[*mem.Line]int{},
		name:  map[*mem.Line]string{},
		bad:   map[*mem.Line]bool{},
	}
	sys.OnFlagWrite = func(name string, line *mem.Line, core int, v uint64) {
		first, seen := t.owner[line]
		if !seen {
			t.owner[line] = core
			t.name[line] = name
			return
		}
		if first != core && !t.bad[line] {
			t.bad[line] = true
			t.viol = append(t.viol, fmt.Sprintf(
				"line of flag %q written by core %d and core %d (flag %q)",
				t.name[line], first, core, name))
		}
	}
	return t
}

// err returns the first violation (nil when the discipline held).
func (t *writeTracker) err() error {
	if len(t.viol) == 0 {
		return nil
	}
	return fmt.Errorf("single-writer violation: %s (%d total)", t.viol[0], len(t.viol))
}
