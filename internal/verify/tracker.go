package verify

import (
	"fmt"
	"strings"

	"xhc/internal/mem"
)

// writeTracker enforces the single-writer-per-line discipline of paper
// Section III-E at the coherence-line level. shm.Flag already rejects a
// wrong-core store to a single flag; what it cannot see is two flags with
// different owners packed onto one line — the "dropped cache-line pad"
// bug. The tracker hangs off mem.System.OnFlagWrite and records, per line,
// the first core that stored to it; any second writing core is a
// violation.
//
// It also enforces communicator isolation: flag names carry their
// communicator's namespace (core.Config.Tag renders "xhc.c[<tag>].…";
// the legacy un-tagged names are namespace ""), and a coherence line that
// holds flags of two different communicators is a violation even when one
// core owns both — overlapping communicators progressing concurrently
// must never share a control line.
type writeTracker struct {
	owner map[*mem.Line]int    // line -> first writing core
	name  map[*mem.Line]string // line -> first flag name (for the report)
	comm  map[*mem.Line]string // line -> first writing communicator namespace
	tags  map[string]bool      // distinct communicator namespaces observed
	bad   map[*mem.Line]bool   // already reported
	viol  []string
}

// installTracker hooks a fresh tracker into the system's flag-write path.
func installTracker(sys *mem.System) *writeTracker {
	t := &writeTracker{
		owner: map[*mem.Line]int{},
		name:  map[*mem.Line]string{},
		comm:  map[*mem.Line]string{},
		tags:  map[string]bool{},
		bad:   map[*mem.Line]bool{},
	}
	sys.OnFlagWrite = func(name string, line *mem.Line, core int, v uint64) {
		first, seen := t.owner[line]
		if !seen {
			t.owner[line] = core
			t.name[line] = name
		} else if first != core && !t.bad[line] {
			t.bad[line] = true
			t.viol = append(t.viol, fmt.Sprintf(
				"line of flag %q written by core %d and core %d (flag %q)",
				t.name[line], first, core, name))
		}
		tag, owned := commTag(name)
		if !owned {
			return
		}
		t.tags[tag] = true
		firstTag, seenTag := t.comm[line]
		if !seenTag {
			t.comm[line] = tag
		} else if firstTag != tag && !t.bad[line] {
			t.bad[line] = true
			t.viol = append(t.viol, fmt.Sprintf(
				"line of flag %q (comm %q) aliased by flag %q (comm %q)",
				t.name[line], firstTag, name, tag))
		}
	}
	return t
}

// commTag extracts the communicator namespace from a flag name: the tag of
// "xhc.c[<tag>].…" names, "" for the legacy "xhc.…" names, and ok=false
// for flags the XHC core does not own (baselines, harness scaffolding).
func commTag(name string) (string, bool) {
	const p = "xhc."
	if !strings.HasPrefix(name, p) {
		return "", false
	}
	rest := name[len(p):]
	if strings.HasPrefix(rest, "c[") {
		if i := strings.IndexByte(rest, ']'); i > 2 {
			return rest[2:i], true
		}
	}
	return "", true
}

// commTags returns how many distinct communicator namespaces wrote flags —
// the concurrency runner's proof that split communicators really used
// disjoint control namespaces rather than never progressing.
func (t *writeTracker) commTags() int { return len(t.tags) }

// err returns the first violation (nil when the discipline held).
func (t *writeTracker) err() error {
	if len(t.viol) == 0 {
		return nil
	}
	return fmt.Errorf("single-writer violation: %s (%d total)", t.viol[0], len(t.viol))
}
