// Package verify is the protocol checker and fault-injection harness for
// the XHC implementations. It drives the simulated collectives through
// many distinct, replayable schedules per configuration (seeded random and
// PCT-style tie-breaking at the event-heap level, plus wake-delay jitter),
// checks protocol invariants on every schedule — single-writer line
// discipline, data correctness against an exact reference, termination,
// bounded control-structure memory — and cross-checks the simulated
// components against the real-concurrency gxhc backend on identical
// configurations. A mutation self-test (DESIGN.md Section 10) asserts the
// checkers actually catch seeded protocol bugs.
//
// Every run is addressed by a (config seed, schedule seed) pair; a failing
// run prints the pair, and Replay reproduces it bit-exactly.
package verify

import (
	"fmt"

	"xhc/internal/core"
	"xhc/internal/gxhc"
	"xhc/internal/hier"
	"xhc/internal/mpi"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// rng is the checker's own splitmix64 stream. Like the sim tie-breakers it
// avoids math/rand so replay seeds stay valid across Go releases.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix folds two seeds into one, so derived streams are independent.
func mix(a, b uint64) uint64 {
	r := rng{state: a ^ (b * 0x9e3779b97f4a7c15)}
	return r.next()
}

// OpKind selects the collective a case exercises.
type OpKind int

// Checked collectives.
const (
	KindBcast OpKind = iota
	KindAllreduce
	KindBarrier
	KindReduce
	KindAllgather
	KindScatter
)

func (k OpKind) String() string {
	switch k {
	case KindBcast:
		return "bcast"
	case KindAllreduce:
		return "allreduce"
	case KindBarrier:
		return "barrier"
	case KindReduce:
		return "reduce"
	case KindAllgather:
		return "allgather"
	case KindScatter:
		return "scatter"
	}
	return "?"
}

// Case is one randomized configuration: platform shape, rank count,
// hierarchy sensitivity, collective, message size, datatype, operator and
// tuning knobs. All of it derives deterministically from CfgSeed.
type Case struct {
	CfgSeed uint64

	Plat  topo.Config
	Ranks int
	Root  int
	Sens  string

	Kind  OpKind
	Bytes int
	Dt    mpi.Datatype
	Op    mpi.Op

	Chunk         int
	CICOThreshold int
	Flags         core.FlagScheme
	RegCache      bool

	// Baseline is the registry component cross-checked alongside XHC.
	Baseline string

	// Ops is how many back-to-back operations the run performs (>= 3, so
	// the bounded-control-memory invariant has settled state to compare).
	Ops int

	// Chaos carries a seeded protocol bug for the mutation self-test;
	// nil during normal exploration.
	Chaos *core.ChaosConfig

	// Conc, when non-nil, adds a concurrency phase to the run: several
	// communicators with overlapping rank sets progressing non-blocking
	// collectives on one node at the same time, on both the simulated and
	// the real-concurrency backend (DESIGN.md §15).
	Conc *ConcCase

	// Switch, when non-nil, retunes the communicator mid-run exactly the
	// way the online autotuner would (DESIGN.md §17): every rank calls
	// ApplyTuning at the same blocking-op boundary — never inside a
	// non-blocking window — and every invariant must keep holding across
	// the plan change on both backends.
	Switch *SwitchCase
}

// SwitchCase is a mid-run tuning-plan change. The knobs mirror what
// internal/tune's bandit moves on a live communicator: chunk granule, the
// CICO/XPMEM boundary (simulated backend only), the fusion cap, and the
// gxhc waiter budget.
type SwitchCase struct {
	// AfterOp is the 0-based index of the last operation run under the
	// construction-time plan; the switch applies before op AfterOp+1.
	AfterOp       int
	Chunk         int
	CICOThreshold int // simulated backend only (gxhc has no CICO split)
	FuseBytes     int // -1 keep, 0 disable fusion, >0 fusable-payload cap
	SpinProbes    int // gxhc only: 0 keeps the default waiter budget
}

func (sw *SwitchCase) coreTuning() core.Tuning {
	t := core.KeepTuning()
	t.ChunkBytes = []int{sw.Chunk}
	t.CICOThreshold = sw.CICOThreshold
	t.FuseBytes = sw.FuseBytes
	return t
}

func (sw *SwitchCase) gxhcTuning() gxhc.Tuning {
	t := gxhc.KeepTuning()
	t.ChunkBytes = sw.Chunk
	t.FuseBytes = sw.FuseBytes
	t.SpinProbes = sw.SpinProbes
	return t
}

func (sw *SwitchCase) String() string {
	return fmt.Sprintf("switch(after=%d chunk=%d cico<=%d fuse=%d probes=%d)",
		sw.AfterOp, sw.Chunk, sw.CICOThreshold, sw.FuseBytes, sw.SpinProbes)
}

// ConcComm is one communicator of a concurrency phase. The first entry is
// always the parent communicator itself (Ranks nil); the rest are splits
// of it, deliberately overlapping each other and the parent.
type ConcComm struct {
	// Ranks lists the parent ranks the communicator spans (nil: all).
	Ranks []int
	// Kind is the collective every member issues on this communicator
	// (bcast, allgather or barrier — the kinds both backends run
	// non-blocking over arbitrary bytes).
	Kind OpKind
	// Bytes is the payload size (per-member block for allgather, zero for
	// barrier).
	Bytes int
	// Root is the root in the communicator's own rank numbering.
	Root int
}

// ConcCase parameterizes the concurrency phase: every member keeps
// InFlight requests outstanding per communicator it belongs to, for
// Rounds issue/complete cycles, with the issue streams of the
// communicators interleaved request-by-request.
type ConcCase struct {
	InFlight int
	Rounds   int
	Comms    []ConcComm
}

func (cc *ConcCase) String() string {
	s := fmt.Sprintf("conc(k=%d", cc.InFlight)
	for _, cm := range cc.Comms {
		span := "all"
		if cm.Ranks != nil {
			span = fmt.Sprintf("%d", len(cm.Ranks))
		}
		s += fmt.Sprintf(" %s/%d@%s", cm.Kind, cm.Bytes, span)
	}
	return s + ")"
}

// platforms are the small synthetic node shapes cases draw from: shared-LLC
// parts (Epyc-like) and a cache-less mesh part (ARM-N1-like), one and two
// sockets, one and two NUMA nodes per socket.
var platforms = []topo.Config{
	{Name: "v1n8", Arch: "x86", Sockets: 1, NUMAPerSocket: 1, CoresPerNUMA: 8, CoresPerLLC: 4, LLCBytes: 16 << 20},
	{Name: "v2n8", Arch: "x86", Sockets: 1, NUMAPerSocket: 2, CoresPerNUMA: 4, CoresPerLLC: 4, LLCBytes: 16 << 20},
	{Name: "v2s16", Arch: "x86", Sockets: 2, NUMAPerSocket: 2, CoresPerNUMA: 4, CoresPerLLC: 4, LLCBytes: 16 << 20},
	{Name: "v2s16w", Arch: "x86", Sockets: 2, NUMAPerSocket: 1, CoresPerNUMA: 8, CoresPerLLC: 8, LLCBytes: 32 << 20},
	{Name: "vmesh16", Arch: "arm", Sockets: 1, NUMAPerSocket: 2, CoresPerNUMA: 8, CoresPerLLC: 0, SLCBytes: 32 << 20},
}

var sensitivities = []string{"", "numa", "socket", "numa+socket"}

var baselineNames = []string{"tuned", "ucc", "sm", "smhc-flat", "smhc-tree", "xbrc"}

// messageSizes deliberately includes zero, single-element, non-power-of-two
// and non-multiple-of-chunk sizes next to the round ones.
var messageSizes = []int{0, 8, 64, 100, 1000, 1 << 10, 4000, 4 << 10, 16 << 10, 40000, 64 << 10}

var chunkSizes = []int{256, 1 << 10, 4 << 10, 16 << 10}

var cicoThresholds = []int{0, 512, 1 << 10, 4 << 10}

// DeriveCase expands a config seed into a full Case. The same seed always
// yields the same case.
func DeriveCase(seed uint64) Case {
	r := rng{state: seed}
	c := Case{CfgSeed: seed, Ops: 4}
	c.Plat = platforms[r.next()%uint64(len(platforms))]
	ncores := c.Plat.Sockets * c.Plat.NUMAPerSocket * c.Plat.CoresPerNUMA
	c.Ranks = 2 + int(r.next()%uint64(ncores-1))
	c.Root = int(r.next() % uint64(c.Ranks))
	c.Sens = sensitivities[r.next()%uint64(len(sensitivities))]
	if r.next()%2 == 0 {
		c.Kind = KindBcast
	} else {
		c.Kind = KindAllreduce
	}
	c.Bytes = messageSizes[r.next()%uint64(len(messageSizes))]
	c.Dt = mpi.Datatype(r.next() % 5)
	c.Op = mpi.Op(r.next() % 4)
	if c.Kind == KindAllreduce {
		// Element-aligned, at least one element; the root plays no role.
		es := c.Dt.Size()
		c.Bytes -= c.Bytes % es
		if c.Bytes == 0 {
			c.Bytes = es
		}
		c.Root = 0
	}
	c.Chunk = chunkSizes[r.next()%uint64(len(chunkSizes))]
	c.CICOThreshold = cicoThresholds[r.next()%uint64(len(cicoThresholds))]
	c.Flags = core.FlagScheme(r.next() % 3)
	c.RegCache = r.next()%2 == 0
	c.Baseline = baselineNames[r.next()%uint64(len(baselineNames))]
	// Extension draw, appended after every legacy draw so that the seeds of
	// replay tokens minted before Barrier/Reduce/Allgather/Scatter existed
	// still derive byte-identical cases. Residue 0 keeps the legacy kind
	// drawn above; the other two thirds of seeds move to a newer collective.
	ext := r.next()
	if ext%3 != 0 {
		c.Kind = [...]OpKind{KindBarrier, KindReduce, KindAllgather, KindScatter}[(ext/3)%4]
		switch c.Kind {
		case KindBarrier:
			c.Bytes, c.Root = 0, 0
		case KindReduce:
			es := c.Dt.Size()
			c.Bytes -= c.Bytes % es
			if c.Bytes == 0 {
				c.Bytes = es
			}
			c.Root = int((ext >> 16) % uint64(c.Ranks))
		case KindAllgather:
			c.Root = 0
		case KindScatter:
			c.Root = int((ext >> 16) % uint64(c.Ranks))
		}
		// Only tuned and sm (plus xbrc for the rooted reduction) implement
		// the newer collectives; remap whatever the legacy draw picked.
		if c.Kind == KindReduce {
			c.Baseline = []string{"tuned", "sm", "xbrc"}[(ext>>8)%3]
		} else {
			c.Baseline = []string{"tuned", "sm"}[(ext>>8)%2]
		}
	}
	// Concurrency draw, appended after the extension draw under the same
	// compatibility rule: every earlier draw stays byte-identical, so old
	// replay tokens still derive their exact cases. A third of the seeds
	// (on nodes with enough ranks to split) add a concurrency phase: the
	// parent plus one or two overlapping split communicators, each member
	// keeping 2-4 requests in flight.
	cx := r.next()
	if cx%3 == 0 && c.Ranks >= 4 {
		cc := &ConcCase{InFlight: 2 + int((cx>>8)%3), Rounds: 2}
		// The parent always runs small broadcasts — inside the fusion size
		// class, so the concurrency phase exercises same-shape batching
		// whenever the case's CICO threshold admits it.
		cc.Comms = append(cc.Comms, ConcComm{
			Kind:  KindBcast,
			Bytes: []int{64, 256, 1000}[(cx>>16)%3],
			Root:  int((cx >> 24) % uint64(c.Ranks)),
		})
		// First split: the even parent ranks (overlaps everything).
		evens := make([]int, 0, (c.Ranks+1)/2)
		for rk := 0; rk < c.Ranks; rk += 2 {
			evens = append(evens, rk)
		}
		cc.Comms = append(cc.Comms, deriveConcComm(cx>>32, evens))
		if (cx>>56)%2 == 0 {
			// Second split: a prefix majority, overlapping both the evens
			// and the parent.
			pre := make([]int, c.Ranks/2+1)
			for i := range pre {
				pre[i] = i
			}
			cc.Comms = append(cc.Comms, deriveConcComm(cx>>40, pre))
		}
		c.Conc = cc
	}
	// Tuning-switch draw, appended after the concurrency draw under the
	// same compatibility rule (every earlier draw stays byte-identical). A
	// quarter of the seeds retune the communicator between two of the
	// run's blocking ops, moving the chunk granule, the CICO boundary, the
	// fusion cap and the gxhc waiter budget at once — the exact call shape
	// of the online tuner's plan application.
	sw := r.next()
	if sw%4 == 0 {
		c.Switch = &SwitchCase{
			AfterOp:       1 + int((sw>>8)%2),
			Chunk:         chunkSizes[(sw>>16)%uint64(len(chunkSizes))],
			CICOThreshold: cicoThresholds[(sw>>24)%uint64(len(cicoThresholds))],
			FuseBytes:     []int{-1, 0, 256, 1 << 10}[(sw>>32)%4],
			SpinProbes:    []int{0, 64, 384}[(sw>>40)%3],
		}
	}
	return c
}

// deriveConcComm draws a split communicator's collective from seed bits:
// kind, payload size and root.
func deriveConcComm(bits uint64, ranks []int) ConcComm {
	cm := ConcComm{Ranks: ranks}
	switch bits % 3 {
	case 0:
		cm.Kind, cm.Bytes = KindBcast, []int{64, 256, 1000, 4 << 10}[(bits>>8)%4]
	case 1:
		cm.Kind, cm.Bytes = KindAllgather, []int{64, 256}[(bits>>8)%2]
	case 2:
		cm.Kind = KindBarrier
	}
	if cm.Kind != KindBarrier {
		cm.Root = int((bits >> 16) % uint64(len(ranks)))
	}
	return cm
}

// String identifies a case in failure reports.
func (c Case) String() string {
	s := fmt.Sprintf("%s ranks=%d root=%d sens=%q %s n=%d dt=%s op=%s chunk=%d cico<=%d flags=%s regcache=%v vs %s",
		c.Plat.Name, c.Ranks, c.Root, c.Sens, c.Kind, c.Bytes, c.Dt, c.Op,
		c.Chunk, c.CICOThreshold, c.Flags, c.RegCache, c.Baseline)
	if c.Conc != nil {
		s += " +" + c.Conc.String()
	}
	if c.Switch != nil {
		s += " +" + c.Switch.String()
	}
	return s
}

// coreConfig builds the XHC configuration a case describes.
func (c Case) coreConfig() (core.Config, error) {
	cfg := core.DefaultConfig()
	sens, err := hier.ParseSensitivity(c.Sens)
	if err != nil {
		return cfg, err
	}
	cfg.Sensitivity = sens
	cfg.CICOThreshold = c.CICOThreshold
	cfg.ChunkBytes = []int{c.Chunk}
	cfg.CICOBytes = 0 // auto-sized from the threshold
	cfg.Flags = c.Flags
	cfg.RegCache = c.RegCache
	cfg.Chaos = c.Chaos
	return cfg, nil
}

// Schedule is one replayable perturbation of the event order: a seeded
// tie-breaker over simultaneous events, optional wake-delay jitter, and
// optional fault injection (stragglers, compute jitter, registration-cache
// eviction). SchedSeed zero is the unperturbed FIFO schedule.
type Schedule struct {
	SchedSeed uint64

	// Tie: 0 FIFO, 1 uniform random, 2 PCT-style bursts.
	Tie int
	// WakeJitterPS, when positive, delays every wake by up to this many
	// picoseconds (drawn per wake from the schedule's stream).
	WakeJitterPS int64
	// Faults enables stragglers, per-op compute jitter and mid-collective
	// registration-cache drops.
	Faults bool
}

// DeriveSchedule expands a schedule seed. Seed zero is the plain FIFO
// schedule with no faults — every configuration is checked on it first.
func DeriveSchedule(seed uint64) Schedule {
	if seed == 0 {
		return Schedule{}
	}
	r := rng{state: seed}
	s := Schedule{SchedSeed: seed}
	s.Tie = 1 + int(r.next()%2)
	if r.next()%2 == 0 {
		s.WakeJitterPS = int64(200 * sim.Nanosecond)
	}
	s.Faults = r.next()%3 != 0
	return s
}

// String identifies a schedule in failure reports.
func (s Schedule) String() string {
	if s.SchedSeed == 0 {
		return "fifo"
	}
	tie := [...]string{"fifo", "random", "pct"}[s.Tie]
	return fmt.Sprintf("%s jitter=%dns faults=%v", tie, s.WakeJitterPS/int64(sim.Nanosecond), s.Faults)
}
