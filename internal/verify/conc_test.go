package verify

import (
	"fmt"
	"testing"

	"xhc/internal/coll"
	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/gxhc"
	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/topo"
)

// The pinned fused-vs-unfused differential grid row (ISSUE: acceptance):
// the same batch of small same-shape broadcasts must produce byte-identical
// results whether it runs fused (non-blocking back-to-back issues inside
// the fusion size class), unfused (fusion disabled, or the blocking calls),
// through the simulated core, the real-concurrency gxhc backend, or a
// registry baseline. All rows check against one shared reference.
const (
	diffRanks   = 8
	diffSlots   = 4   // sub-ops per batch
	diffPayload = 256 // inside every fusion size class the grid enables
	diffRoot    = 1
)

// diffFill is the shared reference payload of one sub-op.
func diffFill(slot int, dst []byte) {
	r := rng{state: mix(0xd1ff, uint64(slot))}
	for i := range dst {
		dst[i] = byte(r.next())
	}
}

// diffCheck compares every rank's slot buffers against the reference.
func diffCheck(t *testing.T, row string, got func(rank, slot int) []byte) {
	t.Helper()
	want := make([]byte, diffPayload)
	for slot := 0; slot < diffSlots; slot++ {
		diffFill(slot, want)
		for rk := 0; rk < diffRanks; rk++ {
			if i := diffBytes(got(rk, slot), want); i >= 0 {
				t.Errorf("%s: rank %d slot %d: byte %d = %#x, want %#x",
					row, rk, slot, i, got(rk, slot)[i], want[i])
				return
			}
		}
	}
}

// runDiffCore runs the batch through the simulated core communicator:
// non-blocking Ibcast x4 + Waitall when nonblocking (fused when the CICO
// threshold admits the payload, unfused when cico is 0), or the blocking
// Bcast loop otherwise.
func runDiffCore(t *testing.T, row string, cico int, nonblocking bool, reg *obs.Registry) {
	t.Helper()
	if reg != nil {
		env.ObserveWorlds(reg)
		defer func() { env.Observer = nil }()
	}
	tp, err := topo.New(platforms[1])
	if err != nil {
		t.Fatalf("%s: %v", row, err)
	}
	m, err := tp.Map(topo.MapCore, diffRanks)
	if err != nil {
		t.Fatalf("%s: %v", row, err)
	}
	w := env.NewWorld(tp, m)
	cfg := core.DefaultConfig()
	cfg.CICOThreshold = cico
	cc, err := core.New(w, cfg)
	if err != nil {
		t.Fatalf("%s: %v", row, err)
	}
	bufs := make([][]*mem.Buffer, diffRanks)
	for rk := 0; rk < diffRanks; rk++ {
		bufs[rk] = make([]*mem.Buffer, diffSlots)
		for slot := 0; slot < diffSlots; slot++ {
			bufs[rk][slot] = w.NewBufferAt(fmt.Sprintf("diff.%d.%d", rk, slot), rk, diffPayload)
		}
	}
	runErr := w.Run(func(p *env.Proc) {
		for slot := 0; slot < diffSlots; slot++ {
			if p.Rank == diffRoot {
				diffFill(slot, bufs[p.Rank][slot].Data)
			} else {
				fillJunk(bufs[p.Rank][slot].Data, uint64(slot))
			}
			p.Dirty(bufs[p.Rank][slot])
		}
		p.HarnessBarrier()
		if nonblocking {
			rs := make([]*core.Request, diffSlots)
			for slot := 0; slot < diffSlots; slot++ {
				rs[slot] = cc.Ibcast(p, bufs[p.Rank][slot], 0, diffPayload, diffRoot)
			}
			core.Waitall(p, rs...)
		} else {
			for slot := 0; slot < diffSlots; slot++ {
				cc.Bcast(p, bufs[p.Rank][slot], 0, diffPayload, diffRoot)
			}
		}
	})
	if runErr != nil {
		t.Fatalf("%s: %v", row, runErr)
	}
	diffCheck(t, row, func(rk, slot int) []byte { return bufs[rk][slot].Data })
}

// runDiffGxhc runs the batch through the real-concurrency backend, fusion
// on (default threshold covers the payload) or forced off (FuseBytes -1).
func runDiffGxhc(t *testing.T, row string, fuseBytes int, rec *obs.OpRecorder) {
	t.Helper()
	cfg := gxhc.DefaultConfig()
	cfg.GroupSize = 3 // two hierarchy levels over 8 ranks
	cfg.FuseBytes = fuseBytes
	c, err := gxhc.New(diffRanks, cfg)
	if err != nil {
		t.Fatalf("%s: %v", row, err)
	}
	defer c.Close()
	if rec != nil {
		c.AttachRecorder(rec)
	}
	bufs := make([][][]byte, diffRanks)
	for rk := 0; rk < diffRanks; rk++ {
		bufs[rk] = make([][]byte, diffSlots)
		for slot := 0; slot < diffSlots; slot++ {
			b := make([]byte, diffPayload)
			if rk == diffRoot {
				diffFill(slot, b)
			} else {
				fillJunk(b, uint64(slot))
			}
			bufs[rk][slot] = b
		}
	}
	done := make(chan struct{}, diffRanks)
	for rk := 0; rk < diffRanks; rk++ {
		go func(rank int) {
			defer func() { done <- struct{}{} }()
			rs := make([]*gxhc.Request, diffSlots)
			for slot := 0; slot < diffSlots; slot++ {
				rs[slot] = c.Ibcast(rank, bufs[rank][slot], diffRoot)
			}
			gxhc.Waitall(rs...)
		}(rk)
	}
	for n := 0; n < diffRanks; n++ {
		<-done
	}
	diffCheck(t, row, func(rk, slot int) []byte { return bufs[rk][slot] })
}

// runDiffBaseline runs the blocking batch through a registry baseline.
func runDiffBaseline(t *testing.T, row, name string) {
	t.Helper()
	tp, err := topo.New(platforms[1])
	if err != nil {
		t.Fatalf("%s: %v", row, err)
	}
	m, err := tp.Map(topo.MapCore, diffRanks)
	if err != nil {
		t.Fatalf("%s: %v", row, err)
	}
	w := env.NewWorld(tp, m)
	comp, err := coll.New(name, w)
	if err != nil {
		t.Fatalf("%s: %v", row, err)
	}
	bufs := make([][]*mem.Buffer, diffRanks)
	for rk := 0; rk < diffRanks; rk++ {
		bufs[rk] = make([]*mem.Buffer, diffSlots)
		for slot := 0; slot < diffSlots; slot++ {
			bufs[rk][slot] = w.NewBufferAt(fmt.Sprintf("diff.%d.%d", rk, slot), rk, diffPayload)
		}
	}
	runErr := w.Run(func(p *env.Proc) {
		for slot := 0; slot < diffSlots; slot++ {
			if p.Rank == diffRoot {
				diffFill(slot, bufs[p.Rank][slot].Data)
			} else {
				fillJunk(bufs[p.Rank][slot].Data, uint64(slot))
			}
			p.Dirty(bufs[p.Rank][slot])
		}
		p.HarnessBarrier()
		for slot := 0; slot < diffSlots; slot++ {
			comp.Bcast(p, bufs[p.Rank][slot], 0, diffPayload, diffRoot)
		}
	})
	if runErr != nil {
		t.Fatalf("%s: %v", row, runErr)
	}
	diffCheck(t, row, func(rk, slot int) []byte { return bufs[rk][slot].Data })
}

// checkFusion asserts the registry's fusion counters for one core row.
func checkFusion(t *testing.T, row string, reg *obs.Registry, batches, ops, bytes, aborts float64) {
	t.Helper()
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"fusion.batches":        batches,
		"fusion.ops_fused":      ops,
		"fusion.fused_bytes":    bytes,
		"fusion.aborted_ragged": aborts,
	} {
		if got, ok := snap.Get(name); !ok || got != want {
			t.Errorf("%s: %s = %v (present=%v), want %v", row, name, got, ok, want)
		}
	}
}

// TestFusedUnfusedDifferential is the pinned grid row: fused and unfused
// small-op batches, across the simulated core, gxhc and a baseline, all
// byte-identical against the shared reference payloads. The fused rows
// additionally pin the fusion counters: the core schedules the whole
// burst before the helper drains, so the 4 sub-ops form exactly one
// batch; gxhc's worker drains whatever has queued, so the batch count is
// scheduling-dependent but every sub-op still transits the fused path.
func TestFusedUnfusedDifferential(t *testing.T) {
	const batchBytes = diffSlots * diffPayload
	t.Run("core-ifused", func(t *testing.T) {
		reg := obs.NewRegistry(false)
		runDiffCore(t, "core-ifused", 1<<10, true, reg)
		checkFusion(t, "core-ifused", reg, 1, diffSlots, batchBytes, 0)
	})
	t.Run("core-iunfused", func(t *testing.T) {
		reg := obs.NewRegistry(false)
		runDiffCore(t, "core-iunfused", 0, true, reg)
		checkFusion(t, "core-iunfused", reg, 0, 0, 0, 0)
	})
	t.Run("core-blocking", func(t *testing.T) { runDiffCore(t, "core-blocking", 1<<10, false, nil) })
	t.Run("gxhc-ifused", func(t *testing.T) {
		reg := obs.NewRegistry(false)
		wo := reg.NewWorld("gxhc", diffRanks, obs.WallTicksPerUS, obs.WallClock())
		wo.Rec.SetQuiesceDumps(true)
		runDiffGxhc(t, "gxhc-ifused", 0, wo.Rec)
		batches, ops, bytes, aborts := wo.Rec.FusionCounts()
		if batches < 1 || batches > diffSlots {
			t.Errorf("gxhc-ifused: %d batches, want 1..%d", batches, diffSlots)
		}
		if ops != diffSlots || bytes != batchBytes || aborts != 0 {
			t.Errorf("gxhc-ifused: ops=%d bytes=%d aborts=%d, want ops=%d bytes=%d aborts=0",
				ops, bytes, aborts, diffSlots, batchBytes)
		}
	})
	t.Run("gxhc-iunfused", func(t *testing.T) {
		reg := obs.NewRegistry(false)
		wo := reg.NewWorld("gxhc", diffRanks, obs.WallTicksPerUS, obs.WallClock())
		wo.Rec.SetQuiesceDumps(true)
		runDiffGxhc(t, "gxhc-iunfused", -1, wo.Rec)
		if batches, ops, bytes, aborts := wo.Rec.FusionCounts(); batches != 0 || ops != 0 || bytes != 0 || aborts != 0 {
			t.Errorf("gxhc-iunfused: fusion counters %d/%d/%d/%d, want all zero", batches, ops, bytes, aborts)
		}
	})
	t.Run("baseline-tuned", func(t *testing.T) { runDiffBaseline(t, "baseline-tuned", "tuned") })
}

// TestConcPhaseDirect drives the concurrency runners directly on the
// mutation base shape: clean FIFO, a perturbed fault schedule, and the
// real-concurrency backend.
func TestConcPhaseDirect(t *testing.T) {
	c := concMutationCase()
	if err := runConcSim(c, Schedule{}, nil); err != nil {
		t.Errorf("sim/fifo: %v", err)
	}
	if err := runConcSim(c, faultSchedule(), nil); err != nil {
		t.Errorf("sim/faults: %v", err)
	}
	if err := runConcGxhc(c, nil, nil, concCleanDeadline); err != nil {
		t.Errorf("gxhc: %v", err)
	}
}

// TestConcDrawProperties pins the acceptance shape of the concurrency
// draw: the seeds that draw a phase give it at least two overlapping
// communicators with at least two requests in flight per member, and the
// split rank sets are strict, sorted subsets of the parent.
func TestConcDrawProperties(t *testing.T) {
	found := 0
	for seed := uint64(1); seed <= 400; seed++ {
		c := DeriveCase(seed)
		if c.Conc == nil {
			continue
		}
		found++
		cc := c.Conc
		if len(cc.Comms) < 2 {
			t.Errorf("seed %d: %d communicators, want >= 2", seed, len(cc.Comms))
		}
		if cc.InFlight < 2 {
			t.Errorf("seed %d: InFlight = %d, want >= 2", seed, cc.InFlight)
		}
		if cc.Comms[0].Ranks != nil {
			t.Errorf("seed %d: first communicator must be the parent (nil ranks)", seed)
		}
		for i, cm := range cc.Comms[1:] {
			if len(cm.Ranks) == 0 || len(cm.Ranks) >= c.Ranks {
				t.Errorf("seed %d: split %d spans %d of %d ranks, want a strict subset",
					seed, i+1, len(cm.Ranks), c.Ranks)
			}
			for j, rk := range cm.Ranks {
				if rk < 0 || rk >= c.Ranks || (j > 0 && rk <= cm.Ranks[j-1]) {
					t.Errorf("seed %d: split %d ranks %v not sorted within [0,%d)", seed, i+1, cm.Ranks, c.Ranks)
					break
				}
			}
			if cm.Kind != KindBarrier && (cm.Root < 0 || cm.Root >= len(cm.Ranks)) {
				t.Errorf("seed %d: split %d root %d outside its %d members", seed, i+1, cm.Root, len(cm.Ranks))
			}
		}
	}
	if found < 50 {
		t.Errorf("only %d of 400 seeds drew a concurrency phase, want >= 50", found)
	}
}
