package verify

import (
	"fmt"

	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/hier"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// ClusterCase is one randomized multi-node configuration: a synthetic node
// platform replicated across a few nodes, a cluster collective, message
// shape and the intra-node tuning knobs. It derives from its own seed
// stream (DeriveClusterCase), deliberately separate from DeriveCase so the
// single-node replay tokens pinned before the network level existed keep
// deriving byte-identical cases.
type ClusterCase struct {
	CfgSeed uint64

	Plat    topo.Config
	NodesN  int
	PerNode int
	Root    int
	Sens    string

	Kind  OpKind
	Bytes int
	Dt    mpi.Datatype
	Op    mpi.Op

	Chunk         int
	CICOThreshold int
	Flags         core.FlagScheme
	RegCache      bool

	Ops int
}

// clusterKinds are the collectives the network level implements.
var clusterKinds = [...]OpKind{KindBcast, KindAllreduce, KindReduce, KindBarrier}

// DeriveClusterCase expands a config seed into a full ClusterCase. The
// stream is salted so cluster seeds never alias single-node seeds.
func DeriveClusterCase(seed uint64) ClusterCase {
	r := rng{state: seed ^ 0xc1f651c67c62c6e0}
	c := ClusterCase{CfgSeed: seed, Ops: 4}
	c.Plat = platforms[r.next()%uint64(len(platforms))]
	ncores := c.Plat.Sockets * c.Plat.NUMAPerSocket * c.Plat.CoresPerNUMA
	c.NodesN = 2 + int(r.next()%3)
	c.PerNode = 2 + int(r.next()%uint64(ncores-1))
	c.Root = int(r.next() % uint64(c.NodesN*c.PerNode))
	c.Sens = sensitivities[r.next()%uint64(len(sensitivities))]
	c.Kind = clusterKinds[r.next()%uint64(len(clusterKinds))]
	c.Bytes = messageSizes[r.next()%uint64(len(messageSizes))]
	c.Dt = mpi.Datatype(r.next() % 5)
	c.Op = mpi.Op(r.next() % 4)
	switch c.Kind {
	case KindAllreduce, KindReduce:
		es := c.Dt.Size()
		c.Bytes -= c.Bytes % es
		if c.Bytes == 0 {
			c.Bytes = es
		}
		if c.Kind == KindAllreduce {
			c.Root = 0
		}
	case KindBarrier:
		c.Bytes, c.Root = 0, 0
	}
	c.Chunk = chunkSizes[r.next()%uint64(len(chunkSizes))]
	c.CICOThreshold = cicoThresholds[r.next()%uint64(len(cicoThresholds))]
	c.Flags = core.FlagScheme(r.next() % 3)
	c.RegCache = r.next()%2 == 0
	return c
}

// String identifies a cluster case in failure reports.
func (c ClusterCase) String() string {
	return fmt.Sprintf("%dx%s perNode=%d root=%d sens=%q %s n=%d dt=%s op=%s chunk=%d cico<=%d flags=%s regcache=%v",
		c.NodesN, c.Plat.Name, c.PerNode, c.Root, c.Sens, c.Kind, c.Bytes, c.Dt, c.Op,
		c.Chunk, c.CICOThreshold, c.Flags, c.RegCache)
}

func (c ClusterCase) coreConfig() (core.Config, error) {
	// Same knob wiring as the single-node Case.
	return Case{
		Sens: c.Sens, Chunk: c.Chunk, CICOThreshold: c.CICOThreshold,
		Flags: c.Flags, RegCache: c.RegCache,
	}.coreConfig()
}

// refCase maps the cluster case onto the flat reference oracle: the
// cluster collective over NodesN*PerNode ranks must produce exactly the
// bytes a single-node collective over the same global ranks would.
func (c ClusterCase) refCase() Case {
	return Case{
		CfgSeed: c.CfgSeed, Ranks: c.NodesN * c.PerNode, Root: c.Root,
		Kind: c.Kind, Bytes: c.Bytes, Dt: c.Dt, Op: c.Op, Ops: c.Ops,
	}
}

// shardSchedule derives node's private perturbation stream from the run's
// schedule: same tie-breaker class and jitter policy, per-shard seeds. A
// shard's stream is consumed only by that shard's engine (plus the
// coordinator's deterministic wake sequence), so worker count cannot
// reorder any draw.
func shardSchedule(s Schedule, node int) Schedule {
	if s.SchedSeed == 0 {
		return Schedule{}
	}
	d := s
	d.SchedSeed = mix(s.SchedSeed, 0x515+uint64(node))
	return d
}

// RunClusterCase checks one (cluster case, schedule) pair: the run must
// pass every invariant fully sequentially (Workers=1) AND with the shards
// parallelized across GOMAXPROCS workers, and both runs must produce the
// same combined schedule fingerprint — the sharded-engine determinism
// contract. Returns the fingerprint of the sequential run.
func RunClusterCase(c ClusterCase, s Schedule) (uint64, error) {
	fp1, err := runClusterSim(c, s, 1)
	if err != nil {
		return fp1, err
	}
	fpN, err := runClusterSim(c, s, 0)
	if err != nil {
		return fp1, err
	}
	if fp1 != fpN {
		return fp1, fmt.Errorf("cluster: sharded run fingerprint %#016x != sequential %#016x (worker-count nondeterminism)",
			fpN, fp1)
	}
	return fp1, nil
}

// runClusterSim executes one cluster case at the given worker count and
// checks: structural validity of the cluster hierarchy, termination, data
// correctness of every rank against the flat reference, MPI buffer
// contracts (non-root recv buffers untouched), the barrier ordering
// contract, single-writer line discipline on every node, and bounded
// control memory per node. All verdict state is written into per-rank /
// per-node slots so shard goroutines never share a cell.
func runClusterSim(c ClusterCase, s Schedule, workers int) (uint64, error) {
	t, err := topo.New(c.Plat)
	if err != nil {
		return 0, err
	}
	cl, err := topo.NewCluster(c.NodesN, t)
	if err != nil {
		return 0, err
	}
	m, err := t.Map(topo.MapCore, c.PerNode)
	if err != nil {
		return 0, err
	}
	sens, err := hier.ParseSensitivity(c.Sens)
	if err != nil {
		return 0, err
	}
	ch, err := hier.BuildCluster(cl, m, sens, c.Root)
	if err != nil {
		return 0, err
	}
	if err := ch.Validate(); err != nil {
		return 0, err
	}

	cw := env.NewClusterWorldDefault(cl, m)
	cw.Workers = workers
	trackers := make([]*writeTracker, c.NodesN)
	for i, w := range cw.Nodes {
		applyEngine(w.Sys.Eng, shardSchedule(s, i))
		trackers[i] = installTracker(w.Sys)
	}
	cw.EnableScheduleHash()

	cfg, err := c.coreConfig()
	if err != nil {
		return 0, err
	}
	cc, err := core.NewCluster(cw, cfg)
	if err != nil {
		return 0, err
	}

	N := cw.N
	ref := buildRef(c.refCase())
	rbufs := make([]*mem.Buffer, N)
	var sbufs []*mem.Buffer
	if c.Kind != KindBarrier {
		for g := 0; g < N; g++ {
			node, lr := g/c.PerNode, g%c.PerNode
			rbufs[g] = cw.Nodes[node].NewBufferAt(fmt.Sprintf("vrf.r.%d", g), lr, c.Bytes)
		}
	}
	if c.Kind == KindAllreduce || c.Kind == KindReduce {
		sbufs = make([]*mem.Buffer, N)
		for g := 0; g < N; g++ {
			node, lr := g/c.PerNode, g%c.PerNode
			sbufs[g] = cw.Nodes[node].NewBufferAt(fmt.Sprintf("vrf.s.%d", g), lr, c.Bytes)
		}
	}

	// Per-slot verdict state: rank g writes only rankErr[g] and the barrier
	// stamps of column g; node i's local rank 0 writes only snaps[i].
	rankErr := make([]error, N)
	var enter, exit [][]sim.Time
	if c.Kind == KindBarrier {
		enter = make([][]sim.Time, c.Ops)
		exit = make([][]sim.Time, c.Ops)
		for op := range enter {
			enter[op] = make([]sim.Time, N)
			exit[op] = make([]sim.Time, N)
		}
	}
	snaps := make([][]memSnap, c.NodesN)
	for i := range snaps {
		snaps[i] = make([]memSnap, c.Ops)
	}

	runErr := cw.Run(func(p *env.Proc, node int) {
		g := cw.GlobalRank(node, p.Rank)
		for op := 0; op < c.Ops; op++ {
			cw.HarnessBarrier(p, node)
			switch c.Kind {
			case KindBcast:
				copy(rbufs[g].Data, ref.fill[op][g])
				p.Dirty(rbufs[g])
			case KindAllreduce, KindReduce:
				copy(sbufs[g].Data, ref.fill[op][g])
				p.Dirty(sbufs[g])
				fillJunk(rbufs[g].Data, uint64(op))
				p.Dirty(rbufs[g])
			}
			cw.HarnessBarrier(p, node)
			if d := s.opDelay(g, op); d > 0 {
				p.Compute(d)
			}
			switch c.Kind {
			case KindBcast:
				cc.Bcast(p, node, rbufs[g], 0, c.Bytes, c.Root)
			case KindAllreduce:
				cc.Allreduce(p, node, sbufs[g], rbufs[g], c.Bytes, c.Dt, c.Op)
			case KindReduce:
				cc.Reduce(p, node, sbufs[g], rbufs[g], c.Bytes, c.Dt, c.Op, c.Root)
			case KindBarrier:
				enter[op][g] = p.Now()
				cc.Barrier(p, node)
				exit[op][g] = p.Now()
			}
			cw.HarnessBarrier(p, node)
			// Each rank checks only its own result buffer: shards run in
			// parallel, so cross-node byte reads would race.
			if rankErr[g] == nil {
				rankErr[g] = checkClusterRank(c, ref, g, rbufs, op)
			}
			if p.Rank == 0 {
				w := cw.Nodes[node]
				snaps[node][op] = memSnap{lines: w.Sys.Stats.LinesAllocated, bufs: w.Sys.BuffersAllocated()}
			}
		}
	})
	hash := cw.Fingerprint()
	if runErr != nil {
		return hash, runErr
	}
	for g, err := range rankErr {
		if err != nil {
			return hash, fmt.Errorf("rank %d: %w", g, err)
		}
	}
	if c.Kind == KindBarrier {
		for op := 0; op < c.Ops; op++ {
			var last sim.Time
			for _, at := range enter[op] {
				if at > last {
					last = at
				}
			}
			for g, at := range exit[op] {
				if at < last {
					return hash, fmt.Errorf("op %d: rank %d left the cluster barrier at %d, before last entry %d",
						op, g, at, last)
				}
			}
		}
	}
	for i, tr := range trackers {
		if err := tr.err(); err != nil {
			return hash, fmt.Errorf("node %d: %w", i, err)
		}
	}
	for i := range snaps {
		for op := 2; op < c.Ops; op++ {
			if snaps[i][op] != snaps[i][1] {
				return hash, fmt.Errorf("node %d: control memory grows per operation: %d lines/%d buffers after op 2, %d/%d after op %d",
					i, snaps[i][1].lines, snaps[i][1].bufs, snaps[i][op].lines, snaps[i][op].bufs, op+1)
			}
		}
	}
	return hash, nil
}

// checkClusterRank is the per-rank slice of the data oracle.
func checkClusterRank(c ClusterCase, ref *refData, g int, rbufs []*mem.Buffer, op int) error {
	switch c.Kind {
	case KindBcast, KindAllreduce:
		if diffBytes(rbufs[g].Data[:c.Bytes], ref.want[op]) >= 0 {
			return dataError("cluster", op, g, rbufs[g].Data[:c.Bytes], ref.want[op])
		}
	case KindReduce:
		if g == c.Root {
			if diffBytes(rbufs[g].Data[:c.Bytes], ref.want[op]) >= 0 {
				return dataError("cluster", op, g, rbufs[g].Data[:c.Bytes], ref.want[op])
			}
			return nil
		}
		junk := make([]byte, c.Bytes)
		fillJunk(junk, uint64(op))
		if i := diffBytes(rbufs[g].Data[:c.Bytes], junk); i >= 0 {
			return fmt.Errorf("cluster: op %d: non-root rank %d result buffer written at byte %d", op, g, i)
		}
	}
	return nil
}

// ExploreCluster sweeps randomized cluster configurations the way Explore
// sweeps single-node ones: each case runs under several schedules (FIFO
// first), and every run doubles as a sequential-vs-sharded determinism
// check (RunClusterCase runs both and compares fingerprints).
func ExploreCluster(o Options) Summary {
	if o.Configs <= 0 {
		o.Configs = 10
	}
	if o.Schedules <= 0 {
		o.Schedules = 4
	}
	base := rng{state: o.Seed ^ 0x8e5a3cbd21f04d77}
	hashes := make(map[uint64]struct{})
	sum := Summary{Configs: o.Configs}
	for ci := 0; ci < o.Configs; ci++ {
		cfgSeed := base.next()
		c := DeriveClusterCase(cfgSeed)
		if o.Log != nil {
			o.Log("cluster config %d/%d seed %#016x: %s", ci+1, o.Configs, cfgSeed, c)
		}
		for si := 0; si < o.Schedules; si++ {
			var schedSeed uint64
			if si > 0 {
				schedSeed = mix(cfgSeed, uint64(si))
			}
			s := DeriveSchedule(schedSeed)
			hash, err := RunClusterCase(c, s)
			sum.Runs++
			hashes[hash] = struct{}{}
			if err != nil {
				sum.Failures = append(sum.Failures, Failure{
					CfgSeed:   cfgSeed,
					SchedSeed: schedSeed,
					Case:      c.String(),
					Sched:     s.String(),
					Err:       err.Error(),
				})
			}
		}
	}
	sum.DistinctSchedules = len(hashes)
	return sum
}

// ReplayCluster re-runs a cluster (config, schedule) pair bit-exactly.
func ReplayCluster(cfgSeed, schedSeed uint64) (uint64, error) {
	return RunClusterCase(DeriveClusterCase(cfgSeed), DeriveSchedule(schedSeed))
}
