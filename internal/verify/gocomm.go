package verify

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"xhc/internal/gxhc"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/obs"
	"xhc/internal/sim"
)

// runGoComm cross-checks the case on the real-concurrency Go backend.
// Broadcast, barrier, allgather and scatter run for every case; allreduce
// and reduce only for float64 sum (the one reduction gxhc implements).
// Real goroutine scheduling supplies the schedule variation here; when the
// schedule enables faults the root is made a straggler before every op.
// chaos seeds the StaleReady mutant for the self-test (which also forces
// the straggler, the condition under which the mutant's junk copy is
// certain).
func runGoComm(c Case, s Schedule, chaos *gxhc.ChaosConfig, reg *obs.Registry) error {
	if (c.Kind == KindAllreduce || c.Kind == KindReduce) && (c.Dt != mpi.Float64 || c.Op != mpi.Sum) {
		return nil
	}
	gcfg := gxhc.Config{
		GroupSize:  2 + int(c.CfgSeed%3),
		ChunkBytes: c.Chunk,
		Chaos:      chaos,
	}
	comm, err := gxhc.New(c.Ranks, gcfg)
	if err != nil {
		return err
	}
	// Observe the communicator: a wall-clock world whose recorder gets one
	// flight record per (participant, collective) via AttachRecorder.
	var wo *obs.World
	if reg != nil {
		wo = reg.NewWorld("gxhc", c.Ranks, obs.WallTicksPerUS, obs.WallClock())
		wo.Rec.Backend = "gxhc"
		wo.Rec.SetReplayToken(ReplayToken(c.CfgSeed, s.SchedSeed))
		comm.AttachRecorder(wo.Rec)
	}
	ref := buildRef(c)
	var delay time.Duration
	if s.Faults || chaos != nil {
		delay = 200 * time.Microsecond
	}

	stamps := make([]atomic.Uint64, c.Ranks) // barrier arrival stamps
	errs := make([]error, c.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < c.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			straggle := func() {
				if rank == c.Root && delay > 0 {
					if wo != nil {
						wo.Rec.CountFault(obs.FaultGxhcStraggler)
					}
					time.Sleep(delay)
				}
			}
			switch c.Kind {
			case KindBcast:
				buf := make([]byte, c.Bytes)
				for op := 0; op < c.Ops; op++ {
					copy(buf, ref.fill[op][rank])
					straggle()
					comm.Bcast(rank, buf, c.Root)
					if errs[rank] == nil && c.Bytes > 0 && diffBytes(buf, ref.want[op]) >= 0 {
						got := append([]byte(nil), buf...)
						errs[rank] = dataError("gxhc bcast", op, rank, got, ref.want[op])
					}
				}
			case KindBarrier:
				for op := 0; op < c.Ops; op++ {
					straggle()
					stamps[rank].Store(uint64(op + 1))
					comm.Barrier(rank)
					for rk := 0; rk < c.Ranks && errs[rank] == nil; rk++ {
						if got := stamps[rk].Load(); got < uint64(op+1) {
							errs[rank] = fmt.Errorf("gxhc barrier: op %d: rank %d left while rank %d's stamp is %d (want >= %d)",
								op, rank, rk, got, op+1)
						}
					}
				}
			case KindAllgather:
				in := make([]byte, c.Bytes)
				out := make([]byte, c.Bytes*c.Ranks)
				for op := 0; op < c.Ops; op++ {
					copy(in, ref.fill[op][rank])
					fillJunk(out, uint64(op))
					straggle()
					comm.Allgather(rank, in, out)
					if errs[rank] == nil && len(out) > 0 && diffBytes(out, ref.want[op]) >= 0 {
						got := append([]byte(nil), out...)
						errs[rank] = dataError("gxhc allgather", op, rank, got, ref.want[op])
					}
				}
			case KindScatter:
				var in []byte
				if rank == c.Root {
					in = make([]byte, c.Bytes*c.Ranks)
				}
				out := make([]byte, c.Bytes)
				for op := 0; op < c.Ops; op++ {
					if rank == c.Root {
						copy(in, ref.fill[op][rank])
					}
					fillJunk(out, uint64(op))
					straggle()
					comm.Scatter(rank, in, out, c.Root)
					if errs[rank] == nil && c.Bytes > 0 {
						want := ref.want[op][rank*c.Bytes : (rank+1)*c.Bytes]
						if diffBytes(out, want) >= 0 {
							got := append([]byte(nil), out...)
							errs[rank] = dataError("gxhc scatter", op, rank, got, want)
						}
					}
				}
			default: // allreduce / reduce, float64 sum only
				n := c.Bytes / 8
				src := make([]float64, n)
				dst := make([]float64, n)
				want := make([]float64, n)
				for op := 0; op < c.Ops; op++ {
					mpi.DecodeFloat64s(ref.fill[op][rank], src)
					mpi.DecodeFloat64s(ref.want[op], want)
					for i := range dst {
						dst[i] = math.NaN()
					}
					straggle()
					if c.Kind == KindReduce {
						comm.ReduceFloat64(rank, dst, src, c.Root)
					} else {
						comm.AllreduceFloat64(rank, dst, src)
					}
					if errs[rank] != nil {
						continue
					}
					if c.Kind == KindReduce && rank != c.Root {
						// Non-root dst must keep its NaN sentinels: gxhc's
						// rooted reduce accumulates in internal scratch.
						for i := range dst {
							if !math.IsNaN(dst[i]) {
								errs[rank] = fmt.Errorf("gxhc reduce: op %d: non-root rank %d dst written at elem %d", op, rank, i)
								break
							}
						}
						continue
					}
					for i := range want {
						if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
							got := make([]byte, c.Bytes)
							mpi.EncodeFloat64s(got, dst)
							errs[rank] = dataError("gxhc "+c.Kind.String(), op, rank, got, ref.want[op])
							break
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if wo != nil {
		// No memory model or engine behind gxhc; fold only the recorder's
		// histograms and close out the detector.
		wo.Finish(mem.Stats{}, sim.EngineStats{})
	}
	for _, e := range errs {
		if e != nil {
			if wo != nil {
				wo.Rec.DumpNow("failure", e.Error())
			}
			return e
		}
	}
	return nil
}
