package verify

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"xhc/internal/gxhc"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/obs"
	"xhc/internal/sim"
)

// gxhcOp maps the case's MPI reduction to gxhc's float64 kernel set.
// Sum/min/max are covered (min/max fold with math.Min/math.Max, exactly
// mpi.ReduceBytes' semantics); prod and the integer datatypes are not
// implemented by the Go backend and gate the case off.
func gxhcOp(c Case) (gxhc.ReduceOp, bool) {
	if c.Dt != mpi.Float64 {
		return 0, false
	}
	switch c.Op {
	case mpi.Sum:
		return gxhc.OpSum, true
	case mpi.Min:
		return gxhc.OpMin, true
	case mpi.Max:
		return gxhc.OpMax, true
	}
	return 0, false
}

// runGoComm cross-checks the case on the real-concurrency Go backend.
// Broadcast, barrier, allgather and scatter run for every case; allreduce
// and reduce for the float64 reductions gxhc implements (sum, min, max).
// Real goroutine scheduling supplies the schedule variation here; when the
// schedule enables faults the root is made a straggler before every op.
// chaos seeds the StaleReady mutant for the self-test (which also forces
// the straggler, the condition under which the mutant's junk copy is
// certain).
//
// Every clean case runs twice: once with the default parking waiter and
// once with the Spin escape hatch. Both compare byte-exactly against the
// same deterministic reference, so the two waiter paths are differentially
// checked against each other — a waiter bug (missed wakeup, premature
// release) surfaces as a replayable verify failure naming the mode.
func runGoComm(c Case, s Schedule, chaos *gxhc.ChaosConfig, reg *obs.Registry) error {
	if c.Kind == KindAllreduce || c.Kind == KindReduce {
		if _, ok := gxhcOp(c); !ok {
			return nil
		}
	}
	if err := runGoCommMode(c, s, chaos, reg, false); err != nil {
		return err
	}
	if chaos != nil {
		// The mutation self-test only needs one waiter mode.
		return nil
	}
	return runGoCommMode(c, s, nil, reg, true)
}

func runGoCommMode(c Case, s Schedule, chaos *gxhc.ChaosConfig, reg *obs.Registry, spin bool) error {
	be := "gxhc"
	if spin {
		be = "gxhc-spin"
	}
	gcfg := gxhc.Config{
		GroupSize:  2 + int(c.CfgSeed%3),
		ChunkBytes: c.Chunk,
		Spin:       spin,
		Chaos:      chaos,
	}
	comm, err := gxhc.New(c.Ranks, gcfg)
	if err != nil {
		return err
	}
	// Observe the communicator: a wall-clock world whose recorder gets one
	// flight record per (participant, collective) via AttachRecorder.
	var wo *obs.World
	if reg != nil {
		wo = reg.NewWorld(be, c.Ranks, obs.WallTicksPerUS, obs.WallClock())
		wo.Rec.Backend = be
		wo.Rec.SetReplayToken(ReplayToken(c.CfgSeed, s.SchedSeed))
		comm.AttachRecorder(wo.Rec)
	}
	ref := buildRef(c)
	var delay time.Duration
	if s.Faults || chaos != nil {
		delay = 200 * time.Microsecond
	}

	stamps := make([]atomic.Uint64, c.Ranks) // barrier arrival stamps
	errs := make([]error, c.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < c.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			straggle := func() {
				if rank == c.Root && delay > 0 {
					if wo != nil {
						wo.Rec.CountFault(obs.FaultGxhcStraggler)
					}
					time.Sleep(delay)
				}
			}
			// Mid-run tuning switch, at the same op boundary the simulated
			// run uses: every rank calls ApplyTuning collectively before
			// issuing op AfterOp+1 (the rendezvous inside quiesces the
			// communicator), and the byte-exactness oracle below must hold
			// unchanged across the plan change.
			retune := func(op int) {
				if c.Switch != nil && op == c.Switch.AfterOp+1 {
					comm.ApplyTuning(rank, c.Switch.gxhcTuning())
				}
			}
			switch c.Kind {
			case KindBcast:
				buf := make([]byte, c.Bytes)
				for op := 0; op < c.Ops; op++ {
					retune(op)
					copy(buf, ref.fill[op][rank])
					straggle()
					comm.Bcast(rank, buf, c.Root)
					if errs[rank] == nil && c.Bytes > 0 && diffBytes(buf, ref.want[op]) >= 0 {
						got := append([]byte(nil), buf...)
						errs[rank] = dataError(be+" bcast", op, rank, got, ref.want[op])
					}
				}
			case KindBarrier:
				for op := 0; op < c.Ops; op++ {
					retune(op)
					straggle()
					stamps[rank].Store(uint64(op + 1))
					comm.Barrier(rank)
					for rk := 0; rk < c.Ranks && errs[rank] == nil; rk++ {
						if got := stamps[rk].Load(); got < uint64(op+1) {
							errs[rank] = fmt.Errorf("%s barrier: op %d: rank %d left while rank %d's stamp is %d (want >= %d)",
								be, op, rank, rk, got, op+1)
						}
					}
				}
			case KindAllgather:
				in := make([]byte, c.Bytes)
				out := make([]byte, c.Bytes*c.Ranks)
				for op := 0; op < c.Ops; op++ {
					retune(op)
					copy(in, ref.fill[op][rank])
					fillJunk(out, uint64(op))
					straggle()
					comm.Allgather(rank, in, out)
					if errs[rank] == nil && len(out) > 0 && diffBytes(out, ref.want[op]) >= 0 {
						got := append([]byte(nil), out...)
						errs[rank] = dataError(be+" allgather", op, rank, got, ref.want[op])
					}
				}
			case KindScatter:
				var in []byte
				if rank == c.Root {
					in = make([]byte, c.Bytes*c.Ranks)
				}
				out := make([]byte, c.Bytes)
				for op := 0; op < c.Ops; op++ {
					retune(op)
					if rank == c.Root {
						copy(in, ref.fill[op][rank])
					}
					fillJunk(out, uint64(op))
					straggle()
					comm.Scatter(rank, in, out, c.Root)
					if errs[rank] == nil && c.Bytes > 0 {
						want := ref.want[op][rank*c.Bytes : (rank+1)*c.Bytes]
						if diffBytes(out, want) >= 0 {
							got := append([]byte(nil), out...)
							errs[rank] = dataError(be+" scatter", op, rank, got, want)
						}
					}
				}
			default: // allreduce / reduce, float64 sum/min/max
				rop, _ := gxhcOp(c)
				n := c.Bytes / 8
				src := make([]float64, n)
				dst := make([]float64, n)
				want := make([]float64, n)
				for op := 0; op < c.Ops; op++ {
					retune(op)
					mpi.DecodeFloat64s(ref.fill[op][rank], src)
					mpi.DecodeFloat64s(ref.want[op], want)
					for i := range dst {
						dst[i] = math.NaN()
					}
					straggle()
					if c.Kind == KindReduce {
						comm.ReduceFloat64Op(rank, dst, src, c.Root, rop)
					} else {
						comm.AllreduceFloat64Op(rank, dst, src, rop)
					}
					if errs[rank] != nil {
						continue
					}
					if c.Kind == KindReduce && rank != c.Root {
						// Non-root dst must keep its NaN sentinels: gxhc's
						// rooted reduce accumulates in internal scratch.
						for i := range dst {
							if !math.IsNaN(dst[i]) {
								errs[rank] = fmt.Errorf("%s reduce: op %d: non-root rank %d dst written at elem %d", be, op, rank, i)
								break
							}
						}
						continue
					}
					for i := range want {
						if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
							got := make([]byte, c.Bytes)
							mpi.EncodeFloat64s(got, dst)
							errs[rank] = dataError(be+" "+c.Kind.String(), op, rank, got, ref.want[op])
							break
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if wo != nil {
		// No memory model or engine behind gxhc; fold only the recorder's
		// histograms and close out the detector.
		wo.Finish(mem.Stats{}, sim.EngineStats{})
	}
	for _, e := range errs {
		if e != nil {
			if wo != nil {
				wo.Rec.DumpNow("failure", e.Error())
			}
			return e
		}
	}
	return nil
}
