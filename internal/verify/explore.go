package verify

import "xhc/internal/obs"

// Options parameterizes an exploration sweep.
type Options struct {
	// Configs is the number of randomized configurations (default 20).
	Configs int
	// Schedules is the number of schedules per configuration (default 12);
	// the first is always the unperturbed FIFO schedule.
	Schedules int
	// Seed varies the whole sweep; the default sweep uses 0.
	Seed uint64
	// Log, when non-nil, receives one progress line per configuration.
	Log func(format string, args ...any)
	// Obs, when non-nil, observes every run: latency histograms, injected-
	// fault counters and failure flight dumps flow into this registry.
	Obs *obs.Registry
}

// Failure records one failing run with the pair of seeds that replays it.
type Failure struct {
	CfgSeed   uint64
	SchedSeed uint64
	Case      string
	Sched     string
	Err       string
}

// Summary is the result of an exploration sweep.
type Summary struct {
	Configs int
	Runs    int
	// DistinctSchedules counts distinct schedule fingerprints observed
	// across all XHC runs — proof the sweep explored genuinely different
	// interleavings rather than re-running one.
	DistinctSchedules int
	// ConcRuns counts runs whose case carried a concurrency phase
	// (overlapping communicators with non-blocking requests in flight) —
	// proof the sweep exercised concurrent schedules, not only the
	// one-collective-at-a-time ones.
	ConcRuns int
	Failures []Failure
}

// Explore sweeps Configs randomized configurations, running each under
// Schedules distinct schedules (FIFO first, then seeded random/PCT
// tie-breaking with jitter and fault injection), cross-checking XHC, a
// baseline component and the gxhc backend on every run. Failures carry the
// (config, schedule) seed pair for exact replay.
func Explore(o Options) Summary {
	if o.Configs <= 0 {
		o.Configs = 20
	}
	if o.Schedules <= 0 {
		o.Schedules = 12
	}
	base := rng{state: o.Seed ^ 0xda3e39cb94b95bdb}
	hashes := make(map[uint64]struct{})
	sum := Summary{Configs: o.Configs}
	for ci := 0; ci < o.Configs; ci++ {
		cfgSeed := base.next()
		c := DeriveCase(cfgSeed)
		if o.Log != nil {
			o.Log("config %d/%d seed %#016x: %s", ci+1, o.Configs, cfgSeed, c)
		}
		for si := 0; si < o.Schedules; si++ {
			var schedSeed uint64
			if si > 0 {
				schedSeed = mix(cfgSeed, uint64(si))
			}
			s := DeriveSchedule(schedSeed)
			hash, err := RunCaseObs(c, s, o.Obs)
			sum.Runs++
			if c.Conc != nil {
				sum.ConcRuns++
			}
			hashes[hash] = struct{}{}
			if err != nil {
				sum.Failures = append(sum.Failures, Failure{
					CfgSeed:   cfgSeed,
					SchedSeed: schedSeed,
					Case:      c.String(),
					Sched:     s.String(),
					Err:       err.Error(),
				})
			}
		}
	}
	sum.DistinctSchedules = len(hashes)
	return sum
}

// Replay re-runs the (config, schedule) pair of a reported failure
// bit-exactly and returns its fingerprint and verdict.
func Replay(cfgSeed, schedSeed uint64) (uint64, error) {
	return RunCase(DeriveCase(cfgSeed), DeriveSchedule(schedSeed))
}
