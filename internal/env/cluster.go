// Cluster runtime: a multi-node job is one World per node — each with its
// own engine and memory system, i.e. an ENGINE SHARD — joined by an
// inter-node Fabric. Shards run in parallel between inter-node
// synchronization points; all cross-shard state moves in a sequential
// coordinator phase, which is what keeps every report and schedule
// fingerprint bit-exact at any worker count or GOMAXPROCS (the determinism
// argument is spelled out in DESIGN.md §14).
package env

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// ClusterWorld is a multi-node MPI job of Cl.Nodes x PerNode ranks.
type ClusterWorld struct {
	Cl      *topo.Cluster
	Nodes   []*World
	Fabric  *mem.Fabric
	PerNode int
	N       int

	// Workers is the number of goroutines running shards between
	// synchronization points (0: GOMAXPROCS, 1: fully sequential — the
	// byte-identical reference the check gate compares against).
	Workers int

	// Per-node outboxes, appended by that node's procs while its shard
	// runs (single goroutine at a time) and drained by the coordinator
	// while all shards are stopped — never touched concurrently.
	outbox [][]*fabricOp

	// arrivals[src*nodes+dst] is the FIFO of transmitted-but-undelivered
	// messages per directed node pair; recvQ mirrors it for posted
	// receives. Fabric sends are eager (CICO staging into the NIC buffer),
	// so a message can arrive before its receive is posted and vice versa.
	arrivals [][]arrival
	recvQ    [][]*fabricOp

	gb clusterBarrier

	batch []*mem.Msg // reusable Solve batch
}

type opKind uint8

const (
	opSend opKind = iota
	opRecv
)

// fabricOp is one posted fabric operation: an eager send (payload already
// snapshotted from the NIC staging buffer) or a receive (delivery target).
type fabricOp struct {
	kind    opKind
	src     int // source node
	dst     int // destination node
	bytes   int
	payload []byte      // sends: staged copy of the outgoing bytes
	buf     *mem.Buffer // recvs: destination NIC buffer
	off     int
	posted  sim.Time
	proc    *sim.Proc
	token   uint64
	msg     mem.Msg // send solve slot
}

// arrival is a transmitted message waiting for its receive.
type arrival struct {
	at   sim.Time
	data []byte
}

// clusterBarrier is the cross-node harness rendezvous (measurement
// scaffolding, charges no model time — the cluster analogue of
// HarnessBarrier). Arrivals append to per-node slices so shard goroutines
// never share a slice; release happens in the coordinator.
type clusterBarrier struct {
	epoch   uint64
	arrived int
	waiters [][]clusterWaiter
}

type clusterWaiter struct {
	p     *sim.Proc
	token uint64
	at    sim.Time
}

// NewClusterWorld creates a cluster job: one fresh World per node (same
// node platform, same rank-to-core mapping m, PerNode = len(m)) joined by
// a fabric with the given parameters.
func NewClusterWorld(cl *topo.Cluster, m topo.Mapping, params mem.Params, fp mem.FabricParams) *ClusterWorld {
	nodes := make([]*World, cl.Nodes)
	for i := range nodes {
		nodes[i] = NewWorldParams(cl.Node, m, params)
		if nodes[i].Obs != nil && nodes[i].Obs.Rec != nil {
			// Stamp the node id into every flight record the shard takes,
			// so cross-shard forensics and the cluster straggler scan can
			// attribute records to nodes.
			nodes[i].Obs.Rec.SetNode(i)
		}
	}
	nn := cl.Nodes
	cw := &ClusterWorld{
		Cl:       cl,
		Nodes:    nodes,
		Fabric:   mem.NewFabric(nn, fp),
		PerNode:  len(m),
		N:        nn * len(m),
		outbox:   make([][]*fabricOp, nn),
		arrivals: make([][]arrival, nn*nn),
		recvQ:    make([][]*fabricOp, nn*nn),
	}
	cw.gb.waiters = make([][]clusterWaiter, nn)
	return cw
}

// NewClusterWorldDefault is NewClusterWorld with the platform-default
// memory parameters and the default fabric.
func NewClusterWorldDefault(cl *topo.Cluster, m topo.Mapping) *ClusterWorld {
	return NewClusterWorld(cl, m, mem.DefaultParams(cl.Node), mem.DefaultFabricParams())
}

// GlobalRank returns the global rank of a node's local rank.
func (cw *ClusterWorld) GlobalRank(node, local int) int { return node*cw.PerNode + local }

// EnableScheduleHash turns on schedule fingerprinting in every shard.
func (cw *ClusterWorld) EnableScheduleHash() {
	for _, w := range cw.Nodes {
		w.Sys.Eng.EnableScheduleHash()
	}
}

// Fingerprint combines the per-shard schedule hashes, in node order, into
// the cluster fingerprint (see sim.CombineShardHashes for why this is
// independent of worker count and GOMAXPROCS).
func (cw *ClusterWorld) Fingerprint() uint64 {
	shards := make([]uint64, len(cw.Nodes))
	for i, w := range cw.Nodes {
		shards[i] = w.Sys.Eng.ScheduleHash()
	}
	return sim.CombineShardHashes(shards)
}

// Send posts an eager fabric send of buf[off:off+n] from node src to node
// dst and blocks p until the source link transfer completes (TxDone) — at
// which point the staging buffer is reusable. The payload is snapshotted
// at post time: the bytes travel even if the sender overwrites the buffer
// afterwards, which is exactly the CICO staging semantics of a NIC buffer.
func (cw *ClusterWorld) Send(p *Proc, src, dst int, buf *mem.Buffer, off, n int) {
	if n > 0 && (off < 0 || off+n > buf.Len()) {
		panic(fmt.Sprintf("env: fabric send out of range: [%d:+%d]/%d", off, n, buf.Len()))
	}
	if n < 0 {
		panic(fmt.Sprintf("env: negative fabric send length %d", n))
	}
	op := &fabricOp{
		kind:   opSend,
		src:    src,
		dst:    dst,
		bytes:  n,
		posted: p.S.Now(),
		proc:   p.S,
	}
	if n > 0 {
		op.payload = make([]byte, n)
		copy(op.payload, buf.Data[off:off+n])
	}
	op.token = p.S.NextSuspendToken()
	cw.outbox[src] = append(cw.outbox[src], op)
	p.S.Suspend("fabric send")
}

// Recv posts a fabric receive from node src into node dst's buf[off:off+n]
// and blocks p until the matching message (FIFO per directed node pair)
// has arrived and its payload has been copied in. The buffer is marked
// DMA-written: caches see a fresh memory-resident version.
func (cw *ClusterWorld) Recv(p *Proc, dst, src int, buf *mem.Buffer, off, n int) {
	if n > 0 && (off < 0 || off+n > buf.Len()) {
		panic(fmt.Sprintf("env: fabric recv out of range: [%d:+%d]/%d", off, n, buf.Len()))
	}
	if n < 0 {
		panic(fmt.Sprintf("env: negative fabric recv length %d", n))
	}
	op := &fabricOp{
		kind:   opRecv,
		src:    src,
		dst:    dst,
		bytes:  n,
		buf:    buf,
		off:    off,
		posted: p.S.Now(),
		proc:   p.S,
	}
	op.token = p.S.NextSuspendToken()
	cw.outbox[dst] = append(cw.outbox[dst], op)
	p.S.Suspend("fabric recv")
}

// HarnessBarrier blocks until all N ranks of the cluster have arrived.
// Like the intra-node HarnessBarrier it charges no model time beyond the
// rendezvous itself: every rank resumes at the latest arrival time (or its
// shard's current time if that shard ran ahead).
func (cw *ClusterWorld) HarnessBarrier(p *Proc, node int) {
	b := &cw.gb
	b.waiters[node] = append(b.waiters[node], clusterWaiter{
		p:     p.S,
		token: p.S.NextSuspendToken(),
		at:    p.S.Now(),
	})
	p.S.SuspendLazy("cluster harness barrier (epoch %d)", b.epoch)
}

// Run spawns PerNode rank procs on every shard and drives the cluster to
// completion: shards run in parallel until each blocks, then the
// coordinator resolves fabric traffic and the cross-node barrier, wakes
// the unblocked procs, and repeats. body receives the rank's Proc (local
// rank within its node's World) and its node index.
func (cw *ClusterWorld) Run(body func(p *Proc, node int)) error {
	for i, w := range cw.Nodes {
		node, wd := i, w
		for r := 0; r < wd.N; r++ {
			r := r
			wd.Sys.Eng.Go(fmt.Sprintf("n%dr%d", node, r), func(sp *sim.Proc) {
				body(&Proc{S: sp, W: wd, Rank: r, Core: wd.Map.Core(r)}, node)
			})
		}
	}
	done := make([]bool, len(cw.Nodes))
	errs := make([]error, len(cw.Nodes))
	for {
		cw.runShards(done, errs)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		allDone := true
		for _, d := range done {
			if !d {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		if !cw.sequentialPhase() {
			return cw.deadlockError()
		}
	}
	var recs []*obs.OpRecorder
	for _, w := range cw.Nodes {
		if w.Obs != nil {
			for _, fn := range w.obsFlush {
				fn(w.Obs)
			}
			w.Obs.Finish(w.Sys.Stats, w.Sys.Eng.Stats())
			if w.Obs.Rec != nil {
				recs = append(recs, w.Obs.Rec)
			}
		}
	}
	if len(recs) == len(cw.Nodes) {
		// Cross-node straggler scan: per-shard detectors only see their own
		// ranks, so node-level skew is invisible to them. Runs sequentially
		// after the shards stop — deterministic at any worker count.
		obs.ScanCluster(recs)
	}
	return nil
}

// runShards runs every shard with pending events until it blocks or
// finishes, across the worker pool. Each shard's engine is driven by
// exactly one goroutine per round; results land in pre-sized slots, so
// the host scheduler influences nothing observable.
func (cw *ClusterWorld) runShards(done []bool, errs []error) {
	var idle []int
	for i := range cw.Nodes {
		if !done[i] && cw.Nodes[i].Sys.Eng.HeapLen() > 0 {
			idle = append(idle, i)
		}
	}
	if len(idle) == 0 {
		return
	}
	w := cw.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(idle) {
		w = len(idle)
	}
	if w <= 1 {
		for _, i := range idle {
			done[i], errs[i] = cw.Nodes[i].Sys.Eng.RunUntilBlocked()
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				done[i], errs[i] = cw.Nodes[i].Sys.Eng.RunUntilBlocked()
			}
		}()
	}
	for _, i := range idle {
		next <- i
	}
	close(next)
	wg.Wait()
}

// sequentialPhase drains the outboxes in node-index order, solves the new
// sends as one fabric batch, matches arrivals against posted receives,
// and releases the cross-node barrier when full. It reports whether any
// proc was woken (no wakeups with blocked shards is a cluster deadlock).
// Every Wake clamps to the target shard's current time: a shard that ran
// ahead simply observes the delivery late, which monotone-flag protocols
// tolerate by construction (the same argument as wake-jitter injection).
func (cw *ClusterWorld) sequentialPhase() bool {
	nn := len(cw.Nodes)
	progress := false

	// Collect this round's sends (in posting order per node, nodes in
	// index order) and append receives to their pair queues.
	cw.batch = cw.batch[:0]
	var sends []*fabricOp
	for node := 0; node < nn; node++ {
		ops := cw.outbox[node]
		cw.outbox[node] = cw.outbox[node][:0]
		for _, op := range ops {
			switch op.kind {
			case opSend:
				op.msg = mem.Msg{Src: op.src, Dst: op.dst, Bytes: op.bytes, Start: op.posted}
				cw.batch = append(cw.batch, &op.msg)
				sends = append(sends, op)
			case opRecv:
				q := op.src*nn + op.dst
				cw.recvQ[q] = append(cw.recvQ[q], op)
			}
		}
	}

	// Solve the batch; wake senders at TxDone and queue arrivals. Solve
	// processes in (Start, Src, Dst) order, but arrivals must enter their
	// pair FIFO in the sender's program order — which is the same thing,
	// because a node's sends are serialized by its leader's virtual time.
	cw.Fabric.Solve(cw.batch)
	for _, op := range sends {
		eng := cw.Nodes[op.src].Sys.Eng
		t := op.msg.TxDone
		if now := eng.Now(); t < now {
			t = now
		}
		eng.Wake(op.proc, op.token, t)
		q := op.src*nn + op.dst
		cw.arrivals[q] = append(cw.arrivals[q], arrival{at: op.msg.Arrive, data: op.payload})
		progress = true
	}

	// Match arrivals to receives, FIFO per directed pair.
	for q := 0; q < nn*nn; q++ {
		for len(cw.arrivals[q]) > 0 && len(cw.recvQ[q]) > 0 {
			a := cw.arrivals[q][0]
			r := cw.recvQ[q][0]
			cw.arrivals[q] = cw.arrivals[q][1:]
			cw.recvQ[q] = cw.recvQ[q][1:]
			if len(a.data) != r.bytes {
				panic(fmt.Sprintf("env: fabric message %d->%d carries %d bytes, receive posted %d",
					r.src, r.dst, len(a.data), r.bytes))
			}
			if r.bytes > 0 {
				copy(r.buf.Data[r.off:r.off+r.bytes], a.data)
				cw.Nodes[r.dst].Sys.MarkDMAWritten(r.buf)
			}
			eng := cw.Nodes[r.dst].Sys.Eng
			t := a.at
			if r.posted > t {
				t = r.posted
			}
			if now := eng.Now(); t < now {
				t = now
			}
			eng.Wake(r.proc, r.token, t)
			progress = true
		}
	}

	// Cross-node barrier: release when all N ranks are in.
	total := 0
	for node := 0; node < nn; node++ {
		total += len(cw.gb.waiters[node])
	}
	if total == cw.N && cw.N > 0 {
		var release sim.Time
		for node := 0; node < nn; node++ {
			for _, wt := range cw.gb.waiters[node] {
				if wt.at > release {
					release = wt.at
				}
			}
		}
		for node := 0; node < nn; node++ {
			eng := cw.Nodes[node].Sys.Eng
			t := release
			if now := eng.Now(); t < now {
				t = now
			}
			for _, wt := range cw.gb.waiters[node] {
				eng.Wake(wt.p, wt.token, t)
			}
			cw.gb.waiters[node] = cw.gb.waiters[node][:0]
		}
		cw.gb.epoch++
		progress = true
	}
	return progress
}

// deadlockError aggregates the per-shard blocked reports plus the pending
// fabric state.
func (cw *ClusterWorld) deadlockError() error {
	var b strings.Builder
	b.WriteString("env: cluster deadlock — all shards blocked, nothing deliverable\n")
	nn := len(cw.Nodes)
	var pend []string
	for q := 0; q < nn*nn; q++ {
		if n := len(cw.arrivals[q]); n > 0 {
			pend = append(pend, fmt.Sprintf("%d msg(s) %d->%d awaiting receive", n, q/nn, q%nn))
		}
		if n := len(cw.recvQ[q]); n > 0 {
			pend = append(pend, fmt.Sprintf("%d recv(s) %d<-%d awaiting message", n, q%nn, q/nn))
		}
	}
	waiting := 0
	for node := 0; node < nn; node++ {
		waiting += len(cw.gb.waiters[node])
	}
	if waiting > 0 {
		pend = append(pend, fmt.Sprintf("%d/%d ranks in cluster barrier", waiting, cw.N))
	}
	sort.Strings(pend)
	for _, s := range pend {
		fmt.Fprintf(&b, "  fabric: %s\n", s)
	}
	for i, w := range cw.Nodes {
		if w.Sys.Eng.Live() > 0 {
			fmt.Fprintf(&b, "node %d: %v\n", i, w.Sys.Eng.BlockedError())
		}
	}
	return fmt.Errorf("%s", b.String())
}
