package env

import (
	"runtime"
	"testing"

	"xhc/internal/sim"
	"xhc/internal/topo"
)

func newWorld(t *testing.T, nranks int) *World {
	t.Helper()
	top := topo.Epyc1P()
	return NewWorld(top, top.MustMap(topo.MapCore, nranks))
}

func TestRunSpawnsAllRanks(t *testing.T) {
	w := newWorld(t, 8)
	seen := make([]bool, 8)
	cores := make([]int, 8)
	if err := w.Run(func(p *Proc) {
		seen[p.Rank] = true
		cores[p.Rank] = p.Core
	}); err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d did not run", r)
		}
		if cores[r] != r {
			t.Errorf("rank %d on core %d, want %d (map-core)", r, cores[r], r)
		}
	}
}

func TestCopyBetweenRanks(t *testing.T) {
	w := newWorld(t, 2)
	src := w.NewBufferAt("src", 0, 64)
	dst := w.NewBufferAt("dst", 1, 64)
	for i := range src.Data {
		src.Data[i] = byte(i * 3)
	}
	if err := w.Run(func(p *Proc) {
		if p.Rank == 1 {
			p.Copy(dst, 0, src, 0, 64)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range dst.Data {
		if dst.Data[i] != byte(i*3) {
			t.Fatalf("dst[%d] = %d", i, dst.Data[i])
		}
	}
}

func TestHarnessBarrierAligns(t *testing.T) {
	w := newWorld(t, 4)
	after := make([]sim.Time, 4)
	if err := w.Run(func(p *Proc) {
		p.Compute(sim.Duration(p.Rank) * sim.Microsecond)
		p.HarnessBarrier()
		after[p.Rank] = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if after[r] != after[0] {
			t.Errorf("rank %d left barrier at %v, rank 0 at %v", r, after[r], after[0])
		}
	}
	if after[0] < 3*sim.Microsecond {
		t.Errorf("barrier released before slowest rank arrived: %v", after[0])
	}
}

func TestHarnessBarrierRepeats(t *testing.T) {
	w := newWorld(t, 3)
	counts := make([]int, 3)
	if err := w.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Compute(sim.Duration(p.Rank+1) * 100 * sim.Nanosecond)
			p.HarnessBarrier()
			counts[p.Rank]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	for r, c := range counts {
		if c != 5 {
			t.Errorf("rank %d completed %d barriers, want 5", r, c)
		}
	}
}

func TestDirtyInvalidates(t *testing.T) {
	w := newWorld(t, 2)
	src := w.NewBufferAt("src", 0, 32<<10)
	dst := w.NewBufferAt("dst", 1, 32<<10)
	var warm, cold sim.Duration
	if err := w.Run(func(p *Proc) {
		if p.Rank != 1 {
			return
		}
		p.Copy(dst, 0, src, 0, 32<<10)
		t0 := p.Now()
		p.Copy(dst, 0, src, 0, 32<<10)
		warm = p.Now() - t0
		p.Dirty(src) // modelled as: owner rewrote it (rank 1 acts for test)
		t1 := p.Now()
		p.Copy(dst, 0, src, 0, 32<<10)
		cold = p.Now() - t1
	}); err != nil {
		t.Fatal(err)
	}
	_ = cold
	if warm <= 0 {
		t.Error("warm copy should take time")
	}
}

func TestInvalidMappingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid mapping should panic")
		}
	}()
	top := topo.Epyc1P()
	NewWorld(top, topo.Mapping{0, 0})
}

// TestHarnessBarrierZeroAllocs pins the steady-state allocation profile of
// the harness barrier near zero. Benchmarks cross it twice per measured
// iteration with all ranks suspending; the previous code formatted a
// Sprintf suspend reason per waiter (~2 allocations x N-1 ranks per epoch).
// With lazy reasons and the waiter slice's backing array reused, a barrier
// epoch must not allocate beyond amortized event-heap growth.
//
// The engine is lockstep (one simulated process runs at a time), so rank 0
// can read runtime.MemStats at barrier-aligned points without racing the
// other ranks.
func TestHarnessBarrierZeroAllocs(t *testing.T) {
	const ranks = 16
	const warm = 200 // grow waiter slice + event heap backing arrays
	const iters = 200
	w := newWorld(t, ranks)
	var before, after runtime.MemStats
	if err := w.Run(func(p *Proc) {
		for i := 0; i < warm; i++ {
			p.HarnessBarrier()
		}
		if p.Rank == 0 {
			runtime.ReadMemStats(&before)
		}
		for i := 0; i < iters; i++ {
			p.HarnessBarrier()
		}
		p.HarnessBarrier() // align all ranks before the final read
		if p.Rank == 0 {
			runtime.ReadMemStats(&after)
		}
		p.HarnessBarrier() // hold everyone until the read is done
	}); err != nil {
		t.Fatal(err)
	}
	perEpoch := float64(after.Mallocs-before.Mallocs) / iters
	if perEpoch >= 4 {
		t.Fatalf("harness barrier allocates %.2f objects per epoch (%d ranks); want ~0",
			perEpoch, ranks)
	}
}
