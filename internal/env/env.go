// Package env is the runtime the collective algorithms are written
// against: a World of MPI-like ranks pinned to cores of a simulated node,
// each rank a simulated process with convenience operations for copying,
// reducing, synchronizing through shared-memory flags, and attaching to
// peers' buffers via (simulated) XPMEM.
package env

import (
	"fmt"

	"xhc/internal/mem"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// World is one intra-node MPI job: N ranks mapped onto the cores of a
// simulated platform.
type World struct {
	Sys  *mem.System
	Topo *topo.Topology
	Map  topo.Mapping
	N    int

	barrier *barrierState
}

// NewWorld creates a world of len(m) ranks on a fresh engine with default
// memory parameters for the platform.
func NewWorld(t *topo.Topology, m topo.Mapping) *World {
	return NewWorldParams(t, m, mem.DefaultParams(t))
}

// NewWorldParams creates a world with explicit memory parameters.
func NewWorldParams(t *topo.Topology, m topo.Mapping, params mem.Params) *World {
	if err := m.Validate(t); err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	return &World{
		Sys:     mem.NewSystem(eng, t, params),
		Topo:    t,
		Map:     m,
		N:       len(m),
		barrier: &barrierState{},
	}
}

// Core returns the core that rank runs on.
func (w *World) Core(rank int) int { return w.Map.Core(rank) }

// Proc is one rank's execution context during a run.
type Proc struct {
	S    *sim.Proc
	W    *World
	Rank int
	Core int
}

// Run spawns one simulated process per rank executing body and runs the
// engine to completion.
func (w *World) Run(body func(p *Proc)) error {
	for r := 0; r < w.N; r++ {
		r := r
		w.Sys.Eng.Go(fmt.Sprintf("rank%d", r), func(sp *sim.Proc) {
			body(&Proc{S: sp, W: w, Rank: r, Core: w.Map.Core(r)})
		})
	}
	return w.Sys.Eng.Run()
}

// Now returns the rank's current virtual time.
func (p *Proc) Now() sim.Time { return p.S.Now() }

// Compute advances the rank's clock by d (application compute phases).
func (p *Proc) Compute(d sim.Duration) { p.S.Sleep(d) }

// NewBuffer allocates a buffer homed at this rank's core.
func (p *Proc) NewBuffer(label string, n int) *mem.Buffer {
	return p.W.Sys.NewBuffer(label, p.Core, n)
}

// NewBufferAt allocates a buffer homed at another rank's core (used by
// communicator setup code that builds per-rank shared structures).
func (w *World) NewBufferAt(label string, rank, n int) *mem.Buffer {
	return w.Sys.NewBuffer(label, w.Map.Core(rank), n)
}

// Copy moves n bytes from src[soff:] into dst[doff:] as this rank.
func (p *Proc) Copy(dst *mem.Buffer, doff int, src *mem.Buffer, soff, n int) {
	p.W.Sys.Copy(p.S, p.Core, dst, doff, src, soff, n)
}

// Dirty marks a buffer as rewritten by this rank (the osu _mb benchmark
// variant's "alter the buffer before every iteration").
func (p *Proc) Dirty(b *mem.Buffer) {
	p.W.Sys.MarkWritten(b, p.Core)
}

// ChargeRead accounts for streaming n bytes of src through this rank.
func (p *Proc) ChargeRead(src *mem.Buffer, soff, n int) {
	p.W.Sys.ChargeRead(p.S, p.Core, src, soff, n)
}

// ChargeCompute accounts for a streaming kernel over n bytes.
func (p *Proc) ChargeCompute(n int) {
	p.W.Sys.ChargeCompute(p.S, n)
}

// barrierState implements a zero-cost rendezvous used by benchmark
// harnesses to align ranks between iterations. It deliberately charges no
// model time: it is measurement scaffolding, not part of any collective.
type barrierState struct {
	epoch   uint64
	arrived int
	waiters []waiter
}

type waiter struct {
	p     *sim.Proc
	token uint64
}

// HarnessBarrier blocks until all N ranks of the world have arrived.
func (p *Proc) HarnessBarrier() {
	b := p.W.barrier
	b.arrived++
	if b.arrived == p.W.N {
		b.arrived = 0
		b.epoch++
		now := p.S.Now()
		for _, w := range b.waiters {
			p.W.Sys.Eng.Wake(w.p, w.token, now)
		}
		b.waiters = nil
		return
	}
	b.waiters = append(b.waiters, waiter{p: p.S, token: p.S.NextSuspendToken()})
	p.S.Suspend(fmt.Sprintf("harness barrier (epoch %d)", b.epoch))
}
