// Package env is the runtime the collective algorithms are written
// against: a World of MPI-like ranks pinned to cores of a simulated node,
// each rank a simulated process with convenience operations for copying,
// reducing, synchronizing through shared-memory flags, and attaching to
// peers' buffers via (simulated) XPMEM.
package env

import (
	"fmt"

	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// Observer, when set, is invoked on every newly constructed World. It is
// the process-wide observability hook: binaries that want tracing/metrics
// install it once (before any worlds exist, typically via ObserveWorlds)
// and every world built afterwards — including the fresh world each
// benchmark size sweep creates — reports into the same registry. When nil
// (the default), world construction takes the exact same path as before.
var Observer func(*World)

// World is one intra-node MPI job: N ranks mapped onto the cores of a
// simulated platform.
type World struct {
	Sys  *mem.System
	Topo *topo.Topology
	Map  topo.Mapping
	N    int

	// Obs is this world's observability sink, nil unless an Observer
	// installed one. Components check it for nil at wiring time only;
	// nothing on the simulation hot path reads it.
	Obs *obs.World

	barrier  *barrierState
	obsFlush []func(*obs.World)

	// parent is non-nil on worlds created by Subset. Subset worlds share
	// the parent's engine and memory system, so the parent's Run is the one
	// that drains — flush registrations are forwarded there.
	parent *World
}

// NewWorld creates a world of len(m) ranks on a fresh engine with default
// memory parameters for the platform.
func NewWorld(t *topo.Topology, m topo.Mapping) *World {
	return NewWorldParams(t, m, mem.DefaultParams(t))
}

// NewWorldParams creates a world with explicit memory parameters.
func NewWorldParams(t *topo.Topology, m topo.Mapping, params mem.Params) *World {
	if err := m.Validate(t); err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	w := &World{
		Sys:     mem.NewSystem(eng, t, params),
		Topo:    t,
		Map:     m,
		N:       len(m),
		barrier: &barrierState{},
	}
	if Observer != nil {
		Observer(w)
	}
	return w
}

// ObserveWorlds installs the process-wide Observer so every World built
// afterwards feeds the given registry: each world gets a per-rank span
// tracer on the engine's virtual clock (when the registry has tracing
// enabled), a per-distance message tally, and a flow-attribution hook on
// the memory system. Call it once at program start, before any worlds are
// created; the Observer runs during construction, before rank goroutines
// exist, so no synchronization is needed on the World side.
func ObserveWorlds(reg *obs.Registry) {
	Observer = func(w *World) {
		wo := reg.NewWorld(w.Topo.Name, w.Topo.NCores, obs.SimTicksPerUS, w.Sys.Eng.Clock())
		wo.InitDistance(w.Topo, w.Map)
		w.Obs = wo
		w.Sys.OnFlow = wo.FlowHook()
	}
}

// OnObsFlush registers fn to run once after the engine drains, just before
// the world folds its counters into the registry. Components (the XHC
// communicator, most notably) use it to contribute end-of-run state such
// as registration-cache statistics. No-op ordering hazards: flush functions
// run on the caller of Run, after all rank goroutines have finished. On a
// Subset world the registration is forwarded to the root parent, whose Run
// is the one that actually drains the shared engine.
func (w *World) OnObsFlush(fn func(*obs.World)) {
	if w.parent != nil {
		w.parent.OnObsFlush(fn)
		return
	}
	w.obsFlush = append(w.obsFlush, fn)
}

// Subset derives a communicator-sized world from w: a MPI_Comm_split-style
// view containing only the given parent ranks (in the given order, which
// becomes the sub-world's rank order). The sub-world shares the parent's
// engine, memory system, topology and observability sink — it is the same
// machine, seen by fewer ranks — but gets its own barrier state. Do not
// call Run on a subset world: its ranks are driven by procs of the parent
// world (see ProcOn); only the parent's Run drains the shared engine.
func (w *World) Subset(ranks []int) *World {
	m := make(topo.Mapping, len(ranks))
	seen := make(map[int]bool, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= w.N {
			panic(fmt.Sprintf("env: subset rank %d out of world size %d", r, w.N))
		}
		if seen[r] {
			panic(fmt.Sprintf("env: duplicate rank %d in subset", r))
		}
		seen[r] = true
		m[i] = w.Map.Core(r)
	}
	root := w
	if w.parent != nil {
		root = w.parent
	}
	return &World{
		Sys:     w.Sys,
		Topo:    w.Topo,
		Map:     m,
		N:       len(ranks),
		Obs:     w.Obs,
		barrier: &barrierState{},
		parent:  root,
	}
}

// ProcOn wraps an already-running simulated process as a rank of this
// world. It is how subset worlds are driven: a parent-world proc that is
// rank r of the parent becomes rank i of the subset (the caller supplies
// the subset-local rank; the core pinning follows the world's mapping).
func (w *World) ProcOn(s *sim.Proc, rank int) *Proc {
	return &Proc{S: s, W: w, Rank: rank, Core: w.Map.Core(rank)}
}

// Core returns the core that rank runs on.
func (w *World) Core(rank int) int { return w.Map.Core(rank) }

// Proc is one rank's execution context during a run.
type Proc struct {
	S    *sim.Proc
	W    *World
	Rank int
	Core int
}

// Run spawns one simulated process per rank executing body and runs the
// engine to completion.
func (w *World) Run(body func(p *Proc)) error {
	for r := 0; r < w.N; r++ {
		r := r
		w.Sys.Eng.Go(fmt.Sprintf("rank%d", r), func(sp *sim.Proc) {
			body(&Proc{S: sp, W: w, Rank: r, Core: w.Map.Core(r)})
		})
	}
	err := w.Sys.Eng.Run()
	if w.Obs != nil {
		for _, fn := range w.obsFlush {
			fn(w.Obs)
		}
		w.Obs.Finish(w.Sys.Stats, w.Sys.Eng.Stats())
	}
	return err
}

// Now returns the rank's current virtual time.
func (p *Proc) Now() sim.Time { return p.S.Now() }

// Compute advances the rank's clock by d (application compute phases).
func (p *Proc) Compute(d sim.Duration) { p.S.Sleep(d) }

// NewBuffer allocates a buffer homed at this rank's core.
func (p *Proc) NewBuffer(label string, n int) *mem.Buffer {
	return p.W.Sys.NewBuffer(label, p.Core, n)
}

// NewBufferAt allocates a buffer homed at another rank's core (used by
// communicator setup code that builds per-rank shared structures).
func (w *World) NewBufferAt(label string, rank, n int) *mem.Buffer {
	return w.Sys.NewBuffer(label, w.Map.Core(rank), n)
}

// Copy moves n bytes from src[soff:] into dst[doff:] as this rank.
func (p *Proc) Copy(dst *mem.Buffer, doff int, src *mem.Buffer, soff, n int) {
	p.W.Sys.Copy(p.S, p.Core, dst, doff, src, soff, n)
}

// Dirty marks a buffer as rewritten by this rank (the osu _mb benchmark
// variant's "alter the buffer before every iteration").
func (p *Proc) Dirty(b *mem.Buffer) {
	p.W.Sys.MarkWritten(b, p.Core)
}

// ChargeRead accounts for streaming n bytes of src through this rank.
func (p *Proc) ChargeRead(src *mem.Buffer, soff, n int) {
	p.W.Sys.ChargeRead(p.S, p.Core, src, soff, n)
}

// ChargeCompute accounts for a streaming kernel over n bytes.
func (p *Proc) ChargeCompute(n int) {
	p.W.Sys.ChargeCompute(p.S, n)
}

// barrierState implements a zero-cost rendezvous used by benchmark
// harnesses to align ranks between iterations. It deliberately charges no
// model time: it is measurement scaffolding, not part of any collective.
type barrierState struct {
	epoch   uint64
	arrived int
	waiters []waiter
}

type waiter struct {
	p     *sim.Proc
	token uint64
}

// HarnessBarrier blocks until all N ranks of the world have arrived.
// Benchmarks cross it twice per measured iteration, so it must stay off the
// allocation profile: the waiter slice's backing array is reused across
// epochs and the suspend reason is formatted lazily (only if a deadlock
// report ever needs it).
func (p *Proc) HarnessBarrier() {
	b := p.W.barrier
	b.arrived++
	if b.arrived == p.W.N {
		b.arrived = 0
		b.epoch++
		now := p.S.Now()
		for _, w := range b.waiters {
			p.W.Sys.Eng.Wake(w.p, w.token, now)
		}
		b.waiters = b.waiters[:0]
		return
	}
	b.waiters = append(b.waiters, waiter{p: p.S, token: p.S.NextSuspendToken()})
	p.S.SuspendLazy("harness barrier (epoch %d)", b.epoch)
}
