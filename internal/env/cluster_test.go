package env

import (
	"fmt"
	"testing"

	"xhc/internal/mem"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

func testCluster(t *testing.T, nodes, perNode int) (*topo.Cluster, topo.Mapping) {
	t.Helper()
	node := topo.Epyc1P()
	cl, err := topo.NewCluster(nodes, node)
	if err != nil {
		t.Fatal(err)
	}
	m, err := node.Map(topo.MapCore, perNode)
	if err != nil {
		t.Fatal(err)
	}
	return cl, m
}

// TestClusterSendRecv pushes one message each way between two nodes and
// checks payload integrity, timing sanity, and FIFO matching.
func TestClusterSendRecv(t *testing.T) {
	cl, m := testCluster(t, 2, 1)
	cw := NewClusterWorldDefault(cl, m)
	cw.Workers = 1
	got := make([]byte, 4)
	var txDone, arrive sim.Time
	err := cw.Run(func(p *Proc, node int) {
		if node == 0 {
			b := p.NewBuffer("src", 4)
			copy(b.Data, []byte{1, 2, 3, 4})
			cw.Send(p, 0, 1, b, 0, 4)
			txDone = p.Now()
			// Overwrite after send: the fabric snapshotted the payload.
			b.Data[0] = 99
		} else {
			b := p.NewBuffer("dst", 4)
			cw.Recv(p, 1, 0, b, 0, 4)
			arrive = p.Now()
			copy(got, b.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{1, 2, 3, 4}; string(got) != string(want) {
		t.Fatalf("payload %v, want %v", got, want)
	}
	if txDone <= 0 || arrive <= txDone {
		t.Fatalf("timing: txDone=%d arrive=%d", txDone, arrive)
	}
}

// TestClusterZeroByteMessage exercises the 0-byte fabric edge: control
// messages cost pure latency and need no buffer.
func TestClusterZeroByteMessage(t *testing.T) {
	cl, m := testCluster(t, 2, 1)
	cw := NewClusterWorldDefault(cl, m)
	cw.Workers = 1
	var arrive sim.Time
	err := cw.Run(func(p *Proc, node int) {
		if node == 0 {
			cw.Send(p, 0, 1, nil, 0, 0)
		} else {
			cw.Recv(p, 1, 0, nil, 0, 0)
			arrive = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(mem.DefaultFabricParams().LinkLat); arrive != want {
		t.Fatalf("0-byte arrival at %d, want link latency %d", arrive, want)
	}
}

// TestClusterHarnessBarrier checks the cross-node rendezvous: every rank
// resumes at (or after) the latest arrival.
func TestClusterHarnessBarrier(t *testing.T) {
	cl, m := testCluster(t, 3, 2)
	cw := NewClusterWorldDefault(cl, m)
	cw.Workers = 1
	after := make([]sim.Time, cw.N)
	err := cw.Run(func(p *Proc, node int) {
		g := cw.GlobalRank(node, p.Rank)
		p.Compute(sim.Duration(g) * sim.Microsecond) // staggered arrivals
		cw.HarnessBarrier(p, node)
		after[g] = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	latest := sim.Time(sim.Duration(cw.N-1) * sim.Microsecond)
	for g, at := range after {
		if at < latest {
			t.Fatalf("rank %d left barrier at %d, before latest arrival %d", g, at, latest)
		}
	}
}

// TestClusterDeadlockReported pins that an unmatched receive surfaces as a
// cluster deadlock error rather than a hang.
func TestClusterDeadlockReported(t *testing.T) {
	cl, m := testCluster(t, 2, 1)
	cw := NewClusterWorldDefault(cl, m)
	cw.Workers = 1
	err := cw.Run(func(p *Proc, node int) {
		if node == 1 {
			b := p.NewBuffer("dst", 8)
			cw.Recv(p, 1, 0, b, 0, 8) // nobody sends
		}
	})
	if err == nil {
		t.Fatal("expected cluster deadlock error")
	}
}

// TestClusterWorkerCountInvariant is the sharded-vs-single-threaded
// determinism pin at the env level: the same program produces bit-equal
// schedule fingerprints and payloads at every worker count.
func TestClusterWorkerCountInvariant(t *testing.T) {
	run := func(workers int) (uint64, string) {
		cl, m := testCluster(t, 4, 4)
		cw := NewClusterWorldDefault(cl, m)
		cw.Workers = workers
		cw.EnableScheduleHash()
		out := make([]byte, cw.N)
		err := cw.Run(func(p *Proc, node int) {
			g := cw.GlobalRank(node, p.Rank)
			buf := p.NewBuffer("b", 64)
			for i := range buf.Data {
				buf.Data[i] = byte(g)
			}
			cw.HarnessBarrier(p, node)
			if p.Rank == 0 { // leaders ring-pass a token
				next := (node + 1) % cl.Nodes
				prev := (node + cl.Nodes - 1) % cl.Nodes
				if node == 0 {
					cw.Send(p, node, next, buf, 0, 64)
					cw.Recv(p, node, prev, buf, 0, 64)
				} else {
					cw.Recv(p, node, prev, buf, 0, 64)
					cw.Send(p, node, next, buf, 0, 64)
				}
			}
			cw.HarnessBarrier(p, node)
			out[g] = buf.Data[0]
		})
		if err != nil {
			t.Fatal(err)
		}
		return cw.Fingerprint(), fmt.Sprint(out)
	}
	h1, o1 := run(1)
	for _, w := range []int{2, 4, 0} {
		h, o := run(w)
		if h != h1 || o != o1 {
			t.Fatalf("workers=%d diverged: hash %#x vs %#x, out %s vs %s", w, h, h1, o, o1)
		}
	}
}
