// Package topo models the internal structure of a multicore node: the
// socket / NUMA-node / last-level-cache / core containment tree, distances
// between cores, and rank-to-core mapping policies.
//
// It plays the role that hwloc (Portable Hardware Locality) plays for the
// paper's XHC component: discovering where each core sits so that the
// hierarchy construction in package hier can group neighbouring cores.
package topo

import (
	"fmt"
	"strings"
)

// DistanceClass classifies the topological distance between two cores.
// The paper's Fig. 1a measures transfer performance per class: transfers
// between cores sharing a last-level cache are fastest, then intra-NUMA,
// then cross-NUMA, and cross-socket transfers are slowest.
type DistanceClass int

const (
	// SelfCore is the distance from a core to itself.
	SelfCore DistanceClass = iota
	// CacheLocal means the two cores share a last-level cache (e.g. an
	// AMD Epyc CCX). Not present on systems without shared LLCs (ARM-N1).
	CacheLocal
	// IntraNUMA means same NUMA node but no shared LLC.
	IntraNUMA
	// CrossNUMA means same socket, different NUMA nodes.
	CrossNUMA
	// CrossSocket means different sockets (not applicable on 1-socket nodes).
	CrossSocket
)

// String returns the paper's name for the distance class.
func (d DistanceClass) String() string {
	switch d {
	case SelfCore:
		return "self"
	case CacheLocal:
		return "cache-local"
	case IntraNUMA:
		return "intra-numa"
	case CrossNUMA:
		return "cross-numa"
	case CrossSocket:
		return "cross-socket"
	}
	return fmt.Sprintf("DistanceClass(%d)", int(d))
}

// Topology describes one multicore node. Cores are identified by dense ids
// in [0, NCores). The containment tree is regular: every socket has the
// same number of NUMA nodes, every NUMA node the same number of cores, and
// (when present) every shared LLC group the same number of cores.
type Topology struct {
	// Name is the platform codename (e.g. "Epyc-2P").
	Name string
	// Arch is the ISA name, as in the paper's Table I.
	Arch string

	// NCores, NNUMA, NSockets give the totals of Table I.
	NCores   int
	NNUMA    int
	NSockets int

	// NLLC is the number of shared-LLC core groups, 0 when the platform
	// has no cache level shared between neighbouring cores (ARM-N1).
	NLLC int

	// CoresPerLLC is the size of a shared-LLC group (0 when NLLC == 0).
	CoresPerLLC int

	// CacheLineBytes is the coherence granule (64 on all three platforms).
	CacheLineBytes int

	// LLCBytes is the capacity of one shared LLC group, 0 when absent.
	LLCBytes int64
	// SLCBytes is the capacity of the per-socket system-level cache on
	// mesh-based platforms (ARM-N1); 0 when the platform has shared LLCs.
	SLCBytes int64

	coreSocket []int
	coreNUMA   []int
	coreLLC    []int // -1 entries when NLLC == 0
	numaSocket []int
	numaCores  [][]int
	llcCores   [][]int
	sockCores  [][]int
}

// Config is the input to New: a regular description of a node.
type Config struct {
	Name           string
	Arch           string
	Sockets        int
	NUMAPerSocket  int
	CoresPerNUMA   int
	CoresPerLLC    int // 0: no cache shared between cores
	CacheLineBytes int
	LLCBytes       int64
	SLCBytes       int64
}

// New builds a Topology from a regular Config. It returns an error if the
// configuration is not internally consistent (e.g. an LLC group size that
// does not divide the NUMA node size).
func New(cfg Config) (*Topology, error) {
	if cfg.Sockets <= 0 || cfg.NUMAPerSocket <= 0 || cfg.CoresPerNUMA <= 0 {
		return nil, fmt.Errorf("topo: non-positive shape %d/%d/%d",
			cfg.Sockets, cfg.NUMAPerSocket, cfg.CoresPerNUMA)
	}
	if cfg.CoresPerLLC < 0 {
		return nil, fmt.Errorf("topo: negative CoresPerLLC %d", cfg.CoresPerLLC)
	}
	if cfg.CoresPerLLC > 0 && cfg.CoresPerNUMA%cfg.CoresPerLLC != 0 {
		return nil, fmt.Errorf("topo: CoresPerLLC %d does not divide CoresPerNUMA %d",
			cfg.CoresPerLLC, cfg.CoresPerNUMA)
	}
	if cfg.CacheLineBytes <= 0 {
		cfg.CacheLineBytes = 64
	}

	t := &Topology{
		Name:           cfg.Name,
		Arch:           cfg.Arch,
		NSockets:       cfg.Sockets,
		NNUMA:          cfg.Sockets * cfg.NUMAPerSocket,
		NCores:         cfg.Sockets * cfg.NUMAPerSocket * cfg.CoresPerNUMA,
		CoresPerLLC:    cfg.CoresPerLLC,
		CacheLineBytes: cfg.CacheLineBytes,
		LLCBytes:       cfg.LLCBytes,
		SLCBytes:       cfg.SLCBytes,
	}
	if cfg.CoresPerLLC > 0 {
		t.NLLC = t.NCores / cfg.CoresPerLLC
	}

	t.coreSocket = make([]int, t.NCores)
	t.coreNUMA = make([]int, t.NCores)
	t.coreLLC = make([]int, t.NCores)
	t.numaSocket = make([]int, t.NNUMA)
	t.numaCores = make([][]int, t.NNUMA)
	t.sockCores = make([][]int, t.NSockets)
	if t.NLLC > 0 {
		t.llcCores = make([][]int, t.NLLC)
	}

	for c := 0; c < t.NCores; c++ {
		numa := c / cfg.CoresPerNUMA
		sock := numa / cfg.NUMAPerSocket
		t.coreNUMA[c] = numa
		t.coreSocket[c] = sock
		t.numaCores[numa] = append(t.numaCores[numa], c)
		t.sockCores[sock] = append(t.sockCores[sock], c)
		if t.NLLC > 0 {
			llc := c / cfg.CoresPerLLC
			t.coreLLC[c] = llc
			t.llcCores[llc] = append(t.llcCores[llc], c)
		} else {
			t.coreLLC[c] = -1
		}
	}
	for n := 0; n < t.NNUMA; n++ {
		t.numaSocket[n] = n / cfg.NUMAPerSocket
	}
	return t, nil
}

// MustNew is New for statically-known configurations; it panics on error.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// HasSharedLLC reports whether neighbouring cores share a last-level cache.
func (t *Topology) HasSharedLLC() bool { return t.NLLC > 0 }

// Socket returns the socket index of core c.
func (t *Topology) Socket(c int) int { return t.coreSocket[c] }

// NUMA returns the NUMA node index of core c.
func (t *Topology) NUMA(c int) int { return t.coreNUMA[c] }

// LLC returns the shared-LLC group index of core c, or -1 when the
// platform has no cache shared between cores.
func (t *Topology) LLC(c int) int { return t.coreLLC[c] }

// NUMASocket returns the socket that NUMA node n belongs to.
func (t *Topology) NUMASocket(n int) int { return t.numaSocket[n] }

// NUMACores returns the cores of NUMA node n. The slice must not be modified.
func (t *Topology) NUMACores(n int) []int { return t.numaCores[n] }

// SocketCores returns the cores of socket s. The slice must not be modified.
func (t *Topology) SocketCores(s int) []int { return t.sockCores[s] }

// LLCCores returns the cores of shared-LLC group l. Nil when NLLC == 0.
func (t *Topology) LLCCores(l int) []int {
	if t.NLLC == 0 {
		return nil
	}
	return t.llcCores[l]
}

// Distance classifies the topological distance between cores a and b.
func (t *Topology) Distance(a, b int) DistanceClass {
	switch {
	case a == b:
		return SelfCore
	case t.coreLLC[a] >= 0 && t.coreLLC[a] == t.coreLLC[b]:
		return CacheLocal
	case t.coreNUMA[a] == t.coreNUMA[b]:
		return IntraNUMA
	case t.coreSocket[a] == t.coreSocket[b]:
		return CrossNUMA
	default:
		return CrossSocket
	}
}

// DomainCores returns the cores of the given domain level containing core c:
// "llc", "numa" or "socket".
func (t *Topology) DomainCores(level string, c int) ([]int, error) {
	switch level {
	case "llc":
		if t.NLLC == 0 {
			return nil, fmt.Errorf("topo: %s has no shared LLC", t.Name)
		}
		return t.llcCores[t.coreLLC[c]], nil
	case "numa":
		return t.numaCores[t.coreNUMA[c]], nil
	case "socket":
		return t.sockCores[t.coreSocket[c]], nil
	}
	return nil, fmt.Errorf("topo: unknown domain level %q", level)
}

// String renders a compact one-line summary, Table I style.
func (t *Topology) String() string {
	llc := "none"
	if t.NLLC > 0 {
		llc = fmt.Sprintf("%d groups of %d", t.NLLC, t.CoresPerLLC)
	}
	return fmt.Sprintf("%s (%s): %d cores, %d NUMA, %d sockets, shared LLC: %s",
		t.Name, t.Arch, t.NCores, t.NNUMA, t.NSockets, llc)
}

// Render draws the containment tree as indented text (used by cmd/xhctopo).
func (t *Topology) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.String())
	for s := 0; s < t.NSockets; s++ {
		fmt.Fprintf(&b, "  socket %d\n", s)
		for n := 0; n < t.NNUMA; n++ {
			if t.numaSocket[n] != s {
				continue
			}
			fmt.Fprintf(&b, "    numa %d: cores %s\n", n, rangeString(t.numaCores[n]))
			if t.NLLC > 0 {
				seen := map[int]bool{}
				for _, c := range t.numaCores[n] {
					l := t.coreLLC[c]
					if seen[l] {
						continue
					}
					seen[l] = true
					fmt.Fprintf(&b, "      llc %d: cores %s\n", l, rangeString(t.llcCores[l]))
				}
			}
		}
	}
	return b.String()
}

// rangeString renders a sorted dense core list as "lo-hi" or a comma list.
func rangeString(cores []int) string {
	if len(cores) == 0 {
		return "(none)"
	}
	dense := true
	for i := 1; i < len(cores); i++ {
		if cores[i] != cores[i-1]+1 {
			dense = false
			break
		}
	}
	if dense && len(cores) > 1 {
		return fmt.Sprintf("%d-%d", cores[0], cores[len(cores)-1])
	}
	parts := make([]string, len(cores))
	for i, c := range cores {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}
