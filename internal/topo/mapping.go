package topo

import "fmt"

// A Mapping assigns MPI ranks to cores: Mapping[rank] == core id.
// The paper's Fig. 9a compares two launch-time policies: sequential
// ("map-core", OpenMPI --map-by core) and NUMA-round-robin ("map-numa",
// --map-by numa).
type Mapping []int

// MapPolicy names a rank-to-core mapping policy.
type MapPolicy string

const (
	// MapCore assigns ranks to cores sequentially: rank i -> core i.
	MapCore MapPolicy = "map-core"
	// MapNUMA assigns ranks to NUMA nodes round-robin: consecutive ranks
	// land on different NUMA nodes.
	MapNUMA MapPolicy = "map-numa"
)

// Map builds a Mapping of nranks ranks onto t with the given policy.
// It returns an error for unknown policies or if nranks exceeds the number
// of cores (the paper never oversubscribes).
func (t *Topology) Map(policy MapPolicy, nranks int) (Mapping, error) {
	if nranks <= 0 || nranks > t.NCores {
		return nil, fmt.Errorf("topo: cannot map %d ranks onto %d cores", nranks, t.NCores)
	}
	m := make(Mapping, nranks)
	switch policy {
	case MapCore:
		for r := 0; r < nranks; r++ {
			m[r] = r
		}
	case MapNUMA:
		// Round-robin over NUMA nodes, taking the next free core of each.
		next := make([]int, t.NNUMA)
		r := 0
		for r < nranks {
			placed := false
			for n := 0; n < t.NNUMA && r < nranks; n++ {
				cores := t.numaCores[n]
				if next[n] < len(cores) {
					m[r] = cores[next[n]]
					next[n]++
					r++
					placed = true
				}
			}
			if !placed {
				return nil, fmt.Errorf("topo: map-numa ran out of cores at rank %d", r)
			}
		}
	default:
		return nil, fmt.Errorf("topo: unknown mapping policy %q", policy)
	}
	return m, nil
}

// MustMap is Map that panics on error, for statically valid shapes.
func (t *Topology) MustMap(policy MapPolicy, nranks int) Mapping {
	m, err := t.Map(policy, nranks)
	if err != nil {
		panic(err)
	}
	return m
}

// Validate checks that the mapping targets distinct, in-range cores.
func (m Mapping) Validate(t *Topology) error {
	seen := make(map[int]bool, len(m))
	for r, c := range m {
		if c < 0 || c >= t.NCores {
			return fmt.Errorf("topo: rank %d mapped to out-of-range core %d", r, c)
		}
		if seen[c] {
			return fmt.Errorf("topo: core %d assigned to more than one rank", c)
		}
		seen[c] = true
	}
	return nil
}

// Core returns the core that rank r runs on.
func (m Mapping) Core(r int) int { return m[r] }

// RankDistance classifies the distance between the cores of two ranks.
func (m Mapping) RankDistance(t *Topology, a, b int) DistanceClass {
	return t.Distance(m[a], m[b])
}
