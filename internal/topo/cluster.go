package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Cluster is the network level above the paper's single-node platforms:
// N identical nodes joined by a flat switched fabric. Within each node the
// existing Topology applies unchanged; between nodes only the node-leader
// ranks communicate (internal/core's cluster collectives), so the cluster
// type stays deliberately simple — a count and a node template.
type Cluster struct {
	Name  string
	Nodes int
	Node  *Topology
}

// NewCluster builds a cluster of nodes copies of node.
func NewCluster(nodes int, node *Topology) (*Cluster, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("topo: cluster needs at least 1 node, got %d", nodes)
	}
	if node == nil {
		return nil, fmt.Errorf("topo: cluster needs a node platform")
	}
	return &Cluster{
		Name:  fmt.Sprintf("%dx%s", nodes, node.Name),
		Nodes: nodes,
		Node:  node,
	}, nil
}

// ClusterByName parses a "<N>x<platform>" cluster name ("32xARM-N1",
// "4xEpyc-2P") against the named single-node platforms, returning nil if
// the name is not a cluster name.
func ClusterByName(name string) *Cluster {
	i := strings.IndexByte(name, 'x')
	if i <= 0 || i+1 >= len(name) {
		return nil
	}
	n, err := strconv.Atoi(name[:i])
	if err != nil || n < 1 {
		return nil
	}
	node := ByName(name[i+1:])
	if node == nil {
		return nil
	}
	c, err := NewCluster(n, node)
	if err != nil {
		return nil
	}
	return c
}

// TotalCores returns the core count across all nodes.
func (c *Cluster) TotalCores() int { return c.Nodes * c.Node.NCores }

// NodeOf returns the node index of a global rank under a uniform block
// distribution of perNode ranks per node.
func (c *Cluster) NodeOf(rank, perNode int) int { return rank / perNode }

// LocalRank returns the within-node rank of a global rank.
func (c *Cluster) LocalRank(rank, perNode int) int { return rank % perNode }

// GlobalRank composes a node index and a local rank.
func (c *Cluster) GlobalRank(node, local, perNode int) int { return node*perNode + local }

// Render describes the cluster for xhctopo.
func (c *Cluster) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster %s: %d nodes x %s (%d cores total)\n",
		c.Name, c.Nodes, c.Node.Name, c.TotalCores())
	b.WriteString("Fabric: flat switched network, one full-duplex NIC link per node\n")
	b.WriteString("        (inter-node traffic flows only between node-leader ranks)\n\n")
	b.WriteString("Per-node topology:\n")
	b.WriteString(c.Node.Render())
	return b.String()
}
