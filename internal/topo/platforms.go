package topo

// The three evaluation platforms of the paper's Table I.
//
//	Codename  Processor            Arch    Cores  NUMA  Sockets
//	Epyc-1P   1x AMD Epyc 7551P    x86_64  32     4     1
//	Epyc-2P   2x AMD Epyc 7501     x86_64  64     8     2
//	ARM-N1    2x ARM Neoverse N1   arm64   160    8     2
//
// The Epyc "Naples" parts group 4 cores per CCX sharing an 8 MB L3 slice;
// the ARM-N1 (Ampere Altra class) system has only private per-core L1/L2
// and a 32 MB per-socket system-level cache behind the CMN-600 mesh.

// Epyc1P returns the single-socket AMD Epyc 7551P platform.
func Epyc1P() *Topology {
	return MustNew(Config{
		Name:          "Epyc-1P",
		Arch:          "x86_64",
		Sockets:       1,
		NUMAPerSocket: 4,
		CoresPerNUMA:  8,
		CoresPerLLC:   4,
		LLCBytes:      8 << 20,
	})
}

// Epyc2P returns the dual-socket AMD Epyc 7501 platform.
func Epyc2P() *Topology {
	return MustNew(Config{
		Name:          "Epyc-2P",
		Arch:          "x86_64",
		Sockets:       2,
		NUMAPerSocket: 4,
		CoresPerNUMA:  8,
		CoresPerLLC:   4,
		LLCBytes:      8 << 20,
	})
}

// ArmN1 returns the dual-socket ARM Neoverse N1 platform (160 cores, no
// shared LLC, per-socket system-level cache).
func ArmN1() *Topology {
	return MustNew(Config{
		Name:          "ARM-N1",
		Arch:          "arm64",
		Sockets:       2,
		NUMAPerSocket: 4,
		CoresPerNUMA:  20,
		CoresPerLLC:   0,
		SLCBytes:      32 << 20,
	})
}

// Fig2Demo returns the hypothetical 16-core, 2-socket, 4-cores-per-NUMA
// system used for the paper's Fig. 2 hierarchy illustration.
func Fig2Demo() *Topology {
	return MustNew(Config{
		Name:          "Fig2-Demo",
		Arch:          "x86_64",
		Sockets:       2,
		NUMAPerSocket: 2,
		CoresPerNUMA:  4,
		CoresPerLLC:   4,
		LLCBytes:      8 << 20,
	})
}

// Platforms returns the three Table I evaluation platforms in paper order.
func Platforms() []*Topology {
	return []*Topology{Epyc1P(), Epyc2P(), ArmN1()}
}

// ByName returns the platform with the given codename, or nil.
func ByName(name string) *Topology {
	switch name {
	case "Epyc-1P", "epyc-1p", "epyc1p":
		return Epyc1P()
	case "Epyc-2P", "epyc-2p", "epyc2p":
		return Epyc2P()
	case "ARM-N1", "arm-n1", "armn1":
		return ArmN1()
	case "Fig2-Demo", "fig2", "fig2-demo":
		return Fig2Demo()
	}
	return nil
}
