package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTable1Platforms(t *testing.T) {
	// The paper's Table I: codename, arch, cores, NUMA, sockets.
	cases := []struct {
		top                  *Topology
		arch                 string
		cores, numa, sockets int
		sharedLLC            bool
	}{
		{Epyc1P(), "x86_64", 32, 4, 1, true},
		{Epyc2P(), "x86_64", 64, 8, 2, true},
		{ArmN1(), "arm64", 160, 8, 2, false},
	}
	for _, c := range cases {
		if c.top.Arch != c.arch {
			t.Errorf("%s: arch = %s, want %s", c.top.Name, c.top.Arch, c.arch)
		}
		if c.top.NCores != c.cores {
			t.Errorf("%s: cores = %d, want %d", c.top.Name, c.top.NCores, c.cores)
		}
		if c.top.NNUMA != c.numa {
			t.Errorf("%s: NUMA = %d, want %d", c.top.Name, c.top.NNUMA, c.numa)
		}
		if c.top.NSockets != c.sockets {
			t.Errorf("%s: sockets = %d, want %d", c.top.Name, c.top.NSockets, c.sockets)
		}
		if c.top.HasSharedLLC() != c.sharedLLC {
			t.Errorf("%s: shared LLC = %v, want %v", c.top.Name, c.top.HasSharedLLC(), c.sharedLLC)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Sockets: 0, NUMAPerSocket: 1, CoresPerNUMA: 1}); err == nil {
		t.Error("zero sockets accepted")
	}
	if _, err := New(Config{Sockets: 1, NUMAPerSocket: 1, CoresPerNUMA: 6, CoresPerLLC: 4}); err == nil {
		t.Error("non-dividing LLC group size accepted")
	}
	if _, err := New(Config{Sockets: 1, NUMAPerSocket: 1, CoresPerNUMA: 4, CoresPerLLC: -1}); err == nil {
		t.Error("negative LLC group size accepted")
	}
}

func TestDefaultCacheLine(t *testing.T) {
	top := MustNew(Config{Sockets: 1, NUMAPerSocket: 1, CoresPerNUMA: 2})
	if top.CacheLineBytes != 64 {
		t.Errorf("default cache line = %d, want 64", top.CacheLineBytes)
	}
}

func TestContainmentPartition(t *testing.T) {
	for _, top := range Platforms() {
		// Every core appears in exactly one NUMA node and one socket.
		seenNUMA := make([]int, top.NCores)
		for n := 0; n < top.NNUMA; n++ {
			for _, c := range top.NUMACores(n) {
				seenNUMA[c]++
				if top.NUMA(c) != n {
					t.Errorf("%s: core %d in NUMACores(%d) but NUMA()=%d", top.Name, c, n, top.NUMA(c))
				}
			}
		}
		for c, k := range seenNUMA {
			if k != 1 {
				t.Errorf("%s: core %d appears in %d NUMA nodes", top.Name, c, k)
			}
		}
		seenSock := make([]int, top.NCores)
		for s := 0; s < top.NSockets; s++ {
			for _, c := range top.SocketCores(s) {
				seenSock[c]++
			}
		}
		for c, k := range seenSock {
			if k != 1 {
				t.Errorf("%s: core %d appears in %d sockets", top.Name, c, k)
			}
		}
		if top.NLLC > 0 {
			seenLLC := make([]int, top.NCores)
			for l := 0; l < top.NLLC; l++ {
				cores := top.LLCCores(l)
				if len(cores) != top.CoresPerLLC {
					t.Errorf("%s: LLC %d has %d cores, want %d", top.Name, l, len(cores), top.CoresPerLLC)
				}
				for _, c := range cores {
					seenLLC[c]++
				}
			}
			for c, k := range seenLLC {
				if k != 1 {
					t.Errorf("%s: core %d appears in %d LLC groups", top.Name, c, k)
				}
			}
		}
	}
}

func TestLLCWithinNUMA(t *testing.T) {
	// A shared-LLC group never spans NUMA nodes.
	for _, top := range []*Topology{Epyc1P(), Epyc2P()} {
		for l := 0; l < top.NLLC; l++ {
			cores := top.LLCCores(l)
			for _, c := range cores[1:] {
				if top.NUMA(c) != top.NUMA(cores[0]) {
					t.Errorf("%s: LLC %d spans NUMA nodes", top.Name, l)
				}
			}
		}
	}
}

func TestDistanceClasses(t *testing.T) {
	top := Epyc2P() // 4 cores/LLC, 8 cores/NUMA, 32 cores/socket
	cases := []struct {
		a, b int
		want DistanceClass
	}{
		{0, 0, SelfCore},
		{0, 1, CacheLocal},   // same CCX
		{0, 3, CacheLocal},   // same CCX boundary
		{0, 4, IntraNUMA},    // next CCX, same NUMA
		{0, 7, IntraNUMA},    // NUMA boundary
		{0, 8, CrossNUMA},    // next NUMA, same socket
		{0, 31, CrossNUMA},   // socket boundary
		{0, 32, CrossSocket}, // second socket
		{0, 63, CrossSocket},
	}
	for _, c := range cases {
		if got := top.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	for _, top := range Platforms() {
		f := func(a, b uint16) bool {
			x := int(a) % top.NCores
			y := int(b) % top.NCores
			return top.Distance(x, y) == top.Distance(y, x)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: distance not symmetric: %v", top.Name, err)
		}
	}
}

func TestARMHasNoCacheLocal(t *testing.T) {
	top := ArmN1()
	for a := 0; a < top.NCores; a += 7 {
		for b := 0; b < top.NCores; b += 11 {
			if a != b && top.Distance(a, b) == CacheLocal {
				t.Fatalf("ARM-N1 reports cache-local distance between %d and %d", a, b)
			}
		}
	}
	if top.LLC(0) != -1 {
		t.Errorf("ARM-N1 core 0 LLC = %d, want -1", top.LLC(0))
	}
}

func TestDomainCores(t *testing.T) {
	top := Epyc1P()
	llc, err := top.DomainCores("llc", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(llc) != 4 {
		t.Errorf("llc domain of core 5 has %d cores, want 4", len(llc))
	}
	numa, err := top.DomainCores("numa", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(numa) != 8 {
		t.Errorf("numa domain of core 5 has %d cores, want 8", len(numa))
	}
	sock, err := top.DomainCores("socket", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sock) != 32 {
		t.Errorf("socket domain of core 5 has %d cores, want 32", len(sock))
	}
	if _, err := top.DomainCores("llc", 0); err != nil {
		t.Errorf("Epyc-1P should have llc domains: %v", err)
	}
	if _, err := ArmN1().DomainCores("llc", 0); err == nil {
		t.Error("ARM-N1 llc domain lookup should fail")
	}
	if _, err := top.DomainCores("bogus", 0); err == nil {
		t.Error("bogus domain accepted")
	}
}

func TestRenderAndString(t *testing.T) {
	top := Fig2Demo()
	s := top.Render()
	for _, want := range []string{"socket 0", "socket 1", "numa 3", "cores 12-15"} {
		if !strings.Contains(s, want) {
			t.Errorf("Render missing %q in:\n%s", want, s)
		}
	}
	if !strings.Contains(ArmN1().String(), "shared LLC: none") {
		t.Errorf("ARM-N1 String: %s", ArmN1().String())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Epyc-1P", "epyc-2p", "armn1", "fig2"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestRangeString(t *testing.T) {
	if got := rangeString(nil); got != "(none)" {
		t.Errorf("rangeString(nil) = %q", got)
	}
	if got := rangeString([]int{3}); got != "3" {
		t.Errorf("rangeString([3]) = %q", got)
	}
	if got := rangeString([]int{1, 2, 3}); got != "1-3" {
		t.Errorf("rangeString dense = %q", got)
	}
	if got := rangeString([]int{1, 3, 5}); got != "1,3,5" {
		t.Errorf("rangeString sparse = %q", got)
	}
}
