package topo

import (
	"testing"
	"testing/quick"
)

func TestMapCoreSequential(t *testing.T) {
	top := Epyc2P()
	m := top.MustMap(MapCore, 64)
	for r := 0; r < 64; r++ {
		if m.Core(r) != r {
			t.Fatalf("map-core rank %d -> core %d", r, m.Core(r))
		}
	}
	if err := m.Validate(top); err != nil {
		t.Fatal(err)
	}
}

func TestMapNUMARoundRobin(t *testing.T) {
	top := Epyc2P() // 8 NUMA nodes of 8 cores
	m := top.MustMap(MapNUMA, 64)
	if err := m.Validate(top); err != nil {
		t.Fatal(err)
	}
	// First 8 ranks land on 8 distinct NUMA nodes.
	seen := map[int]bool{}
	for r := 0; r < 8; r++ {
		n := top.NUMA(m.Core(r))
		if seen[n] {
			t.Errorf("rank %d reuses NUMA %d within first round", r, n)
		}
		seen[n] = true
	}
	// Consecutive ranks are never NUMA-local in the first full rounds.
	for r := 0; r+1 < 16; r++ {
		if top.NUMA(m.Core(r)) == top.NUMA(m.Core(r+1)) {
			t.Errorf("map-numa ranks %d,%d share a NUMA node", r, r+1)
		}
	}
}

func TestMapNUMAFullOccupancy(t *testing.T) {
	for _, top := range Platforms() {
		m, err := top.Map(MapNUMA, top.NCores)
		if err != nil {
			t.Fatalf("%s: %v", top.Name, err)
		}
		if err := m.Validate(top); err != nil {
			t.Fatalf("%s: %v", top.Name, err)
		}
	}
}

func TestMapErrors(t *testing.T) {
	top := Epyc1P()
	if _, err := top.Map(MapCore, 0); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := top.Map(MapCore, top.NCores+1); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := top.Map(MapPolicy("bogus"), 4); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestMappingsArePermutations(t *testing.T) {
	for _, top := range Platforms() {
		for _, pol := range []MapPolicy{MapCore, MapNUMA} {
			f := func(nr uint8) bool {
				n := 1 + int(nr)%top.NCores
				m, err := top.Map(pol, n)
				if err != nil {
					return false
				}
				return m.Validate(top) == nil && len(m) == n
			}
			if err := quick.Check(f, nil); err != nil {
				t.Errorf("%s/%s: %v", top.Name, pol, err)
			}
		}
	}
}

func TestValidateCatchesBadMappings(t *testing.T) {
	top := Epyc1P()
	if err := (Mapping{0, 0}).Validate(top); err == nil {
		t.Error("duplicate core accepted")
	}
	if err := (Mapping{-1}).Validate(top); err == nil {
		t.Error("negative core accepted")
	}
	if err := (Mapping{top.NCores}).Validate(top); err == nil {
		t.Error("out-of-range core accepted")
	}
}

func TestRankDistance(t *testing.T) {
	top := Epyc2P()
	m := top.MustMap(MapCore, 64)
	if d := m.RankDistance(top, 0, 32); d != CrossSocket {
		t.Errorf("ranks 0,32 distance = %v, want cross-socket", d)
	}
	mn := top.MustMap(MapNUMA, 64)
	if d := mn.RankDistance(top, 0, 1); d == CacheLocal || d == SelfCore {
		t.Errorf("map-numa ranks 0,1 distance = %v, want distant", d)
	}
}
