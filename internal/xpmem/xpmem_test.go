package xpmem

import (
	"testing"

	"xhc/internal/mem"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

func runOne(t *testing.T, s *mem.System, body func(p *sim.Proc)) sim.Duration {
	t.Helper()
	var d sim.Duration
	s.Eng.Go("t", func(p *sim.Proc) {
		start := p.Now()
		body(p)
		d = p.Now() - start
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttachHitMuchCheaperThanMiss(t *testing.T) {
	s := mem.Default(topo.Epyc2P())
	buf := s.NewBuffer("b", 0, 1<<20)
	h := Expose(buf)
	c := NewCache(s, 0, true)
	var miss, hit sim.Duration
	runOne(t, s, func(p *sim.Proc) {
		t0 := p.Now()
		c.Attach(p, h)
		miss = p.Now() - t0
		t1 := p.Now()
		c.Attach(p, h)
		hit = p.Now() - t1
	})
	if hit*5 >= miss {
		t.Errorf("hit %v should be far cheaper than miss %v", hit, miss)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %f", st.HitRatio())
	}
}

func TestAttachCostScalesWithPages(t *testing.T) {
	s := mem.Default(topo.Epyc2P())
	small := Expose(s.NewBuffer("s", 0, 4096))
	big := Expose(s.NewBuffer("b", 0, 1<<20))
	c := NewCache(s, 0, true)
	var ds, db sim.Duration
	runOne(t, s, func(p *sim.Proc) {
		t0 := p.Now()
		c.Attach(p, small)
		ds = p.Now() - t0
		t1 := p.Now()
		c.Attach(p, big)
		db = p.Now() - t1
	})
	if db <= ds {
		t.Errorf("1MiB attach %v should cost more than 4KiB %v", db, ds)
	}
}

func TestDisabledCachePaysEveryTime(t *testing.T) {
	s := mem.Default(topo.Epyc2P())
	h := Expose(s.NewBuffer("b", 0, 64<<10))
	c := NewCache(s, 0, false)
	var first, second sim.Duration
	runOne(t, s, func(p *sim.Proc) {
		t0 := p.Now()
		c.Attach(p, h)
		c.Release(p, h)
		first = p.Now() - t0
		t1 := p.Now()
		c.Attach(p, h)
		c.Release(p, h)
		second = p.Now() - t1
	})
	if second != first {
		t.Errorf("disabled cache: costs differ: %v vs %v", first, second)
	}
	if c.Stats().Hits != 0 {
		t.Errorf("disabled cache recorded hits: %+v", c.Stats())
	}
}

func TestLRUEviction(t *testing.T) {
	s := mem.Default(topo.Epyc2P())
	c := NewCache(s, 2, true)
	h1 := Expose(s.NewBuffer("1", 0, 4096))
	h2 := Expose(s.NewBuffer("2", 0, 4096))
	h3 := Expose(s.NewBuffer("3", 0, 4096))
	runOne(t, s, func(p *sim.Proc) {
		c.Attach(p, h1)
		c.Attach(p, h2)
		c.Attach(p, h1) // h1 most recent
		c.Attach(p, h3) // evicts h2
		c.Attach(p, h1) // hit
		c.Attach(p, h2) // miss again
	})
	st := c.Stats()
	if st.Evictions < 1 {
		t.Errorf("expected evictions, got %+v", st)
	}
	if st.Hits != 2 { // h1 twice
		t.Errorf("hits = %d, want 2 (%+v)", st.Hits, st)
	}
	if c.Len() > 2 {
		t.Errorf("cache over capacity: %d", c.Len())
	}
}

func TestInvalidHandlePanics(t *testing.T) {
	s := mem.Default(topo.Epyc1P())
	c := NewCache(s, 0, true)
	err := func() error {
		s.Eng.Go("t", func(p *sim.Proc) {
			c.Attach(p, Handle{})
		})
		return s.Eng.Run()
	}()
	if err == nil {
		t.Error("attach to zero handle should fail")
	}
}

func TestHandleAccessors(t *testing.T) {
	s := mem.Default(topo.Epyc1P())
	b := s.NewBuffer("b", 0, 8)
	h := Expose(b)
	if !h.Valid() || h.Buffer() != b {
		t.Error("handle accessors broken")
	}
	if (Handle{}).Valid() {
		t.Error("zero handle should be invalid")
	}
}
