// Package xpmem simulates the XPMEM (Cross-Partition Memory) kernel
// module: a process exposes an address range, peers attach to it and then
// access the remote memory with plain loads and stores (single-copy).
//
// It models the overheads the paper discusses in Section II-B — attach
// syscalls, first-touch page faults, detach — and the registration cache
// that amortizes them (Fig. 3's dashed bars show what happens without it).
package xpmem

import (
	"fmt"

	"xhc/internal/mem"
	"xhc/internal/sim"
)

// Handle identifies an exposed address range (the result of xpmem_make +
// xpmem_get, which are cheap and done once at communicator setup).
type Handle struct {
	buf *mem.Buffer
}

// Expose publishes a buffer for cross-process attachment.
func Expose(b *mem.Buffer) Handle { return Handle{buf: b} }

// Buffer returns the underlying buffer (nil for the zero Handle).
func (h Handle) Buffer() *mem.Buffer { return h.buf }

// Valid reports whether the handle refers to an exposed buffer.
func (h Handle) Valid() bool { return h.buf != nil }

// CacheStats counts registration-cache behaviour; the paper reports >99%
// hit ratios for its applications.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRatio returns hits/(hits+misses), or 0 for an unused cache.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is one rank's registration cache of established attachments,
// with LRU eviction. With Enabled == false it degenerates to
// attach-use-detach per operation, reproducing the paper's
// no-registration-cache experiment.
type Cache struct {
	Enabled  bool
	Capacity int // max cached attachments; <= 0 means unbounded

	sys   *mem.System
	stats CacheStats

	entries map[int]*entry // keyed by buffer ID
	// LRU list: head = most recent.
	head, tail *entry
}

type entry struct {
	bufID      int
	buf        *mem.Buffer
	prev, next *entry
}

// NewCache creates a registration cache for one rank.
func NewCache(sys *mem.System, capacity int, enabled bool) *Cache {
	return &Cache{
		Enabled:  enabled,
		Capacity: capacity,
		sys:      sys,
		entries:  make(map[int]*entry),
	}
}

// Stats returns a copy of the cache counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Len returns the number of cached attachments.
func (c *Cache) Len() int { return len(c.entries) }

// Attach returns a directly accessible view of the exposed range, charging
// p for whatever the mapping costs right now: a registration-cache lookup
// on a hit; attach syscall plus per-page first-touch faults on a miss.
// With the cache disabled, the full cost is paid every time and the caller
// should Release afterwards.
func (c *Cache) Attach(p *sim.Proc, h Handle) *mem.Buffer {
	if !h.Valid() {
		panic("xpmem: attach to invalid handle")
	}
	if !c.Enabled {
		c.stats.Misses++
		c.chargeAttach(p, h.buf.Len())
		return h.buf
	}
	p.Sleep(c.sys.Params.RegCacheLookup)
	if e, ok := c.entries[h.buf.ID]; ok {
		c.stats.Hits++
		c.touch(e)
		return e.buf
	}
	c.stats.Misses++
	c.chargeAttach(p, h.buf.Len())
	e := &entry{bufID: h.buf.ID, buf: h.buf}
	c.entries[h.buf.ID] = e
	c.pushFront(e)
	if c.Capacity > 0 && len(c.entries) > c.Capacity {
		c.evict(p)
	}
	return h.buf
}

// Drop discards every cached attachment without charging model time. The
// protocol checker calls it mid-collective as an adversarial stand-in for
// capacity evictions: already-attached views stay valid (as real XPMEM
// mappings do until detach), but every later Attach must re-register.
// Returns the number of entries dropped; they are counted as evictions.
func (c *Cache) Drop() int {
	n := len(c.entries)
	for id := range c.entries {
		delete(c.entries, id)
	}
	c.head, c.tail = nil, nil
	c.stats.Evictions += int64(n)
	return n
}

// Release ends one use of an attachment. With the registration cache
// enabled this is free (the mapping stays cached); otherwise it pays the
// detach cost, as the paper describes for cache-less operation.
func (c *Cache) Release(p *sim.Proc, h Handle) {
	if !c.Enabled {
		p.Sleep(c.sys.Params.XPMEMDetach)
	}
}

// chargeAttach pays the syscall plus one page fault per page of the range.
func (c *Cache) chargeAttach(p *sim.Proc, n int) {
	pages := (n + c.sys.Params.PageBytes - 1) / c.sys.Params.PageBytes
	if pages < 1 {
		pages = 1
	}
	p.Sleep(c.sys.Params.XPMEMAttachBase + sim.Duration(pages)*c.sys.Params.PageFault)
}

// evict drops the least recently used attachment, paying detach.
func (c *Cache) evict(p *sim.Proc) {
	e := c.tail
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.entries, e.bufID)
	c.stats.Evictions++
	p.Sleep(c.sys.Params.XPMEMDetach)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// String summarizes the cache state.
func (c *Cache) String() string {
	return fmt.Sprintf("xpmem.Cache{enabled=%v n=%d hits=%d misses=%d evictions=%d}",
		c.Enabled, len(c.entries), c.stats.Hits, c.stats.Misses, c.stats.Evictions)
}
