package hier

import (
	"testing"

	"xhc/internal/topo"
)

// FuzzHierarchyBuild throws arbitrary sensitivity strings, rank counts,
// roots and mapping policies at Build on the Table I platforms. Invalid
// inputs must be rejected with an error (never a panic); accepted inputs
// must produce a hierarchy that passes Validate with the root as top
// leader. The seed corpus covers each platform, both policies, the paper's
// sensitivity lists and some malformed ones.
func FuzzHierarchyBuild(f *testing.F) {
	f.Add(uint8(0), uint16(32), uint16(0), "llc+numa+socket", false)
	f.Add(uint8(1), uint16(64), uint16(10), "numa+socket", true)
	f.Add(uint8(2), uint16(160), uint16(159), "llc+numa+socket", false) // llc skipped on ARM-N1
	f.Add(uint8(0), uint16(1), uint16(0), "flat", false)
	f.Add(uint8(1), uint16(7), uint16(3), "", true)
	f.Add(uint8(2), uint16(40), uint16(0), "socket+numa", false) // wrong order: must error
	f.Add(uint8(0), uint16(9), uint16(2), "numa+numa", true)     // duplicate: must error
	f.Add(uint8(1), uint16(13), uint16(5), "rack", false)        // unknown domain: must error

	f.Fuzz(func(t *testing.T, platSeed uint8, nrSeed, rootSeed uint16, sensStr string, mapNUMA bool) {
		plats := topo.Platforms()
		top := plats[int(platSeed)%len(plats)]
		nranks := 1 + int(nrSeed)%top.NCores
		root := int(rootSeed) % nranks

		sens, err := ParseSensitivity(sensStr)
		if err != nil {
			return // malformed sensitivity rejected before Build
		}

		pol := topo.MapCore
		if mapNUMA {
			pol = topo.MapNUMA
		}
		m, err := top.Map(pol, nranks)
		if err != nil {
			t.Fatalf("%s.Map(%v, %d): %v", top.Name, pol, nranks, err)
		}

		h, err := Build(top, m, sens, root)
		if err != nil {
			t.Fatalf("Build(%s, np=%d, root=%d, sens=%q): %v", top.Name, nranks, root, sensStr, err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("Build(%s, np=%d, root=%d, sens=%q): invalid: %v", top.Name, nranks, root, sensStr, err)
		}
		if h.TopLeader() != root {
			t.Fatalf("Build(%s, np=%d, root=%d, sens=%q): top leader %d", top.Name, nranks, root, sensStr, h.TopLeader())
		}
	})
}
