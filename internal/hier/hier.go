// Package hier constructs the n-level topology-aware communication
// hierarchies at the heart of XHC (the paper's Section III-A and Fig. 2).
//
// Given a node topology, a rank-to-core mapping and a "sensitivity" list
// (e.g. numa+socket), it groups neighbouring ranks level by level: level 0
// groups all ranks by the innermost domain, each group elects a leader, and
// the leaders of level k become the participants of level k+1. The root
// rank is always elected leader of every group it belongs to, so it ends up
// as the single top-level leader (the "internal root").
package hier

import (
	"fmt"
	"sort"
	"strings"

	"xhc/internal/topo"
)

// Domain names accepted in a Sensitivity, innermost first.
const (
	DomainLLC    = "llc"
	DomainNUMA   = "numa"
	DomainSocket = "socket"
)

// Sensitivity is an ordered (inner to outer) list of domain names that the
// hierarchy should reflect. An empty Sensitivity yields a flat (single
// level, single group) hierarchy.
type Sensitivity []string

// ParseSensitivity parses the paper's "numa+socket" notation. "flat" and
// the empty string yield an empty Sensitivity.
func ParseSensitivity(s string) (Sensitivity, error) {
	if s == "" || s == "flat" {
		return nil, nil
	}
	parts := strings.Split(s, "+")
	sens := make(Sensitivity, 0, len(parts))
	for _, p := range parts {
		switch p {
		case DomainLLC, DomainNUMA, DomainSocket:
			sens = append(sens, p)
		default:
			return nil, fmt.Errorf("hier: unknown domain %q in sensitivity %q", p, s)
		}
	}
	if err := sens.validateOrder(); err != nil {
		return nil, err
	}
	return sens, nil
}

// domainRank orders domains from innermost to outermost.
func domainRank(d string) int {
	switch d {
	case DomainLLC:
		return 0
	case DomainNUMA:
		return 1
	case DomainSocket:
		return 2
	}
	return -1
}

func (s Sensitivity) validateOrder() error {
	for i := 1; i < len(s); i++ {
		if domainRank(s[i-1]) >= domainRank(s[i]) {
			return fmt.Errorf("hier: sensitivity %v not ordered inner to outer", []string(s))
		}
	}
	return nil
}

// String renders the sensitivity in the paper's "numa+socket" notation.
func (s Sensitivity) String() string {
	if len(s) == 0 {
		return "flat"
	}
	return strings.Join(s, "+")
}

// Group is one communication group at some level of the hierarchy. Members
// are communicator ranks; the Leader is one of the Members and exchanges
// data on behalf of the group with same-level leaders.
type Group struct {
	Level   int
	Index   int
	Members []int
	Leader  int
}

// Hierarchy is the constructed multi-level grouping. Levels[0] is the leaf
// level containing every rank; the last level always has exactly one group
// whose leader is the root.
type Hierarchy struct {
	Sens   Sensitivity
	Root   int
	NRanks int
	Levels [][]Group

	// groupOf[level][rank] is the index of the group rank belongs to at
	// that level, or -1 if the rank does not participate at that level.
	groupOf [][]int
}

// Build constructs the hierarchy for nranks ranks mapped onto top by m,
// honouring sens, with the given root. Domains in sens that the platform
// does not provide (llc on ARM-N1) are skipped, matching XHC's behaviour of
// following whatever structure hwloc actually reports.
func Build(top *topo.Topology, m topo.Mapping, sens Sensitivity, root int) (*Hierarchy, error) {
	nranks := len(m)
	if nranks == 0 {
		return nil, fmt.Errorf("hier: empty mapping")
	}
	if root < 0 || root >= nranks {
		return nil, fmt.Errorf("hier: root %d out of range [0,%d)", root, nranks)
	}
	if err := m.Validate(top); err != nil {
		return nil, err
	}
	if err := sens.validateOrder(); err != nil {
		return nil, err
	}

	h := &Hierarchy{Sens: sens, Root: root, NRanks: nranks}

	domainOf := func(dom string, rank int) int {
		core := m.Core(rank)
		switch dom {
		case DomainLLC:
			return top.LLC(core)
		case DomainNUMA:
			return top.NUMA(core)
		case DomainSocket:
			return top.Socket(core)
		}
		return -1
	}

	participants := make([]int, nranks)
	for r := range participants {
		participants[r] = r
	}

	for _, dom := range sens {
		if dom == DomainLLC && !top.HasSharedLLC() {
			continue // platform has no cache shared between cores
		}
		groups := groupBy(participants, func(r int) int { return domainOf(dom, r) }, root)
		if len(groups) == len(participants) {
			// Every group is a singleton: the domain adds no structure
			// (e.g. one rank per NUMA node); skip the level.
			continue
		}
		h.appendLevel(groups)
		participants = leaders(groups)
		if len(participants) == 1 {
			break
		}
	}

	// Implicit top level: all remaining leaders in one group. Also covers
	// the flat case (no sensitivity -> one level, one group of everyone).
	if len(h.Levels) == 0 || len(participants) > 1 {
		top := groupBy(participants, func(int) int { return 0 }, root)
		h.appendLevel(top)
	}

	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("hier: built invalid hierarchy: %w", err)
	}
	return h, nil
}

// groupBy partitions ranks by key, sorting groups by key and members by
// rank, and electing as leader the root if present, else the lowest rank.
func groupBy(ranks []int, key func(int) int, root int) []Group {
	byKey := map[int][]int{}
	for _, r := range ranks {
		k := key(r)
		byKey[k] = append(byKey[k], r)
	}
	keys := make([]int, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	groups := make([]Group, 0, len(keys))
	for i, k := range keys {
		members := byKey[k]
		sort.Ints(members)
		leader := members[0]
		for _, r := range members {
			if r == root {
				leader = root
				break
			}
		}
		groups = append(groups, Group{Index: i, Members: members, Leader: leader})
	}
	return groups
}

func leaders(groups []Group) []int {
	out := make([]int, len(groups))
	for i, g := range groups {
		out[i] = g.Leader
	}
	sort.Ints(out)
	return out
}

func (h *Hierarchy) appendLevel(groups []Group) {
	level := len(h.Levels)
	gof := make([]int, h.NRanks)
	for i := range gof {
		gof[i] = -1
	}
	for i := range groups {
		groups[i].Level = level
		groups[i].Index = i
		for _, r := range groups[i].Members {
			gof[r] = i
		}
	}
	h.Levels = append(h.Levels, groups)
	h.groupOf = append(h.groupOf, gof)
}

// NLevels returns the number of hierarchy levels.
func (h *Hierarchy) NLevels() int { return len(h.Levels) }

// GroupsAt returns the groups of one level. The slice must not be modified.
func (h *Hierarchy) GroupsAt(level int) []Group { return h.Levels[level] }

// GroupOf returns the group that rank belongs to at level, and whether the
// rank participates at that level at all.
func (h *Hierarchy) GroupOf(level, rank int) (*Group, bool) {
	gi := h.groupOf[level][rank]
	if gi < 0 {
		return nil, false
	}
	return &h.Levels[level][gi], true
}

// IsLeader reports whether rank leads its group at the given level.
func (h *Hierarchy) IsLeader(level, rank int) bool {
	g, ok := h.GroupOf(level, rank)
	return ok && g.Leader == rank
}

// TopLevels returns the number of levels at which rank participates
// (1 for pure members, up to NLevels for the root).
func (h *Hierarchy) TopLevels(rank int) int {
	n := 0
	for l := 0; l < len(h.Levels); l++ {
		if h.groupOf[l][rank] >= 0 {
			n++
		} else {
			break
		}
	}
	return n
}

// TopLeader returns the single top-level leader (always the root).
func (h *Hierarchy) TopLeader() int {
	top := h.Levels[len(h.Levels)-1]
	return top[0].Leader
}

// Parent returns the leader that rank pulls from during a broadcast at the
// given level: the leader of rank's group. For the leader itself the parent
// is its own leader one level up.
func (h *Hierarchy) Parent(level, rank int) (int, bool) {
	g, ok := h.GroupOf(level, rank)
	if !ok {
		return -1, false
	}
	return g.Leader, true
}

// Validate checks the structural invariants:
//   - level 0 contains every rank exactly once,
//   - participants of level k+1 are exactly the leaders of level k,
//   - every leader is a member of its group,
//   - the last level has one group and its leader is the root.
func (h *Hierarchy) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("no levels")
	}
	seen := make([]int, h.NRanks)
	for _, g := range h.Levels[0] {
		for _, r := range g.Members {
			if r < 0 || r >= h.NRanks {
				return fmt.Errorf("level 0: rank %d out of range", r)
			}
			seen[r]++
		}
	}
	for r, k := range seen {
		if k != 1 {
			return fmt.Errorf("level 0: rank %d appears %d times", r, k)
		}
	}
	for l, groups := range h.Levels {
		for _, g := range groups {
			if len(g.Members) == 0 {
				return fmt.Errorf("level %d: empty group", l)
			}
			found := false
			for _, r := range g.Members {
				if r == g.Leader {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("level %d group %d: leader %d not a member", l, g.Index, g.Leader)
			}
		}
		if l+1 < len(h.Levels) {
			want := leaders(groups)
			var got []int
			for _, g := range h.Levels[l+1] {
				got = append(got, g.Members...)
			}
			sort.Ints(got)
			if !equalInts(want, got) {
				return fmt.Errorf("level %d participants %v != level %d leaders %v", l+1, got, l, want)
			}
		}
	}
	last := h.Levels[len(h.Levels)-1]
	if len(last) != 1 {
		return fmt.Errorf("top level has %d groups", len(last))
	}
	if last[0].Leader != h.Root {
		return fmt.Errorf("top leader %d != root %d", last[0].Leader, h.Root)
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Render draws the hierarchy as indented text, Fig. 2 style.
func (h *Hierarchy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hierarchy %q, root %d, %d levels\n", h.Sens.String(), h.Root, len(h.Levels))
	for l := len(h.Levels) - 1; l >= 0; l-- {
		fmt.Fprintf(&b, "  level %d:\n", l)
		for _, g := range h.Levels[l] {
			fmt.Fprintf(&b, "    group %d: leader %d, members %v\n", g.Index, g.Leader, g.Members)
		}
	}
	return b.String()
}
