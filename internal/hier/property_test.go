package hier

import (
	"math/rand"
	"testing"

	"xhc/internal/topo"
)

// TestHierarchyStructuralProperties checks three structural invariants of
// Build over randomized (platform, sensitivity, rank count, root, policy)
// configurations:
//
//  1. Partition: every rank is a member of exactly one leaf group.
//  2. Root-following leaders: at every level, the group containing the
//     root is led by the root (so the result lands at the root without a
//     final move, §III-B).
//  3. Locality monotone: the worst pairwise core distance inside any group
//     never decreases going up the hierarchy — leaf groups are the most
//     local, exactly what makes the level ordering profitable.
func TestHierarchyStructuralProperties(t *testing.T) {
	sensList := []string{"", "flat", "llc", "numa", "socket", "llc+numa",
		"llc+socket", "numa+socket", "llc+numa+socket"}
	rnd := rand.New(rand.NewSource(20260806))
	for iter := 0; iter < 400; iter++ {
		plats := topo.Platforms()
		top := plats[rnd.Intn(len(plats))]
		nranks := 1 + rnd.Intn(top.NCores)
		root := rnd.Intn(nranks)
		sensStr := sensList[rnd.Intn(len(sensList))]
		pol := topo.MapCore
		if rnd.Intn(2) == 1 {
			pol = topo.MapNUMA
		}

		sens, err := ParseSensitivity(sensStr)
		if err != nil {
			t.Fatal(err)
		}
		m, err := top.Map(pol, nranks)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Build(top, m, sens, root)
		if err != nil {
			t.Fatalf("%s np=%d root=%d sens=%q: %v", top.Name, nranks, root, sensStr, err)
		}
		name := func() string {
			return top.Name + " " + sensStr + " " + string(pol)
		}

		// 1. Leaf partition.
		seen := make([]int, nranks)
		for _, g := range h.GroupsAt(0) {
			for _, r := range g.Members {
				seen[r]++
			}
		}
		for r, k := range seen {
			if k != 1 {
				t.Fatalf("%s np=%d: rank %d in %d leaf groups", name(), nranks, r, k)
			}
		}

		// 2. Root leads its group at every level it appears in.
		for l := 0; l < h.NLevels(); l++ {
			if g, ok := h.GroupOf(l, root); ok && g.Leader != root {
				t.Fatalf("%s np=%d root=%d: level %d group led by %d", name(), nranks, root, l, g.Leader)
			}
		}
		if h.TopLeader() != root {
			t.Fatalf("%s np=%d: top leader %d != root %d", name(), nranks, h.TopLeader(), root)
		}

		// 3. Worst in-group distance is non-decreasing with level. Levels
		// whose groups are all singletons carry no distance information;
		// Build skips all-singleton domain levels, and the top level always
		// holds every remaining leader in one group.
		prev := topo.SelfCore
		for l := 0; l < h.NLevels(); l++ {
			worst, multi := topo.SelfCore, false
			for _, g := range h.GroupsAt(l) {
				for i, a := range g.Members {
					for _, b := range g.Members[i+1:] {
						multi = true
						if d := top.Distance(m.Core(a), m.Core(b)); d > worst {
							worst = d
						}
					}
				}
			}
			if !multi {
				continue
			}
			if worst < prev {
				t.Fatalf("%s np=%d root=%d: level %d worst distance %v below level below (%v)",
					name(), nranks, root, l, worst, prev)
			}
			prev = worst
		}
	}
}
