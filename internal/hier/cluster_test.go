package hier

import (
	"math/rand"
	"testing"

	"xhc/internal/topo"
)

// TestClusterHierarchyProperties randomizes (platform, node count, ranks
// per node, root, sensitivity) and checks the cross-node invariants of
// BuildCluster:
//
//  1. Node-boundary partition: each node's hierarchy spans exactly its
//     own contiguous rank block — never a rank from another node.
//  2. Root-following leader election across nodes: the root's node elects
//     the global root itself; every other node elects its local root 0;
//     all leaders live on their own node and are pairwise distinct.
//  3. Validate() agrees (it encodes the same invariants, so a divergence
//     between this test and Validate is itself a bug).
func TestClusterHierarchyProperties(t *testing.T) {
	sensList := []string{"", "flat", "llc", "numa", "socket", "llc+numa+socket"}
	rnd := rand.New(rand.NewSource(20260808))
	plats := topo.Platforms()
	for iter := 0; iter < 300; iter++ {
		top := plats[rnd.Intn(len(plats))]
		nodes := 1 + rnd.Intn(8)
		perNode := 1 + rnd.Intn(top.NCores)
		root := rnd.Intn(nodes * perNode)
		sens, err := ParseSensitivity(sensList[rnd.Intn(len(sensList))])
		if err != nil {
			t.Fatal(err)
		}
		pol := topo.MapCore
		if rnd.Intn(2) == 1 {
			pol = topo.MapNUMA
		}

		cl, err := topo.NewCluster(nodes, top)
		if err != nil {
			t.Fatal(err)
		}
		m, err := top.Map(pol, perNode)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := BuildCluster(cl, m, sens, root)
		if err != nil {
			t.Fatalf("%s nodes=%d np=%d root=%d: %v", top.Name, nodes, perNode, root, err)
		}

		if err := ch.Validate(); err != nil {
			t.Fatalf("%s nodes=%d np=%d root=%d: %v", top.Name, nodes, perNode, root, err)
		}
		if ch.NRanks() != nodes*perNode {
			t.Fatalf("NRanks %d, want %d", ch.NRanks(), nodes*perNode)
		}

		// 1. Node-boundary partition: node i's leaf groups cover local
		// ranks [0, perNode) exactly once — a node hierarchy knows only
		// local ranks, so spanning its block means covering the local space.
		for i, h := range ch.Nodes {
			seen := make([]int, perNode)
			for _, g := range h.GroupsAt(0) {
				for _, r := range g.Members {
					if r < 0 || r >= perNode {
						t.Fatalf("node %d leaf holds out-of-node rank %d (perNode %d)", i, r, perNode)
					}
					seen[r]++
				}
			}
			for r, k := range seen {
				if k != 1 {
					t.Fatalf("node %d local rank %d in %d leaf groups", i, r, k)
				}
			}
		}

		// 2. Root-following leader election across the node level.
		for i, lead := range ch.Leaders {
			if lead/perNode != i {
				t.Fatalf("node %d leader %d lives on node %d", i, lead, lead/perNode)
			}
			wantLocal := 0
			if i == ch.RootNode {
				wantLocal = root % perNode
			}
			if lead%perNode != wantLocal {
				t.Fatalf("node %d leader local rank %d, want %d (root %d)", i, lead%perNode, wantLocal, root)
			}
			if ch.LocalRoot(i) != wantLocal {
				t.Fatalf("node %d LocalRoot %d, want %d", i, ch.LocalRoot(i), wantLocal)
			}
		}
		if ch.Leaders[ch.RootNode] != root {
			t.Fatalf("root node leader %d != global root %d", ch.Leaders[ch.RootNode], root)
		}
	}
}

// TestClusterHierarchyErrors pins the input validation of BuildCluster.
func TestClusterHierarchyErrors(t *testing.T) {
	top := topo.Epyc1P()
	m := top.MustMap(topo.MapCore, 4)
	cl, err := topo.NewCluster(2, top)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildCluster(nil, m, nil, 0); err == nil {
		t.Fatal("nil cluster accepted")
	}
	if _, err := BuildCluster(cl, m, nil, 8); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := BuildCluster(cl, m, nil, -1); err == nil {
		t.Fatal("negative root accepted")
	}
	if _, err := topo.NewCluster(0, top); err == nil {
		t.Fatal("0-node cluster accepted")
	}
	if _, err := topo.NewCluster(2, nil); err == nil {
		t.Fatal("nil node topology accepted")
	}
}

// TestClusterByNameRoundTrip pins the "<N>x<platform>" naming convention
// used by the cmd tools to select cluster platforms.
func TestClusterByNameRoundTrip(t *testing.T) {
	cl := topo.ClusterByName("4xEpyc-1P")
	if cl == nil {
		t.Fatal("4xEpyc-1P not recognized")
	}
	if cl.Nodes != 4 || cl.Node.Name != "Epyc-1P" {
		t.Fatalf("parsed %d x %s", cl.Nodes, cl.Node.Name)
	}
	if cl.TotalCores() != 4*cl.Node.NCores {
		t.Fatalf("TotalCores %d", cl.TotalCores())
	}
	for _, bad := range []string{"Epyc-1P", "0xEpyc-1P", "-1xEpyc-1P", "4xNOPE", "x", "4x"} {
		if got := topo.ClusterByName(bad); got != nil {
			t.Fatalf("ClusterByName(%q) = %v, want nil", bad, got)
		}
	}
}
