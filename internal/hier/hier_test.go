package hier

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xhc/internal/topo"
)

func numaSocket(t *testing.T) Sensitivity {
	t.Helper()
	s, err := ParseSensitivity("numa+socket")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseSensitivity(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"", "flat", false},
		{"flat", "flat", false},
		{"numa", "numa", false},
		{"numa+socket", "numa+socket", false},
		{"llc+numa+socket", "llc+numa+socket", false},
		{"socket+numa", "", true}, // wrong order
		{"numa+numa", "", true},   // duplicate
		{"core+numa", "", true},   // unknown
	}
	for _, c := range cases {
		s, err := ParseSensitivity(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSensitivity(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSensitivity(%q): %v", c.in, err)
			continue
		}
		if s.String() != c.want {
			t.Errorf("ParseSensitivity(%q) = %q, want %q", c.in, s.String(), c.want)
		}
	}
}

// TestFig2Hierarchy reproduces the paper's Fig. 2: a 16-core node with 2
// sockets and 4 cores per NUMA node, numa+socket sensitivity, resulting in
// a 3-level hierarchy.
func TestFig2Hierarchy(t *testing.T) {
	top := topo.Fig2Demo()
	m := top.MustMap(topo.MapCore, 16)
	h, err := Build(top, m, numaSocket(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.NLevels() != 3 {
		t.Fatalf("levels = %d, want 3\n%s", h.NLevels(), h.Render())
	}
	if got := len(h.GroupsAt(0)); got != 4 {
		t.Errorf("level 0 groups = %d, want 4 (NUMA)", got)
	}
	if got := len(h.GroupsAt(1)); got != 2 {
		t.Errorf("level 1 groups = %d, want 2 (socket)", got)
	}
	if got := len(h.GroupsAt(2)); got != 1 {
		t.Errorf("level 2 groups = %d, want 1 (top)", got)
	}
	if h.TopLeader() != 0 {
		t.Errorf("top leader = %d, want 0", h.TopLeader())
	}
	// Leaders at level 0 are the lowest rank of each NUMA node.
	wantLeaders := []int{0, 4, 8, 12}
	for i, g := range h.GroupsAt(0) {
		if g.Leader != wantLeaders[i] {
			t.Errorf("level 0 group %d leader = %d, want %d", i, g.Leader, wantLeaders[i])
		}
	}
}

// TestPaperLevelCounts checks Section V-C: numa+socket gives a 3-level
// hierarchy on Epyc-2P and ARM-N1, and a 2-level one on single-socket
// Epyc-1P.
func TestPaperLevelCounts(t *testing.T) {
	cases := []struct {
		top    *topo.Topology
		nranks int
		want   int
	}{
		{topo.Epyc1P(), 32, 2},
		{topo.Epyc2P(), 64, 3},
		{topo.ArmN1(), 160, 3},
	}
	for _, c := range cases {
		m := c.top.MustMap(topo.MapCore, c.nranks)
		h, err := Build(c.top, m, numaSocket(t), 0)
		if err != nil {
			t.Fatalf("%s: %v", c.top.Name, err)
		}
		if h.NLevels() != c.want {
			t.Errorf("%s: levels = %d, want %d", c.top.Name, h.NLevels(), c.want)
		}
	}
}

func TestFlatHierarchy(t *testing.T) {
	top := topo.Epyc1P()
	m := top.MustMap(topo.MapCore, 32)
	h, err := Build(top, m, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.NLevels() != 1 {
		t.Fatalf("flat levels = %d, want 1", h.NLevels())
	}
	g := h.GroupsAt(0)[0]
	if len(g.Members) != 32 || g.Leader != 5 {
		t.Errorf("flat group: %d members leader %d, want 32 members leader 5", len(g.Members), g.Leader)
	}
}

func TestRootIsAlwaysTopLeader(t *testing.T) {
	top := topo.Epyc2P()
	m := top.MustMap(topo.MapCore, 64)
	sens := numaSocket(t)
	for _, root := range []int{0, 1, 10, 31, 32, 63} {
		h, err := Build(top, m, sens, root)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if h.TopLeader() != root {
			t.Errorf("root %d: top leader = %d", root, h.TopLeader())
		}
		// Root leads its group at every level it participates in.
		for l := 0; l < h.NLevels(); l++ {
			if g, ok := h.GroupOf(l, root); ok && g.Leader != root {
				t.Errorf("root %d not leader at level %d", root, l)
			}
		}
	}
}

func TestLLCSkippedOnARM(t *testing.T) {
	sens, err := ParseSensitivity("llc+numa+socket")
	if err != nil {
		t.Fatal(err)
	}
	arm := topo.ArmN1()
	m := arm.MustMap(topo.MapCore, 160)
	h, err := Build(arm, m, sens, 0)
	if err != nil {
		t.Fatal(err)
	}
	// llc is skipped: same 3 levels as numa+socket.
	if h.NLevels() != 3 {
		t.Errorf("ARM llc+numa+socket levels = %d, want 3", h.NLevels())
	}

	epyc := topo.Epyc2P()
	me := epyc.MustMap(topo.MapCore, 64)
	he, err := Build(epyc, me, sens, 0)
	if err != nil {
		t.Fatal(err)
	}
	if he.NLevels() != 4 {
		t.Errorf("Epyc-2P llc+numa+socket levels = %d, want 4", he.NLevels())
	}
	if got := len(he.GroupsAt(0)); got != 16 {
		t.Errorf("Epyc-2P llc level groups = %d, want 16", got)
	}
}

func TestSingletonLevelsSkipped(t *testing.T) {
	// With one rank per NUMA node, the numa level adds no structure and is
	// skipped.
	top := topo.Epyc2P()
	m := top.MustMap(topo.MapNUMA, 8) // 8 ranks, one per NUMA node
	h, err := Build(top, m, numaSocket(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < h.NLevels(); l++ {
		groups := h.GroupsAt(l)
		singles := 0
		for _, g := range groups {
			if len(g.Members) == 1 {
				singles++
			}
		}
		if singles == len(groups) {
			t.Errorf("level %d consists only of singleton groups\n%s", l, h.Render())
		}
	}
}

func TestGroupOfAndIsLeader(t *testing.T) {
	top := topo.Epyc2P()
	m := top.MustMap(topo.MapCore, 64)
	h, err := Build(top, m, numaSocket(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 9 is a plain member of NUMA group 1 (leader 8).
	g, ok := h.GroupOf(0, 9)
	if !ok || g.Leader != 8 {
		t.Fatalf("GroupOf(0,9): ok=%v leader=%v", ok, g)
	}
	if h.IsLeader(0, 9) {
		t.Error("rank 9 should not lead at level 0")
	}
	if !h.IsLeader(0, 8) {
		t.Error("rank 8 should lead its NUMA group at level 0")
	}
	if h.IsLeader(1, 8) {
		t.Error("rank 8 participates at level 1 but rank 0 leads that socket group")
	}
	if g1, ok := h.GroupOf(1, 8); !ok || g1.Leader != 0 {
		t.Errorf("GroupOf(1,8): ok=%v, want member of group led by 0", ok)
	}
	if _, ok := h.GroupOf(1, 9); ok {
		t.Error("rank 9 should not participate at level 1")
	}
	if h.TopLevels(9) != 1 {
		t.Errorf("TopLevels(9) = %d, want 1", h.TopLevels(9))
	}
	if h.TopLevels(0) != 3 {
		t.Errorf("TopLevels(0) = %d, want 3", h.TopLevels(0))
	}
	p, ok := h.Parent(0, 9)
	if !ok || p != 8 {
		t.Errorf("Parent(0,9) = %d,%v want 8,true", p, ok)
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	top := topo.Epyc1P()
	m := top.MustMap(topo.MapCore, 32)
	h, err := Build(top, m, numaSocket(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: leader not a member.
	bad := *h
	bad.Levels = append([][]Group{}, h.Levels...)
	lvl0 := append([]Group{}, h.Levels[0]...)
	lvl0[1].Leader = 0 // rank 0 is in group 0, not group 1
	bad.Levels[0] = lvl0
	if err := bad.Validate(); err == nil {
		t.Error("corrupted hierarchy passed validation")
	}
}

func TestBuildErrors(t *testing.T) {
	top := topo.Epyc1P()
	m := top.MustMap(topo.MapCore, 32)
	if _, err := Build(top, m, numaSocket(t), -1); err == nil {
		t.Error("negative root accepted")
	}
	if _, err := Build(top, m, numaSocket(t), 32); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := Build(top, topo.Mapping{}, nil, 0); err == nil {
		t.Error("empty mapping accepted")
	}
	if _, err := Build(top, m, Sensitivity{"socket", "numa"}, 0); err == nil {
		t.Error("mis-ordered sensitivity accepted")
	}
}

// Property: for random rank counts, mapping policies, roots and
// sensitivities, Build yields a hierarchy satisfying Validate, whose top
// leader is the root.
func TestBuildPropertyAllPlatforms(t *testing.T) {
	sensList := []string{"flat", "numa", "socket", "numa+socket", "llc+numa+socket"}
	for _, top := range topo.Platforms() {
		top := top
		f := func(nrSeed, rootSeed, sensSeed, polSeed uint32) bool {
			nranks := 1 + int(nrSeed)%top.NCores
			root := int(rootSeed) % nranks
			sens, err := ParseSensitivity(sensList[int(sensSeed)%len(sensList)])
			if err != nil {
				return false
			}
			pol := topo.MapCore
			if polSeed%2 == 1 {
				pol = topo.MapNUMA
			}
			m, err := top.Map(pol, nranks)
			if err != nil {
				return false
			}
			h, err := Build(top, m, sens, root)
			if err != nil {
				return false
			}
			return h.Validate() == nil && h.TopLeader() == root
		}
		cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", top.Name, err)
		}
	}
}

func TestRender(t *testing.T) {
	top := topo.Fig2Demo()
	m := top.MustMap(topo.MapCore, 16)
	h, err := Build(top, m, numaSocket(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Render()
	for _, want := range []string{"3 levels", "level 0", "level 2", "leader 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Render missing %q:\n%s", want, s)
		}
	}
}
