package hier

import (
	"fmt"

	"xhc/internal/topo"
)

// ClusterHierarchy is a cluster job's two-tier hierarchy: one node-local
// Hierarchy per node (built with the existing sensitivity machinery over
// that node's cores) plus the network level — the node-leader ranks that
// exchange over the fabric. Leader election follows the paper's
// root-following rule lifted one level: the node holding the global root
// elects the root itself as its leader (so the fabric tree is rooted at
// the actual root rank), every other node elects its lowest local rank.
type ClusterHierarchy struct {
	Cl      *topo.Cluster
	PerNode int
	Root    int

	// RootNode is the node the global root lives on.
	RootNode int
	// Nodes holds each node's intra-node hierarchy (local rank space).
	Nodes []*Hierarchy
	// Leaders[i] is the GLOBAL rank of node i's top-level leader.
	Leaders []int
}

// BuildCluster builds the per-node hierarchies of a cluster job with
// perNode = len(m) ranks per node (every node uses the same rank-to-core
// mapping m), the given intra-node sensitivity, and global root rank root.
func BuildCluster(cl *topo.Cluster, m topo.Mapping, sens Sensitivity, root int) (*ClusterHierarchy, error) {
	if cl == nil {
		return nil, fmt.Errorf("hier: nil cluster")
	}
	perNode := len(m)
	n := cl.Nodes * perNode
	if root < 0 || root >= n {
		return nil, fmt.Errorf("hier: root %d out of range for %d ranks (%d nodes x %d)",
			root, n, cl.Nodes, perNode)
	}
	ch := &ClusterHierarchy{
		Cl:       cl,
		PerNode:  perNode,
		Root:     root,
		RootNode: root / perNode,
		Nodes:    make([]*Hierarchy, cl.Nodes),
		Leaders:  make([]int, cl.Nodes),
	}
	for i := 0; i < cl.Nodes; i++ {
		localRoot := 0
		if i == ch.RootNode {
			localRoot = root % perNode
		}
		h, err := Build(cl.Node, m, sens, localRoot)
		if err != nil {
			return nil, fmt.Errorf("hier: node %d: %w", i, err)
		}
		ch.Nodes[i] = h
		ch.Leaders[i] = i*perNode + h.TopLeader()
	}
	return ch, nil
}

// NRanks returns the total rank count.
func (ch *ClusterHierarchy) NRanks() int { return ch.Cl.Nodes * ch.PerNode }

// LocalRoot returns the within-node root rank the node's hierarchy was
// built with: the global root's local rank on the root's node, 0 elsewhere.
func (ch *ClusterHierarchy) LocalRoot(node int) int {
	if node == ch.RootNode {
		return ch.Root % ch.PerNode
	}
	return 0
}

// Validate checks the cross-node structural invariants: node-boundary-
// respecting partitions (every node's hierarchy spans exactly its own rank
// block) and root-following leader election across nodes (the root node's
// leader IS the global root; leaders are distinct and live on their node).
func (ch *ClusterHierarchy) Validate() error {
	for i, h := range ch.Nodes {
		if err := h.Validate(); err != nil {
			return fmt.Errorf("hier: node %d: %w", i, err)
		}
		if h.NRanks != ch.PerNode {
			return fmt.Errorf("hier: node %d spans %d ranks, want %d", i, h.NRanks, ch.PerNode)
		}
		lead := ch.Leaders[i]
		if lead/ch.PerNode != i {
			return fmt.Errorf("hier: node %d leader %d lives on node %d", i, lead, lead/ch.PerNode)
		}
		if h.TopLeader() != lead%ch.PerNode {
			return fmt.Errorf("hier: node %d leader mismatch: top %d vs recorded %d",
				i, h.TopLeader(), lead%ch.PerNode)
		}
	}
	if got := ch.Leaders[ch.RootNode]; got != ch.Root {
		return fmt.Errorf("hier: root node %d elected leader %d, want global root %d",
			ch.RootNode, got, ch.Root)
	}
	seen := make(map[int]bool, len(ch.Leaders))
	for _, l := range ch.Leaders {
		if seen[l] {
			return fmt.Errorf("hier: duplicate leader rank %d", l)
		}
		seen[l] = true
	}
	return nil
}

// Render describes the network level for xhctopo.
func (ch *ClusterHierarchy) Render() string {
	s := fmt.Sprintf("Network level: %d node leaders over the fabric (root rank %d on node %d)\n",
		len(ch.Leaders), ch.Root, ch.RootNode)
	for i, l := range ch.Leaders {
		s += fmt.Sprintf("  node %d: leader rank %d (local %d)\n", i, l, l%ch.PerNode)
	}
	return s
}
