// Package mpi provides the MPI-like pieces the collective frameworks
// build on: datatypes, reduction operators, and a point-to-point transport
// with tag matching, eager and rendezvous protocols over a selectable
// single-copy mechanism (XPMEM, CMA, KNEM) or copy-in-copy-out.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype enumerates the element types supported by reductions.
type Datatype int

// Supported datatypes.
const (
	Byte Datatype = iota
	Int32
	Int64
	Float32
	Float64
)

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	switch d {
	case Byte:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	}
	panic(fmt.Sprintf("mpi: unknown datatype %d", int(d)))
}

// String names the datatype.
func (d Datatype) String() string {
	switch d {
	case Byte:
		return "byte"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("Datatype(%d)", int(d))
}

// Op enumerates reduction operators.
type Op int

// Supported reduction operators.
const (
	Sum Op = iota
	Prod
	Min
	Max
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case Sum:
		return "sum"
	case Prod:
		return "prod"
	case Min:
		return "min"
	case Max:
		return "max"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ReduceBytes applies dst[i] = dst[i] op src[i] elementwise over two
// equally sized byte slices interpreted as dt. Lengths must be equal and a
// multiple of the element size.
func ReduceBytes(op Op, dt Datatype, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mpi: reduce length mismatch %d != %d", len(dst), len(src)))
	}
	es := dt.Size()
	if len(dst)%es != 0 {
		panic(fmt.Sprintf("mpi: reduce length %d not a multiple of %s", len(dst), dt))
	}
	switch dt {
	case Byte:
		for i := range dst {
			dst[i] = byte(reduceI64(op, int64(dst[i]), int64(src[i])))
		}
	case Int32:
		for i := 0; i+4 <= len(dst); i += 4 {
			a := int32(binary.LittleEndian.Uint32(dst[i:]))
			b := int32(binary.LittleEndian.Uint32(src[i:]))
			binary.LittleEndian.PutUint32(dst[i:], uint32(int32(reduceI64(op, int64(a), int64(b)))))
		}
	case Int64:
		for i := 0; i+8 <= len(dst); i += 8 {
			a := int64(binary.LittleEndian.Uint64(dst[i:]))
			b := int64(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], uint64(reduceI64(op, a, b)))
		}
	case Float32:
		for i := 0; i+4 <= len(dst); i += 4 {
			a := math.Float32frombits(binary.LittleEndian.Uint32(dst[i:]))
			b := math.Float32frombits(binary.LittleEndian.Uint32(src[i:]))
			binary.LittleEndian.PutUint32(dst[i:], math.Float32bits(float32(reduceF64(op, float64(a), float64(b)))))
		}
	case Float64:
		for i := 0; i+8 <= len(dst); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(reduceF64(op, a, b)))
		}
	}
}

func reduceI64(op Op, a, b int64) int64 {
	switch op {
	case Sum:
		return a + b
	case Prod:
		return a * b
	case Min:
		if b < a {
			return b
		}
		return a
	case Max:
		if b > a {
			return b
		}
		return a
	}
	panic(fmt.Sprintf("mpi: unknown op %d", int(op)))
}

func reduceF64(op Op, a, b float64) float64 {
	switch op {
	case Sum:
		return a + b
	case Prod:
		return a * b
	case Min:
		return math.Min(a, b)
	case Max:
		return math.Max(a, b)
	}
	panic(fmt.Sprintf("mpi: unknown op %d", int(op)))
}

// EncodeFloat64s packs values into buf (for tests and applications).
func EncodeFloat64s(buf []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
}

// DecodeFloat64s unpacks len(out) values from buf.
func DecodeFloat64s(buf []byte, out []float64) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
}

// EncodeInt64s packs values into buf.
func EncodeInt64s(buf []byte, vals []int64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
}

// DecodeInt64s unpacks len(out) values from buf.
func DecodeInt64s(buf []byte, out []int64) {
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
}
