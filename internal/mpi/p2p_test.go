package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"xhc/internal/env"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

func pair(t *testing.T, cfg Config) (*env.World, *P2P) {
	t.Helper()
	top := topo.Epyc2P()
	w := env.NewWorld(top, top.MustMap(topo.MapCore, 64))
	return w, NewP2P(w, cfg)
}

func fill(b []byte, seed byte) {
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
}

func TestEagerExchange(t *testing.T) {
	w, p := pair(t, DefaultConfig())
	src := w.NewBufferAt("s", 0, 512)
	dst := w.NewBufferAt("d", 1, 512)
	fill(src.Data, 9)
	if err := w.Run(func(ep *env.Proc) {
		switch ep.Rank {
		case 0:
			p.Send(ep, 1, 42, src, 0, 512)
		case 1:
			p.Recv(ep, 0, 42, dst, 0, 512)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src.Data, dst.Data) {
		t.Error("eager payload mismatch")
	}
}

func TestRendezvousAllMechanisms(t *testing.T) {
	const n = 256 << 10
	for _, mech := range []Mechanism{XPMEM, CMA, KNEM, CICO} {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Mechanism = mech
			w, p := pair(t, cfg)
			src := w.NewBufferAt("s", 0, n)
			dst := w.NewBufferAt("d", 8, n)
			fill(src.Data, 1)
			if err := w.Run(func(ep *env.Proc) {
				switch ep.Rank {
				case 0:
					p.Send(ep, 8, 7, src, 0, n)
				case 8:
					p.Recv(ep, 0, 7, dst, 0, n)
				}
			}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(src.Data, dst.Data) {
				t.Error("payload mismatch")
			}
		})
	}
}

// TestMechanismOrdering reproduces the Fig. 3 shape for a single large
// transfer: XPMEM (cached) < KNEM < CMA, and CICO slowest.
func TestMechanismOrdering(t *testing.T) {
	const n = 1 << 20
	lat := map[Mechanism]sim.Duration{}
	for _, mech := range []Mechanism{XPMEM, CMA, KNEM, CICO} {
		cfg := DefaultConfig()
		cfg.Mechanism = mech
		w, p := pair(t, cfg)
		src := w.NewBufferAt("s", 0, n)
		dst := w.NewBufferAt("d", 8, n)
		var d sim.Duration
		if err := w.Run(func(ep *env.Proc) {
			switch ep.Rank {
			case 0:
				// Warm up the mapping (registration cache), as OSU does.
				p.Send(ep, 8, 1, src, 0, n)
				p.Send(ep, 8, 2, src, 0, n)
			case 8:
				p.Recv(ep, 0, 1, dst, 0, n)
				start := ep.Now()
				p.Recv(ep, 0, 2, dst, 0, n)
				d = ep.Now() - start
			}
		}); err != nil {
			t.Fatal(err)
		}
		lat[mech] = d
	}
	if !(lat[XPMEM] < lat[KNEM] && lat[KNEM] < lat[CMA]) {
		t.Errorf("want xpmem < knem < cma, got %v", lat)
	}
	if lat[CICO] <= lat[XPMEM] {
		t.Errorf("CICO %v should be slower than XPMEM %v", lat[CICO], lat[XPMEM])
	}
}

// TestXPMEMRegCacheMatters: without the registration cache every
// rendezvous pays attach+detach, much slower (Fig. 3 dashed bars).
func TestXPMEMRegCacheMatters(t *testing.T) {
	const n = 64 << 10
	timeFor := func(regcache bool) sim.Duration {
		cfg := DefaultConfig()
		cfg.RegCache = regcache
		w, p := pair(t, cfg)
		src := w.NewBufferAt("s", 0, n)
		dst := w.NewBufferAt("d", 8, n)
		var d sim.Duration
		if err := w.Run(func(ep *env.Proc) {
			switch ep.Rank {
			case 0:
				for i := 0; i < 10; i++ {
					p.Send(ep, 8, i, src, 0, n)
				}
			case 8:
				start := ep.Now()
				for i := 0; i < 10; i++ {
					p.Recv(ep, 0, i, dst, 0, n)
				}
				d = ep.Now() - start
			}
		}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	with := timeFor(true)
	without := timeFor(false)
	if float64(without) < 1.5*float64(with) {
		t.Errorf("no-regcache should be much slower: with %v, without %v", with, without)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w, p := pair(t, DefaultConfig())
	a := w.NewBufferAt("a", 0, 64)
	b := w.NewBufferAt("b", 0, 64)
	ra := w.NewBufferAt("ra", 1, 64)
	rb := w.NewBufferAt("rb", 1, 64)
	fill(a.Data, 10)
	fill(b.Data, 77)
	if err := w.Run(func(ep *env.Proc) {
		switch ep.Rank {
		case 0:
			p.Send(ep, 1, 1, a, 0, 64)
			p.Send(ep, 1, 2, b, 0, 64)
		case 1:
			// Receive in reverse tag order.
			p.Recv(ep, 0, 2, rb, 0, 64)
			p.Recv(ep, 0, 1, ra, 0, 64)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Data, ra.Data) || !bytes.Equal(b.Data, rb.Data) {
		t.Error("out-of-order tag matching delivered wrong payloads")
	}
}

func TestManyEagerMessagesFlowControl(t *testing.T) {
	w, p := pair(t, DefaultConfig())
	const k = 200
	src := w.NewBufferAt("s", 0, 256)
	dst := w.NewBufferAt("d", 1, 256)
	got := 0
	if err := w.Run(func(ep *env.Proc) {
		switch ep.Rank {
		case 0:
			for i := 0; i < k; i++ {
				p.Send(ep, 1, i, src, 0, 256)
			}
		case 1:
			for i := 0; i < k; i++ {
				p.Recv(ep, 0, i, dst, 0, 256)
				got++
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Errorf("received %d, want %d", got, k)
	}
}

func TestSizeMismatchFails(t *testing.T) {
	w, p := pair(t, DefaultConfig())
	src := w.NewBufferAt("s", 0, 64)
	dst := w.NewBufferAt("d", 1, 64)
	err := w.Run(func(ep *env.Proc) {
		switch ep.Rank {
		case 0:
			p.Send(ep, 1, 1, src, 0, 64)
		case 1:
			p.Recv(ep, 0, 1, dst, 0, 32)
		}
	})
	if err == nil {
		t.Error("size mismatch should fail the run")
	}
}

func TestSelfSendPanics(t *testing.T) {
	w, p := pair(t, DefaultConfig())
	buf := w.NewBufferAt("b", 0, 8)
	err := w.Run(func(ep *env.Proc) {
		if ep.Rank == 0 {
			p.Send(ep, 0, 0, buf, 0, 8)
		}
	})
	if err == nil {
		t.Error("self-send should fail")
	}
}

func TestOnMessageHook(t *testing.T) {
	w, p := pair(t, DefaultConfig())
	var events []string
	p.OnMessage = func(src, dst, n int) {
		events = append(events, fmt.Sprintf("%d>%d:%d", src, dst, n))
	}
	src := w.NewBufferAt("s", 0, 128)
	dst := w.NewBufferAt("d", 3, 128)
	if err := w.Run(func(ep *env.Proc) {
		switch ep.Rank {
		case 0:
			p.Send(ep, 3, 0, src, 0, 128)
		case 3:
			p.Recv(ep, 0, 0, dst, 0, 128)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0] != "0>3:128" {
		t.Errorf("events = %v", events)
	}
}

// TestBidirectionalPingPong runs the osu_latency pattern both ways.
func TestBidirectionalPingPong(t *testing.T) {
	w, p := pair(t, DefaultConfig())
	b0 := w.NewBufferAt("b0", 0, 4096)
	b1 := w.NewBufferAt("b1", 8, 4096)
	iters := 20
	var rtts []sim.Duration
	if err := w.Run(func(ep *env.Proc) {
		switch ep.Rank {
		case 0:
			for i := 0; i < iters; i++ {
				start := ep.Now()
				p.Send(ep, 8, i, b0, 0, 4096)
				p.Recv(ep, 8, i, b0, 0, 4096)
				rtts = append(rtts, ep.Now()-start)
			}
		case 8:
			for i := 0; i < iters; i++ {
				p.Recv(ep, 0, i, b1, 0, 4096)
				p.Send(ep, 0, i, b1, 0, 4096)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(rtts) != iters {
		t.Fatalf("rtts = %d", len(rtts))
	}
	for _, r := range rtts {
		if r <= 0 {
			t.Error("non-positive RTT")
		}
	}
}

// TestLargeCICOPipelined moves more data than the ring size, exercising
// wraparound and flow control.
func TestLargeCICOPipelined(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mechanism = CICO
	cfg.RingBytes = 64 << 10
	cfg.ChunkBytes = 16 << 10
	w, p := pair(t, cfg)
	const n = 1 << 20
	src := w.NewBufferAt("s", 0, n)
	dst := w.NewBufferAt("d", 8, n)
	fill(src.Data, 5)
	if err := w.Run(func(ep *env.Proc) {
		switch ep.Rank {
		case 0:
			p.Send(ep, 8, 0, src, 0, n)
		case 8:
			p.Recv(ep, 0, 0, dst, 0, n)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src.Data, dst.Data) {
		t.Error("CICO pipelined payload mismatch")
	}
}
