package mpi

import (
	"fmt"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/shm"
	"xhc/internal/xpmem"
)

// Mechanism selects the transport under the point-to-point layer — the
// role of OpenMPI's SMSC framework in the paper's Fig. 3 experiment.
type Mechanism string

// Available mechanisms.
const (
	// XPMEM: receiver attaches to the sender's buffer (registration
	// cached) and copies with plain loads/stores — single copy.
	XPMEM Mechanism = "xpmem"
	// CMA: process_vm_readv-style kernel copy; per-call syscall plus a
	// contended kernel lock — single copy, no mapping reuse.
	CMA Mechanism = "cma"
	// KNEM: kernel copy via a declared region cookie; cheaper lock than
	// CMA but still a syscall per operation.
	KNEM Mechanism = "knem"
	// CICO: no single-copy support; large messages are pipelined through
	// the shared ring with two copies per byte.
	CICO Mechanism = "cico"
)

// Config tunes the p2p layer.
type Config struct {
	Mechanism Mechanism
	// EagerThreshold: messages <= this go through the shared ring
	// (copy-in-copy-out); larger ones use the rendezvous protocol.
	EagerThreshold int
	// ChunkBytes is the CICO pipelining granule.
	ChunkBytes int
	// RingBytes is the per-channel shared ring capacity.
	RingBytes int
	// RegCache enables the XPMEM registration cache (paper default: on).
	RegCache bool
}

// DefaultConfig mirrors common OpenMPI settings.
func DefaultConfig() Config {
	return Config{
		Mechanism:      XPMEM,
		EagerThreshold: 4 << 10,
		ChunkBytes:     32 << 10,
		RingBytes:      128 << 10,
		RegCache:       true,
	}
}

// P2P is the point-to-point transport: per-pair channels with tag
// matching, created lazily on first use.
type P2P struct {
	W   *env.World
	Cfg Config

	chans  map[chanKey]*channel
	caches []*xpmem.Cache

	// OnMessage, when set, observes every completed message (used for the
	// Table II message-distance accounting).
	OnMessage func(src, dst, bytes int)
}

type chanKey struct{ src, dst int }

// message is one matched transfer descriptor in a channel's FIFO.
type message struct {
	tag      int
	size     int
	handle   xpmem.Handle // rendezvous: sender's exposed buffer
	srcOff   int
	consumed bool
}

// channel is the unidirectional src->dst structure in shared memory.
type channel struct {
	src, dst int

	// posted counts descriptors published by the sender; the receiver
	// waits on it. Single-writer: sender.
	posted *shm.Flag
	// done counts messages fully received; the sender's rendezvous
	// completion and eager flow control wait on it. Single-writer: receiver.
	done *shm.Flag
	// ring is the shared eager staging buffer, homed at the sender.
	ring *mem.Buffer
	// stream is the CICO pipelining ring for large messages, kept separate
	// from the eager slots so the two cannot overwrite each other.
	stream *mem.Buffer
	// wrBytes / rdBytes are cumulative byte counters into the ring for
	// pipelined CICO transfers.
	wrBytes *shm.Flag
	rdBytes *shm.Flag

	queue     []message
	nConsumed int
	sendSeq   uint64
	ringWr    uint64 // sender-local cumulative bytes staged
	ringRd    uint64 // receiver-local cumulative bytes drained
}

// NewP2P creates the transport for a world.
func NewP2P(w *env.World, cfg Config) *P2P {
	if cfg.EagerThreshold <= 0 {
		cfg.EagerThreshold = 4 << 10
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 32 << 10
	}
	if cfg.RingBytes < cfg.EagerThreshold {
		cfg.RingBytes = max(cfg.EagerThreshold, cfg.ChunkBytes) * 4
	}
	p := &P2P{W: w, Cfg: cfg, chans: make(map[chanKey]*channel)}
	p.caches = make([]*xpmem.Cache, w.N)
	for r := range p.caches {
		p.caches[r] = xpmem.NewCache(w.Sys, 0, cfg.RegCache)
	}
	return p
}

// Cache returns rank's registration cache (for hit-ratio reporting).
func (p *P2P) Cache(rank int) *xpmem.Cache { return p.caches[rank] }

// channelFor returns (creating lazily) the src->dst channel. Channel
// creation is communicator-setup work and charges no model time.
func (p *P2P) channelFor(src, dst int) *channel {
	k := chanKey{src, dst}
	if c, ok := p.chans[k]; ok {
		return c
	}
	sc := p.W.Core(src)
	dc := p.W.Core(dst)
	c := &channel{
		src:     src,
		dst:     dst,
		posted:  shm.NewFlag(p.W.Sys, fmt.Sprintf("p2p.%d>%d.posted", src, dst), sc),
		done:    shm.NewFlag(p.W.Sys, fmt.Sprintf("p2p.%d>%d.done", src, dst), dc),
		ring:    p.W.Sys.NewBuffer(fmt.Sprintf("p2p.%d>%d.ring", src, dst), sc, p.Cfg.RingBytes),
		stream:  p.W.Sys.NewBuffer(fmt.Sprintf("p2p.%d>%d.stream", src, dst), sc, p.Cfg.RingBytes),
		wrBytes: shm.NewFlag(p.W.Sys, fmt.Sprintf("p2p.%d>%d.wr", src, dst), sc),
		rdBytes: shm.NewFlag(p.W.Sys, fmt.Sprintf("p2p.%d>%d.rd", src, dst), dc),
	}
	p.chans[k] = c
	return c
}

// Send transmits buf[off:off+n] to rank dst with the given tag. Eager
// sends return once the payload is staged; rendezvous sends block until
// the receiver has drained the data (synchronous-send semantics, which is
// what tree collectives need for correctness anyway).
func (p *P2P) Send(ep *env.Proc, dst, tag int, buf *mem.Buffer, off, n int) {
	if dst == ep.Rank {
		panic("mpi: self-send not supported")
	}
	c := p.channelFor(ep.Rank, dst)
	c.sendSeq++
	seq := c.sendSeq

	if n <= p.Cfg.EagerThreshold {
		// Flow control: keep at most ring/threshold eager messages in
		// flight; wait for the receiver to consume older ones.
		slots := uint64(p.Cfg.RingBytes / max(1, p.Cfg.EagerThreshold))
		if slots < 1 {
			slots = 1
		}
		if seq > slots {
			c.done.WaitGE(ep.S, ep.Core, seq-slots)
		}
		slot := int((seq-1)%slots) * p.Cfg.EagerThreshold
		ep.Copy(c.ring, slot, buf, off, n)
		c.queue = append(c.queue, message{tag: tag, size: n, srcOff: slot})
		c.posted.Set(ep.S, ep.Core, seq)
		return
	}

	switch p.Cfg.Mechanism {
	case XPMEM, CMA, KNEM:
		// Non-blocking rendezvous (isend-like): post the descriptor and
		// return; the window of one outstanding message per channel both
		// bounds state and guarantees the receiver drained the previous
		// buffer exposure before we replace it. Tree algorithms rely on
		// this to drain multiple children in parallel.
		if seq > 1 {
			c.done.WaitGE(ep.S, ep.Core, seq-1)
		}
		c.queue = append(c.queue, message{tag: tag, size: n, handle: xpmem.Expose(buf), srcOff: off})
		c.posted.Set(ep.S, ep.Core, seq)
	case CICO:
		c.queue = append(c.queue, message{tag: tag, size: n, srcOff: -1})
		c.posted.Set(ep.S, ep.Core, seq)
		// Pipelined copy-in through the shared ring.
		ring := uint64(p.Cfg.RingBytes)
		written := 0
		for written < n {
			chunk := min(p.Cfg.ChunkBytes, n-written)
			// Wait for ring space.
			need := c.ringWr + uint64(chunk)
			if need > ring {
				c.rdBytes.WaitGE(ep.S, ep.Core, need-ring)
			}
			slot := int(c.ringWr % ring)
			chunk = min(chunk, int(ring)-slot) // no wraparound copies
			ep.Copy(c.stream, slot, buf, off+written, chunk)
			written += chunk
			c.ringWr += uint64(chunk)
			c.wrBytes.Set(ep.S, ep.Core, c.ringWr)
		}
		c.done.WaitGE(ep.S, ep.Core, seq)
	default:
		panic(fmt.Sprintf("mpi: unknown mechanism %q", p.Cfg.Mechanism))
	}
}

// Recv receives a message with the given tag from rank src into
// buf[off:off+n]. The message size must be exactly n (collectives always
// know sizes).
func (p *P2P) Recv(ep *env.Proc, src, tag int, buf *mem.Buffer, off, n int) {
	if src == ep.Rank {
		panic("mpi: self-recv not supported")
	}
	c := p.channelFor(src, ep.Rank)

	// Find the first unconsumed matching descriptor, waiting for more
	// descriptors to be posted as needed.
	var msg *message
	for {
		for i := range c.queue {
			m := &c.queue[i]
			if !m.consumed && m.tag == tag {
				msg = m
				break
			}
		}
		if msg != nil {
			break
		}
		c.posted.WaitGE(ep.S, ep.Core, uint64(len(c.queue)+1))
	}
	if msg.size != n {
		panic(fmt.Sprintf("mpi: recv size mismatch: posted %d, expected %d (tag %d, %d->%d)",
			msg.size, n, tag, src, ep.Rank))
	}
	msg.consumed = true
	c.nConsumed++

	switch {
	case msg.srcOff >= 0 && !msg.handle.Valid():
		// Eager: single staged copy out of the ring.
		ep.Copy(buf, off, c.ring, msg.srcOff, n)
	case msg.handle.Valid():
		p.rendezvousRecv(ep, c, msg, buf, off, n)
	default:
		// CICO pipelined drain.
		ring := uint64(p.Cfg.RingBytes)
		read := 0
		for read < n {
			chunk := min(p.Cfg.ChunkBytes, n-read)
			slot := int(c.ringRd % ring)
			chunk = min(chunk, int(ring)-slot)
			c.wrBytes.WaitGE(ep.S, ep.Core, c.ringRd+uint64(chunk))
			ep.Copy(buf, off+read, c.stream, slot, chunk)
			read += chunk
			c.ringRd += uint64(chunk)
			c.rdBytes.Set(ep.S, ep.Core, c.ringRd)
		}
	}
	c.done.Set(ep.S, ep.Core, uint64(c.nConsumed))
	if p.OnMessage != nil {
		p.OnMessage(src, ep.Rank, n)
	}
}

// rendezvousRecv performs the single-copy drain of a rendezvous message.
func (p *P2P) rendezvousRecv(ep *env.Proc, c *channel, msg *message, buf *mem.Buffer, off, n int) {
	switch p.Cfg.Mechanism {
	case XPMEM:
		cache := p.caches[ep.Rank]
		srcBuf := cache.Attach(ep.S, msg.handle)
		ep.Copy(buf, off, srcBuf, msg.srcOff, n)
		cache.Release(ep.S, msg.handle)
	case CMA:
		ep.S.Sleep(p.W.Sys.Params.SyscallCost)
		// CMA holds its mm lock across the whole copy (the coarse kernel
		// locking whose contention the paper's Section II-B describes):
		// concurrent callers serialize behind the full transfer.
		p.W.Sys.CMALock.Acquire(ep.S, p.W.Sys.Params.CMALockService)
		p.W.Sys.KernelCopy(ep.S, ep.Core, buf, off, msg.handle.Buffer(), msg.srcOff, n)
		p.W.Sys.CMALock.HoldUntil(ep.S.Now())
	case KNEM:
		ep.S.Sleep(p.W.Sys.Params.SyscallCost)
		p.W.Sys.KNEMLock.Acquire(ep.S, p.W.Sys.Params.KNEMLockService)
		p.W.Sys.KernelCopy(ep.S, ep.Core, buf, off, msg.handle.Buffer(), msg.srcOff, n)
	default:
		panic(fmt.Sprintf("mpi: rendezvous under mechanism %q", p.Cfg.Mechanism))
	}
}

// SendSync is Send with synchronous-send semantics: for rendezvous
// messages it additionally blocks until the receiver has drained the
// data, so the caller may immediately overwrite buf. Exchange patterns
// (recursive doubling, Rabenseifner) need this; tree forwarding does not.
func (p *P2P) SendSync(ep *env.Proc, dst, tag int, buf *mem.Buffer, off, n int) {
	p.Send(ep, dst, tag, buf, off, n)
	c := p.channelFor(ep.Rank, dst)
	if n > p.Cfg.EagerThreshold {
		c.done.WaitGE(ep.S, ep.Core, c.sendSeq)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
