package mpi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDatatypeSizes(t *testing.T) {
	cases := map[Datatype]int{Byte: 1, Int32: 4, Int64: 8, Float32: 4, Float64: 8}
	for dt, want := range cases {
		if dt.Size() != want {
			t.Errorf("%s.Size() = %d, want %d", dt, dt.Size(), want)
		}
	}
}

func TestReduceFloat64Sum(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	ab := make([]byte, 24)
	bb := make([]byte, 24)
	EncodeFloat64s(ab, a)
	EncodeFloat64s(bb, b)
	ReduceBytes(Sum, Float64, ab, bb)
	out := make([]float64, 3)
	DecodeFloat64s(ab, out)
	for i, want := range []float64{11, 22, 33} {
		if out[i] != want {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestReduceOpsInt64(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{Sum, 3, 4, 7},
		{Prod, 3, 4, 12},
		{Min, 3, 4, 3},
		{Max, 3, 4, 4},
		{Min, -5, 2, -5},
		{Max, -5, 2, 2},
	}
	for _, c := range cases {
		ab := make([]byte, 8)
		bb := make([]byte, 8)
		EncodeInt64s(ab, []int64{c.a})
		EncodeInt64s(bb, []int64{c.b})
		ReduceBytes(c.op, Int64, ab, bb)
		out := make([]int64, 1)
		DecodeInt64s(ab, out)
		if out[0] != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, out[0], c.want)
		}
	}
}

func TestReduceInt32AndFloat32(t *testing.T) {
	a32 := []byte{1, 0, 0, 0, 255, 255, 255, 255} // [1, -1]
	b32 := []byte{2, 0, 0, 0, 2, 0, 0, 0}         // [2, 2]
	ReduceBytes(Sum, Int32, a32, b32)
	if a32[0] != 3 {
		t.Errorf("int32 sum first elem = %d", a32[0])
	}

	af := make([]byte, 8)
	bf := make([]byte, 8)
	be32 := func(buf []byte, i int, v float32) {
		bits := math.Float32bits(v)
		buf[i] = byte(bits)
		buf[i+1] = byte(bits >> 8)
		buf[i+2] = byte(bits >> 16)
		buf[i+3] = byte(bits >> 24)
	}
	be32(af, 0, 1.5)
	be32(af, 4, -2)
	be32(bf, 0, 2.5)
	be32(bf, 4, 7)
	ReduceBytes(Max, Float32, af, bf)
	got := math.Float32frombits(uint32(af[0]) | uint32(af[1])<<8 | uint32(af[2])<<16 | uint32(af[3])<<24)
	if got != 2.5 {
		t.Errorf("float32 max = %v, want 2.5", got)
	}
}

func TestReduceByte(t *testing.T) {
	a := []byte{1, 200}
	b := []byte{2, 100}
	ReduceBytes(Sum, Byte, a, b)
	if a[0] != 3 || a[1] != byte(300%256) {
		t.Errorf("byte sum = %v", a)
	}
}

func TestReduceMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ReduceBytes(Sum, Float64, make([]byte, 8), make([]byte, 16)) },
		func() { ReduceBytes(Sum, Float64, make([]byte, 12), make([]byte, 12)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: sum-reduce is commutative and associative over int64 (exact
// arithmetic), matching a scalar reference.
func TestReduceProperty(t *testing.T) {
	f := func(xs, ys []int64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		xs, ys = xs[:n], ys[:n]
		ab := make([]byte, n*8)
		bb := make([]byte, n*8)
		EncodeInt64s(ab, xs)
		EncodeInt64s(bb, ys)
		ReduceBytes(Sum, Int64, ab, bb)
		out := make([]int64, n)
		DecodeInt64s(ab, out)
		for i := range out {
			if out[i] != xs[i]+ys[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
