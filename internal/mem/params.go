// Package mem models the memory system of a multicore node at the
// flow-and-coherence level: NUMA memory controllers, on-die fabric ports
// and inter-socket links with max-min fair bandwidth sharing; LLC/SLC
// cache residency of buffers; and a cache-line coherence model with
// fan-in fetch queueing and atomic-RMW serialization.
//
// This is the substitution for the paper's physical Epyc and ARM machines:
// it makes the phenomena the paper measures (distance-dependent transfer
// costs, fan-in congestion, shared-cache-line assistance, atomics collapse)
// emerge from mechanisms rather than from hard-coded outcomes.
package mem

import (
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// Params holds the platform timing/bandwidth model. All latencies are in
// picoseconds, all bandwidths in bytes/second.
type Params struct {
	// --- copy-path latencies (fixed per-transfer setup component) ---

	// MemLat is the latency of a local DRAM access (per transfer setup).
	MemLat sim.Duration
	// NUMAHopLat is added when a transfer crosses NUMA nodes in a socket.
	NUMAHopLat sim.Duration
	// SocketHopLat is added when a transfer crosses sockets.
	SocketHopLat sim.Duration
	// LLCHitLat is the setup latency when the source is resident in the
	// reader's shared LLC (Epyc CCX).
	LLCHitLat sim.Duration
	// L2HitLat is the setup latency when the source is resident in the
	// reader's private L2 (relevant on ARM-N1).
	L2HitLat sim.Duration
	// SLCHitLat is the setup latency of a system-level-cache hit (ARM-N1).
	SLCHitLat sim.Duration
	// CopyOverhead is the fixed software cost of one copy call
	// (function + loop setup), regardless of source.
	CopyOverhead sim.Duration

	// --- bandwidth capacities (shared, max-min fair) ---

	// MemBW is read bandwidth of one NUMA node's memory controller.
	MemBW float64
	// NUMAPortBW is the on-die fabric port bandwidth of one NUMA node.
	NUMAPortBW float64
	// XSocketBW is the inter-socket link bandwidth (whole link, shared).
	XSocketBW float64
	// LLCBW is the read bandwidth of one shared LLC group's port.
	LLCBW float64
	// SLCBW is the read bandwidth of one socket's system-level cache.
	SLCBW float64
	// L2BW is the private L2 read bandwidth of one core.
	L2BW float64
	// CoreCopyBW caps a single core's load/store streaming rate; every
	// copy flow includes the acting core as a resource, so one core
	// cannot exceed this no matter how idle memory is.
	CoreCopyBW float64
	// StreamBW caps one flow's rate by the topological distance between
	// the reader and the data: a single core streams remote data slower
	// than local data because the higher latency limits its outstanding
	// misses (indexed by topo.DistanceClass; 0 entries mean CoreCopyBW).
	StreamBW [5]float64

	// --- cache-line coherence model ---

	// LineLocalHit is the cost of reading a line already held locally.
	LineLocalHit sim.Duration
	// LineTransfer is the transfer latency of a line fetch per distance
	// class between the reader and the line's current holder point.
	LineTransfer [5]sim.Duration // indexed by topo.DistanceClass
	// LineSLCTransfer is the ARM-N1 fetch latency through the mesh from
	// the SLC slice (uniform; socket distance adds SocketHopLat).
	LineSLCTransfer sim.Duration
	// LineService is the per-fetch occupancy of the line's holder point;
	// concurrent fetches of the same line queue behind each other.
	LineService sim.Duration
	// RMWService is the per-operation occupancy of an atomic
	// read-modify-write; each op needs exclusive ownership, so N
	// concurrent RMWs serialize at roughly N * RMWService.
	RMWService sim.Duration
	// WriteLocal is the cost of a store to a line held exclusively.
	WriteLocal sim.Duration
	// WriteShared is the cost of a store to a line with remote holders
	// (ownership upgrade + invalidations).
	WriteShared sim.Duration
	// NotifyDelay is the time from a flag store until suspended pollers
	// observe the invalidation and re-read.
	NotifyDelay sim.Duration

	// --- software / kernel mechanism costs ---

	// SyscallCost is one kernel entry/exit (CMA/KNEM per-call cost).
	SyscallCost sim.Duration
	// CMALockService / KNEMLockService is the per-call occupancy of the
	// kernel-internal lock of each mechanism; concurrent callers queue
	// (the contention pathology reported for CMA/KNEM at high core
	// counts, paper Section II-B and [28]).
	CMALockService  sim.Duration
	KNEMLockService sim.Duration
	// KernelCopyBW is the streaming rate of a kernel-mediated copy
	// (CMA/KNEM), typically below user-space load/store streaming.
	KernelCopyBW float64

	// XPMEMAttachBase is the syscall portion of xpmem_attach.
	XPMEMAttachBase sim.Duration
	// XPMEMDetach is the cost of tearing down a mapping (paid per
	// operation when the registration cache is disabled, and on cache
	// eviction otherwise).
	XPMEMDetach sim.Duration
	// PageFault is the cost per 4 KiB page of first-touch on a new
	// XPMEM mapping.
	PageFault sim.Duration
	// PageBytes is the mapping granule (4 KiB).
	PageBytes int
	// RegCacheLookup is the cost of one registration-cache lookup. The
	// paper notes this is comparable to the data-copy time for small
	// messages (Section III-D), motivating the CICO path.
	RegCacheLookup sim.Duration

	// ReduceBW is the streaming compute rate of a reduction kernel; sum
	// kernels are memory-bound, so this sits near cache-stream speed (the
	// operand fetch traffic is charged separately through ChargeRead).
	ReduceBW float64

	// CacheCapacityShare divides a cache domain's capacity by
	// (sharers * CacheCapacityShare) when deciding whether a buffer can
	// stay resident; it accounts for each core keeping both its own and
	// a peer's buffer warm. 2 reproduces the paper's ~1 MB cutoff on
	// Epyc (8 MiB LLC / 4 cores / 2).
	CacheCapacityShare int
}

// DefaultParams returns the timing model for a platform. The numbers are
// calibrated to public figures for Epyc "Naples" and Ampere-Altra-class
// Neoverse N1 machines and to the magnitudes reported in the paper's
// microbenchmarks; the experiments depend on their relative order, not
// their absolute values.
func DefaultParams(t *topo.Topology) Params {
	ns := sim.Nanosecond
	p := Params{
		MemLat:       90 * ns,
		NUMAHopLat:   45 * ns,
		SocketHopLat: 120 * ns,
		LLCHitLat:    14 * ns,
		L2HitLat:     5 * ns,
		SLCHitLat:    30 * ns,
		CopyOverhead: 12 * ns,

		MemBW:      28e9,
		NUMAPortBW: 32e9,
		XSocketBW:  30e9,
		LLCBW:      90e9,
		SLCBW:      150e9,
		L2BW:       110e9,
		CoreCopyBW: 14e9,
		StreamBW:   [5]float64{0, 0, 12e9, 9e9, 6e9},

		LineLocalHit:    4 * ns,
		LineTransfer:    [5]sim.Duration{2 * ns, 26 * ns, 75 * ns, 130 * ns, 240 * ns},
		LineSLCTransfer: 105 * ns,
		LineService:     16 * ns,
		RMWService:      75 * ns,
		WriteLocal:      4 * ns,
		WriteShared:     45 * ns,
		NotifyDelay:     12 * ns,

		SyscallCost:     900 * ns,
		CMALockService:  550 * ns,
		KNEMLockService: 140 * ns,
		KernelCopyBW:    7.5e9,

		XPMEMAttachBase: 1300 * ns,
		XPMEMDetach:     700 * ns,
		PageFault:       550 * ns,
		PageBytes:       4096,
		RegCacheLookup:  170 * ns,

		ReduceBW: 22e9,

		CacheCapacityShare: 2,
	}
	switch t.Name {
	case "ARM-N1":
		// Mesh interconnect: higher aggregate bandwidth, no shared LLC,
		// and a single-location system-level cache. Uniform intra-socket
		// distances (the paper observes intra- and inter-NUMA times are
		// effectively the same on this machine).
		p.MemBW = 40e9
		p.NUMAPortBW = 60e9
		p.XSocketBW = 45e9
		// A single hot buffer maps to a handful of SLC slices; its read
		// bandwidth is far below the cache's aggregate capability.
		p.SLCBW = 30e9
		p.NUMAHopLat = 8 * ns
		p.SocketHopLat = 95 * ns
		p.MemLat = 100 * ns
		p.CoreCopyBW = 12e9
		p.StreamBW = [5]float64{0, 0, 11e9, 10e9, 6.5e9}
		p.LineTransfer = [5]sim.Duration{2 * ns, 0, 95 * ns, 100 * ns, 190 * ns}
	case "Epyc-1P":
		// Same dies as Epyc-2P; nothing socket-related applies.
	}
	return p
}
