package mem

import (
	"fmt"
	"sort"

	"xhc/internal/sim"
)

// Fabric models the inter-node network of a simulated cluster: one
// full-duplex NIC link per node (an up resource for sends, a down resource
// for receives) behind an optionally capacity-limited switch. Message
// transfers are latency/bandwidth flows through the same max-min fair
// solver the intra-node memory system uses (solver.go), so concurrent
// messages crossing a shared link split its bandwidth exactly the way
// concurrent copies split a memory controller.
//
// The fabric is not driven by any engine shard. The cluster coordinator
// (internal/env.ClusterWorld) collects the messages posted since the last
// inter-node synchronization point and resolves them in one Solve batch: a
// miniature event loop over the batch's start/completion times. Messages
// posted in different rounds never overlap a solve, which is what keeps
// per-shard virtual time causally consistent (a shard's past can never be
// re-rated by a message the coordinator learns about later). Rounds are a
// function of the program, not of the host scheduler, so the resolution is
// deterministic at any worker count.
type Fabric struct {
	params FabricParams
	nodes  int
	up     []*resource
	down   []*resource
	sw     *resource

	solver rateSolver
	pool   []*flow
	active []*flow
	seq    int

	Stats FabricStats
}

// FabricParams holds the network timing/bandwidth model. Latencies in
// picoseconds, bandwidths in bytes/second (matching Params).
type FabricParams struct {
	// LinkLat is the end-to-end wire+switch latency of one message: the
	// gap between a message leaving its source NIC (TxDone) and becoming
	// readable at the destination node's NIC buffer (Arrive).
	LinkLat sim.Duration
	// LinkBW is one node's NIC bandwidth, each direction.
	LinkBW float64
	// SwitchBW caps the aggregate bandwidth crossing the switch; 0 models
	// a non-blocking switch.
	SwitchBW float64
}

// DefaultFabricParams returns an HDR-InfiniBand-class network: ~100 Gb/s
// per port, microsecond-scale end-to-end latency, non-blocking switch.
func DefaultFabricParams() FabricParams {
	return FabricParams{
		LinkLat:  1500 * sim.Nanosecond,
		LinkBW:   12.5e9,
		SwitchBW: 0,
	}
}

// FabricStats counts fabric work for reports and tests.
type FabricStats struct {
	Msgs          int64
	Bytes         int64
	MaxConcurrent int
	Solves        int64
}

// NewFabric builds a fabric joining nodes nodes.
func NewFabric(nodes int, p FabricParams) *Fabric {
	if nodes < 1 {
		panic(fmt.Sprintf("mem: fabric needs at least 1 node, got %d", nodes))
	}
	f := &Fabric{params: p, nodes: nodes}
	f.up = make([]*resource, nodes)
	f.down = make([]*resource, nodes)
	for i := 0; i < nodes; i++ {
		f.up[i] = &resource{name: fmt.Sprintf("nic%d.up", i), capacity: p.LinkBW}
		f.down[i] = &resource{name: fmt.Sprintf("nic%d.down", i), capacity: p.LinkBW}
	}
	if p.SwitchBW > 0 {
		f.sw = &resource{name: "switch", capacity: p.SwitchBW}
	}
	return f
}

// Nodes returns the number of nodes the fabric joins.
func (f *Fabric) Nodes() int { return f.nodes }

// Params returns the fabric's timing model.
func (f *Fabric) Params() FabricParams { return f.params }

// Msg is one inter-node message in a Solve batch. Src/Dst are node
// indices; Start is the sender-side virtual time the message was posted.
// Solve fills TxDone (source link transfer complete — the sender's staging
// buffer is reusable) and Arrive (payload readable at the destination).
type Msg struct {
	Src, Dst int
	Bytes    int
	Start    sim.Time

	TxDone sim.Time
	Arrive sim.Time
}

// Solve resolves one batch of messages under max-min fair link sharing.
// Zero-byte messages (barrier/control traffic) cost pure latency. The batch
// is processed in (Start, Src, Dst, index) order, so two messages posted by
// the same node's leader resolve in program order and the whole batch is
// independent of caller ordering quirks.
func (f *Fabric) Solve(msgs []*Msg) {
	if len(msgs) == 0 {
		return
	}
	f.Stats.Solves++
	order := make([]int, 0, len(msgs))
	for i := range msgs {
		m := msgs[i]
		if m.Src < 0 || m.Src >= f.nodes || m.Dst < 0 || m.Dst >= f.nodes {
			panic(fmt.Sprintf("mem: fabric message %d->%d outside %d nodes", m.Src, m.Dst, f.nodes))
		}
		if m.Src == m.Dst {
			panic(fmt.Sprintf("mem: fabric message to self (node %d)", m.Src))
		}
		f.Stats.Msgs++
		f.Stats.Bytes += int64(m.Bytes)
		if m.Bytes <= 0 {
			// Control message: no bandwidth, pure latency.
			m.TxDone = m.Start
			m.Arrive = m.Start + f.params.LinkLat
			continue
		}
		order = append(order, i)
	}
	if len(order) == 0 {
		return
	}
	sort.SliceStable(order, func(a, b int) bool {
		ma, mb := msgs[order[a]], msgs[order[b]]
		if ma.Start != mb.Start {
			return ma.Start < mb.Start
		}
		if ma.Src != mb.Src {
			return ma.Src < mb.Src
		}
		return ma.Dst < mb.Dst
	})

	// Miniature event loop: admit messages at their start times, share
	// bandwidth max-min among concurrent transfers, advance to the next
	// start or completion. The arithmetic mirrors System.reschedule (rate
	// integration over wall slices, minimum 1 ps to completion) so link
	// flows behave exactly like memory flows.
	flows := make([]*flow, len(order))
	byFlow := make([]*Msg, len(order))
	for k, i := range order {
		m := msgs[i]
		f.seq++
		fl := f.getFlow()
		fl.id = f.seq
		fl.res = fl.resArr[:0]
		fl.res = append(fl.res, f.up[m.Src], f.down[m.Dst])
		if f.sw != nil {
			fl.res = append(fl.res, f.sw)
		}
		fl.remaining = float64(m.Bytes)
		fl.rate = 0
		fl.rateCap = 0
		fl.done = false
		flows[k] = fl
		byFlow[k] = m
	}

	active := f.active[:0]
	activeMsg := make([]*Msg, 0, len(order))
	next := 0
	t := byFlow[0].Start
	for len(active) > 0 || next < len(flows) {
		if len(active) == 0 {
			t = byFlow[next].Start
		}
		for next < len(flows) && byFlow[next].Start <= t {
			active = append(active, flows[next])
			activeMsg = append(activeMsg, byFlow[next])
			next++
		}
		if len(active) > f.Stats.MaxConcurrent {
			f.Stats.MaxConcurrent = len(active)
		}
		f.solver.solve(active)
		// Earliest completion among active flows.
		earliest := sim.Time(-1)
		for _, fl := range active {
			var d sim.Duration
			if fl.rate > 0 {
				d = sim.Duration(fl.remaining / fl.rate * float64(sim.Second))
			}
			if d < 1 && fl.remaining > 0 {
				d = 1
			}
			dl := t + d
			if earliest < 0 || dl < earliest {
				earliest = dl
			}
		}
		tn := earliest
		if next < len(flows) && (tn < 0 || byFlow[next].Start < tn) {
			tn = byFlow[next].Start
		}
		// Advance to tn; complete flows whose remaining drains.
		keep := active[:0]
		keepMsg := activeMsg[:0]
		for k, fl := range active {
			if fl.rate > 0 {
				fl.remaining -= fl.rate * float64(tn-t) / float64(sim.Second)
				if fl.remaining < 0 {
					fl.remaining = 0
				}
			}
			if fl.remaining <= 0 {
				m := activeMsg[k]
				m.TxDone = tn
				m.Arrive = tn + f.params.LinkLat
				fl.done = true
				f.putFlow(fl)
				continue
			}
			keep = append(keep, fl)
			keepMsg = append(keepMsg, activeMsg[k])
		}
		// If tn hit the earliest deadline but FP residue kept a due flow
		// alive, force the earliest-deadline flows out: recompute deadlines
		// and complete any at <= tn.
		if len(keep) == len(active) && tn == earliest {
			keep2 := keep[:0]
			keepMsg2 := keepMsg[:0]
			for k, fl := range keep {
				var d sim.Duration
				if fl.rate > 0 {
					d = sim.Duration(fl.remaining / fl.rate * float64(sim.Second))
				}
				if d < 1 {
					m := keepMsg[k]
					m.TxDone = tn
					m.Arrive = tn + f.params.LinkLat
					fl.done = true
					f.putFlow(fl)
					continue
				}
				keep2 = append(keep2, fl)
				keepMsg2 = append(keepMsg2, keepMsg[k])
			}
			keep = keep2
			keepMsg = keepMsg2
		}
		for i := len(keep); i < len(active); i++ {
			active[i] = nil
			activeMsg[i] = nil
		}
		active = keep
		activeMsg = keepMsg
		t = tn
	}
	f.active = active[:0]
}

func (f *Fabric) getFlow() *flow {
	if n := len(f.pool); n > 0 {
		fl := f.pool[n-1]
		f.pool = f.pool[:n-1]
		return fl
	}
	return &flow{}
}

func (f *Fabric) putFlow(fl *flow) {
	fl.res = nil
	f.pool = append(f.pool, fl)
}
