package mem

import (
	"fmt"

	"xhc/internal/sim"
)

// Line models the coherence behaviour of one cache line holding
// synchronization state. It tracks which cache domains hold the current
// version, serializes concurrent fetches at the holder point (fan-in
// queueing), and makes atomic read-modify-writes mutually exclusive.
//
// Several flags may share a Line (the paper's Fig. 10 "shared" scheme);
// a write to any of them invalidates the whole line for all readers.
type Line struct {
	sys  *System
	home int // core that owns/writes the line (flag allocation home)

	version    uint64
	holders    map[domainKey]uint64
	holderCore int // core whose cache holds the authoritative copy
	queue      Queue

	waiters []lineWaiter
}

type lineWaiter struct {
	p     *sim.Proc
	token uint64
}

// NewLine allocates a coherence line homed at (owned by) the given core.
func (s *System) NewLine(home int) *Line {
	s.Stats.LinesAllocated++
	return &Line{
		sys:        s,
		home:       home,
		holders:    make(map[domainKey]uint64),
		holderCore: home,
	}
}

// Home returns the owning core.
func (l *Line) Home() int { return l.home }

// holdsLocal reports whether core's innermost cache (its LLC group on
// Epyc, its private L2 on the mesh platform) has the line's current
// version — the only case that costs just a local hit. An SLC-resident
// line still requires a mesh round-trip.
func (l *Line) holdsLocal(core int) bool {
	d := l.sys.coreDomains(core)[0]
	v, ok := l.holders[d]
	return ok && v == l.version
}

// fetchLatency is the transfer time of a line fetch by core from the
// current holder point.
func (l *Line) fetchLatency(core int) sim.Duration {
	p := &l.sys.Params
	if l.sys.Topo.HasSharedLLC() {
		d := l.sys.Topo.Distance(core, l.holderCore)
		return p.LineTransfer[d]
	}
	// Mesh/SLC platform: fetches route through the SLC slice at the
	// line's home socket.
	lat := p.LineSLCTransfer
	if l.sys.Topo.Socket(core) != l.sys.Topo.Socket(l.home) {
		lat += p.SocketHopLat
	}
	return lat
}

// markHolder records that core's caches now hold the current version
// (after a fetch, every level on the path keeps a copy).
func (l *Line) markHolder(core int) {
	for _, d := range l.sys.coreDomains(core) {
		l.holders[d] = l.version
	}
}

// markOwnerStore records the post-store state: only the writer's innermost
// cache holds the new version (a store does not push the line outward).
func (l *Line) markOwnerStore(core int) {
	l.holders[l.sys.coreDomains(core)[0]] = l.version
}

// Read charges p (on core) for reading the line. Concurrent missing
// readers queue at the line; a reader whose shared cache (LLC, or SLC on
// mesh platforms) already has the current version pays only a local hit —
// the implicit hardware assistance behind the paper's Fig. 10.
func (l *Line) Read(p *sim.Proc, core int) {
	if l.holdsLocal(core) {
		l.sys.Stats.LineHits++
		p.Sleep(l.sys.Params.LineLocalHit)
		return
	}
	l.sys.Stats.LineFetches++
	wait := l.queue.Acquire(p, l.sys.Params.LineService)
	l.sys.Stats.QueueWaitPS += wait
	p.Sleep(l.fetchLatency(core))
	l.markHolder(core)
}

// sharedBeyond reports whether any cache domain other than core's holds a
// copy of the line (stale or current) that a store must invalidate.
func (l *Line) sharedBeyond(core int) bool {
	own := map[domainKey]bool{}
	for _, d := range l.sys.coreDomains(core) {
		own[d] = true
	}
	for d := range l.holders {
		if !own[d] {
			return true
		}
	}
	return false
}

// Write charges p for the owner's store to the line, invalidates all other
// holders, and wakes any waiters so they can re-read.
func (l *Line) Write(p *sim.Proc, core int) {
	cost := l.sys.Params.WriteLocal
	if len(l.waiters) > 0 || l.sharedBeyond(core) {
		cost = l.sys.Params.WriteShared
	}
	p.Sleep(cost)
	l.version++
	clear(l.holders)
	l.holderCore = core
	l.markOwnerStore(core)
	l.wakeWaiters()
}

// FetchAdd charges p for an atomic read-modify-write on the line: it
// queues for exclusive ownership (RMWService per op) and pays the
// ownership-transfer latency from the previous holder. This is the
// mechanism behind the paper's Fig. 4 atomics collapse.
func (l *Line) FetchAdd(p *sim.Proc, core int) {
	l.sys.Stats.LineRMWs++
	transfer := l.fetchLatency(core)
	if l.holdsLocal(core) && l.holderCore == core {
		transfer = l.sys.Params.LineLocalHit
	}
	wait := l.queue.Acquire(p, l.sys.Params.RMWService)
	l.sys.Stats.QueueWaitPS += wait
	p.Sleep(transfer)
	l.version++
	clear(l.holders)
	l.holderCore = core
	l.markOwnerStore(core)
	l.wakeWaiters()
}

// ReadBatch charges p (on core) for reading several independent lines
// back to back. Hardware overlaps the misses (memory-level parallelism),
// so the total cost is the serial local-hit work plus the *longest* fetch
// rather than the sum — the model behind leaders gathering many members'
// flags at once.
func (s *System) ReadBatch(p *sim.Proc, core int, lines []*Line) {
	var serial, maxFetch sim.Duration
	now := p.Now()
	for _, l := range lines {
		if l.holdsLocal(core) {
			s.Stats.LineHits++
			serial += s.Params.LineLocalHit
			continue
		}
		s.Stats.LineFetches++
		// Queue at the line without sleeping; overlap transfers.
		start := now
		if l.queue.nextFree > start {
			start = l.queue.nextFree
		}
		l.queue.nextFree = start + s.Params.LineService
		wait := start - now + s.Params.LineService + l.fetchLatency(core)
		s.Stats.QueueWaitPS += start - now
		if wait > maxFetch {
			maxFetch = wait
		}
		l.markHolder(core)
	}
	p.Sleep(serial + maxFetch)
}

// AddWaiter registers p to be woken after the next write to the line.
// The caller must call Suspend immediately after (with no intervening
// blocking operation); the registration is bound to that next suspension,
// so a wake can never hit an unrelated wait.
func (l *Line) AddWaiter(p *sim.Proc) {
	l.waiters = append(l.waiters, lineWaiter{p: p, token: p.NextSuspendToken()})
	l.sys.Stats.LineWaits++
	if n := len(l.waiters); n > l.sys.Stats.MaxLineWaiters {
		l.sys.Stats.MaxLineWaiters = n
	}
}

// wakeWaiters schedules every registered waiter to re-check shortly after
// the store becomes visible.
func (l *Line) wakeWaiters() {
	if len(l.waiters) == 0 {
		return
	}
	ws := l.waiters
	l.waiters = nil
	at := l.sys.Eng.Now() + l.sys.Params.NotifyDelay
	for _, w := range ws {
		l.sys.Eng.Wake(w.p, w.token, at)
	}
}

// String aids debugging.
func (l *Line) String() string {
	return fmt.Sprintf("line@core%d v%d holders=%d", l.home, l.version, len(l.holders))
}
