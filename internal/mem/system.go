package mem

import (
	"fmt"

	"xhc/internal/sim"
	"xhc/internal/topo"
)

// System is the memory-system model of one node: bandwidth resources,
// buffers, cache lines and kernel serialization points, advanced by a
// sim.Engine. All methods must be called from simulated processes (or the
// engine goroutine); the engine's lockstep execution makes that safe.
type System struct {
	Eng    *sim.Engine
	Topo   *topo.Topology
	Params Params

	memRes   []*resource // per NUMA node memory controller
	numaPort []*resource // per NUMA node fabric port
	xsLink   *resource   // inter-socket link (nil on 1-socket nodes)
	llcPort  []*resource // per shared-LLC group (Epyc)
	slcPort  []*resource // per socket SLC (ARM)
	coreRes  []*resource // per core load/store streaming limit

	// active is the in-flight flow set, kept ordered by flow id (ids are
	// assigned monotonically, so arrival order IS id order and no per-event
	// sort is needed). flowPool recycles completed flow objects; solver is
	// the max-min rate solver with its pooled scratch (shared, as a type,
	// with the inter-node Fabric — see solver.go); cmplVersion and
	// cmplFired implement the single per-System completion event
	// (see flows.go).
	active      []*flow
	flowPool    []*flow
	solver      rateSolver
	cmplVersion uint64
	cmplFired   func(uint64)
	flowSeq     int
	bufSeq      int

	// CMALock and KNEMLock model the kernel-internal locks of the CMA and
	// KNEM single-copy mechanisms; concurrent callers serialize on them.
	CMALock  *Queue
	KNEMLock *Queue

	// OnFlow, when set, observes every completed bulk transfer: the
	// initiating core, the byte count, and the flow's start/end virtual
	// times (including fixed read latency and copy overhead). It is a
	// nil-checked function pointer so the disabled path costs one branch
	// and the hot loop stays allocation-free.
	OnFlow func(core, bytes int, start, end sim.Time)

	// OnFlagWrite, when set, observes every store to a single-writer
	// control flag (package shm routes Flag.Set through it): the flag
	// name, the coherence line it lives on, the writing core, and the
	// stored value. The protocol checker's write-tracker hangs off this
	// hook to detect any line written by more than one core — the
	// discipline the paper's Section III-E design rests on. Nil (the
	// default) costs one branch per flag store.
	OnFlagWrite func(name string, line *Line, core int, v uint64)

	Stats Stats
}

// Stats aggregates counters useful for tests and for the Table II /
// registration-cache analyses.
type Stats struct {
	FlowsStarted  int64
	BytesMoved    int64
	MaxConcurrent int
	LineFetches   int64
	LineHits      int64
	LineRMWs      int64
	QueueWaitPS   int64 // accumulated line/RMW queue waiting

	// LineWaits counts blocked-reader registrations on coherence lines;
	// MaxLineWaiters is the deepest fan-in queue observed on any single
	// line (the Fig. 10 congestion signal).
	LineWaits      int64
	MaxLineWaiters int

	// LinesAllocated counts NewLine calls. The protocol checker compares
	// it across operations to assert that control structures are
	// per-communicator, not per-operation (bounded control memory).
	LinesAllocated int64

	// SolverFastPath counts rate solves resolved by the single-flow fast
	// path; SolverFallbacks counts times the
	// numerical-corner fallback froze flows at the current bound — nonzero
	// values there signal calibration drift worth investigating.
	SolverFastPath  int64
	SolverFallbacks int64
}

// NewSystem builds the memory model for a topology with the given params.
func NewSystem(eng *sim.Engine, t *topo.Topology, p Params) *System {
	s := &System{
		Eng:    eng,
		Topo:   t,
		Params: p,
	}
	s.cmplFired = s.completionFired
	for i := 0; i < t.NNUMA; i++ {
		s.memRes = append(s.memRes, &resource{name: fmt.Sprintf("mem%d", i), capacity: p.MemBW})
		s.numaPort = append(s.numaPort, &resource{name: fmt.Sprintf("port%d", i), capacity: p.NUMAPortBW})
	}
	if t.NSockets > 1 {
		s.xsLink = &resource{name: "xs", capacity: p.XSocketBW}
	}
	for i := 0; i < t.NLLC; i++ {
		s.llcPort = append(s.llcPort, &resource{name: fmt.Sprintf("llc%d", i), capacity: p.LLCBW})
	}
	if !t.HasSharedLLC() {
		for i := 0; i < t.NSockets; i++ {
			s.slcPort = append(s.slcPort, &resource{name: fmt.Sprintf("slc%d", i), capacity: p.SLCBW})
		}
	}
	for i := 0; i < t.NCores; i++ {
		s.coreRes = append(s.coreRes, &resource{name: fmt.Sprintf("core%d", i), capacity: p.CoreCopyBW})
	}
	s.CMALock = NewQueue()
	s.KNEMLock = NewQueue()
	return s
}

// Default builds a System with DefaultParams on a fresh engine.
func Default(t *topo.Topology) *System {
	return NewSystem(sim.NewEngine(), t, DefaultParams(t))
}

// readPath resolves the fixed latency, shared resources, and the
// single-stream rate cap that a read of src by core traverses right now,
// given current cache residency. The cap models a core's limited number of
// outstanding misses: remote data streams slower even on an idle machine.
// Resources are appended to buf so callers can pass stack scratch and keep
// the copy hot path allocation-free.
func (s *System) readPath(core int, src *Buffer, buf []*resource) (sim.Duration, []*resource, float64) {
	p := &s.Params
	switch s.lookupSource(src, core) {
	case srcL2:
		return p.L2HitLat, append(buf, s.coreRes[core]), 0
	case srcLLC:
		return p.LLCHitLat, append(buf, s.llcPort[s.Topo.LLC(core)], s.coreRes[core]), 0
	case srcSLC:
		return p.SLCHitLat, append(buf, s.slcPort[s.Topo.Socket(core)], s.coreRes[core]), p.StreamBW[topo.IntraNUMA]
	}
	home := src.HomeNUMA
	rn := s.Topo.NUMA(core)
	lat := p.MemLat
	res := append(buf, s.memRes[home], s.coreRes[core])
	cap := p.StreamBW[topo.IntraNUMA]
	if home != rn {
		lat += p.NUMAHopLat
		cap = p.StreamBW[topo.CrossNUMA]
		res = append(res, s.numaPort[home], s.numaPort[rn])
		if s.Topo.NUMASocket(home) != s.Topo.Socket(core) {
			lat += p.SocketHopLat
			cap = p.StreamBW[topo.CrossSocket]
			res = append(res, s.xsLink)
		}
	}
	return lat, res, cap
}

// appendWriteResources appends the destination-side resources of a copy:
// the destination NUMA memory controller when the data cannot stay in the
// writer's cache, plus the fabric path if the destination is remote.
func (s *System) appendWriteResources(res []*resource, core int, dst *Buffer, n int) []*resource {
	inner := s.coreDomains(core)[0]
	if int64(n) <= s.domainShare(inner) {
		return res // write-back absorbed by the cache
	}
	home := dst.HomeNUMA
	rn := s.Topo.NUMA(core)
	res = append(res, s.memRes[home])
	if home != rn {
		res = append(res, s.numaPort[home], s.numaPort[rn])
		if s.Topo.NUMASocket(home) != s.Topo.Socket(core) {
			res = append(res, s.xsLink)
		}
	}
	return res
}

// Queue is a serialization point with exponential-free deterministic
// queueing: callers occupy it back to back.
type Queue struct {
	nextFree sim.Time
	waits    int64
}

// NewQueue returns an idle queue.
func NewQueue() *Queue { return &Queue{} }

// Acquire blocks p until its turn, holding the queue for service time.
// It returns the time spent waiting (excluding service).
func (q *Queue) Acquire(p *sim.Proc, service sim.Duration) sim.Duration {
	now := p.Now()
	start := now
	if q.nextFree > start {
		start = q.nextFree
	}
	q.nextFree = start + service
	wait := start - now
	q.waits += wait
	p.Sleep(wait + service)
	return wait
}

// HoldUntil extends the queue's busy period to at least t, modeling a
// lock held across an operation that was charged separately.
func (q *Queue) HoldUntil(t sim.Time) {
	if t > q.nextFree {
		q.nextFree = t
	}
}

// Waited returns the cumulative wait time observed at the queue.
func (q *Queue) Waited() sim.Duration { return q.waits }
