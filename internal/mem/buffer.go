package mem

import "fmt"

// domainKey identifies a cache domain that can hold buffer data or cache
// lines: a private L2, a shared LLC group, or a per-socket SLC.
type domainKey struct {
	kind domainKind
	id   int
}

type domainKind uint8

const (
	domainL2 domainKind = iota
	domainLLC
	domainSLC
)

func (k domainKey) String() string {
	switch k.kind {
	case domainL2:
		return fmt.Sprintf("L2#%d", k.id)
	case domainLLC:
		return fmt.Sprintf("LLC#%d", k.id)
	case domainSLC:
		return fmt.Sprintf("SLC#%d", k.id)
	}
	return "?"
}

// Buffer is a contiguous memory region owned by one rank. Data movement is
// performed for real on Data, so simulation runs double as correctness
// checks. Version counts writes; the residency map records which cache
// domains hold which version, implementing the buffer-granularity cache
// model (paper Section V-A's osu_bcast caching discussion).
type Buffer struct {
	ID        int
	Label     string
	Data      []byte
	HomeNUMA  int // NUMA node whose memory backs the buffer
	OwnerCore int

	version  int64
	resident map[domainKey]int64
}

// NewBuffer allocates an n-byte buffer homed on the NUMA node of core.
func (s *System) NewBuffer(label string, core int, n int) *Buffer {
	s.bufSeq++
	return &Buffer{
		ID:        s.bufSeq,
		Label:     label,
		Data:      make([]byte, n),
		HomeNUMA:  s.Topo.NUMA(core),
		OwnerCore: core,
		resident:  make(map[domainKey]int64),
	}
}

// BuffersAllocated returns how many buffers this system has handed out
// (the bounded-control-memory invariant tracks it across operations).
func (s *System) BuffersAllocated() int { return s.bufSeq }

// Len returns the buffer length in bytes.
func (b *Buffer) Len() int { return len(b.Data) }

// Version returns the buffer's write-version counter.
func (b *Buffer) Version() int64 { return b.version }

// MarkWritten records that core wrote to the buffer: all other cached
// copies become stale, and the writer's domains (if the buffer fits)
// become the only holders. Application code uses this to model
// benchmark-side buffer dirtying; internal copy/reduce paths call it
// automatically for destinations.
func (s *System) MarkWritten(b *Buffer, core int) {
	b.version++
	for k := range b.resident {
		delete(b.resident, k)
	}
	for _, d := range s.coreDomains(core) {
		if int64(len(b.Data)) <= s.domainShare(d) {
			b.resident[d] = b.version
		}
	}
}

// MarkDMAWritten records a device write into the buffer (the cluster
// fabric delivering a message into a NIC staging region): every cached
// copy becomes stale and — unlike MarkWritten — no core's caches gain the
// new contents, so the first reader pays a memory-sourced pull.
func (s *System) MarkDMAWritten(b *Buffer) {
	b.version++
	for k := range b.resident {
		delete(b.resident, k)
	}
}

// markRead records that core pulled the buffer's current contents through
// its caches.
func (s *System) markRead(b *Buffer, core int) {
	for _, d := range s.coreDomains(core) {
		if int64(len(b.Data)) <= s.domainShare(d) {
			b.resident[d] = b.version
		}
	}
}

// readSource classifies where core would read the buffer from right now.
type readSource int

const (
	srcMemory readSource = iota
	srcL2
	srcLLC
	srcSLC
)

// lookupSource finds the best cache domain of core currently holding the
// buffer's current version, falling back to memory.
func (s *System) lookupSource(b *Buffer, core int) readSource {
	for _, d := range s.coreDomains(core) {
		if v, ok := b.resident[d]; ok && v == b.version {
			switch d.kind {
			case domainL2:
				return srcL2
			case domainLLC:
				return srcLLC
			case domainSLC:
				return srcSLC
			}
		}
	}
	return srcMemory
}

// coreDomains lists the cache domains of a core from innermost out.
func (s *System) coreDomains(core int) []domainKey {
	if s.Topo.HasSharedLLC() {
		return []domainKey{{domainLLC, s.Topo.LLC(core)}}
	}
	return []domainKey{
		{domainL2, core},
		{domainSLC, s.Topo.Socket(core)},
	}
}

// domainShare is the per-buffer capacity budget of a cache domain: the
// domain capacity divided by (sharers * CacheCapacityShare).
func (s *System) domainShare(d domainKey) int64 {
	switch d.kind {
	case domainLLC:
		return s.Topo.LLCBytes / int64(s.Topo.CoresPerLLC*s.Params.CacheCapacityShare)
	case domainSLC:
		sharers := s.Topo.NCores / s.Topo.NSockets
		return s.Topo.SLCBytes / int64(sharers*s.Params.CacheCapacityShare)
	case domainL2:
		// Neoverse N1 class: 1 MiB private L2.
		return (1 << 20) / int64(s.Params.CacheCapacityShare)
	}
	return 0
}

// Residency reports whether core's innermost cache domain holds the
// buffer's current contents (exported for tests and the trace package).
func (s *System) Residency(b *Buffer, core int) bool {
	return s.lookupSource(b, core) != srcMemory
}
