package mem

import "math"

// rateSolver is the max-min fair rate solver shared by the intra-node
// System (memory controllers, fabric ports, cache ports, core streams) and
// the inter-node Fabric (NIC links, switch capacity). It owns the pooled
// scratch (the first-seen resource list and the generation stamp the
// resources are marked with), so steady-state solving does not allocate.
// The algorithm and its floating-point evaluation order are load-bearing:
// the reproduction gate requires bit-identical outputs, so this code was
// moved here verbatim from the System — do not "simplify" it algebraically
// (see the note inside solve).
type rateSolver struct {
	res []*resource
	gen uint64

	// FastPath counts solves resolved by the single-flow fast path;
	// Fallbacks counts rounds where the freeze loop made no progress and
	// everything was frozen at the current bound (numerical corner).
	FastPath  int64
	Fallbacks int64
}

// solve computes max-min fair rates: repeatedly find the most constrained
// resource, freeze the flows it bottlenecks at its fair share, subtract,
// and continue. Per-flow rate caps are modeled as an implicit private
// resource. All scratch state lives on the solver and the resources
// themselves (generation-stamped).
func (rs *rateSolver) solve(flows []*flow) {
	if len(flows) == 0 {
		return
	}
	if len(flows) == 1 {
		// Fast path: a lone flow runs at its most constrained resource (or
		// its private cap) — no scratch setup, no iteration.
		f := flows[0]
		if len(f.res) > 0 || f.rateCap > 0 {
			best := math.Inf(1)
			for _, r := range f.res {
				if r.capacity < best {
					best = r.capacity
				}
			}
			if f.rateCap > 0 && f.rateCap < best {
				best = f.rateCap
			}
			f.rate = best
			rs.FastPath++
			return
		}
	}
	// Note: no multi-flow early exit here, even when every flow shares one
	// bottleneck. The freeze loop below mutates remCap/undecided as it goes,
	// and in floating point (C - k*best)/(n-k) can land an ulp above best,
	// deferring a flow to a later round at a slightly different rate.
	// Assigning best to everyone is algebraically equal but not bit-equal,
	// and the reproduction gate requires bit-identical outputs.
	//
	// Resources in first-seen order over the id-ordered flows: deterministic.
	rs.gen++
	gen := rs.gen
	resList := rs.res[:0]
	for _, f := range flows {
		f.rate = -1
		for _, r := range f.res {
			if r.seenGen != gen {
				r.seenGen = gen
				r.remCap = r.capacity
				r.undecided = 0
				resList = append(resList, r)
			}
		}
	}
	rs.res = resList
	for _, f := range flows {
		for _, r := range f.res {
			r.undecided++
		}
	}
	undecided := len(flows)
	for undecided > 0 {
		// Most constrained resource (or flow cap) first.
		best := math.Inf(1)
		for _, r := range resList {
			if r.undecided > 0 {
				share := r.remCap / float64(r.undecided)
				if share < best {
					best = share
				}
			}
		}
		// A flow's private cap can be tighter than any shared resource.
		capBound := false
		for _, f := range flows {
			if f.rate < 0 && f.rateCap > 0 && f.rateCap < best {
				best = f.rateCap
				capBound = true
			}
		}
		progress := 0
		for _, f := range flows {
			if f.rate >= 0 {
				continue
			}
			freeze := false
			if f.rateCap > 0 && f.rateCap <= best {
				freeze = true
			}
			if !freeze && !capBound {
				for _, r := range f.res {
					if r.undecided > 0 && r.remCap/float64(r.undecided) <= best {
						freeze = true
						break
					}
				}
			}
			if freeze {
				rate := best
				if f.rateCap > 0 && f.rateCap < rate {
					rate = f.rateCap
				}
				f.rate = rate
				for _, r := range f.res {
					r.remCap -= rate
					if r.remCap < 0 {
						r.remCap = 0
					}
					r.undecided--
				}
				progress++
				undecided--
			}
		}
		if progress == 0 {
			// Numerical corner: freeze everything at the current bound.
			// Counted so calibration drift is observable instead of
			// silently absorbed (see DESIGN.md §8).
			rs.Fallbacks++
			for _, f := range flows {
				if f.rate < 0 {
					f.rate = best
					for _, r := range f.res {
						r.remCap -= best
						if r.remCap < 0 {
							r.remCap = 0
						}
						r.undecided--
					}
					undecided--
				}
			}
		}
	}
}
