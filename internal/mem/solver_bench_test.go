package mem

import (
	"fmt"
	"testing"

	"xhc/internal/sim"
	"xhc/internal/topo"
)

// solverFixture fills s.active with n synthetic flows. In the shared
// variant every flow crosses the same memory controller (one common
// bottleneck, the hard case for the max-min solver); in the disjoint
// variant each flow only crosses its own core's streaming limit (the
// trivially separable case).
func solverFixture(s *System, n int, shared bool) {
	s.active = s.active[:0]
	for i := 0; i < n; i++ {
		f := &flow{id: i + 1, remaining: 1 << 20}
		if shared {
			f.res = append(f.resArr[:0], s.memRes[0], s.coreRes[i%len(s.coreRes)])
		} else {
			f.res = append(f.resArr[:0], s.coreRes[i%len(s.coreRes)])
		}
		s.active = append(s.active, f)
	}
}

// BenchmarkFlowSolver measures one max-min rate solve at several active
// flow counts (ARM-N1 peaks at 160 concurrent flows, one per core).
func BenchmarkFlowSolver(b *testing.B) {
	for _, n := range []int{1, 8, 64, 160} {
		for _, shared := range []bool{true, false} {
			kind := "disjoint"
			if shared {
				kind = "shared"
			}
			b.Run(fmt.Sprintf("%s-%d", kind, n), func(b *testing.B) {
				s := Default(topo.ArmN1())
				solverFixture(s, n, shared)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.solveRates(s.active)
				}
			})
		}
	}
}

// BenchmarkReschedule measures the full reschedule path (advance flows,
// solve rates, re-arm the completion event) at ARM-N1 scale.
func BenchmarkReschedule(b *testing.B) {
	s := Default(topo.ArmN1())
	solverFixture(s, 160, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.reschedule()
	}
}

// TestRescheduleZeroAllocs pins the steady-state allocation count of the
// scheduling hot path to zero: with the flow list, the solver scratch and
// the completion event all pooled, reschedule must not allocate at all.
//
// The one unavoidable amortized allocation is the event heap's backing
// array growing past a capacity boundary. The test pads the heap first and
// measures twice: append growth adds at least 25% slack, so two back-to-
// back 100-call windows cannot both cross a boundary, and the smaller of
// the two measurements is the true steady-state count.
func TestRescheduleZeroAllocs(t *testing.T) {
	s := Default(topo.ArmN1())
	solverFixture(s, 160, true)
	for i := 0; i < 10000; i++ {
		s.Eng.At(sim.Time(1)<<50, func() {})
	}
	s.reschedule() // warm the solver scratch
	a1 := testing.AllocsPerRun(100, func() { s.reschedule() })
	a2 := testing.AllocsPerRun(100, func() { s.reschedule() })
	if min := minF(a1, a2); min != 0 {
		t.Fatalf("reschedule allocates in steady state: %.2f allocs/op (runs: %.2f, %.2f)", min, a1, a2)
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
