package mem

import (
	"bytes"
	"fmt"
	"testing"

	"xhc/internal/sim"
	"xhc/internal/topo"
)

// run executes body as a single simulated process and returns the virtual
// time it took.
func run(t *testing.T, s *System, body func(p *sim.Proc)) sim.Duration {
	t.Helper()
	var elapsed sim.Duration
	s.Eng.Go("test", func(p *sim.Proc) {
		start := p.Now()
		body(p)
		elapsed = p.Now() - start
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	return elapsed
}

func TestCopyMovesData(t *testing.T) {
	s := Default(topo.Epyc1P())
	src := s.NewBuffer("src", 0, 1024)
	dst := s.NewBuffer("dst", 4, 1024)
	for i := range src.Data {
		src.Data[i] = byte(i)
	}
	run(t, s, func(p *sim.Proc) {
		s.Copy(p, 4, dst, 0, src, 0, 1024)
	})
	if !bytes.Equal(src.Data, dst.Data) {
		t.Error("copy did not move data")
	}
	if s.Stats.BytesMoved != 1024 {
		t.Errorf("BytesMoved = %d", s.Stats.BytesMoved)
	}
}

func TestCopyOutOfRangePanics(t *testing.T) {
	s := Default(topo.Epyc1P())
	src := s.NewBuffer("src", 0, 16)
	dst := s.NewBuffer("dst", 0, 16)
	err := func() (err error) {
		s.Eng.Go("t", func(p *sim.Proc) {
			s.Copy(p, 0, dst, 8, src, 0, 16)
		})
		return s.Eng.Run()
	}()
	if err == nil {
		t.Error("out-of-range copy should fail the engine")
	}
}

// TestDistanceOrdering verifies the paper's Fig. 1a shape: transfer time
// strictly increases cache-local < intra-NUMA < cross-NUMA < cross-socket.
func TestDistanceOrdering(t *testing.T) {
	top := topo.Epyc2P()
	const n = 1 << 20
	times := map[topo.DistanceClass]sim.Duration{}
	for _, c := range []struct {
		reader int
		class  topo.DistanceClass
	}{
		{1, topo.CacheLocal},
		{4, topo.IntraNUMA},
		{8, topo.CrossNUMA},
		{32, topo.CrossSocket},
	} {
		s := Default(top)
		src := s.NewBuffer("src", 0, n)
		dst := s.NewBuffer("dst", c.reader, n)
		reader := c.reader
		times[c.class] = run(t, s, func(p *sim.Proc) {
			s.Copy(p, reader, dst, 0, src, 0, n)
		})
	}
	// Cache-local only helps when resident; a cold 1MB copy still reads
	// from the source's home memory, so cache-local equals intra-NUMA here
	// and the cross classes must be strictly slower.
	if !(times[topo.CacheLocal] <= times[topo.IntraNUMA]) {
		t.Errorf("cache-local %v > intra-numa %v", times[topo.CacheLocal], times[topo.IntraNUMA])
	}
	if !(times[topo.IntraNUMA] < times[topo.CrossNUMA]) {
		t.Errorf("intra-numa %v >= cross-numa %v", times[topo.IntraNUMA], times[topo.CrossNUMA])
	}
	if !(times[topo.CrossNUMA] < times[topo.CrossSocket]) {
		t.Errorf("cross-numa %v >= cross-socket %v", times[topo.CrossNUMA], times[topo.CrossSocket])
	}
}

// TestCachedRereadFaster: a second read of an unmodified buffer through the
// same core is served by the cache (the osu_bcast artifact of Fig. 7).
func TestCachedRereadFaster(t *testing.T) {
	top := topo.Epyc1P()
	const n = 256 << 10 // fits the 1 MiB per-buffer LLC share
	s := Default(top)
	src := s.NewBuffer("src", 0, n) // home NUMA 0
	dst := s.NewBuffer("dst", 8, n) // reader core 8, NUMA 1
	var first, second sim.Duration
	run(t, s, func(p *sim.Proc) {
		t0 := p.Now()
		s.Copy(p, 8, dst, 0, src, 0, n)
		first = p.Now() - t0
		t1 := p.Now()
		s.Copy(p, 8, dst, 0, src, 0, n)
		second = p.Now() - t1
	})
	if second >= first {
		t.Errorf("cached re-read not faster: first %v, second %v", first, second)
	}
	if !s.Residency(src, 8) {
		t.Error("source should be LLC-resident after read")
	}
}

// TestWriteInvalidatesRemoteCaches: dirtying the source (as the modified
// osu_bcast_mb benchmark does) makes the next remote read slow again.
func TestWriteInvalidatesRemoteCaches(t *testing.T) {
	top := topo.Epyc1P()
	const n = 256 << 10
	s := Default(top)
	src := s.NewBuffer("src", 0, n)
	dst := s.NewBuffer("dst", 8, n)
	var warm, afterDirty sim.Duration
	run(t, s, func(p *sim.Proc) {
		s.Copy(p, 8, dst, 0, src, 0, n)
		t1 := p.Now()
		s.Copy(p, 8, dst, 0, src, 0, n)
		warm = p.Now() - t1
		s.MarkWritten(src, 0) // owner dirties the buffer
		t2 := p.Now()
		s.Copy(p, 8, dst, 0, src, 0, n)
		afterDirty = p.Now() - t2
	})
	if afterDirty <= warm {
		t.Errorf("dirtied read should be slow again: warm %v, after dirty %v", warm, afterDirty)
	}
}

// TestHugeBufferNotCached: buffers beyond the per-buffer cache share never
// become resident (the >1 MB regime of Fig. 7).
func TestHugeBufferNotCached(t *testing.T) {
	s := Default(topo.Epyc1P())
	src := s.NewBuffer("src", 0, 4<<20)
	dst := s.NewBuffer("dst", 8, 4<<20)
	run(t, s, func(p *sim.Proc) {
		s.Copy(p, 8, dst, 0, src, 0, 4<<20)
	})
	if s.Residency(src, 8) {
		t.Error("4 MiB buffer should not be LLC-resident")
	}
}

// TestFanInCongestion reproduces the Fig. 1b mechanism: N concurrent
// readers of one home NUMA node slow each other down roughly linearly,
// while readers of distinct NUMA-local sources do not.
func TestFanInCongestion(t *testing.T) {
	top := topo.Epyc1P()
	const n = 1 << 20

	measure := func(nprocs int, hierarchical bool) sim.Duration {
		s := Default(top)
		root := s.NewBuffer("root", 0, n)
		// Per-NUMA leader buffers for the hierarchical variant.
		leaders := make([]*Buffer, top.NNUMA)
		for i := range leaders {
			leaders[i] = s.NewBuffer(fmt.Sprintf("leader%d", i), top.NUMACores(i)[0], n)
		}
		var t0 sim.Duration
		for r := 0; r < nprocs; r++ {
			core := r
			s.Eng.Go(fmt.Sprintf("r%d", r), func(p *sim.Proc) {
				dst := s.NewBuffer("dst", core, n)
				src := root
				if hierarchical && top.NUMA(core) != 0 {
					src = leaders[top.NUMA(core)]
				}
				start := p.Now()
				s.Copy(p, core, dst, 0, src, 0, n)
				if core == 1 { // the singled-out rank, NUMA 0 as in the paper
					t0 = p.Now() - start
				}
			})
		}
		if err := s.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return t0
	}

	flat8 := measure(8, false)
	flat32 := measure(32, false)
	hier32 := measure(32, true)
	if flat32 <= flat8 {
		t.Errorf("flat fan-in should degrade: 8 ranks %v, 32 ranks %v", flat8, flat32)
	}
	if float64(flat32) < 1.5*float64(hier32) {
		t.Errorf("hierarchical should relieve congestion: flat %v vs hier %v", flat32, hier32)
	}
}

// TestMaxMinFairness: four flows over distinct home NUMA nodes run at each
// core's streaming rate; four flows hammering one home NUMA node have to
// share its memory controller and slow down.
func TestMaxMinFairness(t *testing.T) {
	top := topo.Epyc1P()
	const n = 8 << 20
	const k = 4

	elapsed := func(homes, readers [k]int) [k]sim.Duration {
		s := Default(top)
		var out [k]sim.Duration
		for i := 0; i < k; i++ {
			i := i
			src := s.NewBuffer("src", top.NUMACores(homes[i])[0], n)
			core := readers[i]
			s.Eng.Go(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
				dst := s.NewBuffer("dst", core, n)
				start := p.Now()
				s.Copy(p, core, dst, 0, src, 0, n)
				out[i] = p.Now() - start
			})
		}
		if err := s.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Disjoint: each flow reads from its own NUMA node.
	disjoint := elapsed([k]int{0, 1, 2, 3}, [k]int{1, 9, 17, 25})
	// Shared bottleneck: all four sources homed in NUMA 0.
	shared := elapsed([k]int{0, 0, 0, 0}, [k]int{1, 9, 17, 25})
	if float64(shared[0]) < 1.3*float64(disjoint[0]) {
		t.Errorf("shared bottleneck should slow flows: disjoint %v shared %v", disjoint[0], shared[0])
	}
}

// TestLineSingleWriterVsAtomics reproduces the Fig. 4 mechanism: N readers
// polling a single-writer flag line cost far less than N atomic RMWs.
func TestLineSingleWriterVsAtomics(t *testing.T) {
	top := topo.ArmN1()
	const N = 160

	s1 := Default(top)
	line := s1.NewLine(0)
	var lastRead sim.Time
	s1.Eng.Go("writer", func(p *sim.Proc) {
		line.Write(p, 0)
	})
	for r := 1; r < N; r++ {
		core := r
		s1.Eng.Go(fmt.Sprintf("r%d", r), func(p *sim.Proc) {
			line.Read(p, core)
			if p.Now() > lastRead {
				lastRead = p.Now()
			}
		})
	}
	if err := s1.Eng.Run(); err != nil {
		t.Fatal(err)
	}

	s2 := Default(top)
	line2 := s2.NewLine(0)
	var lastRMW sim.Time
	for r := 0; r < N; r++ {
		core := r
		s2.Eng.Go(fmt.Sprintf("a%d", r), func(p *sim.Proc) {
			line2.FetchAdd(p, core)
			if p.Now() > lastRMW {
				lastRMW = p.Now()
			}
		})
	}
	if err := s2.Eng.Run(); err != nil {
		t.Fatal(err)
	}

	if float64(lastRMW) < 3*float64(lastRead) {
		t.Errorf("atomics should be much slower under fan-in: reads done %v, RMWs done %v",
			sim.FmtTime(lastRead), sim.FmtTime(lastRMW))
	}
}

// TestLLCPeerAssistance: on Epyc, once one core of a CCX fetched the line,
// its three cache peers read it locally — the implicit hierarchy of Fig. 10.
func TestLLCPeerAssistance(t *testing.T) {
	top := topo.Epyc1P()
	s := Default(top)
	line := s.NewLine(0)
	costs := make([]sim.Duration, 4)
	s.Eng.Go("seq", func(p *sim.Proc) {
		line.Write(p, 0)
		for _, core := range []int{4, 5, 6, 7} { // one CCX, remote from core 0
			start := p.Now()
			line.Read(p, core)
			costs[core-4] = p.Now() - start
		}
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if costs[1] >= costs[0] || costs[2] >= costs[0] {
		t.Errorf("LLC peers should hit locally after first fetch: %v", costs)
	}
	if s.Stats.LineHits < 3 {
		t.Errorf("expected 3 line hits, stats: %+v", s.Stats)
	}
}

// TestARMNoPeerAssistance: on the SLC platform a fetch helps later readers
// less: every reader still pays the mesh round-trip (SLC), never a local
// LLC hit.
func TestARMNoPeerAssistance(t *testing.T) {
	top := topo.ArmN1()
	s := Default(top)
	line := s.NewLine(0)
	var c1, c2 sim.Duration
	s.Eng.Go("seq", func(p *sim.Proc) {
		line.Write(p, 0)
		t0 := p.Now()
		line.Read(p, 1)
		c1 = p.Now() - t0
		t1 := p.Now()
		line.Read(p, 2)
		c2 = p.Now() - t1
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Core 2 still pays a mesh fetch (no shared LLC with core 1).
	if c2 < s.Params.LineSLCTransfer {
		t.Errorf("second ARM reader should still fetch via mesh: %v then %v", c1, c2)
	}
}

// TestWaiterWake: a process polling a line via AddWaiter/Suspend is woken
// by the owner's write.
func TestWaiterWake(t *testing.T) {
	top := topo.Epyc1P()
	s := Default(top)
	line := s.NewLine(0)
	var wokenAt sim.Time
	s.Eng.Go("waiter", func(p *sim.Proc) {
		line.Read(p, 8)
		line.AddWaiter(p)
		p.Suspend("flag wait")
		line.Read(p, 8)
		wokenAt = p.Now()
	})
	s.Eng.Go("writer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		line.Write(p, 0)
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt < 10*sim.Microsecond {
		t.Errorf("waiter woke too early at %v", sim.FmtTime(wokenAt))
	}
}

func TestQueueSerializes(t *testing.T) {
	s := Default(topo.Epyc1P())
	q := NewQueue()
	var finish [3]sim.Time
	for i := 0; i < 3; i++ {
		i := i
		s.Eng.Go(fmt.Sprintf("q%d", i), func(p *sim.Proc) {
			q.Acquire(p, 100*sim.Nanosecond)
			finish[i] = p.Now()
		})
	}
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if finish[0] == finish[1] || finish[1] == finish[2] {
		t.Errorf("queued acquisitions should serialize: %v", finish)
	}
	if q.Waited() == 0 {
		t.Error("queue should have recorded waiting")
	}
}

func TestKernelCopySlowerThanUser(t *testing.T) {
	top := topo.Epyc1P()
	const n = 4 << 20
	su := Default(top)
	src1 := su.NewBuffer("s", 0, n)
	dst1 := su.NewBuffer("d", 8, n)
	user := run(t, su, func(p *sim.Proc) { su.Copy(p, 8, dst1, 0, src1, 0, n) })

	sk := Default(top)
	src2 := sk.NewBuffer("s", 0, n)
	dst2 := sk.NewBuffer("d", 8, n)
	kern := run(t, sk, func(p *sim.Proc) { sk.KernelCopy(p, 8, dst2, 0, src2, 0, n) })
	if kern <= user {
		t.Errorf("kernel copy should be slower: user %v kernel %v", user, kern)
	}
}

func TestChargeComputeAndRead(t *testing.T) {
	s := Default(topo.Epyc1P())
	src := s.NewBuffer("s", 0, 1<<20)
	d := run(t, s, func(p *sim.Proc) {
		s.ChargeRead(p, 8, src, 0, 1<<20)
		s.ChargeCompute(p, 1<<20)
	})
	if d <= 0 {
		t.Error("charges should take time")
	}
	if s.Residency(src, 8) != true {
		t.Error("ChargeRead should warm the reader cache")
	}
}

func TestZeroByteOpsFree(t *testing.T) {
	s := Default(topo.Epyc1P())
	src := s.NewBuffer("s", 0, 16)
	dst := s.NewBuffer("d", 1, 16)
	d := run(t, s, func(p *sim.Proc) {
		s.Copy(p, 1, dst, 0, src, 0, 0)
		s.ChargeRead(p, 1, src, 0, 0)
	})
	if d != 0 {
		t.Errorf("zero-byte ops should be free, took %v", d)
	}
}
