package mem

import (
	"fmt"
	"testing"

	"xhc/internal/sim"
	"xhc/internal/topo"
)

// TestReadBatchOverlapsFetches: gathering K remote lines in one batch
// costs far less than K serialized fetches, but more than one fetch.
func TestReadBatchOverlapsFetches(t *testing.T) {
	top := topo.Epyc2P()
	const K = 16

	mkLines := func(s *System) []*Line {
		lines := make([]*Line, K)
		for i := range lines {
			lines[i] = s.NewLine(8 + i) // remote homes
		}
		return lines
	}

	s1 := Default(top)
	lines1 := mkLines(s1)
	var batch sim.Duration
	s1.Eng.Go("w", func(p *sim.Proc) {
		for _, l := range lines1 {
			l.Write(p, l.Home())
		}
	})
	if err := s1.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	s1.Eng.Go("batch", func(p *sim.Proc) {
		t0 := p.Now()
		s1.ReadBatch(p, 0, lines1)
		batch = p.Now() - t0
	})
	if err := s1.Eng.Run(); err != nil {
		t.Fatal(err)
	}

	s2 := Default(top)
	lines2 := mkLines(s2)
	var serial sim.Duration
	s2.Eng.Go("w", func(p *sim.Proc) {
		for _, l := range lines2 {
			l.Write(p, l.Home())
		}
	})
	if err := s2.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	s2.Eng.Go("serial", func(p *sim.Proc) {
		t0 := p.Now()
		for _, l := range lines2 {
			l.Read(p, 0)
		}
		serial = p.Now() - t0
	})
	if err := s2.Eng.Run(); err != nil {
		t.Fatal(err)
	}

	if float64(batch) > 0.5*float64(serial) {
		t.Errorf("batch %v should be far below serial %v", batch, serial)
	}
	single := s1.Params.LineTransfer[topo.IntraNUMA]
	if batch < single {
		t.Errorf("batch %v cannot be below one fetch %v", batch, single)
	}
}

// TestReadBatchLocalHitsAreSerialButCheap: lines already held locally cost
// the serial local-hit sum.
func TestReadBatchLocalHits(t *testing.T) {
	top := topo.Epyc1P()
	s := Default(top)
	lines := make([]*Line, 8)
	for i := range lines {
		lines[i] = s.NewLine(0)
	}
	var first, second sim.Duration
	s.Eng.Go("r", func(p *sim.Proc) {
		t0 := p.Now()
		s.ReadBatch(p, 0, lines)
		first = p.Now() - t0
		t1 := p.Now()
		s.ReadBatch(p, 0, lines)
		second = p.Now() - t1
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 8*s.Params.LineLocalHit {
		t.Errorf("local batch = %v, want %v", second, 8*s.Params.LineLocalHit)
	}
	if first <= 0 {
		t.Errorf("first batch should cost something, got %v", first)
	}
}

// TestDeterministicReplay: an identical multi-process copy workload yields
// bit-identical timing on two runs (DES determinism through the memory
// model).
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		s := Default(topo.Epyc2P())
		trace := ""
		src := s.NewBuffer("src", 0, 1<<20)
		for r := 1; r < 16; r++ {
			core := r * 3 % s.Topo.NCores
			name := fmt.Sprintf("r%d", r)
			s.Eng.Go(name, func(p *sim.Proc) {
				dst := s.NewBuffer("d", core, 1<<20)
				p.Sleep(sim.Duration(core) * sim.Nanosecond)
				s.Copy(p, core, dst, 0, src, 0, 1<<20)
				trace += fmt.Sprintf("%d@%d;", core, p.Now())
			})
		}
		if err := s.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic:\n%s\n%s", a, b)
	}
}
