package mem

import (
	"fmt"
	"math"
	"sort"

	"xhc/internal/sim"
)

// resource is one shared bandwidth capacity (a memory controller, fabric
// port, link, cache port, or a core's streaming limit).
type resource struct {
	name     string
	capacity float64 // bytes/sec

	// scratch for the max-min solver
	remCap    float64
	undecided int
}

// flow is one in-flight bulk transfer crossing a set of resources.
type flow struct {
	id        int
	res       []*resource
	remaining float64 // bytes
	rate      float64 // bytes/sec
	last      sim.Time
	version   uint64 // invalidates stale completion events
	proc      *sim.Proc
	token     uint64
	done      bool
	rateCap   float64 // private per-flow cap (kernel copy engines); 0 = none
}

// transfer moves n bytes for proc p (running on core) along the given
// resources, blocking p until the flow completes under max-min fair
// sharing with all concurrent flows.
func (s *System) transfer(p *sim.Proc, res []*resource, n int, rateCap float64) {
	if n <= 0 {
		return
	}
	s.flowSeq++
	f := &flow{
		id:        s.flowSeq,
		res:       res,
		remaining: float64(n),
		last:      s.Eng.Now(),
		proc:      p,
		rateCap:   rateCap,
	}
	s.active[f] = struct{}{}
	s.Stats.FlowsStarted++
	s.Stats.BytesMoved += int64(n)
	if len(s.active) > s.Stats.MaxConcurrent {
		s.Stats.MaxConcurrent = len(s.active)
	}
	s.reschedule()
	f.token = p.NextSuspendToken()
	p.Suspend(fmt.Sprintf("flow #%d: %d bytes", f.id, n))
}

// completeFlow finishes f and wakes its process.
func (s *System) completeFlow(f *flow) {
	if f.done {
		return
	}
	f.done = true
	delete(s.active, f)
	s.reschedule()
	s.Eng.Wake(f.proc, f.token, s.Eng.Now())
}

// orderedFlows snapshots the active set sorted by flow id: map iteration
// order must never influence event ordering or floating-point summation
// order, or the simulation stops being deterministic.
func (s *System) orderedFlows() []*flow {
	out := make([]*flow, 0, len(s.active))
	for f := range s.active {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// reschedule advances all flows to now, re-solves rates, and reprograms
// completion events. Called on every flow arrival and departure.
func (s *System) reschedule() {
	now := s.Eng.Now()
	flows := s.orderedFlows()
	for _, f := range flows {
		if f.rate > 0 {
			f.remaining -= f.rate * float64(now-f.last) / float64(sim.Second)
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.last = now
	}
	s.solveRates(flows)
	for _, f := range flows {
		f.version++
		v := f.version
		var d sim.Duration
		if f.rate > 0 {
			d = sim.Duration(f.remaining / f.rate * float64(sim.Second))
		}
		if d < 1 && f.remaining > 0 {
			d = 1
		}
		ff := f
		s.Eng.At(now+d, func() {
			if ff.version == v && !ff.done {
				s.completeFlow(ff)
			}
		})
	}
}

// solveRates computes max-min fair rates: repeatedly find the most
// constrained resource, freeze the flows it bottlenecks at its fair share,
// subtract, and continue. Per-flow rate caps are modeled as an implicit
// private resource.
func (s *System) solveRates(flows []*flow) {
	if len(flows) == 0 {
		return
	}
	// Resources in first-seen order over the ordered flows: deterministic.
	var resList []*resource
	seen := map[*resource]bool{}
	for _, f := range flows {
		f.rate = -1
		for _, r := range f.res {
			if !seen[r] {
				seen[r] = true
				resList = append(resList, r)
			}
		}
	}
	for _, r := range resList {
		r.remCap = r.capacity
		r.undecided = 0
	}
	for _, f := range flows {
		for _, r := range f.res {
			r.undecided++
		}
	}
	undecided := len(flows)
	for undecided > 0 {
		// Most constrained resource (or flow cap) first.
		best := math.Inf(1)
		for _, r := range resList {
			if r.undecided > 0 {
				share := r.remCap / float64(r.undecided)
				if share < best {
					best = share
				}
			}
		}
		// A flow's private cap can be tighter than any shared resource.
		capBound := false
		for _, f := range flows {
			if f.rate < 0 && f.rateCap > 0 && f.rateCap < best {
				best = f.rateCap
				capBound = true
			}
		}
		progress := 0
		for _, f := range flows {
			if f.rate >= 0 {
				continue
			}
			freeze := false
			if f.rateCap > 0 && f.rateCap <= best {
				freeze = true
			}
			if !freeze && !capBound {
				for _, r := range f.res {
					if r.undecided > 0 && r.remCap/float64(r.undecided) <= best {
						freeze = true
						break
					}
				}
			}
			if freeze {
				rate := best
				if f.rateCap > 0 && f.rateCap < rate {
					rate = f.rateCap
				}
				f.rate = rate
				for _, r := range f.res {
					r.remCap -= rate
					if r.remCap < 0 {
						r.remCap = 0
					}
					r.undecided--
				}
				progress++
				undecided--
			}
		}
		if progress == 0 {
			// Numerical corner: freeze everything at the current bound.
			for _, f := range flows {
				if f.rate < 0 {
					f.rate = best
					for _, r := range f.res {
						r.remCap -= best
						if r.remCap < 0 {
							r.remCap = 0
						}
						r.undecided--
					}
					undecided--
				}
			}
		}
	}
}

// Copy moves n bytes from src[soff:] to dst[doff:] as performed by core,
// blocking p for the modeled duration and performing the byte copy for
// real. It updates cache residency of both buffers.
func (s *System) Copy(p *sim.Proc, core int, dst *Buffer, doff int, src *Buffer, soff, n int) {
	if n == 0 {
		return
	}
	if doff < 0 || soff < 0 || doff+n > len(dst.Data) || soff+n > len(src.Data) {
		panic(fmt.Sprintf("mem: copy out of range: dst[%d:+%d]/%d src[%d:+%d]/%d",
			doff, n, len(dst.Data), soff, n, len(src.Data)))
	}
	lat, res, cap := s.readPath(core, src)
	res = append(res, s.writeResources(core, dst, n)...)
	p.Sleep(s.Params.CopyOverhead + lat)
	s.transfer(p, res, n, cap)
	copy(dst.Data[doff:doff+n], src.Data[soff:soff+n])
	s.markRead(src, core)
	s.MarkWritten(dst, core)
}

// KernelCopy is Copy through a kernel-mediated engine (CMA/KNEM): the
// caller has already paid syscall/lock costs; the stream itself is capped
// at KernelCopyBW.
func (s *System) KernelCopy(p *sim.Proc, core int, dst *Buffer, doff int, src *Buffer, soff, n int) {
	if n == 0 {
		return
	}
	lat, res, cap := s.readPath(core, src)
	res = append(res, s.writeResources(core, dst, n)...)
	p.Sleep(lat)
	kcap := s.Params.KernelCopyBW
	if cap > 0 && cap < kcap {
		kcap = cap // the kernel's copy loop hits the same distance limits
	}
	s.transfer(p, res, n, kcap)
	copy(dst.Data[doff:doff+n], src.Data[soff:soff+n])
	s.markRead(src, core)
	s.MarkWritten(dst, core)
}

// ChargeRead accounts for core streaming n bytes of src (as a reduction
// kernel input) without copying them anywhere.
func (s *System) ChargeRead(p *sim.Proc, core int, src *Buffer, soff, n int) {
	if n == 0 {
		return
	}
	if soff < 0 || soff+n > len(src.Data) {
		panic(fmt.Sprintf("mem: read out of range: src[%d:+%d]/%d", soff, n, len(src.Data)))
	}
	lat, res, cap := s.readPath(core, src)
	p.Sleep(s.Params.CopyOverhead + lat)
	s.transfer(p, res, n, cap)
	s.markRead(src, core)
}

// ChargeCompute accounts for a streaming compute kernel over n bytes at
// the platform's reduction rate.
func (s *System) ChargeCompute(p *sim.Proc, n int) {
	p.Sleep(sim.BytesOver(int64(n), s.Params.ReduceBW))
}

// ActiveFlows returns the number of in-flight transfers (for tests).
func (s *System) ActiveFlows() int { return len(s.active) }
