package mem

import (
	"fmt"

	"xhc/internal/sim"
)

// resource is one shared bandwidth capacity (a memory controller, fabric
// port, link, cache port, or a core's streaming limit).
type resource struct {
	name     string
	capacity float64 // bytes/sec

	// scratch for the max-min solver
	remCap    float64
	undecided int
	seenGen   uint64 // generation stamp replacing a per-solve seen map
}

// maxFlowRes bounds the resources one flow can cross: read path (memory
// controller, two fabric ports, inter-socket link, core) plus write path
// (memory controller, two ports, link) is at most 9; 12 leaves slack.
const maxFlowRes = 12

// flow is one in-flight bulk transfer crossing a set of resources. Flows
// are pooled per System: completeFlow returns them for reuse so the
// steady-state hot loop does not allocate.
type flow struct {
	id        int
	res       []*resource // aliases resArr except for degenerate cases
	resArr    [maxFlowRes]*resource
	remaining float64 // bytes
	rate      float64 // bytes/sec
	last      sim.Time
	deadline  sim.Time // completion time computed at the last reschedule
	proc      *sim.Proc
	token     uint64
	done      bool
	rateCap   float64 // private per-flow cap (kernel copy engines); 0 = none
}

// transfer moves n bytes for proc p (running on core) along the given
// resources, blocking p until the flow completes under max-min fair
// sharing with all concurrent flows.
func (s *System) transfer(p *sim.Proc, res []*resource, n int, rateCap float64) {
	if n <= 0 {
		return
	}
	s.flowSeq++
	f := s.getFlow()
	f.id = s.flowSeq
	f.res = append(f.resArr[:0], res...)
	f.remaining = float64(n)
	f.rate = 0
	f.last = s.Eng.Now()
	f.deadline = 0
	f.proc = p
	f.token = 0
	f.done = false
	f.rateCap = rateCap
	// flowSeq increases monotonically, so appending keeps active id-ordered.
	s.active = append(s.active, f)
	s.Stats.FlowsStarted++
	s.Stats.BytesMoved += int64(n)
	if len(s.active) > s.Stats.MaxConcurrent {
		s.Stats.MaxConcurrent = len(s.active)
	}
	s.reschedule()
	f.token = p.NextSuspendToken()
	p.Suspend("flow")
}

// getFlow pops a pooled flow (or allocates the pool's first tenants).
func (s *System) getFlow() *flow {
	if n := len(s.flowPool); n > 0 {
		f := s.flowPool[n-1]
		s.flowPool = s.flowPool[:n-1]
		return f
	}
	return &flow{}
}

// completeFlow finishes f, wakes its process, and recycles the flow.
func (s *System) completeFlow(f *flow) {
	if f.done {
		return
	}
	f.done = true
	proc, token := f.proc, f.token
	i := flowIndex(s.active, f.id)
	copy(s.active[i:], s.active[i+1:])
	s.active[len(s.active)-1] = nil
	s.active = s.active[:len(s.active)-1]
	f.proc = nil
	f.res = nil
	s.flowPool = append(s.flowPool, f)
	s.reschedule()
	s.Eng.Wake(proc, token, s.Eng.Now())
}

// flowIndex finds the position of flow id in the id-ordered slice.
func flowIndex(flows []*flow, id int) int {
	lo, hi := 0, len(flows)
	for lo < hi {
		mid := (lo + hi) / 2
		if flows[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// reschedule advances all flows to now, re-solves rates, and re-arms the
// single completion event. Called on every flow arrival and departure.
func (s *System) reschedule() {
	now := s.Eng.Now()
	for _, f := range s.active {
		if f.rate > 0 {
			f.remaining -= f.rate * float64(now-f.last) / float64(sim.Second)
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.last = now
	}
	s.solveRates(s.active)
	earliest := sim.Time(-1)
	for _, f := range s.active {
		var d sim.Duration
		if f.rate > 0 {
			d = sim.Duration(f.remaining / f.rate * float64(sim.Second))
		}
		if d < 1 && f.remaining > 0 {
			d = 1
		}
		f.deadline = now + d
		if earliest < 0 || f.deadline < earliest {
			earliest = f.deadline
		}
	}
	if earliest >= 0 {
		s.armCompletion(earliest)
	}
}

// armCompletion schedules the single completion event at t, invalidating
// whatever was armed before. A fresh event is pushed on every reschedule —
// exactly when the old per-flow closures were pushed — so same-timestamp
// event ordering (and therefore determinism) is bit-identical to the
// previous scheme, while the heap gains one entry per reschedule instead
// of one per flow per reschedule. The version rides on the event (AtTag),
// so arming allocates nothing.
func (s *System) armCompletion(t sim.Time) {
	s.cmplVersion++
	s.Eng.AtTag(t, s.cmplVersion, s.cmplFired)
}

// completionFired is the single completion handler: a stale version means
// a reschedule re-armed since this event was pushed. A valid firing
// completes the first due flow in id order; completeFlow reschedules and
// re-arms, continuing the cascade for simultaneous completions exactly
// like the old per-flow events did.
func (s *System) completionFired(v uint64) {
	if v != s.cmplVersion {
		return
	}
	now := s.Eng.Now()
	for _, f := range s.active {
		if f.deadline <= now {
			s.completeFlow(f)
			return
		}
	}
}

// solveRates computes max-min fair rates for the active flow set through
// the shared solver (solver.go), then mirrors the solver's counters into
// Stats so existing reports keep their fields.
func (s *System) solveRates(flows []*flow) {
	s.solver.solve(flows)
	s.Stats.SolverFastPath = s.solver.FastPath
	s.Stats.SolverFallbacks = s.solver.Fallbacks
}

// Copy moves n bytes from src[soff:] to dst[doff:] as performed by core,
// blocking p for the modeled duration and performing the byte copy for
// real. It updates cache residency of both buffers.
func (s *System) Copy(p *sim.Proc, core int, dst *Buffer, doff int, src *Buffer, soff, n int) {
	if n == 0 {
		return
	}
	if doff < 0 || soff < 0 || doff+n > len(dst.Data) || soff+n > len(src.Data) {
		panic(fmt.Sprintf("mem: copy out of range: dst[%d:+%d]/%d src[%d:+%d]/%d",
			doff, n, len(dst.Data), soff, n, len(src.Data)))
	}
	var t0 sim.Time
	if s.OnFlow != nil {
		t0 = s.Eng.Now()
	}
	var rbuf [maxFlowRes]*resource
	lat, res, cap := s.readPath(core, src, rbuf[:0])
	res = s.appendWriteResources(res, core, dst, n)
	p.Sleep(s.Params.CopyOverhead + lat)
	s.transfer(p, res, n, cap)
	copy(dst.Data[doff:doff+n], src.Data[soff:soff+n])
	s.markRead(src, core)
	s.MarkWritten(dst, core)
	if s.OnFlow != nil {
		s.OnFlow(core, n, t0, s.Eng.Now())
	}
}

// KernelCopy is Copy through a kernel-mediated engine (CMA/KNEM): the
// caller has already paid syscall/lock costs; the stream itself is capped
// at KernelCopyBW.
func (s *System) KernelCopy(p *sim.Proc, core int, dst *Buffer, doff int, src *Buffer, soff, n int) {
	if n == 0 {
		return
	}
	var t0 sim.Time
	if s.OnFlow != nil {
		t0 = s.Eng.Now()
	}
	var rbuf [maxFlowRes]*resource
	lat, res, cap := s.readPath(core, src, rbuf[:0])
	res = s.appendWriteResources(res, core, dst, n)
	p.Sleep(lat)
	kcap := s.Params.KernelCopyBW
	if cap > 0 && cap < kcap {
		kcap = cap // the kernel's copy loop hits the same distance limits
	}
	s.transfer(p, res, n, kcap)
	copy(dst.Data[doff:doff+n], src.Data[soff:soff+n])
	s.markRead(src, core)
	s.MarkWritten(dst, core)
	if s.OnFlow != nil {
		s.OnFlow(core, n, t0, s.Eng.Now())
	}
}

// ChargeRead accounts for core streaming n bytes of src (as a reduction
// kernel input) without copying them anywhere.
func (s *System) ChargeRead(p *sim.Proc, core int, src *Buffer, soff, n int) {
	if n == 0 {
		return
	}
	if soff < 0 || soff+n > len(src.Data) {
		panic(fmt.Sprintf("mem: read out of range: src[%d:+%d]/%d", soff, n, len(src.Data)))
	}
	var t0 sim.Time
	if s.OnFlow != nil {
		t0 = s.Eng.Now()
	}
	var rbuf [maxFlowRes]*resource
	lat, res, cap := s.readPath(core, src, rbuf[:0])
	p.Sleep(s.Params.CopyOverhead + lat)
	s.transfer(p, res, n, cap)
	s.markRead(src, core)
	if s.OnFlow != nil {
		s.OnFlow(core, n, t0, s.Eng.Now())
	}
}

// ChargeCompute accounts for a streaming compute kernel over n bytes at
// the platform's reduction rate.
func (s *System) ChargeCompute(p *sim.Proc, n int) {
	p.Sleep(sim.BytesOver(int64(n), s.Params.ReduceBW))
}

// ActiveFlows returns the number of in-flight transfers (for tests).
func (s *System) ActiveFlows() int { return len(s.active) }
