package gxhc

import (
	"math"
	"math/rand"
	"testing"
)

// specials are the IEEE edge cases whose handling distinguishes fold
// implementations: NaN propagation, infinities, and the -0/+0 order.
var specials = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1),
	math.Copysign(0, -1), 0, 1.5, -2.25,
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
}

// fillCase populates acc/src for one property-test round. Three flavors:
// exactly-reducible small integers (what internal/verify feeds the
// differential grids — sums stay exact in any association), uniform
// random finite values, and random values salted with IEEE specials.
func fillCase(rng *rand.Rand, flavor int, acc, src []float64) {
	for i := range acc {
		switch flavor {
		case 0:
			acc[i] = float64(rng.Intn(201) - 100)
			src[i] = float64(rng.Intn(201) - 100)
		case 1:
			acc[i] = rng.NormFloat64() * 1e6
			src[i] = rng.NormFloat64() * 1e6
		default:
			if rng.Intn(3) == 0 {
				acc[i] = specials[rng.Intn(len(specials))]
			} else {
				acc[i] = rng.NormFloat64()
			}
			if rng.Intn(3) == 0 {
				src[i] = specials[rng.Intn(len(specials))]
			} else {
				src[i] = rng.NormFloat64()
			}
		}
	}
}

// TestKernelsBitIdentical property-checks that the optimized reduce
// kernels (4-way unrolled by default; 8-wide pointer walks under
// -tags gxhc_unsafe — this file compiles under both) produce bit-identical
// results to the naive one-element-at-a-time loop for every length 0..257,
// every op, across exactly-reducible integers, random finite values, and
// IEEE specials (NaN, +/-Inf, signed zeros).
func TestKernelsBitIdentical(t *testing.T) {
	type kernel struct {
		op    ReduceOp
		fast  func(acc, src []float64)
		naive func(acc, src []float64)
	}
	kernels := []kernel{
		{OpSum, vecAdd, vecAddNaive},
		{OpMin, vecMin, vecMinNaive},
		{OpMax, vecMax, vecMaxNaive},
	}
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 257; n++ {
		for flavor := 0; flavor < 3; flavor++ {
			acc := make([]float64, n)
			src := make([]float64, n+rng.Intn(3)) // src may be longer than acc
			fillCase(rng, flavor, acc, src[:n])
			for i := n; i < len(src); i++ {
				src[i] = rng.NormFloat64()
			}
			for _, k := range kernels {
				gotAcc := append([]float64(nil), acc...)
				wantAcc := append([]float64(nil), acc...)
				k.fast(gotAcc, src)
				k.naive(wantAcc, src[:n])
				for i := range wantAcc {
					if math.Float64bits(gotAcc[i]) != math.Float64bits(wantAcc[i]) {
						t.Fatalf("op=%v n=%d flavor=%d elem %d: fast %x (%v) != naive %x (%v)",
							k.op, n, flavor, i,
							math.Float64bits(gotAcc[i]), gotAcc[i],
							math.Float64bits(wantAcc[i]), wantAcc[i])
					}
				}
				// vecReduce must dispatch to the same kernel.
				gotDisp := append([]float64(nil), acc...)
				vecReduce(k.op, gotDisp, src)
				for i := range gotDisp {
					if math.Float64bits(gotDisp[i]) != math.Float64bits(gotAcc[i]) {
						t.Fatalf("op=%v n=%d: vecReduce dispatch mismatch at %d", k.op, n, i)
					}
				}
			}
		}
	}
}

// TestReduceOpCollectives runs the op-parameterized collectives end to end
// and checks them against a sequential fold with identical association
// order is not required for min/max (associative and commutative even over
// floats, NaN aside) and for sum the inputs are exactly-reducible ints.
func TestReduceOpCollectives(t *testing.T) {
	const n = 9
	const elems = 130 // exercises unrolled body + tail
	for _, op := range []ReduceOp{OpSum, OpMin, OpMax} {
		c := MustNew(n, Config{GroupSize: 3})
		rng := rand.New(rand.NewSource(7 + int64(op)))
		src := make([][]float64, n)
		dst := make([][]float64, n)
		want := make([]float64, elems)
		for r := range src {
			src[r] = make([]float64, elems)
			dst[r] = make([]float64, elems)
			for i := range src[r] {
				src[r][i] = float64(rng.Intn(201) - 100)
			}
		}
		for i := range want {
			want[i] = src[0][i]
			for r := 1; r < n; r++ {
				switch op {
				case OpSum:
					want[i] += src[r][i]
				case OpMin:
					want[i] = math.Min(want[i], src[r][i])
				case OpMax:
					want[i] = math.Max(want[i], src[r][i])
				}
			}
		}
		runAll(n, func(rank int) {
			c.AllreduceFloat64Op(rank, dst[rank], src[rank], op)
		})
		for r := range dst {
			for i := range dst[r] {
				if dst[r][i] != want[i] {
					t.Fatalf("allreduce op=%v rank=%d elem=%d: got %v want %v", op, r, i, dst[r][i], want[i])
				}
			}
		}
		// Rooted variant into root 2's dst only.
		for r := range dst {
			for i := range dst[r] {
				dst[r][i] = math.NaN()
			}
		}
		runAll(n, func(rank int) {
			c.ReduceFloat64Op(rank, dst[rank], src[rank], 2, op)
		})
		for i := range dst[2] {
			if dst[2][i] != want[i] {
				t.Fatalf("reduce op=%v elem=%d: got %v want %v", op, i, dst[2][i], want[i])
			}
		}
	}
}
