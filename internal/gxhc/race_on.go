//go:build race

package gxhc

// raceEnabled reports whether the race detector is compiled in. The
// zero-alloc pinning test skips under the detector: race instrumentation
// allocates on synchronization paths the production runtime does not, so
// the 0 allocs/op invariant only holds (and is only meaningful) without it.
const raceEnabled = true
