package gxhc

import (
	"testing"
)

// FuzzGoCommAllreduce drives the goroutine-backed allreduce with fuzzed
// communicator shapes and vector lengths, comparing against an exact
// reference sum. Contributions are small integers, so every reduction
// order yields bit-identical float64 results and the comparison can be
// exact. The seed corpus pins the awkward shapes: zero-length vectors,
// lengths that are not a multiple of the chunk, a chunk smaller than one
// element, singleton and flat communicators.
func FuzzGoCommAllreduce(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint32(64<<10), uint16(1000), uint64(1))
	f.Add(uint8(8), uint8(4), uint32(4096), uint16(0), uint64(2))   // zero-length vector
	f.Add(uint8(7), uint8(3), uint32(4096), uint16(777), uint64(3)) // 6216 B, not a chunk multiple
	f.Add(uint8(1), uint8(8), uint32(1024), uint16(5), uint64(4))   // singleton communicator
	f.Add(uint8(16), uint8(2), uint32(8), uint16(33), uint64(5))    // one element per chunk
	f.Add(uint8(12), uint8(1), uint32(3), uint16(9), uint64(6))     // chunk smaller than an element
	f.Add(uint8(9), uint8(20), uint32(0), uint16(100), uint64(7))   // flat (group >= n), default chunk

	f.Fuzz(func(t *testing.T, nSeed, gsSeed uint8, chunk uint32, countSeed uint16, seed uint64) {
		n := 1 + int(nSeed)%16
		count := int(countSeed) % 4096
		cfg := Config{
			GroupSize:  int(gsSeed) % (n + 2),
			ChunkBytes: int(chunk % (256 << 10)),
		}
		c, err := New(n, cfg)
		if err != nil {
			t.Fatalf("New(%d, %+v): %v", n, cfg, err)
		}

		src := make([][]float64, n)
		dst := make([][]float64, n)
		want := make([]float64, count)
		state := seed
		for r := 0; r < n; r++ {
			src[r] = make([]float64, count)
			dst[r] = make([]float64, count)
			for i := range src[r] {
				state = state*6364136223846793005 + 1442695040888963407
				v := float64(int(state>>33)%201 - 100)
				src[r][i] = v
				want[i] += v
			}
		}

		runAll(n, func(rank int) {
			c.AllreduceFloat64(rank, dst[rank], src[rank])
		})

		for r := 0; r < n; r++ {
			for i, got := range dst[r] {
				if got != want[i] {
					t.Fatalf("n=%d cfg=%+v count=%d: rank %d elem %d = %v, want %v",
						n, cfg, count, r, i, got, want[i])
				}
			}
		}
	})
}

// FuzzGoCommReduce is the rooted sibling of FuzzGoCommAllreduce: fuzzed
// communicator shapes, vector lengths and roots, exact small-integer sums
// checked at the root only, with non-root dst buffers asserted untouched
// (the scratch-accumulator path must never write through a user buffer).
func FuzzGoCommReduce(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint32(64<<10), uint16(1000), uint8(0), uint64(1))
	f.Add(uint8(8), uint8(4), uint32(4096), uint16(0), uint8(3), uint64(2))   // zero-length vector
	f.Add(uint8(7), uint8(3), uint32(4096), uint16(777), uint8(6), uint64(3)) // non-zero root, odd length
	f.Add(uint8(1), uint8(8), uint32(1024), uint16(5), uint8(0), uint64(4))   // singleton communicator
	f.Add(uint8(16), uint8(2), uint32(8), uint16(33), uint8(15), uint64(5))   // root = last rank
	f.Add(uint8(12), uint8(1), uint32(3), uint16(9), uint8(5), uint64(6))     // chunk smaller than an element
	f.Add(uint8(9), uint8(20), uint32(0), uint16(100), uint8(4), uint64(7))   // flat (group >= n)

	f.Fuzz(func(t *testing.T, nSeed, gsSeed uint8, chunk uint32, countSeed uint16, rootSeed uint8, seed uint64) {
		n := 1 + int(nSeed)%16
		count := int(countSeed) % 4096
		root := int(rootSeed) % n
		cfg := Config{
			GroupSize:  int(gsSeed) % (n + 2),
			ChunkBytes: int(chunk % (256 << 10)),
		}
		c, err := New(n, cfg)
		if err != nil {
			t.Fatalf("New(%d, %+v): %v", n, cfg, err)
		}

		src := make([][]float64, n)
		dst := make([][]float64, n)
		want := make([]float64, count)
		state := seed
		for r := 0; r < n; r++ {
			src[r] = make([]float64, count)
			dst[r] = make([]float64, count)
			for i := range src[r] {
				state = state*6364136223846793005 + 1442695040888963407
				v := float64(int(state>>33)%201 - 100)
				src[r][i] = v
				want[i] += v
				dst[r][i] = 12345 // sentinel for the non-root checks
			}
		}

		runAll(n, func(rank int) {
			c.ReduceFloat64(rank, dst[rank], src[rank], root)
		})

		for i, got := range dst[root] {
			if got != want[i] {
				t.Fatalf("n=%d cfg=%+v count=%d root=%d: elem %d = %v, want %v",
					n, cfg, count, root, i, got, want[i])
			}
		}
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			for i, got := range dst[r] {
				if got != 12345 {
					t.Fatalf("n=%d cfg=%+v count=%d root=%d: non-root rank %d dst written at %d (%v)",
						n, cfg, count, root, r, i, got)
				}
			}
		}
	})
}

// FuzzGoCommIallreduceOverlap drives the non-blocking request layer with
// fuzzed communicator shapes and overlap windows: every rank keeps 2-4
// Iallreduce requests in flight and consumes them through a fuzzed
// interleaving of Test polls (of a random outstanding request — completion
// consumption is legal in any order) and blocking Waits, over several
// back-to-back rounds so request pooling and recycling are exercised.
// Contributions are small integers, so every window's sum is exact.
func FuzzGoCommIallreduceOverlap(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint16(100), uint8(2), uint64(1))
	f.Add(uint8(8), uint8(4), uint16(0), uint8(0), uint64(2))   // zero-length vectors
	f.Add(uint8(1), uint8(8), uint16(5), uint8(3), uint64(3))   // singleton communicator
	f.Add(uint8(9), uint8(20), uint16(7), uint8(1), uint64(4))  // flat (group >= n)
	f.Add(uint8(16), uint8(2), uint16(1), uint8(2), uint64(5))  // one element, deep tree
	f.Add(uint8(5), uint8(3), uint16(333), uint8(0), uint64(6)) // odd shape
	f.Add(uint8(12), uint8(3), uint16(64), uint8(3), uint64(7))

	f.Fuzz(func(t *testing.T, nSeed, gsSeed uint8, countSeed uint16, kSeed uint8, seed uint64) {
		n := 1 + int(nSeed)%16
		count := int(countSeed) % 2048
		k := 2 + int(kSeed)%3 // in-flight window per rank
		const rounds = 2
		cfg := Config{GroupSize: int(gsSeed) % (n + 2)}
		c, err := New(n, cfg)
		if err != nil {
			t.Fatalf("New(%d, %+v): %v", n, cfg, err)
		}

		// Distinct buffers per (rank, slot); want[slot] is the exact sum.
		src := make([][][]float64, n)
		dst := make([][][]float64, n)
		want := make([][]float64, k)
		state := seed
		for slot := 0; slot < k; slot++ {
			want[slot] = make([]float64, count)
		}
		for r := 0; r < n; r++ {
			src[r] = make([][]float64, k)
			dst[r] = make([][]float64, k)
			for slot := 0; slot < k; slot++ {
				src[r][slot] = make([]float64, count)
				dst[r][slot] = make([]float64, count)
				for i := range src[r][slot] {
					state = state*6364136223846793005 + 1442695040888963407
					v := float64(int(state>>33)%201 - 100)
					src[r][slot][i] = v
					want[slot][i] += v
				}
			}
		}

		for round := 0; round < rounds; round++ {
			runAll(n, func(rank int) {
				rs := make([]*Request, 0, k)
				for slot := 0; slot < k; slot++ {
					rs = append(rs, c.Iallreduce(rank, dst[rank][slot], src[rank][slot], OpSum))
				}
				// Consume the window through a per-rank fuzzed mix of Test
				// polls and Waits, in fuzzed order across the outstanding
				// requests; the bounded poll budget keeps a lost completion
				// from spinning forever (the trailing Wait would hang and the
				// test binary's own deadline converts that into a failure).
				lcg := seed ^ uint64(rank)<<32 ^ uint64(round)<<16
				outstanding := k
				for polls := 0; outstanding > 0 && polls < 64; polls++ {
					lcg = lcg*6364136223846793005 + 1442695040888963407
					pick := int(lcg>>33) % k
					if rs[pick] == nil {
						continue
					}
					lcg = lcg*6364136223846793005 + 1442695040888963407
					if lcg>>63 == 0 {
						if rs[pick].Test() {
							rs[pick] = nil
							outstanding--
						}
					} else {
						rs[pick].Wait()
						rs[pick] = nil
						outstanding--
					}
				}
				for _, r := range rs {
					if r != nil {
						r.Wait()
					}
				}
			})
			for r := 0; r < n; r++ {
				for slot := 0; slot < k; slot++ {
					for i, got := range dst[r][slot] {
						if got != want[slot][i] {
							t.Fatalf("n=%d cfg=%+v count=%d k=%d round=%d: rank %d slot %d elem %d = %v, want %v",
								n, cfg, count, k, round, r, slot, i, got, want[slot][i])
						}
					}
				}
			}
		}
	})
}

// FuzzGoCommAllgather drives the goroutine-backed allgather with fuzzed
// communicator shapes and block lengths over several back-to-back
// operations, so the exit-barrier recycling discipline is exercised along
// with the block placement. The seed corpus pins zero-length blocks,
// singleton and flat communicators, and single-byte blocks.
func FuzzGoCommAllgather(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint16(100), uint8(2), uint64(1))
	f.Add(uint8(8), uint8(4), uint16(0), uint8(3), uint64(2))  // zero-length blocks
	f.Add(uint8(1), uint8(8), uint16(5), uint8(1), uint64(3))  // singleton communicator
	f.Add(uint8(9), uint8(20), uint16(7), uint8(2), uint64(4)) // flat (group >= n)
	f.Add(uint8(16), uint8(2), uint16(1), uint8(4), uint64(5)) // single-byte blocks
	f.Add(uint8(5), uint8(3), uint16(333), uint8(1), uint64(6))

	f.Fuzz(func(t *testing.T, nSeed, gsSeed uint8, blockSeed uint16, opsSeed uint8, seed uint64) {
		n := 1 + int(nSeed)%16
		blockLen := int(blockSeed) % 2048
		ops := 1 + int(opsSeed)%4
		cfg := Config{GroupSize: int(gsSeed) % (n + 2)}
		c, err := New(n, cfg)
		if err != nil {
			t.Fatalf("New(%d, %+v): %v", n, cfg, err)
		}

		in := make([][]byte, n)
		out := make([][]byte, n)
		for r := 0; r < n; r++ {
			in[r] = make([]byte, blockLen)
			out[r] = make([]byte, blockLen*n)
		}
		state := seed
		for op := 0; op < ops; op++ {
			want := make([]byte, blockLen*n)
			for r := 0; r < n; r++ {
				for i := range in[r] {
					state = state*6364136223846793005 + 1442695040888963407
					in[r][i] = byte(state >> 56)
					want[r*blockLen+i] = in[r][i]
				}
				for i := range out[r] {
					out[r][i] = 0xee // junk: every byte must be overwritten
				}
			}
			runAll(n, func(rank int) {
				c.Allgather(rank, in[rank], out[rank])
			})
			for r := 0; r < n; r++ {
				for i := range out[r] {
					if out[r][i] != want[i] {
						t.Fatalf("n=%d cfg=%+v block=%d op=%d: rank %d byte %d = %#x, want %#x",
							n, cfg, blockLen, op, r, i, out[r][i], want[i])
					}
				}
			}
		}
	})
}
