package gxhc

import (
	"testing"
)

// FuzzGoCommAllreduce drives the goroutine-backed allreduce with fuzzed
// communicator shapes and vector lengths, comparing against an exact
// reference sum. Contributions are small integers, so every reduction
// order yields bit-identical float64 results and the comparison can be
// exact. The seed corpus pins the awkward shapes: zero-length vectors,
// lengths that are not a multiple of the chunk, a chunk smaller than one
// element, singleton and flat communicators.
func FuzzGoCommAllreduce(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint32(64<<10), uint16(1000), uint64(1))
	f.Add(uint8(8), uint8(4), uint32(4096), uint16(0), uint64(2))   // zero-length vector
	f.Add(uint8(7), uint8(3), uint32(4096), uint16(777), uint64(3)) // 6216 B, not a chunk multiple
	f.Add(uint8(1), uint8(8), uint32(1024), uint16(5), uint64(4))   // singleton communicator
	f.Add(uint8(16), uint8(2), uint32(8), uint16(33), uint64(5))    // one element per chunk
	f.Add(uint8(12), uint8(1), uint32(3), uint16(9), uint64(6))     // chunk smaller than an element
	f.Add(uint8(9), uint8(20), uint32(0), uint16(100), uint64(7))   // flat (group >= n), default chunk

	f.Fuzz(func(t *testing.T, nSeed, gsSeed uint8, chunk uint32, countSeed uint16, seed uint64) {
		n := 1 + int(nSeed)%16
		count := int(countSeed) % 4096
		cfg := Config{
			GroupSize:  int(gsSeed) % (n + 2),
			ChunkBytes: int(chunk % (256 << 10)),
		}
		c, err := New(n, cfg)
		if err != nil {
			t.Fatalf("New(%d, %+v): %v", n, cfg, err)
		}

		src := make([][]float64, n)
		dst := make([][]float64, n)
		want := make([]float64, count)
		state := seed
		for r := 0; r < n; r++ {
			src[r] = make([]float64, count)
			dst[r] = make([]float64, count)
			for i := range src[r] {
				state = state*6364136223846793005 + 1442695040888963407
				v := float64(int(state>>33)%201 - 100)
				src[r][i] = v
				want[i] += v
			}
		}

		runAll(n, func(rank int) {
			c.AllreduceFloat64(rank, dst[rank], src[rank])
		})

		for r := 0; r < n; r++ {
			for i, got := range dst[r] {
				if got != want[i] {
					t.Fatalf("n=%d cfg=%+v count=%d: rank %d elem %d = %v, want %v",
						n, cfg, count, r, i, got, want[i])
				}
			}
		}
	})
}
