package gxhc

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"unsafe"
)

// TestGxhcSteadyStateZeroAllocs pins the steady-state op path at 0
// allocs/op for all six collectives: once buffers, scratch accumulators,
// waiter lists and scheduler caches are warm, a collective allocates
// nothing — the same pinning methodology as the simulator's zero-alloc
// gate, measured over real goroutines via BenchSpec.SteadyStateAllocs.
func TestGxhcSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on sync paths; 0 allocs/op only holds without it")
	}
	for _, coll := range BenchCollectives() {
		coll := coll
		t.Run(coll, func(t *testing.T) {
			spec := BenchSpec{
				Ranks: 8, Cfg: DefaultConfig(), Coll: coll,
				Warmup: 30, Iters: 50, Dirty: true, Root: 0,
			}
			got, err := spec.SteadyStateAllocs(4096)
			if err != nil {
				t.Fatal(err)
			}
			if got != 0 {
				t.Fatalf("%s: %v allocs/op on the steady-state path, want 0", coll, got)
			}
		})
	}
}

// TestIcollectiveSteadyStateZeroAllocs pins the non-blocking overlap
// window at 0 allocs/op: one op issues overlapDepth Ibcasts and waits the
// window out, so the pin covers the pooled request objects, the issue
// queue, the worker's batch scratch and (for the fused cell) the fused
// staging path. Measured with fusion off and on.
func TestIcollectiveSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on sync paths; 0 allocs/op only holds without it")
	}
	for _, coll := range OverlapCollectives() {
		coll := coll
		t.Run(coll, func(t *testing.T) {
			spec := BenchSpec{
				Ranks: 8, Cfg: DefaultConfig(), Coll: coll,
				Warmup: 30, Iters: 50, Dirty: true, Root: 0,
			}
			got, err := spec.SteadyStateAllocs(512)
			if err != nil {
				t.Fatal(err)
			}
			if got != 0 {
				t.Fatalf("%s: %v allocs/op on the steady-state path, want 0", coll, got)
			}
		})
	}
}

// TestScratchMixedSizeZeroAllocs is the regression test for the grow-only
// scratch: a rooted reduce cycling through mixed sizes must stop
// allocating once the largest size has been seen — the accumulator is
// reused by capacity, not reallocated on every len() change (the old code
// compared len and reallocated whenever a larger op followed a smaller
// one).
func TestScratchMixedSizeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on sync paths; 0 allocs/op only holds without it")
	}
	const ranks = 8
	const root = 0
	sizes := []int{1024, 16, 512, 1, 1024, 8, 257, 1024}
	c := MustNew(ranks, Config{GroupSize: 4})
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	src := make([][]float64, ranks)
	dst := make([][]float64, ranks)
	for r := range src {
		src[r] = make([]float64, maxN)
		dst[r] = make([]float64, maxN)
		for i := range src[r] {
			src[r][i] = float64(r + i)
		}
	}

	// Long-lived workers (goroutine creation allocates, so it must stay
	// outside the measured window): warmup cycles grow every scratch slot
	// to max capacity, then a gated window of mixed-size cycles must not
	// allocate at all. GC is collected once up front and then disabled for
	// the measurement — a GC purges the scheduler's sudog caches, and the
	// parks right after one would charge cache refills to the window.
	const reps = 10
	measure := func() float64 {
		prevGC := debug.SetGCPercent(-1)
		runtime.GC()
		defer debug.SetGCPercent(prevGC)
		var wgWarm, wgMeas, wgDone sync.WaitGroup
		wgWarm.Add(ranks)
		wgMeas.Add(ranks)
		wgDone.Add(ranks)
		startMeas := make(chan struct{})
		finish := make(chan struct{})
		for r := 0; r < ranks; r++ {
			go func(rank int) {
				for it := 0; it < 3; it++ {
					for _, n := range sizes {
						c.ReduceFloat64(rank, dst[rank][:n], src[rank][:n], root)
					}
				}
				c.Barrier(rank)
				wgWarm.Done()
				<-startMeas
				for it := 0; it < reps; it++ {
					for _, n := range sizes {
						c.ReduceFloat64(rank, dst[rank][:n], src[rank][:n], root)
					}
				}
				c.Barrier(rank)
				wgMeas.Done()
				<-finish
				wgDone.Done()
			}(r)
		}
		wgWarm.Wait()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		close(startMeas)
		wgMeas.Wait()
		runtime.ReadMemStats(&m1)
		close(finish)
		wgDone.Wait()
		return float64(m1.Mallocs-m0.Mallocs) / float64(reps*len(sizes)*ranks)
	}
	best := -1.0
	for attempt := 0; attempt < 3 && best != 0; attempt++ {
		if got := measure(); best < 0 || got < best {
			best = got
		}
	}
	if best != 0 {
		t.Fatalf("mixed-size rooted reduce: %v allocs/op after warmup, want 0", best)
	}
	// The reuse must not have cost correctness: one checked op per size.
	for _, n := range sizes {
		want := make([]float64, n)
		for i := range want {
			for r := 0; r < ranks; r++ {
				want[i] += float64(r + i)
			}
		}
		runAll(ranks, func(rank int) {
			c.ReduceFloat64(rank, dst[rank][:n], src[rank][:n], root)
		})
		for i := range want {
			if dst[root][i] != want[i] {
				t.Fatalf("n=%d elem %d: got %v want %v", n, i, dst[root][i], want[i])
			}
		}
	}
}

// TestFlagLineLayout asserts the padding invariants the waiter design
// depends on: the hot half (counter + parked indicator) fills exactly one
// cache line, the cold parking half starts on the next, and every
// per-writer record is line-sized so dense arrays never false-share.
func TestFlagLineLayout(t *testing.T) {
	if got := unsafe.Sizeof(flagLine{}); got != 2*cacheLine {
		t.Errorf("sizeof(flagLine) = %d, want %d", got, 2*cacheLine)
	}
	if got := unsafe.Offsetof(flagLine{}.cold); got != cacheLine {
		t.Errorf("offsetof(flagLine.cold) = %d, want %d (hot half must fill one line)", got, cacheLine)
	}
	if got := unsafe.Sizeof(flagCold{}); got != cacheLine {
		t.Errorf("sizeof(flagCold) = %d, want %d", got, cacheLine)
	}
	if got := unsafe.Sizeof(contribSlot{}); got != cacheLine {
		t.Errorf("sizeof(contribSlot) = %d, want %d", got, cacheLine)
	}
	if got := unsafe.Sizeof(viewSlot{}); got%cacheLine != 0 {
		t.Errorf("sizeof(viewSlot) = %d, want a multiple of %d", got, cacheLine)
	}
	if got := unsafe.Sizeof(agSlot{}); got%cacheLine != 0 {
		t.Errorf("sizeof(agSlot) = %d, want a multiple of %d", got, cacheLine)
	}
	if got := unsafe.Offsetof(groupCtl{}.ready); got%cacheLine != 0 {
		t.Errorf("offsetof(groupCtl.ready) = %d, want a multiple of %d", got, cacheLine)
	}
}
