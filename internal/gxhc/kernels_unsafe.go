//go:build gxhc_unsafe

package gxhc

import (
	"math"
	"unsafe"
)

// Unsafe reduce kernels (build tag gxhc_unsafe): 8-wide pointer walks with
// no bounds checks at all. Arithmetic is identical to the safe kernels —
// float64 adds and math.Min/math.Max folds — so results stay bit-identical
// (kernels_test.go checks this under both tags). The unsafe part is only
// the addressing: callers guarantee len(src) >= len(acc), exactly as the
// safe variants' `src[:len(acc)]` reslice does.

const f64size = unsafe.Sizeof(float64(0))

func vecAdd(acc, src []float64) {
	n := len(acc)
	if n == 0 {
		return
	}
	ap := unsafe.Pointer(&acc[0])
	sp := unsafe.Pointer(&src[0])
	i := 0
	for ; i+7 < n; i += 8 {
		a := (*[8]float64)(unsafe.Add(ap, uintptr(i)*f64size))
		s := (*[8]float64)(unsafe.Add(sp, uintptr(i)*f64size))
		a[0] += s[0]
		a[1] += s[1]
		a[2] += s[2]
		a[3] += s[3]
		a[4] += s[4]
		a[5] += s[5]
		a[6] += s[6]
		a[7] += s[7]
	}
	for ; i < n; i++ {
		*(*float64)(unsafe.Add(ap, uintptr(i)*f64size)) += *(*float64)(unsafe.Add(sp, uintptr(i)*f64size))
	}
}

func vecMin(acc, src []float64) {
	n := len(acc)
	if n == 0 {
		return
	}
	ap := unsafe.Pointer(&acc[0])
	sp := unsafe.Pointer(&src[0])
	i := 0
	for ; i+7 < n; i += 8 {
		a := (*[8]float64)(unsafe.Add(ap, uintptr(i)*f64size))
		s := (*[8]float64)(unsafe.Add(sp, uintptr(i)*f64size))
		a[0] = math.Min(a[0], s[0])
		a[1] = math.Min(a[1], s[1])
		a[2] = math.Min(a[2], s[2])
		a[3] = math.Min(a[3], s[3])
		a[4] = math.Min(a[4], s[4])
		a[5] = math.Min(a[5], s[5])
		a[6] = math.Min(a[6], s[6])
		a[7] = math.Min(a[7], s[7])
	}
	for ; i < n; i++ {
		a := (*float64)(unsafe.Add(ap, uintptr(i)*f64size))
		s := (*float64)(unsafe.Add(sp, uintptr(i)*f64size))
		*a = math.Min(*a, *s)
	}
}

func vecMax(acc, src []float64) {
	n := len(acc)
	if n == 0 {
		return
	}
	ap := unsafe.Pointer(&acc[0])
	sp := unsafe.Pointer(&src[0])
	i := 0
	for ; i+7 < n; i += 8 {
		a := (*[8]float64)(unsafe.Add(ap, uintptr(i)*f64size))
		s := (*[8]float64)(unsafe.Add(sp, uintptr(i)*f64size))
		a[0] = math.Max(a[0], s[0])
		a[1] = math.Max(a[1], s[1])
		a[2] = math.Max(a[2], s[2])
		a[3] = math.Max(a[3], s[3])
		a[4] = math.Max(a[4], s[4])
		a[5] = math.Max(a[5], s[5])
		a[6] = math.Max(a[6], s[6])
		a[7] = math.Max(a[7], s[7])
	}
	for ; i < n; i++ {
		a := (*float64)(unsafe.Add(ap, uintptr(i)*f64size))
		s := (*float64)(unsafe.Add(sp, uintptr(i)*f64size))
		*a = math.Max(*a, *s)
	}
}
