package gxhc

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"xhc/internal/obs"
)

// Non-blocking collectives (DESIGN.md §15). Ibcast/Iallreduce/Ireduce/
// Ibarrier/Iallgather/Iscatter return a *Request immediately; the op runs
// on the rank's dedicated worker goroutine (started lazily on the first
// issue, one per rank so per-rank op order is preserved), and the caller
// polls with Test or blocks with Wait. Blocking collectives called while
// the rank has requests in flight are ordered behind them through the same
// queue (the pending gate in the public wrappers), so MPI's "the i-th call
// on a communicator matches the i-th call everywhere" discipline holds
// across mixed blocking/non-blocking programs.
//
// Small same-shape Ibcasts (payload <= Config.FuseBytes) are fusable: the
// worker drains consecutive matching requests from its queue and runs them
// as one hierarchy traversal (fusedBcast). Batch boundaries are allowed to
// be ragged across ranks — the protocol tolerates a leader that batched
// [1..2],[3..4] against a member that batched [1..4] — because shape
// changes break batches at the same op index everywhere (op-order
// uniformity), so every op inside an overlapping window shares one (root,
// n) and the groupCtl.fuseFirst offset arithmetic stays valid.

const (
	// nbQueueCap bounds a rank's in-flight request queue; issue blocks
	// (applying backpressure, not deadlock — the worker drains
	// independently) when the queue is full.
	nbQueueCap = 64
	// maxFuseBatch caps how many fusable broadcasts one traversal carries.
	maxFuseBatch = 8
	// defaultFuseBytes is the fusion threshold when Config.FuseBytes is 0 —
	// the CICO/XPMEM size-class boundary (a payload this small is latency-
	// bound, so amortizing the flag round-trips across a batch is the win).
	defaultFuseBytes = 1 << 10
)

type reqKind uint8

const (
	reqBcast reqKind = iota
	reqAllreduce
	reqReduce
	reqBarrier
	reqAllgather
	reqScatter
)

// Request is one in-flight non-blocking collective. Requests are pooled
// per rank (freelist in nbRank), so the steady-state issue/complete path
// allocates nothing. After Wait returns or Test reports true the request
// is invalid (recycled) — the MPI_REQUEST_NULL discipline.
type Request struct {
	c    *Comm
	rank int
	kind reqKind
	// fuse marks a fusable small broadcast (set only by Ibcast).
	fuse bool
	root int
	op   ReduceOp
	buf  []byte // bcast buf / allgather in / scatter in
	buf2 []byte // allgather out / scatter out
	fdst []float64
	fsrc []float64

	issued   int64 // issue timestamp (instrumented runs only)
	svcStart int64 // worker pop timestamp (service start)
	bytes    int64

	// done is the completion flag (worker publishes, caller polls); parked
	// tells the worker a waiter may be blocked on ch (Dekker handshake,
	// same shape as flagLine's). ch is the one-token wake channel.
	done   atomic.Uint32
	parked atomic.Uint32
	ch     chan struct{}
	next   *Request // freelist link
}

// nbRank is one rank's non-blocking lane. q and pending are shared with
// the worker; started and free are touched only by the rank's own
// application goroutine (the same single-caller discipline every gxhc
// rank-indexed API already requires).
type nbRank struct {
	q       chan *Request
	started bool
	free    *Request
	// pending counts the rank's issued-but-incomplete requests; the public
	// blocking wrappers divert through the queue while it is non-zero.
	pending atomic.Int64
	// seq numbers completed requests (worker-only) for per-request spans.
	seq uint64
	_   [cacheLine]byte
}

// getReq pops a pooled request (or allocates the lane's first few),
// resetting completion state and draining any stale wake token left by a
// previous life's worker.
func (c *Comm) getReq(rank int) *Request {
	w := &c.nb[rank]
	r := w.free
	if r == nil {
		return &Request{c: c, rank: rank, ch: make(chan struct{}, 1)}
	}
	w.free = r.next
	r.next = nil
	r.done.Store(0)
	r.parked.Store(0)
	select {
	case <-r.ch:
	default:
	}
	return r
}

// release recycles a completed request: buffer references are cleared so
// the pool never pins user memory, and the object returns to its rank's
// freelist. Called only from the rank's application goroutine.
func (r *Request) release() {
	r.buf, r.buf2, r.fdst, r.fsrc = nil, nil, nil, nil
	r.fuse = false
	r.bytes = 0
	w := &r.c.nb[r.rank]
	r.next = w.free
	w.free = r
}

// issue enqueues r on its rank's worker, starting the worker on first use.
func (c *Comm) issue(r *Request) *Request {
	w := &c.nb[r.rank]
	w.pending.Add(1)
	cur := c.inflight.Add(1)
	if c.rec != nil {
		c.rec.NoteInflight(cur)
	}
	if c.clk != nil {
		r.issued = c.clk()
	}
	if !w.started {
		w.started = true
		go c.nbWorker(r.rank)
	}
	w.q <- r
	return r
}

// issueBlocking routes a blocking collective through the request queue
// (because the rank has non-blocking requests in flight) and waits inline.
// The request is never fusable: the matching calls on other ranks are
// blocking too and run the blocking body directly.
func (c *Comm) issueBlocking(rank int, kind reqKind, buf, buf2 []byte, fdst, fsrc []float64, root int, op ReduceOp) {
	r := c.getReq(rank)
	r.kind, r.buf, r.buf2, r.fdst, r.fsrc, r.root, r.op = kind, buf, buf2, fdst, fsrc, root, op
	c.issue(r).Wait()
}

// Ibcast starts a non-blocking broadcast of root's buf into every
// participant's buf and returns its handle. Small broadcasts (len(buf) <=
// Config.FuseBytes) are fusable.
func (c *Comm) Ibcast(rank int, buf []byte, root int) *Request {
	r := c.getReq(rank)
	r.kind, r.buf, r.root = reqBcast, buf, root
	n := len(buf)
	r.bytes = int64(n)
	r.fuse = n > 0 && n <= c.fuseMax
	return c.issue(r)
}

// Iallreduce starts a non-blocking element-wise reduction of src across
// all participants into every participant's dst.
func (c *Comm) Iallreduce(rank int, dst, src []float64, op ReduceOp) *Request {
	if len(dst) != len(src) {
		panic("gxhc: dst/src length mismatch")
	}
	r := c.getReq(rank)
	r.kind, r.fdst, r.fsrc, r.root, r.op = reqAllreduce, dst, src, 0, op
	r.bytes = int64(len(src)) * 8
	return c.issue(r)
}

// Ireduce starts a non-blocking rooted reduction (result in root's dst).
func (c *Comm) Ireduce(rank int, dst, src []float64, root int, op ReduceOp) *Request {
	r := c.getReq(rank)
	r.kind, r.fdst, r.fsrc, r.root, r.op = reqReduce, dst, src, root, op
	r.bytes = int64(len(src)) * 8
	return c.issue(r)
}

// Ibarrier starts a non-blocking barrier.
func (c *Comm) Ibarrier(rank int) *Request {
	r := c.getReq(rank)
	r.kind = reqBarrier
	return c.issue(r)
}

// Iallgather starts a non-blocking allgather of each rank's in block into
// every rank's out buffer.
func (c *Comm) Iallgather(rank int, in, out []byte) *Request {
	r := c.getReq(rank)
	r.kind, r.buf, r.buf2 = reqAllgather, in, out
	r.bytes = int64(len(in))
	return c.issue(r)
}

// Iscatter starts a non-blocking scatter of root's in blocks into each
// rank's out.
func (c *Comm) Iscatter(rank int, in, out []byte, root int) *Request {
	r := c.getReq(rank)
	r.kind, r.buf, r.buf2, r.root = reqScatter, in, out, root
	r.bytes = int64(len(out))
	return c.issue(r)
}

// Done reports completion without consuming the request — Test or Wait
// must still retire it. It exists for ordering assertions over a window
// of outstanding requests (per-rank completion is FIFO, so a later
// request observed done implies every earlier one is).
func (r *Request) Done() bool { return r.done.Load() != 0 }

// Test reports whether the request has completed, yielding the processor
// once so a Test loop cooperatively progresses the worker even on a
// saturated machine. On true the request is recycled and must not be
// touched again.
func (r *Request) Test() bool {
	if r.done.Load() == 0 {
		runtime.Gosched()
		if r.done.Load() == 0 {
			return false
		}
	}
	r.release()
	return true
}

// Wait blocks until the request completes, then recycles it. The wait is
// the flagLine Dekker shape: publish parked, re-check done, block on the
// one-token channel — looping, because a recycled request's previous
// worker may deliver one stale token after reuse.
func (r *Request) Wait() {
	for r.done.Load() == 0 {
		select {
		case <-r.ch: // drain a stale token before (re-)registering
		default:
		}
		r.parked.Store(1)
		if r.done.Load() != 0 {
			break
		}
		<-r.ch
	}
	r.release()
}

// Waitall waits on every non-nil request.
func Waitall(rs ...*Request) {
	for _, r := range rs {
		if r != nil {
			r.Wait()
		}
	}
}

// InFlight returns the number of issued-but-incomplete non-blocking
// requests across all ranks.
func (c *Comm) InFlight() int64 { return c.inflight.Load() }

// Close shuts down the rank worker goroutines. Call it only after every
// participant has quiesced (all requests waited, participant goroutines
// joined); a communicator that never issued a request needs no Close.
func (c *Comm) Close() {
	for r := range c.nb {
		if c.nb[r].started {
			c.nb[r].q <- nil
		}
	}
}

// Split creates an independent communicator over len(ranks) participants,
// inheriting c's configuration. gxhc communicators are self-contained
// (private flag arrays, no shared memory system), so the split only
// validates that ranks names a duplicate-free subset of c's ranks; the
// child's participants are renumbered 0..len(ranks)-1 in ranks order, and
// collectives on parent and child run concurrently as ordinary goroutines.
func (c *Comm) Split(ranks []int) (*Comm, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("gxhc: split needs at least one rank")
	}
	seen := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		if r < 0 || r >= c.n {
			return nil, fmt.Errorf("gxhc: split rank %d out of range [0,%d)", r, c.n)
		}
		if seen[r] {
			return nil, fmt.Errorf("gxhc: split rank %d duplicated", r)
		}
		seen[r] = true
	}
	return New(len(ranks), c.cfg)
}

// nbWorker is rank's request loop: pop, batch consecutive fusable
// broadcasts of the same shape, execute, publish completion. A nil request
// is the Close sentinel.
func (c *Comm) nbWorker(rank int) {
	w := &c.nb[rank]
	var batch [maxFuseBatch]*Request
	var carry *Request
	for {
		var r *Request
		if carry != nil {
			r, carry = carry, nil
		} else {
			r = <-w.q
		}
		if r == nil {
			return
		}
		if c.clk != nil {
			r.svcStart = c.clk()
		}
		if !r.fuse {
			if c.cfg.Chaos == nil || !c.cfg.Chaos.EarlyComplete {
				c.execReq(r)
			}
			c.completeReq(r)
			continue
		}
		batch[0] = r
		k := 1
		stop := false
	drain:
		for k < maxFuseBatch {
			select {
			case nx := <-w.q:
				if nx == nil {
					stop = true
					break drain
				}
				if nx.fuse && nx.root == r.root && len(nx.buf) == len(r.buf) {
					nx.svcStart = r.svcStart
					batch[k] = nx
					k++
				} else {
					// A fusable request with a mismatched shape breaks the
					// batch: a ragged fuse abort (counted per op on rank 0,
					// the Ops convention).
					if nx.fuse && c.rec != nil && rank == 0 {
						c.rec.CountFuseAbort()
					}
					carry = nx
					break drain
				}
			default:
				break drain
			}
		}
		c.fusedBcast(rank, batch[:k])
		for i := 0; i < k; i++ {
			batch[i] = nil
		}
		if stop {
			return
		}
	}
}

// execReq dispatches one queued request to its blocking body.
func (c *Comm) execReq(r *Request) {
	switch r.kind {
	case reqBcast:
		c.bcast(r.rank, r.buf, r.root)
	case reqAllreduce:
		c.reduceFloat64(r.rank, r.fdst, r.fsrc, 0, true, r.op)
	case reqReduce:
		c.reduceFloat64(r.rank, r.fdst, r.fsrc, r.root, false, r.op)
	case reqBarrier:
		c.barrier(r.rank)
	case reqAllgather:
		c.allgather(r.rank, r.buf, r.buf2)
	case reqScatter:
		c.scatter(r.rank, r.buf, r.buf2, r.root)
	}
}

// completeReq publishes a request's completion: per-request span, done
// flag, parked-waiter wake (Dekker re-check), pending/inflight retire —
// in that order, so pending reaching zero proves the worker is idle and
// the view counters are safe for an inline blocking call.
func (c *Comm) completeReq(r *Request) {
	if c.cfg.Chaos != nil && c.cfg.Chaos.LostProgress {
		// Mutation: the op ran but its completion is dropped — Test never
		// reports done and Wait blocks forever.
		return
	}
	w := &c.nb[r.rank]
	w.seq++
	if c.rec != nil {
		end := c.clk()
		q := r.svcStart - r.issued
		if q < 0 || r.svcStart == 0 {
			q = 0
		}
		rec := obs.FlightRecord{
			Seq: w.seq, Start: r.issued, End: end, Bytes: r.bytes,
			Lane: int32(r.rank), Op: obs.OpRequest,
		}
		rec.Phase[obs.PhaseQueueWait] = q
		c.rec.RecordRequest(rec)
		if c.trace != nil {
			if q > 0 {
				c.trace.Record(r.rank, -1, obs.PhaseQueueWait, "request", w.seq, r.issued, r.issued+q, r.bytes)
			}
			c.trace.Record(r.rank, -1, obs.PhaseCollective, "request", w.seq, r.issued, end, r.bytes)
		}
	}
	r.done.Store(1)
	if r.parked.Load() != 0 {
		select {
		case r.ch <- struct{}{}:
		default:
		}
	}
	w.pending.Add(-1)
	c.inflight.Add(-1)
}

// fusedBcast runs a batch of same-shape small broadcasts as one hierarchy
// traversal. Leaders stage the batch contiguously ((q-first)*n per sub-op
// q) in their grow-only c.fuse slot and publish staging+fuseFirst through
// expSeq (set to the batch's last sub-op seq); members consume sub-ops as
// expSeq advances, re-staging and republishing downward if they lead, and
// ack incrementally per round — required for ragged batches: a leader that
// batched [1..2] must unfreeze on ack 2 while its member is still inside
// its own [1..4] batch. A leader's staging is frozen until every member
// acks the batch's last sub-op (the trailing ack wait), and each rank
// advances its cum mirrors by k*n so the counters stay exchangeable with
// the blocking ops around the batch.
func (c *Comm) fusedBcast(rank int, batch []*Request) {
	if c.cfg.Chaos != nil && c.cfg.Chaos.EarlyComplete {
		for _, r := range batch {
			c.completeReq(r)
		}
		return
	}
	root := batch[0].root
	n := len(batch[0].buf)
	k := len(batch)
	st, err := c.stateFor(root)
	if err != nil {
		panic(err)
	}
	v := &c.views[rank]
	first := v.opSeq + 1
	v.opSeq += uint64(k)
	last := v.opSeq
	v.lastBytes = n
	p := &st.plans[rank]
	kn := uint64(k) * uint64(n)
	if rank == 0 && c.rec != nil {
		c.rec.CountFusedBatch(k, int64(k)*int64(n))
	}
	wc := c.newWallClock(rank, obs.OpBcast, last, int64(k*n), st.h.NLevels())

	// Leaders stage; plain leaf members copy straight into request bufs.
	var stg []byte
	if len(p.lead) > 0 {
		stg = c.fuse[rank]
		if cap(stg) < k*n {
			sz := 1
			for sz < k*n {
				sz <<= 1
			}
			stg = make([]byte, sz)
			c.fuse[rank] = stg
		}
		stg = stg[:cap(stg)]
	}

	if rank == root {
		for i, r := range batch {
			copy(stg[i*n:(i+1)*n], r.buf)
		}
		if c.cfg.Chaos != nil && c.cfg.Chaos.FuseCorrupt && n >= 2 {
			// Mutation: rotate each staged sub-op payload left one byte —
			// a corrupted sub-op boundary, deterministic at any batch size.
			for i := 0; i < k; i++ {
				b := stg[i*n : (i+1)*n]
				fb := b[0]
				copy(b, b[1:])
				b[n-1] = fb
			}
		}
		for i := range p.lead {
			lr := &p.lead[i]
			lc := lr.ctl
			lc.exposed = stg
			lc.fuseFirst = first
			lc.ready.set(v.cum[lr.level] + kn)
			lc.expSeq.set(last)
		}
		wc.mark(-1, obs.PhaseExpose, 0)
		wc.mark(-1, obs.PhaseChunkCopy, int64(k*n))
	} else {
		ctl := p.pull.ctl
		served := uint64(0)
		for served < uint64(k) {
			e := c.wait(&ctl.expSeq, first+served, rank, c.opBudget(ctl.spinBudget, n))
			wc.markFrom(p.pull.level, obs.PhaseFlagWait, 0, ctl.leader)
			f := ctl.fuseFirst // re-read: the parent may have re-staged
			src := ctl.exposed
			upTo := e
			if upTo > last {
				upTo = last
			}
			for q := first + served; q <= upTo; q++ {
				r := batch[q-first]
				off := int(q-f) * n
				copy(r.buf, src[off:off+n])
				if stg != nil {
					copy(stg[int(q-first)*n:], r.buf)
				}
			}
			for i := range p.lead {
				lr := &p.lead[i]
				lc := lr.ctl
				lc.exposed = stg
				lc.fuseFirst = first
				lc.ready.set(v.cum[lr.level] + (upTo-first+1)*uint64(n))
				lc.expSeq.set(upTo)
			}
			ctl.acks[p.pull.slot].set(upTo)
			wc.mark(p.pull.level, obs.PhaseChunkCopy, int64(upTo-(first+served)+1)*int64(n))
			served = upTo - first + 1
		}
	}

	// Freeze guard: a leader's staging (and fuseFirst) may only be reused
	// once every member has consumed the whole batch.
	for i := range p.lead {
		lr := &p.lead[i]
		for s := range lr.ctl.acks {
			if s != lr.slot {
				c.wait(&lr.ctl.acks[s], last, rank, c.opBudget(lr.ctl.spinBudget, n))
			}
		}
	}
	wc.mark(-1, obs.PhaseAck, 0)
	for l := range v.cum {
		v.cum[l] += kn
	}
	wc.finish()
	for _, r := range batch {
		c.completeReq(r)
	}
}
