package gxhc

import "testing"

func TestReduceSumsAtRoot(t *testing.T) {
	for _, n := range []int{1, 2, 8, 17} {
		for _, root := range []int{0, n - 1} {
			for _, elems := range []int{0, 1, 10, 1000} {
				c := MustNew(n, Config{GroupSize: 4})
				src := make([][]float64, n)
				dst := make([][]float64, n)
				want := make([]float64, elems)
				for r := range src {
					src[r] = make([]float64, elems)
					dst[r] = make([]float64, elems)
					for i := range src[r] {
						src[r][i] = float64(r*100 + i)
						want[i] += src[r][i]
						dst[r][i] = -1 // sentinel: only root's dst may change
					}
				}
				runAll(n, func(rank int) {
					c.ReduceFloat64(rank, dst[rank], src[rank], root)
				})
				for i := range want {
					if dst[root][i] != want[i] {
						t.Fatalf("n=%d root=%d elems=%d elem=%d: got %v want %v",
							n, root, elems, i, dst[root][i], want[i])
					}
				}
				for r := range dst {
					if r == root {
						continue
					}
					for i := range dst[r] {
						if dst[r][i] != -1 {
							t.Fatalf("n=%d root=%d: non-root rank %d dst written at %d", n, root, r, i)
						}
					}
				}
			}
		}
	}
}

func TestReduceRepeated(t *testing.T) {
	const n, elems = 9, 40
	c := MustNew(n, Config{GroupSize: 3})
	src := make([][]float64, n)
	dst := make([][]float64, n)
	for r := range src {
		src[r] = make([]float64, elems)
		dst[r] = make([]float64, elems)
	}
	for it := 0; it < 5; it++ {
		root := it % n
		want := make([]float64, elems)
		for r := range src {
			for i := range src[r] {
				src[r][i] = float64(r + i*it)
				want[i] += src[r][i]
			}
		}
		runAll(n, func(rank int) {
			c.ReduceFloat64(rank, dst[rank], src[rank], root)
		})
		for i := range want {
			if dst[root][i] != want[i] {
				t.Fatalf("iter %d root %d elem %d: got %v want %v", it, root, i, dst[root][i], want[i])
			}
		}
	}
}

func TestAllgatherConcatenates(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		for _, blockLen := range []int{0, 1, 3, 500} {
			c := MustNew(n, Config{GroupSize: 4})
			in := make([][]byte, n)
			out := make([][]byte, n)
			for r := range in {
				in[r] = make([]byte, blockLen)
				out[r] = make([]byte, blockLen*n)
				for i := range in[r] {
					in[r][i] = byte(r*31 + i)
				}
			}
			runAll(n, func(rank int) {
				c.Allgather(rank, in[rank], out[rank])
			})
			for r := range out {
				for b := 0; b < n; b++ {
					for i := 0; i < blockLen; i++ {
						if out[r][b*blockLen+i] != byte(b*31+i) {
							t.Fatalf("n=%d block=%d rank=%d wrong at %d", n, blockLen, r, i)
						}
					}
				}
			}
		}
	}
}

func TestAllgatherRepeatedNoStaleBlocks(t *testing.T) {
	// The exit barrier must keep op k+1's exposure from racing op k's
	// reads: re-fill the same in buffers between iterations and demand
	// every iteration sees its own values.
	const n, blockLen = 8, 64
	c := MustNew(n, Config{GroupSize: 4})
	in := make([][]byte, n)
	out := make([][]byte, n)
	for r := range in {
		in[r] = make([]byte, blockLen)
		out[r] = make([]byte, blockLen*n)
	}
	for it := 0; it < 8; it++ {
		for r := range in {
			for i := range in[r] {
				in[r][i] = byte(r ^ i ^ it*13)
			}
		}
		runAll(n, func(rank int) {
			c.Allgather(rank, in[rank], out[rank])
		})
		for r := range out {
			for b := 0; b < n; b++ {
				if out[r][b*blockLen+5] != byte(b^5^it*13) {
					t.Fatalf("iter %d rank %d stale block %d", it, r, b)
				}
			}
		}
	}
}

func TestScatterDistributes(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		for _, root := range []int{0, n / 2} {
			for _, blockLen := range []int{0, 1, 3, 500} {
				c := MustNew(n, Config{GroupSize: 4})
				in := make([]byte, blockLen*n)
				for i := range in {
					in[i] = byte(i * 11)
				}
				out := make([][]byte, n)
				for r := range out {
					out[r] = make([]byte, blockLen)
				}
				runAll(n, func(rank int) {
					var src []byte
					if rank == root {
						src = in
					}
					c.Scatter(rank, src, out[rank], root)
				})
				for r := range out {
					for i := range out[r] {
						if out[r][i] != byte((r*blockLen+i)*11) {
							t.Fatalf("n=%d root=%d block=%d rank=%d wrong at %d", n, root, blockLen, r, i)
						}
					}
				}
			}
		}
	}
}

func TestMixedNewCollectives(t *testing.T) {
	// Interleave the new collectives with the existing ones: the shared
	// opSeq/cum bookkeeping must stay consistent across kinds.
	const n, elems, blockLen = 12, 32, 16
	c := MustNew(n, Config{GroupSize: 4, ChunkBytes: 64})
	bufs := make([][]byte, n)
	src := make([][]float64, n)
	dst := make([][]float64, n)
	agIn := make([][]byte, n)
	agOut := make([][]byte, n)
	scOut := make([][]byte, n)
	scIn := make([]byte, blockLen*n)
	for r := 0; r < n; r++ {
		bufs[r] = make([]byte, 256)
		src[r] = make([]float64, elems)
		dst[r] = make([]float64, elems)
		agIn[r] = make([]byte, blockLen)
		agOut[r] = make([]byte, blockLen*n)
		scOut[r] = make([]byte, blockLen)
		for i := range src[r] {
			src[r][i] = float64(r + i)
		}
		for i := range agIn[r] {
			agIn[r][i] = byte(r*17 + i)
		}
	}
	for i := range bufs[0] {
		bufs[0][i] = byte(i * 3)
	}
	for i := range scIn {
		scIn[i] = byte(i * 7)
	}
	runAll(n, func(rank int) {
		c.Bcast(rank, bufs[rank], 0)
		c.Barrier(rank)
		c.ReduceFloat64(rank, dst[rank], src[rank], 3)
		c.Allgather(rank, agIn[rank], agOut[rank])
		var s []byte
		if rank == 2 {
			s = scIn
		}
		c.Scatter(rank, s, scOut[rank], 2)
		c.AllreduceFloat64(rank, dst[rank], src[rank])
	})
	for r := 0; r < n; r++ {
		if bufs[r][10] != byte(30) {
			t.Fatalf("rank %d bcast wrong", r)
		}
		for b := 0; b < n; b++ {
			if agOut[r][b*blockLen+1] != byte(b*17+1) {
				t.Fatalf("rank %d allgather block %d wrong", r, b)
			}
		}
		if scOut[r][0] != byte(r*blockLen*7) {
			t.Fatalf("rank %d scatter wrong", r)
		}
		var want float64
		for m := 0; m < n; m++ {
			want += float64(m + 4)
		}
		if dst[r][4] != want {
			t.Fatalf("rank %d allreduce got %v want %v", r, dst[r][4], want)
		}
	}
}
