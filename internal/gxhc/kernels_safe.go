//go:build !gxhc_unsafe

package gxhc

import "math"

// Default reduce kernels: pure Go, 4-way unrolled, with the slice headers
// hoisted so the compiler proves every index in range once per trip instead
// of once per element. `src = src[:len(acc)]` pins both lengths to the same
// bound; inside the unrolled body each access is dominated by the `i+3 <
// len(acc)` trip test, so the bounds checks vanish (verified with
// `go build -gcflags=-d=ssa/check_bce`). Build with -tags gxhc_unsafe for
// the wider pointer-walking variants in kernels_unsafe.go.

func vecAdd(acc, src []float64) {
	src = src[:len(acc)]
	i := 0
	for ; i+3 < len(acc); i += 4 {
		acc[i] += src[i]
		acc[i+1] += src[i+1]
		acc[i+2] += src[i+2]
		acc[i+3] += src[i+3]
	}
	for ; i < len(acc); i++ {
		acc[i] += src[i]
	}
}

func vecMin(acc, src []float64) {
	src = src[:len(acc)]
	i := 0
	for ; i+3 < len(acc); i += 4 {
		acc[i] = math.Min(acc[i], src[i])
		acc[i+1] = math.Min(acc[i+1], src[i+1])
		acc[i+2] = math.Min(acc[i+2], src[i+2])
		acc[i+3] = math.Min(acc[i+3], src[i+3])
	}
	for ; i < len(acc); i++ {
		acc[i] = math.Min(acc[i], src[i])
	}
}

func vecMax(acc, src []float64) {
	src = src[:len(acc)]
	i := 0
	for ; i+3 < len(acc); i += 4 {
		acc[i] = math.Max(acc[i], src[i])
		acc[i+1] = math.Max(acc[i+1], src[i+1])
		acc[i+2] = math.Max(acc[i+2], src[i+2])
		acc[i+3] = math.Max(acc[i+3], src[i+3])
	}
	for ; i < len(acc); i++ {
		acc[i] = math.Max(acc[i], src[i])
	}
}
