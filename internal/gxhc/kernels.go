package gxhc

import "math"

// ReduceOp selects the element-wise fold applied by the float64 reduction
// kernels. Sum matches the paper's allreduce benchmarks; Min/Max use
// math.Min/math.Max semantics (NaN propagates, -0 orders below +0) so
// results stay bit-identical to the simulator's mpi.ReduceBytes fold.
type ReduceOp int

const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return "?"
}

// vecReduce folds src into acc element-wise over the first len(acc)
// elements (src must be at least as long; the slices must not overlap
// partially). The per-op kernels live in kernels_safe.go (4-way unrolled,
// bounds-check-eliminated) with a wider unsafe variant selected by the
// gxhc_unsafe build tag.
func vecReduce(op ReduceOp, acc, src []float64) {
	switch op {
	case OpSum:
		vecAdd(acc, src)
	case OpMin:
		vecMin(acc, src)
	case OpMax:
		vecMax(acc, src)
	}
}

// Naive one-element-at-a-time references: the oracle the optimized kernels
// must match bit for bit (kernels_test.go property-checks every length
// 0..257 including NaN, infinities and signed zeros), and the definition of
// record for the fold semantics.

func vecAddNaive(acc, src []float64) {
	for i := range acc {
		acc[i] += src[i]
	}
}

func vecMinNaive(acc, src []float64) {
	for i := range acc {
		acc[i] = math.Min(acc[i], src[i])
	}
}

func vecMaxNaive(acc, src []float64) {
	for i := range acc {
		acc[i] = math.Max(acc[i], src[i])
	}
}
