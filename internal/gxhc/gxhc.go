// Package gxhc is a native Go implementation of the XHC design for
// goroutine-level collectives: topology-aware hierarchical groups,
// pull-based pipelined broadcast, index-partitioned reduction, and
// single-writer synchronization (plain atomic loads/stores, no
// read-modify-write operations — the discipline the paper's Section III-E
// argues for).
//
// Unlike package core, which runs on the simulated node, gxhc coordinates
// real goroutines sharing real slices, and is usable as a standalone
// library for in-process parallel computations.
//
// The hot path is built for wall-clock speed (DESIGN.md §13): control
// state lives in dense cache-line-padded flag arrays indexed by member
// slot (flagLine, one line per writer — no maps, no false sharing),
// waiters spin briefly then park on per-flag wait queues (Comm.wait, with
// Config.Spin as the pure-spin escape hatch), reductions run through
// unrolled bounds-check-free kernels (kernels_safe.go / gxhc_unsafe), and
// the steady-state op path performs zero heap allocations.
package gxhc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xhc/internal/hier"
	"xhc/internal/obs"
	"xhc/internal/topo"
)

// Config tunes a communicator.
type Config struct {
	// GroupSize is the leaf group width of the synthetic 2-level
	// hierarchy (0/1 yields a flat communicator). On a real machine a
	// sensible choice is the number of cores sharing an L3 cache.
	GroupSize int
	// ChunkBytes is the broadcast pipelining granule.
	ChunkBytes int
	// Spin keeps waiters spinning (with cooperative yielding and capped
	// sleep backoff) instead of parking on a per-flag wait queue after the
	// bounded spin phase. Spinning minimizes wakeup latency for small
	// latency-bound operations when every participant has a core to itself;
	// parking (the default) is what keeps oversubscribed runs off the
	// scheduler's back.
	Spin bool
	// Chaos, when non-nil, seeds a deliberate synchronization bug for the
	// verify harness's mutation self-test (see ChaosConfig).
	Chaos *ChaosConfig
	// FuseBytes is the same-shape small-op fusion threshold: non-blocking
	// broadcasts no larger than this are batched by the request worker into
	// a single hierarchy traversal (DESIGN.md §15). 0 selects the default
	// (1 KiB, the CICO/XPMEM size-class boundary); negative disables
	// fusion.
	FuseBytes int
	// SpinProbes is the unit of the waiter's yielding-spin budget: the
	// per-flag budget is SpinProbes scaled by the group fan-in (waiter.go),
	// and bulk-payload waits drop to a floor of exactly SpinProbes. 0
	// selects the default (192).
	SpinProbes int
	// SpinScaleMax caps the small-fan-in multiplier of the spin budget
	// (the fanin<=2 budget is SpinProbes*SpinScaleMax). 0 selects the
	// default (8).
	SpinScaleMax int
}

// DefaultConfig groups participants by 8 with 64 KiB chunks.
func DefaultConfig() Config { return Config{GroupSize: 8, ChunkBytes: 64 << 10} }

// Comm coordinates N participant goroutines. All participants must call
// each collective in the same order (MPI semantics).
type Comm struct {
	n   int
	cfg Config

	// states[root] is the per-root control structure, built lazily on the
	// first collective rooted there and then read lock-free: the hot path
	// is one atomic pointer load, no mutex. mu only serializes builders.
	mu     sync.Mutex
	states []atomic.Pointer[state]
	views  []viewSlot
	// park[r] is rank r's wait-queue node: the one-token channel the rank
	// blocks on when a flag wait exhausts its spin budget, plus the
	// intrusive link that threads it onto the flag's list. One node per
	// rank (not per flag) — a rank waits on one flag at a time — so
	// parking never allocates.
	park []parkNode
	// agBudget is the spin budget for allgather's per-rank exposure flags,
	// whose fan-in is the whole communicator.
	agBudget int

	// scratch[r] is rank r's internal accumulator for rooted reductions
	// (non-root leaders reduce into it instead of the user's dst), grown
	// by capacity to the next power of two so a mixed-size op sequence
	// settles instead of reallocating. Each rank only touches its own slot.
	scratch [][]float64
	// nb[r] is rank r's non-blocking request lane: the worker queue, the
	// request freelist and the pending gate (request.go).
	nb []nbRank
	// fuse[r] is rank r's fused-broadcast staging buffer (grow-only, only
	// ranks that lead a group stage). fuseMax is the normalized fusion
	// threshold from Config.FuseBytes.
	fuse    [][]byte
	fuseMax int
	// inflight counts non-blocking requests issued but not yet completed,
	// across all ranks (the requests.max_inflight gauge's source).
	inflight atomic.Int64
	// tuneGate is the all-ranks rendezvous ApplyTuning/Retune quiesce the
	// communicator through before mutating the live knobs (tuning.go). A
	// dedicated sense-reversing barrier, not the collective Barrier: its
	// body must not read any knob being retuned, and the mutex/cond pair
	// gives the knob stores a happens-before edge to every rank.
	tuneGate rendezvous
	// ag[r] exposes rank r's allgather contribution block; the op ends
	// with barrier semantics, so a single slot per rank suffices.
	ag []agSlot

	// trace, when enabled, records per-participant phase spans on wall
	// time. Nil by default; every instrumentation point nil-checks it, so
	// the untraced path costs one pointer comparison per collective.
	trace *obs.Tracer
	// rec, when attached, receives one FlightRecord per (participant,
	// collective) — the wall-clock mirror of core's flight wiring. wcs is
	// the per-participant pool of segment clocks (each participant runs
	// one collective at a time, so recording stays allocation-free).
	rec *obs.OpRecorder
	wcs []wallClock
	// clk is the instrumentation clock, resolved once when trace/rec is
	// attached (trace clock, then recorder clock, then a wall-clock
	// closure) — never per op, so the instrumented path stays alloc-free.
	clk func() int64
}

// resolveClock picks the instrumentation clock once; callers hold c.mu.
func (c *Comm) resolveClock() {
	switch {
	case c.trace != nil:
		c.clk = c.trace.Now
	case c.rec != nil && c.rec.Now != nil:
		c.clk = c.rec.Now
	default:
		c.clk = obs.WallClock()
	}
}

// EnableTrace attaches a wall-time span tracer (one lane per participant)
// and returns it. Call it before spawning participant goroutines; the
// clock starts at the call. Repeated calls return the same tracer.
func (c *Comm) EnableTrace() *obs.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.trace == nil {
		c.trace = obs.NewTracer("gxhc", 0, c.n, obs.WallTicksPerUS, obs.WallClock())
	}
	if c.wcs == nil {
		c.wcs = make([]wallClock, c.n)
	}
	c.resolveClock()
	return c.trace
}

// Tracer returns the attached tracer (nil unless EnableTrace was called).
func (c *Comm) Tracer() *obs.Tracer { return c.trace }

// AttachRecorder routes one FlightRecord per (participant, collective)
// into rec — an obs.World's recorder created with obs.WallTicksPerUS and
// obs.WallClock(). Call before spawning participant goroutines.
func (c *Comm) AttachRecorder(rec *obs.OpRecorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec = rec
	if c.wcs == nil {
		c.wcs = make([]wallClock, c.n)
	}
	c.resolveClock()
}

// wallClock is gxhc's segment clock, the wall-time mirror of core's
// phaseClock: consecutive marks partition one collective into phase spans,
// and finish commits the operation's flight record when a recorder is
// attached. A nil receiver is a no-op, so uninstrumented runs take no
// extra branches beyond the constructor's nil checks.
type wallClock struct {
	t   *obs.Tracer
	rec *obs.OpRecorder
	clk func() int64

	lane  int
	op    obs.OpCode
	seq   uint64
	bytes int64
	lvls  uint8
	chnks uint16

	start int64
	last  int64
	durs  [obs.NPhases]int64
}

func (c *Comm) newWallClock(rank int, op obs.OpCode, seq uint64, bytes int64, levels int) *wallClock {
	if c.trace == nil && c.rec == nil {
		return nil
	}
	clk := c.clk
	var wc *wallClock
	if c.wcs != nil {
		wc = &c.wcs[rank]
	} else {
		wc = &wallClock{}
	}
	now := clk()
	*wc = wallClock{
		t: c.trace, rec: c.rec, clk: clk,
		lane: rank, op: op, seq: seq, bytes: bytes, lvls: uint8(levels),
		start: now, last: now,
	}
	return wc
}

func (wc *wallClock) mark(level int, ph obs.Phase, bytes int64) {
	wc.markFrom(level, ph, bytes, -1)
}

// markFrom is mark with an explicit causal parent lane — wait segments
// pass the rank whose flag write released this one (see phaseClock).
func (wc *wallClock) markFrom(level int, ph obs.Phase, bytes int64, from int) {
	if wc == nil {
		return
	}
	now := wc.clk()
	if now > wc.last {
		wc.durs[ph] += now - wc.last
		if wc.t != nil {
			wc.t.RecordLinked(wc.lane, level, ph, wc.op.String(), wc.seq, wc.last, now, bytes, from)
		}
	}
	if ph == obs.PhaseChunkCopy && bytes > 0 && wc.chnks < ^uint16(0) {
		wc.chnks++
	}
	wc.last = now
}

func (wc *wallClock) finish() {
	if wc == nil {
		return
	}
	now := wc.clk()
	if wc.t != nil {
		wc.t.Record(wc.lane, -1, obs.PhaseCollective, wc.op.String(), wc.seq, wc.start, now, wc.bytes)
	}
	if wc.rec != nil {
		wc.rec.RecordFlight(obs.FlightRecord{
			Seq: wc.seq, Start: wc.start, End: now, Bytes: wc.bytes,
			Phase: wc.durs, Lane: int32(wc.lane), Chunks: wc.chnks,
			Levels: wc.lvls, Op: wc.op,
		})
	}
}

// viewSlot is one participant's mirror of the monotonic counters, padded
// so adjacent ranks' counters never share a cache line (each rank bumps
// its own slot every op).
type viewSlot struct {
	opSeq uint64
	cum   [8]uint64
	// lastBytes is the payload size of the rank's most recent data op.
	// Barrier waits (including allgather's exit barrier) select their spin
	// budget through c.opBudget(budget, lastBytes): a barrier that follows a
	// bulk op is overwhelmingly waiting on stragglers still moving exactly
	// that payload, so its early finishers must park at the floor instead
	// of yield-storming through the copies; a barrier in a small-op or
	// barrier-only loop keeps the wide fan-in budget. Private to the rank —
	// no sharing.
	lastBytes int
	_         [cacheLine - 16]byte
}

// agSlot is one rank's allgather exposure: blk is a plain field published
// by the seq flag (readers load it only after observing the sequence, the
// writer stores it before).
type agSlot struct {
	seq flagLine
	blk []byte
	_   [cacheLine - 24]byte
}

// contribSlot holds one member's exposed contribution slice, padded to a
// full line — each slot has exactly one writer (its member), publication
// rides on the member's red flag.
type contribSlot struct {
	f []float64
	_ [cacheLine - 24]byte
}

// groupCtl is the shared control block of one hierarchy group. All mutable
// state is either a single-writer flagLine or a plain field published by
// one (exposed/exposedF by expSeq, contrib[s] by red[s]): every writer
// owns its cache line, so the ack/ready/expose phases do padded array
// loads — no map lookups, no false sharing, no read-modify-write.
type groupCtl struct {
	leader     int
	leaderSlot int
	members    []int32
	// spinBudget is spinBudgetFor(len(members)): waits on this group's
	// flags stay in the yielding spin phase longer the smaller the group.
	spinBudget int
	// exposed holds the leader's current buffer ([]byte for Bcast and
	// Scatter, exposedF for float64 reductions), published by expSeq.
	exposed  []byte
	exposedF []float64
	// fuseFirst is the first sub-op seq of the leader's current fused
	// broadcast batch: exposed[(q-fuseFirst)*n:] holds sub-op q's payload.
	// Plain field published by expSeq, frozen (with the staging it
	// describes) until every member has acked the batch's last sub-op.
	fuseFirst uint64
	_         [24]byte // start the flag lines on a fresh cache line
	// ready is the leader-owned published-bytes counter (single writer).
	ready flagLine
	// expSeq announces the exposure sequence.
	expSeq flagLine
	// acks[s] is member slot s's completed-op counter (single writer each).
	acks []flagLine
	// red[s] is member slot s's reduction progress counter (phase counter:
	// 2k = contribution ready, 2k+1 = slice done).
	red []flagLine
	// contrib[s] holds member slot s's exposed contribution slice.
	contrib []contribSlot
}

// levelRole is one rank's precomputed handle on one group: the control
// block and the rank's member slot in it.
type levelRole struct {
	level int
	slot  int
	ctl   *groupCtl
}

// rankPlan precomputes everything a rank's hot path needs from the
// hierarchy — which groups it leads (innermost first), where it pulls from
// as a plain member, its slot in each, and its index partition among the
// pull group's reducers — so collectives never walk the hierarchy, consult
// a map, or allocate.
type rankPlan struct {
	lead    []levelRole // groups this rank leads, level 0 upward
	pull    levelRole   // the group it is a plain member of (if hasPull)
	hasPull bool
	leaf    levelRole // role at level 0 (lead[0] or pull)
	// redIdx/redCnt partition [0,n) among the pull group's non-leader
	// members for the reduction share.
	redIdx, redCnt int
}

type state struct {
	h         *hier.Hierarchy
	groups    [][]*groupCtl
	plans     []rankPlan
	top       *groupCtl // top-level group (carries Scatter's exposure)
	topLeader int
}

// New creates a communicator for n participants.
func New(n int, cfg Config) (*Comm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gxhc: need at least one participant, got %d", n)
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 64 << 10
	}
	if cfg.SpinProbes <= 0 {
		cfg.SpinProbes = spinProbes
	}
	if cfg.SpinScaleMax <= 0 {
		cfg.SpinScaleMax = spinScaleMax
	}
	c := &Comm{n: n, cfg: cfg}
	c.agBudget = c.spinBudgetFor(n)
	c.tuneGate.cond = sync.NewCond(&c.tuneGate.mu)
	c.states = make([]atomic.Pointer[state], n)
	c.views = make([]viewSlot, n)
	c.park = make([]parkNode, n)
	for r := range c.park {
		c.park[r].ch = make(chan struct{}, 1)
	}
	c.scratch = make([][]float64, n)
	c.ag = make([]agSlot, n)
	c.nb = make([]nbRank, n)
	for r := range c.nb {
		c.nb[r].q = make(chan *Request, nbQueueCap)
	}
	c.fuse = make([][]byte, n)
	switch {
	case cfg.FuseBytes < 0:
		c.fuseMax = 0
	case cfg.FuseBytes == 0:
		c.fuseMax = defaultFuseBytes
	default:
		c.fuseMax = cfg.FuseBytes
	}
	if _, err := c.stateFor(0); err != nil {
		return nil, err
	}
	return c, nil
}

// MustNew panics on error.
func MustNew(n int, cfg Config) *Comm {
	c, err := New(n, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of participants.
func (c *Comm) N() int { return c.n }

// synthetic topology: one socket, ceil(n/groupSize) "NUMA" groups.
func (c *Comm) buildHierarchy(root int) (*hier.Hierarchy, error) {
	gs := c.cfg.GroupSize
	var sens hier.Sensitivity
	if gs > 1 && gs < c.n {
		sens = hier.Sensitivity{hier.DomainNUMA}
	}
	groups := (c.n + max(gs, 1) - 1) / max(gs, 1)
	if groups < 1 {
		groups = 1
	}
	t, err := topo.New(topo.Config{
		Name: "gxhc", Arch: "go",
		Sockets: 1, NUMAPerSocket: groups, CoresPerNUMA: max(gs, 1),
	})
	if err != nil {
		return nil, err
	}
	m, err := t.Map(topo.MapCore, c.n)
	if err != nil {
		return nil, err
	}
	return hier.Build(t, m, sens, root)
}

func (c *Comm) stateFor(root int) (*state, error) {
	if root < 0 || root >= c.n {
		return nil, fmt.Errorf("gxhc: root %d out of range [0,%d)", root, c.n)
	}
	if st := c.states[root].Load(); st != nil {
		return st, nil
	}
	return c.buildState(root)
}

func (c *Comm) buildState(root int) (*state, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.states[root].Load(); st != nil {
		return st, nil
	}
	h, err := c.buildHierarchy(root)
	if err != nil {
		return nil, err
	}
	st := &state{h: h, topLeader: h.TopLeader()}
	for l := 0; l < h.NLevels(); l++ {
		var lvl []*groupCtl
		for gi := range h.GroupsAt(l) {
			g := &h.GroupsAt(l)[gi]
			ctl := &groupCtl{
				leader:     g.Leader,
				members:    make([]int32, len(g.Members)),
				spinBudget: c.spinBudgetFor(len(g.Members)),
				acks:       make([]flagLine, len(g.Members)),
				red:        make([]flagLine, len(g.Members)),
				contrib:    make([]contribSlot, len(g.Members)),
			}
			for s, m := range g.Members {
				ctl.members[s] = int32(m)
				if m == g.Leader {
					ctl.leaderSlot = s
				}
			}
			lvl = append(lvl, ctl)
		}
		st.groups = append(st.groups, lvl)
	}
	st.top = st.groups[h.NLevels()-1][0]
	st.plans = make([]rankPlan, c.n)
	for r := 0; r < c.n; r++ {
		p := &st.plans[r]
		for l := 0; l < h.NLevels(); l++ {
			g, ok := h.GroupOf(l, r)
			if !ok {
				break
			}
			ctl := st.groups[l][g.Index]
			role := levelRole{level: l, ctl: ctl}
			for s, m := range g.Members {
				if m == r {
					role.slot = s
					break
				}
			}
			if h.IsLeader(l, r) {
				p.lead = append(p.lead, role)
				continue
			}
			p.pull = role
			p.hasPull = true
			// Index partition among the group's non-leader members.
			for _, m := range g.Members {
				if m == g.Leader {
					continue
				}
				if m == r {
					p.redIdx = p.redCnt
				}
				p.redCnt++
			}
			break // a non-leader participates in no higher level
		}
		if len(p.lead) > 0 {
			p.leaf = p.lead[0]
		} else {
			p.leaf = p.pull
		}
	}
	c.states[root].Store(st)
	return st, nil
}

// Bcast distributes root's buf contents to every participant's buf. All
// participants must pass equally sized buffers. While the rank has
// non-blocking requests in flight the call is ordered behind them through
// the request queue (request.go); otherwise it runs inline.
func (c *Comm) Bcast(rank int, buf []byte, root int) {
	if c.nb[rank].pending.Load() != 0 {
		c.issueBlocking(rank, reqBcast, buf, nil, nil, nil, root, 0)
		return
	}
	c.bcast(rank, buf, root)
}

// bcast is Bcast's body, called inline or from the rank's request worker.
func (c *Comm) bcast(rank int, buf []byte, root int) {
	st, err := c.stateFor(root)
	if err != nil {
		panic(err)
	}
	v := &c.views[rank]
	v.opSeq++
	seq := v.opSeq
	n := len(buf)
	v.lastBytes = n
	wc := c.newWallClock(rank, obs.OpBcast, seq, int64(n), st.h.NLevels())
	p := &st.plans[rank]

	for i := range p.lead {
		ctl := p.lead[i].ctl
		ctl.exposed = buf
		ctl.expSeq.set(seq)
	}
	wc.mark(-1, obs.PhaseExpose, 0)
	if rank == root {
		for i := range p.lead {
			lr := &p.lead[i]
			lr.ctl.ready.set(v.cum[lr.level] + uint64(n))
		}
		wc.mark(-1, obs.PhaseChunkCopy, int64(n))
	} else if n > 0 {
		ctl := p.pull.ctl
		c.wait(&ctl.expSeq, seq, rank, c.opBudget(ctl.spinBudget, n))
		src := ctl.exposed
		wc.markFrom(p.pull.level, obs.PhaseFlagWait, 0, ctl.leader)
		base := v.cum[p.pull.level]
		copied := 0
		for copied < n {
			var avail int
			if c.cfg.Chaos != nil && c.cfg.Chaos.StaleReady {
				// Mutation: skip the ready wait and trust the exposure.
				avail = n
			} else {
				want := copied + min(c.cfg.ChunkBytes, n-copied)
				avail = int(c.wait(&ctl.ready, base+uint64(want), rank, c.opBudget(ctl.spinBudget, n)) - base)
				if avail > n {
					avail = n
				}
			}
			wc.markFrom(p.pull.level, obs.PhaseFlagWait, 0, ctl.leader)
			before := copied
			copy(buf[copied:avail], src[copied:avail])
			copied = avail
			for i := range p.lead {
				lr := &p.lead[i]
				lr.ctl.ready.set(v.cum[lr.level] + uint64(copied))
			}
			wc.mark(p.pull.level, obs.PhaseChunkCopy, int64(copied-before))
		}
	}

	// Hierarchical acknowledgment.
	if p.hasPull {
		p.pull.ctl.acks[p.pull.slot].set(seq)
	}
	for i := range p.lead {
		lr := &p.lead[i]
		for s := range lr.ctl.acks {
			if s != lr.slot {
				c.wait(&lr.ctl.acks[s], seq, rank, c.opBudget(lr.ctl.spinBudget, n))
			}
		}
	}
	wc.mark(-1, obs.PhaseAck, 0)
	for l := range v.cum {
		v.cum[l] += uint64(n)
	}
	wc.finish()
}

// AllreduceFloat64 sums src element-wise across all participants into
// every participant's dst (len(dst) == len(src) everywhere). The reduction
// is hierarchical with index partitioning among group members.
func (c *Comm) AllreduceFloat64(rank int, dst, src []float64) {
	c.AllreduceFloat64Op(rank, dst, src, OpSum)
}

// AllreduceFloat64Op is AllreduceFloat64 with an explicit element-wise op
// (sum, min or max — see ReduceOp).
func (c *Comm) AllreduceFloat64Op(rank int, dst, src []float64, op ReduceOp) {
	if c.nb[rank].pending.Load() != 0 {
		c.issueBlocking(rank, reqAllreduce, nil, nil, dst, src, 0, op)
		return
	}
	c.reduceFloat64(rank, dst, src, 0, true, op)
}

// ReduceFloat64 sums src element-wise across all participants into root's
// dst only. Non-root ranks' dst arguments are ignored (internal scratch
// accumulators are used at non-root leaders), but every rank must pass a
// src of the same length.
func (c *Comm) ReduceFloat64(rank int, dst, src []float64, root int) {
	c.ReduceFloat64Op(rank, dst, src, root, OpSum)
}

// ReduceFloat64Op is ReduceFloat64 with an explicit element-wise op.
func (c *Comm) ReduceFloat64Op(rank int, dst, src []float64, root int, op ReduceOp) {
	if c.nb[rank].pending.Load() != 0 {
		c.issueBlocking(rank, reqReduce, nil, nil, dst, src, root, op)
		return
	}
	c.reduceFloat64(rank, dst, src, root, false, op)
}

// reduceFloat64 is the shared body of AllreduceFloat64/ReduceFloat64: a
// hierarchical index-partitioned reduction toward the top leader (which is
// root, since the hierarchy is root-following), optionally followed by the
// pull-based broadcast of the result.
func (c *Comm) reduceFloat64(rank int, dst, src []float64, root int, bcast bool, op ReduceOp) {
	if bcast && len(dst) != len(src) {
		panic("gxhc: dst/src length mismatch")
	}
	st, err := c.stateFor(root)
	if err != nil {
		panic(err)
	}
	v := &c.views[rank]
	v.opSeq++
	seq := v.opSeq
	n := len(src)
	v.lastBytes = n * 8
	opCode := obs.OpAllreduce
	if !bcast {
		opCode = obs.OpReduce
	}
	wc := c.newWallClock(rank, opCode, seq, int64(n)*8, st.h.NLevels())
	p := &st.plans[rank]

	// The accumulator of a leader is its result buffer: dst for allreduce
	// (and for the root in reduce); internal scratch otherwise. Scratch is
	// reused by capacity and grown to the next power of two, so a mixed-size
	// op sequence settles instead of reallocating on every size increase.
	acc := dst
	if !bcast && rank != root && len(p.lead) > 0 {
		s := c.scratch[rank]
		if cap(s) < n {
			sz := 1
			for sz < n {
				sz <<= 1
			}
			s = make([]float64, sz)
			c.scratch[rank] = s
		}
		acc = s[:n]
	}

	// Expose contributions: src at the leaf level, acc (accumulator) above.
	// Contribution slices and the leader accumulator are plain fields,
	// published by the red/expSeq flag stores below.
	if p.hasPull {
		cs := &p.pull.ctl.contrib[p.pull.slot]
		if p.pull.level == 0 {
			cs.f = src
		} else {
			cs.f = acc
		}
	}
	for i := range p.lead {
		lr := &p.lead[i]
		cs := &lr.ctl.contrib[lr.slot]
		if lr.level == 0 {
			cs.f = src
		} else {
			cs.f = acc
		}
		lr.ctl.exposedF = acc // accumulator for reducers
		lr.ctl.expSeq.set(seq)
	}
	// Leaf contributions are ready immediately.
	p.leaf.ctl.red[p.leaf.slot].set(seq * 2) // phase counter: 2k = ready
	wc.mark(-1, obs.PhaseExpose, 0)

	// Bottom-up walk. A rank first completes its duties as a leader of
	// the levels below (wait for the group's reducers, then publish its
	// own contribution readiness one level up), and only then performs
	// its reduction share at its pull level — mirroring the dependency
	// order of the simulated implementation.
	for i := range p.lead {
		lr := &p.lead[i]
		if lr.level == 0 && len(lr.ctl.members) == 1 {
			// Singleton leaf group: the accumulator takes the leader's own
			// contribution directly.
			copy(acc, src)
		}
		for s := range lr.ctl.red {
			if s != lr.slot {
				c.wait(&lr.ctl.red[s], seq*2+1, rank, c.opBudget(lr.ctl.spinBudget, n*8))
			}
		}
		if i+1 < len(p.lead) {
			up := &p.lead[i+1]
			up.ctl.red[up.slot].set(seq * 2)
		} else if p.hasPull {
			p.pull.ctl.red[p.pull.slot].set(seq * 2)
		}
	}
	wc.mark(-1, obs.PhaseFlagWait, 0)
	if p.hasPull {
		ctl := p.pull.ctl
		// Reduce this rank's index partition of [0,n) into the leader's
		// accumulator.
		lo := n * p.redIdx / p.redCnt
		hi := n * (p.redIdx + 1) / p.redCnt
		if hi > lo {
			c.wait(&ctl.expSeq, seq, rank, c.opBudget(ctl.spinBudget, n*8))
			lacc := ctl.exposedF
			// Wait for every member's contribution to be ready.
			for s := range ctl.red {
				c.wait(&ctl.red[s], seq*2, rank, c.opBudget(ctl.spinBudget, n*8))
			}
			wc.mark(p.pull.level, obs.PhaseFlagWait, 0)
			leaderContrib := ctl.contrib[ctl.leaderSlot].f
			if &leaderContrib[0] != &lacc[0] {
				copy(lacc[lo:hi], leaderContrib[lo:hi])
			}
			for s := range ctl.contrib {
				if s == ctl.leaderSlot {
					continue
				}
				vecReduce(op, lacc[lo:hi], ctl.contrib[s].f[lo:hi])
			}
			wc.mark(p.pull.level, obs.PhaseReduceSlice, int64(hi-lo)*8)
		}
		// Signal slice completion (phase 2k+1).
		ctl.red[p.pull.slot].set(seq*2 + 1)
	}

	// Broadcast the result from the top leader (rank 0's dst for allreduce;
	// a rooted reduce skips the distribution — and therefore leaves the
	// ready counters and their cum mirrors untouched).
	if bcast {
		if rank == st.topLeader {
			for i := range p.lead {
				lr := &p.lead[i]
				lr.ctl.ready.set(v.cum[lr.level] + uint64(n))
			}
		} else if n > 0 {
			// n == 0 publishes nothing, so the ready counter cannot order this
			// pull against the leader's expose; skip it — there is no data.
			ctl := p.pull.ctl
			base := v.cum[p.pull.level]
			c.wait(&ctl.ready, base+uint64(n), rank, c.opBudget(ctl.spinBudget, n*8))
			wc.markFrom(p.pull.level, obs.PhaseFlagWait, 0, ctl.leader)
			final := ctl.exposedF
			if &dst[0] != &final[0] {
				copy(dst, final)
			}
			for i := range p.lead {
				lr := &p.lead[i]
				lr.ctl.ready.set(v.cum[lr.level] + uint64(n))
			}
			wc.mark(p.pull.level, obs.PhaseChunkCopy, int64(n)*8)
		}
	}

	// A rooted reduce has no broadcast release ordering a member's return
	// after the group fan-in: a sibling reducer may still be reading this
	// rank's contribution (src, or the scratch accumulator) when the caller
	// refills it for the next op. Hold until every co-reducer in the pull
	// group has finished its slice. Allreduce needs none of this — the
	// result broadcast already orders every return after the full fan-in.
	if !bcast && p.hasPull {
		ctl := p.pull.ctl
		for s := range ctl.red {
			if s != p.pull.slot && s != ctl.leaderSlot {
				c.wait(&ctl.red[s], seq*2+1, rank, c.opBudget(ctl.spinBudget, n*8))
			}
		}
	}

	// Acknowledgment + counter advance.
	if p.hasPull {
		p.pull.ctl.acks[p.pull.slot].set(seq)
	}
	for i := range p.lead {
		lr := &p.lead[i]
		for s := range lr.ctl.acks {
			if s != lr.slot {
				c.wait(&lr.ctl.acks[s], seq, rank, c.opBudget(lr.ctl.spinBudget, n*8))
			}
		}
	}
	wc.mark(-1, obs.PhaseAck, 0)
	if bcast {
		for l := range v.cum {
			v.cum[l] += uint64(n)
		}
	}
	wc.finish()
}

// Barrier blocks until every participant has arrived.
func (c *Comm) Barrier(rank int) {
	if c.nb[rank].pending.Load() != 0 {
		c.issueBlocking(rank, reqBarrier, nil, nil, nil, nil, 0, 0)
		return
	}
	c.barrier(rank)
}

// barrier is Barrier's body, called inline or from the rank's request
// worker.
func (c *Comm) barrier(rank int) {
	st, _ := c.stateFor(0)
	v := &c.views[rank]
	v.opSeq++
	wc := c.newWallClock(rank, obs.OpBarrier, v.opSeq, 0, st.h.NLevels())
	c.barrierBody(st, v, rank, wc)
	wc.finish()
}

// barrierBody is the hierarchical arrival/release round: arrival propagates
// up via the ack counters, release propagates down via the ready counters,
// consuming one token on every level's cum mirror. Used by Barrier and as
// Allgather's exit synchronization (no participant may return — and reuse
// its exposed contribution — before every other participant has read it).
func (c *Comm) barrierBody(st *state, v *viewSlot, rank int, wc *wallClock) {
	p := &st.plans[rank]
	seq := v.opSeq
	for i := range p.lead {
		lr := &p.lead[i]
		for s := range lr.ctl.acks {
			if s != lr.slot {
				c.wait(&lr.ctl.acks[s], seq, rank, c.opBudget(lr.ctl.spinBudget, v.lastBytes))
			}
		}
	}
	if p.hasPull {
		ctl := p.pull.ctl
		ctl.acks[p.pull.slot].set(seq)
		c.wait(&ctl.ready, v.cum[p.pull.level]+1, rank, c.opBudget(ctl.spinBudget, v.lastBytes))
	}
	for i := len(p.lead) - 1; i >= 0; i-- {
		lr := &p.lead[i]
		lr.ctl.ready.set(v.cum[lr.level] + 1)
	}
	for l := range v.cum {
		v.cum[l]++
	}
	wc.mark(-1, obs.PhaseFlagWait, 0)
}

// Allgather concatenates every participant's in block into each
// participant's out buffer in rank order (len(out) == N*len(in), with equal
// block lengths everywhere). Each participant exposes its block and copies
// every peer's block directly; the op ends with barrier semantics so no
// participant can republish (or let its caller reuse) a block that a slower
// peer is still reading.
func (c *Comm) Allgather(rank int, in, out []byte) {
	if c.nb[rank].pending.Load() != 0 {
		c.issueBlocking(rank, reqAllgather, in, out, nil, nil, 0, 0)
		return
	}
	c.allgather(rank, in, out)
}

// allgather is Allgather's body, called inline or from the rank's request
// worker.
func (c *Comm) allgather(rank int, in, out []byte) {
	blockLen := len(in)
	if len(out) != blockLen*c.n {
		panic(fmt.Sprintf("gxhc: allgather out length %d, want %d", len(out), blockLen*c.n))
	}
	st, _ := c.stateFor(0)
	v := &c.views[rank]
	v.opSeq++
	seq := v.opSeq
	v.lastBytes = blockLen * c.n
	wc := c.newWallClock(rank, obs.OpAllgather, seq, int64(blockLen), st.h.NLevels())

	c.ag[rank].blk = in
	c.ag[rank].seq.set(seq)
	wc.mark(-1, obs.PhaseExpose, 0)
	for r := 0; r < c.n; r++ {
		if r == rank {
			copy(out[blockLen*r:blockLen*(r+1)], in)
			continue
		}
		c.wait(&c.ag[r].seq, seq, rank, c.opBudget(c.agBudget, blockLen))
		copy(out[blockLen*r:blockLen*(r+1)], c.ag[r].blk)
	}
	wc.mark(-1, obs.PhaseChunkCopy, int64(blockLen*c.n))
	c.barrierBody(st, v, rank, wc)
	wc.finish()
}

// Scatter distributes blockLen-byte blocks from root's in buffer (N
// consecutive blocks in rank order, only meaningful at root) to each
// participant's out. The root's exposure rides on the top group's control
// block; the hierarchical ack keeps root from returning — and its caller
// from reusing in — before every block has been pulled.
func (c *Comm) Scatter(rank int, in, out []byte, root int) {
	if c.nb[rank].pending.Load() != 0 {
		c.issueBlocking(rank, reqScatter, in, out, nil, nil, root, 0)
		return
	}
	c.scatter(rank, in, out, root)
}

// scatter is Scatter's body, called inline or from the rank's request
// worker.
func (c *Comm) scatter(rank int, in, out []byte, root int) {
	st, err := c.stateFor(root)
	if err != nil {
		panic(err)
	}
	v := &c.views[rank]
	v.opSeq++
	seq := v.opSeq
	blockLen := len(out)
	v.lastBytes = blockLen
	wc := c.newWallClock(rank, obs.OpScatter, seq, int64(blockLen), st.h.NLevels())
	p := &st.plans[rank]

	ctl := st.top // top group carries the exposure
	if rank == root {
		if len(in) != blockLen*c.n {
			panic(fmt.Sprintf("gxhc: scatter in length %d, want %d", len(in), blockLen*c.n))
		}
		ctl.exposed = in
		ctl.expSeq.set(seq)
		wc.mark(-1, obs.PhaseExpose, 0)
		copy(out, in[blockLen*root:blockLen*(root+1)])
	} else if blockLen > 0 {
		c.wait(&ctl.expSeq, seq, rank, c.opBudget(ctl.spinBudget, blockLen))
		wc.markFrom(-1, obs.PhaseFlagWait, 0, ctl.leader)
		src := ctl.exposed
		copy(out, src[blockLen*rank:blockLen*(rank+1)])
	}
	wc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))

	// Hierarchical acknowledgment (converges to root, the top leader). The
	// exposure crosses group boundaries — every rank pulls from root's in —
	// so acks must be subtree-ordered: a leader collects its led groups
	// BEFORE publishing its own ack, making root's return proof that no
	// rank anywhere is still reading in.
	for i := range p.lead {
		lr := &p.lead[i]
		for s := range lr.ctl.acks {
			if s != lr.slot {
				c.wait(&lr.ctl.acks[s], seq, rank, c.opBudget(lr.ctl.spinBudget, blockLen))
			}
		}
	}
	if p.hasPull {
		p.pull.ctl.acks[p.pull.slot].set(seq)
	}
	wc.mark(-1, obs.PhaseAck, 0)
	wc.finish()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
