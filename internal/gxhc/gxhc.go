// Package gxhc is a native Go implementation of the XHC design for
// goroutine-level collectives: topology-aware hierarchical groups,
// pull-based pipelined broadcast, index-partitioned reduction, and
// single-writer synchronization (plain atomic loads/stores, no
// read-modify-write operations — the discipline the paper's Section III-E
// argues for).
//
// Unlike package core, which runs on the simulated node, gxhc coordinates
// real goroutines sharing real slices, and is usable as a standalone
// library for in-process parallel computations.
package gxhc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xhc/internal/hier"
	"xhc/internal/obs"
	"xhc/internal/topo"
)

// Config tunes a communicator.
type Config struct {
	// GroupSize is the leaf group width of the synthetic 2-level
	// hierarchy (0/1 yields a flat communicator). On a real machine a
	// sensible choice is the number of cores sharing an L3 cache.
	GroupSize int
	// ChunkBytes is the broadcast pipelining granule.
	ChunkBytes int
	// Chaos, when non-nil, seeds a deliberate synchronization bug for the
	// verify harness's mutation self-test (see ChaosConfig).
	Chaos *ChaosConfig
}

// DefaultConfig groups participants by 8 with 64 KiB chunks.
func DefaultConfig() Config { return Config{GroupSize: 8, ChunkBytes: 64 << 10} }

// Comm coordinates N participant goroutines. All participants must call
// each collective in the same order (MPI semantics).
type Comm struct {
	n   int
	cfg Config

	mu     sync.Mutex
	states map[int]*state // per root
	views  []*view

	// scratch[r] is rank r's lazily-grown internal accumulator for rooted
	// reductions (non-root leaders reduce into it instead of the user's
	// dst). Each rank only ever touches its own slot.
	scratch [][]float64
	// agBlock[r]/agSeq[r] expose rank r's allgather contribution block; the
	// op ends with barrier semantics, so a single slot per rank suffices.
	agBlock []atomic.Value // []byte
	agSeq   []atomic.Uint64

	// trace, when enabled, records per-participant phase spans on wall
	// time. Nil by default; every instrumentation point nil-checks it, so
	// the untraced path costs one pointer comparison per collective.
	trace *obs.Tracer
	// rec, when attached, receives one FlightRecord per (participant,
	// collective) — the wall-clock mirror of core's flight wiring. wcs is
	// the per-participant pool of segment clocks (each participant runs
	// one collective at a time, so recording stays allocation-free).
	rec *obs.OpRecorder
	wcs []wallClock
}

// EnableTrace attaches a wall-time span tracer (one lane per participant)
// and returns it. Call it before spawning participant goroutines; the
// clock starts at the call. Repeated calls return the same tracer.
func (c *Comm) EnableTrace() *obs.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.trace == nil {
		c.trace = obs.NewTracer("gxhc", 0, c.n, obs.WallTicksPerUS, obs.WallClock())
	}
	if c.wcs == nil {
		c.wcs = make([]wallClock, c.n)
	}
	return c.trace
}

// Tracer returns the attached tracer (nil unless EnableTrace was called).
func (c *Comm) Tracer() *obs.Tracer { return c.trace }

// AttachRecorder routes one FlightRecord per (participant, collective)
// into rec — an obs.World's recorder created with obs.WallTicksPerUS and
// obs.WallClock(). Call before spawning participant goroutines.
func (c *Comm) AttachRecorder(rec *obs.OpRecorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec = rec
	if c.wcs == nil {
		c.wcs = make([]wallClock, c.n)
	}
}

// wallClock is gxhc's segment clock, the wall-time mirror of core's
// phaseClock: consecutive marks partition one collective into phase spans,
// and finish commits the operation's flight record when a recorder is
// attached. A nil receiver is a no-op, so uninstrumented runs take no
// extra branches beyond the constructor's nil checks.
type wallClock struct {
	t   *obs.Tracer
	rec *obs.OpRecorder
	clk func() int64

	lane  int
	op    obs.OpCode
	seq   uint64
	bytes int64
	lvls  uint8
	chnks uint16

	start int64
	last  int64
	durs  [obs.NPhases]int64
}

func (c *Comm) newWallClock(rank int, op obs.OpCode, seq uint64, bytes int64, levels int) *wallClock {
	if c.trace == nil && c.rec == nil {
		return nil
	}
	clk := obs.WallClock()
	if c.trace != nil {
		clk = c.trace.Now
	} else if c.rec.Now != nil {
		clk = c.rec.Now
	}
	var wc *wallClock
	if c.wcs != nil {
		wc = &c.wcs[rank]
	} else {
		wc = &wallClock{}
	}
	now := clk()
	*wc = wallClock{
		t: c.trace, rec: c.rec, clk: clk,
		lane: rank, op: op, seq: seq, bytes: bytes, lvls: uint8(levels),
		start: now, last: now,
	}
	return wc
}

func (wc *wallClock) mark(level int, ph obs.Phase, bytes int64) {
	if wc == nil {
		return
	}
	now := wc.clk()
	if now > wc.last {
		wc.durs[ph] += now - wc.last
		if wc.t != nil {
			wc.t.Record(wc.lane, level, ph, wc.op.String(), wc.seq, wc.last, now, bytes)
		}
	}
	if ph == obs.PhaseChunkCopy && bytes > 0 && wc.chnks < ^uint16(0) {
		wc.chnks++
	}
	wc.last = now
}

func (wc *wallClock) finish() {
	if wc == nil {
		return
	}
	now := wc.clk()
	if wc.t != nil {
		wc.t.Record(wc.lane, -1, obs.PhaseCollective, wc.op.String(), wc.seq, wc.start, now, 0)
	}
	if wc.rec != nil {
		wc.rec.RecordFlight(obs.FlightRecord{
			Seq: wc.seq, Start: wc.start, End: now, Bytes: wc.bytes,
			Phase: wc.durs, Lane: int32(wc.lane), Chunks: wc.chnks,
			Levels: wc.lvls, Op: wc.op,
		})
	}
}

// view is one participant's mirror of the monotonic counters.
type view struct {
	opSeq uint64
	cum   []uint64
}

// groupCtl is the shared control block of one hierarchy group.
type groupCtl struct {
	leader int
	// ready is the leader-owned published-bytes counter (single writer).
	ready atomic.Uint64
	// expSeq announces the exposure sequence; exposed holds the leader's
	// current buffer ([]byte for Bcast, exposedF for float64 reductions —
	// atomic.Value requires consistent concrete types per slot).
	expSeq   atomic.Uint64
	exposed  atomic.Value // []byte
	exposedF atomic.Value // []float64
	// acks[m] is member m's completed-op counter (single writer each).
	acks map[int]*atomic.Uint64
	// red[m] is member m's reduction progress counter.
	red map[int]*atomic.Uint64
	// contrib[m] holds member m's exposed contribution slice.
	contrib map[int]*atomic.Value
}

type state struct {
	h      *hier.Hierarchy
	groups [][]*groupCtl
}

// New creates a communicator for n participants.
func New(n int, cfg Config) (*Comm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gxhc: need at least one participant, got %d", n)
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 64 << 10
	}
	c := &Comm{n: n, cfg: cfg, states: map[int]*state{}}
	c.views = make([]*view, n)
	c.scratch = make([][]float64, n)
	c.agBlock = make([]atomic.Value, n)
	c.agSeq = make([]atomic.Uint64, n)
	if _, err := c.stateFor(0); err != nil {
		return nil, err
	}
	return c, nil
}

// MustNew panics on error.
func MustNew(n int, cfg Config) *Comm {
	c, err := New(n, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of participants.
func (c *Comm) N() int { return c.n }

// synthetic topology: one socket, ceil(n/groupSize) "NUMA" groups.
func (c *Comm) buildHierarchy(root int) (*hier.Hierarchy, error) {
	gs := c.cfg.GroupSize
	var sens hier.Sensitivity
	if gs > 1 && gs < c.n {
		sens = hier.Sensitivity{hier.DomainNUMA}
	}
	groups := (c.n + max(gs, 1) - 1) / max(gs, 1)
	if groups < 1 {
		groups = 1
	}
	t, err := topo.New(topo.Config{
		Name: "gxhc", Arch: "go",
		Sockets: 1, NUMAPerSocket: groups, CoresPerNUMA: max(gs, 1),
	})
	if err != nil {
		return nil, err
	}
	m, err := t.Map(topo.MapCore, c.n)
	if err != nil {
		return nil, err
	}
	return hier.Build(t, m, sens, root)
}

func (c *Comm) stateFor(root int) (*state, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.states[root]; ok {
		return st, nil
	}
	h, err := c.buildHierarchy(root)
	if err != nil {
		return nil, err
	}
	st := &state{h: h}
	for l := 0; l < h.NLevels(); l++ {
		var lvl []*groupCtl
		for gi := range h.GroupsAt(l) {
			g := &h.GroupsAt(l)[gi]
			ctl := &groupCtl{
				leader:  g.Leader,
				acks:    map[int]*atomic.Uint64{},
				red:     map[int]*atomic.Uint64{},
				contrib: map[int]*atomic.Value{},
			}
			for _, m := range g.Members {
				ctl.acks[m] = &atomic.Uint64{}
				ctl.red[m] = &atomic.Uint64{}
				ctl.contrib[m] = &atomic.Value{}
			}
			lvl = append(lvl, ctl)
		}
		st.groups = append(st.groups, lvl)
	}
	if c.views[0] == nil {
		for r := 0; r < c.n; r++ {
			c.views[r] = &view{cum: make([]uint64, 8)}
		}
	}
	c.states[root] = st
	return st, nil
}

// spinUntil polls an atomic counter with cooperative yielding and capped
// exponential backoff. A short pure spin covers the common low-latency
// case; after that every probe yields, and sustained waiting falls back to
// sleeping. The previous version yielded only every 64th probe and never
// slept, which starved the counter's writer when participants outnumber
// GOMAXPROCS: spinning goroutines held every P for whole scheduler quanta
// and progress slowed to the preemption rate (or stopped).
func spinUntil(a *atomic.Uint64, v uint64) uint64 {
	for i := 0; ; i++ {
		got := a.Load()
		if got >= v {
			return got
		}
		switch {
		case i < 32:
			// Tight spin: value is usually already (or imminently) there.
		case i < 4096:
			runtime.Gosched()
		default:
			shift := (i - 4096) / 1024
			if shift > 6 {
				shift = 6 // cap backoff at 64us to bound wakeup latency
			}
			time.Sleep(time.Microsecond << shift)
		}
	}
}

func (st *state) groupOf(l, rank int) *groupCtl {
	g, ok := st.h.GroupOf(l, rank)
	if !ok {
		return nil
	}
	return st.groups[l][g.Index]
}

func (st *state) pullLevel(rank int) int {
	pl := -1
	for l := 0; l < st.h.NLevels(); l++ {
		if _, ok := st.h.GroupOf(l, rank); !ok {
			break
		}
		if !st.h.IsLeader(l, rank) {
			pl = l
		}
	}
	return pl
}

func (st *state) leadLevels(rank int) []int {
	var out []int
	for l := 0; l < st.h.NLevels(); l++ {
		if st.h.IsLeader(l, rank) {
			out = append(out, l)
		} else {
			break
		}
	}
	return out
}

// Bcast distributes root's buf contents to every participant's buf. All
// participants must pass equally sized buffers.
func (c *Comm) Bcast(rank int, buf []byte, root int) {
	st, err := c.stateFor(root)
	if err != nil {
		panic(err)
	}
	v := c.views[rank]
	v.opSeq++
	n := len(buf)
	wc := c.newWallClock(rank, obs.OpBcast, v.opSeq, int64(n), st.h.NLevels())

	lead := st.leadLevels(rank)
	pl := st.pullLevel(rank)

	for _, l := range lead {
		ctl := st.groupOf(l, rank)
		ctl.exposed.Store(buf)
		ctl.expSeq.Store(v.opSeq)
	}
	wc.mark(-1, obs.PhaseExpose, 0)
	if rank == root {
		for _, l := range lead {
			st.groupOf(l, rank).ready.Store(v.cum[l] + uint64(n))
		}
		wc.mark(-1, obs.PhaseChunkCopy, int64(n))
	} else if n > 0 {
		ctl := st.groupOf(pl, rank)
		spinUntil(&ctl.expSeq, v.opSeq)
		src := ctl.exposed.Load().([]byte)
		wc.mark(pl, obs.PhaseFlagWait, 0)
		base := v.cum[pl]
		copied := 0
		for copied < n {
			var avail int
			if c.cfg.Chaos != nil && c.cfg.Chaos.StaleReady {
				// Mutation: skip the ready wait and trust the exposure.
				avail = n
			} else {
				want := copied + min(c.cfg.ChunkBytes, n-copied)
				avail = int(spinUntil(&ctl.ready, base+uint64(want)) - base)
				if avail > n {
					avail = n
				}
			}
			wc.mark(pl, obs.PhaseFlagWait, 0)
			before := copied
			copy(buf[copied:avail], src[copied:avail])
			copied = avail
			for _, l := range lead {
				st.groupOf(l, rank).ready.Store(v.cum[l] + uint64(copied))
			}
			wc.mark(pl, obs.PhaseChunkCopy, int64(copied-before))
		}
	}

	// Hierarchical acknowledgment.
	if pl >= 0 {
		st.groupOf(pl, rank).acks[rank].Store(v.opSeq)
	}
	for _, l := range lead {
		ctl := st.groupOf(l, rank)
		for m, a := range ctl.acks {
			if m != rank {
				spinUntil(a, v.opSeq)
			}
		}
	}
	wc.mark(-1, obs.PhaseAck, 0)
	for l := range v.cum {
		v.cum[l] += uint64(n)
	}
	wc.finish()
}

// AllreduceFloat64 sums src element-wise across all participants into
// every participant's dst (len(dst) == len(src) everywhere). The reduction
// is hierarchical with index partitioning among group members.
func (c *Comm) AllreduceFloat64(rank int, dst, src []float64) {
	c.reduceFloat64(rank, dst, src, 0, true)
}

// ReduceFloat64 sums src element-wise across all participants into root's
// dst only. Non-root ranks' dst arguments are ignored (internal scratch
// accumulators are used at non-root leaders), but every rank must pass a
// src of the same length.
func (c *Comm) ReduceFloat64(rank int, dst, src []float64, root int) {
	c.reduceFloat64(rank, dst, src, root, false)
}

// reduceFloat64 is the shared body of AllreduceFloat64/ReduceFloat64: a
// hierarchical index-partitioned reduction toward the top leader (which is
// root, since the hierarchy is root-following), optionally followed by the
// pull-based broadcast of the result.
func (c *Comm) reduceFloat64(rank int, dst, src []float64, root int, bcast bool) {
	if bcast && len(dst) != len(src) {
		panic("gxhc: dst/src length mismatch")
	}
	st, err := c.stateFor(root)
	if err != nil {
		panic(err)
	}
	v := c.views[rank]
	v.opSeq++
	n := len(src)
	opCode := obs.OpAllreduce
	if !bcast {
		opCode = obs.OpReduce
	}
	wc := c.newWallClock(rank, opCode, v.opSeq, int64(n)*8, st.h.NLevels())

	lead := st.leadLevels(rank)
	pl := st.pullLevel(rank)

	// The accumulator of a leader is its result buffer: dst for allreduce
	// (and for the root in reduce); internal scratch otherwise.
	acc := dst
	if !bcast && rank != root && len(lead) > 0 {
		if len(c.scratch[rank]) < n {
			c.scratch[rank] = make([]float64, n)
		}
		acc = c.scratch[rank][:n]
	}

	// Expose contributions: src at the leaf level, acc (accumulator) above.
	if pl >= 0 {
		ctl := st.groupOf(pl, rank)
		contrib := src
		if pl > 0 {
			contrib = acc
		}
		ctl.contrib[rank].Store(contrib)
	}
	for _, l := range lead {
		ctl := st.groupOf(l, rank)
		contrib := acc
		if l == 0 {
			contrib = src
		}
		ctl.contrib[rank].Store(contrib)
		ctl.exposedF.Store(acc) // accumulator for reducers
		ctl.expSeq.Store(v.opSeq)
	}
	// Leaf contributions are ready immediately.
	gs0 := st.groupOf(0, rank)
	gs0.red[rank].Store(v.opSeq * 2) // phase counter: 2k = ready, 2k+1 unused
	wc.mark(-1, obs.PhaseExpose, 0)

	// Bottom-up walk. A rank first completes its duties as a leader of
	// the levels below (wait for the group's reducers, then publish its
	// own contribution readiness one level up), and only then performs
	// its reduction share at its pull level — mirroring the dependency
	// order of the simulated implementation.
	for _, l := range lead {
		ctl := st.groupOf(l, rank)
		g, _ := st.h.GroupOf(l, rank)
		if l == 0 && len(g.Members) == 1 {
			// Singleton leaf group: the accumulator takes the leader's own
			// contribution directly.
			copy(acc, src)
		}
		for _, m := range g.Members {
			if m == rank {
				continue
			}
			spinUntil(ctl.red[m], v.opSeq*2+1)
		}
		if l+1 < st.h.NLevels() {
			st.groupOf(l+1, rank).red[rank].Store(v.opSeq * 2)
		}
	}
	wc.mark(-1, obs.PhaseFlagWait, 0)
	if pl >= 0 && !st.h.IsLeader(pl, rank) {
		ctl := st.groupOf(pl, rank)
		// Partition [0,n) among non-leader members.
		g, _ := st.h.GroupOf(pl, rank)
		var reducers []int
		for _, m := range g.Members {
			if m != ctl.leader {
				reducers = append(reducers, m)
			}
		}
		idx := 0
		for i, m := range reducers {
			if m == rank {
				idx = i
				break
			}
		}
		lo := n * idx / len(reducers)
		hi := n * (idx + 1) / len(reducers)
		if hi > lo {
			spinUntil(&ctl.expSeq, v.opSeq)
			acc := ctl.exposedF.Load().([]float64)
			// Wait for every member's contribution to be ready.
			for _, m := range g.Members {
				spinUntil(ctl.red[m], v.opSeq*2)
			}
			wc.mark(pl, obs.PhaseFlagWait, 0)
			leaderContrib := ctl.contrib[ctl.leader].Load().([]float64)
			if &leaderContrib[0] != &acc[0] {
				copy(acc[lo:hi], leaderContrib[lo:hi])
			}
			for _, m := range g.Members {
				if m == ctl.leader {
					continue
				}
				mc := ctl.contrib[m].Load().([]float64)
				for i := lo; i < hi; i++ {
					acc[i] += mc[i]
				}
			}
			wc.mark(pl, obs.PhaseReduceSlice, int64(hi-lo)*8)
		}
		// Signal slice completion (phase 2k+1).
		ctl.red[rank].Store(v.opSeq*2 + 1)
	}

	// Broadcast the result from the top leader (rank 0's dst for allreduce;
	// a rooted reduce skips the distribution — and therefore leaves the
	// ready counters and their cum mirrors untouched).
	if bcast {
		top := st.h.TopLeader()
		if rank == top {
			for _, l := range lead {
				st.groupOf(l, rank).ready.Store(v.cum[l] + uint64(n))
			}
		} else if n > 0 {
			// n == 0 publishes nothing, so the ready counter cannot order this
			// pull against the leader's expose; skip it — there is no data.
			ctl := st.groupOf(pl, rank)
			base := v.cum[pl]
			spinUntil(&ctl.ready, base+uint64(n))
			wc.mark(pl, obs.PhaseFlagWait, 0)
			final := ctl.exposedF.Load().([]float64)
			if &dst[0] != &final[0] {
				copy(dst, final)
			}
			for _, l := range lead {
				st.groupOf(l, rank).ready.Store(v.cum[l] + uint64(n))
			}
			wc.mark(pl, obs.PhaseChunkCopy, int64(n)*8)
		}
	}

	// A rooted reduce has no broadcast release ordering a member's return
	// after the group fan-in: a sibling reducer may still be reading this
	// rank's contribution (src, or the scratch accumulator) when the caller
	// refills it for the next op. Hold until every co-reducer in the pull
	// group has finished its slice. Allreduce needs none of this — the
	// result broadcast already orders every return after the full fan-in.
	if !bcast && pl >= 0 {
		ctl := st.groupOf(pl, rank)
		g, _ := st.h.GroupOf(pl, rank)
		for _, m := range g.Members {
			if m != rank && m != ctl.leader {
				spinUntil(ctl.red[m], v.opSeq*2+1)
			}
		}
	}

	// Acknowledgment + counter advance.
	if pl >= 0 {
		ctl := st.groupOf(pl, rank)
		ctl.acks[rank].Store(v.opSeq)
	}
	for _, l := range lead {
		ctl := st.groupOf(l, rank)
		for m, a := range ctl.acks {
			if m != rank {
				spinUntil(a, v.opSeq)
			}
		}
	}
	wc.mark(-1, obs.PhaseAck, 0)
	if bcast {
		for l := range v.cum {
			v.cum[l] += uint64(n)
		}
	}
	wc.finish()
}

// Barrier blocks until every participant has arrived.
func (c *Comm) Barrier(rank int) {
	st, _ := c.stateFor(0)
	v := c.views[rank]
	v.opSeq++
	wc := c.newWallClock(rank, obs.OpBarrier, v.opSeq, 0, st.h.NLevels())
	c.barrierBody(st, v, rank, wc)
	wc.finish()
}

// barrierBody is the hierarchical arrival/release round: arrival propagates
// up via the ack counters, release propagates down via the ready counters,
// consuming one token on every level's cum mirror. Used by Barrier and as
// Allgather's exit synchronization (no participant may return — and reuse
// its exposed contribution — before every other participant has read it).
func (c *Comm) barrierBody(st *state, v *view, rank int, wc *wallClock) {
	lead := st.leadLevels(rank)
	pl := st.pullLevel(rank)
	for _, l := range lead {
		ctl := st.groupOf(l, rank)
		for m, a := range ctl.acks {
			if m != rank {
				spinUntil(a, v.opSeq)
			}
		}
	}
	if pl >= 0 {
		ctl := st.groupOf(pl, rank)
		ctl.acks[rank].Store(v.opSeq)
		spinUntil(&ctl.ready, v.cum[pl]+1)
	}
	for i := len(lead) - 1; i >= 0; i-- {
		ctl := st.groupOf(lead[i], rank)
		ctl.ready.Store(v.cum[lead[i]] + 1)
	}
	for l := range v.cum {
		v.cum[l]++
	}
	wc.mark(-1, obs.PhaseFlagWait, 0)
}

// Allgather concatenates every participant's in block into each
// participant's out buffer in rank order (len(out) == N*len(in), with equal
// block lengths everywhere). Each participant exposes its block and copies
// every peer's block directly; the op ends with barrier semantics so no
// participant can republish (or let its caller reuse) a block that a slower
// peer is still reading.
func (c *Comm) Allgather(rank int, in, out []byte) {
	blockLen := len(in)
	if len(out) != blockLen*c.n {
		panic(fmt.Sprintf("gxhc: allgather out length %d, want %d", len(out), blockLen*c.n))
	}
	st, _ := c.stateFor(0)
	v := c.views[rank]
	v.opSeq++
	wc := c.newWallClock(rank, obs.OpAllgather, v.opSeq, int64(blockLen), st.h.NLevels())

	c.agBlock[rank].Store(in)
	c.agSeq[rank].Store(v.opSeq)
	wc.mark(-1, obs.PhaseExpose, 0)
	for r := 0; r < c.n; r++ {
		if r == rank {
			copy(out[blockLen*r:blockLen*(r+1)], in)
			continue
		}
		spinUntil(&c.agSeq[r], v.opSeq)
		blk := c.agBlock[r].Load().([]byte)
		copy(out[blockLen*r:blockLen*(r+1)], blk)
	}
	wc.mark(-1, obs.PhaseChunkCopy, int64(blockLen*c.n))
	c.barrierBody(st, v, rank, wc)
	wc.finish()
}

// Scatter distributes blockLen-byte blocks from root's in buffer (N
// consecutive blocks in rank order, only meaningful at root) to each
// participant's out. The root's exposure rides on the top group's control
// block; the hierarchical ack keeps root from returning — and its caller
// from reusing in — before every block has been pulled.
func (c *Comm) Scatter(rank int, in, out []byte, root int) {
	st, err := c.stateFor(root)
	if err != nil {
		panic(err)
	}
	v := c.views[rank]
	v.opSeq++
	blockLen := len(out)
	wc := c.newWallClock(rank, obs.OpScatter, v.opSeq, int64(blockLen), st.h.NLevels())

	ctl := st.groups[st.h.NLevels()-1][0] // top group carries the exposure
	if rank == root {
		if len(in) != blockLen*c.n {
			panic(fmt.Sprintf("gxhc: scatter in length %d, want %d", len(in), blockLen*c.n))
		}
		ctl.exposed.Store(in)
		ctl.expSeq.Store(v.opSeq)
		wc.mark(-1, obs.PhaseExpose, 0)
		copy(out, in[blockLen*root:blockLen*(root+1)])
	} else if blockLen > 0 {
		spinUntil(&ctl.expSeq, v.opSeq)
		wc.mark(-1, obs.PhaseFlagWait, 0)
		src := ctl.exposed.Load().([]byte)
		copy(out, src[blockLen*rank:blockLen*(rank+1)])
	}
	wc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))

	// Hierarchical acknowledgment (converges to root, the top leader). The
	// exposure crosses group boundaries — every rank pulls from root's in —
	// so acks must be subtree-ordered: a leader collects its led groups
	// BEFORE publishing its own ack, making root's return proof that no
	// rank anywhere is still reading in.
	for _, l := range st.leadLevels(rank) {
		ctl := st.groupOf(l, rank)
		for m, a := range ctl.acks {
			if m != rank {
				spinUntil(a, v.opSeq)
			}
		}
	}
	if pl := st.pullLevel(rank); pl >= 0 {
		st.groupOf(pl, rank).acks[rank].Store(v.opSeq)
	}
	wc.mark(-1, obs.PhaseAck, 0)
	wc.finish()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
