package gxhc

import "testing"

// TestSpinBudgetPolicy pins the group-size-aware spin budget. The policy —
// not a timing measurement — is the regression test for the P2 barrier
// parking cliff: small fan-ins must get a budget large enough that tiny
// ops on undersubscribed or lightly time-sliced machines stay in the
// yielding spin phase instead of paying a scheduler handoff per op, and
// the budget must shrink monotonically to the floor as groups widen (a
// wide group's tail waiter parking once is cheaper than it yielding
// through the whole fan-in).
func TestSpinBudgetPolicy(t *testing.T) {
	cases := []struct {
		fanin int
		want  int
	}{
		{1, spinProbes * spinScaleMax},
		{2, spinProbes * spinScaleMax},
		{4, spinProbes * 4},
		{8, spinProbes * 2}, // the regressed P2/P8 np=8 flat-group shape
		{16, spinProbes},
		{256, spinProbes},
		{1024, spinProbes},
		{0, spinProbes * spinScaleMax}, // degenerate inputs clamp, not panic
		{-3, spinProbes * spinScaleMax},
	}
	for _, c := range cases {
		if got := spinBudgetFor(c.fanin); got != c.want {
			t.Errorf("spinBudgetFor(%d) = %d, want %d", c.fanin, got, c.want)
		}
	}
	// Monotone non-increasing in fan-in, never below the parking floor.
	prev := spinBudgetFor(1)
	for f := 2; f <= 4096; f++ {
		b := spinBudgetFor(f)
		if b > prev {
			t.Fatalf("spinBudgetFor(%d) = %d > spinBudgetFor(%d) = %d", f, b, f-1, prev)
		}
		if b < spinProbes {
			t.Fatalf("spinBudgetFor(%d) = %d below floor %d", f, b, spinProbes)
		}
		prev = b
	}
}

// TestOpBudgetPolicy pins the payload cutoff: the fan-in-scaled budget
// applies only to small/control ops; once an op moves bulk data the wait
// drops to the parking floor, because yield-spinning through a
// tens-of-microseconds chunk copy steals scheduler slices from the writer
// (measured 2x on oversubscribed 1 MiB broadcasts).
func TestOpBudgetPolicy(t *testing.T) {
	wide := spinBudgetFor(2)
	cases := []struct {
		nbytes, want int
	}{
		{0, wide},                  // barrier/acks on empty ops
		{64, wide},                 // latency-bound
		{spinLargeBytes - 1, wide}, // still small
		{spinLargeBytes, spinProbes},
		{1 << 20, spinProbes}, // bandwidth-bound
	}
	for _, c := range cases {
		if got := opBudget(wide, c.nbytes); got != c.want {
			t.Errorf("opBudget(%d, %d) = %d, want %d", wide, c.nbytes, got, c.want)
		}
	}
}

// TestGroupCtlBudgetWiring checks the budget actually reaches the control
// blocks: a flat 8-rank communicator's single group must carry the
// 8-fan-in budget, and allgather's whole-communicator flags the n-fan-in
// one.
func TestGroupCtlBudgetWiring(t *testing.T) {
	c, err := New(8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.stateFor(0)
	if err != nil {
		t.Fatal(err)
	}
	for l, lvl := range st.groups {
		for gi, ctl := range lvl {
			if want := spinBudgetFor(len(ctl.members)); ctl.spinBudget != want {
				t.Errorf("level %d group %d: spinBudget %d, want %d (fanin %d)",
					l, gi, ctl.spinBudget, want, len(ctl.members))
			}
		}
	}
	if want := spinBudgetFor(8); c.agBudget != want {
		t.Errorf("agBudget %d, want %d", c.agBudget, want)
	}
}
