package gxhc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

const cacheLine = 64

// Waiter tuning: tightProbes polls without yielding (the value is usually
// already, or imminently, there); after that every probe yields the
// processor, up to a budget that scales with the waited-on group's fan-in
// (spinBudgetFor). Only after both phases does a waiter park on the flag's
// wait queue (or, with Config.Spin, fall back to the legacy spin/sleep
// backoff).
const (
	tightProbes = 32
	spinProbes  = 192
	// spinScaleRef and spinScaleMax tune spinBudgetFor: the budget is
	// spinProbes * clamp(spinScaleRef/fanin, 1, spinScaleMax). The scale
	// is deliberately modest — the spin phase's wall-time span must stay
	// well under a scheduler timeslice, because a spinning waiter that
	// outlasts one holds its OS thread busy through exactly the kernel
	// rotation that would have run the straggler it is waiting for
	// (measured as multi-millisecond single-op stalls at 32x budgets on
	// an oversubscribed host, against microsecond parking handoffs).
	spinScaleRef = 16
	spinScaleMax = 8
)

// spinBudgetFor returns the yielding-probe budget a waiter gets before it
// parks, as a function of the group fan-in it is synchronizing with. The
// budget shrinks with fan-in: in a small group the expected wait is a
// handful of peers' store latencies, so staying in the spin phase (whose
// yields keep an oversubscribed writer schedulable) beats paying the
// parking handoff's scheduler wakeup on every tiny op — the P2 barrier
// regression this replaces the `-spin` workaround for. In a wide group the
// tail waiter would burn a core (or, time-sliced, everyone else's slice)
// for the whole fan-in, so it parks after a modest budget and the writer's
// wake pays the handoff once.
//
// fanin <= 2: 8x spinProbes; halves with each doubling; >= 16: 1x.
func spinBudgetFor(fanin int) int {
	return spinBudget(spinProbes, spinScaleMax, fanin)
}

// spinBudget is the parameterized policy behind spinBudgetFor: probes is
// the budget unit (Config.SpinProbes), scaleMax caps the small-fan-in
// multiplier (Config.SpinScaleMax). The package-level constants remain the
// default policy; a communicator's live policy goes through the Comm
// methods below so an online tuner can move it (tuning.go).
func spinBudget(probes, scaleMax, fanin int) int {
	if fanin < 1 {
		fanin = 1
	}
	scale := spinScaleRef / fanin
	if scale < 1 {
		scale = 1
	} else if scale > scaleMax {
		scale = scaleMax
	}
	return probes * scale
}

// spinBudgetFor is spinBudgetFor under the communicator's live spin knobs.
func (c *Comm) spinBudgetFor(fanin int) int {
	return spinBudget(c.cfg.SpinProbes, c.cfg.SpinScaleMax, fanin)
}

// opBudget is the package opBudget under the communicator's live knobs:
// the bulk-payload floor tracks Config.SpinProbes.
func (c *Comm) opBudget(base, nbytes int) int {
	if nbytes >= spinLargeBytes {
		return c.cfg.SpinProbes
	}
	return base
}

// spinLargeBytes is the payload size above which an op's flag waits drop
// to the parking floor regardless of fan-in. The fan-in-scaled budget
// models control-dominated ops whose expected wait is a few peer store
// latencies; once an op moves bulk data, a waiter is waiting for chunk
// copies/reductions measured in tens of microseconds, and yield-spinning
// through those steals scheduler slices from the very writer it is
// waiting on (measured 2x on oversubscribed 1 MiB broadcasts).
const spinLargeBytes = 32 << 10

// opBudget selects the spin budget for one op: the group's fan-in-scaled
// budget when the payload is small, the parking floor when the op moves
// bulk data. Barriers have no payload of their own and pass the rank's
// previous data-op size instead (viewSlot.lastBytes): a barrier right
// after a bulk op is waiting on stragglers still moving that payload, and
// its early finishers yield-storming through the copies is the same
// slice-stealing the payload cutoff exists to prevent.
func opBudget(base, nbytes int) int {
	if nbytes >= spinLargeBytes {
		return spinProbes
	}
	return base
}

// flagLine is one monotonic synchronization counter laid out so that its
// single writer never false-shares with anything else: the hot half (the
// counter plus the parked indicator) fills one cache line, and the cold
// parking half (mutex + waiter list, touched only when someone actually
// parks) fills a second. Dense arrays of flagLines replace the old
// map[int]*atomic.Uint64 control maps: `acks[slot]`, `red[slot]` — one
// 128-byte record per member slot, one writer per record, array indexing
// instead of map lookups on the hot path.
//
// The counter is single-writer (plain store, no read-modify-write), the
// discipline the paper's Section III-E argues for; waking parked readers
// needs no RMW on the flag itself either — the writer re-checks the parked
// indicator after publishing, and the waiter re-checks the value after
// publishing its parked indicator (the Dekker store/load handshake), so a
// wakeup can never be missed.
type flagLine struct {
	v      atomic.Uint64
	parked atomic.Uint32
	_      [cacheLine - 12]byte
	cold   flagCold
}

// flagCold is the parking half of a flagLine: only touched once a waiter
// has exhausted its spin budget, so it lives on its own line and keeps the
// mutex off the counter's line. The wait queue is an intrusive singly
// linked list of per-rank parkNodes — registration pushes a node the rank
// already owns, so parking never allocates, not even the first time a
// given flag sees a parked waiter.
type flagCold struct {
	mu   sync.Mutex
	head *parkNode
	_    [cacheLine - 16]byte
}

// parkNode is one rank's wait-queue entry, allocated once at New. The
// one-token channel is what the rank blocks on; next links it into the
// flag it is currently parked under. A rank waits on at most one flag at
// a time, and the node is always unlinked before the rank's wait returns
// (either by the waker detaching the whole list, or by the waiter's own
// early-exit unlink), so one node per rank suffices.
type parkNode struct {
	ch   chan struct{}
	next *parkNode
}

func (f *flagLine) load() uint64 { return f.v.Load() }

// set publishes v. flagLine counters are single-writer and monotonic, so a
// plain atomic store suffices; the parked re-check after the store is the
// writer's half of the Dekker handshake with wait.
func (f *flagLine) set(v uint64) {
	f.v.Store(v)
	if f.parked.Load() != 0 {
		f.wake()
	}
}

// wake hands one token to every parked node and detaches the whole list.
// Tokens are non-blocking sends into each waiter's buffered park channel:
// a waiter that already gave up and unlinked itself merely collects a
// stale token, which its next wait drains before re-registering. Every
// node is detached (next cleared) before its token is sent, preserving
// the invariant that a node whose owner is runnable is on no list.
func (f *flagLine) wake() {
	c := &f.cold
	c.mu.Lock()
	f.parked.Store(0)
	for n := c.head; n != nil; {
		nx := n.next
		n.next = nil
		select {
		case n.ch <- struct{}{}:
		default:
		}
		n = nx
	}
	c.head = nil
	c.mu.Unlock()
}

// unlink removes n from f's wait queue if it is still there (the waker may
// have detached the whole list concurrently — then there is nothing to
// do, and the stale token it sent is drained by n's next wait).
func (f *flagLine) unlink(n *parkNode) {
	c := &f.cold
	c.mu.Lock()
	for p := &c.head; *p != nil; p = &(*p).next {
		if *p == n {
			*p = n.next
			n.next = nil
			break
		}
	}
	c.mu.Unlock()
}

// wait blocks rank until f reaches at least v and returns the observed
// value. Phase 1 spins (bounded by budget, from spinBudgetFor of the
// group's fan-in), phase 2 parks on the flag's wait queue — unless the
// communicator was configured with Spin, in which case it falls back to
// spinUntil's yield/sleep backoff (the escape hatch for latency-bound
// small ops on machines with a core per participant).
func (c *Comm) wait(f *flagLine, v uint64, rank, budget int) uint64 {
	for i := 0; i < budget; i++ {
		if got := f.v.Load(); got >= v {
			return got
		}
		if i >= tightProbes {
			runtime.Gosched()
		}
	}
	if c.cfg.Spin {
		return spinUntil(&f.v, v)
	}
	n := &c.park[rank]
	for {
		// Drain a stale token left by an earlier wait that was satisfied
		// between registering and parking.
		select {
		case <-n.ch:
		default:
		}
		cold := &f.cold
		cold.mu.Lock()
		if got := f.v.Load(); got >= v {
			cold.mu.Unlock()
			return got
		}
		n.next = cold.head
		cold.head = n
		f.parked.Store(1)
		cold.mu.Unlock()
		// Dekker re-check: the writer may have stored the value before it
		// loaded our parked indicator. It re-reads parked after its store;
		// we re-read the value after publishing parked — at least one side
		// must see the other. On this early exit the node must be taken
		// back off the queue (a rank's single node may not be left behind
		// on a flag it is no longer waiting on).
		if got := f.v.Load(); got >= v {
			f.unlink(n)
			return got
		}
		<-n.ch
		// The only sender is wake, which detaches every node before
		// handing it a token, so the node is off the list here.
		if got := f.v.Load(); got >= v {
			return got
		}
	}
}

// spinUntil polls an atomic counter with cooperative yielding and capped
// exponential backoff — the Config.Spin waiter. A short pure spin covers
// the common low-latency case; after that every probe yields, and sustained
// waiting falls back to sleeping. The original version yielded only every
// 64th probe and never slept, which starved the counter's writer when
// participants outnumber GOMAXPROCS; the parking waiter (Comm.wait) removes
// even the capped sleep's wakeup-latency cliff.
func spinUntil(a *atomic.Uint64, v uint64) uint64 {
	for i := 0; ; i++ {
		got := a.Load()
		if got >= v {
			return got
		}
		switch {
		case i < 32:
			// Tight spin: value is usually already (or imminently) there.
		case i < 4096:
			runtime.Gosched()
		default:
			shift := (i - 4096) / 1024
			if shift > 6 {
				shift = 6 // cap backoff at 64us to bound wakeup latency
			}
			time.Sleep(time.Microsecond << shift)
		}
	}
}
