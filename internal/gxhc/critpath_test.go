package gxhc

import (
	"testing"

	"xhc/internal/obs"
)

// TestCritBlameSumWallClock is the gxhc half of the blame-sum gate. Wall
// clocks cannot promise the virtual-time exactness (the umbrella closes a
// couple of clock reads after the last mark), so the bound is one-sided
// and tolerance-checked: per-edge blame never exceeds the measured
// critical-lane latency, and covers most of it.
func TestCritBlameSumWallClock(t *testing.T) {
	const n, iters, payload = 8, 20, 4096
	cfg := DefaultConfig()
	cfg.GroupSize = 3 // two hierarchy levels
	c, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(false)
	wo := reg.NewWorld("gxhc", n, obs.WallTicksPerUS, obs.WallClock())
	wo.Rec.SetQuiesceDumps(true) // a GC pause mid-run may look like a straggler
	c.AttachRecorder(wo.Rec)

	bufs := make([][]byte, n)
	for r := range bufs {
		bufs[r] = make([]byte, payload)
	}
	done := make(chan struct{}, n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer func() { done <- struct{}{} }()
			for it := 0; it < iters; it++ {
				c.Bcast(rank, bufs[rank], 0)
			}
		}(r)
	}
	for k := 0; k < n; k++ {
		<-done
	}
	wo.Rec.FlushDetector()

	blame, total, ops := wo.Rec.CritTicks()
	if ops < iters/2 {
		t.Fatalf("crit ops = %d, want >= %d (too many steps dropped)", ops, iters/2)
	}
	if total <= 0 {
		t.Fatal("no critical-lane latency accumulated")
	}
	var intra int64
	for e := obs.EdgeExpose; e <= obs.EdgeAck; e++ {
		intra += blame[e]
	}
	if intra <= 0 || intra > total {
		t.Fatalf("intra-node blame %d ticks outside (0, total=%d] — wall-clock marks can only undershoot", intra, total)
	}
	if cov := float64(intra) / float64(total); cov < 0.5 {
		t.Errorf("blame covers %.0f%% of the critical-lane latency, want >= 50%%", 100*cov)
	}
}
