//go:build !race

package gxhc

const raceEnabled = false
