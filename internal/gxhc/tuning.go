package gxhc

import (
	"fmt"
	"sync"
)

// Tuning is the subset of Config an online tuner may change on a live
// communicator (DESIGN.md §17). Knobs fixed at construction (GroupSize —
// it shapes the hierarchy — and the Spin escape hatch) are absent.
//
// Field conventions, mirroring core.Tuning:
//
//   - ChunkBytes: <= 0 keeps the current pipelining granule.
//   - FuseBytes: negative keeps; 0 disables request fusion; positive sets
//     the fusable-payload cap (gxhc staging buffers grow on demand, so no
//     upper clamp is needed).
//   - SpinProbes / SpinScaleMax: <= 0 keeps; positive replaces the waiter
//     budget unit / small-fan-in multiplier cap, recomputing every built
//     group's spin budget in place.
type Tuning struct {
	ChunkBytes   int
	FuseBytes    int
	SpinProbes   int
	SpinScaleMax int
}

// KeepTuning returns the Tuning that changes nothing.
func KeepTuning() Tuning { return Tuning{FuseBytes: -1} }

// rendezvous is a reusable sense-reversing barrier over the communicator's
// n participants. Unlike the collective Barrier it reads none of the
// tunable knobs (its state is just the mutex-guarded count/generation
// pair), and the mutex/cond handshake gives any store performed by the
// last arriver of one phase a happens-before edge to every rank's return
// from the next — exactly what publishing a retuned plan needs.
type rendezvous struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	gen   uint64
}

// arrive blocks until n participants have arrived, then releases them all.
func (rv *rendezvous) arrive(n int) {
	rv.mu.Lock()
	gen := rv.gen
	rv.count++
	if rv.count == n {
		rv.count = 0
		rv.gen++
		rv.cond.Broadcast()
		rv.mu.Unlock()
		return
	}
	for rv.gen == gen {
		rv.cond.Wait()
	}
	rv.mu.Unlock()
}

// ApplyTuning installs t at a safe operation boundary. It is a collective:
// every rank must call it at the same point in its operation sequence,
// outside any non-blocking window (panics if the calling rank has requests
// in flight, and again on rank 0 if any rank does — the worker goroutines
// must be drained before the knobs they read can move). Internally the
// communicator quiesces through a dedicated rendezvous: no rank starts a
// post-tuning operation until rank 0 has applied the plan, and rank 0
// applies it only once every rank has arrived, so every operation runs
// under exactly one plan and no op body races a knob store.
func (c *Comm) ApplyTuning(rank int, t Tuning) {
	c.Retune(rank, func() Tuning { return t })
}

// Retune is ApplyTuning with the plan decided inside the quiesced window:
// f runs on rank 0 after every rank has arrived (free to read telemetry —
// nothing is in flight) and the Tuning it returns is applied before any
// rank proceeds.
func (c *Comm) Retune(rank int, f func() Tuning) {
	if p := c.nb[rank].pending.Load(); p != 0 {
		panic(fmt.Sprintf("gxhc: Retune on rank %d inside a non-blocking window (%d requests in flight)", rank, p))
	}
	c.tuneGate.arrive(c.n)
	if rank == 0 {
		if in := c.inflight.Load(); in != 0 {
			panic(fmt.Sprintf("gxhc: Retune with %d requests in flight across the communicator", in))
		}
		c.applyTuning(f())
	}
	c.tuneGate.arrive(c.n)
}

// applyTuning mutates the live knobs. Runs on rank 0 only, with every
// other rank parked in the closing rendezvous arrive and every request
// worker drained (inflight == 0), so the plain stores race nothing; the
// rendezvous publishes them to the ranks, and the request queue's channel
// send/receive publishes them to any worker that runs afterwards.
func (c *Comm) applyTuning(t Tuning) {
	if t.ChunkBytes > 0 {
		c.cfg.ChunkBytes = t.ChunkBytes
	}
	switch {
	case t.FuseBytes < 0:
		// keep
	case t.FuseBytes == 0:
		c.fuseMax = 0
	default:
		c.fuseMax = t.FuseBytes
	}
	spinChanged := false
	if t.SpinProbes > 0 && t.SpinProbes != c.cfg.SpinProbes {
		c.cfg.SpinProbes = t.SpinProbes
		spinChanged = true
	}
	if t.SpinScaleMax > 0 && t.SpinScaleMax != c.cfg.SpinScaleMax {
		c.cfg.SpinScaleMax = t.SpinScaleMax
		spinChanged = true
	}
	if spinChanged {
		// Rewrite every built state's precomputed budgets in place; states
		// built later (buildState) derive from the updated cfg directly.
		c.agBudget = c.spinBudgetFor(c.n)
		for i := range c.states {
			st := c.states[i].Load()
			if st == nil {
				continue
			}
			for _, lvl := range st.groups {
				for _, ctl := range lvl {
					ctl.spinBudget = c.spinBudgetFor(len(ctl.members))
				}
			}
		}
	}
}
