package gxhc

// ChaosConfig seeds a deliberate synchronization bug for the verify
// harness's mutation self-test (DESIGN.md Section 10). A nil Config.Chaos
// (the default) leaves the protocol untouched.
type ChaosConfig struct {
	// StaleReady makes broadcast members trust the exposure and copy
	// without waiting for the published-bytes counter — the effect of
	// reading the counter without the release/acquire ordering the
	// single-writer discipline provides. Members copy bytes their leader
	// has not written yet; caught by the data-correctness check. Note the
	// mutant introduces a genuine data race, so the self-test must not
	// run it under the race detector (which would abort the process).
	StaleReady bool
}
