package gxhc

// ChaosConfig seeds a deliberate synchronization bug for the verify
// harness's mutation self-test (DESIGN.md Section 10). A nil Config.Chaos
// (the default) leaves the protocol untouched.
type ChaosConfig struct {
	// StaleReady makes broadcast members trust the exposure and copy
	// without waiting for the published-bytes counter — the effect of
	// reading the counter without the release/acquire ordering the
	// single-writer discipline provides. Members copy bytes their leader
	// has not written yet; caught by the data-correctness check. Note the
	// mutant introduces a genuine data race, so the self-test must not
	// run it under the race detector (which would abort the process).
	StaleReady bool

	// LostProgress makes the request worker drop a completed non-blocking
	// op on the floor: the body runs, but completion is never published, so
	// Test never reports done and Wait blocks forever — the classic missing
	// progress bug. Caught by the concurrency runner's Test deadline.
	LostProgress bool

	// EarlyComplete publishes a non-blocking request's completion without
	// running the collective body at all — completion visible before the
	// data is. Every rank skips uniformly (no cross-rank hang, no data
	// race), so the caller's byte check deterministically sees its stale
	// junk fill. Caught by the per-request byte-exactness invariant.
	EarlyComplete bool

	// FuseCorrupt makes the fused-broadcast root rotate each staged sub-op
	// payload left by one byte, corrupting the fusion batch's sub-op
	// boundaries deterministically at any batch length (needs payloads of
	// at least 2 bytes to take effect). Caught by byte-exactness.
	FuseCorrupt bool
}
