package gxhc

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// runAll spawns n goroutines executing body concurrently.
func runAll(n int, body func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(rank)
		}(r)
	}
	wg.Wait()
}

func TestBcastDelivers(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33} {
		c := MustNew(n, DefaultConfig())
		bufs := make([][]byte, n)
		for r := range bufs {
			bufs[r] = make([]byte, 3000)
		}
		for i := range bufs[0] {
			bufs[0][i] = byte(i * 7)
		}
		runAll(n, func(rank int) {
			c.Bcast(rank, bufs[rank], 0)
		})
		for r := range bufs {
			for i := range bufs[r] {
				if bufs[r][i] != byte(i*7) {
					t.Fatalf("n=%d rank=%d byte %d wrong", n, r, i)
				}
			}
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	const n = 12
	c := MustNew(n, Config{GroupSize: 4, ChunkBytes: 256})
	bufs := make([][]byte, n)
	for r := range bufs {
		bufs[r] = make([]byte, 1024)
	}
	for i := range bufs[5] {
		bufs[5][i] = byte(i ^ 0x5a)
	}
	runAll(n, func(rank int) {
		c.Bcast(rank, bufs[rank], 5)
	})
	for r := range bufs {
		for i := range bufs[r] {
			if bufs[r][i] != byte(i^0x5a) {
				t.Fatalf("rank %d wrong at %d", r, i)
			}
		}
	}
}

func TestBcastRepeatedAndChunked(t *testing.T) {
	const n = 9
	c := MustNew(n, Config{GroupSize: 3, ChunkBytes: 128})
	bufs := make([][]byte, n)
	for r := range bufs {
		bufs[r] = make([]byte, 4096)
	}
	for it := 0; it < 5; it++ {
		for i := range bufs[0] {
			bufs[0][i] = byte(i + it*31)
		}
		runAll(n, func(rank int) {
			c.Bcast(rank, bufs[rank], 0)
		})
		for r := range bufs {
			if bufs[r][100] != byte(100+it*31) {
				t.Fatalf("iter %d rank %d stale data", it, r)
			}
		}
	}
}

func TestAllreduceSums(t *testing.T) {
	for _, n := range []int{1, 2, 8, 17} {
		for _, elems := range []int{1, 10, 1000} {
			c := MustNew(n, Config{GroupSize: 4})
			src := make([][]float64, n)
			dst := make([][]float64, n)
			want := make([]float64, elems)
			for r := range src {
				src[r] = make([]float64, elems)
				dst[r] = make([]float64, elems)
				for i := range src[r] {
					src[r][i] = float64(r*100 + i)
					want[i] += src[r][i]
				}
			}
			runAll(n, func(rank int) {
				c.AllreduceFloat64(rank, dst[rank], src[rank])
			})
			for r := range dst {
				for i := range dst[r] {
					if dst[r][i] != want[i] {
						t.Fatalf("n=%d elems=%d rank=%d elem=%d: got %v want %v",
							n, elems, r, i, dst[r][i], want[i])
					}
				}
			}
		}
	}
}

func TestAllreduceRepeated(t *testing.T) {
	const n = 8
	const elems = 64
	c := MustNew(n, DefaultConfig())
	src := make([][]float64, n)
	dst := make([][]float64, n)
	for r := range src {
		src[r] = make([]float64, elems)
		dst[r] = make([]float64, elems)
	}
	for it := 0; it < 4; it++ {
		for r := range src {
			for i := range src[r] {
				src[r][i] = float64(it + r + i)
			}
		}
		runAll(n, func(rank int) {
			c.AllreduceFloat64(rank, dst[rank], src[rank])
		})
		want := 0.0
		for r := 0; r < n; r++ {
			want += float64(it + r)
		}
		for r := range dst {
			if dst[r][0] != want {
				t.Fatalf("iter %d rank %d: got %v want %v", it, r, dst[r][0], want)
			}
		}
	}
}

func TestBarrier(t *testing.T) {
	const n = 10
	c := MustNew(n, Config{GroupSize: 3})
	var phase [n]int
	for it := 0; it < 3; it++ {
		runAll(n, func(rank int) {
			phase[rank]++
			c.Barrier(rank)
			// After the barrier, everyone must be in the same phase.
			for r := 0; r < n; r++ {
				if phase[r] != it+1 {
					t.Errorf("rank %d saw phase[%d]=%d before barrier release", rank, r, phase[r])
				}
			}
			c.Barrier(rank)
		})
	}
}

func TestMixedOps(t *testing.T) {
	const n = 8
	c := MustNew(n, Config{GroupSize: 4, ChunkBytes: 512})
	bufs := make([][]byte, n)
	src := make([][]float64, n)
	dst := make([][]float64, n)
	for r := 0; r < n; r++ {
		bufs[r] = make([]byte, 2048)
		src[r] = make([]float64, 32)
		dst[r] = make([]float64, 32)
		for i := range src[r] {
			src[r][i] = 1
		}
	}
	for i := range bufs[0] {
		bufs[0][i] = byte(i)
	}
	runAll(n, func(rank int) {
		c.Bcast(rank, bufs[rank], 0)
		c.AllreduceFloat64(rank, dst[rank], src[rank])
		c.Barrier(rank)
		c.Bcast(rank, bufs[rank], 0)
	})
	for r := 0; r < n; r++ {
		if dst[r][5] != float64(n) {
			t.Errorf("rank %d allreduce = %v", r, dst[r][5])
		}
		if bufs[r][9] != 9 {
			t.Errorf("rank %d bcast corrupted", r)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, DefaultConfig()); err == nil {
		t.Error("zero participants accepted")
	}
	if c := MustNew(5, Config{}); c.N() != 5 {
		t.Error("N() wrong")
	}
}

func TestFlatConfig(t *testing.T) {
	const n = 6
	c := MustNew(n, Config{GroupSize: 0}) // flat
	bufs := make([][]byte, n)
	for r := range bufs {
		bufs[r] = make([]byte, 100)
	}
	bufs[0][0] = 42
	runAll(n, func(rank int) {
		c.Bcast(rank, bufs[rank], 0)
	})
	for r := range bufs {
		if bufs[r][0] != 42 {
			t.Fatalf("rank %d missing data", r)
		}
	}
	_ = fmt.Sprint(c)
}

// TestOversubscribedProgress is the regression test for waiter starvation:
// with more waiting participants than OS threads, a pure busy-wait loop can
// livelock because the ranks holding the next counter update never get
// scheduled. 64 ranks on GOMAXPROCS=2 must promptly finish all six
// collectives under both waiter modes — the parking waiter (the default,
// which takes oversubscribed waiters off the scheduler entirely) and the
// Spin escape hatch (yield/sleep backoff, the original fix).
func TestOversubscribedProgress(t *testing.T) {
	for _, mode := range []struct {
		name string
		spin bool
	}{{"park", false}, {"spin", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			old := runtime.GOMAXPROCS(2)
			defer runtime.GOMAXPROCS(old)

			const n = 64
			const elems = 256
			const blockLen = 512
			c := MustNew(n, Config{GroupSize: 8, ChunkBytes: 1024, Spin: mode.spin})
			bufs := make([][]byte, n)
			src := make([][]float64, n)
			dst := make([][]float64, n)
			agOut := make([][]byte, n)
			scOut := make([][]byte, n)
			for r := 0; r < n; r++ {
				bufs[r] = make([]byte, 4096)
				src[r] = make([]float64, elems)
				dst[r] = make([]float64, elems)
				agOut[r] = make([]byte, blockLen*n)
				scOut[r] = make([]byte, blockLen)
				for i := range src[r] {
					src[r][i] = 1
				}
			}
			for i := range bufs[0] {
				bufs[0][i] = byte(i * 3)
			}
			scIn := make([]byte, blockLen*n)
			for i := range scIn {
				scIn[i] = byte(i * 5)
			}

			done := make(chan struct{})
			go func() {
				runAll(n, func(rank int) {
					c.Bcast(rank, bufs[rank], 0)
					c.AllreduceFloat64(rank, dst[rank], src[rank])
					c.Barrier(rank)
					c.ReduceFloat64(rank, dst[rank], src[rank], 3)
					c.Allgather(rank, bufs[rank][:blockLen], agOut[rank])
					var in []byte
					if rank == 0 {
						in = scIn
					}
					c.Scatter(rank, in, scOut[rank], 0)
				})
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatalf("collectives stalled with 64 ranks on GOMAXPROCS=2 (%s waiter starvation)", mode.name)
			}
			for r := 0; r < n; r++ {
				if bufs[r][100] != byte(300%256) {
					t.Fatalf("rank %d bcast data wrong", r)
				}
				if dst[3][0] != float64(n) {
					t.Fatalf("rooted reduce = %v, want %v", dst[3][0], float64(n))
				}
				if agOut[r][blockLen*7+100] != bufs[7][100] {
					t.Fatalf("rank %d allgather block 7 wrong", r)
				}
				if scOut[r][11] != scIn[blockLen*r+11] {
					t.Fatalf("rank %d scatter block wrong", r)
				}
			}
		})
	}
}

// TestTraceRecordsPhases checks the wall-clock tracer: spans are recorded
// per rank, each operation gets a collective umbrella span, and the
// attribution spans never exceed it.
func TestTraceRecordsPhases(t *testing.T) {
	const n = 8
	c := MustNew(n, Config{GroupSize: 4, ChunkBytes: 512})
	tr := c.EnableTrace()
	if tr == nil || c.Tracer() != tr {
		t.Fatal("EnableTrace did not install a tracer")
	}
	if again := c.EnableTrace(); again != tr {
		t.Fatal("EnableTrace not idempotent")
	}

	bufs := make([][]byte, n)
	src := make([][]float64, n)
	dst := make([][]float64, n)
	for r := 0; r < n; r++ {
		bufs[r] = make([]byte, 2048)
		src[r] = make([]float64, 32)
		dst[r] = make([]float64, 32)
	}
	runAll(n, func(rank int) {
		c.Bcast(rank, bufs[rank], 0)
		c.AllreduceFloat64(rank, dst[rank], src[rank])
		c.Barrier(rank)
	})

	for rank := 0; rank < n; rank++ {
		spans := tr.LaneSpans(rank)
		if len(spans) == 0 {
			t.Fatalf("rank %d recorded no spans", rank)
		}
		ops := map[string]bool{}
		for _, s := range spans {
			if s.Phase == 0 { // obs.PhaseCollective
				ops[s.Op] = true
				covered := tr.CoveredTotal(rank, int64(s.Seq))
				if covered <= 0 || covered > s.Dur() {
					t.Errorf("rank %d %s seq %d: covered %d ns outside collective %d ns",
						rank, s.Op, s.Seq, covered, s.Dur())
				}
			}
		}
		for _, op := range []string{"bcast", "allreduce", "barrier"} {
			if !ops[op] {
				t.Errorf("rank %d missing collective span for %s", rank, op)
			}
		}
	}
}
