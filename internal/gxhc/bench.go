package gxhc

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"xhc/internal/stats"
)

// BenchResult is one row of a wall-clock OSU-style report: real elapsed
// time of the goroutine-backed collectives, the counterpart of osu.Result's
// simulated latencies.
type BenchResult struct {
	Size   int
	AvgLat float64 // microseconds, mean over ranks and iterations
	MinLat float64
	MaxLat float64
}

// BenchSpec configures one wall-clock microbenchmark sweep on a gxhc
// communicator, following the OSU methodology the sim-side osu package
// implements: warmup iterations, measured iterations reporting mean/min/max
// per-rank latency, and the "_mb" buffer-dirtying variant.
type BenchSpec struct {
	Ranks int
	Cfg   Config
	// Coll is one of bcast | allreduce | barrier | reduce | allgather |
	// scatter, or one of the non-blocking overlap cells: ibcast-overlap
	// (overlapDepth broadcasts in flight per rank, fusion disabled) and
	// ibcast-fused (the same window with same-shape fusion covering the
	// payload).
	Coll   string
	Warmup int
	Iters  int
	// Dirty rewrites the source buffers before every iteration (outside the
	// timed region), the paper's osu _mb variant.
	Dirty bool
	Root  int
	// Observe, when non-nil, is called with each freshly built communicator
	// before the participant goroutines start (e.g. to attach a flight
	// recorder).
	Observe func(*Comm)
}

func (s BenchSpec) withDefaults() BenchSpec {
	if s.Ranks == 0 {
		s.Ranks = runtime.GOMAXPROCS(0)
	}
	if s.Cfg.GroupSize == 0 && s.Cfg.ChunkBytes == 0 {
		s.Cfg = DefaultConfig()
	}
	if s.Warmup == 0 {
		s.Warmup = 10
	}
	if s.Iters == 0 {
		s.Iters = 100
	}
	return s
}

// normSizes maps a requested byte sweep to the sizes the collective
// actually measures: the float64 reductions round down to whole elements
// (duplicates dropped, first occurrence wins), barrier collapses to a
// single zero-byte row.
func (s BenchSpec) normSizes(sizes []int) []int {
	if s.Coll == "barrier" {
		return []int{0}
	}
	if s.Coll != "allreduce" && s.Coll != "reduce" {
		return sizes
	}
	out := make([]int, 0, len(sizes))
	seen := make(map[int]bool, len(sizes))
	for _, n := range sizes {
		n -= n % 8
		if n < 0 || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// overlapDepth is how many non-blocking broadcasts the overlap cells keep
// in flight per rank: one "operation" issues the whole window and waits it
// out, so the measured latency amortizes the traversal over the window.
const overlapDepth = 4

// benchWorld is the per-measurement buffer set: every slice a rank touches,
// preallocated so the measured loop performs no harness allocation.
type benchWorld struct {
	spec BenchSpec
	comm *Comm
	size int

	bufs  [][]byte    // bcast
	src   [][]float64 // allreduce / reduce
	dst   [][]float64
	agIn  [][]byte // allgather
	agOut [][]byte
	scIn  []byte // scatter (root only)
	scOut [][]byte

	// The overlap cells: one payload buffer per in-flight slot, plus a
	// preallocated request scratch reused via [:0] so the measured window
	// stays allocation-free.
	obufs [][][]byte // [rank][slot]
	reqs  [][]*Request
}

func (s BenchSpec) build(size int) (*benchWorld, error) {
	// The overlap cells pin their fusion setting at construction time:
	// ibcast-overlap forces fusion off so every request is its own
	// hierarchy traversal; ibcast-fused makes the threshold cover the
	// payload so the whole window fuses into one.
	switch s.Coll {
	case "ibcast-overlap":
		s.Cfg.FuseBytes = -1
	case "ibcast-fused":
		if size > 0 {
			s.Cfg.FuseBytes = size
		}
	}
	comm, err := New(s.Ranks, s.Cfg)
	if err != nil {
		return nil, err
	}
	if s.Observe != nil {
		s.Observe(comm)
	}
	w := &benchWorld{spec: s, comm: comm, size: size}
	n := s.Ranks
	switch s.Coll {
	case "bcast":
		w.bufs = make([][]byte, n)
		for r := range w.bufs {
			w.bufs[r] = make([]byte, size)
		}
	case "allreduce", "reduce":
		w.src = make([][]float64, n)
		w.dst = make([][]float64, n)
		for r := range w.src {
			w.src[r] = make([]float64, size/8)
			w.dst[r] = make([]float64, size/8)
		}
	case "barrier":
	case "allgather":
		w.agIn = make([][]byte, n)
		w.agOut = make([][]byte, n)
		for r := range w.agIn {
			w.agIn[r] = make([]byte, size)
			w.agOut[r] = make([]byte, size*n)
		}
	case "scatter":
		w.scIn = make([]byte, size*n)
		w.scOut = make([][]byte, n)
		for r := range w.scOut {
			w.scOut[r] = make([]byte, size)
		}
	case "ibcast-overlap", "ibcast-fused":
		w.obufs = make([][][]byte, n)
		w.reqs = make([][]*Request, n)
		for r := range w.obufs {
			w.obufs[r] = make([][]byte, overlapDepth)
			for slot := range w.obufs[r] {
				w.obufs[r][slot] = make([]byte, size)
			}
			w.reqs[r] = make([]*Request, 0, overlapDepth)
		}
	default:
		return nil, fmt.Errorf("gxhc bench: unknown collective %q", s.Coll)
	}
	return w, nil
}

// dirty rewrites rank's source data for iteration it (outside the timed
// region), so cache-resident repeats do not flatter the implementation.
func (w *benchWorld) dirty(rank, it int) {
	if !w.spec.Dirty {
		return
	}
	switch w.spec.Coll {
	case "bcast":
		if rank == w.spec.Root {
			b := w.bufs[rank]
			for i := range b {
				b[i] = byte(i + it*31)
			}
		}
	case "allreduce", "reduce":
		s := w.src[rank]
		for i := range s {
			s[i] = float64(rank + i + it)
		}
	case "allgather":
		b := w.agIn[rank]
		for i := range b {
			b[i] = byte(rank ^ i ^ it*13)
		}
	case "scatter":
		if rank == w.spec.Root {
			for i := range w.scIn {
				w.scIn[i] = byte(i + it*7)
			}
		}
	case "ibcast-overlap", "ibcast-fused":
		if rank == w.spec.Root {
			for slot, b := range w.obufs[rank] {
				for i := range b {
					b[i] = byte(i + it*31 + slot*101)
				}
			}
		}
	}
}

// op runs one collective operation for rank.
func (w *benchWorld) op(rank int) {
	switch w.spec.Coll {
	case "bcast":
		w.comm.Bcast(rank, w.bufs[rank], w.spec.Root)
	case "allreduce":
		w.comm.AllreduceFloat64(rank, w.dst[rank], w.src[rank])
	case "reduce":
		w.comm.ReduceFloat64(rank, w.dst[rank], w.src[rank], w.spec.Root)
	case "barrier":
		w.comm.Barrier(rank)
	case "allgather":
		w.comm.Allgather(rank, w.agIn[rank], w.agOut[rank])
	case "scatter":
		var in []byte
		if rank == w.spec.Root {
			in = w.scIn
		}
		w.comm.Scatter(rank, in, w.scOut[rank], w.spec.Root)
	case "ibcast-overlap", "ibcast-fused":
		rs := w.reqs[rank][:0]
		for slot := 0; slot < overlapDepth; slot++ {
			rs = append(rs, w.comm.Ibcast(rank, w.obufs[rank][slot], w.spec.Root))
		}
		Waitall(rs...)
	}
}

// Run measures wall-clock latency for each size: every iteration is
// barrier-synchronized, each rank times its own call, and the row
// aggregates all (rank, iteration) samples.
func (s BenchSpec) Run(sizes []int) ([]BenchResult, error) {
	s = s.withDefaults()
	var out []BenchResult
	for _, size := range s.normSizes(sizes) {
		w, err := s.build(size)
		if err != nil {
			return nil, err
		}
		lats := make([][]float64, s.Ranks)
		for r := range lats {
			lats[r] = make([]float64, 0, s.Iters)
		}
		base := time.Now()
		var wg sync.WaitGroup
		for r := 0; r < s.Ranks; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for it := 0; it < s.Warmup+s.Iters; it++ {
					w.dirty(rank, it)
					w.comm.Barrier(rank)
					t0 := time.Since(base)
					w.op(rank)
					d := time.Since(base) - t0
					if it >= s.Warmup {
						lats[rank] = append(lats[rank], float64(d.Nanoseconds())/1e3)
					}
				}
			}(r)
		}
		wg.Wait()
		var all []float64
		for r := range lats {
			all = append(all, lats[r]...)
		}
		if len(all) == 0 {
			return nil, fmt.Errorf("gxhc bench %s n=%d: no measured samples (warmup=%d iters=%d)",
				s.Coll, size, s.Warmup, s.Iters)
		}
		out = append(out, BenchResult{
			Size: size, AvgLat: stats.Mean(all), MinLat: stats.Min(all), MaxLat: stats.Max(all),
		})
	}
	return out, nil
}

// allocNoiseFloor returns the total heap-object count below which a
// measured window is judged allocation-free. The runtime parks goroutines
// with cached sudogs; when the per-P caches happen to drain (onto the
// other P, or into the central list at an inconvenient moment), the next
// parking wave allocates fresh 96-byte sudogs — up to a few per rank, one
// per synchronization object each rank blocks on (park channel, flag
// mutex), so the transient is O(Ranks), not O(1). It is charged to
// whichever window it lands in, unrelated to the op path. A real op-path
// leak recurs every operation and so scales with Iters×Ranks (hundreds of
// objects per window), far above the floor.
func allocNoiseFloor(ranks int) uint64 {
	return 4 + 8*uint64(ranks)
}

// SteadyStateAllocs measures heap allocations per operation on the
// steady-state path: after a warmup that grows every lazily-sized pool
// (scratch accumulators, waiter lists, scheduler caches), the measured
// window of Iters operations per rank must not allocate at all. It returns
// allocations per (rank, operation). A window whose total object count is
// within the rank-scaled noise floor reads as zero, and the measurement retries a few
// times reporting the minimum — both guards against runtime cache refills
// being charged to the window, never against per-op allocation, which
// recurs far above the floor on every attempt.
func (s BenchSpec) SteadyStateAllocs(size int) (float64, error) {
	s = s.withDefaults()
	ns := s.normSizes([]int{size})
	if len(ns) == 0 {
		return 0, fmt.Errorf("gxhc bench: size %d not measurable for %s", size, s.Coll)
	}
	size = ns[0]
	best := -1.0
	for attempt := 0; attempt < 3; attempt++ {
		total, err := s.steadyStateAllocsOnce(size)
		if err != nil {
			return 0, err
		}
		if total <= allocNoiseFloor(s.Ranks) {
			return 0, nil
		}
		got := float64(total) / float64(s.Iters*s.Ranks)
		if best < 0 || got < best {
			best = got
		}
	}
	return best, nil
}

// steadyStateAllocsOnce runs one gated measurement window and returns the
// total number of heap objects allocated during it.
func (s BenchSpec) steadyStateAllocsOnce(size int) (uint64, error) {
	w, err := s.build(size)
	if err != nil {
		return 0, err
	}
	// The measured window must charge only the op path, so the anomaly
	// dump machinery is quiesced: the forced GC below can pause a rank
	// long enough to read as a straggler, and the resulting flight dump
	// is a deliberately heavyweight diagnostic, not an op-path allocation
	// (the straggler counter itself still advances).
	if w.comm.rec != nil {
		w.comm.rec.SetQuiesceDumps(true)
		defer w.comm.rec.SetQuiesceDumps(false)
	}
	// A GC purges the scheduler's sudog caches (clearpools), so any
	// goroutine park right after one allocates fresh sudogs — runtime
	// bookkeeping that would be charged to the window. Instead of forcing
	// a GC next to the measurement, collect once BEFORE any participant
	// parks and disable GC for the rest of the attempt: the warmup then
	// organically repopulates the caches, and the window — which itself
	// allocates nothing — cannot have them purged out from under it.
	prevGC := debug.SetGCPercent(-1)
	runtime.GC()
	defer debug.SetGCPercent(prevGC)
	var wgWarm, wgMeas, wgDone sync.WaitGroup
	wgWarm.Add(s.Ranks)
	wgMeas.Add(s.Ranks)
	wgDone.Add(s.Ranks)
	startMeas := make(chan struct{})
	finish := make(chan struct{})
	for r := 0; r < s.Ranks; r++ {
		go func(rank int) {
			for it := 0; it < s.Warmup; it++ {
				w.dirty(rank, it)
				w.op(rank)
			}
			// Rendezvous through the communicator first so every rank has
			// finished its warmup ops (and its parked-wakeup machinery is
			// warm) before anyone blocks on the measurement gate.
			w.comm.Barrier(rank)
			wgWarm.Done()
			<-startMeas
			for it := 0; it < s.Iters; it++ {
				w.dirty(rank, s.Warmup+it)
				w.op(rank)
			}
			w.comm.Barrier(rank)
			wgMeas.Done()
			<-finish
			wgDone.Done()
		}(r)
	}
	wgWarm.Wait()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	close(startMeas)
	wgMeas.Wait()
	runtime.ReadMemStats(&m1)
	close(finish)
	wgDone.Wait()
	return m1.Mallocs - m0.Mallocs, nil
}

// BenchCollectives lists the blocking collectives BenchSpec understands,
// in report order.
func BenchCollectives() []string {
	return []string{"bcast", "allreduce", "barrier", "reduce", "allgather", "scatter"}
}

// OverlapCollectives lists the non-blocking overlap cells: the same
// overlapDepth-deep Ibcast window measured with fusion off and on.
func OverlapCollectives() []string {
	return []string{"ibcast-overlap", "ibcast-fused"}
}
