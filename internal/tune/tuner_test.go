package tune

import (
	"reflect"
	"testing"
)

// badPlan is a deliberately pessimal candidate: a 256-byte pipelining
// granule multiplies per-chunk flag traffic on every payload above the
// CICO threshold. The tuner must never let it win a cell it loses.
func badPlan() Plan {
	p := DefaultPlan()
	p.Name = "bad-chunk-256"
	p.ChunkBytes = []int{256}
	return p
}

// TestTunerNeverRegressesPinnedCell is the end-to-end loop: seed the
// candidate set with the deliberately bad plan, sweep-and-select, and
// prove (a) the persisted winner beats or ties the default on every
// pinned cell in the sweep's own measurements, and (b) a fresh replay
// through the repro gate (the same code path as xhctune -check) confirms
// no cell regresses past the 5%/1us thresholds.
func TestTunerNeverRegressesPinnedCell(t *testing.T) {
	const np = 40 // a node slice: keeps the e2e loop seconds-fast
	plans := append(CandidatePlans(), badPlan())
	f, bench, err := Sweep(SweepOpts{Platform: "ARM-N1", NRanks: np, Quick: true, Plans: plans})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cells) != len(PinnedCells("ARM-N1")) {
		t.Fatalf("sweep selected %d cells, want %d", len(f.Cells), len(PinnedCells("ARM-N1")))
	}
	for _, cp := range f.Cells {
		if cp.BaselineUS <= 0 {
			t.Errorf("%s: sweep lost the default baseline", cp.Key())
		}
		if cp.TunedUS > cp.BaselineUS {
			t.Errorf("%s: winner %s (%.2fus) regresses the default (%.2fus)",
				cp.Key(), cp.Plan.Name, cp.TunedUS, cp.BaselineUS)
		}
	}
	if len(bench) != 2*len(f.Cells) {
		t.Fatalf("bench trajectory has %d rows, want %d", len(bench), 2*len(f.Cells))
	}

	results, regressions, err := Check(f, CheckOpts{NRanks: np, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		for _, r := range results {
			if r.Regressed {
				t.Errorf("repro gate: %s regressed (default %.2fus, tuned %.2fus)", r.Key, r.DefaultUS, r.TunedUS)
			}
		}
	}
	// The simulated clock makes the replay exact: the gate's fresh tuned
	// measurement must reproduce what the sweep recorded.
	for _, r := range results {
		if r.TunedUS != r.RecordedUS {
			t.Errorf("repro gate: %s replayed %.4fus, plan file recorded %.4fus", r.Key, r.TunedUS, r.RecordedUS)
		}
	}
}

// TestOnlineSimDeterministic pins the whole online loop — simulated
// clock, telemetry fold, reward window, bandit draws — as replayable.
func TestOnlineSimDeterministic(t *testing.T) {
	opts := OnlineOpts{Rounds: 10, OpsPerRound: 4}
	a, err := RunOnlineSim("ARM-N1", 40, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnlineSim("ARM-N1", 40, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("online sim run not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Trace) != opts.Rounds {
		t.Fatalf("trace has %d rounds, want %d", len(a.Trace), opts.Rounds)
	}
}

// TestOnlineSimAvoidsBadPlan seeds a two-arm race between the default and
// the pessimal plan on large payloads: after the bandit has pulled both,
// its running means must rank the bad arm worse and Best must avoid it.
func TestOnlineSimAvoidsBadPlan(t *testing.T) {
	plans := []Plan{DefaultPlan(), badPlan()}
	res, err := RunOnlineSim("ARM-N1", 40, OnlineOpts{
		Plans: plans, Rounds: 8, OpsPerRound: 4, Bytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Name == "bad-chunk-256" {
		t.Fatalf("bandit settled on the pessimal plan: %+v", res)
	}
	if res.Pulls[1] == 0 {
		t.Fatalf("bandit never explored arm 1: %+v", res)
	}
	if res.Means[1] <= res.Means[0] {
		t.Fatalf("pessimal plan measured faster than default (%.2f vs %.2f) — reward window broken?",
			res.Means[1], res.Means[0])
	}
	if res.Switches == 0 {
		t.Fatal("no plan switches happened at all")
	}
}

// TestOnlineGxhc runs the bandit against the real-concurrency backend:
// plan switches at quiesced boundaries with live goroutines, with the
// in-driver byte oracle checking every broadcast across every switch.
func TestOnlineGxhc(t *testing.T) {
	res, err := RunOnlineGxhc(8, OnlineOpts{Rounds: 8, OpsPerRound: 4, Bytes: 4 << 10}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 8 {
		t.Fatalf("trace has %d rounds, want 8", len(res.Trace))
	}
	for _, arm := range res.Trace {
		if arm < 0 || arm >= len(OnlinePlans()) {
			t.Fatalf("trace names arm %d outside the candidate set", arm)
		}
	}
}

// TestOnlineRejectsUnswitchablePlan: a candidate that moves a
// construction-time knob must be refused up front, not half-applied.
func TestOnlineRejectsUnswitchablePlan(t *testing.T) {
	flat := DefaultPlan()
	flat.Name = "flat"
	flat.Sensitivity = "flat"
	if _, err := RunOnlineSim("ARM-N1", 8, OnlineOpts{Plans: []Plan{DefaultPlan(), flat}}); err == nil {
		t.Fatal("online run accepted a construction-time plan change")
	}
}

// TestBanditDeterministic pins the bandit's draw stream and its bias
// handling: same seed, same observations, same choices; a bias is
// consumed by exactly one exploration.
func TestBanditDeterministic(t *testing.T) {
	run := func() []int {
		b := NewBandit(3, 42)
		var picks []int
		for i := 0; i < 12; i++ {
			arm := b.Next()
			picks = append(picks, arm)
			b.Observe(arm, float64(10+arm*5)) // arm 0 is best
		}
		return picks
	}
	a, bb := run(), run()
	if !reflect.DeepEqual(a, bb) {
		t.Fatalf("bandit not deterministic: %v vs %v", a, bb)
	}
	for i := 0; i < 3; i++ {
		if a[i] != i {
			t.Fatalf("arm %d not pulled in the bootstrap round: %v", i, a)
		}
	}
	b := NewBandit(2, 7)
	b.Observe(0, 1)
	b.Observe(1, 100)
	b.SetBias(1)
	seen := false
	for i := 0; i < 64 && !seen; i++ {
		seen = b.Next() == 1
	}
	if !seen {
		t.Fatal("biased arm never explored in 64 rounds")
	}
	if b.Best() != 0 {
		t.Fatalf("Best = %d, want 0", b.Best())
	}
}
