package tune

import (
	"reflect"
	"testing"
	"testing/quick"
)

// genSamples derives a pseudo-random but valid sample set from one seed:
// cells from the pinned pool, plans from the candidate pool, means drawn
// positive. The same seed always yields the same set.
func genSamples(seed uint64) []Sample {
	cells := PinnedCells("ARM-N1")
	plans := CandidatePlans()
	rng := seed
	next := func() uint64 {
		rng = splitmix64(rng)
		return rng
	}
	n := int(next()%40) + 1
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		c := cells[next()%uint64(len(cells))]
		p := plans[next()%uint64(len(plans))]
		mean := float64(next()%1_000_000)/100 + 0.01
		out = append(out, Sample{
			Cell: c.Cell, Size: c.Size, Plan: p,
			MeanUS: mean, MinUS: mean * 0.9, MaxUS: mean * 1.1,
		})
	}
	return out
}

// permute reorders samples deterministically from the seed
// (Fisher-Yates over the split-mix stream).
func permute(in []Sample, seed uint64) []Sample {
	out := append([]Sample(nil), in...)
	rng := seed
	for i := len(out) - 1; i > 0; i-- {
		rng = splitmix64(rng)
		j := int(rng % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestSelectProperties pins Select's contract under testing/quick:
// totality (exactly one plan per distinct input cell), optimality (the
// winner beats or ties every sample of its cell, and never the default
// baseline when one was measured), permutation invariance, and a byte-
// identical round trip of the selected file through the plan-file codec.
func TestSelectProperties(t *testing.T) {
	prop := func(seed uint64) bool {
		samples := genSamples(seed)
		sel := Select(samples)

		distinct := map[string]bool{}
		for _, s := range samples {
			distinct[s.Cell.Key()] = true
		}
		if len(sel) != len(distinct) {
			t.Logf("seed %#x: %d cells selected, want %d", seed, len(sel), len(distinct))
			return false
		}
		byKey := map[string]CellPlan{}
		for _, cp := range sel {
			if _, dup := byKey[cp.Key()]; dup {
				t.Logf("seed %#x: duplicate cell %s", seed, cp.Key())
				return false
			}
			byKey[cp.Key()] = cp
		}
		for _, s := range samples {
			w := byKey[s.Cell.Key()]
			if w.TunedUS > s.MeanUS {
				t.Logf("seed %#x: winner %.2fus loses to sample %.2fus on %s", seed, w.TunedUS, s.MeanUS, s.Cell.Key())
				return false
			}
			if s.Plan.Name == "default" && w.BaselineUS > 0 && w.TunedUS > w.BaselineUS {
				t.Logf("seed %#x: winner regresses the measured baseline on %s", seed, s.Cell.Key())
				return false
			}
		}

		perm := Select(permute(samples, seed^0xdead))
		if !reflect.DeepEqual(sel, perm) {
			t.Logf("seed %#x: selection depends on sample order", seed)
			return false
		}

		f := File{Version: FileVersion, Platform: "ARM-N1", Cells: sel}
		data, err := f.Encode()
		if err != nil {
			t.Logf("seed %#x: encode: %v", seed, err)
			return false
		}
		got, err := Decode(data)
		if err != nil {
			t.Logf("seed %#x: decode: %v", seed, err)
			return false
		}
		again, err := got.Encode()
		if err != nil || string(again) != string(data) {
			t.Logf("seed %#x: plan file round trip not byte-identical (err %v)", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectTieBreak pins the deterministic tie order: equal means fall
// back to the lexicographically smaller plan name.
func TestSelectTieBreak(t *testing.T) {
	cells := PinnedCells("ARM-N1")
	a, b := CandidatePlans()[3], CandidatePlans()[4] // chunk-4k, chunk-64k
	samples := []Sample{
		{Cell: cells[0].Cell, Size: cells[0].Size, Plan: b, MeanUS: 5},
		{Cell: cells[0].Cell, Size: cells[0].Size, Plan: a, MeanUS: 5},
	}
	sel := Select(samples)
	if len(sel) != 1 || sel[0].Plan.Name != "chunk-4k" {
		t.Fatalf("tie broke to %+v, want chunk-4k", sel)
	}
	if sel[0].BaselineUS != 0 {
		t.Fatalf("baseline invented without a default sample: %v", sel[0].BaselineUS)
	}
}

// TestSelectBaseline records the default plan's (best) mean as the
// baseline the winner is compared against.
func TestSelectBaseline(t *testing.T) {
	cells := PinnedCells("ARM-N1")
	def := DefaultPlan()
	fast := CandidatePlans()[3]
	samples := []Sample{
		{Cell: cells[0].Cell, Size: cells[0].Size, Plan: def, MeanUS: 12},
		{Cell: cells[0].Cell, Size: cells[0].Size, Plan: def, MeanUS: 10},
		{Cell: cells[0].Cell, Size: cells[0].Size, Plan: fast, MeanUS: 7},
	}
	sel := Select(samples)
	if len(sel) != 1 {
		t.Fatalf("got %d cells", len(sel))
	}
	if sel[0].BaselineUS != 10 || sel[0].TunedUS != 7 || sel[0].Plan.Name != fast.Name {
		t.Fatalf("got %+v, want baseline 10, tuned 7, plan %s", sel[0], fast.Name)
	}
}
