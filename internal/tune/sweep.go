package tune

import (
	"fmt"
	"time"

	"xhc/internal/osu"
	"xhc/internal/topo"
)

// PinnedCell is one cell of the repro gate: the tuner's promises are made
// (and re-checked) on these exact measurements.
type PinnedCell struct {
	Cell
	Size int
}

// PinnedCells returns the platform's pinned cell set: the two headline
// collectives of the paper's evaluation across the three size classes.
// Sweep tunes them, xhctune -check replays them, and BENCH_tune.json
// records them — all three must agree on this list.
func PinnedCells(platform string) []PinnedCell {
	mk := func(coll string, size int) PinnedCell {
		return PinnedCell{
			Cell: Cell{Platform: platform, Collective: coll, SizeClass: SizeClassOf(size)},
			Size: size,
		}
	}
	return []PinnedCell{
		mk("bcast", 512),
		mk("bcast", 8<<10),
		mk("bcast", 128<<10),
		mk("allreduce", 512),
		mk("allreduce", 8<<10),
		mk("allreduce", 128<<10),
	}
}

// CandidatePlans is the offline sweep's search space: the default plan
// plus single-knob departures along each tunable axis. The default must
// come first — Select keys the baseline on its name.
func CandidatePlans() []Plan {
	d := DefaultPlan()
	mk := func(name string, mut func(*Plan)) Plan {
		p := d
		p.Name = name
		p.ChunkBytes = append([]int(nil), d.ChunkBytes...)
		mut(&p)
		return p
	}
	return []Plan{
		d,
		// CICO routing: raise the threshold so medium payloads take the
		// copy-in-copy-out path instead of paying XPMEM exposure, or drop
		// it so everything pays the single-copy path.
		mk("cico-8k", func(p *Plan) { p.CICOThreshold = 8 << 10; p.CICOBytes = 32 << 10; p.FuseBytes = 8 << 10 }),
		mk("cico-off", func(p *Plan) { p.CICOThreshold = 0; p.FuseBytes = 0 }),
		// Pipelining granule: finer chunks overlap level hops, coarser
		// chunks amortize flag traffic.
		mk("chunk-4k", func(p *Plan) { p.ChunkBytes = []int{4 << 10} }),
		mk("chunk-64k", func(p *Plan) { p.ChunkBytes = []int{64 << 10} }),
		// Hierarchy shape: drop the socket level (one hop less) or go flat.
		mk("numa-only", func(p *Plan) { p.Sensitivity = "numa" }),
		mk("socket-only", func(p *Plan) { p.Sensitivity = "socket" }),
		mk("flat", func(p *Plan) { p.Sensitivity = "flat" }),
	}
}

// BenchCell mirrors xhcbench's -json cell record, so BENCH_tune.json is
// diffable by xhcstat exactly like the other committed baselines.
type BenchCell struct {
	Platform   string  `json:"platform"`
	Collective string  `json:"collective"`
	Component  string  `json:"component"`
	Size       int     `json:"size"`
	AvgLatUS   float64 `json:"avg_lat_us"`
	MinLatUS   float64 `json:"min_lat_us"`
	MaxLatUS   float64 `json:"max_lat_us"`
	WallMS     float64 `json:"wall_ms"`
}

// SweepOpts configures an offline sweep.
type SweepOpts struct {
	Platform string
	// NRanks is the job size (0: every core of the platform).
	NRanks int
	// Quick trims the iteration counts for CI gates; the simulated clock
	// makes the measured latencies identical either way, so quick runs
	// reach the same verdicts.
	Quick bool
	// Plans/Cells override the candidate set and pinned cells (nil: the
	// package defaults).
	Plans []Plan
	Cells []PinnedCell
	// Progress, when set, receives one line per measured (cell, plan).
	Progress func(format string, args ...any)
}

func (o SweepOpts) iters() (warmup, measured int) {
	if o.Quick {
		return 1, 2
	}
	return 2, 5
}

// Measure runs one (cell, plan) microbenchmark and returns the OSU-style
// result for the cell's representative size. The simulation is
// deterministic, so repeated calls return identical latencies.
func Measure(c PinnedCell, p Plan, nranks, warmup, iters int) (osu.Result, error) {
	top := topo.ByName(c.Platform)
	if top == nil {
		return osu.Result{}, fmt.Errorf("tune: unknown platform %q", c.Platform)
	}
	if err := p.Validate(); err != nil {
		return osu.Result{}, err
	}
	b := osu.Bench{
		Topo: top, NRanks: nranks, Component: "xhc-" + p.Name, Custom: p.Builder(),
		Warmup: warmup, Iters: iters, Dirty: true,
	}
	var rs []osu.Result
	var err error
	switch c.Collective {
	case "bcast":
		rs, err = b.Bcast([]int{c.Size})
	case "allreduce":
		rs, err = b.Allreduce([]int{c.Size})
	case "reduce":
		rs, err = b.Reduce([]int{c.Size})
	case "allgather":
		rs, err = b.Allgather([]int{c.Size})
	case "scatter":
		rs, err = b.Scatter([]int{c.Size})
	case "barrier":
		rs, err = b.Barrier()
	default:
		return osu.Result{}, fmt.Errorf("tune: unknown collective %q", c.Collective)
	}
	if err != nil {
		return osu.Result{}, err
	}
	if len(rs) != 1 {
		return osu.Result{}, fmt.Errorf("tune: %s size %d: %d results (want 1)", c.Collective, c.Size, len(rs))
	}
	return rs[0], nil
}

// Sweep measures every candidate plan on every pinned cell, selects the
// winner per cell, and returns the plan file plus the xhcstat-diffable
// default-vs-tuned benchmark cells for BENCH_tune.json.
func Sweep(o SweepOpts) (File, []BenchCell, error) {
	plans := o.Plans
	if plans == nil {
		plans = CandidatePlans()
	}
	cells := o.Cells
	if cells == nil {
		cells = PinnedCells(o.Platform)
	}
	warmup, iters := o.iters()

	var samples []Sample
	results := make(map[string]map[string]osu.Result) // cell key -> plan key -> result
	walls := make(map[string]float64)                 // cell key -> total wall ms
	for _, c := range cells {
		results[c.Key()] = make(map[string]osu.Result, len(plans))
		for _, p := range plans {
			start := time.Now()
			r, err := Measure(c, p, o.NRanks, warmup, iters)
			if err != nil {
				return File{}, nil, fmt.Errorf("tune: sweep %s plan %s: %w", c.Key(), p.Name, err)
			}
			walls[c.Key()] += float64(time.Since(start).Microseconds()) / 1e3
			results[c.Key()][p.key()] = r
			samples = append(samples, Sample{
				Cell: c.Cell, Size: c.Size, Plan: p,
				MeanUS: r.AvgLat, MinUS: r.MinLat, MaxUS: r.MaxLat,
			})
			if o.Progress != nil {
				o.Progress("tune: %-32s %-12s %10.2f us", c.Key(), p.Name, r.AvgLat)
			}
		}
	}

	f := File{Version: FileVersion, Platform: o.Platform, Cells: Select(samples)}
	if err := f.Validate(); err != nil {
		return File{}, nil, err
	}

	// BENCH_tune.json rows: the default and the winner on every pinned
	// cell, as measured by this sweep. Wall time is charged to the tuned
	// row (the sweep cost of reaching the verdict); the default row
	// carries zero so self-diffs key on simulated latency only.
	def := DefaultPlan()
	var bench []BenchCell
	for _, cp := range f.Cells {
		rd, ok := results[cp.Key()][def.key()]
		if !ok {
			return File{}, nil, fmt.Errorf("tune: sweep never measured the default plan on %s", cp.Key())
		}
		rt := results[cp.Key()][cp.Plan.key()]
		bench = append(bench,
			BenchCell{
				Platform: cp.Platform, Collective: cp.Collective, Component: "xhc-default",
				Size: cp.Size, AvgLatUS: rd.AvgLat, MinLatUS: rd.MinLat, MaxLatUS: rd.MaxLat,
			},
			BenchCell{
				Platform: cp.Platform, Collective: cp.Collective, Component: "xhc-tuned",
				Size: cp.Size, AvgLatUS: rt.AvgLat, MinLatUS: rt.MinLat, MaxLatUS: rt.MaxLat,
				WallMS: walls[cp.Key()],
			},
		)
	}
	return f, bench, nil
}
