// Package tune closes the telemetry→tuning loop (DESIGN.md §17): it
// sweeps the tunable-knob space offline and persists the winning plan per
// (platform, collective, size-class) cell, drives an online bandit that
// reads the observability registry's histograms and critical-path blame to
// switch the live plan at safe operation boundaries, and replays every
// pinned cell as a no-regression gate.
//
// A Plan is a complete knob assignment — unlike core.Tuning/gxhc.Tuning it
// has no "keep" sentinels, so two plans always compare knob for knob and a
// plan file is self-contained. Plans split into construction-time knobs
// (sensitivity, CICO buffer size, gxhc group size), which require building
// a new communicator, and boundary-switchable knobs (chunking, CICO
// threshold, fusion cap, spin budgets), which ApplyTuning can move on a
// live communicator between operations.
package tune

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"xhc/internal/coll"
	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/gxhc"
	"xhc/internal/hier"
	"xhc/internal/topo"
)

// Plan is one complete assignment of the tunable knobs across both
// backends. JSON field names are the plan-file wire format; Decode rejects
// anything it does not recognize.
type Plan struct {
	// Name identifies the plan in reports and tie-breaks selection; it
	// must be non-empty and free of the separators cell keys use.
	Name string `json:"name"`
	// Sensitivity is the hierarchy specification in the paper's
	// "numa+socket" notation ("flat" or empty: single level).
	// Construction-time: the hierarchy cannot move on a live communicator.
	Sensitivity string `json:"sensitivity"`
	// CICOThreshold routes messages <= this through the copy-in-copy-out
	// path. Boundary-switchable.
	CICOThreshold int `json:"cico_threshold"`
	// CICOBytes sizes each rank's shared CICO buffer. Construction-time.
	CICOBytes int `json:"cico_bytes"`
	// ChunkBytes is the pipelining granule per hierarchy level (last entry
	// covers deeper levels). Boundary-switchable.
	ChunkBytes []int `json:"chunk_bytes"`
	// FuseBytes caps the payload size the non-blocking request layer may
	// fuse into one batch (0 disables fusion). Boundary-switchable, but
	// never effective past the construction-time CICOThreshold, which
	// sizes the staging buffers — Validate enforces the bound so a plan
	// file cannot promise a cap the communicator would silently clamp.
	FuseBytes int `json:"fuse_bytes"`
	// GroupSize is the gxhc backend's leaf group fan-in. Construction-time.
	GroupSize int `json:"group_size"`
	// SpinProbes / SpinScaleMax parameterize the gxhc waiter's spin budget
	// (budget unit and small-fan-in multiplier cap). Boundary-switchable.
	SpinProbes   int `json:"spin_probes"`
	SpinScaleMax int `json:"spin_scale_max"`
}

// DefaultPlan returns the paper defaults both backends boot with: the
// baseline every sweep measures against and the plan name Select expects
// to find among the samples.
func DefaultPlan() Plan {
	return Plan{
		Name:          "default",
		Sensitivity:   "numa+socket",
		CICOThreshold: 1 << 10,
		CICOBytes:     16 << 10,
		ChunkBytes:    []int{16 << 10},
		FuseBytes:     1 << 10,
		GroupSize:     8,
		SpinProbes:    192,
		SpinScaleMax:  8,
	}
}

// Validate rejects plans no communicator could faithfully run.
func (p Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("tune: plan with empty name")
	}
	for _, r := range p.Name {
		if r == '/' || r == ',' || r == ' ' {
			return fmt.Errorf("tune: plan name %q contains separator %q", p.Name, r)
		}
	}
	if _, err := hier.ParseSensitivity(p.Sensitivity); err != nil {
		return fmt.Errorf("tune: plan %s: %w", p.Name, err)
	}
	if p.CICOThreshold < 0 {
		return fmt.Errorf("tune: plan %s: negative CICO threshold %d", p.Name, p.CICOThreshold)
	}
	if p.CICOBytes < 2*p.CICOThreshold {
		return fmt.Errorf("tune: plan %s: CICO buffer %d cannot double-buffer threshold %d payloads",
			p.Name, p.CICOBytes, p.CICOThreshold)
	}
	if len(p.ChunkBytes) == 0 {
		return fmt.Errorf("tune: plan %s: no chunk sizes", p.Name)
	}
	for _, c := range p.ChunkBytes {
		if c <= 0 {
			return fmt.Errorf("tune: plan %s: non-positive chunk size %d", p.Name, c)
		}
	}
	if p.FuseBytes < 0 || p.FuseBytes > p.CICOThreshold {
		return fmt.Errorf("tune: plan %s: fuse cap %d outside [0, CICO threshold %d]",
			p.Name, p.FuseBytes, p.CICOThreshold)
	}
	if p.GroupSize < 2 {
		return fmt.Errorf("tune: plan %s: group size %d < 2", p.Name, p.GroupSize)
	}
	if p.SpinProbes <= 0 || p.SpinScaleMax <= 0 {
		return fmt.Errorf("tune: plan %s: non-positive spin budget (probes %d, scale max %d)",
			p.Name, p.SpinProbes, p.SpinScaleMax)
	}
	return nil
}

// CoreConfig maps the plan onto a simulated-backend configuration.
func (p Plan) CoreConfig() (core.Config, error) {
	sens, err := hier.ParseSensitivity(p.Sensitivity)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.DefaultConfig()
	cfg.Sensitivity = sens
	cfg.CICOThreshold = p.CICOThreshold
	cfg.CICOBytes = p.CICOBytes
	cfg.ChunkBytes = append([]int(nil), p.ChunkBytes...)
	return cfg, nil
}

// GxhcConfig maps the plan onto a real-concurrency backend configuration.
func (p Plan) GxhcConfig(spin bool) gxhc.Config {
	return gxhc.Config{
		GroupSize:    p.GroupSize,
		ChunkBytes:   p.ChunkBytes[0],
		Spin:         spin,
		SpinProbes:   p.SpinProbes,
		SpinScaleMax: p.SpinScaleMax,
	}
}

// CoreTuning is the boundary-switchable projection of the plan for the
// simulated backend's ApplyTuning.
func (p Plan) CoreTuning() core.Tuning {
	return core.Tuning{
		ChunkBytes:    append([]int(nil), p.ChunkBytes...),
		CICOThreshold: p.CICOThreshold,
		FuseBytes:     p.FuseBytes,
	}
}

// GxhcTuning is the boundary-switchable projection for gxhc's ApplyTuning.
func (p Plan) GxhcTuning() gxhc.Tuning {
	return gxhc.Tuning{
		ChunkBytes:   p.ChunkBytes[0],
		FuseBytes:    p.FuseBytes,
		SpinProbes:   p.SpinProbes,
		SpinScaleMax: p.SpinScaleMax,
	}
}

// Builder wraps the plan as a coll registry builder, so osu benches and
// xhcbench's -tuned mode measure a communicator constructed from it.
func (p Plan) Builder() coll.Builder {
	return func(w *env.World) (coll.Component, error) {
		cfg, err := p.CoreConfig()
		if err != nil {
			return nil, err
		}
		return core.New(w, cfg)
	}
}

// key is a canonical deterministic rendering of the whole plan, used as
// the final selection tie-break so Select stays total even between plans
// that share a name.
func (p Plan) key() string {
	return fmt.Sprintf("%s|%s|%d|%d|%v|%d|%d|%d|%d",
		p.Name, p.Sensitivity, p.CICOThreshold, p.CICOBytes, p.ChunkBytes,
		p.FuseBytes, p.GroupSize, p.SpinProbes, p.SpinScaleMax)
}

// SwitchableFrom reports whether this plan can be applied to a live
// communicator constructed from base: every construction-time knob must
// match, leaving only the knobs ApplyTuning can actually move.
func (p Plan) SwitchableFrom(base Plan) error {
	if p.Sensitivity != base.Sensitivity {
		return fmt.Errorf("tune: plan %s changes sensitivity (%q -> %q): construction-time", base.Name, base.Sensitivity, p.Sensitivity)
	}
	if p.CICOBytes != base.CICOBytes {
		return fmt.Errorf("tune: plan %s changes CICO buffer (%d -> %d): construction-time", base.Name, base.CICOBytes, p.CICOBytes)
	}
	if p.GroupSize != base.GroupSize {
		return fmt.Errorf("tune: plan %s changes group size (%d -> %d): construction-time", base.Name, base.GroupSize, p.GroupSize)
	}
	if p.FuseBytes > base.CICOThreshold {
		return fmt.Errorf("tune: plan %s fuse cap %d exceeds staging capacity %d of the base plan",
			p.Name, p.FuseBytes, base.CICOThreshold)
	}
	return nil
}

// Size classes: the tuner picks one plan per class, not per exact byte
// size, so a plan file generalizes to the whole sweep range.
const (
	ClassSmall  = "small"  // <= 1 KiB: CICO territory
	ClassMedium = "medium" // <= 64 KiB: single-chunk XPMEM
	ClassLarge  = "large"  // beyond: pipelined XPMEM
)

// SizeClassOf buckets a payload size.
func SizeClassOf(bytes int) string {
	switch {
	case bytes <= 1<<10:
		return ClassSmall
	case bytes <= 64<<10:
		return ClassMedium
	default:
		return ClassLarge
	}
}

// Collectives the tuner understands (the osu bench surface).
var knownCollectives = map[string]bool{
	"bcast": true, "allreduce": true, "barrier": true,
	"reduce": true, "allgather": true, "scatter": true,
}

// Cell names one tuning domain: a collective and size class on a platform.
type Cell struct {
	Platform   string `json:"platform"`
	Collective string `json:"collective"`
	SizeClass  string `json:"size_class"`
}

// Key renders the cell's stable identity.
func (c Cell) Key() string { return c.Platform + "/" + c.Collective + "/" + c.SizeClass }

// CellPlan is one row of a plan file: the winning plan for a cell plus the
// measurement it won on (Size is the class's representative payload).
type CellPlan struct {
	Cell
	Size       int     `json:"size"`
	Plan       Plan    `json:"plan"`
	BaselineUS float64 `json:"baseline_us"`
	TunedUS    float64 `json:"tuned_us"`
}

// FileVersion is the plan-file format version Decode accepts.
const FileVersion = 1

// File is a persisted tuning plan: the winning plan per pinned cell of one
// platform.
type File struct {
	Version  int        `json:"version"`
	Platform string     `json:"platform"`
	Cells    []CellPlan `json:"cells"`
}

// Validate enforces the plan-file invariants: a bad file is an error,
// never a silent fallback to defaults.
func (f File) Validate() error {
	if f.Version != FileVersion {
		return fmt.Errorf("tune: plan file version %d (this build reads version %d)", f.Version, FileVersion)
	}
	if topo.ByName(f.Platform) == nil {
		return fmt.Errorf("tune: plan file for unknown platform %q", f.Platform)
	}
	seen := make(map[string]bool, len(f.Cells))
	for i, c := range f.Cells {
		if c.Platform != f.Platform {
			return fmt.Errorf("tune: cell %d platform %q does not match file platform %q", i, c.Platform, f.Platform)
		}
		if !knownCollectives[c.Collective] {
			return fmt.Errorf("tune: cell %d: unknown collective %q", i, c.Collective)
		}
		if c.Size < 0 {
			return fmt.Errorf("tune: cell %d: negative size %d", i, c.Size)
		}
		if got := SizeClassOf(c.Size); got != c.SizeClass {
			return fmt.Errorf("tune: cell %d: size %d is class %q, labeled %q", i, c.Size, got, c.SizeClass)
		}
		if seen[c.Key()] {
			return fmt.Errorf("tune: duplicate cell %s", c.Key())
		}
		seen[c.Key()] = true
		if err := c.Plan.Validate(); err != nil {
			return fmt.Errorf("tune: cell %s: %w", c.Key(), err)
		}
	}
	return nil
}

// Encode renders the file deterministically: cells sorted by key, indented
// JSON, trailing newline. Encode(Decode(Encode(f))) is byte-identical.
func (f File) Encode() ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	sort.Slice(f.Cells, func(i, j int) bool { return f.Cells[i].Key() < f.Cells[j].Key() })
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses and validates a plan file. Unknown fields, trailing
// garbage, version skew and out-of-range knobs are all hard errors — a
// tuner that silently ignored a knob it cannot honor would report wins it
// never measured.
func Decode(data []byte) (File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return File{}, fmt.Errorf("tune: plan file: %w", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err == nil || err.Error() != "EOF" {
		return File{}, fmt.Errorf("tune: plan file: trailing data after document")
	}
	if err := f.Validate(); err != nil {
		return File{}, err
	}
	return f, nil
}

// Load reads and decodes a plan file from disk.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	f, err := Decode(data)
	if err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Lookup finds the plan covering (collective, size) via its size class.
func (f File) Lookup(collective string, size int) (CellPlan, bool) {
	class := SizeClassOf(size)
	for _, c := range f.Cells {
		if c.Collective == collective && c.SizeClass == class {
			return c, true
		}
	}
	return CellPlan{}, false
}
