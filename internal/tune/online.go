package tune

import (
	"fmt"
	"sync"

	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/gxhc"
	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// OnlineOpts configures an online tuning run: the candidate plan set
// (plans[0] is the construction plan every other candidate must be
// boundary-switchable from), the round structure, and the bandit seed.
type OnlineOpts struct {
	Plans       []Plan
	Rounds      int
	OpsPerRound int
	Bytes       int
	Seed        uint64
}

func (o OnlineOpts) defaults() OnlineOpts {
	if o.Plans == nil {
		o.Plans = OnlinePlans()
	}
	if o.Rounds == 0 {
		o.Rounds = 3 * len(o.Plans)
	}
	if o.OpsPerRound == 0 {
		o.OpsPerRound = 8
	}
	if o.Bytes == 0 {
		o.Bytes = 8 << 10
	}
	if o.Seed == 0 {
		o.Seed = 0x7e1e8e7a11a9
	}
	return o
}

// OnlineResult reports an online run: the best plan by running mean, the
// arm chosen each round, and the per-arm statistics.
type OnlineResult struct {
	Best     Plan
	Trace    []int
	Means    []float64
	Pulls    []int64
	Switches int
}

// onlineState is the rank-0 decision state shared across rounds. Every
// method runs inside the communicator's quiesced Retune window, so plain
// fields need no locking on either backend.
type onlineState struct {
	plans []Plan
	b     *Bandit
	win   RewardWindow
	arm   int
	trace []int
}

func newOnlineState(plans []Plan, seed uint64) *onlineState {
	return &onlineState{plans: plans, b: NewBandit(len(plans), seed)}
}

// step makes one round's plan decision: credit the finished round's
// samples to the arm that ran them, bias exploration by critical-path
// blame, and pick the next arm. The caller must have folded the recorder
// into reg (obs.World.Sync) first.
func (s *onlineState) step(reg *obs.Registry, op obs.OpCode, round int) int {
	if mean, n := s.win.Delta(reg, op); round > 0 && n > 0 {
		s.b.Observe(s.arm, mean)
	}
	if bias := BiasArm(reg.Snapshot(), s.plans); bias >= 0 {
		s.b.SetBias(bias)
	}
	s.arm = s.b.Next()
	s.trace = append(s.trace, s.arm)
	return s.arm
}

func (s *onlineState) result() OnlineResult {
	r := OnlineResult{
		Best:  s.plans[s.b.Best()],
		Trace: s.trace,
		Means: s.b.Means(),
		Pulls: s.b.Pulls(),
	}
	for i := 1; i < len(s.trace); i++ {
		if s.trace[i] != s.trace[i-1] {
			r.Switches++
		}
	}
	return r
}

// RunOnlineSim drives the bandit against a live simulated communicator:
// each round opens with a Retune at the op boundary — rank 0 folds the
// recorder (World.Sync), reads the new histogram samples as the previous
// arm's reward, and installs the chosen plan — then runs OpsPerRound
// broadcasts under it. The simulated clock makes the whole run, including
// the bandit's choices, deterministic for a fixed seed.
func RunOnlineSim(platform string, nranks int, o OnlineOpts) (OnlineResult, error) {
	o = o.defaults()
	if err := validateOnlineSet(o.Plans); err != nil {
		return OnlineResult{}, err
	}
	top := topo.ByName(platform)
	if top == nil {
		return OnlineResult{}, fmt.Errorf("tune: unknown platform %q", platform)
	}
	if nranks == 0 {
		nranks = top.NCores
	}
	m, err := top.Map(topo.MapCore, nranks)
	if err != nil {
		return OnlineResult{}, err
	}
	reg := obs.NewRegistry(false)
	w := env.NewWorld(top, m)
	// Observe just this world (the package-global env.ObserveWorlds hook
	// would leak the registry into unrelated worlds).
	wo := reg.NewWorld(top.Name, nranks, obs.SimTicksPerUS, w.Sys.Eng.Clock())
	wo.InitDistance(w.Topo, w.Map)
	w.Obs = wo
	w.Sys.OnFlow = wo.FlowHook()

	cfg, err := o.Plans[0].CoreConfig()
	if err != nil {
		return OnlineResult{}, err
	}
	comm, err := core.New(w, cfg)
	if err != nil {
		return OnlineResult{}, err
	}
	bufs := make([]*mem.Buffer, nranks)
	for r := 0; r < nranks; r++ {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("tune.b%d", r), r, o.Bytes)
	}
	st := newOnlineState(o.Plans, o.Seed)
	if err := w.Run(func(p *env.Proc) {
		for round := 0; round < o.Rounds; round++ {
			round := round
			comm.Retune(p, func() core.Tuning {
				w.Obs.Sync()
				arm := st.step(reg, obs.OpBcast, round)
				return o.Plans[arm].CoreTuning()
			})
			for k := 0; k < o.OpsPerRound; k++ {
				comm.Bcast(p, bufs[p.Rank], 0, o.Bytes, 0)
			}
		}
	}); err != nil {
		return OnlineResult{}, err
	}
	return st.result(), nil
}

// RunOnlineGxhc is the same loop on the real-concurrency backend: one
// goroutine per rank, the plan decided inside gxhc.Retune's quiesced
// window (every rank parked in the rendezvous, no requests in flight, so
// rank 0 may fold and read the wall-clock recorder safely). Rewards are
// wall-clock here, so the chosen plan varies run to run — the run's
// invariants (correct data across switches, quiesced application) are
// what the verify harness pins.
func RunOnlineGxhc(nranks int, o OnlineOpts, spin bool) (OnlineResult, error) {
	o = o.defaults()
	if err := validateOnlineSet(o.Plans); err != nil {
		return OnlineResult{}, err
	}
	reg := obs.NewRegistry(false)
	wo := reg.NewWorld("gxhc", nranks, obs.WallTicksPerUS, obs.WallClock())
	wo.Rec.Backend = "gxhc"
	comm, err := gxhc.New(nranks, o.Plans[0].GxhcConfig(spin))
	if err != nil {
		return OnlineResult{}, err
	}
	comm.AttachRecorder(wo.Rec)

	st := newOnlineState(o.Plans, o.Seed)
	errs := make([]error, nranks)
	var wg sync.WaitGroup
	for r := 0; r < nranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := make([]byte, o.Bytes)
			for round := 0; round < o.Rounds; round++ {
				comm.Retune(rank, func() gxhc.Tuning {
					wo.Sync()
					arm := st.step(reg, obs.OpBcast, round)
					return o.Plans[arm].GxhcTuning()
				})
				for k := 0; k < o.OpsPerRound; k++ {
					if rank == 0 {
						for i := range buf {
							buf[i] = byte(round + k + i)
						}
					}
					comm.Bcast(rank, buf, 0)
					for i := range buf {
						if buf[i] != byte(round+k+i) {
							errs[rank] = fmt.Errorf("tune: gxhc online: rank %d round %d op %d: byte %d corrupt across plan switch",
								rank, round, k, i)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	wo.Finish(mem.Stats{}, sim.EngineStats{})
	for _, e := range errs {
		if e != nil {
			return OnlineResult{}, e
		}
	}
	return st.result(), nil
}
