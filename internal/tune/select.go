package tune

import "sort"

// Sample is one sweep measurement: a plan's mean latency on a cell's
// representative payload.
type Sample struct {
	Cell   Cell
	Size   int
	Plan   Plan
	MeanUS float64
	MinUS  float64
	MaxUS  float64
}

// Select reduces sweep samples to one winning plan per cell. It is total
// and deterministic: every cell appearing in the input yields exactly one
// CellPlan, the winner is the sample with the lowest mean latency (ties
// broken by plan name, then by the full canonical plan rendering, so even
// same-named plans order), and the output is invariant under any
// permutation of the input. BaselineUS records the default-named plan's
// mean when the sweep measured one (0 otherwise — a baseline the sweep
// did not run must not be invented).
func Select(samples []Sample) []CellPlan {
	type group struct {
		best     Sample
		baseline float64
	}
	defName := DefaultPlan().Name
	groups := make(map[string]*group)
	var order []string
	better := func(a, b Sample) bool {
		if a.MeanUS != b.MeanUS {
			return a.MeanUS < b.MeanUS
		}
		if a.Plan.Name != b.Plan.Name {
			return a.Plan.Name < b.Plan.Name
		}
		return a.Plan.key() < b.Plan.key()
	}
	for _, s := range samples {
		k := s.Cell.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{best: s}
			groups[k] = g
			order = append(order, k)
		} else if better(s, g.best) {
			g.best = s
		}
		if s.Plan.Name == defName {
			// Multiple default-plan measurements of one cell keep the best
			// (lowest) one — the strongest baseline the winner must beat.
			if g.baseline == 0 || s.MeanUS < g.baseline {
				g.baseline = s.MeanUS
			}
		}
	}
	sort.Strings(order)
	out := make([]CellPlan, 0, len(order))
	for _, k := range order {
		g := groups[k]
		out = append(out, CellPlan{
			Cell:       g.best.Cell,
			Size:       g.best.Size,
			Plan:       g.best.Plan,
			BaselineUS: g.baseline,
			TunedUS:    g.best.MeanUS,
		})
	}
	return out
}
