package tune

import (
	"fmt"

	"xhc/internal/obs"
)

// splitmix64 steps the bandit's deterministic exploration stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Bandit is a deterministic epsilon-greedy bandit over a small candidate
// plan set: each arm tracks the running mean of the per-operation latency
// observed while it was live, Next exploits the best arm three rounds out
// of four and explores on the fourth, and a blame bias (from critical-path
// telemetry) steers the next exploration toward the arm the edge blame
// points at instead of a uniform draw.
type Bandit struct {
	state uint64
	pulls []int64
	sums  []float64
	bias  int
}

// NewBandit creates a bandit over n arms with a deterministic seed.
func NewBandit(n int, seed uint64) *Bandit {
	return &Bandit{state: seed, pulls: make([]int64, n), sums: make([]float64, n), bias: -1}
}

func (b *Bandit) rand() uint64 {
	b.state = splitmix64(b.state)
	return b.state
}

// Next picks the arm for the coming round: unpulled arms first (in index
// order, so every candidate gets one measurement), then epsilon-greedy.
func (b *Bandit) Next() int {
	for i, p := range b.pulls {
		if p == 0 {
			return i
		}
	}
	if b.rand()%4 == 0 { // explore
		if b.bias >= 0 {
			arm := b.bias
			b.bias = -1
			return arm
		}
		return int(b.rand() % uint64(len(b.pulls)))
	}
	return b.Best()
}

// Observe credits one round's mean per-op latency to the arm that ran it.
func (b *Bandit) Observe(arm int, meanUS float64) {
	b.pulls[arm]++
	b.sums[arm] += meanUS
}

// SetBias marks the arm the next exploration should try (telemetry hint).
func (b *Bandit) SetBias(arm int) {
	if arm >= 0 && arm < len(b.pulls) {
		b.bias = arm
	}
}

// Best returns the pulled arm with the lowest running mean (ties: lowest
// index; nothing pulled: arm 0, the caller's default plan by convention).
func (b *Bandit) Best() int {
	best, bestMean := 0, 0.0
	found := false
	for i, p := range b.pulls {
		if p == 0 {
			continue
		}
		m := b.sums[i] / float64(p)
		if !found || m < bestMean {
			best, bestMean, found = i, m, true
		}
	}
	return best
}

// Means returns each arm's running mean (0 for unpulled arms).
func (b *Bandit) Means() []float64 {
	out := make([]float64, len(b.pulls))
	for i, p := range b.pulls {
		if p > 0 {
			out[i] = b.sums[i] / float64(p)
		}
	}
	return out
}

// Pulls returns each arm's pull count.
func (b *Bandit) Pulls() []int64 { return append([]int64(nil), b.pulls...) }

// RewardWindow turns the registry's cumulative latency histograms into
// per-round rewards: each Delta call returns the mean latency of only the
// samples folded since the previous call, filtered to one collective — so
// the barrier/rendezvous traffic of the plan switch itself never pollutes
// the reward, and each arm is credited with exactly the ops it ran.
type RewardWindow struct {
	prev map[obs.HistKey]obs.Histogram
}

// Delta returns (mean latency us, sample count) of the op's new samples
// since the last call. The caller must fold the recorder first
// (obs.World.Sync) — Delta reads only what the registry has seen.
func (rw *RewardWindow) Delta(reg *obs.Registry, op obs.OpCode) (float64, int64) {
	cur := reg.HistSnapshot()
	var count, sum int64
	for k, h := range cur {
		if k.Op != op {
			continue
		}
		p := rw.prev[k]
		count += h.Count - p.Count
		sum += h.SumNS - p.SumNS
	}
	rw.prev = cur
	if count == 0 {
		return 0, 0
	}
	return float64(sum) / float64(count) / 1e3, count
}

// BiasArm maps the dominant critical-path edge to the candidate arm best
// positioned to relieve it: flag-wait blame prefers the arm with the
// largest CICO threshold (the CICO path publishes one flag where the
// XPMEM path publishes exposure plus per-chunk ready counters), chunk-copy
// blame prefers the largest pipelining granule (fewer flag round-trips per
// byte). Returns -1 when the snapshot carries no blame to act on.
func BiasArm(snap obs.Snapshot, plans []Plan) int {
	flagWait := snap.Value("crit.flag_wait.blame_us")
	chunkCopy := snap.Value("crit.chunk_copy.blame_us")
	if flagWait <= 0 && chunkCopy <= 0 {
		return -1
	}
	arm := -1
	if flagWait >= chunkCopy {
		best := -1
		for i, p := range plans {
			if p.CICOThreshold > best {
				best, arm = p.CICOThreshold, i
			}
		}
	} else {
		best := -1
		for i, p := range plans {
			if p.ChunkBytes[0] > best {
				best, arm = p.ChunkBytes[0], i
			}
		}
	}
	return arm
}

// validateOnlineSet checks every candidate is boundary-switchable from
// the construction plan (plans[0]).
func validateOnlineSet(plans []Plan) error {
	if len(plans) < 2 {
		return fmt.Errorf("tune: online tuning needs at least 2 candidate plans, have %d", len(plans))
	}
	for _, p := range plans {
		if err := p.Validate(); err != nil {
			return err
		}
		if err := p.SwitchableFrom(plans[0]); err != nil {
			return err
		}
	}
	return nil
}

// OnlinePlans is the default online candidate set: boundary-switchable
// variations of the default plan (same hierarchy, CICO buffer and group
// size, so any of them can be applied to the live communicator).
func OnlinePlans() []Plan {
	d := DefaultPlan()
	mk := func(name string, mut func(*Plan)) Plan {
		p := d
		p.Name = name
		p.ChunkBytes = append([]int(nil), d.ChunkBytes...)
		mut(&p)
		return p
	}
	return []Plan{
		d,
		mk("chunk-4k", func(p *Plan) { p.ChunkBytes = []int{4 << 10} }),
		mk("chunk-64k", func(p *Plan) { p.ChunkBytes = []int{64 << 10} }),
		mk("cico-wide", func(p *Plan) { p.CICOThreshold = 8 << 10 }),
		mk("cico-off", func(p *Plan) { p.CICOThreshold = 0; p.FuseBytes = 0 }),
		mk("spin-hot", func(p *Plan) { p.SpinProbes = 384; p.SpinScaleMax = 16 }),
	}
}
