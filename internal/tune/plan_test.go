package tune

import (
	"strings"
	"testing"
)

// validFile builds a small in-memory plan file for codec tests.
func validFile() File {
	cells := PinnedCells("ARM-N1")
	plans := CandidatePlans()
	var cps []CellPlan
	for i, c := range cells[:3] {
		cps = append(cps, CellPlan{
			Cell: c.Cell, Size: c.Size, Plan: plans[i%len(plans)],
			BaselineUS: 10 + float64(i), TunedUS: 8 + float64(i),
		})
	}
	return File{Version: FileVersion, Platform: "ARM-N1", Cells: cps}
}

func TestPlanFileRoundTrip(t *testing.T) {
	f := validFile()
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", data, again)
	}
}

// TestDecodeRejects pins the strict-parse contract: every malformed input
// is a hard error naming the problem — never a silent fallback.
func TestDecodeRejects(t *testing.T) {
	valid, err := validFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	reject := func(name string, data []byte, wantSub string) {
		t.Helper()
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		} else if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}
	reject("truncated", valid[:len(valid)/2], "")
	reject("trailing-garbage", append(append([]byte{}, valid...), []byte("{}")...), "trailing")
	reject("version-skew", []byte(strings.Replace(string(valid), `"version": 1`, `"version": 2`, 1)), "version")
	reject("unknown-knob", []byte(strings.Replace(string(valid), `"cico_threshold"`, `"cico_limit"`, 1)), "unknown field")
	reject("bad-platform", []byte(strings.ReplaceAll(string(valid), `"ARM-N1"`, `"VAX-11"`)), "platform")
	reject("empty", nil, "")

	bad := validFile()
	bad.Cells[0].Plan.ChunkBytes = []int{-4096}
	if _, err := bad.Encode(); err == nil {
		t.Error("encode accepted a negative chunk size")
	}
	dup := validFile()
	dup.Cells = append(dup.Cells, dup.Cells[0])
	if _, err := dup.Encode(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate cell not rejected: %v", err)
	}
	fuse := validFile()
	fuse.Cells[0].Plan.FuseBytes = fuse.Cells[0].Plan.CICOThreshold + 1
	if _, err := fuse.Encode(); err == nil || !strings.Contains(err.Error(), "fuse") {
		t.Errorf("fuse cap past staging capacity not rejected: %v", err)
	}
	class := validFile()
	class.Cells[0].SizeClass = ClassLarge
	if _, err := class.Encode(); err == nil || !strings.Contains(err.Error(), "class") {
		t.Errorf("mislabeled size class not rejected: %v", err)
	}
}

func TestLookup(t *testing.T) {
	f := File{Version: FileVersion, Platform: "ARM-N1", Cells: []CellPlan{{
		Cell: Cell{Platform: "ARM-N1", Collective: "bcast", SizeClass: ClassMedium},
		Size: 8 << 10, Plan: DefaultPlan(),
	}}}
	if _, ok := f.Lookup("bcast", 4<<10); !ok {
		t.Error("medium-class size 4K not covered by the medium cell")
	}
	if _, ok := f.Lookup("bcast", 4); ok {
		t.Error("small-class lookup matched the medium cell")
	}
	if _, ok := f.Lookup("scatter", 8<<10); ok {
		t.Error("unknown collective matched")
	}
}

// FuzzPlanFile fuzzes the strict plan-file parser: Decode must never
// panic, and anything it accepts must survive a byte-identical
// encode/decode round trip (the determinism the repro gate rests on).
func FuzzPlanFile(f *testing.F) {
	valid, err := validFile().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 99, "platform": "ARM-N1", "cells": null}`))
	f.Add([]byte(strings.Replace(string(valid), `"cico_threshold"`, `"cico_limit"`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"size_class": "small"`, `"size_class": "huge"`, 1)))
	f.Add([]byte(strings.ReplaceAll(string(valid), `8`, `-8`)))
	f.Add(append(append([]byte{}, valid...), '{', '}'))
	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := pf.Encode()
		if err != nil {
			t.Fatalf("accepted file failed to re-encode: %v", err)
		}
		pf2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded file failed to decode: %v", err)
		}
		enc2, err := pf2.Encode()
		if err != nil || string(enc2) != string(enc) {
			t.Fatalf("plan file round trip not byte-identical (err %v)", err)
		}
	})
}
