package tune

import (
	"fmt"
)

// Regression thresholds, shared with cmd/xhcstat's defaults: a tuned cell
// regresses when it is both more than RegressionFloorUS slower in absolute
// terms (sub-microsecond noise on tiny cells must not fail the gate) and
// more than RegressionThreshold slower relative to the default plan.
const (
	RegressionThreshold = 0.05
	RegressionFloorUS   = 1.0
)

// Regressed applies the gate rule to one cell.
func Regressed(defaultUS, tunedUS float64) bool {
	d := tunedUS - defaultUS
	return d > RegressionFloorUS && (defaultUS <= 0 || d/defaultUS > RegressionThreshold)
}

// CheckResult is one replayed pinned cell of the repro gate.
type CheckResult struct {
	Key       string  `json:"key"`
	Size      int     `json:"size"`
	Plan      string  `json:"plan"`
	DefaultUS float64 `json:"default_us"`
	TunedUS   float64 `json:"tuned_us"`
	// RecordedUS is the tuned latency the plan file promised when the
	// sweep selected this plan; a drift between it and TunedUS means the
	// simulator's cost model moved since the file was written.
	RecordedUS float64 `json:"recorded_us"`
	Regressed  bool    `json:"regressed"`
}

// CheckOpts configures a repro-gate run.
type CheckOpts struct {
	// NRanks must match the sweep that produced the file (0: all cores).
	NRanks int
	// Quick trims iterations; simulated latencies are identical either
	// way, so the verdicts match the full run's.
	Quick bool
	// Progress, when set, receives one line per replayed cell.
	Progress func(format string, args ...any)
}

// Check replays every pinned cell of the plan file: each cell is measured
// fresh under the default plan and under the file's winning plan, and the
// tuned run must beat or tie the default within the regression
// thresholds. The returned error is non-nil only for infrastructure
// failures; regressions are reported per cell so the caller can render
// all of them before failing.
func Check(f File, o CheckOpts) ([]CheckResult, int, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, err
	}
	warmup, iters := 2, 5
	if o.Quick {
		warmup, iters = 1, 2
	}
	def := DefaultPlan()
	var out []CheckResult
	regressions := 0
	for _, cp := range f.Cells {
		pc := PinnedCell{Cell: cp.Cell, Size: cp.Size}
		rd, err := Measure(pc, def, o.NRanks, warmup, iters)
		if err != nil {
			return nil, 0, fmt.Errorf("tune: check %s: default plan: %w", cp.Key(), err)
		}
		rt, err := Measure(pc, cp.Plan, o.NRanks, warmup, iters)
		if err != nil {
			return nil, 0, fmt.Errorf("tune: check %s: plan %s: %w", cp.Key(), cp.Plan.Name, err)
		}
		r := CheckResult{
			Key: cp.Key(), Size: cp.Size, Plan: cp.Plan.Name,
			DefaultUS: rd.AvgLat, TunedUS: rt.AvgLat, RecordedUS: cp.TunedUS,
			Regressed: Regressed(rd.AvgLat, rt.AvgLat),
		}
		if r.Regressed {
			regressions++
		}
		out = append(out, r)
		if o.Progress != nil {
			verdict := "ok"
			if r.Regressed {
				verdict = "REGRESSED"
			}
			o.Progress("tune: check %-32s plan=%-12s default=%.2fus tuned=%.2fus %s",
				r.Key, r.Plan, r.DefaultUS, r.TunedUS, verdict)
		}
	}
	return out, regressions, nil
}
