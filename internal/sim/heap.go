package sim

// event is a scheduled callback. Events fire in (at, prio, seq) order:
// prio is 0 for every event unless a TieBreaker is installed (see
// schedule.go), so the default order is the deterministic first-scheduled,
// first-fired FIFO. An event carries either fn or tagFn(tag): the tagged
// form lets hot paths reuse one long-lived closure and pass the varying
// datum (a version, a wake token) through the event itself instead of
// allocating a capture.
type event struct {
	at    Time
	prio  uint64
	seq   uint64
	fn    func()
	tagFn func(uint64)
	tag   uint64
}

// eventHeap is a binary min-heap of events ordered by (at, prio, seq).
type eventHeap struct {
	items []event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// peekTime returns the timestamp of the earliest event; ok is false when
// the heap is empty.
func (h *eventHeap) peekTime() (Time, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].at, true
}
