package sim

// Schedule control. By default the engine is FIFO-deterministic: events
// with equal timestamps fire in creation order. That determinism is what
// makes reports reproducible — and it also means every test run explores
// exactly ONE interleaving of each configuration. The protocol checker
// (internal/verify) needs the opposite: many distinct, replayable
// interleavings per configuration. A TieBreaker provides that. It only
// reorders events that share a timestamp, so virtual time stays monotone
// and the memory model's timing stays intact; what changes is which of the
// logically-concurrent parties runs first — exactly the freedom a real
// machine's scheduler and cache fabric have.

// TieBreaker assigns a priority to each newly scheduled event. Among
// events with equal timestamps, lower priority fires first; equal
// priorities fall back to creation order. Implementations must be
// deterministic functions of their seed so failing schedules replay
// exactly.
type TieBreaker interface {
	// Priority returns the priority for the event with the given creation
	// sequence number.
	Priority(seq uint64) uint64
}

// splitmix64 is the PRNG behind the seeded tie-breakers. A local
// implementation (rather than math/rand) pins the exact stream to this
// repository: replay seeds stay valid across Go releases.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// randomTieBreaker draws an independent priority per event: uniform
// shuffling of every simultaneous-event set.
type randomTieBreaker struct{ rng splitmix64 }

// NewRandomTieBreaker returns a tie-breaker that orders simultaneous
// events uniformly at random, deterministically from seed.
func NewRandomTieBreaker(seed uint64) TieBreaker {
	return &randomTieBreaker{rng: splitmix64{state: seed}}
}

func (r *randomTieBreaker) Priority(uint64) uint64 { return r.rng.next() }

// pctTieBreaker is a PCT-style schedule (Burckhardt et al., "A Randomized
// Scheduler with Probabilistic Guarantees of Finding Bugs"), adapted to
// event granularity: instead of fresh randomness per event it holds one
// priority for a whole burst of consecutively scheduled events and changes
// it at randomly drawn points. Long runs of same-priority events keep
// causally related work together (like PCT's per-thread priorities), while
// the change points inject the small number of targeted preemptions that
// expose ordering bugs depth-first randomness tends to miss.
type pctTieBreaker struct {
	rng   splitmix64
	cur   uint64
	left  uint64
	burst uint64
}

// NewPCTTieBreaker returns a PCT-style tie-breaker: priorities constant
// over bursts of 1..maxBurst events, re-drawn at each change point.
// maxBurst <= 0 defaults to 64.
func NewPCTTieBreaker(seed uint64, maxBurst int) TieBreaker {
	if maxBurst <= 0 {
		maxBurst = 64
	}
	return &pctTieBreaker{rng: splitmix64{state: seed}, burst: uint64(maxBurst)}
}

func (t *pctTieBreaker) Priority(uint64) uint64 {
	if t.left == 0 {
		t.cur = t.rng.next()
		t.left = 1 + t.rng.next()%t.burst
	}
	t.left--
	return t.cur
}

// SetTieBreaker installs tb for all subsequently scheduled events (nil
// restores FIFO). Install it before spawning processes: events already in
// the heap keep the priorities they were assigned.
func (e *Engine) SetTieBreaker(tb TieBreaker) { e.tie = tb }

// SetWakeJitter installs a fault-injection hook that delays every Wake by
// the returned (non-negative) duration. Monotone-counter protocols must
// tolerate arbitrarily late wakeups — a waiter that wakes late simply
// observes a larger counter value — so any failure under jitter is a real
// protocol bug. nil disables jitter.
func (e *Engine) SetWakeJitter(fn func() Duration) { e.wakeJitter = fn }

// EnableScheduleHash starts fingerprinting the executed schedule: an
// FNV-1a hash over the (time, seq) stream of fired events. Two runs with
// the same hash executed the same interleaving; the checker counts
// distinct hashes to prove it is exploring genuinely different schedules
// rather than re-running one.
func (e *Engine) EnableScheduleHash() {
	e.hashOn = true
	e.schedHash = fnvOffset
}

// ScheduleHash returns the fingerprint accumulated so far (0 if disabled).
func (e *Engine) ScheduleHash() uint64 {
	if !e.hashOn {
		return 0
	}
	return e.schedHash
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// CombineShardHashes folds per-shard schedule fingerprints into one
// cluster-level fingerprint: FNV-1a over the shard hash words in slice
// (node-index) order. Each shard engine is single-threaded and fingerprints
// its own event stream, so the combined value depends only on the per-shard
// streams and the node order — never on which OS thread ran which shard —
// making cluster replay tokens bit-exact at any GOMAXPROCS or worker count.
func CombineShardHashes(shards []uint64) uint64 {
	h := fnvOffset
	for _, s := range shards {
		for i := 0; i < 8; i++ {
			h = (h ^ (s & 0xff)) * fnvPrime
			s >>= 8
		}
	}
	return h
}

// hashEvent folds one fired event into the schedule fingerprint.
func (e *Engine) hashEvent(at Time, seq uint64) {
	h := e.schedHash
	x := uint64(at)
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime
		x >>= 8
	}
	x = seq
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime
		x >>= 8
	}
	e.schedHash = h
}
