// Package sim is a deterministic, process-oriented discrete-event
// simulation engine. Simulated processes run as goroutines, but exactly one
// of them (or the engine itself) executes at any moment, handing control
// back and forth over unbuffered channels; events with equal timestamps are
// ordered by creation sequence, so a run is a pure function of its inputs.
//
// The rest of the repository builds a multicore-node memory-system model
// (package mem) and MPI-like ranks (package env) on top of this engine.
package sim

import "fmt"

// Time is a point in virtual time, in integer picoseconds. Picosecond
// granularity keeps bandwidth arithmetic exact (one byte at 20 GB/s is
// 50 ps) while int64 still spans over 100 virtual days.
type Time = int64

// Duration is a span of virtual time in picoseconds.
type Duration = int64

// Duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// FmtTime renders a virtual time compactly for logs and test output.
func FmtTime(t Time) string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", t)
	}
}

// Micros converts a virtual duration to float microseconds (the unit used
// throughout the paper's figures).
func Micros(d Duration) float64 { return float64(d) / float64(Microsecond) }

// BytesOver returns the time to move n bytes at the given bandwidth in
// bytes/second, rounded up to a whole picosecond.
func BytesOver(n int64, bytesPerSec float64) Duration {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	ps := float64(n) / bytesPerSec * float64(Second)
	d := Duration(ps)
	// Round up, with a relative epsilon so exact values (e.g. 20 bytes at
	// 20 GB/s = 1000 ps) do not get inflated by float slop.
	if float64(d) < ps*(1-1e-12) {
		d++
	}
	return d
}
