package sim

import "testing"

// raceOrder runs nProcs processes that all wake at the same instants and
// records the order in which they got to run.
func raceOrder(tb TieBreaker) []int {
	e := NewEngine()
	e.SetTieBreaker(tb)
	e.EnableScheduleHash()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			for step := 0; step < 4; step++ {
				p.Sleep(100) // all procs sleep to the same timestamps
				order = append(order, i)
			}
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return order
}

func TestTieBreakerReplaysExactly(t *testing.T) {
	a := raceOrder(NewRandomTieBreaker(42))
	b := raceOrder(NewRandomTieBreaker(42))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a, b)
		}
	}
}

func TestTieBreakersExploreDistinctOrders(t *testing.T) {
	fifo := raceOrder(nil)
	seen := map[string]bool{key(fifo): true}
	for seed := uint64(1); seed <= 20; seed++ {
		seen[key(raceOrder(NewRandomTieBreaker(seed)))] = true
		seen[key(raceOrder(NewPCTTieBreaker(seed, 16)))] = true
	}
	// 41 runs over 8 procs x 4 steps: collisions are possible but most
	// orders must differ, or the breakers are not actually reordering.
	if len(seen) < 20 {
		t.Fatalf("only %d distinct orders out of 41 runs", len(seen))
	}
}

func key(order []int) string {
	b := make([]byte, len(order))
	for i, v := range order {
		b[i] = byte(v)
	}
	return string(b)
}

func TestScheduleHashDistinguishesSchedules(t *testing.T) {
	hash := func(tb TieBreaker) uint64 {
		e := NewEngine()
		e.SetTieBreaker(tb)
		e.EnableScheduleHash()
		for i := 0; i < 6; i++ {
			e.Go("p", func(p *Proc) {
				for s := 0; s < 3; s++ {
					p.Sleep(50)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.ScheduleHash()
	}
	h1, h1b := hash(NewRandomTieBreaker(7)), hash(NewRandomTieBreaker(7))
	if h1 != h1b {
		t.Fatalf("same seed, different hash: %x vs %x", h1, h1b)
	}
	if h2 := hash(NewRandomTieBreaker(8)); h2 == h1 {
		t.Fatalf("seeds 7 and 8 produced the same schedule hash %x", h1)
	}
	if hf := hash(nil); hf == h1 {
		t.Fatalf("FIFO and random schedules hashed identically: %x", h1)
	}
}

func TestWakeJitterDelaysButCompletes(t *testing.T) {
	e := NewEngine()
	jit := &splitmix64{state: 3}
	e.SetWakeJitter(func() Duration { return Duration(jit.next() % 1000) })
	var waiter *Proc
	var tok uint64
	done := false
	waiter = e.Go("waiter", func(p *Proc) {
		tok = p.NextSuspendToken()
		p.Suspend("test wait")
		done = true
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(10)
		e.Wake(waiter, tok, e.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("waiter never resumed")
	}
	if e.Now() < 10 {
		t.Fatalf("clock did not advance past the signal: %d", e.Now())
	}
}

func TestFIFODefaultUnchanged(t *testing.T) {
	// Without a tie-breaker the order must be exactly creation order.
	e := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO order broken: %v", got)
		}
	}
}
