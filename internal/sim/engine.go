package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Engine is the discrete-event scheduler. It is not safe for concurrent
// use from multiple goroutines except through the Proc handshake, which
// guarantees that only one party runs at a time.
type Engine struct {
	now  Time
	seq  uint64
	heap eventHeap

	procs    []*Proc
	live     int // procs that have not finished
	failure  error
	stopping bool

	// Schedule-exploration hooks (schedule.go): tie orders simultaneous
	// events, wakeJitter delays wakeups, schedHash fingerprints the
	// executed schedule. All nil/zero by default: the FIFO path is
	// unchanged.
	tie        TieBreaker
	wakeJitter func() Duration
	hashOn     bool
	schedHash  uint64

	stats EngineStats
}

// EngineStats counts scheduler work, for perf regression tests and the
// simulator benchmarks (DESIGN.md §8).
type EngineStats struct {
	EventsScheduled int64 // total At/After/Go/Wake pushes
	EventsRun       int64 // events popped and executed
	MaxHeapLen      int   // high-water mark of pending events
}

// Stats returns a snapshot of the scheduler counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// HeapLen returns the number of currently pending events.
func (e *Engine) HeapLen() int { return e.heap.Len() }

// NewEngine returns an empty engine at virtual time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Clock returns a reusable closure reading the engine's virtual time — the
// clock hook span tracers record against. One closure serves any number of
// spans, so handing it out keeps tracing off the allocation paths.
func (e *Engine) Clock() func() int64 { return func() int64 { return e.now } }

// At schedules fn to run at virtual time t (>= Now). Scheduling in the past
// panics: it would make the clock non-monotonic.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %s before now %s", FmtTime(t), FmtTime(e.now)))
	}
	e.seq++
	e.heap.push(event{at: t, prio: e.eventPrio(), seq: e.seq, fn: fn})
	e.stats.EventsScheduled++
	if n := e.heap.Len(); n > e.stats.MaxHeapLen {
		e.stats.MaxHeapLen = n
	}
}

// eventPrio consults the installed tie-breaker (0, the FIFO priority,
// without one). Must run after e.seq is advanced.
func (e *Engine) eventPrio() uint64 {
	if e.tie == nil {
		return 0
	}
	return e.tie.Priority(e.seq)
}

// AtTag schedules fn(tag) at virtual time t. It behaves exactly like At
// but lets callers reuse one long-lived closure for many events, keeping
// allocation out of the scheduling hot path.
func (e *Engine) AtTag(t Time, tag uint64, fn func(uint64)) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %s before now %s", FmtTime(t), FmtTime(e.now)))
	}
	e.seq++
	e.heap.push(event{at: t, prio: e.eventPrio(), seq: e.seq, tagFn: fn, tag: tag})
	e.stats.EventsScheduled++
	if n := e.heap.Len(); n > e.stats.MaxHeapLen {
		e.stats.MaxHeapLen = n
	}
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Go spawns a simulated process running fn. The process starts at the
// current virtual time, after already-pending events at this timestamp.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		ID:     len(e.procs),
		Name:   name,
		eng:    e,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	// One reusable closure per process: Sleep/YieldStep re-arm stepFn and
	// Wake re-arms wakeFn on every call, so the simulation hot loop
	// schedules events without allocating.
	p.stepFn = func() { e.step(p) }
	p.wakeFn = func(token uint64) {
		if p.suspended && p.suspendToken == token {
			p.suspended = false // consume before stepping: step may re-suspend
			e.step(p)
		}
	}
	e.procs = append(e.procs, p)
	e.live++
	go p.run(fn)
	e.At(e.now, func() { e.step(p) })
	return p
}

// step hands control to p until it blocks again or finishes.
func (e *Engine) step(p *Proc) {
	if p.finished {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
	if p.finished {
		e.live--
	}
}

// fail records the first failure; the engine stops at the next event.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopping = true
}

// Run processes events until every process has finished. It returns an
// error if a process panicked, or if the event queue drains while
// processes are still suspended (a deadlock).
func (e *Engine) Run() error {
	for {
		if e.stopping {
			e.drainProcs()
			return e.failure
		}
		if e.heap.Len() == 0 {
			if e.live == 0 {
				return e.failure
			}
			return e.deadlockError()
		}
		ev := e.heap.pop()
		e.now = ev.at
		e.stats.EventsRun++
		if e.hashOn {
			e.hashEvent(ev.at, ev.seq)
		}
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.tagFn(ev.tag)
		}
	}
}

// RunUntilBlocked processes events until either every process has finished
// (done=true) or the event queue drains while processes are still suspended
// (done=false). Unlike Run, draining with live processes is not an error
// here: it is the synchronization point a sharded cluster coordinator
// (internal/env.ClusterWorld) resolves by delivering cross-shard wakeups
// and calling RunUntilBlocked again. A process failure surfaces as err
// exactly as it would from Run.
func (e *Engine) RunUntilBlocked() (done bool, err error) {
	for {
		if e.stopping {
			e.drainProcs()
			return true, e.failure
		}
		if e.heap.Len() == 0 {
			if e.live == 0 {
				return true, e.failure
			}
			return false, nil
		}
		ev := e.heap.pop()
		e.now = ev.at
		e.stats.EventsRun++
		if e.hashOn {
			e.hashEvent(ev.at, ev.seq)
		}
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.tagFn(ev.tag)
		}
	}
}

// Live returns the number of processes that have not finished.
func (e *Engine) Live() int { return e.live }

// BlockedError renders the suspended-process report of a blocked engine
// (the same text Run would return as a deadlock error). Cluster coordinators
// use it to aggregate a cross-shard deadlock report.
func (e *Engine) BlockedError() error { return e.deadlockError() }

// drainProcs unblocks goroutines of unfinished procs so they can exit.
// After a failure we simply abandon them: they stay parked on their resume
// channel and become garbage once the engine is dropped. (Goroutines
// blocked on a channel with no other reference are collected by the Go
// runtime's deadlock-free shutdown at process exit; within tests the
// leaked goroutines are inert.)
func (e *Engine) drainProcs() {}

// deadlockError reports which processes are stuck and why.
func (e *Engine) deadlockError() error {
	var stuck []string
	for _, p := range e.procs {
		if !p.finished {
			reason := p.waitReason
			if p.waitFmt != "" {
				reason = fmt.Sprintf(p.waitFmt, p.waitArg)
			}
			if p.waitUntil != 0 {
				reason = fmt.Sprintf("%s until %s", reason, FmtTime(p.waitUntil))
			}
			stuck = append(stuck, fmt.Sprintf("%s(#%d): %s", p.Name, p.ID, reason))
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("sim: deadlock at %s, %d processes suspended:\n  %s",
		FmtTime(e.now), len(stuck), strings.Join(stuck, "\n  "))
}
