package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulated process. Its function runs on a dedicated goroutine,
// but only while the engine has handed it control; every blocking method
// returns control to the engine.
type Proc struct {
	ID   int
	Name string

	eng    *Engine
	resume chan struct{}
	yield  chan struct{}
	stepFn func()       // reusable e.step(p) closure, set by Engine.Go
	wakeFn func(uint64) // reusable token-checked wake closure, set by Engine.Go

	finished   bool
	waitReason string
	waitUntil  Time // nonzero while sleeping: formatted lazily for reports
	// waitFmt/waitArg are the lazy form of waitReason: deadlock reports
	// render fmt.Sprintf(waitFmt, waitArg), so hot suspend paths never pay
	// for formatting (the same discipline Sleep follows with waitUntil).
	waitFmt string
	waitArg uint64

	// suspendToken invalidates stale wakeups: each Suspend call gets a new
	// token, and Wake calls carrying an old token are ignored.
	suspendToken uint64
	suspended    bool
}

// run is the goroutine body wrapping the user function.
func (p *Proc) run(fn func(*Proc)) {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			p.eng.fail(fmt.Errorf("sim: process %s(#%d) panicked: %v\n%s",
				p.Name, p.ID, r, debug.Stack()))
		}
		p.finished = true
		p.yield <- struct{}{}
	}()
	fn(p)
}

// yieldToEngine parks the goroutine until the engine resumes it.
func (p *Proc) yieldToEngine() {
	p.yield <- struct{}{}
	<-p.resume
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Sleep advances this process's virtual time by d (elapsing simulated work
// or latency). Other processes run in the meantime.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %d", d))
	}
	// The reason is kept as a constant string plus a timestamp and only
	// formatted in deadlock reports: Sleep is the hottest path in the
	// simulator and must not allocate.
	p.waitReason = "sleeping"
	p.waitUntil = p.eng.now + d
	p.eng.At(p.eng.now+d, p.stepFn)
	p.yieldToEngine()
	p.waitReason = ""
	p.waitUntil = 0
}

// Until sleeps until absolute virtual time t (no-op if t <= Now).
func (p *Proc) Until(t Time) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t - p.eng.now)
}

// YieldStep reschedules the process behind all events already pending at
// the current timestamp, without advancing time.
func (p *Proc) YieldStep() {
	p.waitReason = "yield"
	p.eng.At(p.eng.now, p.stepFn)
	p.yieldToEngine()
	p.waitReason = ""
}

// Suspend parks the process indefinitely; some other party must call Wake.
// The reason string appears in deadlock reports. It returns a token that
// identifies this particular suspension.
func (p *Proc) Suspend(reason string) uint64 {
	p.suspendToken++
	p.suspended = true
	p.waitReason = reason
	tok := p.suspendToken
	p.yieldToEngine()
	p.suspended = false
	p.waitReason = ""
	return tok
}

// SuspendLazy parks the process like Suspend, but defers formatting the
// wait reason until a deadlock report actually needs it: the reason renders
// as fmt.Sprintf(format, arg). Use it on hot paths (the harness barrier
// every rank crosses twice per iteration) where a fmt.Sprintf per suspend
// would put allocation back into the measurement loop.
func (p *Proc) SuspendLazy(format string, arg uint64) uint64 {
	p.suspendToken++
	p.suspended = true
	p.waitFmt = format
	p.waitArg = arg
	tok := p.suspendToken
	p.yieldToEngine()
	p.suspended = false
	p.waitFmt = ""
	return tok
}

// NextSuspendToken returns the token that the process's *next* Suspend
// call will receive. A signaler may capture it before the process suspends
// (while the process still holds control) to arm a wake for precisely that
// suspension.
func (p *Proc) NextSuspendToken() uint64 { return p.suspendToken + 1 }

// Wake schedules p to resume at time t, if it is still in the suspension
// identified by token. Stale or duplicate wakeups are ignored, so several
// signalers may race to wake the same process. The token rides on the
// event itself (AtTag), so waking does not allocate a closure. An
// installed wake-jitter hook (fault injection) pushes the wakeup later.
func (e *Engine) Wake(p *Proc, token uint64, t Time) {
	if e.wakeJitter != nil {
		if d := e.wakeJitter(); d > 0 {
			t += d
		}
	}
	e.AtTag(t, token, p.wakeFn)
}

// Finished reports whether the process function has returned.
func (p *Proc) Finished() bool { return p.finished }
