package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestTimeFormatting(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := FmtTime(c.t); got != c.want {
			t.Errorf("FmtTime(%d) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestBytesOver(t *testing.T) {
	// 1 GiB/s, 1 byte -> ~0.93 ns, rounded up from exact ps math.
	d := BytesOver(1, 1<<30)
	if d <= 0 {
		t.Fatalf("BytesOver(1, 1GiB/s) = %d", d)
	}
	// 20 GB/s, 20 bytes -> exactly 1 ns.
	if d := BytesOver(20, 20e9); d != Nanosecond {
		t.Errorf("BytesOver(20, 20GB/s) = %d, want %d", d, Nanosecond)
	}
	if BytesOver(0, 1e9) != 0 || BytesOver(5, 0) != 0 {
		t.Error("degenerate BytesOver should be 0")
	}
	// Never undercounts (beyond float epsilon): d must be at least the
	// exact real-valued duration, up to 1 ps of rounding.
	f := func(n uint32, bwExp uint8) bool {
		bw := float64(uint64(1) << (10 + bwExp%25)) // 1KiB/s .. 32TiB/s
		d := BytesOver(int64(n), bw)
		return float64(d)+1 >= float64(n)/bw*float64(Second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same time: later seq fires later
	e.At(20, func() { order = append(order, 4) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("final time = %d, want 20", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleepInterleaving(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, fmt.Sprintf("a0@%d", p.Now()))
		p.Sleep(10)
		trace = append(trace, fmt.Sprintf("a1@%d", p.Now()))
		p.Sleep(20)
		trace = append(trace, fmt.Sprintf("a2@%d", p.Now()))
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(15)
		trace = append(trace, fmt.Sprintf("b1@%d", p.Now()))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a0@0 a1@10 b1@15 a2@30"
	if got := strings.Join(trace, " "); got != want {
		t.Errorf("trace = %q, want %q", got, want)
	}
}

func TestSuspendWake(t *testing.T) {
	e := NewEngine()
	var woken Time = -1
	var token uint64
	// The waiter is spawned first, so it publishes its upcoming suspend
	// token (via NextSuspendToken, before blocking) before the signaler
	// ever runs.
	waiter := e.Go("waiter", func(p *Proc) {
		token = p.NextSuspendToken()
		got := p.Suspend("waiting for signal")
		if got != token {
			t.Errorf("suspend token = %d, want %d", got, token)
		}
		woken = p.Now()
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(100)
		p.Engine().Wake(waiter, token, p.Now()+7)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 107 {
		t.Errorf("woken at %d, want 107", woken)
	}
}

func TestStaleWakeIgnored(t *testing.T) {
	e := NewEngine()
	var wakes int
	var tok1, tok2 uint64
	waiter := e.Go("waiter", func(p *Proc) {
		tok1 = p.NextSuspendToken()
		p.Suspend("first wait")
		wakes++
		tok2 = p.NextSuspendToken()
		p.Suspend("second wait")
		wakes++
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(10)
		// Wake twice with the same token: the second fires while the
		// waiter is already in its next suspension and must be ignored.
		p.Engine().Wake(waiter, tok1, p.Now()+1)
		p.Engine().Wake(waiter, tok1, p.Now()+2)
		p.Sleep(10)
		if tok2 == tok1 {
			t.Error("suspend tokens should differ")
		}
		p.Engine().Wake(waiter, tok2, p.Now()+1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 2 {
		t.Errorf("wakes = %d, want 2", wakes)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Go("stuck", func(p *Proc) {
		p.Suspend("waiting for a signal that never comes")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "never comes") {
		t.Errorf("deadlock error should carry wait reason: %v", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Go("bomb", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestYieldStepOrdersBehindPending(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a-before")
		p.YieldStep()
		order = append(order, "a-after")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a-before b a-after"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	var childTime Time = -1
	e.Go("parent", func(p *Proc) {
		p.Sleep(50)
		p.Engine().Go("child", func(c *Proc) {
			c.Sleep(5)
			childTime = c.Now()
		})
		p.Sleep(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 55 {
		t.Errorf("child finished at %d, want 55", childTime)
	}
}

// TestDeterminism runs a randomized workload twice with the same seed and
// requires identical event traces.
func TestDeterminism(t *testing.T) {
	runOnce := func(seed int64) string {
		e := NewEngine()
		var trace strings.Builder
		rng := rand.New(rand.NewSource(seed))
		delays := make([][]Duration, 8)
		for i := range delays {
			for j := 0; j < 20; j++ {
				delays[i] = append(delays[i], Duration(rng.Intn(100)))
			}
		}
		for i := 0; i < 8; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for _, d := range delays[i] {
					p.Sleep(d)
					fmt.Fprintf(&trace, "%d@%d;", i, p.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace.String()
	}
	for seed := int64(1); seed <= 5; seed++ {
		a, b := runOnce(seed), runOnce(seed)
		if a != b {
			t.Fatalf("seed %d: non-deterministic traces:\n%s\n%s", seed, a, b)
		}
	}
}

// TestManyProcs exercises the handshake at scale (as many procs as the
// largest platform has cores).
func TestManyProcs(t *testing.T) {
	e := NewEngine()
	var sum atomic.Int64
	for i := 0; i < 160; i++ {
		i := i
		e.Go(fmt.Sprintf("r%d", i), func(p *Proc) {
			p.Sleep(Duration(i))
			sum.Add(1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 160 {
		t.Errorf("completed %d procs, want 160", sum.Load())
	}
	if e.Now() != 159 {
		t.Errorf("final time %d, want 159", e.Now())
	}
}

func TestHeapProperty(t *testing.T) {
	// Pushing random events and popping yields nondecreasing (at, seq).
	f := func(times []uint16) bool {
		var h eventHeap
		for i, tt := range times {
			h.push(event{at: Time(tt), seq: uint64(i)})
		}
		var prev event
		first := true
		for h.Len() > 0 {
			ev := h.pop()
			if !first {
				if ev.at < prev.at || (ev.at == prev.at && ev.seq < prev.seq) {
					return false
				}
			}
			prev, first = ev, false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeekTime(t *testing.T) {
	var h eventHeap
	if _, ok := h.peekTime(); ok {
		t.Error("empty heap peek should report !ok")
	}
	h.push(event{at: 42})
	if at, ok := h.peekTime(); !ok || at != 42 {
		t.Errorf("peekTime = %d,%v", at, ok)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	e.Go("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep should panic")
			}
		}()
		p.Sleep(-1)
	})
	_ = e.Run()
}

func TestUntil(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		p.Until(100)
		if p.Now() != 100 {
			t.Errorf("Until(100): now = %d", p.Now())
		}
		p.Until(50) // in the past: no-op
		if p.Now() != 100 {
			t.Errorf("Until(50) moved time to %d", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
