// Package trace accounts for data-movement edges by topological distance,
// producing the paper's Table II (number and distance of exchanged
// messages per broadcast).
package trace

import (
	"fmt"

	"xhc/internal/topo"
)

// Collector tallies messages between ranks by the distance class of their
// cores.
type Collector struct {
	top *topo.Topology
	m   topo.Mapping

	counts [5]int64 // indexed by topo.DistanceClass
	bytes  [5]int64
	total  int64
}

// New creates a collector for a world's topology and mapping.
func New(top *topo.Topology, m topo.Mapping) *Collector {
	return &Collector{top: top, m: m}
}

// Record tallies one message of n bytes from rank src to rank dst.
func (c *Collector) Record(src, dst, n int) {
	d := c.m.RankDistance(c.top, src, dst)
	c.counts[d]++
	c.bytes[d] += int64(n)
	c.total++
}

// Hook returns a callback suitable for mpi.P2P.OnMessage / core.Comm.OnPull.
func (c *Collector) Hook() func(src, dst, n int) {
	return c.Record
}

// Total returns the number of recorded messages.
func (c *Collector) Total() int64 { return c.total }

// Count returns the message count in one distance class.
func (c *Collector) Count(d topo.DistanceClass) int64 { return c.counts[d] }

// Bytes returns the byte volume in one distance class.
func (c *Collector) Bytes(d topo.DistanceClass) int64 { return c.bytes[d] }

// Table2Row aggregates to the paper's Table II columns: inter-socket,
// inter-NUMA (same socket), and intra-NUMA (cache-local + intra-numa).
func (c *Collector) Table2Row() (interSocket, interNUMA, intraNUMA int64) {
	interSocket = c.counts[topo.CrossSocket]
	interNUMA = c.counts[topo.CrossNUMA]
	intraNUMA = c.counts[topo.CacheLocal] + c.counts[topo.IntraNUMA] + c.counts[topo.SelfCore]
	return
}

// Reset clears all tallies.
func (c *Collector) Reset() {
	c.counts = [5]int64{}
	c.bytes = [5]int64{}
	c.total = 0
}

// String renders the Table II row.
func (c *Collector) String() string {
	s, n, i := c.Table2Row()
	return fmt.Sprintf("inter-socket=%d inter-numa=%d intra-numa=%d", s, n, i)
}
