package trace

import (
	"strings"
	"testing"

	"xhc/internal/topo"
)

func TestCollectorCounts(t *testing.T) {
	top := topo.Epyc2P()
	m := top.MustMap(topo.MapCore, 64)
	c := New(top, m)
	c.Record(0, 1, 100)  // cache-local
	c.Record(0, 4, 100)  // intra-numa
	c.Record(0, 8, 100)  // cross-numa
	c.Record(0, 32, 100) // cross-socket
	c.Record(0, 33, 100) // cross-socket
	s, n, i := c.Table2Row()
	if s != 2 || n != 1 || i != 2 {
		t.Errorf("Table2Row = %d/%d/%d, want 2/1/2", s, n, i)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.Bytes(topo.CrossSocket) != 200 {
		t.Errorf("Bytes(cross-socket) = %d", c.Bytes(topo.CrossSocket))
	}
	if !strings.Contains(c.String(), "inter-socket=2") {
		t.Errorf("String = %s", c.String())
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHook(t *testing.T) {
	top := topo.Epyc1P()
	m := top.MustMap(topo.MapCore, 32)
	c := New(top, m)
	h := c.Hook()
	h(0, 8, 64)
	if c.Count(topo.CrossNUMA) != 1 {
		t.Error("hook did not record")
	}
}
