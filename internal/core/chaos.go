package core

// ChaosConfig seeds deliberate protocol bugs for the verify harness's
// mutation self-test (DESIGN.md Section 10). Each field reintroduces one
// bug class that the XHC design rules out; internal/verify asserts that
// its invariant checkers catch every one of them. A nil Config.Chaos (the
// default) leaves the protocol untouched.
type ChaosConfig struct {
	// SkipAck makes pure members (ranks that lead no group) skip
	// publishing their completion ack — in Barrier, their arrival signal —
	// so their leaders wait forever in the finalization (or gather) phase:
	// a termination bug, caught by the engine's deadlock detector.
	SkipAck bool

	// EarlyReady publishes availability before the work that backs it —
	// the store/publish reordering the single-writer flag ordering exists
	// to prevent. In Bcast/Scatter/Allgather the chunk or staged block is
	// announced before its copy lands; in the reduce paths a member marks
	// its whole slice done before reducing it; in Barrier leaders release
	// the subtree before gathering its arrivals. Caught by the
	// data-correctness check (or Barrier's ordering stamps).
	EarlyReady bool

	// SharedAckLine packs every member-owned ack flag of a group onto one
	// shared cache line, silently dropping the per-writer line placement
	// of Fig. 10. Each flag still has a single writer, so shm's per-flag
	// owner check passes — only the write-tracker's per-line discipline
	// catches it.
	SharedAckLine bool

	// AckRegression republishes a stale (rewound) cumulative ack counter
	// on the second and later operations. The shm layer itself rejects
	// the non-monotone store; caught as an engine failure.
	AckRegression bool

	// LostProgress makes the per-rank request helper drop a finished
	// non-blocking op on the floor: the body runs, but completion is never
	// published, so Test never reports done and Wait suspends forever —
	// the classic missing-progress bug. Caught by the engine's deadlock
	// detector.
	LostProgress bool

	// EarlyComplete publishes a non-blocking request's completion without
	// running the collective body at all — completion visible before the
	// data is. Every rank skips uniformly (no cross-rank hang), so the
	// caller's byte check deterministically sees its stale junk fill.
	// Caught by the per-request byte-exactness invariant.
	EarlyComplete bool

	// FuseCorrupt makes the fused-broadcast root swap the first two sub-op
	// slots of the staging buffer after staging a batch, corrupting the
	// fusion boundaries whenever a batch of at least two ops forms. Caught
	// by byte-exactness.
	FuseCorrupt bool

	// MidOpTune applies a tuning plan in the middle of an operation — the
	// exact bug ApplyTuning's barrier sandwich exists to prevent. On the
	// root's first CICO broadcast the comm-global CICO threshold is moved
	// (to zero) after the root has dispatched but while peers may not have:
	// a peer that dispatches after the move takes the XPMEM path and waits
	// on an exposure sequence the root's CICO path never publishes. Caught
	// by the engine's deadlock detector (or, if every peer dispatched
	// early, the run stays clean — the self-test pins a schedule where the
	// window opens).
	MidOpTune bool
}

// chaos returns the active mutation set (the zero value when none).
func (c *Comm) chaos() ChaosConfig {
	if c.Cfg.Chaos == nil {
		return ChaosConfig{}
	}
	return *c.Cfg.Chaos
}
