package core

import (
	"xhc/internal/env"
	"xhc/internal/obs"
)

// phaseClock attributes one rank's time inside one collective operation to
// phases. It is a segment clock: each mark closes the interval from the
// previous mark (or the operation start) to now and records it as the given
// phase, so the phase spans partition the operation exactly — their
// durations sum to the operation's latency with no gaps or overlaps.
//
// With tracing disabled newPhaseClock returns nil and every method is a
// nil-receiver no-op, keeping the hot loop free of allocations and of any
// timing perturbation (the byte-identical-report constraint).
type phaseClock struct {
	t    *obs.Tracer
	lane int
	op   string
	seq  uint64

	start int64
	last  int64
}

// newPhaseClock starts phase attribution for one operation on one rank.
// It returns nil when the communicator has no tracer.
func (c *Comm) newPhaseClock(p *env.Proc, op string, seq uint64) *phaseClock {
	if c.Trace == nil {
		return nil
	}
	now := c.Trace.Now()
	return &phaseClock{t: c.Trace, lane: p.Core, op: op, seq: seq, start: now, last: now}
}

// mark closes the segment since the previous mark as phase ph at the given
// hierarchy level (-1 when the segment spans levels). Zero-length segments
// are dropped.
func (pc *phaseClock) mark(level int, ph obs.Phase, bytes int64) {
	if pc == nil {
		return
	}
	now := pc.t.Now()
	if now > pc.last {
		pc.t.Record(pc.lane, level, ph, pc.op, pc.seq, pc.last, now, bytes)
	}
	pc.last = now
}

// finish records the umbrella collective span covering the whole operation.
func (pc *phaseClock) finish() {
	if pc == nil {
		return
	}
	pc.t.Record(pc.lane, -1, obs.PhaseCollective, pc.op, pc.seq, pc.start, pc.t.Now(), 0)
}
