package core

import (
	"xhc/internal/env"
	"xhc/internal/obs"
)

// phaseClock attributes one rank's time inside one collective operation to
// phases. It is a segment clock: each mark closes the interval from the
// previous mark (or the operation start) to now and records it as the given
// phase, so the phase spans partition the operation exactly — their
// durations sum to the operation's latency with no gaps or overlaps.
//
// The clock feeds two consumers: the span tracer (when tracing is enabled)
// and the always-on flight recorder, which gets one compact FlightRecord
// per operation with the per-phase duration breakdown. Clocks are pooled
// per rank in the Comm — each rank runs one operation at a time, so finish
// recycles the slot and the record path stays allocation-free.
//
// With the world unobserved newPhaseClock returns nil and every method is
// a nil-receiver no-op, keeping the hot loop free of allocations and of
// any timing perturbation (the byte-identical-report constraint).
type phaseClock struct {
	t   *obs.Tracer     // nil unless tracing
	rec *obs.OpRecorder // flight + histogram sink
	clk func() int64

	lane  int   // tracer lane (core)
	rank  int32 // flight lane (rank)
	op    obs.OpCode
	seq   uint64
	bytes int64
	lvls  uint8
	chnks uint16

	// net marks a cluster-level network clock (a node leader's NIC staging
	// + fabric exchange): finish commits through RecordNet, whose records
	// ride their own kind and seq stream.
	net bool

	start int64
	last  int64
	durs  [obs.NPhases]int64
}

// newPhaseClock starts phase attribution for one operation on one rank.
// It returns nil when the world is unobserved. bytes is the operation's
// payload size (per-rank block size for the v-collectives) and levels the
// hierarchy depth, both carried into the flight record.
func (c *Comm) newPhaseClock(p *env.Proc, op obs.OpCode, seq uint64, bytes int64, levels int) *phaseClock {
	if c.pcs == nil {
		return nil
	}
	pc := &c.pcs[p.Rank]
	now := c.obsClock()
	*pc = phaseClock{
		t: c.Trace, rec: c.rec, clk: c.obsClock,
		lane: p.Core, rank: int32(p.Rank), op: op, seq: seq,
		bytes: bytes, lvls: uint8(levels),
		start: now, last: now,
	}
	return pc
}

// mark closes the segment since the previous mark as phase ph at the given
// hierarchy level (-1 when the segment spans levels). Zero-length segments
// are dropped from the trace but chunk-copy marks still count toward the
// record's chunk tally.
func (pc *phaseClock) mark(level int, ph obs.Phase, bytes int64) {
	pc.markFrom(level, ph, bytes, -1)
}

// markFrom is mark with an explicit causal parent lane: wait segments pass
// the lane (core) whose flag write releases this rank, giving the span
// graph its cross-lane critical-path edges. from is -1 when unknown.
func (pc *phaseClock) markFrom(level int, ph obs.Phase, bytes int64, from int) {
	if pc == nil {
		return
	}
	now := pc.clk()
	if now > pc.last {
		pc.durs[ph] += now - pc.last
		if pc.t != nil {
			pc.t.RecordLinked(pc.lane, level, ph, pc.op.String(), pc.seq, pc.last, now, bytes, from)
		}
	}
	if ph == obs.PhaseChunkCopy && bytes > 0 && pc.chnks < ^uint16(0) {
		pc.chnks++
	}
	pc.last = now
}

// finish records the umbrella collective span and commits the operation's
// flight record.
func (pc *phaseClock) finish() {
	if pc == nil {
		return
	}
	now := pc.clk()
	if pc.t != nil {
		pc.t.Record(pc.lane, -1, obs.PhaseCollective, pc.op.String(), pc.seq, pc.start, now, pc.bytes)
	}
	if pc.rec != nil {
		rec := obs.FlightRecord{
			Seq: pc.seq, Start: pc.start, End: now, Bytes: pc.bytes,
			Phase: pc.durs, Lane: pc.rank, Chunks: pc.chnks,
			Levels: pc.lvls, Op: pc.op,
		}
		if pc.net {
			pc.rec.RecordNet(rec)
		} else {
			pc.rec.RecordFlight(rec)
		}
	}
}
