package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// TestReducePartitionProperties: for random message sizes and minimum
// chunks, the partition tiles [0, n) exactly, slices are element-aligned,
// non-leaders only, and the minimum-chunk rule limits how many members
// participate.
func TestReducePartitionProperties(t *testing.T) {
	top := topo.Epyc2P()
	w := env.NewWorld(top, top.MustMap(topo.MapCore, 64))
	c := MustNew(w, DefaultConfig())
	st := c.stateFor(0)
	gs := st.groups[0][0] // 8-member NUMA group

	f := func(nElems uint16, minExp uint8) bool {
		elems := 1 + int(nElems)%5000
		es := 8
		n := elems * es
		minChunk := 1 << (minExp % 14) // 1 .. 8192
		part := c.reducePartition(gs, n, es, minChunk)

		// Non-leaders only, full coverage, element alignment, ordering.
		covered := 0
		actives := 0
		for m, sl := range part {
			if m == gs.leader {
				return false
			}
			if sl[0] > sl[1] || sl[0]%es != 0 || sl[1]%es != 0 {
				return false
			}
			if sl[1] > sl[0] {
				actives++
			}
			covered += sl[1] - sl[0]
		}
		if covered != n {
			return false
		}
		// Minimum-chunk rule: active count never exceeds ceil(n/minChunk).
		maxActive := (n + minChunk - 1) / minChunk
		if maxActive > len(part) {
			maxActive = len(part)
		}
		return actives <= maxActive && actives >= 1
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestTinyMessageSingleReducer: with one element, exactly one member of
// each group reduces (paper Section IV-B).
func TestTinyMessageSingleReducer(t *testing.T) {
	top := topo.Epyc2P()
	w := env.NewWorld(top, top.MustMap(topo.MapCore, 64))
	c := MustNew(w, DefaultConfig())
	st := c.stateFor(0)
	gs := st.groups[0][0]
	part := c.reducePartition(gs, 8, 8, c.Cfg.ReduceMinChunk)
	active := 0
	for _, sl := range part {
		if sl[1] > sl[0] {
			active++
		}
	}
	if active != 1 {
		t.Errorf("active reducers = %d, want 1", active)
	}
}

// TestPipeliningOverlap: with chunking enabled, a leaf member receives its
// first bytes well before the root has finished its last publication —
// i.e. levels overlap (Fig. 5). We detect it by comparing completion times
// of a chunked vs an unchunked configuration.
func TestPipeliningOverlap(t *testing.T) {
	top := topo.Epyc2P()
	const n = 1 << 20
	elapsed := func(chunk int) sim.Duration {
		w := env.NewWorld(top, top.MustMap(topo.MapCore, 64))
		cfg := DefaultConfig()
		cfg.ChunkBytes = []int{chunk}
		c := MustNew(w, cfg)
		bufs := make([]*mem.Buffer, 64)
		for r := range bufs {
			bufs[r] = w.NewBufferAt("b", r, n)
		}
		var worst sim.Duration
		if err := w.Run(func(p *env.Proc) {
			p.HarnessBarrier()
			t0 := p.Now()
			c.Bcast(p, bufs[p.Rank], 0, n, 0)
			if d := p.Now() - t0; d > worst {
				worst = d
			}
		}); err != nil {
			t.Fatal(err)
		}
		return worst
	}
	pipelined := elapsed(32 << 10)
	unpipelined := elapsed(n)
	if float64(pipelined) > 0.8*float64(unpipelined) {
		t.Errorf("chunked (%v) should clearly beat unchunked (%v)",
			sim.FmtTime(pipelined), sim.FmtTime(unpipelined))
	}
}

// TestAllreduceRandomized: property-style correctness over random sizes,
// rank counts and values (both CICO and XPMEM paths).
func TestAllreduceRandomized(t *testing.T) {
	top := topo.Epyc1P()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		nranks := 2 + rng.Intn(30)
		elems := 1 + rng.Intn(700)
		n := elems * 8
		w := env.NewWorld(top, top.MustMap(topo.MapCore, nranks))
		c := MustNew(w, DefaultConfig())
		sb := make([]*mem.Buffer, nranks)
		rb := make([]*mem.Buffer, nranks)
		want := make([]int64, elems)
		for r := 0; r < nranks; r++ {
			sb[r] = w.NewBufferAt("s", r, n)
			rb[r] = w.NewBufferAt("r", r, n)
			for i := 0; i < elems; i++ {
				v := int64(rng.Intn(1000) - 500)
				writeI64(sb[r].Data, i, v)
				want[i] += v
			}
		}
		if err := w.Run(func(p *env.Proc) {
			c.Allreduce(p, sb[p.Rank], rb[p.Rank], n, mpi.Int64, mpi.Sum)
		}); err != nil {
			t.Fatalf("trial %d (nranks=%d elems=%d): %v", trial, nranks, elems, err)
		}
		for r := 0; r < nranks; r++ {
			for i := 0; i < elems; i++ {
				if got := readI64(rb[r].Data, i); got != want[i] {
					t.Fatalf("trial %d rank %d elem %d: got %d want %d", trial, r, i, got, want[i])
				}
			}
		}
	}
}

func writeI64(b []byte, i int, v int64) {
	for k := 0; k < 8; k++ {
		b[i*8+k] = byte(uint64(v) >> (8 * k))
	}
}

func readI64(b []byte, i int) int64 {
	var u uint64
	for k := 0; k < 8; k++ {
		u |= uint64(b[i*8+k]) << (8 * k)
	}
	return int64(u)
}
