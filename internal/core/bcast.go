package core

import (
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/shm"
	"xhc/internal/xpmem"
)

// Bcast broadcasts buf[off:off+n] from root to all ranks, using the
// hierarchical, pipelined, pull-based algorithm of the paper's Section
// IV-A: leaders expose their buffer, a leader-owned shared counter
// announces available bytes, members attach and pull chunks as they become
// available, and a hierarchical acknowledgment step closes the operation.
// While non-blocking requests are outstanding on this rank, the call is
// diverted through the request queue to run in issue order behind them.
func (c *Comm) Bcast(p *env.Proc, buf *mem.Buffer, off, n, root int) {
	if c.nbGated(p.Rank) {
		c.issueBlocking(p, c.buildReq(p.Rank, reqBcast, buf, nil, off, n, root, 0, 0))
		return
	}
	c.bcast(p, buf, off, n, root)
}

func (c *Comm) bcast(p *env.Proc, buf *mem.Buffer, off, n, root int) {
	sizeCheck(buf, off, n)
	st := c.stateFor(root)
	view := st.views[p.Rank]
	view.opSeq++
	if p.Rank == 0 {
		c.Ops++
	}
	pc := c.newPhaseClock(p, obs.OpBcast, view.opSeq, int64(n), st.h.NLevels())
	switch {
	case n == 0:
		c.ackPhase(p, st, view, pc)
	case n <= c.Cfg.CICOThreshold:
		c.cicoBcast(p, st, view, buf, off, n, root, pc)
	default:
		c.xpmemBcast(p, st, view, buf, off, n, root, pc)
	}
	pc.finish()
}

// xpmemBcast is the single-copy path.
func (c *Comm) xpmemBcast(p *env.Proc, st *commState, view *rankView, buf *mem.Buffer, off, n, root int, pc *phaseClock) {
	lead := st.leadLevels(p.Rank)
	pl := st.pullLevel(p.Rank)

	// Exposure: leaders (and the root) publish their user buffer so
	// children can attach to it.
	for _, l := range lead {
		gs, _ := st.groupOf(l, p.Rank)
		gs.exposed = xpmem.Expose(buf)
		gs.exposedOff = off
		gs.expSeq.Set(p.S, p.Core, view.opSeq)
	}
	pc.mark(-1, obs.PhaseExpose, 0)

	if p.Rank == root {
		// The root's data is fully available from the start.
		for _, l := range lead {
			gs, _ := st.groupOf(l, p.Rank)
			c.setReady(p, gs, view.cumBytes[l]+uint64(n))
		}
		pc.mark(-1, obs.PhaseChunkCopy, int64(n))
	} else {
		gs, _ := st.groupOf(pl, p.Rank)
		// Wait for this op's exposure, then attach (registration cached).
		gs.expSeq.WaitGE(p.S, p.Core, view.opSeq)
		pc.markFrom(pl, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
		src := c.caches[p.Rank].Attach(p.S, gs.exposed)
		soff := gs.exposedOff
		pc.mark(pl, obs.PhaseExpose, 0)
		base := view.cumBytes[pl]
		chunk := c.chunkAt(pl)
		early := c.chaos().EarlyReady
		copied := 0
		for copied < n {
			want := min(chunk, n-copied)
			avail := int(c.waitReady(p, gs, base+uint64(copied+want)) - base)
			if avail > n {
				avail = n
			}
			pc.markFrom(pl, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
			before := copied
			// Copy chunk by chunk (not everything available at once): the
			// chunk granule is what lets children overlap with this rank's
			// own progress (Fig. 5).
			for copied < avail {
				take := min(chunk, avail-copied)
				if early {
					// Mutation: announce the chunk before copying it.
					for _, l := range lead {
						lgs, _ := st.groupOf(l, p.Rank)
						c.setReady(p, lgs, view.cumBytes[l]+uint64(copied+take))
					}
				}
				p.Copy(buf, off+copied, src, soff+copied, take)
				copied += take
				if !early {
					for _, l := range lead {
						lgs, _ := st.groupOf(l, p.Rank)
						c.setReady(p, lgs, view.cumBytes[l]+uint64(copied))
					}
				}
			}
			pc.mark(pl, obs.PhaseChunkCopy, int64(copied-before))
		}
		c.caches[p.Rank].Release(p.S, gs.exposed)
		pc.mark(pl, obs.PhaseExpose, 0)
		c.recordPull(gs.leader, p.Rank, n)
	}

	for l := range view.cumBytes {
		view.cumBytes[l] += uint64(n)
	}
	c.ackPhase(p, st, view, pc)
}

// cicoBcast is the small-message copy-in-copy-out path: the same
// algorithm, with the leaders' CICO buffers in place of attached user
// buffers (paper Section IV-C).
func (c *Comm) cicoBcast(p *env.Proc, st *commState, view *rankView, buf *mem.Buffer, off, n, root int, pc *phaseClock) {
	lead := st.leadLevels(p.Rank)
	pl := st.pullLevel(p.Rank)
	slot := int(view.opSeq) % 2 * (c.Cfg.CICOBytes / 2) // double-buffered slots
	if c.chaos().MidOpTune && p.Rank == root {
		// Mutation: a tuner moves the CICO/XPMEM boundary mid-op. The root
		// continues on the CICO path it already dispatched; any peer that
		// dispatches this same op after the store takes the XPMEM path and
		// waits forever on an exposure the CICO protocol never publishes.
		c.Cfg.CICOThreshold = 0
	}
	early := c.chaos().EarlyReady
	announce := func() {
		for _, l := range lead {
			lgs, _ := st.groupOf(l, p.Rank)
			c.setReady(p, lgs, view.cumBytes[l]+uint64(n))
		}
	}

	if p.Rank == root {
		// Copy-in, then announce to all led groups (the mutation announces
		// before the copy-in lands).
		if early {
			announce()
		}
		p.Copy(c.cico[p.Rank], slot, buf, off, n)
		if !early {
			announce()
		}
		pc.mark(-1, obs.PhaseChunkCopy, int64(n))
	} else {
		gs, _ := st.groupOf(pl, p.Rank)
		base := view.cumBytes[pl]
		c.waitReady(p, gs, base+uint64(n))
		pc.mark(pl, obs.PhaseFlagWait, 0)
		src := c.cico[gs.leader]
		if early && len(lead) > 0 {
			// Mutation: a forwarding leader announces its staged copy
			// before performing it; children pull the previous slot
			// contents.
			announce()
		}
		// Copy-out into the user buffer.
		p.Copy(buf, off, src, slot, n)
		// Leaders also stage into their own CICO buffer for their children.
		if len(lead) > 0 {
			p.Copy(c.cico[p.Rank], slot, src, slot, n)
			if !early {
				announce()
			}
		}
		pc.mark(pl, obs.PhaseChunkCopy, int64(n))
		c.recordPull(gs.leader, p.Rank, n)
	}

	for l := range view.cumBytes {
		view.cumBytes[l] += uint64(n)
	}
	c.ackPhase(p, st, view, pc)
}

// ackPhase implements the hierarchical acknowledgment: each rank marks the
// op complete at the group it pulls in; leaders wait for their members
// before returning, guaranteeing their buffers and control structures are
// no longer in use (paper Section IV-A, finalization).
func (c *Comm) ackPhase(p *env.Proc, st *commState, view *rankView, pc *phaseClock) {
	// Leaders collect their led groups bottom-up BEFORE publishing their own
	// ack: an ack therefore certifies the rank's whole subtree is done. That
	// subtree ordering is what lets a rank whose buffer is attached from
	// afar (scatter's root exposure crosses group boundaries) treat its own
	// return as proof no reader is left anywhere below.
	for _, l := range st.leadLevels(p.Rank) {
		gs, _ := st.groupOf(l, p.Rank)
		var flags []*shm.Flag
		for _, m := range gs.g.Members {
			if m != p.Rank {
				flags = append(flags, gs.acks[m])
			}
		}
		shm.WaitAllGE(p.S, p.Core, flags, view.opSeq)
	}
	if pl := st.pullLevel(p.Rank); pl >= 0 {
		gs, _ := st.groupOf(pl, p.Rank)
		ch := c.chaos()
		switch {
		case ch.SkipAck && len(st.leadLevels(p.Rank)) == 0:
			// Mutation: a pure member forgets its ack; its leader's
			// WaitAllGE above never completes.
		case ch.AckRegression && view.opSeq >= 2:
			// Mutation: republish a stale counter value; shm rejects the
			// non-monotone store.
			gs.acks[p.Rank].Set(p.S, p.Core, view.opSeq-2)
		default:
			gs.acks[p.Rank].Set(p.S, p.Core, view.opSeq)
		}
	}
	pc.mark(-1, obs.PhaseAck, 0)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
