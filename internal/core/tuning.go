package core

import (
	"fmt"

	"xhc/internal/env"
)

// Tuning is the subset of Config an online tuner may change on a live
// communicator (DESIGN.md §17). Knobs that cannot move after construction
// (hierarchy sensitivity, flag scheme, CICO buffer size) are deliberately
// absent: changing them means building a new communicator.
//
// Field conventions — the zero value of a "keep" sentinel leaves the knob
// untouched, so a Tuning can be sparse:
//
//   - ChunkBytes: nil/empty keeps the current per-level granules; a
//     non-empty slice replaces them (entries must be positive).
//   - CICOThreshold: negative keeps; >= 0 sets, clamped to half the CICO
//     buffer (the double-buffered slot size — a payload must fit a slot).
//   - FuseBytes: negative keeps; 0 disables request fusion; positive sets
//     the fusable-payload cap, clamped to the construction-time staging
//     capacity (the staging buffers are sized once and never grow).
type Tuning struct {
	ChunkBytes    []int
	CICOThreshold int
	FuseBytes     int
}

// KeepTuning returns the Tuning that changes nothing — the base other
// plans override field by field.
func KeepTuning() Tuning {
	return Tuning{CICOThreshold: -1, FuseBytes: -1}
}

// ApplyTuning installs t on the communicator at a safe operation boundary.
// It is a collective: every rank must call it at the same point in its
// operation sequence, outside any non-blocking window (panics if the
// calling rank has requests in flight — the pending gate would otherwise
// let an in-flight helper observe a half-applied plan). Internally it is a
// barrier sandwich: no rank can start a post-tuning operation until rank 0
// has applied the plan, and rank 0 applies it only after every rank has
// finished its pre-tuning operations — so every op runs under exactly one
// plan, and a fixed plan trace stays byte-identical in replay.
func (c *Comm) ApplyTuning(p *env.Proc, t Tuning) {
	c.Retune(p, func() Tuning { return t })
}

// Retune is ApplyTuning with the plan decided inside the quiesced window:
// f runs on rank 0 after every rank has arrived (so it may read telemetry
// folded by an obs.World.Sync without racing in-flight ops) and the Tuning
// it returns is applied before any rank proceeds.
func (c *Comm) Retune(p *env.Proc, f func() Tuning) {
	if c.nb[p.Rank].pending > 0 {
		panic(fmt.Sprintf("core: Retune on rank %d inside a non-blocking window (%d requests in flight)",
			p.Rank, c.nb[p.Rank].pending))
	}
	c.Barrier(p)
	if p.Rank == 0 {
		c.applyTuning(f())
	}
	c.Barrier(p)
}

// applyTuning mutates the live knobs. Runs on rank 0 only, with every
// rank parked inside the closing barrier of Retune — the simulation is
// cooperative, so the plain stores cannot tear, and the sandwich
// guarantees no operation body reads a half-applied plan.
func (c *Comm) applyTuning(t Tuning) {
	if len(t.ChunkBytes) > 0 {
		nc := make([]int, len(t.ChunkBytes))
		for i, n := range t.ChunkBytes {
			if n <= 0 {
				panic(fmt.Sprintf("core: tuning chunk size %d must be positive", n))
			}
			nc[i] = n
		}
		c.Cfg.ChunkBytes = nc
	}
	if t.CICOThreshold >= 0 {
		th := t.CICOThreshold
		if slot := c.Cfg.CICOBytes / 2; th > slot {
			th = slot
		}
		c.Cfg.CICOThreshold = th
	}
	switch {
	case t.FuseBytes < 0:
		// keep
	case t.FuseBytes == 0:
		c.fuseMax = 0
	default:
		fb := t.FuseBytes
		if fb > c.fuseCap {
			fb = c.fuseCap
		}
		c.fuseMax = fb
	}
}
