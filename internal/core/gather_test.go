package core

import (
	"bytes"
	"fmt"
	"testing"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/topo"
)

func TestScatterGatherRoundTrip(t *testing.T) {
	top := topo.Epyc2P()
	const nranks = 64
	const block = 512
	w := env.NewWorld(top, top.MustMap(topo.MapCore, nranks))
	c := MustNew(w, DefaultConfig())
	rootBuf := w.NewBufferAt("root", 0, block*nranks)
	backBuf := w.NewBufferAt("back", 0, block*nranks)
	for i := range rootBuf.Data {
		rootBuf.Data[i] = byte(i * 13)
	}
	mine := make([]*mem.Buffer, nranks)
	for r := range mine {
		mine[r] = w.NewBufferAt(fmt.Sprintf("m%d", r), r, block)
	}
	if err := w.Run(func(p *env.Proc) {
		c.Scatter(p, rootBuf, mine[p.Rank], block, 0)
		c.Gather(p, mine[p.Rank], backBuf, block, 0)
	}); err != nil {
		t.Fatal(err)
	}
	// Each rank got its own block.
	for r := 0; r < nranks; r++ {
		if !bytes.Equal(mine[r].Data, rootBuf.Data[r*block:(r+1)*block]) {
			t.Fatalf("rank %d scatter block wrong", r)
		}
	}
	// The gather reassembled the original.
	if !bytes.Equal(backBuf.Data, rootBuf.Data) {
		t.Fatal("gather did not reassemble the scattered data")
	}
}

func TestScatterGatherNonZeroRoot(t *testing.T) {
	top := topo.Epyc1P()
	const nranks = 32
	const block = 64
	w := env.NewWorld(top, top.MustMap(topo.MapCore, nranks))
	c := MustNew(w, DefaultConfig())
	rootBuf := w.NewBufferAt("root", 10, block*nranks)
	for i := range rootBuf.Data {
		rootBuf.Data[i] = byte(i)
	}
	mine := make([]*mem.Buffer, nranks)
	for r := range mine {
		mine[r] = w.NewBufferAt("m", r, block)
	}
	if err := w.Run(func(p *env.Proc) {
		c.Scatter(p, rootBuf, mine[p.Rank], block, 10)
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nranks; r++ {
		if mine[r].Data[0] != byte(r*block) {
			t.Fatalf("rank %d block start = %d", r, mine[r].Data[0])
		}
	}
}

func TestAllgather(t *testing.T) {
	top := topo.Epyc2P()
	for _, nranks := range []int{4, 33, 64} {
		for _, block := range []int{8, 4096} {
			w := env.NewWorld(top, top.MustMap(topo.MapCore, nranks))
			c := MustNew(w, DefaultConfig())
			in := make([]*mem.Buffer, nranks)
			out := make([]*mem.Buffer, nranks)
			for r := range in {
				in[r] = w.NewBufferAt("i", r, block)
				out[r] = w.NewBufferAt("o", r, block*nranks)
				for i := range in[r].Data {
					in[r].Data[i] = byte(r ^ i)
				}
			}
			if err := w.Run(func(p *env.Proc) {
				c.Allgather(p, in[p.Rank], out[p.Rank], block)
			}); err != nil {
				t.Fatalf("nranks=%d block=%d: %v", nranks, block, err)
			}
			for r := 0; r < nranks; r++ {
				for src := 0; src < nranks; src++ {
					got := out[r].Data[src*block : (src+1)*block]
					if !bytes.Equal(got, in[src].Data) {
						t.Fatalf("nranks=%d block=%d: rank %d has wrong block from %d", nranks, block, r, src)
					}
				}
			}
		}
	}
}

func TestAllgatherRepeated(t *testing.T) {
	top := topo.Epyc1P()
	const nranks = 16
	const block = 256
	w := env.NewWorld(top, top.MustMap(topo.MapCore, nranks))
	c := MustNew(w, DefaultConfig())
	in := make([]*mem.Buffer, nranks)
	out := make([]*mem.Buffer, nranks)
	for r := range in {
		in[r] = w.NewBufferAt("i", r, block)
		out[r] = w.NewBufferAt("o", r, block*nranks)
	}
	if err := w.Run(func(p *env.Proc) {
		for it := 0; it < 3; it++ {
			for i := range in[p.Rank].Data {
				in[p.Rank].Data[i] = byte(p.Rank + it)
			}
			p.Dirty(in[p.Rank])
			p.HarnessBarrier()
			c.Allgather(p, in[p.Rank], out[p.Rank], block)
			if out[p.Rank].Data[5*block] != byte(5+it) {
				t.Errorf("iter %d rank %d stale block", it, p.Rank)
			}
			p.HarnessBarrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedWithNewPrimitives(t *testing.T) {
	// Scatter/Gather/Allgather interleave with Bcast/Barrier on the same
	// communicator without corrupting the monotonic counters.
	top := topo.Epyc1P()
	const nranks = 16
	const block = 128
	w := env.NewWorld(top, top.MustMap(topo.MapCore, nranks))
	c := MustNew(w, DefaultConfig())
	rootBuf := w.NewBufferAt("root", 0, block*nranks)
	for i := range rootBuf.Data {
		rootBuf.Data[i] = byte(i * 7)
	}
	mine := make([]*mem.Buffer, nranks)
	out := make([]*mem.Buffer, nranks)
	bb := make([]*mem.Buffer, nranks)
	for r := range mine {
		mine[r] = w.NewBufferAt("m", r, block)
		out[r] = w.NewBufferAt("o", r, block*nranks)
		bb[r] = w.NewBufferAt("b", r, 2048)
	}
	if err := w.Run(func(p *env.Proc) {
		c.Bcast(p, bb[p.Rank], 0, 2048, 0)
		c.Scatter(p, rootBuf, mine[p.Rank], block, 0)
		c.Barrier(p)
		c.Allgather(p, mine[p.Rank], out[p.Rank], block)
		c.Bcast(p, bb[p.Rank], 0, 64, 3)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[7].Data, rootBuf.Data) {
		t.Error("allgather after scatter did not reconstruct the root buffer")
	}
}
