package core

import (
	"bytes"
	"fmt"
	"testing"

	"xhc/internal/env"
	"xhc/internal/hier"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

func world(t *testing.T, top *topo.Topology, nranks int) *env.World {
	t.Helper()
	return env.NewWorld(top, top.MustMap(topo.MapCore, nranks))
}

func pattern(seed int, buf []byte) {
	for i := range buf {
		buf[i] = byte(i*7 + seed*13 + 5)
	}
}

// runBcast executes one broadcast over fresh buffers and checks delivery.
func runBcast(t *testing.T, top *topo.Topology, nranks, n, root int, cfg Config) {
	t.Helper()
	w := world(t, top, nranks)
	c := MustNew(w, cfg)
	bufs := make([]*mem.Buffer, nranks)
	for r := range bufs {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, n+8)
	}
	pattern(root, bufs[root].Data[4:4+n])
	if err := w.Run(func(p *env.Proc) {
		c.Bcast(p, bufs[p.Rank], 4, n, root)
	}); err != nil {
		t.Fatalf("n=%d root=%d: %v", n, root, err)
	}
	want := bufs[root].Data[4 : 4+n]
	for r := range bufs {
		if !bytes.Equal(bufs[r].Data[4:4+n], want) {
			t.Fatalf("n=%d root=%d: rank %d has wrong data", n, root, r)
		}
	}
}

func TestBcastCorrectnessSizes(t *testing.T) {
	top := topo.Epyc2P()
	for _, n := range []int{1, 4, 64, 1024, 1025, 8 << 10, 100 << 10, 1 << 20} {
		runBcast(t, top, 64, n, 0, DefaultConfig())
	}
}

func TestBcastCorrectnessRoots(t *testing.T) {
	top := topo.Epyc2P()
	for _, root := range []int{0, 1, 10, 31, 32, 63} {
		runBcast(t, top, 64, 32<<10, root, DefaultConfig())
		runBcast(t, top, 64, 64, root, DefaultConfig())
	}
}

func TestBcastAllPlatforms(t *testing.T) {
	for _, top := range topo.Platforms() {
		runBcast(t, top, top.NCores, 16<<10, 0, DefaultConfig())
	}
}

func TestBcastFlatAndSensitivities(t *testing.T) {
	top := topo.Epyc1P()
	for _, s := range []string{"flat", "numa", "numa+socket", "llc+numa+socket"} {
		sens, err := hier.ParseSensitivity(s)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Sensitivity = sens
		runBcast(t, top, 32, 64<<10, 0, cfg)
	}
}

func TestBcastFlagSchemes(t *testing.T) {
	top := topo.Epyc1P()
	for _, fs := range []FlagScheme{SingleFlag, MultiSharedLine, MultiSeparateLines} {
		cfg := DefaultConfig()
		cfg.Flags = fs
		runBcast(t, top, 32, 64, 0, cfg)     // CICO path
		runBcast(t, top, 32, 64<<10, 0, cfg) // XPMEM path
	}
}

func TestBcastOddRankCounts(t *testing.T) {
	top := topo.Epyc2P()
	for _, nr := range []int{2, 3, 5, 9, 33, 63} {
		runBcast(t, top, nr, 4<<10, 0, DefaultConfig())
		runBcast(t, top, nr, 128, nr-1, DefaultConfig())
	}
}

func TestBcastRepeatedOps(t *testing.T) {
	top := topo.Epyc1P()
	w := world(t, top, 32)
	c := MustNew(w, DefaultConfig())
	const n = 8 << 10
	bufs := make([]*mem.Buffer, 32)
	for r := range bufs {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, n)
	}
	const iters = 5
	if err := w.Run(func(p *env.Proc) {
		for it := 0; it < iters; it++ {
			if p.Rank == 0 {
				pattern(it, bufs[0].Data)
				p.Dirty(bufs[0])
			}
			p.HarnessBarrier()
			c.Bcast(p, bufs[p.Rank], 0, n, 0)
			// Verify inside the run so each iteration is checked.
			want := byte(0*7 + it*13 + 5)
			if bufs[p.Rank].Data[0] != want {
				t.Errorf("iter %d rank %d: first byte %d, want %d", it, p.Rank, bufs[p.Rank].Data[0], want)
			}
			p.HarnessBarrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if c.Ops != iters {
		t.Errorf("Ops = %d, want %d", c.Ops, iters)
	}
}

func TestBcastMixedSizesAndRoots(t *testing.T) {
	// Alternate CICO and XPMEM paths and two different roots in sequence:
	// the monotonic counters must stay consistent.
	top := topo.Epyc1P()
	w := world(t, top, 32)
	c := MustNew(w, DefaultConfig())
	sizes := []int{64, 32 << 10, 4, 100 << 10, 1024}
	roots := []int{0, 5, 0, 31, 7}
	bufs := make([]*mem.Buffer, 32)
	for r := range bufs {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, 100<<10)
	}
	if err := w.Run(func(p *env.Proc) {
		for i, n := range sizes {
			root := roots[i]
			if p.Rank == root {
				pattern(i, bufs[root].Data[:n])
				p.Dirty(bufs[root])
			}
			p.HarnessBarrier()
			c.Bcast(p, bufs[p.Rank], 0, n, root)
			p.HarnessBarrier()
			if !bytes.Equal(bufs[p.Rank].Data[:n], bufs[root].Data[:n]) {
				t.Errorf("op %d rank %d: wrong data", i, p.Rank)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// --- Allreduce ---

func runAllreduce(t *testing.T, top *topo.Topology, nranks, elems int, cfg Config) {
	t.Helper()
	n := elems * 8
	w := world(t, top, nranks)
	c := MustNew(w, cfg)
	sbufs := make([]*mem.Buffer, nranks)
	rbufs := make([]*mem.Buffer, nranks)
	want := make([]int64, elems)
	for r := 0; r < nranks; r++ {
		sbufs[r] = w.NewBufferAt(fmt.Sprintf("s%d", r), r, n)
		rbufs[r] = w.NewBufferAt(fmt.Sprintf("r%d", r), r, n)
		vals := make([]int64, elems)
		for i := range vals {
			vals[i] = int64(r*1000 + i)
			want[i] += vals[i]
		}
		mpi.EncodeInt64s(sbufs[r].Data, vals)
	}
	if err := w.Run(func(p *env.Proc) {
		c.Allreduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Int64, mpi.Sum)
	}); err != nil {
		t.Fatalf("elems=%d: %v", elems, err)
	}
	for r := 0; r < nranks; r++ {
		got := make([]int64, elems)
		mpi.DecodeInt64s(rbufs[r].Data, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("elems=%d rank=%d elem=%d: got %d, want %d", elems, r, i, got[i], want[i])
			}
		}
	}
}

func TestAllreduceCorrectnessSizes(t *testing.T) {
	top := topo.Epyc2P()
	for _, elems := range []int{1, 2, 8, 128, 129, 1024, 4096, 65536} {
		runAllreduce(t, top, 64, elems, DefaultConfig())
	}
}

func TestAllreduceAllPlatforms(t *testing.T) {
	for _, top := range topo.Platforms() {
		runAllreduce(t, top, top.NCores, 2048, DefaultConfig())
		runAllreduce(t, top, top.NCores, 4, DefaultConfig())
	}
}

func TestAllreduceFlat(t *testing.T) {
	runAllreduce(t, topo.Epyc1P(), 32, 4096, FlatConfig())
	runAllreduce(t, topo.Epyc1P(), 32, 2, FlatConfig())
}

func TestAllreduceOddRankCounts(t *testing.T) {
	top := topo.Epyc2P()
	for _, nr := range []int{2, 3, 7, 33} {
		runAllreduce(t, top, nr, 512, DefaultConfig())
		runAllreduce(t, top, nr, 1, DefaultConfig())
	}
}

func TestAllreduceOps(t *testing.T) {
	top := topo.Epyc1P()
	const nranks = 32
	const elems = 256
	n := elems * 8
	for _, op := range []mpi.Op{mpi.Sum, mpi.Min, mpi.Max, mpi.Prod} {
		w := world(t, top, nranks)
		c := MustNew(w, DefaultConfig())
		sbufs := make([]*mem.Buffer, nranks)
		rbufs := make([]*mem.Buffer, nranks)
		ref := make([]int64, elems)
		for r := 0; r < nranks; r++ {
			sbufs[r] = w.NewBufferAt(fmt.Sprintf("s%d", r), r, n)
			rbufs[r] = w.NewBufferAt(fmt.Sprintf("r%d", r), r, n)
			vals := make([]int64, elems)
			for i := range vals {
				vals[i] = int64((r+2)%5 + i%3 + 1) // small positives: Prod stays bounded
			}
			mpi.EncodeInt64s(sbufs[r].Data, vals)
			for i := range vals {
				if r == 0 {
					ref[i] = vals[i]
				} else {
					switch op {
					case mpi.Sum:
						ref[i] += vals[i]
					case mpi.Prod:
						ref[i] *= vals[i]
					case mpi.Min:
						if vals[i] < ref[i] {
							ref[i] = vals[i]
						}
					case mpi.Max:
						if vals[i] > ref[i] {
							ref[i] = vals[i]
						}
					}
				}
			}
		}
		if err := w.Run(func(p *env.Proc) {
			c.Allreduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Int64, op)
		}); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		got := make([]int64, elems)
		mpi.DecodeInt64s(rbufs[7].Data, got)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s elem %d: got %d, want %d", op, i, got[i], ref[i])
			}
		}
	}
}

func TestAllreduceFloat64(t *testing.T) {
	top := topo.Epyc1P()
	const nranks = 8
	const elems = 64
	n := elems * 8
	w := world(t, top, nranks)
	c := MustNew(w, DefaultConfig())
	sbufs := make([]*mem.Buffer, nranks)
	rbufs := make([]*mem.Buffer, nranks)
	for r := 0; r < nranks; r++ {
		sbufs[r] = w.NewBufferAt(fmt.Sprintf("s%d", r), r, n)
		rbufs[r] = w.NewBufferAt(fmt.Sprintf("r%d", r), r, n)
		vals := make([]float64, elems)
		for i := range vals {
			vals[i] = float64(r) + float64(i)/16
		}
		mpi.EncodeFloat64s(sbufs[r].Data, vals)
	}
	if err := w.Run(func(p *env.Proc) {
		c.Allreduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Float64, mpi.Sum)
	}); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, elems)
	mpi.DecodeFloat64s(rbufs[3].Data, got)
	for i := range got {
		want := float64(nranks*(nranks-1))/2 + float64(nranks)*float64(i)/16
		if diff := got[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("elem %d: got %v, want %v", i, got[i], want)
		}
	}
}

func TestReduceToRoot(t *testing.T) {
	top := topo.Epyc2P()
	const nranks = 64
	const elems = 1024
	n := elems * 8
	for _, root := range []int{0, 10, 63} {
		w := world(t, top, nranks)
		c := MustNew(w, DefaultConfig())
		sbufs := make([]*mem.Buffer, nranks)
		rbufs := make([]*mem.Buffer, nranks)
		want := make([]int64, elems)
		for r := 0; r < nranks; r++ {
			sbufs[r] = w.NewBufferAt(fmt.Sprintf("s%d", r), r, n)
			rbufs[r] = w.NewBufferAt(fmt.Sprintf("r%d", r), r, n)
			vals := make([]int64, elems)
			for i := range vals {
				vals[i] = int64(r + i)
				want[i] += vals[i]
			}
			mpi.EncodeInt64s(sbufs[r].Data, vals)
		}
		if err := w.Run(func(p *env.Proc) {
			c.Reduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Int64, mpi.Sum, root)
		}); err != nil {
			t.Fatalf("root=%d: %v", root, err)
		}
		got := make([]int64, elems)
		mpi.DecodeInt64s(rbufs[root].Data, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("root=%d elem=%d: got %d, want %d", root, i, got[i], want[i])
			}
		}
	}
}

func TestReduceSmall(t *testing.T) {
	top := topo.Epyc1P()
	const nranks = 32
	n := 8
	w := world(t, top, nranks)
	c := MustNew(w, DefaultConfig())
	sbufs := make([]*mem.Buffer, nranks)
	rbufs := make([]*mem.Buffer, nranks)
	var want int64
	for r := 0; r < nranks; r++ {
		sbufs[r] = w.NewBufferAt(fmt.Sprintf("s%d", r), r, n)
		rbufs[r] = w.NewBufferAt(fmt.Sprintf("r%d", r), r, n)
		mpi.EncodeInt64s(sbufs[r].Data, []int64{int64(r * r)})
		want += int64(r * r)
	}
	if err := w.Run(func(p *env.Proc) {
		c.Reduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Int64, mpi.Sum, 3)
	}); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, 1)
	mpi.DecodeInt64s(rbufs[3].Data, got)
	if got[0] != want {
		t.Errorf("got %d, want %d", got[0], want)
	}
}

func TestBarrier(t *testing.T) {
	top := topo.Epyc2P()
	w := world(t, top, 64)
	c := MustNew(w, DefaultConfig())
	released := make([]sim.Time, 64)
	arrive := make([]sim.Time, 64)
	if err := w.Run(func(p *env.Proc) {
		p.Compute(sim.Duration(p.Rank%7) * sim.Microsecond)
		arrive[p.Rank] = p.Now()
		c.Barrier(p)
		released[p.Rank] = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	var latest sim.Time
	for _, a := range arrive {
		if a > latest {
			latest = a
		}
	}
	for r, rel := range released {
		if rel < latest {
			t.Errorf("rank %d released at %v before last arrival %v", r, rel, latest)
		}
	}
}

func TestBarrierRepeated(t *testing.T) {
	top := topo.Epyc1P()
	w := world(t, top, 32)
	c := MustNew(w, DefaultConfig())
	counts := make([]int, 32)
	if err := w.Run(func(p *env.Proc) {
		for i := 0; i < 4; i++ {
			p.Compute(sim.Duration(p.Rank) * 10 * sim.Nanosecond)
			c.Barrier(p)
			counts[p.Rank]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	for r, k := range counts {
		if k != 4 {
			t.Errorf("rank %d: %d barriers", r, k)
		}
	}
}

func TestMixedCollectiveSequence(t *testing.T) {
	// Bcast, Allreduce, Barrier, Reduce in sequence share counters safely.
	top := topo.Epyc1P()
	const nranks = 32
	w := world(t, top, nranks)
	c := MustNew(w, DefaultConfig())
	n := 2048
	bufs := make([]*mem.Buffer, nranks)
	sbufs := make([]*mem.Buffer, nranks)
	rbufs := make([]*mem.Buffer, nranks)
	for r := 0; r < nranks; r++ {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, n)
		sbufs[r] = w.NewBufferAt(fmt.Sprintf("s%d", r), r, n)
		rbufs[r] = w.NewBufferAt(fmt.Sprintf("r%d", r), r, n)
		vals := make([]int64, n/8)
		for i := range vals {
			vals[i] = int64(r)
		}
		mpi.EncodeInt64s(sbufs[r].Data, vals)
	}
	pattern(1, bufs[0].Data)
	if err := w.Run(func(p *env.Proc) {
		c.Bcast(p, bufs[p.Rank], 0, n, 0)
		c.Allreduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Int64, mpi.Sum)
		c.Barrier(p)
		c.Reduce(p, sbufs[p.Rank], rbufs[p.Rank], n, mpi.Int64, mpi.Sum, 0)
		c.Bcast(p, bufs[p.Rank], 0, 64, 0)
	}); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, 1)
	mpi.DecodeInt64s(rbufs[0].Data, got)
	if got[0] != int64(nranks*(nranks-1))/2 {
		t.Errorf("reduce result %d", got[0])
	}
}

func TestConfigValidation(t *testing.T) {
	top := topo.Epyc1P()
	w := world(t, top, 8)
	bad := DefaultConfig()
	bad.ChunkBytes = []int{0}
	if _, err := New(w, bad); err == nil {
		t.Error("zero chunk accepted")
	}
	bad2 := DefaultConfig()
	bad2.CICOThreshold = -1
	if _, err := New(w, bad2); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestRegCacheHitRatioHigh(t *testing.T) {
	// Repeated operations on the same buffers should hit the registration
	// cache nearly always (the paper reports >99% for its applications).
	top := topo.Epyc1P()
	const nranks = 32
	w := world(t, top, nranks)
	c := MustNew(w, DefaultConfig())
	const n = 64 << 10
	bufs := make([]*mem.Buffer, nranks)
	for r := range bufs {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, n)
	}
	if err := w.Run(func(p *env.Proc) {
		for i := 0; i < 50; i++ {
			c.Bcast(p, bufs[p.Rank], 0, n, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Cache(5).Stats()
	if st.HitRatio() < 0.9 {
		t.Errorf("hit ratio %.3f too low: %+v", st.HitRatio(), st)
	}
}

// TestTreeBeatsFlatLargeBcast checks the headline behaviour: on a large
// message, the numa+socket hierarchy beats the flat tree (Fig. 8).
func TestTreeBeatsFlatLargeBcast(t *testing.T) {
	top := topo.Epyc2P()
	const n = 1 << 20
	elapsed := func(cfg Config) sim.Duration {
		w := world(t, top, 64)
		c := MustNew(w, cfg)
		bufs := make([]*mem.Buffer, 64)
		for r := range bufs {
			bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, n)
		}
		var worst sim.Duration
		if err := w.Run(func(p *env.Proc) {
			p.HarnessBarrier()
			start := p.Now()
			c.Bcast(p, bufs[p.Rank], 0, n, 0)
			if d := p.Now() - start; d > worst {
				worst = d
			}
		}); err != nil {
			t.Fatal(err)
		}
		return worst
	}
	flat := elapsed(FlatConfig())
	tree := elapsed(DefaultConfig())
	if tree >= flat {
		t.Errorf("tree (%v) should beat flat (%v) at 1 MiB / 64 ranks", tree, flat)
	}
}

// TestOnPullEdges checks the Table II property: exactly N-1 pull edges per
// op, matching the hierarchy structure.
func TestOnPullEdges(t *testing.T) {
	top := topo.Epyc2P()
	w := world(t, top, 64)
	c := MustNew(w, DefaultConfig())
	type edge struct{ from, to int }
	var edges []edge
	c.OnPull = func(from, to, bytes int) { edges = append(edges, edge{from, to}) }
	bufs := make([]*mem.Buffer, 64)
	for r := range bufs {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, 64<<10)
	}
	if err := w.Run(func(p *env.Proc) {
		c.Bcast(p, bufs[p.Rank], 0, 64<<10, 0)
	}); err != nil {
		t.Fatal(err)
	}
	if len(edges) != 63 {
		t.Fatalf("pull edges = %d, want 63", len(edges))
	}
	var interSocket, interNUMA, intraNUMA int
	for _, e := range edges {
		switch w.Map.RankDistance(top, e.from, e.to) {
		case topo.CrossSocket:
			interSocket++
		case topo.CrossNUMA:
			interNUMA++
		default:
			intraNUMA++
		}
	}
	// Paper Table II, XHC-tree row: 1 / 6 / 56.
	if interSocket != 1 || interNUMA != 6 || intraNUMA != 56 {
		t.Errorf("edge distances = %d/%d/%d, want 1/6/56", interSocket, interNUMA, intraNUMA)
	}
}
