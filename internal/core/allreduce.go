package core

import (
	"fmt"
	"sort"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/obs"
	"xhc/internal/shm"
	"xhc/internal/sim"
	"xhc/internal/xpmem"
)

// Allreduce reduces the n bytes of sbuf (dt elements, op) across all ranks
// and leaves the result in every rank's rbuf, following the paper's
// Section IV-B: a hierarchical, index-partitioned reduction toward the
// internal root (rank 0), overlapped with a pipelined broadcast of the
// result.
func (c *Comm) Allreduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	if c.nbGated(p.Rank) {
		c.issueBlocking(p, c.buildReq(p.Rank, reqAllreduce, sbuf, rbuf, 0, n, 0, dt, op))
		return
	}
	c.allreduce(p, sbuf, rbuf, n, dt, op, true, 0)
}

// Reduce reduces into root's rbuf only (the paper's "ongoing work"
// primitive). Non-root ranks' rbuf arguments are ignored; internal scratch
// accumulators are used at non-root leaders.
func (c *Comm) Reduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, root int) {
	if c.nbGated(p.Rank) {
		c.issueBlocking(p, c.buildReq(p.Rank, reqReduce, sbuf, rbuf, 0, n, root, dt, op))
		return
	}
	c.allreduce(p, sbuf, rbuf, n, dt, op, false, root)
}

func (c *Comm) allreduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, bcast bool, root int) {
	sizeCheck(sbuf, 0, n)
	es := dt.Size()
	if n%es != 0 {
		panic(fmt.Sprintf("core: allreduce size %d not a multiple of %s", n, dt))
	}
	st := c.stateFor(root)
	view := st.views[p.Rank]
	view.opSeq++
	if p.Rank == 0 {
		c.Ops++
	}
	opCode := obs.OpAllreduce
	if !bcast {
		opCode = obs.OpReduce
	}
	pc := c.newPhaseClock(p, opCode, view.opSeq, int64(n), st.h.NLevels())
	if n == 0 {
		c.ackPhase(p, st, view, pc)
		pc.finish()
		return
	}

	// The accumulator of a leader is its result buffer: rbuf for allreduce
	// (and for the root in reduce); internal scratch otherwise.
	acc := rbuf
	if !bcast && p.Rank != root {
		acc = c.scratchFor(p.Rank, n)
	}

	cico := n <= c.Cfg.CICOThreshold
	if cico {
		c.cicoAllreduce(p, st, view, sbuf, acc, rbuf, n, dt, op, bcast, root, pc)
	} else {
		c.xpmemAllreduce(p, st, view, sbuf, acc, rbuf, n, dt, op, bcast, root, pc)
	}

	// Advance the monotonic counter mirrors for the next operation.
	for l := 0; l < st.h.NLevels(); l++ {
		view.cumBytes[l] += uint64(n)
		view.redCum[l] += uint64(n)
		gs, ok := st.groupOf(l, p.Rank)
		if !ok {
			continue
		}
		minChunk := c.Cfg.ReduceMinChunk
		if cico {
			minChunk = c.Cfg.CICOMinReduce
		}
		for m, sl := range c.reducePartition(gs, n, dt.Size(), minChunk) {
			view.bumpRedDone(l, m, uint64(sl[1]-sl[0]))
		}
	}
	c.ackPhase(p, st, view, pc)
	if !bcast {
		// A rooted reduce skips the broadcast phase, so nothing else orders a
		// member's return after the sibling reducers that read its exposed
		// sbuf (or scratch accumulator). Hold until every co-member of the
		// pull group has acked — only then may the caller reuse those
		// buffers. The group leader is excluded: it never acks into its own
		// led group (and only reads contributions before acking anyway).
		if pl := st.pullLevel(p.Rank); pl >= 0 {
			gs, _ := st.groupOf(pl, p.Rank)
			var flags []*shm.Flag
			for _, m := range gs.g.Members {
				if m != p.Rank && m != gs.leader {
					flags = append(flags, gs.acks[m])
				}
			}
			shm.WaitAllGE(p.S, p.Core, flags, view.opSeq)
			pc.mark(-1, obs.PhaseAck, 0)
		}
	}
	pc.finish()
}

// scratchFor returns (growing on demand) rank's internal accumulator.
func (c *Comm) scratchFor(rank, n int) *mem.Buffer {
	if c.scratch[rank] == nil || c.scratch[rank].Len() < n {
		c.scratch[rank] = c.W.NewBufferAt(c.name("scratch.%d", rank), rank, n)
	}
	return c.scratch[rank]
}

// reducePartition returns the byte slices of an n-byte message assigned to
// each reducer (the non-leader members, ascending). A minimum slice of
// ReduceMinChunk bytes applies, so small messages are reduced by a single
// member (paper: "with a single or only a few elements, only one member in
// each group will reduce").
func (c *Comm) reducePartition(gs *groupState, n, es, minChunk int) map[int][2]int {
	var reducers []int
	for _, m := range gs.g.Members {
		if m != gs.leader {
			reducers = append(reducers, m)
		}
	}
	sort.Ints(reducers)
	out := make(map[int][2]int, len(reducers))
	if len(reducers) == 0 {
		return out
	}
	active := (n + minChunk - 1) / minChunk
	if active < 1 {
		active = 1
	}
	if active > len(reducers) {
		active = len(reducers)
	}
	elems := n / es
	per, rem := elems/active, elems%active
	start := 0
	for i, m := range reducers {
		if i >= active {
			out[m] = [2]int{start, start}
			continue
		}
		e := per
		if i < rem {
			e++
		}
		end := start + e*es
		out[m] = [2]int{start, end}
		start = end
	}
	return out
}

// contributionOf resolves participant m's contribution buffer handle and
// offset at a level: the exposed send buffer at the leaf level, the
// exposed accumulator above.
func waitContribution(p *env.Proc, gs *groupState, m int, opSeq uint64) (xpmem.Handle, int) {
	gs.redExpSeq[m].WaitGE(p.S, p.Core, opSeq)
	return gs.redExposed[m], gs.redExposedOff[m]
}

// pollInterval scales the leader's progress-loop poll period with the
// message size (polling is how the paper's leaders monitor reduce_done).
func (c *Comm) pollInterval(n int) sim.Duration {
	d := sim.BytesOver(int64(n), c.W.Sys.Params.MemBW) / 16
	if d < 200*sim.Nanosecond {
		d = 200 * sim.Nanosecond
	}
	if d > 3*sim.Microsecond {
		d = 3 * sim.Microsecond
	}
	return d
}

// xpmemAllreduce is the single-copy path.
func (c *Comm) xpmemAllreduce(p *env.Proc, st *commState, view *rankView, sbuf, acc, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, bcast bool, root int, pc *phaseClock) {
	lead := st.leadLevels(p.Rank)
	pl := st.pullLevel(p.Rank)
	es := dt.Size()

	// --- Step 1: preparation / exposure ---
	// Contribution at the pull level: sbuf for leaf members, acc above.
	if pl >= 0 {
		gs, _ := st.groupOf(pl, p.Rank)
		contrib, ready := sbuf, uint64(n)
		if pl > 0 {
			contrib, ready = acc, 0 // published progressively by monitoring
		}
		gs.redExposed[p.Rank] = xpmem.Expose(contrib)
		gs.redExposedOff[p.Rank] = 0
		gs.redExpSeq[p.Rank].Set(p.S, p.Core, view.opSeq)
		if ready > 0 || pl == 0 {
			gs.redReady[p.Rank].Set(p.S, p.Core, view.redCum[pl]+ready)
		}
	}
	// Leaders expose their accumulator per led group; leaf-level leaders
	// additionally expose sbuf as their own contribution.
	for _, l := range lead {
		gs, _ := st.groupOf(l, p.Rank)
		gs.accExposed = xpmem.Expose(acc)
		gs.accExposedOff = 0
		gs.accExpSeq.Set(p.S, p.Core, view.opSeq)
		contrib := acc
		if l == 0 {
			contrib = sbuf
		}
		gs.redExposed[p.Rank] = xpmem.Expose(contrib)
		gs.redExposedOff[p.Rank] = 0
		gs.redExpSeq[p.Rank].Set(p.S, p.Core, view.opSeq)
		if l == 0 {
			gs.redReady[p.Rank].Set(p.S, p.Core, view.redCum[0]+uint64(n))
		}
	}
	pc.mark(-1, obs.PhaseExpose, 0)

	if len(lead) == 0 {
		// Pure member: blocking reduction work, then blocking broadcast.
		c.memberReduceSlice(p, st, view, pl, n, es, dt, op, pc)
		if bcast {
			c.bcastPull(p, st, view, rbuf, n, nil, pc)
		}
		return
	}
	c.leaderProgressLoop(p, st, view, sbuf, acc, rbuf, n, es, dt, op, bcast, root, lead, pl, pc)
}

// memberReduceSlice performs this rank's share of the intra-group
// reduction at level pl (paper step 2a), blocking on the participants'
// reduce_ready counters chunk by chunk.
func (c *Comm) memberReduceSlice(p *env.Proc, st *commState, view *rankView, pl, n, es int, dt mpi.Datatype, op mpi.Op, pc *phaseClock) {
	gs, _ := st.groupOf(pl, p.Rank)
	part := c.reducePartition(gs, n, es, c.Cfg.ReduceMinChunk)
	slice := part[p.Rank]
	s, e := slice[0], slice[1]
	doneBase := view.redDoneBase(pl)
	if s == e {
		gs.redDone[p.Rank].Set(p.S, p.Core, doneBase)
		pc.mark(pl, obs.PhaseReduceSlice, 0)
		return
	}
	redBase := view.redCum[pl]
	chunk := c.chunkAt(pl)
	early := c.chaos().EarlyReady
	if early {
		// Mutation: publish the whole slice as reduced before any of the
		// reduction work ran — the leader forwards (or the root drains)
		// unreduced bytes.
		gs.redDone[p.Rank].Set(p.S, p.Core, doneBase+uint64(e-s))
	}

	// Attach the accumulator and every participant's contribution.
	gs.accExpSeq.WaitGE(p.S, p.Core, view.opSeq)
	pc.markFrom(pl, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
	accB := c.caches[p.Rank].Attach(p.S, gs.accExposed)
	accOff := gs.accExposedOff
	srcs := make(map[int]*mem.Buffer, len(gs.g.Members))
	offs := make(map[int]int, len(gs.g.Members))
	for _, m := range gs.g.Members {
		h, o := waitContribution(p, gs, m, view.opSeq)
		srcs[m] = c.caches[p.Rank].Attach(p.S, h)
		offs[m] = o
	}
	pc.mark(pl, obs.PhaseExpose, 0)

	var readyFlags []*shm.Flag
	for _, m := range gs.g.Members {
		readyFlags = append(readyFlags, gs.redReady[m])
	}
	for cur := s; cur < e; {
		step := min(chunk, e-cur)
		shm.WaitAllGE(p.S, p.Core, readyFlags, redBase+uint64(cur+step))
		pc.mark(pl, obs.PhaseFlagWait, 0)
		c.reduceChunk(p, gs, accB, accOff, srcs, offs, cur, step, dt, op)
		cur += step
		if !early {
			gs.redDone[p.Rank].Set(p.S, p.Core, doneBase+uint64(cur-s))
		}
		pc.mark(pl, obs.PhaseReduceSlice, int64(step))
	}
}

// reduceChunk folds every participant's contribution chunk into the
// accumulator: the leader's contribution seeds the chunk (in place when the
// accumulator is the contribution), then each other participant is
// streamed in and reduced.
func (c *Comm) reduceChunk(p *env.Proc, gs *groupState, acc *mem.Buffer, accOff int, srcs map[int]*mem.Buffer, offs map[int]int, cur, step int, dt mpi.Datatype, op mpi.Op) {
	leader := gs.leader
	if srcs[leader] != acc {
		p.Copy(acc, accOff+cur, srcs[leader], offs[leader]+cur, step)
	}
	for _, m := range gs.g.Members {
		if m == leader {
			continue
		}
		src := srcs[m]
		soff := offs[m]
		p.ChargeRead(src, soff+cur, step)
		mpi.ReduceBytes(op, dt, acc.Data[accOff+cur:accOff+cur+step], src.Data[soff+cur:soff+cur+step])
		p.ChargeCompute(step)
	}
	p.Dirty(acc)
}

// bcastPull is the broadcast-phase receive of a pure member: wait for the
// parent's counter, copy available chunks into rbuf.
func (c *Comm) bcastPull(p *env.Proc, st *commState, view *rankView, rbuf *mem.Buffer, n int, after func(copied int), pc *phaseClock) {
	pl := st.pullLevel(p.Rank)
	gs, _ := st.groupOf(pl, p.Rank)
	gs.expSeq.WaitGE(p.S, p.Core, view.opSeq)
	pc.markFrom(pl, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
	src := c.caches[p.Rank].Attach(p.S, gs.exposed)
	soff := gs.exposedOff
	pc.mark(pl, obs.PhaseExpose, 0)
	base := view.cumBytes[pl]
	chunk := c.chunkAt(pl)
	copied := 0
	for copied < n {
		want := min(chunk, n-copied)
		avail := int(c.waitReady(p, gs, base+uint64(copied+want)) - base)
		if avail > n {
			avail = n
		}
		pc.markFrom(pl, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
		before := copied
		for copied < avail {
			take := min(chunk, avail-copied)
			p.Copy(rbuf, copied, src, soff+copied, take)
			copied += take
			if after != nil {
				after(copied)
			}
		}
		pc.mark(pl, obs.PhaseChunkCopy, int64(copied-before))
	}
	c.caches[p.Rank].Release(p.S, gs.exposed)
	pc.mark(pl, obs.PhaseExpose, 0)
	c.recordPull(gs.leader, p.Rank, n)
}

// leaderProgressLoop interleaves every role a leader has during an
// allreduce — monitoring its groups' reduce_done counters and publishing
// its own reduce_ready upward (step 2b), its own reduction slice at its
// pull level, triggering/forwarding the broadcast (step 3) — in a polling
// loop, the way the paper describes leaders operating.
func (c *Comm) leaderProgressLoop(p *env.Proc, st *commState, view *rankView, sbuf, acc, rbuf *mem.Buffer, n, es int, dt mpi.Datatype, op mpi.Op, bcast bool, root int, lead []int, pl int, pc *phaseClock) {
	type monitorState struct {
		gs        *groupState
		part      map[int][2]int
		reducers  []int
		sliceDone map[int]uint64
		prefix    int
		published int
		selfOnly  bool
		seeded    bool
	}
	monitors := make([]*monitorState, 0, len(lead))
	for _, l := range lead {
		gs, _ := st.groupOf(l, p.Rank)
		ms := &monitorState{gs: gs, part: c.reducePartition(gs, n, es, c.Cfg.ReduceMinChunk), sliceDone: map[int]uint64{}}
		for _, m := range gs.g.Members {
			if m != gs.leader {
				ms.reducers = append(ms.reducers, m)
			}
		}
		sort.Ints(ms.reducers)
		ms.selfOnly = len(ms.reducers) == 0
		monitors = append(monitors, ms)
	}

	// The leader's own slice at its pull level (non-blocking variant).
	type sliceState struct {
		gs       *groupState
		s, e     int
		cur      int
		attached bool
		accB     *mem.Buffer
		accOff   int
		srcs     map[int]*mem.Buffer
		offs     map[int]int
		ready    map[int]uint64
	}
	var sl *sliceState
	if pl >= 0 {
		gs, _ := st.groupOf(pl, p.Rank)
		part := c.reducePartition(gs, n, es, c.Cfg.ReduceMinChunk)
		sc := part[p.Rank]
		sl = &sliceState{gs: gs, s: sc[0], e: sc[1], cur: sc[0], ready: map[int]uint64{}}
		if sl.s == sl.e {
			gs.redDone[p.Rank].Set(p.S, p.Core, view.redDoneBase(pl))
			sl = nil
		}
	}

	// Broadcast forwarding state (leaders pull the final result from their
	// parent and propagate availability to their groups, exactly as in
	// Bcast; the root publishes directly from its top-group monitor).
	isRoot := p.Rank == root
	bcastExposed := false
	var bcSrc *mem.Buffer
	bcSoff := 0
	bcCopied := 0
	bcAttached := false

	exposeForBcast := func() {
		for _, l := range lead {
			gs, _ := st.groupOf(l, p.Rank)
			gs.exposed = xpmem.Expose(rbuf)
			gs.exposedOff = 0
			gs.expSeq.Set(p.S, p.Core, view.opSeq)
		}
		bcastExposed = true
	}
	if bcast {
		exposeForBcast()
	}

	publishBcast := func(avail int) {
		for _, l := range lead {
			gs, _ := st.groupOf(l, p.Rank)
			c.setReady(p, gs, view.cumBytes[l]+uint64(avail))
		}
	}

	poll := c.pollInterval(n)
	for {
		progressed := false
		done := true
		// Phase attribution: a leader interleaves its roles, so each loop
		// iteration's segment is attributed to the dominant activity —
		// reduction work, chunk forwarding, or (otherwise) flag polling.
		reducedIter, copiedIter := 0, 0

		// Role: monitor led groups, publish reduce_ready upward (or the
		// broadcast counters when this rank is the internal root).
		for li, ms := range monitors {
			l := lead[li]
			if ms.prefix >= n {
				continue
			}
			if ms.selfOnly && !ms.seeded {
				// Single-member group: the accumulator must take the
				// leader's own contribution directly.
				if l == 0 {
					p.Copy(acc, 0, sbuf, 0, n)
					ms.prefix = n
					ms.seeded = true
					progressed = true
					reducedIter += n
				} else {
					// Contribution is acc itself; prefix follows the level
					// below, handled by the monitor of level l-1 publishing
					// into redReady — mirror it locally.
					ms.prefix = monitors[li-1].published
					ms.seeded = ms.prefix >= n
					if ms.prefix > ms.published {
						progressed = true
					}
				}
			} else if !ms.selfOnly {
				// Poll reduce_done of each reducer; compute the contiguous
				// prefix across the ordered slices.
				for _, m := range ms.reducers {
					sz := uint64(ms.part[m][1] - ms.part[m][0])
					if ms.sliceDone[m] >= sz {
						continue
					}
					v := ms.gs.redDone[m].Read(p.S, p.Core)
					base := view.redDoneBaseOf(l, m)
					if v > base {
						d := v - base
						if d > sz {
							d = sz
						}
						if d != ms.sliceDone[m] {
							ms.sliceDone[m] = d
							progressed = true
						}
					}
				}
				prefix := 0
				for _, m := range ms.reducers {
					s0, e0 := ms.part[m][0], ms.part[m][1]
					prefix = s0 + int(ms.sliceDone[m])
					if int(ms.sliceDone[m]) < e0-s0 {
						break
					}
					prefix = e0
				}
				if prefix > n {
					prefix = n
				}
				ms.prefix = prefix
			}
			if ms.prefix > ms.published {
				ms.published = ms.prefix
				progressed = true
				// Publish the new prefix one level up: as this rank's
				// contribution counter at level l+1 (step 2b), or — when
				// this led group is the hierarchy's top — as the broadcast
				// trigger (step 3).
				if l+1 >= st.h.NLevels() {
					if bcast {
						publishBcast(ms.published)
					}
				} else {
					up, _ := st.groupOf(l+1, p.Rank)
					up.redReady[p.Rank].Set(p.S, p.Core, view.redCum[l+1]+uint64(ms.published))
				}
			}
			if ms.prefix < n {
				done = false
			}
		}

		// Role: own reduction slice at the pull level (non-blocking).
		if sl != nil && sl.cur < sl.e {
			done = false
			if !sl.attached {
				if sl.gs.accExpSeq.Read(p.S, p.Core) >= view.opSeq {
					allExposed := true
					for _, m := range sl.gs.g.Members {
						if sl.gs.redExpSeq[m].Read(p.S, p.Core) < view.opSeq {
							allExposed = false
							break
						}
					}
					if allExposed {
						sl.accB = c.caches[p.Rank].Attach(p.S, sl.gs.accExposed)
						sl.accOff = sl.gs.accExposedOff
						sl.srcs = make(map[int]*mem.Buffer)
						sl.offs = make(map[int]int)
						for _, m := range sl.gs.g.Members {
							sl.srcs[m] = c.caches[p.Rank].Attach(p.S, sl.gs.redExposed[m])
							sl.offs[m] = sl.gs.redExposedOff[m]
						}
						sl.attached = true
						progressed = true
					}
				}
			}
			if sl.attached {
				chunk := c.chunkAt(pl)
				for sl.cur < sl.e {
					step := min(chunk, sl.e-sl.cur)
					ok := true
					for _, m := range sl.gs.g.Members {
						need := view.redCum[pl] + uint64(sl.cur+step)
						if sl.ready[m] < need {
							sl.ready[m] = sl.gs.redReady[m].Read(p.S, p.Core)
						}
						if sl.ready[m] < need {
							ok = false
							break
						}
					}
					if !ok {
						break
					}
					c.reduceChunk(p, sl.gs, sl.accB, sl.accOff, sl.srcs, sl.offs, sl.cur, step, dt, op)
					sl.cur += step
					sl.gs.redDone[p.Rank].Set(p.S, p.Core, view.redDoneBase(pl)+uint64(sl.cur-sl.s))
					progressed = true
					reducedIter += step
				}
			}
		}

		// Role: broadcast pull from parent + forwarding (non-root leaders).
		if bcast && !isRoot && bcCopied < n {
			done = false
			gs, _ := st.groupOf(pl, p.Rank)
			if !bcAttached {
				if gs.expSeq.Read(p.S, p.Core) >= view.opSeq {
					bcSrc = c.caches[p.Rank].Attach(p.S, gs.exposed)
					bcSoff = gs.exposedOff
					bcAttached = true
					progressed = true
				}
			}
			if bcAttached {
				base := view.cumBytes[pl]
				avail := int(gs.readyValue(p) - base)
				if avail > n {
					avail = n
				}
				if avail > bcCopied {
					chunk := c.chunkAt(pl)
					for bcCopied < avail {
						take := min(chunk, avail-bcCopied)
						p.Copy(rbuf, bcCopied, bcSrc, bcSoff+bcCopied, take)
						bcCopied += take
						copiedIter += take
						publishBcast(bcCopied)
					}
					progressed = true
					if bcCopied >= n {
						c.caches[p.Rank].Release(p.S, gs.exposed)
						c.recordPull(gs.leader, p.Rank, n)
					}
				}
			}
		}
		if bcast && isRoot && bcCopied < n {
			// The root's rbuf is the accumulator itself; completion follows
			// the top monitor.
			bcCopied = monitors[len(monitors)-1].published
			if bcCopied < n {
				done = false
			}
		}

		if pc != nil {
			switch {
			case reducedIter > 0:
				pc.mark(pl, obs.PhaseReduceSlice, int64(reducedIter))
			case copiedIter > 0:
				pc.mark(pl, obs.PhaseChunkCopy, int64(copiedIter))
			default:
				pc.mark(-1, obs.PhaseFlagWait, 0)
			}
		}
		if done {
			break
		}
		if !progressed {
			p.S.Sleep(poll)
			pc.mark(-1, obs.PhaseFlagWait, 0)
		}
	}
	_ = bcastExposed
}

// readyValue reads the group's availability counter under any flag scheme
// without blocking (leader progress loop use).
func (gs *groupState) readyValue(p *env.Proc) uint64 {
	if gs.ready != nil {
		return gs.ready.Read(p.S, p.Core)
	}
	return gs.memberReady[p.Rank].Read(p.S, p.Core)
}

// cicoAllreduce is the small-message path: contributions staged in the
// per-rank CICO buffers, one reducer per group, CICO broadcast back.
func (c *Comm) cicoAllreduce(p *env.Proc, st *commState, view *rankView, sbuf, acc, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, bcast bool, root int, pc *phaseClock) {
	lead := st.leadLevels(p.Rank)
	pl := st.pullLevel(p.Rank)
	slot := int(view.opSeq) % 2 * (c.Cfg.CICOBytes / 2)
	_ = acc // CICO accumulates in the leaders' shared buffers

	// Copy-in: stage the send buffer; that is this rank's leaf contribution.
	p.Copy(c.cico[p.Rank], slot, sbuf, 0, n)
	gs0, _ := st.groupOf(0, p.Rank)
	gs0.redReady[p.Rank].Set(p.S, p.Core, view.redCum[0]+uint64(n))
	pc.mark(0, obs.PhaseChunkCopy, int64(n))

	// Bottom-up: monitor led groups (wait for every active reducer's
	// slice), then publish upward; do own reduction duty at the pull level.
	es := dt.Size()
	for _, l := range lead {
		gs, _ := st.groupOf(l, p.Rank)
		part := c.reducePartition(gs, n, es, c.Cfg.CICOMinReduce)
		var doneFlags []*shm.Flag
		var doneTargets []uint64
		for _, m := range gs.g.Members {
			sl, ok := part[m]
			if !ok {
				continue
			}
			if sz := uint64(sl[1] - sl[0]); sz > 0 {
				doneFlags = append(doneFlags, gs.redDone[m])
				doneTargets = append(doneTargets, view.redDoneBaseOf(l, m)+sz)
			}
		}
		shm.WaitAllTargets(p.S, p.Core, doneFlags, doneTargets)
		pc.mark(l, obs.PhaseFlagWait, 0)
		// This group's result now sits in this leader's CICO slot; it is
		// the leader's contribution one level up.
		if l+1 < st.h.NLevels() {
			up, _ := st.groupOf(l+1, p.Rank)
			up.redReady[p.Rank].Set(p.S, p.Core, view.redCum[l+1]+uint64(n))
		}
	}

	if pl >= 0 {
		gs, _ := st.groupOf(pl, p.Rank)
		part := c.reducePartition(gs, n, es, c.Cfg.CICOMinReduce)
		if sl, ok := part[p.Rank]; ok && sl[1] > sl[0] {
			s0, e0 := sl[0], sl[1]
			early := c.chaos().EarlyReady
			if early {
				// Mutation: announce the slice as reduced before folding it.
				gs.redDone[p.Rank].Set(p.S, p.Core, view.redDoneBase(pl)+uint64(e0-s0))
			}
			// Wait for every participant's contribution, fold the slice
			// into the leader's CICO slot (in place: it already holds the
			// leader's contribution).
			var readyFlags []*shm.Flag
			for _, m := range gs.g.Members {
				readyFlags = append(readyFlags, gs.redReady[m])
			}
			shm.WaitAllGE(p.S, p.Core, readyFlags, view.redCum[pl]+uint64(n))
			pc.mark(pl, obs.PhaseFlagWait, 0)
			dst := c.cico[gs.leader]
			for _, m := range gs.g.Members {
				if m == gs.leader {
					continue
				}
				src := c.cico[m]
				p.ChargeRead(src, slot+s0, e0-s0)
				mpi.ReduceBytes(op, dt, dst.Data[slot+s0:slot+e0], src.Data[slot+s0:slot+e0])
				p.ChargeCompute(e0 - s0)
			}
			p.Dirty(dst)
			if !early {
				gs.redDone[p.Rank].Set(p.S, p.Core, view.redDoneBase(pl)+uint64(e0-s0))
			}
			pc.mark(pl, obs.PhaseReduceSlice, int64(e0-s0))
		}
	}

	if !bcast {
		// Reduce: the root drains its CICO accumulator into rbuf.
		if p.Rank == root {
			p.Copy(rbuf, 0, c.cico[p.Rank], slot, n)
			pc.mark(-1, obs.PhaseChunkCopy, int64(n))
		}
		return
	}

	// Broadcast the final result back down through the CICO buffers.
	if p.Rank == root {
		p.Copy(rbuf, 0, c.cico[p.Rank], slot, n)
		for _, l := range lead {
			gs, _ := st.groupOf(l, p.Rank)
			c.setReady(p, gs, view.cumBytes[l]+uint64(n))
		}
		pc.mark(-1, obs.PhaseChunkCopy, int64(n))
	} else {
		gs, _ := st.groupOf(pl, p.Rank)
		base := view.cumBytes[pl]
		c.waitReady(p, gs, base+uint64(n))
		pc.markFrom(pl, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
		src := c.cico[gs.leader]
		p.Copy(rbuf, 0, src, slot, n)
		if len(lead) > 0 {
			p.Copy(c.cico[p.Rank], slot, src, slot, n)
			for _, l := range lead {
				lgs, _ := st.groupOf(l, p.Rank)
				c.setReady(p, lgs, view.cumBytes[l]+uint64(n))
			}
		}
		pc.mark(pl, obs.PhaseChunkCopy, int64(n))
		c.recordPull(gs.leader, p.Rank, n)
	}
}

// Barrier synchronizes all ranks hierarchically: arrival propagates up via
// the ack flags, release propagates down via the ready counters.
func (c *Comm) Barrier(p *env.Proc) {
	if c.nbGated(p.Rank) {
		c.issueBlocking(p, c.buildReq(p.Rank, reqBarrier, nil, nil, 0, 0, 0, 0, 0))
		return
	}
	c.barrier(p)
}

func (c *Comm) barrier(p *env.Proc) {
	st := c.stateFor(0)
	view := st.views[p.Rank]
	view.opSeq++
	if p.Rank == 0 {
		c.Ops++
	}
	pc := c.newPhaseClock(p, obs.OpBarrier, view.opSeq, 0, st.h.NLevels())

	// Gather: each rank signals arrival at its pull group; leaders wait
	// for their members bottom-up before signalling their own arrival.
	lead := st.leadLevels(p.Rank)
	pl := st.pullLevel(p.Rank)
	ch := c.chaos()
	// Release down (the root starts the release, leaders forward it).
	release := func() {
		for i := len(lead) - 1; i >= 0; i-- {
			gs, _ := st.groupOf(lead[i], p.Rank)
			c.setReady(p, gs, view.cumBytes[lead[i]]+1)
		}
	}
	if ch.EarlyReady {
		// Mutation: release the subtree before its arrivals are in — ranks
		// exit the barrier while stragglers have not yet entered it.
		release()
	}
	for _, l := range lead {
		gs, _ := st.groupOf(l, p.Rank)
		var flags []*shm.Flag
		for _, m := range gs.g.Members {
			if m != p.Rank {
				flags = append(flags, gs.acks[m])
			}
		}
		shm.WaitAllGE(p.S, p.Core, flags, view.opSeq)
	}
	if pl >= 0 {
		gs, _ := st.groupOf(pl, p.Rank)
		if !(ch.SkipAck && len(lead) == 0) {
			// Mutation (skipped arm): a pure member forgets its arrival
			// signal; its leader waits forever in the gather above.
			gs.acks[p.Rank].Set(p.S, p.Core, view.opSeq)
		}
		// Release: wait for the leader to advance the availability counter
		// by the barrier's token byte.
		c.waitReady(p, gs, view.cumBytes[pl]+1)
	}
	if !ch.EarlyReady {
		release()
	}
	// A barrier consumes one token byte on every level's counter.
	for l := range view.cumBytes {
		view.cumBytes[l]++
	}
	pc.mark(-1, obs.PhaseFlagWait, 0)
	pc.finish()
}
