// Package core implements XHC — the XPMEM-based Hierarchical Collectives
// framework that is the paper's contribution. A Comm organizes the ranks
// of a World into an n-level topology-aware hierarchy (package hier) and
// provides Broadcast, Allreduce, Reduce and Barrier with:
//
//   - single-copy data movement via (simulated) XPMEM with a registration
//     cache, for messages above the CICO threshold;
//   - a copy-in-copy-out shared-memory path below the threshold;
//   - pipelining with per-level configurable chunk sizes;
//   - single-writer/multiple-reader synchronization flags (no atomics).
package core

import (
	"fmt"

	"xhc/internal/env"
	"xhc/internal/hier"
	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/shm"
	"xhc/internal/xpmem"
)

// FlagScheme selects how a leader signals per-chunk progress to its group
// members (the paper's Fig. 10 experiment).
type FlagScheme int

const (
	// SingleFlag: one leader-owned counter per group; all members read the
	// same cache line. XHC's actual design.
	SingleFlag FlagScheme = iota
	// MultiSharedLine: one counter per member, all packed into the same
	// cache line (still leader-owned).
	MultiSharedLine
	// MultiSeparateLines: one counter per member, each on its own cache
	// line. Defeats the implicit LLC sharing assistance.
	MultiSeparateLines
)

// String names the scheme.
func (f FlagScheme) String() string {
	switch f {
	case SingleFlag:
		return "single"
	case MultiSharedLine:
		return "multi-shared"
	case MultiSeparateLines:
		return "multi-separate"
	}
	return fmt.Sprintf("FlagScheme(%d)", int(f))
}

// Config tunes an XHC communicator.
type Config struct {
	// Sensitivity is the hierarchy specification (default numa+socket;
	// nil/empty means flat).
	Sensitivity hier.Sensitivity
	// CICOThreshold: operations with message size <= this use the
	// copy-in-copy-out path (paper default 1 KiB).
	CICOThreshold int
	// ChunkBytes is the pipelining granule per hierarchy level (indexed by
	// level; the last entry covers all deeper levels). Paper: run-time
	// configurable per level.
	ChunkBytes []int
	// CICOBytes is the size of each rank's shared CICO buffer.
	CICOBytes int
	// ReduceMinChunk is the minimum number of bytes one member takes on in
	// the intra-group reduction; with few elements only one member in each
	// group reduces (paper Section IV-B step 2a).
	ReduceMinChunk int
	// CICOMinReduce is the same minimum for the CICO path, where messages
	// are small and a finer partition still pays off.
	CICOMinReduce int
	// Flags selects the progress-flag placement (Fig. 10); default SingleFlag.
	Flags FlagScheme
	// RegCache enables the per-rank XPMEM registration cache.
	RegCache bool
	// Tag namespaces this communicator's shared control structures. Every
	// flag and internal buffer name carries the tag ("xhc.c[<tag>].…"), so
	// communicators with overlapping rank sets running concurrently on one
	// world never alias control lines — and the verify tracker can prove
	// it from the names alone (the bracketed form never collides with the
	// legacy names, whose first segment is bare). Empty (the default) keeps
	// the legacy un-namespaced names byte-identical.
	Tag string
	// Chaos, when non-nil, enables deliberate protocol mutations for the
	// verify harness's self-test (see ChaosConfig). Production code leaves
	// it nil.
	Chaos *ChaosConfig
}

// DefaultConfig returns the paper's defaults on the numa+socket hierarchy.
func DefaultConfig() Config {
	sens, _ := hier.ParseSensitivity("numa+socket")
	return Config{
		Sensitivity:    sens,
		CICOThreshold:  1 << 10,
		ChunkBytes:     []int{16 << 10},
		CICOBytes:      16 << 10,
		ReduceMinChunk: 2 << 10,
		CICOMinReduce:  128,
		Flags:          SingleFlag,
		RegCache:       true,
	}
}

// FlatConfig returns the XHC-flat variant of the evaluation.
func FlatConfig() Config {
	c := DefaultConfig()
	c.Sensitivity = nil
	return c
}

// Comm is an XHC communicator over all ranks of a world.
type Comm struct {
	W   *env.World
	Cfg Config

	caches []*xpmem.Cache // per-rank registration caches
	cico   []*mem.Buffer  // per-rank shared CICO buffers
	states map[int]*commState

	// OnPull, when set, observes every member<-leader data edge once per
	// operation (Table II accounting).
	OnPull func(from, to, bytes int)

	// Trace records per-rank phase spans when the world is observed with
	// tracing enabled; nil otherwise. Everything that consults it does so
	// through nil-checked helpers (phaseClock), so the disabled path costs
	// one pointer comparison per operation.
	Trace *obs.Tracer
	// obsPull mirrors OnPull for the observability registry. It is a
	// separate hook so experiments that install their own OnPull collector
	// after construction don't silence registry accounting (and vice versa).
	obsPull func(from, to, bytes int)
	// rec/obsClock/pcs back the always-on flight recorder: one pooled
	// phaseClock per rank (each rank runs one op at a time) feeding the
	// world's OpRecorder. All nil/empty when the world is unobserved.
	rec      *obs.OpRecorder
	obsClock func() int64
	pcs      []phaseClock

	scratch []*mem.Buffer              // per-rank internal accumulators for Reduce
	agFlags map[*commState][]*shm.Flag // allgather push-completion flags

	// Non-blocking request machinery (request.go): one lane per rank
	// holding the queue its helper proc drains, a per-rank staging buffer
	// for fused small-op batches, and the fusion size cap (CICOThreshold).
	nb      []nbRank
	fuseBuf []*mem.Buffer
	fuseMax int
	// fuseCap is the construction-time fusion cap: it sizes the (lazily
	// allocated, never grown) staging buffers, so a dynamic FuseBytes from
	// ApplyTuning can lower fuseMax and raise it back, but never past this.
	fuseCap int
	// inflightCur counts this comm's currently outstanding requests
	// (plain: the simulation is cooperative).
	inflightCur int64

	// Ops counts completed collective operations.
	Ops int64
}

// name renders an internal flag/buffer name, namespaced by the
// communicator tag. The empty tag produces the historical "xhc.…" names
// byte-for-byte (replay fingerprints hash event sequences that depend on
// flag identity, so the default naming must not move).
func (c *Comm) name(format string, args ...any) string {
	if c.Cfg.Tag == "" {
		return fmt.Sprintf("xhc."+format, args...)
	}
	return fmt.Sprintf("xhc.c["+c.Cfg.Tag+"]."+format, args...)
}

// New creates an XHC communicator. Setup work (hierarchy construction,
// flag allocation, CICO segment attachment) happens at creation and
// charges no model time, matching the paper's exclusion of communicator
// creation from measurements.
func New(w *env.World, cfg Config) (*Comm, error) {
	if cfg.CICOThreshold < 0 {
		return nil, fmt.Errorf("core: negative CICO threshold")
	}
	if len(cfg.ChunkBytes) == 0 {
		cfg.ChunkBytes = []int{64 << 10}
	}
	for _, c := range cfg.ChunkBytes {
		if c <= 0 {
			return nil, fmt.Errorf("core: non-positive chunk size %d", c)
		}
	}
	if cfg.CICOBytes < cfg.CICOThreshold {
		cfg.CICOBytes = cfg.CICOThreshold * 2
	}
	if cfg.ReduceMinChunk <= 0 {
		cfg.ReduceMinChunk = 1
	}
	if cfg.CICOMinReduce <= 0 {
		cfg.CICOMinReduce = 128
	}
	c := &Comm{
		W:      w,
		Cfg:    cfg,
		states: make(map[int]*commState),
	}
	c.caches = make([]*xpmem.Cache, w.N)
	c.cico = make([]*mem.Buffer, w.N)
	c.scratch = make([]*mem.Buffer, w.N)
	c.nb = make([]nbRank, w.N)
	c.fuseBuf = make([]*mem.Buffer, w.N)
	c.fuseMax = cfg.CICOThreshold
	c.fuseCap = cfg.CICOThreshold
	for r := 0; r < w.N; r++ {
		c.caches[r] = xpmem.NewCache(w.Sys, 0, cfg.RegCache)
		c.cico[r] = w.NewBufferAt(c.name("cico.%d", r), r, cfg.CICOBytes)
	}
	// Pre-build the root-0 hierarchy to validate the configuration.
	if _, err := c.stateForChecked(0); err != nil {
		return nil, err
	}
	if w.Obs != nil {
		c.Trace = w.Obs.Tracer
		c.obsPull = w.Obs.RecordPull
		c.rec = w.Obs.Rec
		c.obsClock = w.Obs.Rec.Now
		c.pcs = make([]phaseClock, w.N)
		if c.chaos() != (ChaosConfig{}) {
			c.rec.CountFault(obs.FaultChaos)
		}
		w.OnObsFlush(func(wo *obs.World) {
			for _, ca := range c.caches {
				wo.AddCacheStats(ca.Stats())
			}
			wo.AddOps(c.Ops)
		})
	}
	return c, nil
}

// recordPull fires both pull observers (experiment collector and registry).
func (c *Comm) recordPull(from, to, n int) {
	if c.OnPull != nil {
		c.OnPull(from, to, n)
	}
	if c.obsPull != nil {
		c.obsPull(from, to, n)
	}
}

// Split derives a communicator over a subset of this communicator's ranks
// (MPI_Comm_split with one surviving color): the child runs on an
// env.Subset world sharing the parent's engine and memory system, under a
// fresh tag that namespaces every control flag and internal buffer — so
// parent and child (or two overlapping children) can run collectives
// concurrently without ever touching the same control lines. The tag must
// be non-empty and unique among communicators sharing the world.
func (c *Comm) Split(ranks []int, tag string) (*Comm, error) {
	if tag == "" {
		return nil, fmt.Errorf("core: split requires a non-empty tag (flag namespace)")
	}
	if len(ranks) == 0 {
		return nil, fmt.Errorf("core: empty split")
	}
	cfg := c.Cfg
	cfg.Tag = tag
	return New(c.W.Subset(ranks), cfg)
}

// MustNew panics on configuration errors.
func MustNew(w *env.World, cfg Config) *Comm {
	c, err := New(w, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Cache returns rank's registration cache (hit-ratio reporting).
func (c *Comm) Cache(rank int) *xpmem.Cache { return c.caches[rank] }

// Hierarchy returns the hierarchy used for the given root.
func (c *Comm) Hierarchy(root int) *hier.Hierarchy { return c.stateFor(root).h }

// chunkAt returns the pipelining granule for a hierarchy level.
func (c *Comm) chunkAt(level int) int {
	if level < len(c.Cfg.ChunkBytes) {
		return c.Cfg.ChunkBytes[level]
	}
	return c.Cfg.ChunkBytes[len(c.Cfg.ChunkBytes)-1]
}

// commState is the per-root bundle of hierarchy and shared control
// structures. XHC elects the root leader of every group it belongs to, so
// each distinct root needs its own (lazily created, cached) bundle.
type commState struct {
	root   int
	h      *hier.Hierarchy
	groups [][]*groupState // [level][groupIndex]
	views  []*rankView     // per-rank local mirrors of cumulative counters
}

// groupState is the shared-memory control block of one hierarchy group.
type groupState struct {
	g      *hier.Group
	leader int

	// ready is the leader-owned cumulative byte counter announcing how
	// many bytes are available in the leader's buffer (SingleFlag scheme).
	ready *shm.Flag
	// memberReady replaces ready under the multi-flag schemes of Fig. 10.
	memberReady map[int]*shm.Flag
	// expSeq announces (by op sequence) that the leader's buffer handle
	// has been published in exposed.
	expSeq     *shm.Flag
	exposed    xpmem.Handle
	exposedOff int
	// fuseFirst is the op sequence of the first sub-op in the leader's
	// currently exposed fused-broadcast batch: sub-op q of the batch sits at
	// offset (q-fuseFirst)*n in the exposed staging buffer. Written by the
	// leader only while no member is mid-batch (the trailing ack wait of the
	// fused protocol freezes it); plain because the simulation is
	// cooperative. See request.go.
	fuseFirst uint64
	// acks[m] is member m's cumulative completed-op counter.
	acks map[int]*shm.Flag

	// Allreduce state:
	// redReady[m] is member m's cumulative counter of contribution bytes
	// available for reduction (owner m).
	redReady map[int]*shm.Flag
	// redDone[m] is member m's cumulative counter of bytes it has reduced
	// into the leader's accumulation buffer (owner m).
	redDone map[int]*shm.Flag
	// redExpSeq/redExposed publish each member's contribution buffer.
	redExpSeq     map[int]*shm.Flag
	redExposed    map[int]xpmem.Handle
	redExposedOff map[int]int
	// accExpSeq/accExposed publish the leader's accumulation buffer.
	accExpSeq     *shm.Flag
	accExposed    xpmem.Handle
	accExposedOff int
}

// rankView is one rank's local mirror of the monotonic shared counters.
// Because every rank executes the same operation sequence, all views stay
// consistent without communication.
type rankView struct {
	rank     int
	opSeq    uint64
	cumBytes []uint64 // broadcast availability base, per level
	redCum   []uint64 // reduce contribution-availability base, per level
	// redDoneB mirrors the cumulative reduce_done counter of each member
	// this rank interacts with: [level][member] -> base value.
	redDoneB []map[int]uint64
}

// redDoneBase returns this rank's own reduce_done base at a level.
func (v *rankView) redDoneBase(level int) uint64 { return v.redDoneBaseOf(level, v.rank) }

// redDoneBaseOf returns member m's reduce_done base at a level.
func (v *rankView) redDoneBaseOf(level, m int) uint64 {
	if v.redDoneB[level] == nil {
		return 0
	}
	return v.redDoneB[level][m]
}

// bumpRedDone advances member m's mirrored base after an operation.
func (v *rankView) bumpRedDone(level, m int, d uint64) {
	if v.redDoneB[level] == nil {
		v.redDoneB[level] = make(map[int]uint64)
	}
	v.redDoneB[level][m] += d
}

func (c *Comm) stateFor(root int) *commState {
	st, err := c.stateForChecked(root)
	if err != nil {
		panic(err)
	}
	return st
}

func (c *Comm) stateForChecked(root int) (*commState, error) {
	if st, ok := c.states[root]; ok {
		return st, nil
	}
	h, err := hier.Build(c.W.Topo, c.W.Map, c.Cfg.Sensitivity, root)
	if err != nil {
		return nil, err
	}
	st := &commState{root: root, h: h}
	for l := 0; l < h.NLevels(); l++ {
		var lvl []*groupState
		for gi := range h.GroupsAt(l) {
			g := &h.GroupsAt(l)[gi]
			lc := c.W.Core(g.Leader)
			gs := &groupState{
				g:             g,
				leader:        g.Leader,
				expSeq:        shm.NewFlag(c.W.Sys, c.name("r%d.l%d.g%d.exp", root, l, gi), lc),
				acks:          map[int]*shm.Flag{},
				redReady:      map[int]*shm.Flag{},
				redDone:       map[int]*shm.Flag{},
				redExpSeq:     map[int]*shm.Flag{},
				redExposed:    map[int]xpmem.Handle{},
				redExposedOff: map[int]int{},
				accExpSeq:     shm.NewFlag(c.W.Sys, c.name("r%d.l%d.g%d.accexp", root, l, gi), lc),
			}
			switch c.Cfg.Flags {
			case SingleFlag:
				gs.ready = shm.NewFlag(c.W.Sys, c.name("r%d.l%d.g%d.ready", root, l, gi), lc)
			case MultiSharedLine:
				gs.memberReady = map[int]*shm.Flag{}
				line := c.W.Sys.NewLine(lc)
				n := 0
				for _, m := range g.Members {
					if m == g.Leader {
						continue
					}
					// A 64-byte line fits 8 flags; spill onto new lines.
					if n > 0 && n%8 == 0 {
						line = c.W.Sys.NewLine(lc)
					}
					gs.memberReady[m] = shm.NewFlagOnLine(c.W.Sys,
						c.name("r%d.l%d.g%d.ready.%d", root, l, gi, m), lc, line)
					n++
				}
			case MultiSeparateLines:
				gs.memberReady = map[int]*shm.Flag{}
				for _, m := range g.Members {
					if m == g.Leader {
						continue
					}
					gs.memberReady[m] = shm.NewFlag(c.W.Sys,
						c.name("r%d.l%d.g%d.ready.%d", root, l, gi, m), lc)
				}
			}
			// Mutation: drop the per-writer line placement and pack every
			// member's ack flag onto one shared line. Each flag keeps its
			// single writer, so only the per-line write-tracker notices.
			var ackLine *mem.Line
			if c.chaos().SharedAckLine {
				ackLine = c.W.Sys.NewLine(lc)
			}
			for _, m := range g.Members {
				mc := c.W.Core(m)
				ackName := c.name("r%d.l%d.g%d.ack.%d", root, l, gi, m)
				if ackLine != nil {
					gs.acks[m] = shm.NewFlagOnLine(c.W.Sys, ackName, mc, ackLine)
				} else {
					gs.acks[m] = shm.NewFlag(c.W.Sys, ackName, mc)
				}
				gs.redReady[m] = shm.NewFlag(c.W.Sys, c.name("r%d.l%d.g%d.rr.%d", root, l, gi, m), mc)
				gs.redDone[m] = shm.NewFlag(c.W.Sys, c.name("r%d.l%d.g%d.rd.%d", root, l, gi, m), mc)
				gs.redExpSeq[m] = shm.NewFlag(c.W.Sys, c.name("r%d.l%d.g%d.rexp.%d", root, l, gi, m), mc)
			}
			lvl = append(lvl, gs)
		}
		st.groups = append(st.groups, lvl)
	}
	st.views = make([]*rankView, c.W.N)
	for r := range st.views {
		st.views[r] = &rankView{
			rank:     r,
			cumBytes: make([]uint64, h.NLevels()),
			redCum:   make([]uint64, h.NLevels()),
			redDoneB: make([]map[int]uint64, h.NLevels()),
		}
	}
	c.states[root] = st
	return st, nil
}

// groupOf returns the group state rank belongs to at level.
func (st *commState) groupOf(level, rank int) (*groupState, bool) {
	g, ok := st.h.GroupOf(level, rank)
	if !ok {
		return nil, false
	}
	return st.groups[level][g.Index], true
}

// pullLevel returns the highest level at which rank participates as a
// non-leader (the level it pulls data at during a broadcast), or -1 for
// the root.
func (st *commState) pullLevel(rank int) int {
	pl := -1
	for l := 0; l < st.h.NLevels(); l++ {
		if _, ok := st.h.GroupOf(l, rank); !ok {
			break
		}
		if !st.h.IsLeader(l, rank) {
			pl = l
		}
	}
	return pl
}

// leadLevels returns the levels at which rank leads its group (always a
// prefix of its participation levels).
func (st *commState) leadLevels(rank int) []int {
	var out []int
	for l := 0; l < st.h.NLevels(); l++ {
		if st.h.IsLeader(l, rank) {
			out = append(out, l)
		} else {
			break
		}
	}
	return out
}

// setReady publishes the cumulative available-byte counter v to the
// members of gs, according to the configured flag scheme.
func (c *Comm) setReady(p *env.Proc, gs *groupState, v uint64) {
	if gs.ready != nil {
		gs.ready.Set(p.S, p.Core, v)
		return
	}
	// Member order (not map order) keeps the event sequence deterministic.
	for _, m := range gs.g.Members {
		if f, ok := gs.memberReady[m]; ok {
			f.Set(p.S, p.Core, v)
		}
	}
}

// waitReady blocks rank until the group's available-byte counter reaches
// v, returning the observed value.
func (c *Comm) waitReady(p *env.Proc, gs *groupState, v uint64) uint64 {
	if gs.ready != nil {
		return gs.ready.WaitGE(p.S, p.Core, v)
	}
	return gs.memberReady[p.Rank].WaitGE(p.S, p.Core, v)
}

// sizeCheck validates a collective's buffer arguments.
func sizeCheck(buf *mem.Buffer, off, n int) {
	if n < 0 || off < 0 || off+n > buf.Len() {
		panic(fmt.Sprintf("core: range [%d:+%d) out of buffer size %d", off, n, buf.Len()))
	}
}
