// Cluster collectives: the network level above the node hierarchy. Each
// node runs the unmodified intra-node XHC machinery (single-copy flags,
// CICO/XPMEM data paths); the node leaders form one extra hierarchy level
// on top, exchanging over the fabric through per-node NIC staging buffers
// — CICO-style staging across the wire, single-copy within each node.
// Leader election follows the paper's root-following rule lifted one
// level: the root's node elects the root itself (hier.BuildCluster), so
// fabric trees are rooted at the actual root rank and no extra intra-node
// hop is paid on the root's node.
package core

import (
	"fmt"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/obs"
)

// ClusterComm is a communicator spanning a ClusterWorld: one intra-node
// Comm per node plus the fabric level run by the node leaders.
type ClusterComm struct {
	CW  *env.ClusterWorld
	Cfg Config

	// Node[i] is node i's intra-node communicator.
	Node []*Comm

	nic []*nicBuf
	// netSeq[i] numbers node i's leader network ops (the RecNet record
	// stream — disjoint from the intra-node collective seq space).
	netSeq []uint64
}

// nicBuf is one node's NIC staging region: tx stages outgoing payloads
// (snapshotted by the fabric at send time), rx receives incoming ones
// (DMA-written by the fabric), and red is the leader's accumulator for
// rooted reductions on non-root nodes (MPI leaves non-root recv buffers
// untouched, so the node partial cannot go through the user's rbuf). All
// grow to the largest message seen and are then reused, so the steady
// state allocates nothing.
type nicBuf struct {
	tx, rx, red *mem.Buffer
}

// NewCluster builds a cluster communicator over cw with the given
// intra-node configuration.
func NewCluster(cw *env.ClusterWorld, cfg Config) (*ClusterComm, error) {
	cc := &ClusterComm{
		CW:     cw,
		Cfg:    cfg,
		Node:   make([]*Comm, len(cw.Nodes)),
		nic:    make([]*nicBuf, len(cw.Nodes)),
		netSeq: make([]uint64, len(cw.Nodes)),
	}
	for i, w := range cw.Nodes {
		c, err := New(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: cluster node %d: %w", i, err)
		}
		cc.Node[i] = c
		cc.nic[i] = &nicBuf{}
	}
	return cc, nil
}

// localRoot maps a global root rank to the within-node root a node's
// intra-node collective runs with (root-following leader election).
func (cc *ClusterComm) localRoot(node, root int) int {
	if node == root/cc.CW.PerNode {
		return root % cc.CW.PerNode
	}
	return 0
}

func (cc *ClusterComm) checkRoot(root int) {
	if root < 0 || root >= cc.CW.N {
		panic(fmt.Sprintf("core: cluster root %d out of range for %d ranks", root, cc.CW.N))
	}
}

// ensureNIC grows node's staging buffers to hold n bytes (min 1, so
// zero-byte control traffic has a region to address).
func (cc *ClusterComm) ensureNIC(node, n int) *nicBuf {
	nb := cc.nic[node]
	if n < 1 {
		n = 1
	}
	if nb.tx == nil || nb.tx.Len() < n {
		w := cc.CW.Nodes[node]
		nb.tx = w.NewBufferAt(fmt.Sprintf("nic%d.tx", node), 0, n)
		nb.rx = w.NewBufferAt(fmt.Sprintf("nic%d.rx", node), 0, n)
	}
	return nb
}

// netClock starts a network-level phase clock for one leader fabric op:
// the same segment-clock machinery as the intra-node collectives, but
// committing through RecordNet under the node's own netSeq stream. The
// leader's Comm phase-clock slot is free here — fabric work runs strictly
// outside the intra-node ops on the same proc — so the slot is reused and
// the path stays allocation-free. Returns nil (a no-op clock) unobserved.
func (cc *ClusterComm) netClock(p *env.Proc, node int, op obs.OpCode, bytes int64) *phaseClock {
	c := cc.Node[node]
	if c.pcs == nil {
		return nil
	}
	cc.netSeq[node]++
	pc := &c.pcs[p.Rank]
	now := c.obsClock()
	*pc = phaseClock{
		t: c.Trace, rec: c.rec, clk: c.obsClock,
		lane: p.Core, rank: int32(p.Rank), op: op, seq: cc.netSeq[node],
		bytes: bytes, net: true,
		start: now, last: now,
	}
	return pc
}

// fabricBcast runs the network-level binomial broadcast among node
// leaders: receive n bytes into the NIC staging region from the parent,
// copy them into buf (the single intra-node copy), then relay buf to the
// children largest-subtree-first. Called by node leaders only.
func (cc *ClusterComm) fabricBcast(p *env.Proc, node, rootNode int, buf *mem.Buffer, off, n int, pc *phaseClock) {
	nn := cc.CW.Cl.Nodes
	rel := (node - rootNode + nn) % nn
	mask := 1
	for mask < nn {
		if rel&mask != 0 {
			parent := (rel - mask + rootNode) % nn
			nb := cc.ensureNIC(node, n)
			cc.CW.Recv(p, node, parent, nb.rx, 0, n)
			pc.mark(-1, obs.PhaseFabric, int64(n))
			if n > 0 {
				p.Copy(buf, off, nb.rx, 0, n)
				pc.mark(-1, obs.PhaseNICStage, int64(n))
			}
			break
		}
		mask <<= 1
	}
	staged := false
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < nn {
			child := (rel + mask + rootNode) % nn
			nb := cc.ensureNIC(node, n)
			if n > 0 && !staged {
				p.Copy(nb.tx, 0, buf, off, n)
				staged = true
				pc.mark(-1, obs.PhaseNICStage, int64(n))
			}
			cc.CW.Send(p, node, child, nb.tx, 0, n)
			pc.mark(-1, obs.PhaseFabric, int64(n))
		}
	}
}

// fabricReduce runs the network-level binomial reduction of acc[:n] to
// node 0's leader: receive children's partials into the NIC staging
// region, fold them into acc with the real reduction kernel, then forward
// the partial to the parent. Called by node leaders only.
func (cc *ClusterComm) fabricReduce(p *env.Proc, node int, acc *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, pc *phaseClock) {
	nn := cc.CW.Cl.Nodes
	rel := node
	mask := 1
	for mask < nn {
		if rel&mask == 0 {
			src := rel | mask
			if src < nn {
				nb := cc.ensureNIC(node, n)
				cc.CW.Recv(p, node, src, nb.rx, 0, n)
				pc.mark(-1, obs.PhaseFabric, int64(n))
				if n > 0 {
					p.ChargeRead(nb.rx, 0, n)
					p.ChargeCompute(n)
					mpi.ReduceBytes(op, dt, acc.Data[:n], nb.rx.Data[:n])
					p.Dirty(acc)
					pc.mark(-1, obs.PhaseReduceSlice, int64(n))
				}
			}
		} else {
			parent := rel &^ mask
			nb := cc.ensureNIC(node, n)
			if n > 0 {
				p.Copy(nb.tx, 0, acc, 0, n)
				pc.mark(-1, obs.PhaseNICStage, int64(n))
			}
			cc.CW.Send(p, node, parent, nb.tx, 0, n)
			pc.mark(-1, obs.PhaseFabric, int64(n))
			break
		}
		mask <<= 1
	}
}

// fabricBarrier is a zero-payload gather to node 0 plus a release
// broadcast — the network-level barrier among node leaders.
func (cc *ClusterComm) fabricBarrier(p *env.Proc, node int, pc *phaseClock) {
	nn := cc.CW.Cl.Nodes
	rel := node
	mask := 1
	for mask < nn {
		if rel&mask == 0 {
			src := rel | mask
			if src < nn {
				cc.CW.Recv(p, node, src, nil, 0, 0)
				pc.mark(-1, obs.PhaseFabric, 0)
			}
		} else {
			cc.CW.Send(p, node, rel&^mask, nil, 0, 0)
			pc.mark(-1, obs.PhaseFabric, 0)
			break
		}
		mask <<= 1
	}
	cc.fabricBcast(p, node, 0, nil, 0, 0, pc)
}

// Bcast broadcasts buf[off:off+n] from global rank root to all ranks of
// the cluster. Every rank calls it with its local Proc and node index.
func (cc *ClusterComm) Bcast(p *env.Proc, node int, buf *mem.Buffer, off, n, root int) {
	cc.checkRoot(root)
	lr := cc.localRoot(node, root)
	if cc.CW.Cl.Nodes > 1 && n > 0 && p.Rank == lr {
		pc := cc.netClock(p, node, obs.OpBcast, int64(n))
		cc.fabricBcast(p, node, root/cc.CW.PerNode, buf, off, n, pc)
		pc.finish()
	}
	cc.Node[node].Bcast(p, buf, off, n, lr)
}

// Allreduce reduces sbuf[:n] across all ranks with op/dt and leaves the
// result in every rank's rbuf[:n]: intra-node reduction to each node
// leader, network-level binomial reduce to node 0, result broadcast back
// down the fabric and then within each node.
func (cc *ClusterComm) Allreduce(p *env.Proc, node int, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) {
	if cc.CW.Cl.Nodes == 1 {
		cc.Node[node].Allreduce(p, sbuf, rbuf, n, dt, op)
		return
	}
	cc.Node[node].Reduce(p, sbuf, rbuf, n, dt, op, 0)
	if p.Rank == 0 && n > 0 {
		pc := cc.netClock(p, node, obs.OpAllreduce, int64(n))
		cc.fabricReduce(p, node, rbuf, n, dt, op, pc)
		cc.fabricBcast(p, node, 0, rbuf, 0, n, pc)
		pc.finish()
	}
	cc.Node[node].Bcast(p, rbuf, 0, n, 0)
}

// Reduce reduces sbuf[:n] across all ranks into root's rbuf[:n]: the
// intra-node reductions feed a network-level binomial reduce rooted at
// the root's node, whose leader IS the root (root-following election), so
// the result lands in root's rbuf without an extra hop.
func (cc *ClusterComm) Reduce(p *env.Proc, node int, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, root int) {
	cc.checkRoot(root)
	if cc.CW.Cl.Nodes == 1 {
		cc.Node[node].Reduce(p, sbuf, rbuf, n, dt, op, root)
		return
	}
	lr := cc.localRoot(node, root)
	rootNode := root / cc.CW.PerNode
	// Non-root nodes accumulate through a leader-side scratch: MPI leaves
	// non-root recv buffers untouched, so the node partial cannot clobber
	// the user's rbuf there. On the root's node the leader IS the root.
	acc := rbuf
	if p.Rank == lr && node != rootNode {
		acc = cc.reduceScratch(node, n)
	}
	cc.Node[node].Reduce(p, sbuf, acc, n, dt, op, lr)
	if p.Rank == lr && n > 0 {
		pc := cc.netClock(p, node, obs.OpReduce, int64(n))
		// The same binomial shape as fabricReduce, re-rooted at rootNode.
		nn := cc.CW.Cl.Nodes
		rel := (node - rootNode + nn) % nn
		mask := 1
		for mask < nn {
			if rel&mask == 0 {
				src := rel | mask
				if src < nn {
					nb := cc.ensureNIC(node, n)
					cc.CW.Recv(p, node, (src+rootNode)%nn, nb.rx, 0, n)
					pc.mark(-1, obs.PhaseFabric, int64(n))
					p.ChargeRead(nb.rx, 0, n)
					p.ChargeCompute(n)
					mpi.ReduceBytes(op, dt, acc.Data[:n], nb.rx.Data[:n])
					p.Dirty(acc)
					pc.mark(-1, obs.PhaseReduceSlice, int64(n))
				}
			} else {
				parent := (rel&^mask + rootNode) % nn
				nb := cc.ensureNIC(node, n)
				p.Copy(nb.tx, 0, acc, 0, n)
				pc.mark(-1, obs.PhaseNICStage, int64(n))
				cc.CW.Send(p, node, parent, nb.tx, 0, n)
				pc.mark(-1, obs.PhaseFabric, int64(n))
				break
			}
			mask <<= 1
		}
		pc.finish()
	}
}

// reduceScratch grows node's rooted-reduce accumulator to n bytes.
func (cc *ClusterComm) reduceScratch(node, n int) *mem.Buffer {
	nb := cc.nic[node]
	if n < 1 {
		n = 1
	}
	if nb.red == nil || nb.red.Len() < n {
		nb.red = cc.CW.Nodes[node].NewBufferAt(fmt.Sprintf("nic%d.red", node), 0, n)
	}
	return nb.red
}

// Barrier blocks until every rank of the cluster has entered it: an
// intra-node barrier gathers each node, the leaders run a zero-payload
// fabric barrier, and a second intra-node barrier releases the members
// (who cannot leave it before their leader returns from the fabric).
func (cc *ClusterComm) Barrier(p *env.Proc, node int) {
	cc.Node[node].Barrier(p)
	if cc.CW.Cl.Nodes > 1 && p.Rank == 0 {
		pc := cc.netClock(p, node, obs.OpBarrier, 0)
		cc.fabricBarrier(p, node, pc)
		pc.finish()
	}
	cc.Node[node].Barrier(p)
}
